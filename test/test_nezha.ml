(* End-to-end tests for the Nezha core: offload lifecycle, BE/FE
   workflows, stateful NFs across the split, load balancing, failover,
   scale-out and fallback. *)

open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch
open Nezha_fabric
open Nezha_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)

(* ------------------------------------------------------------------ *)
(* Monitor *)

let test_monitor_detects_crash () =
  let sim = Sim.create () in
  let m = Monitor.create ~sim ~interval:0.5 ~misses_to_fail:3 () in
  let alive = ref true in
  let failed = ref [] in
  Monitor.watch m ~key:7 ~alive:(fun () -> !alive) ~on_fail:(fun ~key -> failed := key :: !failed);
  Monitor.start m;
  Sim.run sim ~until:2.0;
  check_bool "healthy so far" true (!failed = []);
  alive := false;
  let crash_time = 2.0 in
  Sim.run sim ~until:10.0;
  ignore crash_time;
  Alcotest.(check (list int)) "declared failed" [ 7 ] !failed;
  check_int "unwatched after failure" 0 (Monitor.watched m);
  check_bool "detection counted" true (Monitor.failures_declared m = 1)

let test_monitor_detection_latency_bounded () =
  let sim = Sim.create () in
  let m = Monitor.create ~sim ~interval:0.5 ~misses_to_fail:3 () in
  let alive = ref true in
  let failed_at = ref nan in
  Monitor.watch m ~key:1 ~alive:(fun () -> !alive)
    ~on_fail:(fun ~key:_ -> failed_at := Sim.now sim);
  Monitor.start m;
  ignore (Sim.schedule sim ~delay:1.01 (fun _ -> alive := false) : Sim.handle);
  Sim.run sim ~until:10.0;
  (* Dead at 1.01; misses at 1.5, 2.0, 2.5 -> declared at 2.5. *)
  check_bool "within interval*misses + one interval" true
    (!failed_at > 1.01 && !failed_at <= 1.01 +. 0.5 *. 4.0)

let test_monitor_mass_failure_suspected () =
  let sim = Sim.create () in
  let m = Monitor.create ~sim ~interval:0.5 ~misses_to_fail:2 ~mass_failure_fraction:0.8 () in
  let failed = ref 0 in
  for k = 1 to 5 do
    Monitor.watch m ~key:k ~alive:(fun () -> false) ~on_fail:(fun ~key:_ -> incr failed)
  done;
  Monitor.start m;
  Sim.run sim ~until:5.0;
  check_int "no automatic removal" 0 !failed;
  check_bool "suspicion recorded" true (Monitor.mass_failure_suspected m > 0)

let test_monitor_recovery_resets_misses () =
  let sim = Sim.create () in
  let m = Monitor.create ~sim ~interval:0.5 ~misses_to_fail:3 () in
  let alive = ref true in
  let failed = ref 0 in
  Monitor.watch m ~key:1 ~alive:(fun () -> !alive) ~on_fail:(fun ~key:_ -> incr failed);
  Monitor.start m;
  (* Two misses, then recovery before the third. *)
  ignore (Sim.schedule sim ~delay:0.6 (fun _ -> alive := false) : Sim.handle);
  ignore (Sim.schedule sim ~delay:1.6 (fun _ -> alive := true) : Sim.handle);
  Sim.run sim ~until:6.0;
  check_int "never declared" 0 !failed

let test_monitor_rewatch_mid_round_resets_misses () =
  let sim = Sim.create () in
  (* interval 0.5 -> probe_timeout defaults to 0.25: probes at 0, 0.5,
     1.0, ... collect at +0.25.  Two targets so the mass-failure check
     (one dead of two = 50% < 80%) cannot mask the behaviour. *)
  let m = Monitor.create ~sim ~interval:0.5 ~misses_to_fail:3 () in
  let failed_at = ref nan in
  let failed = ref 0 in
  let watch_dead () =
    Monitor.watch m ~key:1 ~alive:(fun () -> false)
      ~on_fail:(fun ~key:_ ->
        incr failed;
        failed_at := Sim.now sim)
  in
  watch_dead ();
  Monitor.watch m ~key:2 ~alive:(fun () -> true) ~on_fail:(fun ~key:_ -> incr failed);
  Monitor.start m;
  (* Without intervention key 1 misses at 0.25, 0.75 and 1.25 and is
     declared failed at 1.25.  Re-watching at 1.1 — after the 1.0 probe
     launched, before its collect — must discard the in-flight probe of
     the replaced registration and reset the miss counter, not count the
     stale miss against the fresh registration. *)
  ignore (Sim.schedule sim ~delay:1.1 (fun _ -> watch_dead ()) : Sim.handle);
  Sim.run sim ~until:1.3;
  check_int "not declared from a stale in-flight probe" 0 !failed;
  Sim.run sim ~until:6.0;
  check_int "declared exactly once eventually" 1 !failed;
  (* Fresh counter: misses at 1.75, 2.25, 2.75 -> declared at 2.75. *)
  check_bool "declared from a full fresh streak" true
    (!failed_at > 2.5 && !failed_at <= 3.0)

(* ------------------------------------------------------------------ *)
(* Costs *)

let test_costs_table5 () =
  let s = Costs.cost_of Costs.Sailfish and n = Costs.cost_of Costs.Nezha in
  check_bool "sailfish needs devices" true s.Costs.new_devices;
  check_bool "nezha reuses" false n.Costs.new_devices;
  Alcotest.(check (float 1e-9)) "nezha software pm" 15.0 n.Costs.software_dev_pm;
  let ratio = Costs.development_ratio () in
  check_bool "~10% of sailfish effort" true (ratio > 0.05 && ratio < 0.15);
  check_bool "rollout much faster" true
    (Costs.rollout_days Costs.Nezha ~clusters:10 ~parallel:5
    < Costs.rollout_days Costs.Sailfish ~clusters:10 ~parallel:5 /. 10.0)

(* ------------------------------------------------------------------ *)
(* World: 2 racks x 4 servers.  Server 0 hosts the heavy vNIC (id 1,
   10.0.0.1), server 1 the client vNIC (id 2, 10.0.0.2); the rest idle. *)

let vpc = Vpc.make 9

type world = {
  sim : Sim.t;
  fabric : Fabric.t;
  ctl : Controller.t;
  heavy_vs : Vswitch.t;
  client_vs : Vswitch.t;
  heavy_vm : Vm.t;
  client_vm : Vm.t;
  rng : Rng.t;
}

let test_params =
  { Params.default with Params.cpu_hz = 1e8; mem_bytes = 32 * 1024 * 1024 }

let heavy_addr = { Vnic.Addr.vpc; ip = ip "10.0.0.1" }

let make_world ?(acl_deny_rx = false) ?(stats_on = false) ?(stateful_decap = false)
    ?(config = { Controller.default_config with Controller.auto_offload = false; auto_scale = false })
    () =
  let sim = Sim.create () in
  let rng = Rng.create 42 in
  let topo = Topology.create ~racks:2 ~servers_per_rack:4 in
  let fabric = Fabric.create ~sim ~topology:topo in
  let switches = List.map (fun s -> Fabric.add_server fabric s ~params:test_params) (Topology.servers topo) in
  let heavy_vs = List.nth switches 0 and client_vs = List.nth switches 1 in
  let heavy = Vnic.make ~id:1 ~vpc ~ip:(ip "10.0.0.1") ~mac:(Mac.of_int64 1L) in
  let client = Vnic.make ~id:2 ~vpc ~ip:(ip "10.0.0.2") ~mac:(Mac.of_int64 2L) in
  let heavy_acl = Acl.create () in
  if acl_deny_rx then Acl.add heavy_acl (Acl.rule ~priority:1 ~dst:(pfx "10.0.0.1/32") Acl.Deny);
  let heavy_rs =
    Ruleset.create ~vni:9 ~acl:heavy_acl
      ?stats_rules:(if stats_on then Some [ (pfx "10.0.0.0/8", { Pre_action.count_packets = true; count_bytes = true }) ] else None)
      ~stateful_decap ()
  in
  Ruleset.add_route heavy_rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping heavy_rs { Vnic.Addr.vpc; ip = ip "10.0.0.2" } (ip "192.168.1.2");
  let client_rs = Ruleset.create ~vni:9 () in
  Ruleset.add_route client_rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping client_rs heavy_addr (ip "192.168.1.1");
  (match (Vswitch.add_vnic heavy_vs heavy heavy_rs, Vswitch.add_vnic client_vs client client_rs) with
  | Ok (), Ok () -> ()
  | _, _ -> Alcotest.fail "vnics must fit");
  let heavy_vm = Vm.create ~sim ~name:"heavy" ~vcpus:16 () in
  let client_vm = Vm.create ~sim ~name:"client" ~vcpus:8 () in
  Fabric.attach_vm fabric 0 heavy.Vnic.id heavy_vm;
  Fabric.attach_vm fabric 1 client.Vnic.id client_vm;
  Gateway.set_route (Fabric.gateway fabric) heavy_addr [| ip "192.168.1.1" |];
  Gateway.set_route (Fabric.gateway fabric)
    { Vnic.Addr.vpc; ip = ip "10.0.0.2" }
    [| ip "192.168.1.2" |];
  let ctl = Controller.create ~config ~fabric ~rng () in
  { sim; fabric; ctl; heavy_vs; client_vs; heavy_vm; client_vm; rng }

let client_syn ?(sport = 40000) () =
  Packet.create ~vpc
    ~flow:
      (Five_tuple.make ~src:(ip "10.0.0.2") ~dst:(ip "10.0.0.1") ~src_port:sport ~dst_port:80
         ~proto:Five_tuple.Tcp)
    ~direction:Packet.Tx ~flags:Packet.syn ()

let heavy_tx ?(dport = 40000) ?(flags = Packet.syn) () =
  Packet.create ~vpc
    ~flow:
      (Five_tuple.make ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:80 ~dst_port:dport
         ~proto:Five_tuple.Tcp)
    ~direction:Packet.Tx ~flags ()

let vnic1 = Vnic.id_of_int 1
let vnic2 = Vnic.id_of_int 2

let do_offload ?(num_fes = 4) w =
  match Controller.offload_vnic w.ctl ~server:0 ~vnic:vnic1 ~num_fes () with
  | Ok o -> o
  | Error e -> Alcotest.fail ("offload failed: " ^ e)

(* ------------------------------------------------------------------ *)
(* Offload lifecycle *)

let test_offload_reaches_final_stage () =
  let w = make_world () in
  let o = do_offload w in
  Sim.run w.sim ~until:5.0;
  check_int "4 FEs" 4 (List.length (Controller.offload_fe_servers o));
  check_bool "final stage" true (Controller.offload_stage o = Be.Final);
  check_bool "BE rule tables dropped" true (Vswitch.ruleset w.heavy_vs vnic1 = None);
  (match Controller.offload_completed_at o with
  | Some t -> check_bool "completed within seconds" true (t < 3.0)
  | None -> Alcotest.fail "not completed");
  check_int "one completion recorded" 1
    (Stats.Histogram.count (Controller.completion_times_ms w.ctl))

let test_offload_no_candidates () =
  let w = make_world () in
  (* Crash every other server so no candidates qualify... simpler: ask on
     a 1-server world by excluding everything via cpu ceiling. *)
  let cfg = { Controller.default_config with Controller.fe_cpu_max = -1.0; auto_offload = false; auto_scale = false } in
  let ctl = Controller.create ~config:cfg ~fabric:w.fabric ~rng:w.rng () in
  match Controller.offload_vnic ctl ~server:0 ~vnic:vnic1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected no candidates"

let test_offload_rx_path_via_fe () =
  let w = make_world () in
  let o = do_offload w in
  Sim.run w.sim ~until:5.0;
  (* Client connects to the offloaded vNIC: path must be client -> FE ->
     BE -> VM. *)
  Vswitch.from_vm w.client_vs vnic2 (client_syn ());
  Sim.run w.sim ~until:6.0;
  check_int "heavy vm received" 1 (Vm.packets_delivered w.heavy_vm);
  let be = Controller.offload_be o in
  check_int "arrived via FE with pre-actions" 1 (Stats.Counter.value (Be.counters be).Be.rx_from_fe);
  let fe_work =
    List.fold_left
      (fun acc s ->
        match Controller.fe_service w.ctl s with
        | Some fe -> acc + Stats.Counter.value (Fe.counters fe).Fe.rx_forwarded
        | None -> acc)
      0
      (Controller.offload_fe_servers o)
  in
  check_int "exactly one FE forwarded it" 1 fe_work

let test_offload_tx_path_via_fe () =
  let w = make_world () in
  let o = do_offload w in
  Sim.run w.sim ~until:5.0;
  Vswitch.from_vm w.heavy_vs vnic1 (heavy_tx ());
  Sim.run w.sim ~until:6.0;
  check_int "client vm received" 1 (Vm.packets_delivered w.client_vm);
  let be = Controller.offload_be o in
  check_int "tx went via FE" 1 (Stats.Counter.value (Be.counters be).Be.tx_via_fe);
  let finalized =
    List.fold_left
      (fun acc s ->
        match Controller.fe_service w.ctl s with
        | Some fe -> acc + Stats.Counter.value (Fe.counters fe).Fe.tx_finalized
        | None -> acc)
      0
      (Controller.offload_fe_servers o)
  in
  check_int "one FE finalized" 1 finalized

let test_offload_no_interruption_during_transition () =
  let w = make_world () in
  (* Continuous client traffic through the whole offload transition. *)
  let sent = ref 0 in
  let stop_at = 6.0 in
  let rec send sim =
    if Sim.now sim < stop_at then begin
      incr sent;
      Vswitch.from_vm w.client_vs vnic2 (client_syn ~sport:(40000 + (!sent mod 1000)) ());
      ignore (Sim.schedule sim ~delay:0.01 send : Sim.handle)
    end
  in
  ignore (Sim.schedule w.sim ~delay:0.0 send : Sim.handle);
  ignore (Sim.schedule w.sim ~delay:1.0 (fun _ -> ignore (do_offload w : Controller.offload)) : Sim.handle);
  Sim.run w.sim ~until:8.0;
  let delivered = Vm.packets_delivered w.heavy_vm in
  check_bool "sent plenty" true (!sent > 400);
  (* At most a handful lost in flight at the switchover instant. *)
  check_bool "no service interruption" true (delivered >= !sent - 3)

let test_bidirectional_session_after_offload () =
  let w = make_world () in
  ignore (do_offload w : Controller.offload);
  Sim.run w.sim ~until:5.0;
  (* Heavy VM answers with syn-ack. *)
  Vm.set_app w.heavy_vm (fun _ pkt ->
      let resp =
        Packet.create ~vpc
          ~flow:(Five_tuple.reverse pkt.Packet.flow)
          ~direction:Packet.Tx ~flags:Packet.syn_ack ()
      in
      Vswitch.from_vm w.heavy_vs vnic1 resp);
  Vswitch.from_vm w.client_vs vnic2 (client_syn ());
  Sim.run w.sim ~until:6.0;
  check_int "request delivered" 1 (Vm.packets_delivered w.heavy_vm);
  check_int "response delivered" 1 (Vm.packets_delivered w.client_vm)

(* ------------------------------------------------------------------ *)
(* Stateful NFs across the BE/FE split *)

let test_stateful_acl_across_split () =
  let w = make_world ~acl_deny_rx:true () in
  ignore (do_offload w : Controller.offload);
  Sim.run w.sim ~until:5.0;
  (* Unsolicited inbound: FE computes pre (rx=deny), BE drops. *)
  Vswitch.from_vm w.client_vs vnic2 (client_syn ~sport:50001 ());
  Sim.run w.sim ~until:6.0;
  check_int "unsolicited dropped at BE" 1 (Vswitch.drop_count w.heavy_vs Nf.Unsolicited);
  check_int "nothing delivered" 0 (Vm.packets_delivered w.heavy_vm);
  (* Locally-initiated connection: TX out via FE, then the client's
     response must pass the deny because state says first_dir = Tx. *)
  Vm.set_app w.client_vm (fun _ pkt ->
      let resp =
        Packet.create ~vpc
          ~flow:(Five_tuple.reverse pkt.Packet.flow)
          ~direction:Packet.Tx ~flags:Packet.syn_ack ()
      in
      Vswitch.from_vm w.client_vs vnic2 resp);
  Vswitch.from_vm w.heavy_vs vnic1 (heavy_tx ~dport:40077 ());
  Sim.run w.sim ~until:8.0;
  check_int "response passed the deny" 1 (Vm.packets_delivered w.heavy_vm)

let test_stateful_decap_preserved_across_fe () =
  let w = make_world ~stateful_decap:true () in
  ignore (do_offload w : Controller.offload);
  Sim.run w.sim ~until:5.0;
  Vswitch.from_vm w.client_vs vnic2 (client_syn ~sport:50002 ());
  Sim.run w.sim ~until:6.0;
  (* The BE's state must have recorded the original outer source (the
     client's server) even though the FE re-encapsulated the packet. *)
  let key =
    Flow_key.of_packet_fields ~vpc
      ~flow:
        (Five_tuple.make ~src:(ip "10.0.0.2") ~dst:(ip "10.0.0.1") ~src_port:50002 ~dst_port:80
           ~proto:Five_tuple.Tcp)
  in
  match Vswitch.find_session w.heavy_vs vnic1 key with
  | Some { Vswitch.state = Some st; _ } ->
    check_bool "decap src recorded" true
      (match st.State.decap_src with
      | Some a -> Ipv4.equal a (ip "192.168.1.2")
      | None -> false)
  | Some { Vswitch.state = None; _ } | None -> Alcotest.fail "expected BE state"

let test_notify_arms_stats () =
  let w = make_world ~stats_on:true () in
  let o = do_offload w in
  Sim.run w.sim ~until:5.0;
  (* TX first packet: BE initializes state without knowing the stats
     policy; the FE's rule lookup discovers it and notifies. *)
  Vswitch.from_vm w.heavy_vs vnic1 (heavy_tx ~dport:40099 ());
  Sim.run w.sim ~until:6.0;
  let be = Controller.offload_be o in
  check_bool "notify received" true (Stats.Counter.value (Be.counters be).Be.notify_received >= 1);
  let key =
    Flow_key.of_packet_fields ~vpc
      ~flow:
        (Five_tuple.make ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:80 ~dst_port:40099
           ~proto:Five_tuple.Tcp)
  in
  (match Vswitch.find_session w.heavy_vs vnic1 key with
  | Some { Vswitch.state = Some st; _ } -> check_bool "stats armed" true (st.State.stats <> None)
  | Some { Vswitch.state = None; _ } | None -> Alcotest.fail "expected BE state");
  (* Second packet of the same flow hits the FE cache: no second notify. *)
  Vswitch.from_vm w.heavy_vs vnic1 (heavy_tx ~dport:40099 ~flags:Packet.ack ());
  Sim.run w.sim ~until:7.0;
  check_int "notify only on fresh lookups" 1 (Stats.Counter.value (Be.counters be).Be.notify_received)

let test_flows_spread_across_fes () =
  let w = make_world () in
  let o = do_offload w in
  Sim.run w.sim ~until:5.0;
  for i = 0 to 199 do
    Vswitch.from_vm w.client_vs vnic2 (client_syn ~sport:(41000 + i) ())
  done;
  Sim.run w.sim ~until:8.0;
  let shares =
    List.map
      (fun s ->
        match Controller.fe_service w.ctl s with
        | Some fe -> Stats.Counter.value (Fe.counters fe).Fe.rx_forwarded
        | None -> 0)
      (Controller.offload_fe_servers o)
  in
  check_int "all arrived" 200 (List.fold_left ( + ) 0 shares);
  List.iter
    (fun n -> check_bool "each FE took a fair share" true (n > 20 && n < 80))
    shares

(* ------------------------------------------------------------------ *)
(* Failover, scale-out, fallback *)

let test_failover_after_fe_crash () =
  let w = make_world () in
  let o = do_offload w in
  Controller.start w.ctl;
  Sim.run w.sim ~until:5.0;
  let fes_before = Controller.offload_fe_servers o in
  check_int "4 before" 4 (List.length fes_before);
  let victim = List.hd fes_before in
  Smartnic.crash (Vswitch.nic (Fabric.vswitch w.fabric victim));
  Sim.run w.sim ~until:12.0;
  let fes_after = Controller.offload_fe_servers o in
  check_bool "victim removed" true (not (List.mem victim fes_after));
  check_int "replenished to min 4" 4 (List.length fes_after);
  (* Traffic still flows. *)
  Vswitch.from_vm w.client_vs vnic2 (client_syn ~sport:45000 ());
  Sim.run w.sim ~until:13.0;
  check_bool "traffic flows after failover" true (Vm.packets_delivered w.heavy_vm >= 1)

let test_scale_out_adds_fes () =
  let w = make_world () in
  let o = do_offload w in
  Sim.run w.sim ~until:5.0;
  let added = Controller.scale_out w.ctl o ~add:2 in
  check_int "two added" 2 added;
  Sim.run w.sim ~until:8.0;
  check_int "six FEs now" 6 (List.length (Controller.offload_fe_servers o));
  check_bool "scale-out event counted" true (Controller.scale_out_events w.ctl = 1)

let test_fallback_restores_local () =
  let w = make_world () in
  let o = do_offload w in
  Sim.run w.sim ~until:5.0;
  check_bool "offloaded" true (Vswitch.ruleset w.heavy_vs vnic1 = None);
  (match Controller.fallback_vnic w.ctl o with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("fallback failed: " ^ e));
  Sim.run w.sim ~until:10.0;
  check_bool "rule tables back" true (Vswitch.ruleset w.heavy_vs vnic1 <> None);
  check_int "no active offloads" 0 (List.length (Controller.offloads w.ctl));
  (* Local processing works again end-to-end. *)
  Vswitch.from_vm w.client_vs vnic2 (client_syn ~sport:46000 ());
  Sim.run w.sim ~until:11.0;
  check_int "delivered locally" 1 (Vm.packets_delivered w.heavy_vm);
  let fe_rx =
    List.fold_left
      (fun acc s ->
        match Controller.fe_service w.ctl s with Some fe -> acc + Stats.Counter.value (Fe.counters fe).Fe.rx_forwarded | None -> acc)
      0
      (Topology.servers (Fabric.topology w.fabric))
  in
  check_int "FEs out of the path" 0 fe_rx

let test_auto_offload_triggers_under_load () =
  let config =
    {
      Controller.default_config with
      Controller.auto_offload = true;
      auto_scale = false;
      report_interval = 0.5;
    }
  in
  let w = make_world ~config () in
  Controller.start w.ctl;
  (* Hammer the heavy vNIC with fresh connections so its vSwitch CPU
     saturates: each SYN costs a slow path (~51k cycles at 1e8 Hz). *)
  let rec send i sim =
    if Sim.now sim < 10.0 then begin
      Vswitch.from_vm w.client_vs vnic2 (client_syn ~sport:(40000 + (i mod 20000)) ());
      ignore (Sim.schedule sim ~delay:0.0005 (send (i + 1)) : Sim.handle)
    end
  in
  ignore (Sim.schedule w.sim ~delay:0.0 (send 0) : Sim.handle);
  Sim.run w.sim ~until:12.0;
  check_bool "offload triggered automatically" true (Controller.offload_events w.ctl >= 1);
  match Controller.find_offload w.ctl ~server:0 ~vnic:vnic1 with
  | Some o -> check_bool "heavy vnic offloaded" true (Controller.offload_fe_servers o <> [])
  | None -> Alcotest.fail "expected the heavy vNIC to be offloaded"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nezha"
    [
      ( "monitor",
        [
          Alcotest.test_case "detects crash" `Quick test_monitor_detects_crash;
          Alcotest.test_case "latency bounded" `Quick test_monitor_detection_latency_bounded;
          Alcotest.test_case "mass failure suspected" `Quick test_monitor_mass_failure_suspected;
          Alcotest.test_case "recovery resets misses" `Quick test_monitor_recovery_resets_misses;
          Alcotest.test_case "re-watch mid-round resets misses" `Quick
            test_monitor_rewatch_mid_round_resets_misses;
        ] );
      ("costs", [ Alcotest.test_case "table 5 model" `Quick test_costs_table5 ]);
      ( "offload",
        [
          Alcotest.test_case "reaches final stage" `Quick test_offload_reaches_final_stage;
          Alcotest.test_case "no candidates" `Quick test_offload_no_candidates;
          Alcotest.test_case "rx path via FE" `Quick test_offload_rx_path_via_fe;
          Alcotest.test_case "tx path via FE" `Quick test_offload_tx_path_via_fe;
          Alcotest.test_case "no interruption during transition" `Quick
            test_offload_no_interruption_during_transition;
          Alcotest.test_case "bidirectional session" `Quick test_bidirectional_session_after_offload;
        ] );
      ( "stateful",
        [
          Alcotest.test_case "stateful acl across split" `Quick test_stateful_acl_across_split;
          Alcotest.test_case "stateful decap preserved" `Quick test_stateful_decap_preserved_across_fe;
          Alcotest.test_case "notify arms stats" `Quick test_notify_arms_stats;
          Alcotest.test_case "flows spread across FEs" `Quick test_flows_spread_across_fes;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "failover after FE crash" `Quick test_failover_after_fe_crash;
          Alcotest.test_case "scale-out adds FEs" `Quick test_scale_out_adds_fes;
          Alcotest.test_case "fallback restores local" `Quick test_fallback_restores_local;
          Alcotest.test_case "auto offload under load" `Quick test_auto_offload_triggers_under_load;
        ] );
    ]
