(* Differential tests for the sharded engine: the same workload run on a
   plain simulation, a one-shard cluster and a multi-shard cluster must
   agree on every semantic counter — the shard count is an execution
   detail, not a model parameter (DESIGN.md §10). *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric
open Nezha_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)
let vpc = Vpc.make 9

let test_params =
  { Params.default with Params.cpu_hz = 1e8; mem_bytes = 16 * 1024 * 1024 }

(* ------------------------------------------------------------------ *)
(* Fabric differential: 4 racks x 2 servers, every server sends one
   packet to every other server (staggered), each hop crossing the
   underlay with its real latency.  Rack-aligned shard placement keeps
   every cross-shard hop at >= the minimum cross-rack latency, which is
   the cluster lookahead. *)

type variant = Plain | Cluster of int

let racks = 4
let per_rack = 2

let min_cross_rack_latency topo =
  let n = Topology.server_count topo in
  let m = ref infinity in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if not (Topology.same_rack topo a b) then m := Float.min !m (Topology.latency topo a b)
    done
  done;
  !m

type outcome = {
  delivered : int;
  lost : int;
  forwarded : int array;  (* per-server vSwitch forwarded counters *)
  rx : int array;
}

let run_variant variant =
  let topo = Topology.create ~racks ~servers_per_rack:per_rack in
  let n = Topology.server_count topo in
  let cluster, base_sim, sim_of =
    match variant with
    | Plain ->
      let sim = Sim.create () in
      (None, sim, fun _ -> sim)
    | Cluster shards ->
      let c =
        Sim.Sharded.create ~shards ~lookahead:(min_cross_rack_latency topo) ()
      in
      ( Some c,
        Sim.Sharded.shard c 0,
        fun sid -> Sim.Sharded.shard c (Topology.rack_of topo sid mod shards) )
  in
  let fabric = Fabric.create ~sim:base_sim ~topology:topo in
  let vss =
    Array.init n (fun sid -> Fabric.add_server fabric ~sim:(sim_of sid) sid ~params:test_params)
  in
  (* Server [sid] hosts vNIC 1 at 10.0.0.(sid+1), and knows the underlay
     mapping of every peer so no traffic detours via the gateway. *)
  Array.iteri
    (fun sid vs ->
      let rs = Ruleset.create ~vni:9 () in
      Ruleset.add_route rs (pfx "10.0.0.0/8");
      for peer = 0 to n - 1 do
        if peer <> sid then
          Ruleset.add_mapping rs
            { Vnic.Addr.vpc; ip = ip (Printf.sprintf "10.0.0.%d" (peer + 1)) }
            (Topology.underlay_ip topo peer)
      done;
      let vnic =
        Vnic.make ~id:1 ~vpc
          ~ip:(ip (Printf.sprintf "10.0.0.%d" (sid + 1)))
          ~mac:(Mac.of_int64 (Int64.of_int (sid + 1)))
      in
      match Vswitch.add_vnic vs vnic rs with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "vnic must fit")
    vss;
  (* Every ordered pair sends one SYN, staggered so shards interleave. *)
  let k = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        incr k;
        let delay = 1e-4 *. float_of_int !k in
        let pkt =
          Packet.create ~vpc
            ~flow:
              (Five_tuple.make
                 ~src:(ip (Printf.sprintf "10.0.0.%d" (src + 1)))
                 ~dst:(ip (Printf.sprintf "10.0.0.%d" (dst + 1)))
                 ~src_port:(40000 + !k) ~dst_port:80 ~proto:Five_tuple.Tcp)
            ~direction:Packet.Tx ~flags:Packet.syn ()
        in
        ignore
          (Sim.schedule (sim_of src) ~delay (fun _ ->
               Vswitch.from_vm vss.(src) (Vnic.id_of_int 1) pkt)
            : Sim.handle)
      end
    done
  done;
  (match cluster with
  | None -> Sim.run base_sim ~until:1.0
  | Some c -> Sim.Sharded.run c ~until:1.0);
  {
    delivered = Fabric.delivered_to_vms fabric;
    lost = Fabric.lost fabric;
    forwarded =
      Array.map
        (fun vs -> Stats.Counter.value (Vswitch.counters vs).Vswitch.forwarded)
        vss;
    rx =
      Array.map
        (fun vs -> Stats.Counter.value (Vswitch.counters vs).Vswitch.rx_packets)
        vss;
  }

let test_fabric_shard_invariance () =
  let plain = run_variant Plain in
  let one = run_variant (Cluster 1) in
  let four = run_variant (Cluster 4) in
  let n = racks * per_rack in
  check_int "all pairs delivered (plain)" (n * (n - 1)) plain.delivered;
  check_int "nothing lost" 0 plain.lost;
  check_bool "plain = 1 shard" true (plain = one);
  check_bool "1 shard = 4 shards" true (one = four)

(* ------------------------------------------------------------------ *)
(* Region digest: the region-scale run must produce the same
   order-insensitive fingerprint for any shard count, and reproduce it
   on a same-seed rerun. *)

(* Small but busy: the compressed day is 8 s, so spikes must ramp in a
   couple of seconds and a fifth of the fleet is hot — otherwise a run
   this short sees no overload race at all. *)
let small_cfg =
  {
    Region_sim.default_config with
    Region_sim.racks = 30;
    servers_per_rack = 2;
    duration = 8.0;
    tick = 0.05;
    flow_timers = 4;
    seed = 7;
    hotspot_quantile = 0.80;
    spikes_per_day = 4.0;
    ramp_median = 2.0;
    hold = 1.0;
    (* ... and the control loop must spin fast enough to win some of
       those 2 s races. *)
    report_interval = 0.1;
    scan_interval = 0.1;
  }

let test_region_shard_invariance () =
  let r1 = Region_sim.run { small_cfg with Region_sim.shards = 1 } in
  let r3 = Region_sim.run { small_cfg with Region_sim.shards = 3 } in
  let r3' = Region_sim.run { small_cfg with Region_sim.shards = 3 } in
  check_int "same digest across shard counts" r1.Region_sim.digest r3.Region_sim.digest;
  check_int "same-seed rerun reproduces" r3.Region_sim.digest r3'.Region_sim.digest;
  check_int "same overloads" r1.Region_sim.overloads r3.Region_sim.overloads;
  check_int "same flow expiries" r1.Region_sim.flow_expiries r3.Region_sim.flow_expiries;
  check_bool "multi-shard run used the mailbox" true (r3.Region_sim.messages > 0);
  check_bool "single shard needs no mailbox" true (r1.Region_sim.messages = 0)

let test_region_before_after () =
  let ba = Region_sim.before_after { small_cfg with Region_sim.shards = 3 } in
  check_bool "spikes overload the unprotected region" true
    (ba.Region_sim.before.Region_sim.overloads > 0);
  check_bool "nezha resolves overloads" true
    (ba.Region_sim.after.Region_sim.overloads < ba.Region_sim.before.Region_sim.overloads);
  check_bool "controller activated offloads" true
    (ba.Region_sim.after.Region_sim.activations > 0);
  check_int "controller idle in the before run" 0
    (ba.Region_sim.before.Region_sim.activations)

(* Engine modes are distinct schedules (wheel timers quantize to slot
   boundaries) but must agree on scale invariants that timing cannot
   move: the vSwitch population and the modeled demand inventory. *)
let test_region_engine_modes () =
  let h = Region_sim.run { small_cfg with Region_sim.engine = Region_sim.Heap_events } in
  let w = Region_sim.run { small_cfg with Region_sim.engine = Region_sim.Wheel_events } in
  check_int "same servers" h.Region_sim.servers w.Region_sim.servers;
  check_int "same modeled vnics" h.Region_sim.vnics_modeled w.Region_sim.vnics_modeled;
  check_int "same hotspots" h.Region_sim.hotspots w.Region_sim.hotspots;
  check_bool "heap mode allocates fresh events" true (h.Region_sim.pool_fresh > 0);
  check_bool "wheel mode reuses the pool" true
    (w.Region_sim.pool_reused > w.Region_sim.pool_fresh)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sharded"
    [
      ( "fabric",
        [ Alcotest.test_case "shard-count invariance" `Quick test_fabric_shard_invariance ] );
      ( "region",
        [
          Alcotest.test_case "shard-count invariance" `Quick test_region_shard_invariance;
          Alcotest.test_case "before/after overloads" `Quick test_region_before_after;
          Alcotest.test_case "engine-mode invariants" `Quick test_region_engine_modes;
        ] );
    ]
