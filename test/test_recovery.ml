(* Tests for the crash–restart recovery plane (DESIGN.md §13): node
   crash/restart lifecycle with volatile-state wipe and reconciliation,
   incarnation fencing of in-flight RPCs, epoch-fenced controller
   failover (the split-brain acceptance test), the BE
   retransmit-after-administrative-removal regression, anti-entropy
   repair, shard-aware fault scheduling, and a QCheck observational
   equivalence between a crashed-and-reconciled vSwitch and a freshly
   provisioned one. *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_harness
open Nezha_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let counter c = Stats.Counter.value c
let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)

let heavy_addr (t : Testbed.t) =
  { Vnic.Addr.vpc = t.Testbed.vpc; ip = Testbed.heavy_ip }

let fe_service_exn ctl s =
  match Controller.fe_service ctl s with
  | Some fe -> fe
  | None -> Alcotest.fail (Printf.sprintf "no FE service on server %d" s)

(* ------------------------------------------------------------------ *)
(* Node lifecycle: crash wipes volatile state; restart reconciles *)

let test_fe_host_crash_reconciles () =
  let t = Testbed.create ~seed:21 () in
  let o = Testbed.offload t () in
  let addr = heavy_addr t in
  let f = List.hd (Controller.offload_fe_servers o) in
  let fe = fe_service_exn t.Testbed.ctl f in
  check_bool "FE serves before the crash" true (Fe.serves fe addr);
  Faults.crash_server t.Testbed.faults ~reboot_after:0.2 f;
  (* The crash instant: the node's volatile state is gone and so are
     the controller-side mirrors of it. *)
  check_bool "node is down" true (Faults.is_crashed t.Testbed.faults f);
  check_int "incarnation bumped" 1 (Faults.incarnation t.Testbed.faults f);
  check_bool "FE blobs wiped at crash" false (Fe.serves fe addr);
  check_int "vswitch sessions wiped" 0
    (Vswitch.total_sessions (Fabric.vswitch t.Testbed.fabric f));
  check_bool "intent no longer silently installed" true
    (Controller.check_conservation t.Testbed.ctl);
  (* Reboot + reconciliation: the FE re-requests provisioning and the
     controller re-pushes the replica. *)
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 2.0);
  check_bool "node is back" false (Faults.is_crashed t.Testbed.faults f);
  check_int "one restart" 1 (Faults.server_restarts t.Testbed.faults);
  check_int "one reconciliation round" 1 (Controller.reconciles t.Testbed.ctl);
  check_bool "repairs applied" true (Controller.repairs t.Testbed.ctl >= 1);
  check_bool "FE serves again" true (Fe.serves fe addr);
  check_bool "conservation after recovery" true
    (Controller.check_conservation t.Testbed.ctl);
  (* And the dataplane still works end to end. *)
  let crr = Testbed.run_crr t ~rate:200.0 ~duration:1.0 () in
  check_bool "traffic completes after recovery" true (Tcp_crr.completed crr > 0)

let test_be_host_crash_reinstalls_tracker () =
  let t = Testbed.create ~seed:22 () in
  let o = Testbed.offload t () in
  let be0 = Controller.offload_be o in
  ignore (Testbed.run_crr t ~rate:200.0 ~duration:1.0 () : Tcp_crr.t);
  Faults.crash_server t.Testbed.faults ~reboot_after:0.2 t.Testbed.heavy_server;
  check_bool "pre-crash BE instance permanently closed" true (Be.closed be0);
  let c0 = Be.counters be0 in
  check_bool "closed BE conserves its books (drops absorb in-flight)" true
    (counter c0.Be.offload_tracked
    = counter c0.Be.offload_acked + counter c0.Be.local_fallback
      + counter c0.Be.offload_dropped + Be.outstanding be0);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 2.0);
  let be1 = Controller.offload_be o in
  check_bool "reconciliation installed a fresh tracker" true (not (Be.closed be1));
  check_bool "fresh instance, not the dead one" true (not (be0 == be1));
  check_bool "offload stage preserved across the crash" true
    (Controller.offload_stage o = Be.Final);
  check_bool "conservation after BE recovery" true
    (Controller.check_conservation t.Testbed.ctl);
  let crr = Testbed.run_crr t ~rate:200.0 ~duration:1.0 () in
  check_bool "traffic completes via the fresh BE" true (Tcp_crr.completed crr > 0)

(* A second crash while the reconcile RPC is in flight: the reply is
   from a process that no longer exists and must be discarded (the
   incarnation fence), and the *second* reboot's reconciliation must
   still land. *)
let test_stale_reconcile_reply_discarded () =
  let t = Testbed.create ~seed:23 () in
  let o = Testbed.offload t () in
  let addr = heavy_addr t in
  let f = List.hd (Controller.offload_fe_servers o) in
  let now = Sim.now t.Testbed.sim in
  Faults.crash_server t.Testbed.faults ~reboot_after:0.1 f;
  (* Crash again a hair after the reboot, inside the reconcile RPC. *)
  Faults.at t.Testbed.faults ~server:f ~time:(now +. 0.1001) (fun fp ->
      Faults.crash_server fp ~reboot_after:0.1 f);
  Sim.run t.Testbed.sim ~until:(now +. 3.0);
  check_int "two crashes" 2 (Faults.server_crashes t.Testbed.faults);
  check_int "two incarnations" 2 (Faults.incarnation t.Testbed.faults f);
  check_bool "stale replies were discarded" true
    (Controller.stale_discards t.Testbed.ctl > 0);
  check_bool "second reconciliation still landed" true
    (Fe.serves (fe_service_exn t.Testbed.ctl f) addr);
  check_bool "conservation holds" true (Controller.check_conservation t.Testbed.ctl)

(* ------------------------------------------------------------------ *)
(* Split-brain acceptance: a revived stale primary is provably unable
   to flap placements *)

let test_split_brain_fencing () =
  let t = Testbed.create ~seed:24 () in
  let primary = t.Testbed.ctl in
  let standby =
    Controller.create
      ~config:(Controller.config primary)
      ~fabric:t.Testbed.fabric ~rng:(Rng.split t.Testbed.rng) ()
  in
  let ha =
    Ha.create ~lease_interval:0.5 ~lease_misses:3 ~fabric:t.Testbed.fabric ~primary
      ~standby ()
  in
  Ha.start ha;
  let o = Testbed.offload t () in
  check_bool "registry collected the offload" true
    (Controller.Registry.entries (Ha.registry ha) >= 1);
  let fes0 = Controller.offload_fe_servers o in
  let gaddr = heavy_addr t in
  let gw0 = Gateway.lookup (Fabric.gateway t.Testbed.fabric) gaddr in
  check_bool "route installed" true (gw0 <> None);
  (* Primary dies; the lease expires and the standby takes over with a
     bumped, fleet-broadcast epoch. *)
  Ha.crash_primary ha;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  check_int "one takeover" 1 (Ha.takeovers ha);
  check_bool "standby is active" true (Ha.active ha == standby);
  check_bool "epoch advanced past the primary's" true
    (Controller.epoch standby > Controller.epoch primary);
  check_int "standby adopted the offload from the registry" 1
    (List.length (Controller.offloads standby));
  let o' = List.hd (Controller.offloads standby) in
  (* The stale primary comes back from the dead and tries to meddle. *)
  Ha.revive_primary ha;
  let victim =
    List.find
      (fun s ->
        s <> t.Testbed.heavy_server
        && (not (List.mem s fes0))
        && Fabric.vswitch_opt t.Testbed.fabric s <> None)
      (Topology.servers (Fabric.topology t.Testbed.fabric))
  in
  check_int "stale scale-out adds nothing" 0 (Controller.scale_out primary o ~add:2);
  (match Controller.migrate_be primary o ~to_server:victim with
  | Ok () -> Alcotest.fail "stale migrate_be must be fenced"
  | Error _ -> ());
  (match Controller.fallback_vnic primary o with
  | Ok () -> Alcotest.fail "stale fallback must be fenced"
  | Error _ -> ());
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 2.0);
  check_bool "stale commands were fence-rejected" true
    (Controller.fenced_rejected primary >= 3);
  check_bool "components counted the rejections" true
    (Vswitch.epoch_rejections (Fabric.vswitch t.Testbed.fabric t.Testbed.heavy_server)
    > 0);
  check_bool "placement unchanged by the stale primary" true
    (Controller.offload_fe_servers o' = fes0
    && Controller.offload_fe_servers o = fes0);
  check_bool "route unchanged" true
    (Gateway.lookup (Fabric.gateway t.Testbed.fabric) gaddr = gw0);
  check_bool "offload still fully installed" true
    (Controller.check_conservation standby);
  (* The new primary is not fenced: it can still mutate the fleet. *)
  check_bool "new primary can scale out" true (Controller.scale_out standby o' ~add:1 >= 1)

(* ------------------------------------------------------------------ *)
(* Regression: a retransmission must never target an FE that was
   administratively removed from the location config while the send was
   in flight (a decommissioned FE is a guaranteed blackhole). *)

let test_no_retx_against_removed_fe () =
  let t = Testbed.create ~seed:25 () in
  let o = Testbed.offload t ~num_fes:2 () in
  let be = Controller.offload_be o in
  let fes = Controller.offload_fe_servers o in
  check_int "two FEs" 2 (List.length fes);
  (* Cut BE -> FE for both, so no hop ack ever returns. *)
  List.iter
    (fun s ->
      Faults.cut_link t.Testbed.faults ~src:(Faults.Server t.Testbed.heavy_server)
        ~dst:(Faults.Server s))
    fes;
  let flow =
    Five_tuple.make ~src:Testbed.heavy_ip ~dst:t.Testbed.clients.(0).Tcp_crr.ip
      ~src_port:7000 ~dst_port:7001 ~proto:Five_tuple.Udp
  in
  let first = Be.fe_for be flow in
  let topo = Fabric.topology t.Testbed.fabric in
  (* The FE the first retransmission will re-steer to — and which we
     then administratively remove while the send is outstanding. *)
  let second =
    match List.filter (fun s -> not (Ipv4.equal (Topology.underlay_ip topo s) first)) fes with
    | s :: _ -> Topology.underlay_ip topo s
    | [] -> Alcotest.fail "expected a second FE"
  in
  let t0 = Sim.now t.Testbed.sim in
  Vswitch.from_vm t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id
    (Packet.create ~vpc:t.Testbed.vpc ~flow ~direction:Packet.Tx ~payload_len:100 ());
  (* Timeout 1 fires at ~t0+0.02 and re-steers to [second]; remove
     [second] at t0+0.03, before timeout 2 (~t0+0.04). *)
  ignore
    (Sim.schedule t.Testbed.sim ~delay:(t0 +. 0.03 -. Sim.now t.Testbed.sim)
       (fun _ -> Be.remove_fe be second)
      : Sim.handle);
  Sim.run t.Testbed.sim ~until:(t0 +. 1.0);
  let c = Be.counters be in
  check_int "exactly one retransmission (the pre-removal re-steer)" 1
    (counter c.Be.offload_retx);
  check_int "it re-steered" 1 (counter c.Be.offload_resteered);
  check_int "resolved through the local fallback, not a blackhole" 1
    (counter c.Be.local_fallback);
  check_int "nothing dropped" 0 (counter c.Be.offload_dropped);
  check_int "nothing outstanding" 0 (Be.outstanding be);
  check_bool "conservation" true
    (counter c.Be.offload_tracked
    = counter c.Be.offload_acked + counter c.Be.local_fallback
      + counter c.Be.offload_dropped + Be.outstanding be)

(* ------------------------------------------------------------------ *)
(* Anti-entropy: divergence injected behind the controller's back is
   detected by the report-interval sweep and repaired *)

let test_anti_entropy_repairs_divergence () =
  let t = Testbed.create ~seed:26 () in
  let o = Testbed.offload t () in
  let addr = heavy_addr t in
  Controller.start t.Testbed.ctl;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 1.5);
  let f = List.hd (Controller.offload_fe_servers o) in
  let fe = fe_service_exn t.Testbed.ctl f in
  (* Lose the replica without telling anyone. *)
  Fe.unserve fe addr;
  check_bool "diverged: intent no longer installed" true (not (Fe.serves fe addr));
  check_bool "conservation violated by the silent divergence" true
    (not (Controller.check_conservation t.Testbed.ctl));
  let repairs0 = Controller.repairs t.Testbed.ctl in
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  check_bool "sweep re-served the replica" true (Fe.serves fe addr);
  check_bool "repair counted" true (Controller.repairs t.Testbed.ctl > repairs0);
  check_bool "conservation restored" true (Controller.check_conservation t.Testbed.ctl)

(* ------------------------------------------------------------------ *)
(* Shard-aware fault plane *)

(* Crash events for a server living on shard 1 must execute on shard
   1's simulation (via the fabric's shard lookup), and its downtime
   must be visible to the fault plane's verdicts. *)
let test_crash_on_remote_shard () =
  let topo = Topology.create ~racks:2 ~servers_per_rack:2 in
  let cluster = Sim.Sharded.create ~shards:2 ~lookahead:0.01 () in
  let sim0 = Sim.Sharded.shard cluster 0 in
  let fabric = Fabric.create ~sim:sim0 ~topology:topo in
  for sid = 0 to 3 do
    ignore
      (Fabric.add_server fabric
         ~sim:(Sim.Sharded.shard cluster (Topology.rack_of topo sid mod 2))
         sid ~params:Params.scaled
        : Vswitch.t)
  done;
  let faults = Faults.create ~sim:sim0 ~topology:topo ~rng:(Rng.create 3) () in
  Fabric.set_faults fabric (Some faults);
  let remote = 2 (* rack 1 -> shard 1 *) in
  Faults.at faults ~server:remote ~time:0.5 (fun f ->
      Faults.crash_server f ~reboot_after:0.4 remote);
  Sim.Sharded.run cluster ~until:0.7;
  check_bool "down mid-window" true (Faults.is_crashed faults remote);
  check_bool "packets to the dead node drop" true
    (Faults.consult faults ~src:(Faults.Server 0) ~dst:(Faults.Server remote)
    = Faults.Drop);
  Sim.Sharded.run cluster ~until:1.2;
  check_bool "rebooted" true (not (Faults.is_crashed faults remote));
  check_int "crash and restart counted" 1 (Faults.server_restarts faults);
  check_bool "healthy node passes" true
    (Faults.consult faults ~src:(Faults.Server 0) ~dst:(Faults.Server remote)
    = Faults.Pass)

(* Differential: the crash-storm region (server crashes + controller
   failover) must produce identical fault timing digests — and MTTR
   figures — for any shard count. *)
let storm_cfg =
  {
    Region_sim.default_config with
    Region_sim.racks = 30;
    servers_per_rack = 2;
    duration = 8.0;
    tick = 0.05;
    flow_timers = 4;
    seed = 7;
    hotspot_quantile = 0.80;
    spikes_per_day = 4.0;
    ramp_median = 2.0;
    hold = 1.0;
    report_interval = 0.1;
    scan_interval = 0.1;
    crash_rate = 1.0;
    reboot_delay = 0.3;
    resync_delay = 0.05;
    ctl_crash_at = Some 3.0;
    ctl_failover = 0.4;
  }

let test_storm_digest_shard_invariant () =
  let r1 = Region_sim.run { storm_cfg with Region_sim.shards = 1 } in
  let r3 = Region_sim.run { storm_cfg with Region_sim.shards = 3 } in
  check_bool "storm actually crashed servers" true (r1.Region_sim.crashes > 0);
  check_int "same digest across shard counts" r1.Region_sim.digest r3.Region_sim.digest;
  check_int "same crashes" r1.Region_sim.crashes r3.Region_sim.crashes;
  check_int "every crash rebooted" r1.Region_sim.crashes r1.Region_sim.restarts;
  check_bool "identical MTTR percentiles" true
    (r1.Region_sim.mttr_p50 = r3.Region_sim.mttr_p50
    && r1.Region_sim.mttr_p99 = r3.Region_sim.mttr_p99);
  check_int "one controller takeover" 1 r1.Region_sim.ctl_takeovers;
  check_int "no post-convergence blackholes" 0 r1.Region_sim.late_blackholed;
  check_bool "storm blackholed traffic while nodes were down" true
    (r1.Region_sim.blackholed_ticks > 0)

(* ------------------------------------------------------------------ *)
(* QCheck: a vSwitch crashed (volatile state wiped) mid-run is
   observationally equivalent to a freshly provisioned one receiving
   the same post-restart traffic *)

type world = {
  wsim : Sim.t;
  wvs : Vswitch.t;
  wrs : Ruleset.t;
  wnet : int ref;
  wvm : int ref;
}

let vnic_q = Vnic.make ~id:1 ~vpc:(Vpc.make 5) ~ip:(ip "10.0.0.1") ~mac:(Mac.of_int64 0x1L)

let qworld () =
  let sim = Sim.create () in
  let vs =
    Vswitch.create ~sim
      ~params:{ Params.default with Params.cpu_hz = 1e8; mem_bytes = 8 * 1024 * 1024 }
      ~name:"vsq" ~underlay_ip:(ip "192.168.0.1") ~gateway:(ip "192.168.255.254") ()
  in
  let wnet = ref 0 and wvm = ref 0 in
  Vswitch.set_sink vs
    {
      Vswitch.on_output =
        (function Vswitch.To_net _ -> incr wnet | Vswitch.To_vm _ -> incr wvm);
      on_net_batch =
        (fun b ->
          wnet := !wnet + Pbatch.length b;
          Pbatch.recycle b);
    };
  let rs = Ruleset.create ~vni:5 () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping rs
    { Vnic.Addr.vpc = Vpc.make 5; ip = ip "10.0.0.2" }
    (ip "192.168.0.2");
  (match Vswitch.add_vnic vs vnic_q rs with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "qworld vnic must fit");
  { wsim = sim; wvs = vs; wrs = rs; wnet; wvm }

(* One scripted packet: [(tx, v)] picks direction and flow variant
   (variant 5 on TX is unroutable and must drop). *)
let qsend w (tx, v) =
  let t0 = Sim.now w.wsim in
  (if tx then
     let dst = if v = 5 then "172.16.0.1" else "10.0.0.2" in
     let flow =
       Five_tuple.make ~src:(ip "10.0.0.1") ~dst:(ip dst) ~src_port:(40000 + v)
         ~dst_port:80 ~proto:Five_tuple.Tcp
     in
     Vswitch.from_vm w.wvs vnic_q.Vnic.id
       (Packet.create ~vpc:(Vpc.make 5) ~flow ~direction:Packet.Tx ~flags:Packet.syn ())
   else begin
     let flow =
       Five_tuple.make ~src:(ip "10.0.0.2") ~dst:(ip "10.0.0.1") ~src_port:(50000 + v)
         ~dst_port:80 ~proto:Five_tuple.Tcp
     in
     let p =
       Packet.create ~vpc:(Vpc.make 5) ~flow ~direction:Packet.Rx ~flags:Packet.syn ()
     in
     Packet.encap_vxlan p ~vni:5 ~outer_src:(ip "192.168.0.2") ~outer_dst:(ip "192.168.0.1");
     Vswitch.from_net w.wvs p
   end);
  Sim.run w.wsim ~until:(t0 +. 0.01)

type observation = {
  o_sessions : int;
  o_rx : int;
  o_tx : int;
  o_delivered : int;
  o_forwarded : int;
  o_slow : int;
  o_fast : int;
  o_created : int;
  o_drops : int;
  o_mf_hits : int;
  o_mf_misses : int;
  o_net : int;
  o_vm : int;
}

let observe w ~mf0_hits ~mf0_misses =
  let c = Vswitch.counters w.wvs in
  {
    o_sessions = Vswitch.session_count w.wvs vnic_q.Vnic.id;
    o_rx = counter c.Vswitch.rx_packets;
    o_tx = counter c.Vswitch.tx_packets;
    o_delivered = counter c.Vswitch.delivered;
    o_forwarded = counter c.Vswitch.forwarded;
    o_slow = counter c.Vswitch.slow_path_execs;
    o_fast = counter c.Vswitch.fast_path_hits;
    o_created = counter c.Vswitch.sessions_created;
    o_drops = Vswitch.total_drops w.wvs;
    o_mf_hits = Ruleset.megaflow_hits w.wrs - mf0_hits;
    o_mf_misses = Ruleset.megaflow_misses w.wrs - mf0_misses;
    o_net = !(w.wnet);
    o_vm = !(w.wvm);
  }

let spec_gen =
  QCheck.(
    pair
      (list_of_size Gen.(int_range 1 25) (pair bool (int_range 0 5)))
      (list_of_size Gen.(int_range 1 25) (pair bool (int_range 0 5))))

let qtest_restart_equiv_fresh =
  QCheck.Test.make ~name:"crashed-and-wiped vSwitch == freshly provisioned" ~count:40
    spec_gen (fun (warmup, post) ->
      (* World A: warm up with arbitrary traffic, then crash (volatile
         wipe: sessions, cached flows, counters). *)
      let a = qworld () in
      List.iter (qsend a) warmup;
      Vswitch.wipe_volatile a.wvs;
      a.wnet := 0;
      a.wvm := 0;
      let a_h0 = Ruleset.megaflow_hits a.wrs and a_m0 = Ruleset.megaflow_misses a.wrs in
      (* World B: provisioned fresh, never saw the warmup. *)
      let b = qworld () in
      List.iter (qsend a) post;
      List.iter (qsend b) post;
      observe a ~mf0_hits:a_h0 ~mf0_misses:a_m0
      = observe b ~mf0_hits:0 ~mf0_misses:0)

(* Epoch fence unit semantics, shared by vSwitch and gateway. *)
let test_epoch_fence_semantics () =
  let w = qworld () in
  check_int "boot epoch" 0 (Vswitch.epoch w.wvs);
  check_bool "higher epoch accepted" true (Vswitch.observe_epoch w.wvs ~epoch:3);
  check_bool "equal epoch accepted" true (Vswitch.observe_epoch w.wvs ~epoch:3);
  check_bool "lower epoch rejected" false (Vswitch.observe_epoch w.wvs ~epoch:2);
  check_int "rejections counted" 1 (Vswitch.epoch_rejections w.wvs);
  check_int "high-water mark kept" 3 (Vswitch.epoch w.wvs);
  (* The fence survives a crash: epochs are durable, volatile state is
     not (otherwise a reboot would reopen the split-brain window). *)
  Vswitch.wipe_volatile w.wvs;
  check_bool "stale epoch still rejected after a wipe" false
    (Vswitch.observe_epoch w.wvs ~epoch:2)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "recovery"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "FE-host crash reconciles" `Quick
            test_fe_host_crash_reconciles;
          Alcotest.test_case "BE-host crash reinstalls tracker" `Quick
            test_be_host_crash_reinstalls_tracker;
          Alcotest.test_case "stale reconcile reply discarded" `Quick
            test_stale_reconcile_reply_discarded;
        ] );
      ( "split-brain",
        [ Alcotest.test_case "stale primary is fenced" `Quick test_split_brain_fencing ] );
      ( "be-retransmit",
        [
          Alcotest.test_case "no retx against a removed FE" `Quick
            test_no_retx_against_removed_fe;
        ] );
      ( "anti-entropy",
        [
          Alcotest.test_case "sweep repairs silent divergence" `Quick
            test_anti_entropy_repairs_divergence;
        ] );
      ( "sharded-faults",
        [
          Alcotest.test_case "crash lands on the owning shard" `Quick
            test_crash_on_remote_shard;
          Alcotest.test_case "storm digest shard-invariant" `Quick
            test_storm_digest_shard_invariant;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "epoch fence semantics" `Quick test_epoch_fence_semantics;
          QCheck_alcotest.to_alcotest qtest_restart_equiv_fresh;
        ] );
    ]
