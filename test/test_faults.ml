(* Tests for the fault-injection plane and the loss-recovery machinery it
   exercises: per-reason fabric drops, BE hop tracking (ack, re-steer,
   local fallback), §C.2 mass-failure suppression under a rack partition,
   and whole-run determinism. *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_harness
open Nezha_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let counter c = Stats.Counter.value c

(* ------------------------------------------------------------------ *)
(* Faults: the plane itself *)

let mk_faults ?(racks = 3) ?(servers_per_rack = 2) ?(seed = 7) () =
  let sim = Sim.create () in
  let topo = Topology.create ~racks ~servers_per_rack in
  (sim, topo, Faults.create ~sim ~topology:topo ~rng:(Rng.create seed) ())

let test_consult_stream_deterministic () =
  let stream () =
    let _, _, f = mk_faults () in
    Faults.set_default f (Faults.impair ~loss:0.3 ~dup:0.2 ~reorder:0.2 ());
    List.init 500 (fun i ->
        Faults.consult f ~src:(Faults.Server (i mod 6)) ~dst:(Faults.Server ((i + 1) mod 6)))
  in
  let a = stream () and b = stream () in
  check_bool "same seed, same verdicts" true (a = b);
  check_bool "some were drops" true (List.mem Faults.Drop a);
  check_bool "some passed" true (List.mem Faults.Pass a)

let test_perfect_plane_draws_nothing () =
  let _, _, f = mk_faults () in
  for i = 0 to 99 do
    match Faults.consult f ~src:(Faults.Server (i mod 6)) ~dst:Faults.Gateway with
    | Faults.Pass -> ()
    | _ -> Alcotest.fail "perfect plane must pass everything"
  done;
  check_int "no injected drops" 0 (Faults.drops_injected f);
  check_int "100 consults" 100 (Faults.consults f)

let test_partition_semantics () =
  let _, _, f = mk_faults () in
  let s i = Faults.Server i in
  (* Directional link cut. *)
  Faults.cut_link f ~src:(s 0) ~dst:(s 1);
  check_bool "cut direction drops" true (Faults.consult f ~src:(s 0) ~dst:(s 1) = Faults.Drop);
  check_bool "reverse direction passes" true (Faults.consult f ~src:(s 1) ~dst:(s 0) = Faults.Pass);
  Faults.heal_link f ~src:(s 0) ~dst:(s 1);
  check_bool "healed link passes" true (Faults.consult f ~src:(s 0) ~dst:(s 1) = Faults.Pass);
  (* Server isolation is bidirectional and covers the gateway. *)
  Faults.cut_server f 2;
  check_bool "to cut server" true (Faults.consult f ~src:(s 0) ~dst:(s 2) = Faults.Drop);
  check_bool "from cut server" true (Faults.consult f ~src:(s 2) ~dst:(s 0) = Faults.Drop);
  check_bool "gateway to cut server" true
    (Faults.consult f ~src:Faults.Gateway ~dst:(s 2) = Faults.Drop);
  Faults.heal_server f 2;
  check_bool "healed server passes" true (Faults.consult f ~src:(s 0) ~dst:(s 2) = Faults.Pass);
  (* Rack isolation: boundary hops drop, intra-rack survives. *)
  Faults.cut_rack f ~rack:1;
  check_bool "intra-rack survives" true (Faults.consult f ~src:(s 2) ~dst:(s 3) = Faults.Pass);
  check_bool "into the rack drops" true (Faults.consult f ~src:(s 0) ~dst:(s 2) = Faults.Drop);
  check_bool "rack to gateway drops" true
    (Faults.consult f ~src:(s 3) ~dst:Faults.Gateway = Faults.Drop);
  check_bool "partitioned view agrees" true (Faults.partitioned f ~src:(s 0) ~dst:(s 2));
  (* Two different cut racks cannot talk either. *)
  Faults.cut_rack f ~rack:0;
  check_bool "cut rack to cut rack drops" true
    (Faults.consult f ~src:(s 0) ~dst:(s 2) = Faults.Drop);
  check_bool "intra rack 0 survives" true (Faults.consult f ~src:(s 0) ~dst:(s 1) = Faults.Pass);
  Faults.heal_rack f ~rack:0;
  Faults.heal_rack f ~rack:1;
  check_bool "all healed" true (Faults.consult f ~src:(s 0) ~dst:(s 2) = Faults.Pass);
  check_bool "partition drops counted" true (Faults.partition_drops f > 0);
  check_int "no probabilistic drops" 0 (Faults.drops_injected f)

(* ------------------------------------------------------------------ *)
(* Fabric integration: per-reason accounting and the probe path *)

let mk_fabric () =
  let sim = Sim.create () in
  let topo = Topology.create ~racks:2 ~servers_per_rack:2 in
  let fabric = Fabric.create ~sim ~topology:topo in
  ignore (Fabric.add_server fabric 0 ~params:Params.scaled : Vswitch.t);
  ignore (Fabric.add_server fabric 1 ~params:Params.scaled : Vswitch.t);
  let faults = Faults.create ~sim ~topology:topo ~rng:(Rng.create 5) () in
  Fabric.set_faults fabric (Some faults);
  (sim, topo, fabric, faults)

let vxlan_pkt topo ~dst =
  let flow =
    Five_tuple.make ~src:(Ipv4.of_octets 10 0 0 1) ~dst:(Ipv4.of_octets 10 0 0 2)
      ~src_port:1234 ~dst_port:80 ~proto:Five_tuple.Udp
  in
  let pkt = Packet.create ~vpc:(Vpc.make 9) ~flow ~direction:Packet.Tx ~payload_len:64 () in
  Packet.encap_vxlan pkt ~vni:9 ~outer_src:(Topology.underlay_ip topo 0) ~outer_dst:dst;
  pkt

let test_fabric_per_reason_drops () =
  let sim, topo, fabric, faults = mk_fabric () in
  (* Probabilistic loss. *)
  Faults.set_default faults (Faults.impair ~loss:1.0 ());
  Fabric.deliver_to_server fabric ~src:0 (vxlan_pkt topo ~dst:(Topology.underlay_ip topo 1));
  Sim.run sim ~until:0.1;
  check_int "fault-injected loss counted" 1 (Fabric.lost_by fabric Fabric.Fault_injected);
  check_int "probabilistic drop counted" 1 (Faults.drops_injected faults);
  (* Partition drop lands in the same fabric reason, separate fault
     counter. *)
  Faults.set_default faults Faults.perfect;
  Faults.cut_server faults 1;
  Fabric.deliver_to_server fabric ~src:0 (vxlan_pkt topo ~dst:(Topology.underlay_ip topo 1));
  Sim.run sim ~until:0.2;
  check_int "partition loss counted" 2 (Fabric.lost_by fabric Fabric.Fault_injected);
  check_int "partition drop counted" 1 (Faults.partition_drops faults);
  Faults.heal_server faults 1;
  (* Wiring reasons are distinct. *)
  Fabric.deliver_to_server fabric ~src:0 (vxlan_pkt topo ~dst:(Ipv4.of_octets 99 9 9 9));
  Sim.run sim ~until:0.3;
  check_int "unknown server counted" 1 (Fabric.lost_by fabric Fabric.No_such_server);
  let flow =
    Five_tuple.make ~src:(Ipv4.of_octets 10 0 0 1) ~dst:(Ipv4.of_octets 10 0 0 2)
      ~src_port:1 ~dst_port:2 ~proto:Five_tuple.Udp
  in
  Fabric.deliver_to_server fabric ~src:0
    (Packet.create ~vpc:(Vpc.make 9) ~flow ~direction:Packet.Tx ());
  Sim.run sim ~until:0.4;
  check_int "missing vxlan counted" 1 (Fabric.lost_by fabric Fabric.No_vxlan);
  check_int "total is the sum" (Fabric.lost_by fabric Fabric.Fault_injected + 2)
    (Fabric.lost fabric)

let test_ping_respects_partitions () =
  let sim, _, fabric, faults = mk_fabric () in
  let got = ref 0 in
  Fabric.ping fabric ~dst:1 ~reply:(fun () -> incr got);
  Sim.run sim ~until:0.1;
  check_int "healthy probe replies" 1 !got;
  Faults.cut_server faults 1;
  Fabric.ping fabric ~dst:1 ~reply:(fun () -> incr got);
  Sim.run sim ~until:0.2;
  check_int "partitioned probe is silent" 1 !got;
  Faults.heal_server faults 1;
  Fabric.ping fabric ~dst:1 ~reply:(fun () -> incr got);
  Sim.run sim ~until:0.3;
  check_int "healed probe replies" 2 !got;
  (* A crashed SmartNIC also eats probes (node dead, network fine). *)
  Smartnic.crash (Vswitch.nic (Fabric.vswitch fabric 1));
  Fabric.ping fabric ~dst:1 ~reply:(fun () -> incr got);
  Sim.run sim ~until:0.4;
  check_int "crashed node is silent" 2 !got

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_faults_telemetry_registered () =
  let _, _, fabric, faults = mk_fabric () in
  ignore faults;
  let reg = Nezha_telemetry.Telemetry.create () in
  Fabric.register_telemetry fabric reg;
  let dump = Nezha_telemetry.Telemetry.dump_json_string reg in
  check_bool "faults counters exported" true (contains ~sub:"fabric/faults/drops_injected" dump);
  check_bool "partition counter exported" true
    (contains ~sub:"fabric/faults/partition_drops" dump)

(* ------------------------------------------------------------------ *)
(* BE hop recovery *)

let test_be_ack_path_clean_network () =
  let t = Testbed.create ~seed:11 () in
  let o = Testbed.offload t () in
  ignore (Testbed.run_crr t ~rate:200.0 ~duration:2.0 () : Tcp_crr.t);
  let c = Be.counters (Controller.offload_be o) in
  let tracked = counter c.Be.offload_tracked in
  check_bool "offloads were tracked" true (tracked > 0);
  check_int "every send acked" tracked (counter c.Be.offload_acked);
  check_int "nothing outstanding" 0 (Be.outstanding (Controller.offload_be o));
  check_int "no timeouts on a clean network" 0 (counter c.Be.offload_timeouts);
  let acks_sent =
    List.fold_left
      (fun acc s ->
        match Controller.fe_service t.Testbed.ctl s with
        | Some fe -> acc + counter (Fe.counters fe).Fe.hop_acks_sent
        | None -> acc)
      0
      (Controller.offload_fe_servers o)
  in
  check_bool "FEs sent the acks" true (acks_sent >= tracked)

let conservation_holds c be =
  counter c.Be.offload_tracked
  = counter c.Be.offload_acked + counter c.Be.local_fallback + counter c.Be.offload_dropped
    + Be.outstanding be

let test_be_resteer_around_cut_fe () =
  let t = Testbed.create ~seed:12 () in
  let o = Testbed.offload t () in
  (* No Controller.start: the monitor must not rescue us — this isolates
     the data-plane recovery.  Cut only the BE→FE direction: client→FE
     uses the same flow hash, so cutting the whole server would keep the
     affected flows from ever reaching the BE. *)
  (match Controller.offload_fe_servers o with
  | s :: _ ->
    Faults.cut_link t.Testbed.faults
      ~src:(Faults.Server t.Testbed.heavy_server) ~dst:(Faults.Server s)
  | [] -> Alcotest.fail "no FEs");
  let crr =
    Tcp_crr.start_closed ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
      ~client:t.Testbed.clients.(0) ~server:t.Testbed.server ~concurrency:16 ~duration:4.0
      ~conn_timeout:0.5 ~retransmit:true ()
  in
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 6.0);
  let be = Controller.offload_be o in
  let c = Be.counters be in
  check_bool "timeouts fired" true (counter c.Be.offload_timeouts > 0);
  check_bool "retransmissions re-steered" true (counter c.Be.offload_resteered > 0);
  check_bool "traffic still completes" true (Tcp_crr.completed crr > 0);
  check_bool "conservation invariant" true (conservation_holds c be)

let test_be_local_fallback_when_all_fes_cut () =
  let t = Testbed.create ~seed:13 () in
  let o = Testbed.offload t () in
  List.iter (fun s -> Faults.cut_server t.Testbed.faults s) (Controller.offload_fe_servers o);
  (* Outbound traffic from the heavy VM: every FE hop will time out; the
     BE must degrade to its fallback tables, not blackhole. *)
  let received = ref 0 in
  Vm.set_app t.Testbed.clients.(0).Tcp_crr.vm (fun _ _ -> incr received);
  let flow =
    Five_tuple.make ~src:Testbed.heavy_ip ~dst:t.Testbed.clients.(0).Tcp_crr.ip ~src_port:7000
      ~dst_port:7001 ~proto:Five_tuple.Udp
  in
  let n = 60 in
  let rec send i sim =
    if i < n then begin
      Vswitch.from_vm t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id
        (Packet.create ~vpc:t.Testbed.vpc ~flow ~direction:Packet.Tx ~payload_len:100 ());
      ignore (Sim.schedule sim ~delay:0.01 (send (i + 1)) : Sim.handle)
    end
  in
  ignore (Sim.schedule t.Testbed.sim ~delay:0.0 (send 0) : Sim.handle);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  let be = Controller.offload_be o in
  let c = Be.counters be in
  check_bool "tracked sends gave up into the local path" true (counter c.Be.local_fallback > 0);
  check_bool "later sends bypassed the hop entirely" true (counter c.Be.local_bypass > 0);
  check_int "nothing blackholed" 0 (counter c.Be.offload_dropped);
  check_int "nothing outstanding" 0 (Be.outstanding be);
  check_bool "conservation invariant" true (conservation_holds c be);
  check_bool "most packets still reached the peer VM" true (!received >= n - 5)

(* ------------------------------------------------------------------ *)
(* §C.2: a rack partition downing most watched FEs must suppress
   automatic removal; healing resumes ordinary detection. *)

let test_mass_failure_suppression_under_rack_partition () =
  let t = Testbed.create ~seed:14 () in
  (* Force the FE pool into rack 2 so one rack cut downs every FE. *)
  List.iter
    (fun s ->
      if Topology.rack_of (Fabric.topology t.Testbed.fabric) s = 2 then
        Vswitch.set_software_version (Fabric.vswitch t.Testbed.fabric s) 7)
    (Topology.servers (Fabric.topology t.Testbed.fabric));
  let o =
    match
      Controller.offload_vnic t.Testbed.ctl ~server:t.Testbed.heavy_server
        ~vnic:Testbed.heavy_vnic_id ~version_filter:(fun v -> v = 7) ()
    with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 5.0);
  let fes_before = Controller.offload_fe_servers o in
  check_int "four FEs placed" 4 (List.length fes_before);
  Controller.start t.Testbed.ctl;
  let mon = Controller.monitor t.Testbed.ctl in
  Faults.cut_rack t.Testbed.faults ~rack:2;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 4.0);
  check_bool "mass failure suspected" true (Monitor.mass_failure_suspected mon > 0);
  check_int "no FE removed while suspected" (List.length fes_before)
    (List.length (Controller.offload_fe_servers o));
  check_int "no failure declared" 0 (Monitor.failures_declared mon);
  check_bool "misses were observed" true (Monitor.probes_missed mon > 0);
  (* Heal; detection of a genuinely dead FE must then work again. *)
  Faults.heal_rack t.Testbed.faults ~rack:2;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 2.0);
  let victim = List.hd (Controller.offload_fe_servers o) in
  Smartnic.crash (Vswitch.nic (Fabric.vswitch t.Testbed.fabric victim));
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 4.0);
  check_bool "single failure declared after healing" true (Monitor.failures_declared mon >= 1);
  check_bool "victim removed from the location config" true
    (not (List.mem victim (Controller.offload_fe_servers o)))

(* ------------------------------------------------------------------ *)
(* Determinism: identical seeds must give byte-identical telemetry *)

let chaos_like_run () =
  let t = Testbed.create ~seed:42 () in
  let o = Testbed.offload t () in
  let t0 = Sim.now t.Testbed.sim in
  Faults.set_default t.Testbed.faults (Faults.impair ~loss:0.005 ());
  Faults.at t.Testbed.faults ~time:(t0 +. 1.0) (fun f ->
      match Controller.offload_fe_servers o with
      | s :: _ -> Faults.cut_server f s
      | [] -> ());
  Faults.at t.Testbed.faults ~time:(t0 +. 2.0) (fun f ->
      match Controller.offload_fe_servers o with
      | s :: _ -> Faults.heal_server f s
      | [] -> ());
  ignore (Testbed.run_crr t ~rate:150.0 ~duration:3.0 () : Tcp_crr.t);
  Nezha_telemetry.Telemetry.dump_json_string ~at:(Sim.now t.Testbed.sim) t.Testbed.telemetry

let test_same_seed_identical_telemetry () =
  let a = chaos_like_run () in
  let b = chaos_like_run () in
  check_bool "byte-identical telemetry dumps" true (String.equal a b)

(* ------------------------------------------------------------------ *)
(* Fig. 14 on a lossy underlay: crash surge bounded and recovered *)

let test_fig14_under_underlay_loss () =
  let samples = Experiments.fig14 ~seed:1 ~underlay_loss:0.01 () in
  check_bool "samples collected" true (List.length samples > 40);
  (* The crash at t=4 must be healed within the detection bound
     (interval x misses + probe_timeout + routing update ≈ 2 s): from
     t=7 on, loss sits near the 1% underlay floor again. *)
  let tail = List.filter (fun (t, _) -> t >= 7.0) samples in
  let worst_tail = List.fold_left (fun acc (_, l) -> Float.max acc l) 0.0 tail in
  check_bool "loss recovered to the underlay floor" true (worst_tail <= 0.06);
  let mean_tail =
    List.fold_left (fun acc (_, l) -> acc +. l) 0.0 tail /. float_of_int (List.length tail)
  in
  check_bool "tail mean near 1%" true (mean_tail <= 0.03)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "plane",
        [
          Alcotest.test_case "consult stream deterministic" `Quick
            test_consult_stream_deterministic;
          Alcotest.test_case "perfect plane draws nothing" `Quick
            test_perfect_plane_draws_nothing;
          Alcotest.test_case "partition semantics" `Quick test_partition_semantics;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "per-reason drops" `Quick test_fabric_per_reason_drops;
          Alcotest.test_case "ping respects partitions" `Quick test_ping_respects_partitions;
          Alcotest.test_case "faults telemetry registered" `Quick
            test_faults_telemetry_registered;
        ] );
      ( "be-recovery",
        [
          Alcotest.test_case "ack path on a clean network" `Quick
            test_be_ack_path_clean_network;
          Alcotest.test_case "re-steer around a cut FE" `Quick test_be_resteer_around_cut_fe;
          Alcotest.test_case "local fallback when all FEs cut" `Quick
            test_be_local_fallback_when_all_fes_cut;
        ] );
      ( "mass-failure",
        [
          Alcotest.test_case "rack partition suppresses removal" `Quick
            test_mass_failure_suppression_under_rack_partition;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical telemetry" `Slow
            test_same_seed_identical_telemetry;
        ] );
      ( "fig14-lossy",
        [
          Alcotest.test_case "crash recovery under 1% loss" `Slow
            test_fig14_under_underlay_loss;
        ] );
    ]
