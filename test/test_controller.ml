(* Controller edge cases: error paths, idempotence guards, capacity
   limits, and bookkeeping invariants. *)

open Nezha_engine
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let is_error = function Error _ -> true | Ok _ -> false

let offload_now t =
  Controller.offload_vnic t.Testbed.ctl ~server:t.Testbed.heavy_server
    ~vnic:Testbed.heavy_vnic_id ()

(* ------------------------------------------------------------------ *)

let test_double_offload_rejected () =
  let t = Testbed.create () in
  (match offload_now t with Ok _ -> () | Error e -> Alcotest.fail e);
  check_bool "second offload rejected" true (is_error (offload_now t));
  Sim.run t.Testbed.sim ~until:5.0;
  check_bool "still rejected after completion" true (is_error (offload_now t));
  check_int "only one offload event" 1 (Controller.offload_events t.Testbed.ctl)

let test_offload_unknown_vnic () =
  let t = Testbed.create () in
  check_bool "unknown vnic" true
    (is_error
       (Controller.offload_vnic t.Testbed.ctl ~server:t.Testbed.heavy_server
          ~vnic:(Vnic.id_of_int 777) ()));
  check_bool "bad server" true
    (is_error (Controller.offload_vnic t.Testbed.ctl ~server:9999 ~vnic:Testbed.heavy_vnic_id ()))

let test_double_fallback_rejected () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  (match Controller.fallback_vnic t.Testbed.ctl o with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "second fallback rejected while in progress" true
    (is_error (Controller.fallback_vnic t.Testbed.ctl o));
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  check_bool "and after completion (offload gone)" true
    (is_error (Controller.fallback_vnic t.Testbed.ctl o))

let test_offload_after_fallback_works () =
  (* The full round trip is repeatable. *)
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  (match Controller.fallback_vnic t.Testbed.ctl o with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  let o2 = Testbed.offload t () in
  check_int "four FEs again" 4 (List.length (Controller.offload_fe_servers o2));
  check_int "two offload events" 2 (Controller.offload_events t.Testbed.ctl)

let test_migrate_errors () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  check_bool "target without vswitch" true
    (is_error (Controller.migrate_be t.Testbed.ctl o ~to_server:9999));
  (* A server can't re-host the vNIC it already has. *)
  check_bool "same server rejected" true
    (is_error (Controller.migrate_be t.Testbed.ctl o ~to_server:t.Testbed.heavy_server));
  (match Controller.fallback_vnic t.Testbed.ctl o with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  check_bool "migrate after fallback rejected" true
    (is_error (Controller.migrate_be t.Testbed.ctl o ~to_server:5))

let test_pin_errors () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  (match Controller.fallback_vnic t.Testbed.ctl o with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  let flow =
    Nezha_net.Five_tuple.make ~src:Testbed.heavy_ip
      ~dst:t.Testbed.clients.(0).Nezha_workloads.Tcp_crr.ip ~src_port:1 ~dst_port:2
      ~proto:Nezha_net.Five_tuple.Udp
  in
  check_bool "pin on inactive offload rejected" true
    (is_error (Controller.pin_elephant t.Testbed.ctl o flow))

let test_scale_out_limits () =
  let t = Testbed.create ~racks:2 ~servers_per_rack:4 ~clients:2 () in
  (* 8 servers: any idle vSwitch but the BE qualifies, clients included
     (they are barely loaded) — 7 candidates. *)
  let o = Testbed.offload t ~num_fes:4 () in
  check_int "zero add is zero" 0 (Controller.scale_out t.Testbed.ctl o ~add:0);
  let added = Controller.scale_out t.Testbed.ctl o ~add:10 in
  check_int "supply-bounded" 3 added;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  check_int "seven FEs total" 7 (List.length (Controller.offload_fe_servers o))

let test_offload_more_fes_than_pool () =
  let t = Testbed.create ~racks:2 ~servers_per_rack:4 ~clients:2 () in
  match
    Controller.offload_vnic t.Testbed.ctl ~server:t.Testbed.heavy_server
      ~vnic:Testbed.heavy_vnic_id ~num_fes:64 ()
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Sim.run t.Testbed.sim ~until:5.0;
    check_int "capped at the candidate supply" 7 (List.length (Controller.offload_fe_servers o))

let test_completion_bookkeeping () =
  let t = Testbed.create () in
  for _ = 1 to 3 do
    let o = Testbed.offload t () in
    (match Controller.fallback_vnic t.Testbed.ctl o with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0)
  done;
  check_int "three completions recorded" 3
    (Stats.Histogram.count (Controller.completion_times_ms t.Testbed.ctl));
  check_int "three events" 3 (Controller.offload_events t.Testbed.ctl);
  check_int "twelve FEs provisioned" 12 (Controller.fes_provisioned t.Testbed.ctl);
  let avg = Stats.Histogram.mean (Controller.completion_times_ms t.Testbed.ctl) in
  check_bool "activation on the second scale" true (avg > 200.0 && avg < 5000.0)

let test_utilization_views_sane () =
  let t = Testbed.create () in
  List.iter
    (fun s ->
      let cpu = Controller.last_cpu t.Testbed.ctl s and mem = Controller.last_mem t.Testbed.ctl s in
      check_bool "cpu in range" true (cpu >= 0.0 && cpu <= 1.0);
      check_bool "mem in range" true (mem >= 0.0 && mem <= 1.0))
    (Topology.servers (Fabric.topology t.Testbed.fabric));
  check_bool "unknown server pessimistic" true (Controller.last_cpu t.Testbed.ctl 9999 >= 1.0)

let test_update_rules_during_dual_running () =
  let t = Testbed.create () in
  match offload_now t with
  | Error e -> Alcotest.fail e
  | Ok o ->
    (* Still configuring: BE tables local, no FE replicas yet.  The
       update must not crash and must reach the master copy. *)
    Controller.update_tenant_rules t.Testbed.ctl o (fun rs ->
        Ruleset.add_route rs (Nezha_net.Ipv4.Prefix.make (Nezha_net.Ipv4.of_octets 172 16 0 0) 12));
    Sim.run t.Testbed.sim ~until:5.0;
    check_bool "offload still completed" true (Controller.offload_stage o = Be.Final);
    (* The FE replicas were cloned from the updated master. *)
    let addr = { Vnic.Addr.vpc = t.Testbed.vpc; ip = Testbed.heavy_ip } in
    let probe =
      Nezha_net.Five_tuple.make ~src:Testbed.heavy_ip
        ~dst:(Nezha_net.Ipv4.of_octets 172 16 0 5) ~src_port:1000 ~dst_port:80
        ~proto:Nezha_net.Five_tuple.Tcp
    in
    List.iter
      (fun s ->
        match Controller.fe_service t.Testbed.ctl s with
        | Some fe -> (
          match Fe.ruleset_of fe addr with
          | Some replica ->
            check_bool "replica has the new route" true
              (Ruleset.lookup replica ~params:Params.scaled ~vpc:t.Testbed.vpc ~flow_tx:probe
              <> None)
          | None -> Alcotest.fail "replica missing")
        | None -> ())
      (Controller.offload_fe_servers o)

(* ------------------------------------------------------------------ *)
(* p2c placement policy and the SLO loop (ROADMAP item 4) *)

let test_p2c_policy_places_offload () =
  let cfg =
    { Controller.default_config with Controller.placement = Placement.Power_of_two }
  in
  let t = Testbed.create ~controller_config:cfg () in
  Controller.start t.Testbed.ctl;
  let o = Testbed.offload t () in
  let fes = Controller.offload_fe_servers o in
  check_int "four FEs" 4 (List.length fes);
  check_int "distinct FEs" 4 (List.length (List.sort_uniq compare fes));
  check_bool "BE is not an FE" true (not (List.mem t.Testbed.heavy_server fes));
  List.iter
    (fun s ->
      check_bool "load signal non-negative" true
        (Controller.load_signal t.Testbed.ctl s >= 0.0))
    fes;
  (* Same seed, same draw: p2c placement is deterministic. *)
  let t2 = Testbed.create ~controller_config:cfg () in
  Controller.start t2.Testbed.ctl;
  let o2 = Testbed.offload t2 () in
  Alcotest.(check (list int)) "seed-deterministic placement" fes
    (Controller.offload_fe_servers o2)

let test_slo_loop_scales_out_on_tight_budget () =
  (* A 1 µs budget no real hop can meet: every post-warmup tick wants
     capacity, so the pool must climb to the candidate supply. *)
  let slo =
    {
      Slo.default_config with
      Slo.target_p99 = 1e-6;
      cooldown = 2.0;
      warmup = 1.0;
      min_pool = 2;
      max_pool = 7;
      max_step = 1;
    }
  in
  let cfg = { Controller.default_config with Controller.slo = Some slo } in
  let t = Testbed.create ~racks:2 ~servers_per_rack:4 ~clients:2 ~controller_config:cfg () in
  Controller.start t.Testbed.ctl;
  let o = Testbed.offload t () in
  ignore (Testbed.run_crr t ~rate:200.0 ~duration:12.0 () : Nezha_workloads.Tcp_crr.t);
  let slo_state = Option.get (Controller.slo t.Testbed.ctl) in
  check_bool "scale-outs happened" true (Slo.scale_outs slo_state > 0);
  check_bool "pool grew beyond the initial four" true
    (List.length (Controller.offload_fe_servers o) > 4);
  check_bool "pool gauge agrees" true (Controller.slo_pool_size t.Testbed.ctl > 4)

let test_slo_loop_scales_in_to_the_floor () =
  (* A 10 s budget every hop beats: the loop must drain the pool, and
     stop exactly at the serving minimum. *)
  let slo =
    {
      Slo.default_config with
      Slo.target_p99 = 10.0;
      cooldown = 2.0;
      warmup = 1.0;
      min_pool = 2;
      max_pool = 8;
      max_step = 1;
    }
  in
  let cfg =
    { Controller.default_config with Controller.slo = Some slo; min_fes = 2 }
  in
  let t = Testbed.create ~controller_config:cfg () in
  Controller.start t.Testbed.ctl;
  let o = Testbed.offload t () in
  check_int "starts at four FEs" 4 (List.length (Controller.offload_fe_servers o));
  ignore (Testbed.run_crr t ~rate:200.0 ~duration:15.0 () : Nezha_workloads.Tcp_crr.t);
  let slo_state = Option.get (Controller.slo t.Testbed.ctl) in
  check_bool "scale-ins happened" true (Slo.scale_ins slo_state > 0);
  check_int "drained exactly to the serving minimum" 2
    (List.length (Controller.offload_fe_servers o))

let () =
  Alcotest.run "controller"
    [
      ( "errors",
        [
          Alcotest.test_case "double offload rejected" `Quick test_double_offload_rejected;
          Alcotest.test_case "unknown vnic/server" `Quick test_offload_unknown_vnic;
          Alcotest.test_case "double fallback rejected" `Quick test_double_fallback_rejected;
          Alcotest.test_case "migrate errors" `Quick test_migrate_errors;
          Alcotest.test_case "pin errors" `Quick test_pin_errors;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "scale-out limits" `Quick test_scale_out_limits;
          Alcotest.test_case "offload capped at pool" `Quick test_offload_more_fes_than_pool;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "offload after fallback" `Quick test_offload_after_fallback_works;
          Alcotest.test_case "completion histogram" `Quick test_completion_bookkeeping;
          Alcotest.test_case "utilization views" `Quick test_utilization_views_sane;
          Alcotest.test_case "rule update during dual-running" `Quick
            test_update_rules_during_dual_running;
        ] );
      ( "slo",
        [
          Alcotest.test_case "p2c policy places offloads" `Quick
            test_p2c_policy_places_offload;
          Alcotest.test_case "tight budget scales the pool out" `Quick
            test_slo_loop_scales_out_on_tight_budget;
          Alcotest.test_case "loose budget scales in to the floor" `Quick
            test_slo_loop_scales_in_to_the_floor;
        ] );
    ]
