(* Tests for the packet/addressing substrate. *)

open Nezha_net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Ipv4 *)

let ip = Ipv4.of_string_exn

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> check_str s s (Ipv4.to_string (ip s)))
    [ "0.0.0.0"; "10.1.2.3"; "192.168.255.1"; "255.255.255.255" ]

let test_ipv4_parse_invalid () =
  List.iter
    (fun s -> check_bool s true (Ipv4.of_string s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "1..2.3" ]

let test_ipv4_unsigned_order () =
  check_bool "200 > 100" true (Ipv4.compare (ip "200.0.0.1") (ip "100.0.0.1") > 0);
  check_bool "255.x biggest" true
    (Ipv4.compare (ip "255.0.0.0") (ip "127.255.255.255") > 0)

let test_ipv4_arith () =
  check_str "succ" "10.0.0.2" (Ipv4.to_string (Ipv4.succ (ip "10.0.0.1")));
  check_str "succ carries" "10.0.1.0" (Ipv4.to_string (Ipv4.succ (ip "10.0.0.255")));
  check_str "add" "10.0.1.4" (Ipv4.to_string (Ipv4.add (ip "10.0.0.0") 260))

let test_prefix_mem () =
  let p = Ipv4.Prefix.make (ip "10.1.0.0") 16 in
  check_bool "inside" true (Ipv4.Prefix.mem (ip "10.1.255.255") p);
  check_bool "outside" false (Ipv4.Prefix.mem (ip "10.2.0.0") p);
  let zero = Ipv4.Prefix.make (ip "1.2.3.4") 0 in
  check_bool "default route matches all" true (Ipv4.Prefix.mem (ip "200.9.9.9") zero)

let test_prefix_masking () =
  let p = Ipv4.Prefix.make (ip "10.1.2.3") 24 in
  check_str "base masked" "10.1.2.0" (Ipv4.to_string (Ipv4.Prefix.base p));
  check_int "length" 24 (Ipv4.Prefix.length p)

let test_prefix_subsumes () =
  let outer = Ipv4.Prefix.make (ip "10.0.0.0") 8 in
  let inner = Ipv4.Prefix.make (ip "10.5.0.0") 16 in
  check_bool "outer subsumes inner" true (Ipv4.Prefix.subsumes outer inner);
  check_bool "inner does not subsume outer" false (Ipv4.Prefix.subsumes inner outer);
  check_bool "self subsumes" true (Ipv4.Prefix.subsumes outer outer)

let test_prefix_parse () =
  (match Ipv4.Prefix.of_string "192.168.0.0/24" with
  | Some p ->
    check_str "parsed" "192.168.0.0/24" (Ipv4.Prefix.to_string p)
  | None -> Alcotest.fail "expected parse");
  check_bool "bad len" true (Ipv4.Prefix.of_string "1.2.3.4/33" = None);
  check_bool "no slash" true (Ipv4.Prefix.of_string "1.2.3.4" = None)

let prop_prefix_base_in_prefix =
  QCheck.Test.make ~name:"prefix base is a member" ~count:500
    QCheck.(pair (make Gen.ui64) (int_range 0 32))
    (fun (raw, len) ->
      let a = Ipv4.of_int32 (Int64.to_int32 raw) in
      let p = Ipv4.Prefix.make a len in
      Ipv4.Prefix.mem (Ipv4.Prefix.base p) p && Ipv4.Prefix.mem a p)

(* ------------------------------------------------------------------ *)
(* Mac *)

let test_mac_roundtrip () =
  List.iter
    (fun s ->
      match Mac.of_string s with
      | Some m -> check_str s s (Mac.to_string m)
      | None -> Alcotest.fail ("parse " ^ s))
    [ "00:00:00:00:00:00"; "aa:bb:cc:dd:ee:ff"; "02:42:ac:11:00:02" ]

let test_mac_invalid () =
  List.iter
    (fun s -> check_bool s true (Mac.of_string s = None))
    [ ""; "aa:bb:cc:dd:ee"; "gg:bb:cc:dd:ee:ff" ]

let test_mac_mask48 () =
  let m = Mac.of_int64 0xFFFF_AABB_CCDD_EEFFL in
  check_str "only 48 bits" "aa:bb:cc:dd:ee:ff" (Mac.to_string m);
  check_bool "broadcast" true (Mac.equal Mac.broadcast (Mac.of_int64 (-1L)))

(* ------------------------------------------------------------------ *)
(* Five_tuple *)

let tuple ?(sport = 1234) ?(dport = 80) ?(proto = Five_tuple.Tcp) src dst =
  Five_tuple.make ~src:(ip src) ~dst:(ip dst) ~src_port:sport ~dst_port:dport ~proto

let test_tuple_reverse_involution () =
  let t = tuple "10.0.0.1" "10.0.0.2" in
  check_bool "double reverse" true (Five_tuple.equal t (Five_tuple.reverse (Five_tuple.reverse t)))

let test_tuple_canonical_direction_free () =
  let t = tuple "10.0.0.9" "10.0.0.2" ~sport:5555 ~dport:80 in
  let c1 = Five_tuple.canonical t and c2 = Five_tuple.canonical (Five_tuple.reverse t) in
  check_bool "same canonical" true (Five_tuple.equal c1 c2);
  check_bool "canonical is canonical" true (Five_tuple.is_canonical c1)

let test_tuple_session_hash_direction_free () =
  let t = tuple "172.16.0.1" "10.0.0.2" ~sport:40000 ~dport:443 in
  check_int "session hash equal" (Five_tuple.session_hash t)
    (Five_tuple.session_hash (Five_tuple.reverse t))

let test_tuple_hash_spreads () =
  (* 5-tuple hashing is Nezha's FE load balancer: over many flows the
     buckets must be roughly even (§3.2.3). *)
  let buckets = Array.make 4 0 in
  let n = 20_000 in
  for i = 0 to n - 1 do
    let t =
      Five_tuple.make
        ~src:(Ipv4.add (ip "10.0.0.0") i)
        ~dst:(ip "10.255.0.1") ~src_port:(1024 + (i mod 50000)) ~dst_port:80
        ~proto:Five_tuple.Tcp
    in
    let b = Five_tuple.hash t mod 4 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      check_bool "bucket within 25±3%" true (frac > 0.22 && frac < 0.28))
    buckets

let test_tuple_port_masking () =
  let t = tuple "1.1.1.1" "2.2.2.2" ~sport:0x1ffff ~dport:80 in
  check_int "16-bit port" 0xffff t.Five_tuple.src_port

let prop_canonical_idempotent =
  let gen =
    QCheck.Gen.(
      map
        (fun (a, b, sp, dp) ->
          Five_tuple.make
            ~src:(Ipv4.of_int32 (Int32.of_int a))
            ~dst:(Ipv4.of_int32 (Int32.of_int b))
            ~src_port:sp ~dst_port:dp ~proto:Five_tuple.Tcp)
        (quad (int_bound 0xFFFFF) (int_bound 0xFFFFF) (int_bound 0xffff) (int_bound 0xffff)))
  in
  QCheck.Test.make ~name:"canonical is idempotent and direction-free" ~count:500
    (QCheck.make gen) (fun t ->
      let c = Five_tuple.canonical t in
      Five_tuple.equal c (Five_tuple.canonical c)
      && Five_tuple.equal c (Five_tuple.canonical (Five_tuple.reverse t)))

(* ------------------------------------------------------------------ *)
(* Wire *)

let test_wire_roundtrip_scalars () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0xAB;
  Wire.Writer.u16 w 0xCDEF;
  Wire.Writer.u32 w 0xDEADBEEFl;
  Wire.Writer.u64 w 0x0123456789ABCDEFL;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  check_int "u8" 0xAB (Wire.Reader.u8 r);
  check_int "u16" 0xCDEF (Wire.Reader.u16 r);
  Alcotest.(check int32) "u32" 0xDEADBEEFl (Wire.Reader.u32 r);
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Wire.Reader.u64 r);
  check_int "drained" 0 (Wire.Reader.remaining r)

let test_wire_varint_boundaries () =
  List.iter
    (fun v ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint w v;
      let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
      check_int (string_of_int v) v (Wire.Reader.varint r))
    [ 0; 1; 127; 128; 300; 16383; 16384; 1 lsl 30; max_int ]

let test_wire_varint_negative () =
  let w = Wire.Writer.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Wire.Writer.varint: negative")
    (fun () -> Wire.Writer.varint w (-1))

let test_wire_truncated () =
  let r = Wire.Reader.of_bytes (Bytes.of_string "\x01") in
  check_bool "truncated raises" true
    (match Wire.Reader.u32 r with
    | _ -> false
    | exception Wire.Reader.Truncated -> true)

let test_wire_bytes_roundtrip () =
  let payload = Bytes.of_string "state-blob \x00\xff binary" in
  let w = Wire.Writer.create () in
  Wire.Writer.bytes w payload;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  Alcotest.(check bytes) "bytes" payload (Wire.Reader.bytes r)

let prop_wire_varint_roundtrip =
  QCheck.Test.make ~name:"varint round-trips any non-negative int" ~count:1000
    QCheck.(map abs int)
    (fun v ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint w v;
      let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
      Wire.Reader.varint r = v)

(* ------------------------------------------------------------------ *)
(* Packet *)

let mk_packet ?(direction = Packet.Tx) ?(flags = Packet.syn) ?(payload_len = 100) () =
  Packet.create ~vpc:(Vpc.make 77)
    ~flow:(tuple "10.0.0.1" "10.0.0.2" ~sport:43210 ~dport:443)
    ~direction ~flags ~payload_len ()

let test_packet_sizes () =
  let p = mk_packet () ~payload_len:0 in
  (* eth 14 + ip 20 + tcp 20 *)
  check_int "bare tcp" 54 (Packet.inner_size p);
  check_int "no encap overhead" 54 (Packet.wire_size p);
  Packet.encap_vxlan p ~vni:77 ~outer_src:(ip "192.168.0.1") ~outer_dst:(ip "192.168.0.2");
  (* + outer eth 14 + ip 20 + udp 8 + vxlan 8 = 50 *)
  check_int "vxlan adds 50" 104 (Packet.wire_size p)

let test_packet_nsh_size_counts_blobs () =
  let p = mk_packet () ~payload_len:0 in
  let base = Packet.wire_size p in
  Packet.set_nsh p { Packet.empty_nsh with carried_state = Some (Bytes.create 16) };
  check_int "nsh base 8 + blob 16" (base + 24) (Packet.wire_size p)

let test_packet_decap () =
  let p = mk_packet () in
  Packet.encap_vxlan p ~vni:1 ~outer_src:(ip "1.1.1.1") ~outer_dst:(ip "2.2.2.2");
  (match Packet.decap_vxlan p with
  | Some v -> check_int "vni" 1 v.Packet.vni
  | None -> Alcotest.fail "expected vxlan");
  check_bool "gone" true (Packet.decap_vxlan p = None)

let test_packet_uid_unique_and_reset () =
  Packet.reset_uid_counter ();
  let a = mk_packet () and b = mk_packet () in
  check_bool "distinct uids" true (a.Packet.uid <> b.Packet.uid);
  Packet.reset_uid_counter ();
  let c = mk_packet () in
  check_int "reset restarts" a.Packet.uid c.Packet.uid

let test_packet_codec_roundtrip () =
  let p = mk_packet () ~direction:Packet.Rx ~flags:Packet.syn_ack in
  Packet.encap_vxlan p ~vni:99 ~outer_src:(ip "192.168.1.1") ~outer_dst:(ip "192.168.1.2");
  Packet.set_nsh p
    {
      Packet.carried_state = Some (Bytes.of_string "st");
      carried_pre_actions = Some (Bytes.of_string "pre-actions");
      notify = true;
      orig_outer_src = Some (ip "172.16.0.9");
      hop_seq = Some 42;
      hop_ack = None;
    };
  match Packet.decode (Packet.encode p) with
  | Error e -> Alcotest.fail e
  | Ok q ->
    check_int "uid" p.Packet.uid q.Packet.uid;
    check_bool "vpc" true (Vpc.equal p.Packet.vpc q.Packet.vpc);
    check_bool "flow" true (Five_tuple.equal p.Packet.flow q.Packet.flow);
    check_bool "direction" true (q.Packet.direction = Packet.Rx);
    check_bool "flags" true (q.Packet.flags = Packet.syn_ack);
    check_int "payload" p.Packet.payload_len q.Packet.payload_len;
    (match (p.Packet.vxlan, q.Packet.vxlan) with
    | Some a, Some b ->
      check_int "vni" a.Packet.vni b.Packet.vni;
      check_bool "outer src" true (Ipv4.equal a.Packet.outer_src b.Packet.outer_src)
    | _, _ -> Alcotest.fail "vxlan lost");
    (match (p.Packet.nsh, q.Packet.nsh) with
    | Some a, Some b ->
      check_bool "state blob" true (a.Packet.carried_state = b.Packet.carried_state);
      check_bool "pre-actions blob" true
        (a.Packet.carried_pre_actions = b.Packet.carried_pre_actions);
      check_bool "notify" true b.Packet.notify;
      check_bool "orig outer src" true (a.Packet.orig_outer_src = b.Packet.orig_outer_src);
      check_bool "hop seq" true (b.Packet.hop_seq = Some 42);
      check_bool "hop ack" true (b.Packet.hop_ack = None)
    | _, _ -> Alcotest.fail "nsh lost")

let test_packet_decode_garbage () =
  check_bool "bad magic" true
    (match Packet.decode (Bytes.of_string "\x00\x00junk") with Error _ -> true | Ok _ -> false);
  check_bool "truncated" true
    (match Packet.decode (Bytes.of_string "\x4e") with Error _ -> true | Ok _ -> false);
  check_bool "empty" true
    (match Packet.decode Bytes.empty with Error _ -> true | Ok _ -> false)

let prop_packet_codec_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun ((a, b, sp, dp), (dir, s, payload)) ->
          let flow =
            Five_tuple.make
              ~src:(Ipv4.of_int32 (Int32.of_int a))
              ~dst:(Ipv4.of_int32 (Int32.of_int b))
              ~src_port:sp ~dst_port:dp ~proto:Five_tuple.Udp
          in
          let p =
            Packet.create ~vpc:(Vpc.make 3) ~flow
              ~direction:(if dir then Packet.Tx else Packet.Rx)
              ~payload_len:payload ()
          in
          if s then
            Packet.set_nsh p
              { Packet.empty_nsh with carried_state = Some (Bytes.make (payload mod 32) 'x') };
          p)
        (pair
           (quad (int_bound 0xFFFFFF) (int_bound 0xFFFFFF) (int_bound 0xffff) (int_bound 0xffff))
           (triple bool bool (int_bound 1400))))
  in
  QCheck.Test.make ~name:"packet codec round-trips" ~count:300 (QCheck.make gen) (fun p ->
      match Packet.decode (Packet.encode p) with
      | Error _ -> false
      | Ok q ->
        Five_tuple.equal p.Packet.flow q.Packet.flow
        && p.Packet.direction = q.Packet.direction
        && p.Packet.payload_len = q.Packet.payload_len
        && p.Packet.nsh = q.Packet.nsh)


(* ------------------------------------------------------------------ *)
(* Frame synthesis + checksums *)

let plain_packet ?(proto = Five_tuple.Tcp) () =
  Packet.create ~vpc:(Vpc.make 7)
    ~flow:(tuple "10.0.0.1" "10.0.0.2" ~sport:43210 ~dport:443 ~proto)
    ~direction:Packet.Tx ~flags:Packet.syn ~payload_len:64 ()

let test_frame_plain_tcp () =
  let frame = Frame.synthesize (plain_packet ()) in
  (* Ethernet 14 + IPv4 20 + TCP 20 + payload 64. *)
  check_int "frame length" (14 + 20 + 20 + 64) (Bytes.length frame);
  check_int "ethertype ipv4" 0x0800 (Bytes.get_uint16_be frame 12);
  check_bool "ipv4 checksum valid" true (Frame.verify_ipv4_header frame ~off:14);
  check_int "proto tcp" 6 (Char.code (Bytes.get frame (14 + 9)));
  check_int "total length field" (20 + 20 + 64) (Bytes.get_uint16_be frame (14 + 2));
  (* The TCP checksum must sum (with pseudo-header) to 0xffff: recompute
     over the segment with the stored checksum zeroed and compare. *)
  let seg_off = 14 + 20 and seg_len = 20 + 64 in
  let stored = Bytes.get_uint16_be frame (seg_off + 16) in
  let copy = Bytes.copy frame in
  Bytes.set_uint16_be copy (seg_off + 16) 0;
  let expect =
    Frame.transport_checksum ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~proto:6 copy
      ~off:seg_off ~len:seg_len
  in
  check_int "tcp checksum" expect stored

let test_frame_udp_checksum () =
  let frame = Frame.synthesize (plain_packet ~proto:Five_tuple.Udp ()) in
  check_int "udp frame length" (14 + 20 + 8 + 64) (Bytes.length frame);
  let seg_off = 14 + 20 and seg_len = 8 + 64 in
  let stored = Bytes.get_uint16_be frame (seg_off + 6) in
  let copy = Bytes.copy frame in
  Bytes.set_uint16_be copy (seg_off + 6) 0;
  check_int "udp checksum" 
    (Frame.transport_checksum ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~proto:17 copy
       ~off:seg_off ~len:seg_len)
    stored

let test_frame_vxlan_encap () =
  let p = plain_packet () in
  Packet.encap_vxlan p ~vni:0xABCDE ~outer_src:(ip "192.168.1.1") ~outer_dst:(ip "192.168.1.2");
  let frame = Frame.synthesize p in
  (* outer eth 14 + ip 20 + udp 8 + vxlan 8 + inner frame 118. *)
  check_int "encapsulated length" (14 + 20 + 8 + 8 + 118) (Bytes.length frame);
  check_bool "outer ipv4 checksum" true (Frame.verify_ipv4_header frame ~off:14);
  check_int "vxlan udp dport" 4789 (Bytes.get_uint16_be frame (14 + 20 + 2));
  check_int "vxlan flags" 0x08 (Char.code (Bytes.get frame (14 + 20 + 8)));
  (* VNI sits in bytes 4-6 of the VXLAN header. *)
  let vni_off = 14 + 20 + 8 + 4 in
  let vni =
    (Char.code (Bytes.get frame vni_off) lsl 16)
    lor (Char.code (Bytes.get frame (vni_off + 1)) lsl 8)
    lor Char.code (Bytes.get frame (vni_off + 2))
  in
  check_int "vni encoded" 0xABCDE vni;
  (* The inner frame starts right after and checksums independently. *)
  check_bool "inner ipv4 checksum" true (Frame.verify_ipv4_header frame ~off:(14 + 20 + 8 + 8 + 14))

let test_frame_nsh_carries_blobs () =
  let p = plain_packet () in
  let blob = Bytes.of_string "STATE-BLOB-MARKER" in
  Packet.set_nsh p { Packet.empty_nsh with Packet.carried_state = Some blob; notify = true };
  Packet.encap_vxlan p ~vni:7 ~outer_src:(ip "192.168.1.1") ~outer_dst:(ip "192.168.1.2");
  let frame = Frame.synthesize p in
  check_int "vxlan-gpe flags (I+P)" 0x0C (Char.code (Bytes.get frame (14 + 20 + 8)));
  let s = Bytes.to_string frame in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec probe i = i + nl <= hl && (String.sub hay i nl = needle || probe (i + 1)) in
    probe 0
  in
  check_bool "state blob embedded in NSH metadata" true
    (contains s "STATE-BLOB-MARKER");
  (* NSH base header: O bit set for notify packets. *)
  let nsh_off = 14 + 20 + 8 + 8 in
  check_bool "O bit set" true (Char.code (Bytes.get frame nsh_off) land 0x20 <> 0)

(* ------------------------------------------------------------------ *)
(* Pcap *)

let test_pcap_roundtrip () =
  let cap = Pcap.create () in
  let f1 = Frame.synthesize (plain_packet ()) in
  let f2 = Frame.synthesize (plain_packet ~proto:Five_tuple.Udp ()) in
  Pcap.add cap ~time:1.5 f1;
  Pcap.add cap ~time:2.25 f2;
  check_int "count" 2 (Pcap.packet_count cap);
  match Pcap.parse (Pcap.contents cap) with
  | Error e -> Alcotest.fail e
  | Ok records ->
    (match records with
    | [ (t1, r1); (t2, r2) ] ->
      Alcotest.(check (float 1e-5)) "t1" 1.5 t1;
      Alcotest.(check (float 1e-5)) "t2" 2.25 t2;
      Alcotest.(check bytes) "frame 1" f1 r1;
      Alcotest.(check bytes) "frame 2" f2 r2
    | _ -> Alcotest.fail "expected two records")

let test_pcap_snaplen () =
  let cap = Pcap.create ~snaplen:40 () in
  Pcap.add cap ~time:0.0 (Bytes.make 100 'x');
  match Pcap.parse (Pcap.contents cap) with
  | Ok [ (_, frame) ] -> check_int "truncated" 40 (Bytes.length frame)
  | Ok _ -> Alcotest.fail "expected one record"
  | Error e -> Alcotest.fail e

let test_pcap_rejects_garbage () =
  check_bool "bad magic" true
    (match Pcap.parse (Bytes.of_string "notapcapfile0000000000000000") with
    | Error _ -> true
    | Ok _ -> false)

let prop_frame_always_checksums =
  let gen =
    QCheck.Gen.(
      map
        (fun ((a, b, sp, dp), payload, encap) ->
          let p =
            Packet.create ~vpc:(Vpc.make 5)
              ~flow:
                (Five_tuple.make
                   ~src:(Ipv4.of_int32 (Int32.of_int a))
                   ~dst:(Ipv4.of_int32 (Int32.of_int b))
                   ~src_port:sp ~dst_port:dp ~proto:Five_tuple.Tcp)
              ~direction:Packet.Tx ~payload_len:payload ()
          in
          if encap then
            Packet.encap_vxlan p ~vni:(a land 0xFFFFFF)
              ~outer_src:(Ipv4.of_octets 192 168 0 1) ~outer_dst:(Ipv4.of_octets 192 168 0 2);
          p)
        (triple
           (quad (int_bound 0xFFFFFF) (int_bound 0xFFFFFF) (int_bound 0xffff) (int_bound 0xffff))
           (int_bound 256) bool))
  in
  QCheck.Test.make ~name:"synthesized outer IPv4 header always checksums" ~count:300
    (QCheck.make gen) (fun p ->
      let frame = Frame.synthesize p in
      Frame.verify_ipv4_header frame ~off:14)

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "net"
    [
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "invalid rejected" `Quick test_ipv4_parse_invalid;
          Alcotest.test_case "unsigned order" `Quick test_ipv4_unsigned_order;
          Alcotest.test_case "arithmetic" `Quick test_ipv4_arith;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "membership" `Quick test_prefix_mem;
          Alcotest.test_case "masking" `Quick test_prefix_masking;
          Alcotest.test_case "subsumption" `Quick test_prefix_subsumes;
          Alcotest.test_case "parse" `Quick test_prefix_parse;
        ]
        @ qsuite [ prop_prefix_base_in_prefix ] );
      ( "mac",
        [
          Alcotest.test_case "roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "invalid rejected" `Quick test_mac_invalid;
          Alcotest.test_case "48-bit mask" `Quick test_mac_mask48;
        ] );
      ( "five_tuple",
        [
          Alcotest.test_case "reverse involution" `Quick test_tuple_reverse_involution;
          Alcotest.test_case "canonical direction-free" `Quick test_tuple_canonical_direction_free;
          Alcotest.test_case "session hash direction-free" `Quick
            test_tuple_session_hash_direction_free;
          Alcotest.test_case "hash spreads over buckets" `Quick test_tuple_hash_spreads;
          Alcotest.test_case "port masking" `Quick test_tuple_port_masking;
        ]
        @ qsuite [ prop_canonical_idempotent ] );
      ( "wire",
        [
          Alcotest.test_case "scalar roundtrip" `Quick test_wire_roundtrip_scalars;
          Alcotest.test_case "varint boundaries" `Quick test_wire_varint_boundaries;
          Alcotest.test_case "varint rejects negative" `Quick test_wire_varint_negative;
          Alcotest.test_case "truncated read raises" `Quick test_wire_truncated;
          Alcotest.test_case "length-prefixed bytes" `Quick test_wire_bytes_roundtrip;
        ]
        @ qsuite [ prop_wire_varint_roundtrip ] );
      ( "frame",
        [
          Alcotest.test_case "plain tcp frame" `Quick test_frame_plain_tcp;
          Alcotest.test_case "udp checksum" `Quick test_frame_udp_checksum;
          Alcotest.test_case "vxlan encapsulation" `Quick test_frame_vxlan_encap;
          Alcotest.test_case "nsh carries blobs" `Quick test_frame_nsh_carries_blobs;
        ]
        @ qsuite [ prop_frame_always_checksums ] );
      ( "pcap",
        [
          Alcotest.test_case "roundtrip" `Quick test_pcap_roundtrip;
          Alcotest.test_case "snaplen" `Quick test_pcap_snaplen;
          Alcotest.test_case "rejects garbage" `Quick test_pcap_rejects_garbage;
        ] );
      ( "packet",
        [
          Alcotest.test_case "header sizes" `Quick test_packet_sizes;
          Alcotest.test_case "nsh size counts blobs" `Quick test_packet_nsh_size_counts_blobs;
          Alcotest.test_case "decap" `Quick test_packet_decap;
          Alcotest.test_case "uid uniqueness and reset" `Quick test_packet_uid_unique_and_reset;
          Alcotest.test_case "codec roundtrip" `Quick test_packet_codec_roundtrip;
          Alcotest.test_case "decode garbage" `Quick test_packet_decode_garbage;
        ]
        @ qsuite [ prop_packet_codec_roundtrip ] );
    ]
