(* Differential tests for the batched dataplane: a burst of N packets
   pushed through the vectored entry points must be observably
   equivalent to N single-packet calls — same outputs, same deliveries,
   same per-reason drops, same counters, same session tables.  Covered
   end to end: the local vSwitch TX/RX paths, the BE -> FE NSH hop, and
   the hop under injected loss (where the equivalence must survive
   retransmission). *)

open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch
open Nezha_fabric
open Nezha_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)

(* ------------------------------------------------------------------ *)
(* Pbatch mechanics *)

let mk_pkt ?(sport = 40000) () =
  Packet.create ~vpc:(Vpc.make 1)
    ~flow:
      (Five_tuple.make ~src:(ip "1.0.0.1") ~dst:(ip "1.0.0.2") ~src_port:sport
         ~dst_port:80 ~proto:Five_tuple.Tcp)
    ~direction:Packet.Tx ()

let test_pbatch_push_grow () =
  let b = Pbatch.create ~capacity:2 () in
  check_bool "fresh is empty" true (Pbatch.is_empty b);
  for i = 1 to 5 do
    Pbatch.push b (mk_pkt ~sport:i ())
  done;
  check_int "length" 5 (Pbatch.length b);
  check_bool "grew" true (Pbatch.capacity b >= 5);
  check_int "order kept" 1 (Pbatch.get b 0).Packet.flow.Five_tuple.src_port;
  check_int "order kept (last)" 5 (Pbatch.get b 4).Packet.flow.Five_tuple.src_port;
  Pbatch.filter_in_place b (fun p -> p.Packet.flow.Five_tuple.src_port mod 2 = 0);
  check_int "filtered" 2 (Pbatch.length b);
  check_int "stable order" 2 (Pbatch.get b 0).Packet.flow.Five_tuple.src_port;
  check_int "stable order (2)" 4 (Pbatch.get b 1).Packet.flow.Five_tuple.src_port;
  Pbatch.clear b;
  check_bool "cleared" true (Pbatch.is_empty b)

let test_pbatch_of_list_roundtrip () =
  let pkts = List.init 7 (fun i -> mk_pkt ~sport:(1000 + i) ()) in
  let b = Pbatch.of_list pkts in
  check_bool "same packets, same order" true (List.map2 ( == ) pkts (Pbatch.to_list b) |> List.for_all Fun.id)

let test_pbatch_arena_recirculates () =
  Pbatch.reset_pool ();
  let b = Pbatch.alloc () in
  Pbatch.push b (mk_pkt ());
  Pbatch.recycle b;
  Pbatch.recycle b;
  (* double recycle must be a no-op *)
  let allocs, reuses, recycles = Pbatch.pool_stats () in
  check_int "one alloc" 1 allocs;
  check_int "no reuse yet" 0 reuses;
  check_int "one recycle" 1 recycles;
  let b2 = Pbatch.alloc () in
  check_bool "same buffer recirculated" true (b == b2);
  check_bool "came back clean" true (Pbatch.is_empty b2);
  let _, reuses, _ = Pbatch.pool_stats () in
  check_int "one reuse" 1 reuses;
  Pbatch.recycle b2;
  Pbatch.reset_pool ()

(* ------------------------------------------------------------------ *)
(* Observation helpers *)

(* Packet uids differ between the two worlds (the counter is global), so
   equality is on everything observable but the uid. *)
let pkt_fp (p : Packet.t) =
  ( p.Packet.flow,
    p.Packet.direction,
    p.Packet.flags,
    (match p.Packet.vxlan with
    | None -> None
    | Some v -> Some (v.Packet.vni, v.Packet.outer_src, v.Packet.outer_dst)),
    p.Packet.nsh <> None )

let vs_snapshot vs =
  let c = Vswitch.counters vs in
  let v = Stats.Counter.value in
  [
    v c.Vswitch.rx_packets;
    v c.Vswitch.tx_packets;
    v c.Vswitch.delivered;
    v c.Vswitch.forwarded;
    v c.Vswitch.slow_path_execs;
    v c.Vswitch.fast_path_hits;
    v c.Vswitch.sessions_created;
    v c.Vswitch.notify_packets;
  ]
  @ List.map (fun r -> Vswitch.drop_count vs r) Nf.all_drop_reasons

(* For a vSwitch *downstream* of the batched hop the slow/fast split is
   timing-dependent, not semantics-dependent: batching coalesces the
   upstream pipeline, so packets that trickled in one at a time (the
   last of which could catch the just-stored session and score a fast
   hit) now arrive as one group against the pre-batch table.  The
   packet set, totals, drops and final session tables are identical;
   only the cache tier that resolved them may shift.  So downstream
   hops are compared with slow+fast merged — the exact split is
   asserted at the injection hop and in the local differentials. *)
let vs_snapshot_downstream vs =
  let c = Vswitch.counters vs in
  let v = Stats.Counter.value in
  [
    v c.Vswitch.rx_packets;
    v c.Vswitch.tx_packets;
    v c.Vswitch.delivered;
    v c.Vswitch.forwarded;
    v c.Vswitch.slow_path_execs + v c.Vswitch.fast_path_hits;
    v c.Vswitch.sessions_created;
    v c.Vswitch.notify_packets;
  ]
  @ List.map (fun r -> Vswitch.drop_count vs r) Nf.all_drop_reasons

let sessions_fp vs vid =
  let acc = ref [] in
  Vswitch.iter_sessions vs vid (fun k s ->
      acc := (k, s.Vswitch.pre, s.Vswitch.state) :: !acc);
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* Local datapath differential (no fabric): one vSwitch, mixed bursts
   hitting the mapped-peer, gateway and no-route groups. *)

let lparams =
  { Params.default with Params.cpu_hz = 1e8; mem_bytes = 8 * 1024 * 1024 }

let vnic_a = Vnic.make ~id:1 ~vpc:(Vpc.make 5) ~ip:(ip "10.0.0.1") ~mac:(Mac.of_int64 1L)

type lworld = {
  lsim : Sim.t;
  lvs : Vswitch.t;
  lrs : Ruleset.t;
  lto_net : Packet.t list ref;
  lto_vm : (Vnic.id * Packet.t) list ref;
}

let make_local () =
  let sim = Sim.create () in
  let vs =
    Vswitch.create ~sim ~params:lparams ~name:"vs0" ~underlay_ip:(ip "192.168.0.1")
      ~gateway:(ip "192.168.255.254") ()
  in
  let to_net = ref [] and to_vm = ref [] in
  Vswitch.set_sink vs
    {
      Vswitch.on_output =
        (function
        | Vswitch.To_net p -> to_net := p :: !to_net
        | Vswitch.To_vm (vid, p) -> to_vm := (vid, p) :: !to_vm);
      on_net_batch =
        (fun batch ->
          Pbatch.iter batch (fun p -> to_net := p :: !to_net);
          Pbatch.recycle batch);
    };
  let rs = Ruleset.create ~vni:5 ~acl:(Acl.create ()) () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping rs
    { Vnic.Addr.vpc = Vpc.make 5; ip = ip "10.0.0.2" }
    (ip "192.168.0.2");
  (match Vswitch.add_vnic vs vnic_a rs with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "vnic must fit");
  { lsim = sim; lvs = vs; lrs = rs; lto_net = to_net; lto_vm = to_vm }

let flag_of = function 0 -> Packet.syn | 1 -> Packet.ack | _ -> Packet.fin_ack

(* Flow classes: 0/1 mapped peer (distinct sessions sharing the
   megaflow), 2 routed-but-unmapped (gateway), 3 unroutable (No_route
   drop group, never memoized). *)
let tx_of_spec (flow_i, flag_i) =
  let dst, sport =
    match flow_i with
    | 0 -> ("10.0.0.2", 40000)
    | 1 -> ("10.0.0.2", 40001)
    | 2 -> ("10.0.0.77", 40002)
    | _ -> ("99.9.9.9", 40003)
  in
  Packet.create ~vpc:(Vpc.make 5)
    ~flow:
      (Five_tuple.make ~src:(ip "10.0.0.1") ~dst:(ip dst) ~src_port:sport
         ~dst_port:80 ~proto:Five_tuple.Tcp)
    ~direction:Packet.Tx ~flags:(flag_of flag_i) ()

(* Flow classes: 0/1/2 distinct sessions to the local vNIC, 3 targets a
   non-existent vNIC (forces a batch-lane flush and a No_vnic drop). *)
let rx_of_spec (flow_i, flag_i) =
  let src, sport, dst =
    match flow_i with
    | 0 -> ("10.0.0.2", 50000, "10.0.0.1")
    | 1 -> ("10.0.0.2", 50001, "10.0.0.1")
    | 2 -> ("10.0.0.3", 50002, "10.0.0.1")
    | _ -> ("10.0.0.2", 50003, "10.0.0.99")
  in
  let p =
    Packet.create ~vpc:(Vpc.make 5)
      ~flow:
        (Five_tuple.make ~src:(ip src) ~dst:(ip dst) ~src_port:sport ~dst_port:80
           ~proto:Five_tuple.Tcp)
      ~direction:Packet.Rx ~flags:(flag_of flag_i) ()
  in
  Packet.encap_vxlan p ~vni:5 ~outer_src:(ip "192.168.0.2")
    ~outer_dst:(ip "192.168.0.1");
  p

let local_observed w =
  ( List.rev_map pkt_fp !(w.lto_net),
    List.rev_map (fun (vid, p) -> (vid, pkt_fp p)) !(w.lto_vm),
    vs_snapshot w.lvs,
    sessions_fp w.lvs vnic_a.Vnic.id,
    (Ruleset.megaflow_hits w.lrs, Ruleset.megaflow_misses w.lrs) )

let run_local_diff ~inject_single ~inject_batch specs =
  let wa = make_local () and wb = make_local () in
  List.iter (fun s -> inject_single wa s) specs;
  Sim.run wa.lsim ~until:1.0;
  inject_batch wb specs;
  Sim.run wb.lsim ~until:1.0;
  local_observed wa = local_observed wb

let spec_gen = QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_range 0 3) (int_range 0 2)))

let qtest_local_tx =
  QCheck.Test.make ~name:"batch TX == N singles (local path)" ~count:60 spec_gen
    (run_local_diff
       ~inject_single:(fun w s -> Vswitch.from_vm w.lvs vnic_a.Vnic.id (tx_of_spec s))
       ~inject_batch:(fun w specs ->
         Vswitch.from_vnic_batch w.lvs vnic_a.Vnic.id
           (Pbatch.of_list (List.map tx_of_spec specs))))

let qtest_local_rx =
  QCheck.Test.make ~name:"batch RX == N singles (local path)" ~count:60 spec_gen
    (run_local_diff
       ~inject_single:(fun w s -> Vswitch.from_net w.lvs (rx_of_spec s))
       ~inject_batch:(fun w specs ->
         Vswitch.from_net_batch w.lvs (Pbatch.of_list (List.map rx_of_spec specs))))

(* Rate limiting draws tokens in batch order, so the survivor set must
   match the single-packet run exactly. *)
let test_batch_rate_limit_differential () =
  let run batch =
    let w = make_local () in
    Vswitch.set_rate_limit w.lvs vnic_a.Vnic.id ~bps:4000.0 ~burst_bytes:200.0;
    let pkts = List.init 12 (fun _ -> tx_of_spec (0, 1)) in
    if batch then Vswitch.from_vnic_batch w.lvs vnic_a.Vnic.id (Pbatch.of_list pkts)
    else List.iter (Vswitch.from_vm w.lvs vnic_a.Vnic.id) pkts;
    Sim.run w.lsim ~until:1.0;
    (local_observed w, Vswitch.drop_count w.lvs Nf.Rate_limited)
  in
  let (obs_a, rl_a) = run false and (obs_b, rl_b) = run true in
  check_bool "rate-limited burst equivalent" true (obs_a = obs_b);
  check_bool "some packets were rate limited" true (rl_a > 0);
  check_int "same rate-limit drops" rl_a rl_b

(* ------------------------------------------------------------------ *)
(* BE -> FE hop differential: the test_nezha world with the heavy vNIC
   offloaded, driven from the heavy VM. *)

let vpc9 = Vpc.make 9
let heavy_addr = { Vnic.Addr.vpc = vpc9; ip = ip "10.0.0.1" }

let hop_params =
  { Params.default with Params.cpu_hz = 1e8; mem_bytes = 32 * 1024 * 1024 }

type hworld = {
  hsim : Sim.t;
  hfabric : Fabric.t;
  hctl : Controller.t;
  heavy_vs : Vswitch.t;
  client_vs : Vswitch.t;
  heavy_vm : Vm.t;
  client_vm : Vm.t;
}

let make_hop_world () =
  let sim = Sim.create () in
  let rng = Rng.create 42 in
  let topo = Topology.create ~racks:2 ~servers_per_rack:4 in
  let fabric = Fabric.create ~sim ~topology:topo in
  let switches =
    List.map (fun s -> Fabric.add_server fabric s ~params:hop_params) (Topology.servers topo)
  in
  let heavy_vs = List.nth switches 0 and client_vs = List.nth switches 1 in
  let heavy = Vnic.make ~id:1 ~vpc:vpc9 ~ip:(ip "10.0.0.1") ~mac:(Mac.of_int64 1L) in
  let client = Vnic.make ~id:2 ~vpc:vpc9 ~ip:(ip "10.0.0.2") ~mac:(Mac.of_int64 2L) in
  let heavy_rs = Ruleset.create ~vni:9 ~acl:(Acl.create ()) () in
  Ruleset.add_route heavy_rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping heavy_rs { Vnic.Addr.vpc = vpc9; ip = ip "10.0.0.2" } (ip "192.168.1.2");
  let client_rs = Ruleset.create ~vni:9 () in
  Ruleset.add_route client_rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping client_rs heavy_addr (ip "192.168.1.1");
  (match (Vswitch.add_vnic heavy_vs heavy heavy_rs, Vswitch.add_vnic client_vs client client_rs) with
  | Ok (), Ok () -> ()
  | _, _ -> Alcotest.fail "vnics must fit");
  let heavy_vm = Vm.create ~sim ~name:"heavy" ~vcpus:16 () in
  let client_vm = Vm.create ~sim ~name:"client" ~vcpus:8 () in
  Fabric.attach_vm fabric 0 heavy.Vnic.id heavy_vm;
  Fabric.attach_vm fabric 1 client.Vnic.id client_vm;
  Gateway.set_route (Fabric.gateway fabric) heavy_addr [| ip "192.168.1.1" |];
  Gateway.set_route (Fabric.gateway fabric)
    { Vnic.Addr.vpc = vpc9; ip = ip "10.0.0.2" }
    [| ip "192.168.1.2" |];
  let ctl =
    Controller.create
      ~config:
        { Controller.default_config with Controller.auto_offload = false; auto_scale = false }
      ~fabric ~rng ()
  in
  { hsim = sim; hfabric = fabric; hctl = ctl; heavy_vs; client_vs; heavy_vm; client_vm }

let vnic1 = Vnic.id_of_int 1

let heavy_tx ?(dport = 40000) ?(flags = Packet.syn) () =
  Packet.create ~vpc:vpc9
    ~flow:
      (Five_tuple.make ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:80
         ~dst_port:dport ~proto:Five_tuple.Tcp)
    ~direction:Packet.Tx ~flags ()

let do_offload w =
  match Controller.offload_vnic w.hctl ~server:0 ~vnic:vnic1 ~num_fes:4 () with
  | Ok o -> o
  | Error e -> Alcotest.fail ("offload failed: " ^ e)

let be_snapshot be =
  let c = Be.counters be in
  let v = Stats.Counter.value in
  [
    v c.Be.tx_via_fe;
    v c.Be.rx_from_fe;
    v c.Be.notify_received;
    v c.Be.bounced;
    v c.Be.offload_tracked;
    v c.Be.offload_acked;
    v c.Be.offload_timeouts;
    v c.Be.offload_retx;
    v c.Be.offload_resteered;
    v c.Be.local_fallback;
    v c.Be.local_bypass;
    v c.Be.offload_dropped;
    v c.Be.offload_untracked;
  ]

let fe_sum_snapshot w o =
  let v = Stats.Counter.value in
  List.fold_left
    (fun acc s ->
      match Controller.fe_service w.hctl s with
      | None -> acc
      | Some fe ->
        let c = Fe.counters fe in
        List.map2 ( + ) acc
          [
            v c.Fe.rule_lookups;
            v c.Fe.fast_hits;
            v c.Fe.notify_sent;
            v c.Fe.rx_forwarded;
            v c.Fe.tx_finalized;
            v c.Fe.hop_acks_sent;
          ])
    [ 0; 0; 0; 0; 0; 0 ]
    (Controller.offload_fe_servers o)

let hop_observed w o =
  ( Vm.packets_delivered w.client_vm,
    Vm.packets_delivered w.heavy_vm,
    be_snapshot (Controller.offload_be o),
    fe_sum_snapshot w o,
    vs_snapshot w.heavy_vs,
    vs_snapshot_downstream w.client_vs,
    Fabric.delivered_to_vms w.hfabric,
    Fabric.lost w.hfabric )

(* dports, one per packet; repeats mean same-flow groups. *)
let hop_gen = QCheck.(list_of_size Gen.(int_range 1 24) (int_range 0 5))

let qtest_hop =
  QCheck.Test.make ~name:"batch TX == N singles (BE->FE hop)" ~count:12 hop_gen
    (fun dports ->
      let run batch =
        let w = make_hop_world () in
        let o = do_offload w in
        Sim.run w.hsim ~until:5.0;
        let pkts = List.map (fun d -> heavy_tx ~dport:(40000 + d) ()) dports in
        if batch then Vswitch.from_vnic_batch w.heavy_vs vnic1 (Pbatch.of_list pkts)
        else List.iter (Vswitch.from_vm w.heavy_vs vnic1) pkts;
        Sim.run w.hsim ~until:10.0;
        hop_observed w o
      in
      run false = run true)

(* ------------------------------------------------------------------ *)
(* The hop under injected loss.  Only the BE -> FE data direction is
   impaired; Faults draws randomness exclusively on links with a
   non-zero probability, so the draw sequence is identical between the
   single-packet and batched runs and the outcomes must match exactly —
   including which packets are retransmitted. *)

let test_batch_loss_differential () =
  let run batch =
    let w = make_hop_world () in
    let faults =
      Faults.create ~sim:w.hsim ~topology:(Fabric.topology w.hfabric)
        ~rng:(Rng.create 7) ()
    in
    Fabric.set_faults w.hfabric (Some faults);
    let o = do_offload w in
    Sim.run w.hsim ~until:5.0;
    List.iter
      (fun s ->
        Faults.set_link faults ~src:(Faults.Server 0) ~dst:(Faults.Server s)
          (Faults.impair ~loss:0.01 ()))
      (Controller.offload_fe_servers o);
    for k = 0 to 7 do
      ignore
        (Sim.schedule w.hsim ~delay:(0.05 *. float_of_int k) (fun _ ->
             let pkts = List.init 32 (fun i -> heavy_tx ~dport:(41000 + (64 * k) + i) ()) in
             if batch then Vswitch.from_vnic_batch w.heavy_vs vnic1 (Pbatch.of_list pkts)
             else List.iter (Vswitch.from_vm w.heavy_vs vnic1) pkts)
          : Sim.handle)
    done;
    Sim.run w.hsim ~until:20.0;
    let be = Controller.offload_be o in
    let v = Stats.Counter.value in
    let c = Be.counters be in
    check_int "all hop losses recovered: nothing outstanding" 0 (Be.outstanding be);
    check_int "conservation: tracked = acked + fallback + dropped"
      (v c.Be.offload_tracked)
      (v c.Be.offload_acked + v c.Be.local_fallback + v c.Be.offload_dropped);
    (hop_observed w o, Faults.drops_injected faults, Faults.consults faults)
  in
  let obs_a, drops_a, consults_a = run false in
  let obs_b, drops_b, consults_b = run true in
  check_bool "loss actually struck" true (drops_a > 0);
  check_int "same injected drops" drops_a drops_b;
  check_int "same fault consults" consults_a consults_b;
  check_bool "lossy burst observably equivalent" true (obs_a = obs_b);
  check_int "every packet still delivered (retx recovered the drops)" 256
    (let delivered, _, _, _, _, _, _, _ = obs_a in
     delivered)

(* ------------------------------------------------------------------ *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ qtest_local_tx; qtest_local_rx; qtest_hop ]

let () =
  Alcotest.run "batch"
    [
      ( "pbatch",
        [
          Alcotest.test_case "push/grow/filter" `Quick test_pbatch_push_grow;
          Alcotest.test_case "of_list roundtrip" `Quick test_pbatch_of_list_roundtrip;
          Alcotest.test_case "arena recirculates" `Quick test_pbatch_arena_recirculates;
        ] );
      ( "differential",
        Alcotest.test_case "rate-limit draw order" `Quick test_batch_rate_limit_differential
        :: Alcotest.test_case "BE->FE hop under 1% loss" `Quick test_batch_loss_differential
        :: qsuite );
    ]
