(* Tests for the traffic generators, the region model, and the Sirius
   baseline. *)

open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch
open Nezha_fabric
open Nezha_workloads
open Nezha_baselines

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)
let vpc = Vpc.make 9

let test_params =
  { Params.default with Params.cpu_hz = 1e8; mem_bytes = 32 * 1024 * 1024 }

type duo = {
  sim : Sim.t;
  fabric : Fabric.t;
  rng : Rng.t;
  client : Tcp_crr.endpoint;
  server : Tcp_crr.endpoint;
}

(* Two populated servers (0: server vNIC, 1: client vNIC) in a rack of
   [servers_per_rack]; remaining slots stay empty for pools. *)
let make_duo ?(racks = 1) ?(servers_per_rack = 8) ?(params = test_params) ?client_params () =
  let sim = Sim.create () in
  let rng = Rng.create 7 in
  let topo = Topology.create ~racks ~servers_per_rack in
  let fabric = Fabric.create ~sim ~topology:topo in
  let vs0 = Fabric.add_server fabric 0 ~params in
  let vs1 = Fabric.add_server fabric 1 ~params:(Option.value client_params ~default:params) in
  let server_vnic = Vnic.make ~id:1 ~vpc ~ip:(ip "10.0.0.1") ~mac:(Mac.of_int64 1L) in
  let client_vnic = Vnic.make ~id:2 ~vpc ~ip:(ip "10.0.0.2") ~mac:(Mac.of_int64 2L) in
  let rs0 = Ruleset.create ~vni:9 () in
  Ruleset.add_route rs0 (pfx "10.0.0.0/8");
  Ruleset.add_mapping rs0 { Vnic.Addr.vpc; ip = ip "10.0.0.2" } (ip "192.168.1.2");
  let rs1 = Ruleset.create ~vni:9 () in
  Ruleset.add_route rs1 (pfx "10.0.0.0/8");
  Ruleset.add_mapping rs1 { Vnic.Addr.vpc; ip = ip "10.0.0.1" } (ip "192.168.1.1");
  (match (Vswitch.add_vnic vs0 server_vnic rs0, Vswitch.add_vnic vs1 client_vnic rs1) with
  | Ok (), Ok () -> ()
  | _, _ -> Alcotest.fail "vnics must fit");
  let server_vm = Vm.create ~sim ~name:"server" ~vcpus:32 () in
  let client_vm = Vm.create ~sim ~name:"client" ~vcpus:32 () in
  Fabric.attach_vm fabric 0 server_vnic.Vnic.id server_vm;
  Fabric.attach_vm fabric 1 client_vnic.Vnic.id client_vm;
  Gateway.set_route (Fabric.gateway fabric) { Vnic.Addr.vpc; ip = ip "10.0.0.1" }
    [| ip "192.168.1.1" |];
  Gateway.set_route (Fabric.gateway fabric) { Vnic.Addr.vpc; ip = ip "10.0.0.2" }
    [| ip "192.168.1.2" |];
  {
    sim;
    fabric;
    rng;
    client = { Tcp_crr.vs = vs1; vnic = client_vnic.Vnic.id; vm = client_vm; ip = ip "10.0.0.2" };
    server = { Tcp_crr.vs = vs0; vnic = server_vnic.Vnic.id; vm = server_vm; ip = ip "10.0.0.1" };
  }

(* ------------------------------------------------------------------ *)
(* Tcp_crr *)

let test_crr_completes () =
  let d = make_duo () in
  let crr =
    Tcp_crr.start ~sim:d.sim ~rng:d.rng ~vpc ~client:d.client ~server:d.server ~rate:200.0
      ~duration:2.0 ()
  in
  Sim.run d.sim ~until:4.0;
  check_bool "offered plenty" true (Tcp_crr.offered crr > 300);
  check_int "all established" (Tcp_crr.offered crr) (Tcp_crr.established crr);
  check_int "all completed" (Tcp_crr.offered crr) (Tcp_crr.completed crr);
  check_bool "latency measured" true (Stats.Histogram.count (Tcp_crr.latencies crr) > 0);
  (* End-to-end latency at light load: a few wire hops + processing. *)
  let p50 = Stats.Histogram.percentile (Tcp_crr.latencies crr) 50.0 in
  check_bool "latency sane (< 5 ms)" true (p50 < 0.005)

let test_crr_saturates_under_overload () =
  let params = { test_params with Params.cpu_hz = 5e6; queue_capacity = 32 } in
  let d = make_duo ~params () in
  (* Capacity ~ 5e6/51k ≈ 100 slow paths/s; offer 10x. *)
  let crr =
    Tcp_crr.start ~sim:d.sim ~rng:d.rng ~vpc ~client:d.client ~server:d.server ~rate:1000.0
      ~duration:2.0 ()
  in
  Sim.run d.sim ~until:6.0;
  check_bool "completed far fewer than offered" true
    (Tcp_crr.completed crr < Tcp_crr.offered crr / 2);
  check_bool "vswitch dropped" true (Vswitch.total_drops d.server.Tcp_crr.vs > 0)

(* ------------------------------------------------------------------ *)
(* Persistent *)

let test_persistent_holds_flows () =
  let d = make_duo () in
  let gen =
    Persistent.start ~sim:d.sim ~rng:d.rng ~vpc ~client:d.client ~server:d.server ~target:500
      ~ramp_rate:2000.0 ~keepalive:2.0 ()
  in
  (* Well past the 8 s aging: keep-alives must hold every session. *)
  Sim.run d.sim ~until:20.0;
  check_int "opened all" 500 (Persistent.opened gen);
  let live = Persistent.live_flows gen () in
  check_bool "sessions held live" true (live >= 490);
  Persistent.stop gen;
  Sim.run d.sim ~until:40.0;
  check_bool "sessions age out after stop" true (Persistent.live_flows gen () < 50)

let test_persistent_capacity_bounded () =
  (* Memory sized so only ~2.2k sessions fit beyond the rule tables. *)
  let params = { test_params with Params.mem_bytes = (2 * 1024 * 1024) + 400_000 } in
  let d = make_duo ~params ~client_params:test_params () in
  let gen =
    Persistent.start ~sim:d.sim ~rng:d.rng ~vpc ~client:d.client ~server:d.server ~target:5000
      ~ramp_rate:5000.0 ()
  in
  Sim.run d.sim ~until:10.0;
  check_bool "live below target" true (Persistent.live_flows gen () < 4000);
  check_bool "rejections happened" true (Persistent.rejected gen > 0);
  Persistent.stop gen

(* ------------------------------------------------------------------ *)
(* Syn_flood *)

let test_syn_flood_short_aging_bounds_memory () =
  let d = make_duo () in
  let flood =
    Syn_flood.start ~sim:d.sim ~rng:d.rng ~vpc ~attacker:d.client ~victim:d.server ~rate:500.0
      ~duration:6.0 ()
  in
  Sim.run d.sim ~until:3.0;
  let live_during = Vswitch.session_count d.server.Tcp_crr.vs d.server.Tcp_crr.vnic in
  (* Short SYN aging (2 s) caps the standing population near rate x 2s,
     far below the 3000 sent by now. *)
  check_bool "population bounded by syn aging" true (live_during < 1800);
  Sim.run d.sim ~until:12.0;
  check_bool "flood sent" true (Syn_flood.sent flood > 2000);
  let live_after = Vswitch.session_count d.server.Tcp_crr.vs d.server.Tcp_crr.vnic in
  check_bool "drained after flood" true (live_after < 100)

(* ------------------------------------------------------------------ *)
(* Middlebox profiles *)

let test_middlebox_profiles () =
  check_int "tr bypasses acl" 0 (Middlebox.acl_rules Middlebox.Transit_router);
  check_bool "nat heaviest acl" true
    (Middlebox.acl_rules Middlebox.Nat_gateway > Middlebox.acl_rules Middlebox.Load_balancer);
  let rng = Rng.create 1 in
  List.iter
    (fun kind ->
      let rs = Middlebox.make_ruleset kind ~rng ~vni:7 ~mem_scale:1000.0 () in
      check_int "acl populated" (Middlebox.acl_rules kind) (Acl.rule_count (Ruleset.acl rs));
      check_bool "rule bytes scaled" true
        (Ruleset.memory_bytes rs >= Middlebox.rule_table_bytes kind ~mem_scale:1000.0);
      check_bool "decap only for LB" true
        (Ruleset.stateful_decap rs = (kind = Middlebox.Load_balancer)))
    Middlebox.all

(* ------------------------------------------------------------------ *)
(* Region model *)

let test_region_quantiles_monotone () =
  let mono q = List.for_all2 (fun a b -> q a <= q b +. 1e-12)
      [ 0.0; 0.5; 0.9; 0.99; 0.999 ] [ 0.5; 0.9; 0.99; 0.999; 0.9999 ] in
  check_bool "cpu monotone" true (mono Region.cpu_util_quantile);
  check_bool "mem monotone" true (mono Region.mem_util_quantile);
  check_bool "cps monotone" true (mono Region.cps_demand_quantile)

let test_region_matches_paper_percentiles () =
  let rng = Rng.create 11 in
  let fleet = Region.sample_fleet rng ~n:50_000 in
  let cpus = Array.map (fun p -> p.Region.cpu) fleet in
  let p99 = Stats.percentile cpus 99.0 in
  let p90 = Stats.percentile cpus 90.0 in
  check_bool "P90 ~ 15%" true (Float.abs (p90 -. 0.15) < 0.03);
  check_bool "P99 ~ 41%" true (Float.abs (p99 -. 0.41) < 0.06);
  let mean = Stats.mean cpus in
  check_bool "mean ~ 5%" true (mean > 0.02 && mean < 0.09);
  let mems = Array.map (fun p -> p.Region.mem) fleet in
  check_bool "mem P999 ~ 93%" true (Float.abs (Stats.percentile mems 99.9 -. 0.93) < 0.12);
  check_bool "mem mean small" true (Stats.mean mems < 0.05)

let test_region_hotspot_mix () =
  let rng = Rng.create 5 in
  let fleet = Region.sample_fleet rng ~n:100_000 in
  let counts = Region.classify Region.default_capacities fleet in
  let get c = List.assoc c counts in
  let total = get Region.Cps + get Region.Flows + get Region.Vnics in
  check_bool "some hotspots" true (total > 200);
  let frac c = float_of_int (get c) /. float_of_int total in
  check_bool "cps dominates ~61%" true (Float.abs (frac Region.Cps -. 0.61) < 0.12);
  check_bool "flows ~30%" true (Float.abs (frac Region.Flows -. 0.30) < 0.12);
  check_bool "vnics ~9%" true (Float.abs (frac Region.Vnics -. 0.09) < 0.07)

let test_region_daily_overloads () =
  let rng = Rng.create 3 in
  let run cause =
    Region.daily_overloads rng ~n_vswitches:20_000 ~capacities:Region.default_capacities ~cause
      ~days:30 ()
  in
  let sum f days = List.fold_left (fun acc d -> acc + f d) 0 days in
  let cps_days = run Region.Cps in
  let before = sum (fun d -> d.Region.before) cps_days in
  let after = sum (fun d -> d.Region.after) cps_days in
  check_bool "plenty before" true (before > 1000);
  check_bool ">99.9% resolved" true (float_of_int after /. float_of_int before < 0.001 +. 0.002);
  let vnic_days = run Region.Vnics in
  check_int "vnic overloads fully avoided" 0 (sum (fun d -> d.Region.after) vnic_days)

let test_region_state_sizes () =
  let rng = Rng.create 17 in
  let sizes = Region.state_size_samples rng ~n:20_000 in
  let avg = Stats.mean sizes in
  (* Fig. 15: region averages land between 5 and 8 bytes. *)
  check_bool "avg in 2..10 B" true (avg > 2.0 && avg < 10.0);
  check_bool "every state under the 64 B slot" true (Array.for_all (fun s -> s <= 64.0) sizes)

let test_region_high_cps_vms () =
  let rng = Rng.create 23 in
  let pts = Region.high_cps_vm_sample rng ~n:5_000 in
  Array.iter (fun (_, sw) -> check_bool "vswitch pinned" true (sw >= 0.95)) pts;
  let vm_below_60 =
    Array.fold_left (fun acc (vm, _) -> if vm < 0.60 then acc + 1 else acc) 0 pts
  in
  check_bool "~90% of VMs under 60%" true
    (float_of_int vm_below_60 /. 5000.0 > 0.80)

let test_region_migration_model () =
  let rng = Rng.create 29 in
  let avg f n = List.init n (fun _ -> f ()) |> List.fold_left ( +. ) 0.0 |> fun s -> s /. float_of_int n in
  let d_small = avg (fun () -> Region.migration_downtime_s rng ~vcpus:8 ~mem_gb:32) 50 in
  let d_big = avg (fun () -> Region.migration_downtime_s rng ~vcpus:128 ~mem_gb:1024) 50 in
  check_bool "downtime grows" true (d_big > 2.0 *. d_small);
  let c_big = avg (fun () -> Region.migration_completion_s rng ~vcpus:128 ~mem_gb:1024) 50 in
  check_bool "1TB migration takes minutes" true (c_big > 240.0);
  (* The §7.2 comparison: migration downtime dwarfs Nezha's 2 s offload. *)
  check_bool "downtime exceeds offload activation" true (d_big > 2.0)

(* ------------------------------------------------------------------ *)
(* Sirius baseline *)

let test_sirius_end_to_end () =
  let d = make_duo ~servers_per_rack:8 () in
  let sirius = Sirius.create ~fabric:d.fabric ~cards:[ 4; 5; 6; 7 ] () in
  (match Sirius.offload_vnic sirius ~server:0 ~vnic:d.server.Tcp_crr.vnic with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let crr =
    Tcp_crr.start ~sim:d.sim ~rng:d.rng ~vpc ~client:d.client ~server:d.server ~rate:100.0
      ~duration:2.0 ()
  in
  Sim.run d.sim ~until:5.0;
  check_bool "connections completed through the pool" true
    (Tcp_crr.completed crr > Tcp_crr.offered crr * 9 / 10);
  check_bool "pool processed connections" true (Sirius.connections_processed sirius > 0);
  (* Every state-changing packet ping-ponged through the backup. *)
  check_bool "replication ping-pongs happened" true
    (Sirius.replication_pingpongs sirius >= Sirius.connections_processed sirius)

let test_sirius_rebalance_transfers_state () =
  let d = make_duo ~servers_per_rack:8 () in
  let sirius = Sirius.create ~fabric:d.fabric ~cards:[ 4; 5; 6; 7 ] () in
  (match Sirius.offload_vnic sirius ~server:0 ~vnic:d.server.Tcp_crr.vnic with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let gen =
    Persistent.start ~sim:d.sim ~rng:d.rng ~vpc ~client:d.client ~server:d.server ~target:200
      ~ramp_rate:2000.0 ()
  in
  Sim.run d.sim ~until:3.0;
  check_int "no transfers yet" 0 (Sirius.state_transfers sirius);
  Sirius.rebalance sirius;
  check_bool "sessions transferred with their buckets" true (Sirius.state_transfers sirius > 50);
  Persistent.stop gen

let test_sirius_requires_even_cards () =
  let d = make_duo ~servers_per_rack:8 () in
  Alcotest.check_raises "odd cards"
    (Invalid_argument "Sirius.create: need an even number (>= 2) of cards") (fun () ->
      ignore (Sirius.create ~fabric:d.fabric ~cards:[ 4; 5; 6 ] () : Sirius.t))

(* ------------------------------------------------------------------ *)
(* SLO-tracking ramp (ROADMAP item 4), at the check.sh --smoke scale so
   it fits the tier-1 budget. *)

let slo_smoke_cfg =
  let base = Region_sim.default_slo_config in
  {
    base with
    Region_sim.slo_duration = 150.0;
    slo =
      {
        base.Region_sim.slo with
        Region_sim.Slo.cooldown = 2.0;
        warmup = 3.0;
        suppress_hold = 8.0;
      };
    flap_window = 15.0;
  }

let test_slo_ramp_tracks_load () =
  let r = Region_sim.run_slo slo_smoke_cfg in
  check_bool "offered load really ramped x10" true (r.Region_sim.offered_ratio >= 9.9);
  check_bool "pool followed the ramp up" true
    (r.Region_sim.pool_max >= 3 * r.Region_sim.pool_min);
  check_bool "pool scaled back in" true
    (r.Region_sim.pool_at_end <= r.Region_sim.pool_min + 1);
  check_bool "both directions exercised" true
    (r.Region_sim.slo_scale_outs > 0 && r.Region_sim.slo_scale_ins > 0);
  check_int "no decision oscillations" 0 r.Region_sim.oscillations;
  check_bool "P99 mostly within budget" true
    (r.Region_sim.within_budget_fraction >= 0.7)

let test_slo_partition_does_not_flap () =
  let cfg =
    { slo_smoke_cfg with Region_sim.slo_partition = Some (63.75, 15.0) }
  in
  let r = Region_sim.run_slo cfg in
  check_bool "partition made pool members suspect" true
    (r.Region_sim.partition_suspects_max > 0);
  check_bool "suppression window engaged" true (r.Region_sim.slo_suppressed_ticks > 0);
  check_int "pool frozen through the partition" 0
    r.Region_sim.pool_moves_in_partition;
  check_int "no oscillations under chaos" 0 r.Region_sim.oscillations

let test_slo_run_deterministic () =
  let a = Region_sim.run_slo slo_smoke_cfg in
  let b = Region_sim.run_slo slo_smoke_cfg in
  check_int "same seed, same digest" a.Region_sim.slo_digest b.Region_sim.slo_digest

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "workloads"
    [
      ( "tcp_crr",
        [
          Alcotest.test_case "completes at light load" `Quick test_crr_completes;
          Alcotest.test_case "saturates under overload" `Quick test_crr_saturates_under_overload;
        ] );
      ( "persistent",
        [
          Alcotest.test_case "holds flows" `Quick test_persistent_holds_flows;
          Alcotest.test_case "capacity bounded" `Quick test_persistent_capacity_bounded;
        ] );
      ( "syn_flood",
        [ Alcotest.test_case "short aging bounds memory" `Quick test_syn_flood_short_aging_bounds_memory ] );
      ("middlebox", [ Alcotest.test_case "profiles" `Quick test_middlebox_profiles ]);
      ( "region",
        [
          Alcotest.test_case "quantiles monotone" `Quick test_region_quantiles_monotone;
          Alcotest.test_case "matches paper percentiles" `Quick test_region_matches_paper_percentiles;
          Alcotest.test_case "hotspot mix" `Quick test_region_hotspot_mix;
          Alcotest.test_case "daily overloads" `Quick test_region_daily_overloads;
          Alcotest.test_case "state sizes" `Quick test_region_state_sizes;
          Alcotest.test_case "high-cps vms" `Quick test_region_high_cps_vms;
          Alcotest.test_case "migration model" `Quick test_region_migration_model;
        ] );
      ( "slo_ramp",
        [
          Alcotest.test_case "pool tracks a x10 diurnal ramp" `Quick
            test_slo_ramp_tracks_load;
          Alcotest.test_case "rack partition does not flap the pool" `Quick
            test_slo_partition_does_not_flap;
          Alcotest.test_case "same seed same digest" `Quick
            test_slo_run_deterministic;
        ] );
      ( "sirius",
        [
          Alcotest.test_case "end to end" `Quick test_sirius_end_to_end;
          Alcotest.test_case "rebalance transfers state" `Quick test_sirius_rebalance_transfers_state;
          Alcotest.test_case "requires even cards" `Quick test_sirius_requires_even_cards;
        ] );
    ]
