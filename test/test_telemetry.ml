(* Tests for the telemetry subsystem: registry, sampler, JSON codec. *)

open Nezha_engine
open Nezha_telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let check_float msg expected got =
  Alcotest.(check (float 1e-9)) msg expected got

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_register_and_read () =
  let reg = Telemetry.create () in
  let hits = ref 0 in
  Telemetry.register_counter reg ~name:"fe/vs-1/rule_lookups" (fun () -> !hits);
  Telemetry.register_gauge reg ~name:"smartnic/vs-1/cpu_util" (fun () -> 0.25);
  check_bool "registered" true (Telemetry.mem reg "fe/vs-1/rule_lookups");
  check_bool "absent name" false (Telemetry.mem reg "fe/vs-9/rule_lookups");
  check_int "cardinality" 2 (Telemetry.cardinality reg);
  check_int "counter reads live" 0
    (Option.get (Telemetry.read_counter reg "fe/vs-1/rule_lookups"));
  hits := 7;
  check_int "counter tracks source" 7
    (Option.get (Telemetry.read_counter reg "fe/vs-1/rule_lookups"));
  check_float "gauge" 0.25 (Option.get (Telemetry.read_gauge reg "smartnic/vs-1/cpu_util"));
  (* Kind-mismatched reads answer None rather than raising. *)
  check_bool "counter is not a gauge" true
    (Telemetry.read_gauge reg "fe/vs-1/rule_lookups" = None);
  check_bool "names sorted" true
    (Telemetry.names reg = [ "fe/vs-1/rule_lookups"; "smartnic/vs-1/cpu_util" ])

let test_reregister_replaces () =
  let reg = Telemetry.create () in
  Telemetry.register_counter reg ~name:"x" (fun () -> 1);
  Telemetry.register_counter reg ~name:"x" (fun () -> 2);
  check_int "still one entry" 1 (Telemetry.cardinality reg);
  check_int "latest instrument wins" 2 (Option.get (Telemetry.read_counter reg "x"))

let test_unregister_prefix () =
  let reg = Telemetry.create () in
  List.iter
    (fun n -> Telemetry.register_counter reg ~name:n (fun () -> 0))
    [ "fe/vs-1/a"; "fe/vs-1/b"; "fe/vs-2/a"; "be/vs-1/a" ];
  Telemetry.unregister_prefix reg ~prefix:"fe/vs-1/";
  check_bool "prefix gone" false (Telemetry.mem reg "fe/vs-1/a");
  check_int "others survive" 2 (Telemetry.cardinality reg);
  Telemetry.unregister reg "be/vs-1/a";
  check_int "single unregister" 1 (Telemetry.cardinality reg)

let test_attach_counter () =
  let reg = Telemetry.create () in
  let c = Stats.Counter.create () in
  Telemetry.attach_counter reg ~name:"vswitch/vs-0/rx_packets" c;
  Stats.Counter.add c 41;
  Stats.Counter.incr c;
  check_int "attached counter polls" 42
    (Option.get (Telemetry.read_counter reg "vswitch/vs-0/rx_packets"))

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let test_snapshot () =
  let reg = Telemetry.create () in
  Telemetry.register_counter reg ~name:"b/count" (fun () -> 3);
  Telemetry.register_gauge reg ~name:"a/util" ~labels:[ ("kind", "cpu") ] (fun () -> 0.5);
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.record h) [ 1.0; 2.0; 3.0; 4.0 ];
  Telemetry.register_histogram reg ~name:"c/lat" h;
  let s = Telemetry.snapshot ~at:12.5 reg in
  check_float "timestamp" 12.5 s.Telemetry.at;
  check_int "all metrics present" 3 (List.length s.Telemetry.metrics);
  (match s.Telemetry.metrics with
  | [ a; b; c ] ->
    check_str "sorted by name" "a/util" a.Telemetry.name;
    check_bool "labels kept" true (a.Telemetry.labels = [ ("kind", "cpu") ]);
    check_bool "counter value" true (b.Telemetry.value = Telemetry.Counter 3);
    (match c.Telemetry.value with
    | Telemetry.Histogram hs ->
      check_int "histo count" 4 hs.Telemetry.count;
      check_bool "histo p50 in range" true (hs.Telemetry.p50 >= 1.0 && hs.Telemetry.p50 <= 3.0);
      check_bool "histo max" true (hs.Telemetry.max >= 3.9)
    | _ -> Alcotest.fail "expected a histogram value")
  | _ -> Alcotest.fail "expected three metrics")

(* ------------------------------------------------------------------ *)
(* Sampler *)

(* A small simulated workload: a counter that grows each 0.1 s and a
   gauge derived from virtual time.  Returns the registry after [run_for]
   seconds of virtual time. *)
let sampled_run ?(period = 0.5) ~run_for () =
  let sim = Sim.create () in
  let reg = Telemetry.create () in
  let work = ref 0 in
  Telemetry.register_counter reg ~name:"w/count" (fun () -> !work);
  Telemetry.register_gauge reg ~name:"w/phase" (fun () -> Float.rem (Sim.now sim) 2.0);
  Sim.every sim ~period:0.1 (fun _ ->
      incr work;
      Sim.now sim < run_for);
  Telemetry.start_sampler reg ~sim ~period ();
  Sim.run sim ~until:run_for;
  reg

let test_sampler_collects () =
  let reg = sampled_run ~run_for:3.0 () in
  check_bool "sampler running" true (Telemetry.sampler_running reg);
  check_bool "took samples" true (Telemetry.samples_taken reg >= 6);
  let s = Option.get (Telemetry.series reg "w/count") in
  check_bool "series has points" true (Stats.Series.length s >= 6);
  let pts = Stats.Series.points s in
  let t0, v0 = pts.(0) and tn, vn = pts.(Array.length pts - 1) in
  check_bool "time advances" true (tn > t0);
  check_bool "counter series is monotone" true (vn >= v0);
  (* Histograms never enter the series tables. *)
  check_int "series count" 2 (List.length (Telemetry.all_series reg));
  Telemetry.stop_sampler reg;
  check_bool "stopped" false (Telemetry.sampler_running reg)

let test_sampler_deterministic () =
  let pts r = List.map (fun (n, s) -> (n, Array.to_list (Stats.Series.points s)))
      (Telemetry.all_series r) in
  let a = sampled_run ~run_for:4.0 () in
  let b = sampled_run ~run_for:4.0 () in
  check_bool "two identical runs sample identically" true (pts a = pts b)

let test_sampler_restart () =
  let sim = Sim.create () in
  let reg = Telemetry.create () in
  Telemetry.register_gauge reg ~name:"g" (fun () -> 1.0);
  Telemetry.start_sampler reg ~sim ~period:0.5 ();
  Sim.run sim ~until:1.0;
  let before = Telemetry.samples_taken reg in
  (* Restarting with a new period replaces the old schedule instead of
     doubling the sampling rate. *)
  Telemetry.start_sampler reg ~sim ~period:1.0 ();
  Sim.run sim ~until:5.0;
  let g = Option.get (Telemetry.series reg "g") in
  check_bool "no double sampling" true
    (Stats.Series.length g - before <= 6)

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_parse_basics () =
  (match Json.of_string {| {"a": [1, 2.5, true, null], "b": "xé"} |} with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float f; Json.Bool true; Json.Null ]); ("b", Json.String s) ]) ->
    check_float "float" 2.5 f;
    check_str "unicode escape" "x\xc3\xa9" s
  | Ok j -> Alcotest.fail ("unexpected shape: " ^ Json.to_string j)
  | Error e -> Alcotest.fail e);
  check_bool "trailing garbage rejected" true
    (match Json.of_string "{} x" with Error _ -> true | Ok _ -> false);
  check_bool "bad escape rejected" true
    (match Json.of_string {| "\q" |} with Error _ -> true | Ok _ -> false)

let test_json_roundtrip_values () =
  List.iter
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok back -> check_bool (Json.to_string j) true (Json.equal back j)
      | Error e -> Alcotest.fail (Json.to_string j ^ ": " ^ e))
    [
      Json.Null;
      Json.Bool false;
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float 1e-300;
      Json.Float (-.Float.pi);
      Json.String "quotes \" and \\ and \ncontrol \001 bytes";
      Json.List [];
      Json.Obj [ ("nested", Json.Obj [ ("deep", Json.List [ Json.Int 1 ]) ]) ];
    ]

let test_snapshot_json_roundtrip () =
  let reg = Telemetry.create () in
  Telemetry.register_counter reg ~name:"fe/vs-2/rule_lookups" (fun () -> 1234);
  Telemetry.register_gauge reg ~name:"smartnic/vs-2/cpu_util"
    ~labels:[ ("window", "1s") ] (fun () -> 0.375);
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do Stats.Histogram.record h (float_of_int i) done;
  Telemetry.register_histogram reg ~name:"controller/completion_ms" h;
  let snap = Telemetry.snapshot ~at:7.25 reg in
  match Telemetry.snapshot_of_json (Telemetry.json_of_snapshot snap) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    check_float "at survives" snap.Telemetry.at back.Telemetry.at;
    check_bool "metrics survive exactly" true
      (back.Telemetry.metrics = snap.Telemetry.metrics)

let test_dump_json_has_series () =
  let reg = sampled_run ~run_for:2.0 () in
  let txt = Telemetry.dump_json_string ~at:2.0 reg in
  match Json.of_string txt with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    check_bool "schema tag" true
      (Json.member "schema" doc = Some (Json.String "nezha-telemetry/1"));
    let series = Option.get (Json.to_list_opt (Option.get (Json.member "series" doc))) in
    check_int "both sampled series exported" 2 (List.length series);
    let first = List.hd series in
    let points = Option.get (Json.to_list_opt (Option.get (Json.member "points" first))) in
    check_bool "points are pairs" true
      (List.for_all
         (fun p -> match p with Json.List [ _; _ ] -> true | _ -> false)
         points)

let test_csv_export () =
  let reg = sampled_run ~run_for:1.0 () in
  let csv = Telemetry.dump_csv reg in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_str "header" "time,metric,value" (List.hd lines);
  check_bool "has rows" true (List.length lines > 2);
  check_bool "rows have three fields" true
    (List.for_all
       (fun l -> List.length (String.split_on_char ',' l) = 3)
       (List.tl lines))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "register and read" `Quick test_register_and_read;
          Alcotest.test_case "re-register replaces" `Quick test_reregister_replaces;
          Alcotest.test_case "unregister prefix" `Quick test_unregister_prefix;
          Alcotest.test_case "attach existing counter" `Quick test_attach_counter;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "snapshot polls everything" `Quick test_snapshot;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "collects series" `Quick test_sampler_collects;
          Alcotest.test_case "deterministic across runs" `Quick test_sampler_deterministic;
          Alcotest.test_case "restart replaces schedule" `Quick test_sampler_restart;
        ] );
      ( "json",
        [
          Alcotest.test_case "parser basics" `Quick test_json_parse_basics;
          Alcotest.test_case "value round-trips" `Quick test_json_roundtrip_values;
          Alcotest.test_case "snapshot round-trips" `Quick test_snapshot_json_roundtrip;
          Alcotest.test_case "dump includes series" `Quick test_dump_json_has_series;
          Alcotest.test_case "csv long form" `Quick test_csv_export;
        ] );
    ]
