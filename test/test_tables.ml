(* Tests for LPM, ACL and the aging flow table. *)

open Nezha_net
open Nezha_tables

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)

(* ------------------------------------------------------------------ *)
(* Lpm *)

let test_lpm_longest_wins () =
  let t = Lpm.create () in
  Lpm.insert t (pfx "10.0.0.0/8") "coarse";
  Lpm.insert t (pfx "10.1.0.0/16") "mid";
  Lpm.insert t (pfx "10.1.2.0/24") "fine";
  (match Lpm.lookup t (ip "10.1.2.3") with
  | Some (p, v) ->
    check_str "longest" "fine" v;
    check_int "len 24" 24 (Ipv4.Prefix.length p)
  | None -> Alcotest.fail "expected match");
  (match Lpm.lookup t (ip "10.1.9.9") with
  | Some (_, v) -> check_str "mid" "mid" v
  | None -> Alcotest.fail "expected match");
  (match Lpm.lookup t (ip "10.200.0.1") with
  | Some (_, v) -> check_str "coarse" "coarse" v
  | None -> Alcotest.fail "expected match");
  check_bool "no match outside" true (Lpm.lookup t (ip "11.0.0.1") = None)

let test_lpm_default_route () =
  let t = Lpm.create () in
  Lpm.insert t (pfx "0.0.0.0/0") "default";
  (match Lpm.lookup t (ip "203.0.113.7") with
  | Some (_, v) -> check_str "default" "default" v
  | None -> Alcotest.fail "default route must match everything")

let test_lpm_replace_and_remove () =
  let t = Lpm.create () in
  Lpm.insert t (pfx "10.0.0.0/8") 1;
  Lpm.insert t (pfx "10.0.0.0/8") 2;
  check_int "replace keeps one entry" 1 (Lpm.length t);
  check_bool "exact" true (Lpm.find_exact t (pfx "10.0.0.0/8") = Some 2);
  check_bool "removed" true (Lpm.remove t (pfx "10.0.0.0/8"));
  check_bool "remove again" false (Lpm.remove t (pfx "10.0.0.0/8"));
  check_int "empty" 0 (Lpm.length t);
  check_bool "lookup misses" true (Lpm.lookup t (ip "10.1.1.1") = None)

let test_lpm_host_route () =
  let t = Lpm.create () in
  Lpm.insert t (pfx "10.0.0.1/32") "host";
  Lpm.insert t (pfx "10.0.0.0/24") "net";
  (match Lpm.lookup t (ip "10.0.0.1") with
  | Some (_, v) -> check_str "host wins" "host" v
  | None -> Alcotest.fail "expected host route");
  match Lpm.lookup t (ip "10.0.0.2") with
  | Some (_, v) -> check_str "net for others" "net" v
  | None -> Alcotest.fail "expected net route"

let test_lpm_depth_cost () =
  let t = Lpm.create () in
  Lpm.insert t (pfx "10.0.0.0/24") "x";
  let _, depth = Lpm.lookup_with_depth t (ip "10.0.0.1") in
  check_int "visits 24 levels" 24 depth;
  let _, depth_miss = Lpm.lookup_with_depth t (ip "192.168.0.1") in
  check_bool "miss stops early" true (depth_miss < 24)

let test_lpm_memory_grows () =
  let t = Lpm.create () in
  let m0 = Lpm.memory_bytes t in
  Lpm.insert t (pfx "10.0.0.0/8") ();
  let m1 = Lpm.memory_bytes t in
  check_bool "memory grows" true (m1 > m0);
  ignore (Lpm.remove t (pfx "10.0.0.0/8") : bool);
  check_int "memory returns after prune" m0 (Lpm.memory_bytes t)

let test_lpm_iter_reconstructs () =
  let t = Lpm.create () in
  let prefixes = [ "0.0.0.0/0"; "10.0.0.0/8"; "10.1.2.0/24"; "192.168.1.128/25"; "1.2.3.4/32" ] in
  List.iter (fun s -> Lpm.insert t (pfx s) s) prefixes;
  let seen = ref [] in
  Lpm.iter t (fun p v ->
      check_str "prefix matches payload" v (Ipv4.Prefix.to_string p);
      seen := v :: !seen);
  check_int "all seen" (List.length prefixes) (List.length !seen)

let prop_lpm_lookup_member =
  let gen =
    QCheck.Gen.(list_size (int_range 1 60) (pair (int_bound 0xFFFFFF) (int_range 1 32)))
  in
  QCheck.Test.make ~name:"lpm result always contains the address" ~count:200 (QCheck.make gen)
    (fun specs ->
      let t = Lpm.create () in
      List.iter
        (fun (raw, len) ->
          Lpm.insert t (Ipv4.Prefix.make (Ipv4.of_int32 (Int32.of_int (raw * 1299721))) len) ())
        specs;
      List.for_all
        (fun (raw, _) ->
          let addr = Ipv4.of_int32 (Int32.of_int (raw * 1299721)) in
          match Lpm.lookup t addr with
          | None -> true
          | Some (p, ()) -> Ipv4.Prefix.mem addr p)
        specs)

(* ------------------------------------------------------------------ *)
(* Acl *)

let tuple ?(sport = 40000) ?(dport = 80) ?(proto = Five_tuple.Tcp) src dst =
  Five_tuple.make ~src:(ip src) ~dst:(ip dst) ~src_port:sport ~dst_port:dport ~proto

let test_acl_priority_order () =
  let t = Acl.create ~default:Acl.Deny () in
  Acl.add t (Acl.rule ~priority:10 ~src:(pfx "10.0.0.0/8") Acl.Deny);
  Acl.add t (Acl.rule ~priority:5 ~src:(pfx "10.1.0.0/16") Acl.Permit);
  let v = Acl.lookup t (tuple "10.1.0.5" "8.8.8.8") in
  check_bool "more specific priority wins" true (v.Acl.action = Acl.Permit);
  check_int "scanned 1" 1 v.Acl.rules_scanned;
  let v2 = Acl.lookup t (tuple "10.9.0.5" "8.8.8.8") in
  check_bool "falls to deny" true (v2.Acl.action = Acl.Deny);
  check_int "scanned both" 2 v2.Acl.rules_scanned

let test_acl_default () =
  let t = Acl.create () in
  let v = Acl.lookup t (tuple "1.1.1.1" "2.2.2.2") in
  check_bool "default permit" true (v.Acl.action = Acl.Permit);
  check_int "scanned none" 0 v.Acl.rules_scanned;
  check_bool "no match" true (v.Acl.matched = None)

let test_acl_port_and_proto_match () =
  let t = Acl.create ~default:Acl.Deny () in
  Acl.add t (Acl.rule ~priority:1 ~dst_ports:(80, 443) ~proto:Five_tuple.Tcp Acl.Permit);
  check_bool "tcp 80 permitted" true
    ((Acl.lookup t (tuple "1.1.1.1" "2.2.2.2" ~dport:80)).Acl.action = Acl.Permit);
  check_bool "tcp 443 permitted" true
    ((Acl.lookup t (tuple "1.1.1.1" "2.2.2.2" ~dport:443)).Acl.action = Acl.Permit);
  check_bool "tcp 8080 denied" true
    ((Acl.lookup t (tuple "1.1.1.1" "2.2.2.2" ~dport:8080)).Acl.action = Acl.Deny);
  check_bool "udp 80 denied" true
    ((Acl.lookup t (tuple "1.1.1.1" "2.2.2.2" ~dport:80 ~proto:Five_tuple.Udp)).Acl.action
    = Acl.Deny)

let test_acl_scan_cost_grows () =
  let t = Acl.create () in
  for i = 1 to 100 do
    Acl.add t (Acl.rule ~priority:i ~src:(pfx "172.16.0.0/12") Acl.Deny)
  done;
  let v = Acl.lookup t (tuple "10.0.0.1" "10.0.0.2") in
  check_int "scans all on miss" 100 v.Acl.rules_scanned;
  check_int "rule count" 100 (Acl.rule_count t);
  check_bool "memory proportional" true (Acl.memory_bytes t = 100 * 48)

let test_acl_remove () =
  let t = Acl.create ~default:Acl.Deny () in
  Acl.add t (Acl.rule ~priority:1 Acl.Permit);
  check_bool "removed" true (Acl.remove t ~priority:1);
  check_bool "gone" false (Acl.remove t ~priority:1);
  check_bool "deny now" true ((Acl.lookup t (tuple "1.1.1.1" "2.2.2.2")).Acl.action = Acl.Deny)

let test_acl_stable_same_priority () =
  let t = Acl.create () in
  Acl.add t (Acl.rule ~priority:1 ~proto:Five_tuple.Tcp Acl.Deny);
  Acl.add t (Acl.rule ~priority:1 ~proto:Five_tuple.Tcp Acl.Permit);
  (* First-added wins at equal priority. *)
  check_bool "first added wins" true
    ((Acl.lookup t (tuple "1.1.1.1" "2.2.2.2")).Acl.action = Acl.Deny)

(* ------------------------------------------------------------------ *)
(* Flow_table *)

let key ?(vpc = 1) ?(sport = 1000) src dst =
  Flow_key.of_packet_fields ~vpc:(Vpc.make vpc) ~flow:(tuple src dst ~sport)

let mk_table ?capacity_bytes ?(aging = 8.0) () =
  Flow_table.create ?capacity_bytes ~entry_overhead:100 ~value_bytes:String.length
    ~default_aging:aging ()

let test_ft_insert_find () =
  let t = mk_table () in
  let k = key "10.0.0.1" "10.0.0.2" in
  check_bool "insert" true (Flow_table.insert t ~now:0.0 k "v1" = Ok ());
  check_bool "find" true (Flow_table.find t k = Some "v1");
  check_int "length" 1 (Flow_table.length t);
  check_int "memory 100+2" 102 (Flow_table.memory_bytes t)

let test_ft_bidirectional_key () =
  let t = mk_table () in
  let fwd = tuple "10.0.0.9" "10.0.0.2" ~sport:5555 ~dport:80 in
  let k1 = Flow_key.of_packet_fields ~vpc:(Vpc.make 1) ~flow:fwd in
  let k2 = Flow_key.of_packet_fields ~vpc:(Vpc.make 1) ~flow:(Five_tuple.reverse fwd) in
  ignore (Flow_table.insert t ~now:0.0 k1 "session" : Admission.t);
  check_bool "reverse direction finds same entry" true (Flow_table.find t k2 = Some "session")

let test_ft_vpc_isolation () =
  let t = mk_table () in
  let k1 = key ~vpc:1 "10.0.0.1" "10.0.0.2" in
  let k2 = key ~vpc:2 "10.0.0.1" "10.0.0.2" in
  ignore (Flow_table.insert t ~now:0.0 k1 "tenant1" : Admission.t);
  check_bool "other tenant misses" true (Flow_table.find t k2 = None)

let test_ft_capacity () =
  let t = mk_table ~capacity_bytes:250 () in
  check_bool "first fits" true (Flow_table.insert t ~now:0.0 (key "1.1.1.1" "2.2.2.2") "xx" = Ok ());
  check_bool "second fits" true (Flow_table.insert t ~now:0.0 (key "1.1.1.3" "2.2.2.2") "xx" = Ok ());
  check_bool "third rejected" true
    (Flow_table.insert t ~now:0.0 (key "1.1.1.5" "2.2.2.2") "xx" = Error `Table_full);
  check_int "two entries" 2 (Flow_table.length t)

let test_ft_replace_updates_memory () =
  let t = mk_table () in
  let k = key "1.1.1.1" "2.2.2.2" in
  ignore (Flow_table.insert t ~now:0.0 k "ab" : Admission.t);
  ignore (Flow_table.insert t ~now:0.0 k "abcdef" : Admission.t);
  check_int "one entry" 1 (Flow_table.length t);
  check_int "memory reflects new size" 106 (Flow_table.memory_bytes t)

let test_ft_aging () =
  let t = mk_table ~aging:8.0 () in
  let k = key "1.1.1.1" "2.2.2.2" in
  ignore (Flow_table.insert t ~now:0.0 k "v" : Admission.t);
  let expired = ref [] in
  let n = Flow_table.expire t ~now:4.0 ~on_expire:(fun k' _ -> expired := k' :: !expired) in
  check_int "alive at 4s" 0 n;
  let n = Flow_table.expire t ~now:10.0 ~on_expire:(fun k' _ -> expired := k' :: !expired) in
  check_int "expired after 8s idle" 1 n;
  check_bool "callback saw key" true (match !expired with [ k' ] -> Flow_key.equal k k' | _ -> false);
  check_int "gone" 0 (Flow_table.length t);
  check_int "memory reclaimed" 0 (Flow_table.memory_bytes t)

let test_ft_touch_extends () =
  let t = mk_table ~aging:8.0 () in
  let k = key "1.1.1.1" "2.2.2.2" in
  ignore (Flow_table.insert t ~now:0.0 k "v" : Admission.t);
  ignore (Flow_table.expire t ~now:6.0 ~on_expire:(fun _ _ -> ()) : int);
  check_bool "touch" true (Flow_table.touch t ~now:6.0 k);
  let n = Flow_table.expire t ~now:10.0 ~on_expire:(fun _ _ -> ()) in
  check_int "survives original deadline" 0 n;
  let n = Flow_table.expire t ~now:15.0 ~on_expire:(fun _ _ -> ()) in
  check_int "expires at refreshed deadline" 1 n

let test_ft_short_aging_override () =
  (* The SYN-flood defence: states of sessions still establishing get a
     much shorter aging time (§7.3). *)
  let t = mk_table ~aging:8.0 () in
  let syn_k = key "1.1.1.1" "2.2.2.2" in
  let est_k = key "3.3.3.3" "4.4.4.4" in
  ignore (Flow_table.insert t ~now:0.0 ~aging:2.0 syn_k "syn" : Admission.t);
  ignore (Flow_table.insert t ~now:0.0 est_k "established" : Admission.t);
  let n = Flow_table.expire t ~now:3.0 ~on_expire:(fun _ _ -> ()) in
  check_int "syn entry gone early" 1 n;
  check_bool "established survives" true (Flow_table.find t est_k = Some "established")

let test_ft_remove () =
  let t = mk_table () in
  let k = key "1.1.1.1" "2.2.2.2" in
  ignore (Flow_table.insert t ~now:0.0 k "v" : Admission.t);
  check_bool "removed" true (Flow_table.remove t k);
  check_bool "again" false (Flow_table.remove t k);
  check_int "memory zero" 0 (Flow_table.memory_bytes t);
  (* The cancelled timer must not fire. *)
  let n = Flow_table.expire t ~now:20.0 ~on_expire:(fun _ _ -> Alcotest.fail "stale fire") in
  check_int "no expiries" 0 n

let test_ft_update () =
  let t = mk_table () in
  let k = key "1.1.1.1" "2.2.2.2" in
  ignore (Flow_table.insert t ~now:0.0 k "a" : Admission.t);
  check_bool "update" true (Flow_table.update t ~now:1.0 k (fun v -> v ^ "b"));
  check_bool "new value" true (Flow_table.find t k = Some "ab");
  check_int "memory tracks growth" 102 (Flow_table.memory_bytes t);
  check_bool "missing update" false (Flow_table.update t ~now:1.0 (key "9.9.9.9" "8.8.8.8") Fun.id)

let prop_ft_memory_consistent =
  let gen = QCheck.Gen.(list_size (int_range 1 100) (pair (int_bound 1000) (int_bound 20))) in
  QCheck.Test.make ~name:"flow table memory equals sum of live entries" ~count:100
    (QCheck.make gen) (fun ops ->
      let t =
        Flow_table.create ~entry_overhead:10 ~value_bytes:Fun.id ~default_aging:5.0 ()
      in
      List.iter
        (fun (n, sz) ->
          let k = key "10.0.0.1" "10.0.0.2" ~sport:(1000 + (n mod 50)) in
          if n mod 3 = 0 then ignore (Flow_table.remove t k : bool)
          else ignore (Flow_table.insert t ~now:0.0 k sz : Admission.t))
        ops;
      let sum = ref 0 in
      Flow_table.iter t (fun _ sz -> sum := !sum + 10 + sz);
      !sum = Flow_table.memory_bytes t)


(* ------------------------------------------------------------------ *)
(* Tss: tuple-space search classifier *)

let random_rule rng i =
  let module R = Nezha_engine.Rng in
  let prefix () =
    if R.chance rng 0.3 then None
    else begin
      let base = Ipv4.of_octets (R.int rng 256) (R.int rng 256) 0 0 in
      Some (Ipv4.Prefix.make base (8 + (8 * R.int rng 3)))
    end
  in
  let ports () =
    if R.chance rng 0.7 then None
    else begin
      let lo = R.int rng 60000 in
      Some (lo, lo + R.int rng 2000)
    end
  in
  Acl.rule ~priority:(R.int rng 50) ?src:(prefix ()) ?dst:(prefix ()) ?src_ports:(ports ())
    ?dst_ports:(ports ())
    ?proto:(if R.chance rng 0.5 then Some Five_tuple.Tcp else None)
    (if i mod 2 = 0 then Acl.Permit else Acl.Deny)

let random_tuple rng =
  let module R = Nezha_engine.Rng in
  Five_tuple.make
    ~src:(Ipv4.of_octets (R.int rng 256) (R.int rng 256) (R.int rng 256) (R.int rng 256))
    ~dst:(Ipv4.of_octets (R.int rng 256) (R.int rng 256) (R.int rng 256) (R.int rng 256))
    ~src_port:(R.int rng 65536) ~dst_port:(R.int rng 65536)
    ~proto:(if R.bool rng then Five_tuple.Tcp else Five_tuple.Udp)

let test_tss_matches_acl () =
  (* Functional equivalence with the linear-scan ACL over random rule
     sets and packets. *)
  let rng = Nezha_engine.Rng.create 31 in
  for _trial = 1 to 20 do
    let acl = Acl.create ~default:Acl.Deny () in
    let tss = Tss.create ~default:Acl.Deny () in
    for i = 1 to 60 do
      let r = random_rule rng i in
      Acl.add acl r;
      Tss.add tss r
    done;
    for _ = 1 to 200 do
      let t5 = random_tuple rng in
      let a = (Acl.lookup acl t5).Acl.action in
      let b = (Tss.lookup tss t5).Tss.action in
      check_bool "same verdict" true (a = b)
    done
  done

let test_tss_sublinear_probes () =
  (* 1000 rules drawn from a handful of mask shapes: lookups probe the
     tuple count, not the rule count — the Table A1 sub-linearity. *)
  let tss = Tss.create () in
  for i = 1 to 1000 do
    Tss.add tss
      (Acl.rule ~priority:i
         ~src:(Ipv4.Prefix.make (Ipv4.of_octets (i mod 250) 16 0 0) 16)
         ~proto:Five_tuple.Tcp Acl.Deny)
  done;
  check_int "rules stored" 1000 (Tss.rule_count tss);
  check_bool "few tuples" true (Tss.tuple_count tss <= 4);
  let v = Tss.lookup tss (tuple "10.0.0.1" "10.0.0.2") in
  check_bool "probes = tuples, not rules" true (v.Tss.tuples_probed <= 4);
  check_bool "tiny bucket scans" true (v.Tss.bucket_scans <= 8)

let test_tss_priority_and_ties () =
  let tss = Tss.create () in
  Tss.add tss (Acl.rule ~priority:10 ~proto:Five_tuple.Tcp Acl.Deny);
  Tss.add tss (Acl.rule ~priority:5 ~src:(pfx "10.0.0.0/8") Acl.Permit);
  let v = Tss.lookup tss (tuple "10.1.1.1" "8.8.8.8") in
  check_bool "lower priority number wins across tuples" true (v.Tss.action = Acl.Permit);
  (* Equal priority: first-added wins, like Acl. *)
  let tss2 = Tss.create () in
  Tss.add tss2 (Acl.rule ~priority:1 ~proto:Five_tuple.Tcp Acl.Deny);
  Tss.add tss2 (Acl.rule ~priority:1 ~proto:Five_tuple.Tcp Acl.Permit);
  check_bool "stable tie-break" true
    ((Tss.lookup tss2 (tuple "1.1.1.1" "2.2.2.2")).Tss.action = Acl.Deny)

let test_tss_remove () =
  let tss = Tss.create ~default:Acl.Deny () in
  Tss.add tss (Acl.rule ~priority:1 Acl.Permit);
  check_bool "removed" true (Tss.remove tss ~priority:1);
  check_bool "gone" false (Tss.remove tss ~priority:1);
  check_int "count" 0 (Tss.rule_count tss);
  check_bool "default now" true
    ((Tss.lookup tss (tuple "1.1.1.1" "2.2.2.2")).Tss.action = Acl.Deny)

let test_tss_clear () =
  let tss = Tss.create ~default:Acl.Deny () in
  for i = 1 to 40 do
    Tss.add tss (Acl.rule ~priority:i ~src:(pfx "10.0.0.0/8") Acl.Permit)
  done;
  Tss.clear tss;
  check_int "no rules" 0 (Tss.rule_count tss);
  check_int "no tuples" 0 (Tss.tuple_count tss);
  check_int "no memory" 0 (Tss.memory_bytes tss);
  let v = Tss.lookup tss (tuple "10.1.1.1" "2.2.2.2") in
  check_bool "default after clear" true (v.Tss.action = Acl.Deny);
  check_int "nothing probed" 0 v.Tss.tuples_probed

let test_tss_memory_accounting () =
  let tss = Tss.create () in
  let base = Tss.memory_bytes tss in
  check_int "empty costs nothing" 0 base;
  Tss.add tss (Acl.rule ~priority:1 ~src:(pfx "10.0.0.0/8") Acl.Deny);
  let one = Tss.memory_bytes tss in
  check_bool "rule + tuple accounted" true (one > 0);
  (* Same shape: only the per-rule share grows, no new tuple. *)
  Tss.add tss (Acl.rule ~priority:2 ~src:(pfx "20.0.0.0/8") Acl.Deny);
  let two = Tss.memory_bytes tss in
  check_bool "same-shape rule cheaper than first" true (two - one < one);
  (* New shape: strictly more than another same-shape rule. *)
  Tss.add tss (Acl.rule ~priority:3 ~proto:Five_tuple.Tcp Acl.Deny);
  let three = Tss.memory_bytes tss in
  check_bool "new shape costs a tuple" true (three - two > two - one);
  ignore (Tss.remove tss ~priority:3 : bool);
  check_bool "remove shrinks" true (Tss.memory_bytes tss < three)

(* Verdicts (action AND matched rule) must be identical to the
   linear-scan oracle — rule identity matters because pre-actions are
   derived from the matched rule. *)
let prop_tss_equivalent =
  QCheck.Test.make ~name:"tss and acl agree on every packet" ~count:60
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 1 80)))
    (fun (seed, nrules) ->
      let rng = Nezha_engine.Rng.create seed in
      let acl = Acl.create () and tss = Tss.create () in
      for i = 1 to nrules do
        let r = random_rule rng i in
        Acl.add acl r;
        Tss.add tss r
      done;
      let ok = ref true in
      for _ = 1 to 50 do
        let t5 = random_tuple rng in
        let a = Acl.lookup acl t5 and b = Tss.lookup tss t5 in
        if a.Acl.action <> b.Tss.action then ok := false;
        (match (a.Acl.matched, b.Tss.matched) with
        | None, None -> ()
        | Some ra, Some rb -> if ra != rb then ok := false
        | Some _, None | None, Some _ -> ok := false);
        let ar = Acl.lookup_reverse acl t5 and br = Tss.lookup_reverse tss t5 in
        if ar.Acl.action <> br.Tss.action then ok := false;
        if ar.Acl.matched <> br.Tss.matched then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Classifier: backend-parameterized facade *)

let classifier_pair nrules ~seed =
  let rng = Nezha_engine.Rng.create seed in
  let lin = Classifier.create ~backend:Classifier.Linear () in
  let tss = Classifier.create ~backend:Classifier.Tuple_space () in
  for i = 1 to nrules do
    let r = random_rule rng i in
    Classifier.add lin r;
    Classifier.add tss r
  done;
  (rng, lin, tss)

let test_classifier_backends_agree () =
  let rng, lin, tss = classifier_pair 70 ~seed:77 in
  for _ = 1 to 300 do
    let t5 = random_tuple rng in
    let a = Classifier.lookup lin t5 and b = Classifier.lookup tss t5 in
    check_bool "same action" true (a.Classifier.action = b.Classifier.action);
    check_bool "same matched rule" true (a.Classifier.matched == b.Classifier.matched
                                         || a.Classifier.matched = b.Classifier.matched);
    let ar = Classifier.lookup_reverse lin t5 and br = Classifier.lookup_reverse tss t5 in
    check_bool "same reverse action" true (ar.Classifier.action = br.Classifier.action)
  done;
  check_bool "tss charges less work at scale" true
    (let _, lin1k, tss1k = classifier_pair 0 ~seed:5 in
     for i = 1 to 1000 do
       let r =
         Acl.rule ~priority:i
           ~src:(Ipv4.Prefix.make (Ipv4.of_octets 172 16 (i mod 200) 0) 24)
           Acl.Deny
       in
       Classifier.add lin1k r;
       Classifier.add tss1k r
     done;
     let probe = tuple "10.0.0.1" "10.0.0.2" in
     (Classifier.lookup tss1k probe).Classifier.rules_scanned * 10
     < (Classifier.lookup lin1k probe).Classifier.rules_scanned)

let test_classifier_resync_on_direct_acl_mutation () =
  (* Tenant rule updates mutate the ACL through its own handle; the TSS
     index must notice via the revision counter. *)
  let c = Classifier.create ~backend:Classifier.Tuple_space () in
  let t5 = tuple "10.1.2.3" "2.2.2.2" in
  check_bool "permit before" true ((Classifier.lookup c t5).Classifier.action = Acl.Permit);
  Acl.add (Classifier.acl c) (Acl.rule ~priority:1 ~src:(pfx "10.0.0.0/8") Acl.Deny);
  check_bool "deny after direct add" true
    ((Classifier.lookup c t5).Classifier.action = Acl.Deny);
  Acl.clear (Classifier.acl c);
  check_bool "permit after direct clear" true
    ((Classifier.lookup c t5).Classifier.action = Acl.Permit);
  check_int "index emptied too" 0 (Classifier.tuple_count c)

let test_classifier_copy_independent () =
  let c = Classifier.create () in
  Classifier.add c (Acl.rule ~priority:1 ~src:(pfx "10.0.0.0/8") Acl.Deny);
  let d = Classifier.copy c in
  Classifier.add d (Acl.rule ~priority:0 ~src:(pfx "10.0.0.0/8") Acl.Permit);
  let t5 = tuple "10.1.1.1" "2.2.2.2" in
  check_bool "copy sees its own rule" true
    ((Classifier.lookup d t5).Classifier.action = Acl.Permit);
  check_bool "original unchanged" true
    ((Classifier.lookup c t5).Classifier.action = Acl.Deny)

(* Matched-rule identity, not just equality: pre-actions hang off the
   rule record, so all backends must surface the same physical rule. *)
let same_match a b =
  match (a, b) with
  | None, None -> true
  | Some ra, Some rb -> ra == rb
  | _ -> false

(* Three backends over one shared rule list: the rule records are
   physically shared across the private ACL copies, so [same_match]
   can compare across classifiers. *)
let classifier_trio rules =
  let mk b = Classifier.of_acl ~policy:(Classifier.Fixed b) (Acl.of_rules rules) in
  (mk Classifier.Linear, mk Classifier.Tuple_space, mk Classifier.Learned)

let prop_classifier_backends_equivalent =
  QCheck.Test.make ~name:"linear, tuple-space and learned backends agree" ~count:40
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 1 60)))
    (fun (seed, nrules) ->
      let rng = Nezha_engine.Rng.create seed in
      let rules = List.init nrules (fun i -> random_rule rng (i + 1)) in
      let lin, tss, lrn = classifier_trio rules in
      let agree t5 =
        let a = Classifier.lookup lin t5
        and b = Classifier.lookup tss t5
        and c = Classifier.lookup lrn t5 in
        a.Classifier.action = b.Classifier.action
        && b.Classifier.action = c.Classifier.action
        && same_match a.Classifier.matched b.Classifier.matched
        && same_match b.Classifier.matched c.Classifier.matched
        &&
        let ar = Classifier.lookup_reverse lin t5
        and cr = Classifier.lookup_reverse lrn t5 in
        ar.Classifier.action = cr.Classifier.action
        && same_match ar.Classifier.matched cr.Classifier.matched
      in
      let ok = ref true in
      for _ = 1 to 40 do
        if not (agree (random_tuple rng)) then ok := false
      done;
      (* Facade adds land in the learned remainder set; the global
         tie-break order must survive the model/remainder split. *)
      for i = 1 to 8 do
        let r = random_rule rng (1000 + i) in
        Classifier.add lin r;
        Classifier.add tss r;
        Classifier.add lrn r
      done;
      for _ = 1 to 20 do
        if not (agree (random_tuple rng)) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Learned backend: scale, auto-selection, resync *)

(* The bench generator in miniature: [nlens] prefix lengths x proto x
   port presence over distinct address blocks per length — indexable
   enough that [Auto] picks the learned backend, diverse enough that
   the TSS grows tuple shapes with scale. *)
let scale_rules n =
  let lens = if n <= 1_000 then [| 16; 24; 32 |] else Array.init 12 (fun i -> 20 + i) in
  let nlens = Array.length lens in
  let with_ports = n > 10_000 in
  List.init n (fun i ->
      let len = lens.(i mod nlens) in
      let k = i / nlens in
      let block = k * 2654435761 land ((1 lsl (len - 8)) - 1) in
      let base = Int32.of_int ((172 lsl 24) lor (block lsl (32 - len))) in
      Acl.rule ~priority:(i + 1)
        ~src:(Ipv4.Prefix.make (Ipv4.of_int32 base) len)
        ?proto:(if k land 1 = 0 then Some Five_tuple.Tcp else None)
        ?dst_ports:(if with_ports && k land 2 = 0 then Some (1024, 65535) else None)
        Acl.Deny)

(* A packet inside [r]'s source block; TCP to dst port 2048 satisfies
   any proto/port constraint [scale_rules] emits. *)
let probe_of_rule (r : Acl.rule) ~salt =
  let p = Option.get r.Acl.src in
  let len = Ipv4.Prefix.length p in
  let off = if len >= 32 then 0 else salt land ((1 lsl (32 - len)) - 1) in
  let src =
    Ipv4.of_int32 (Int32.add (Ipv4.to_int32 (Ipv4.Prefix.base p)) (Int32.of_int off))
  in
  Five_tuple.make ~src ~dst:(ip "203.0.113.9") ~src_port:4000 ~dst_port:2048
    ~proto:Five_tuple.Tcp

let test_learned_index_shape () =
  let rules = scale_rules 10_000 in
  let acl = Acl.of_rules rules in
  let l = Learned.create () in
  Learned.build l acl;
  check_bool "isets built" true (Learned.iset_count l > 0);
  check_int "nothing lost" 10_000 (Learned.rule_count l);
  check_int "indexed + remainder = all" 10_000
    (Learned.indexed_rules l + Learned.remainder_rules l);
  check_bool "most rules indexed" true (Learned.remainder_fraction l < 0.25);
  let err = Learned.max_error l in
  check_bool "bounded leaf error" true (err >= 0 && err < 64);
  check_bool "memory accounted" true (Learned.memory_bytes l > 0);
  (* The error-window contract in action: per-lookup work stays a
     handful of model evals plus window steps, never O(n). *)
  let worst = ref 0 in
  List.iteri
    (fun i r ->
      if i mod 101 = 0 then begin
        let v = Learned.lookup l (probe_of_rule r ~salt:i) in
        (match v.Learned.matched with
        | Some m -> check_bool "hit at least the probed rule" true (m.Acl.priority <= r.Acl.priority)
        | None -> Alcotest.fail "indexable probe missed");
        let work = v.Learned.model_evals + v.Learned.window_scans + v.Learned.remainder_probes in
        if work > !worst then worst := work
      end)
    rules;
  check_bool "sublinear lookup work" true (!worst * 50 < 10_000)

let test_classifier_auto_selection () =
  (* Below the rule threshold Auto stays with tuple space. *)
  let small = Classifier.of_acl (Acl.of_rules (scale_rules 512)) in
  check_bool "auto policy" true (Classifier.policy small = Classifier.Auto);
  check_bool "small stays tss" true (Classifier.backend small = Classifier.Tuple_space);
  (* Large and indexable: Auto upgrades to the learned index. *)
  let big = Classifier.of_acl (Acl.of_rules (scale_rules 5_000)) in
  check_bool "big goes learned" true (Classifier.backend big = Classifier.Learned);
  (* Large but wildcard in both address fields: the model could index
     nothing, so Auto must refuse the learned backend. *)
  let wild =
    Classifier.of_acl
      (Acl.of_rules
         (List.init 5_000 (fun i ->
              let lo = i mod 60_000 in
              Acl.rule ~priority:(i + 1) ~dst_ports:(lo, lo + 10) Acl.Deny)))
  in
  check_bool "wildcards stay tss" true (Classifier.backend wild = Classifier.Tuple_space);
  (* Growing through the facade across the threshold: the add fast path
     only flags the crossing; the next sync re-selects. *)
  let grow = Classifier.create () in
  List.iter (Classifier.add grow) (scale_rules (Classifier.auto_rule_threshold + 64));
  check_bool "grew into learned" true (Classifier.backend grow = Classifier.Learned);
  (* A pinned backend never re-selects, whatever the scale. *)
  let pinned =
    Classifier.of_acl ~policy:(Classifier.Fixed Classifier.Linear)
      (Acl.of_rules (scale_rules 5_000))
  in
  check_bool "fixed stays put" true (Classifier.backend pinned = Classifier.Linear)

let test_learned_revision_resync () =
  let rules = scale_rules 1_000 in
  let c = Classifier.of_acl ~policy:(Classifier.Fixed Classifier.Learned) (Acl.of_rules rules) in
  let t5 = probe_of_rule (List.hd rules) ~salt:0 in
  check_bool "deny from model" true ((Classifier.lookup c t5).Classifier.action = Acl.Deny);
  (* Facade add: absorbed into the remainder set, visible immediately,
     and its lower priority number must beat the model's rule. *)
  Classifier.add c (Acl.rule ~priority:0 ~src:(pfx "172.0.0.0/8") Acl.Permit);
  check_bool "permit from remainder" true
    ((Classifier.lookup c t5).Classifier.action = Acl.Permit);
  (* Removal can't patch immutable model arrays: the backend refuses the
     incremental path and the next lookup rebuilds. *)
  check_bool "removed" true (Classifier.remove c ~priority:0);
  check_bool "deny after rebuild" true ((Classifier.lookup c t5).Classifier.action = Acl.Deny);
  (* Mutation through the raw ACL handle: the revision bump alone must
     trigger the rebuild before the next lookup. *)
  Acl.add (Classifier.acl c) (Acl.rule ~priority:0 ~src:(pfx "172.0.0.0/8") Acl.Permit);
  check_bool "permit after direct add" true
    ((Classifier.lookup c t5).Classifier.action = Acl.Permit);
  ignore (Acl.remove (Classifier.acl c) ~priority:0 : bool);
  check_bool "deny after direct remove" true
    ((Classifier.lookup c t5).Classifier.action = Acl.Deny)

let test_classifier_scale_10k_exhaustive () =
  let rules = scale_rules 10_000 in
  let lin, tss, lrn = classifier_trio rules in
  check_bool "learned pinned" true (Classifier.backend lrn = Classifier.Learned);
  List.iteri
    (fun i r ->
      let t5 = probe_of_rule r ~salt:i in
      let b = Classifier.lookup tss t5 and c = Classifier.lookup lrn t5 in
      if b.Classifier.action <> c.Classifier.action
         || not (same_match b.Classifier.matched c.Classifier.matched)
      then Alcotest.failf "tss/learned diverge probing rule %d" r.Acl.priority;
      (* The linear oracle is O(n) per probe; sample it. *)
      if i mod 37 = 0 then begin
        let a = Classifier.lookup lin t5 in
        if a.Classifier.action <> c.Classifier.action
           || not (same_match a.Classifier.matched c.Classifier.matched)
        then Alcotest.failf "linear/learned diverge probing rule %d" r.Acl.priority
      end)
    rules

let test_classifier_scale_100k_sampled () =
  let n = 100_000 in
  let rules = scale_rules n in
  let arr = Array.of_list rules in
  let lin, tss, lrn = classifier_trio rules in
  check_bool "learned memory below tss" true
    (Classifier.memory_bytes lrn < Classifier.memory_bytes tss);
  let rng = Nezha_engine.Rng.create 424242 in
  for i = 1 to 300 do
    let t5 =
      if i land 1 = 0 then probe_of_rule arr.(Nezha_engine.Rng.int rng n) ~salt:i
      else random_tuple rng
    in
    let a = Classifier.lookup lin t5
    and b = Classifier.lookup tss t5
    and c = Classifier.lookup lrn t5 in
    check_bool "same action" true
      (a.Classifier.action = b.Classifier.action && b.Classifier.action = c.Classifier.action);
    check_bool "same matched rule" true
      (same_match a.Classifier.matched b.Classifier.matched
      && same_match b.Classifier.matched c.Classifier.matched)
  done

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "tables"
    [
      ( "lpm",
        [
          Alcotest.test_case "longest wins" `Quick test_lpm_longest_wins;
          Alcotest.test_case "default route" `Quick test_lpm_default_route;
          Alcotest.test_case "replace and remove" `Quick test_lpm_replace_and_remove;
          Alcotest.test_case "host route" `Quick test_lpm_host_route;
          Alcotest.test_case "depth cost" `Quick test_lpm_depth_cost;
          Alcotest.test_case "memory accounting" `Quick test_lpm_memory_grows;
          Alcotest.test_case "iter reconstructs prefixes" `Quick test_lpm_iter_reconstructs;
        ]
        @ qsuite [ prop_lpm_lookup_member ] );
      ( "acl",
        [
          Alcotest.test_case "priority order" `Quick test_acl_priority_order;
          Alcotest.test_case "default action" `Quick test_acl_default;
          Alcotest.test_case "port and proto match" `Quick test_acl_port_and_proto_match;
          Alcotest.test_case "scan cost grows with rules" `Quick test_acl_scan_cost_grows;
          Alcotest.test_case "remove" `Quick test_acl_remove;
          Alcotest.test_case "stable at same priority" `Quick test_acl_stable_same_priority;
        ] );
      ( "tss",
        [
          Alcotest.test_case "matches acl" `Quick test_tss_matches_acl;
          Alcotest.test_case "sublinear probes" `Quick test_tss_sublinear_probes;
          Alcotest.test_case "priority and ties" `Quick test_tss_priority_and_ties;
          Alcotest.test_case "remove" `Quick test_tss_remove;
          Alcotest.test_case "clear" `Quick test_tss_clear;
          Alcotest.test_case "memory accounting" `Quick test_tss_memory_accounting;
        ]
        @ qsuite [ prop_tss_equivalent ] );
      ( "classifier",
        [
          Alcotest.test_case "backends agree" `Quick test_classifier_backends_agree;
          Alcotest.test_case "resync on direct acl mutation" `Quick
            test_classifier_resync_on_direct_acl_mutation;
          Alcotest.test_case "copy is independent" `Quick test_classifier_copy_independent;
        ]
        @ qsuite [ prop_classifier_backends_equivalent ] );
      ( "learned",
        [
          Alcotest.test_case "index shape and error window" `Quick test_learned_index_shape;
          Alcotest.test_case "auto selection" `Quick test_classifier_auto_selection;
          Alcotest.test_case "revision resync" `Quick test_learned_revision_resync;
          Alcotest.test_case "10k exhaustive vs oracle" `Slow test_classifier_scale_10k_exhaustive;
          Alcotest.test_case "100k sampled vs oracle" `Slow test_classifier_scale_100k_sampled;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "insert and find" `Quick test_ft_insert_find;
          Alcotest.test_case "bidirectional key" `Quick test_ft_bidirectional_key;
          Alcotest.test_case "vpc isolation" `Quick test_ft_vpc_isolation;
          Alcotest.test_case "capacity limit" `Quick test_ft_capacity;
          Alcotest.test_case "replace updates memory" `Quick test_ft_replace_updates_memory;
          Alcotest.test_case "aging expiry" `Quick test_ft_aging;
          Alcotest.test_case "touch extends life" `Quick test_ft_touch_extends;
          Alcotest.test_case "short aging override" `Quick test_ft_short_aging_override;
          Alcotest.test_case "remove cancels timer" `Quick test_ft_remove;
          Alcotest.test_case "update in place" `Quick test_ft_update;
        ]
        @ qsuite [ prop_ft_memory_consistent ] );
    ]
