(* Tests for the discrete-event engine: heap, rng, stats, sim, timer wheel. *)

open Nezha_engine

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some x ->
      out := x :: !out;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !out)

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare () in
  check_bool "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h)

let test_heap_interleaved () =
  let h = Heap.create ~cmp:Int.compare () in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "min" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Alcotest.(check (option int)) "new min" (Some 0) (Heap.peek h);
  check_int "len" 2 (Heap.length h);
  Heap.clear h;
  check_int "cleared" 0 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* Drawing from [b] must not change [a]'s stream relative to a replay. *)
  let a' = Rng.create 7 in
  let _ = Rng.split a' in
  for _ = 1 to 10 do
    ignore (Rng.bits64 b : int64)
  done;
  for _ = 1 to 20 do
    Alcotest.(check int64) "a unchanged by b" (Rng.bits64 a') (Rng.bits64 a)
  done

let test_rng_int_range () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in r 5 9 in
    check_bool "in closed range" true (v >= 5 && v <= 9)
  done

let test_rng_int_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0 : int))

let test_rng_uniformity () =
  let r = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      check_bool "bucket near 10%" true (frac > 0.09 && frac < 0.11))
    buckets

let test_rng_exponential_mean () =
  let r = Rng.create 5 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:2.0
  done;
  let m = !sum /. float_of_int n in
  check_bool "mean near 2.0" true (m > 1.9 && m < 2.1)

let test_rng_zipf_rank1_dominates () =
  let r = Rng.create 3 in
  let counts = Array.make 101 0 in
  for _ = 1 to 20_000 do
    let k = Rng.zipf r ~n:100 ~s:1.2 in
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 1 most frequent" true (counts.(1) > counts.(2));
  check_bool "rank 2 beats rank 50" true (counts.(2) > counts.(50))

let test_rng_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian r ~mean:10.0 ~stddev:3.0) in
  check_bool "mean" true (Float.abs (Stats.mean samples -. 10.0) < 0.1);
  check_bool "stddev" true (Float.abs (Stats.stddev samples -. 3.0) < 0.1)

let test_rng_pick_shuffle () =
  let r = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted;
  let v = Rng.pick r a in
  check_bool "picked member" true (Array.exists (( = ) v) a)

let prop_chance_extremes =
  QCheck.Test.make ~name:"chance 0 and 1 are certain" ~count:100 QCheck.int
    (fun seed ->
      let r = Rng.create seed in
      Rng.chance r 1.0 && not (Rng.chance r 0.0))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_percentile_simple () =
  let xs = Array.init 101 float_of_int in
  check_float "p0" 0.0 (Stats.percentile xs 0.0);
  check_float "p50" 50.0 (Stats.percentile xs 50.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0);
  check_float "p25" 25.0 (Stats.percentile xs 25.0)

let test_percentile_interpolates () =
  let xs = [| 10.0; 20.0 |] in
  check_float "p50 midpoint" 15.0 (Stats.percentile xs 50.0)

let test_percentiles_batch () =
  let xs = Array.init 11 (fun i -> float_of_int (10 - i)) in
  let out = Stats.percentiles xs [ 0.0; 100.0 ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "batch" [ (0.0, 0.0); (100.0, 10.0) ] out

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty samples")
    (fun () -> ignore (Stats.percentile [||] 50.0 : float));
  Alcotest.check_raises "bad p" (Invalid_argument "Stats.percentile: p outside [0,100]")
    (fun () -> ignore (Stats.percentile [| 1.0 |] 150.0 : float))

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 10;
  check_int "value" 11 (Stats.Counter.value c);
  Stats.Counter.reset c;
  check_int "reset" 0 (Stats.Counter.value c)

let test_histogram_accuracy () =
  let h = Stats.Histogram.create () in
  for i = 1 to 10_000 do
    Stats.Histogram.record h (float_of_int i)
  done;
  check_int "count" 10_000 (Stats.Histogram.count h);
  let p50 = Stats.Histogram.percentile h 50.0 in
  check_bool "p50 within 2%" true (Float.abs (p50 -. 5000.0) /. 5000.0 < 0.02);
  let p99 = Stats.Histogram.percentile h 99.0 in
  check_bool "p99 within 2%" true (Float.abs (p99 -. 9900.0) /. 9900.0 < 0.02);
  check_float "max exact" 10_000.0 (Stats.Histogram.max_value h);
  check_float "min exact" 1.0 (Stats.Histogram.min_value h)

let test_histogram_empty_and_merge () =
  let a = Stats.Histogram.create () in
  check_float "empty percentile" 0.0 (Stats.Histogram.percentile a 99.0);
  let b = Stats.Histogram.create () in
  Stats.Histogram.record_n a 5.0 10;
  Stats.Histogram.record_n b 50.0 10;
  Stats.Histogram.merge_into ~dst:a ~src:b;
  check_int "merged count" 20 (Stats.Histogram.count a);
  check_float "merged max" 50.0 (Stats.Histogram.max_value a);
  let p25 = Stats.Histogram.percentile a 25.0 in
  check_bool "low half is 5" true (Float.abs (p25 -. 5.0) /. 5.0 < 0.02)

let test_histogram_negative_clamped () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.record h (-3.0);
  check_float "clamped to 0" 0.0 (Stats.Histogram.max_value h)

let prop_histogram_percentile_close =
  QCheck.Test.make ~name:"histogram percentile tracks exact percentile" ~count:50
    QCheck.(make Gen.(list_size (int_range 100 1000) (float_range 0.1 1e6)))
    (fun xs ->
      let arr = Array.of_list xs in
      let h = Stats.Histogram.create () in
      Array.iter (Stats.Histogram.record h) arr;
      List.for_all
        (fun p ->
          let exact = Stats.percentile arr p in
          let est = Stats.Histogram.percentile h p in
          (* With 2 significant digits the bucket error is ~1%; allow 3%
             plus interpolation slack between neighbouring samples. *)
          exact = 0.0 || Float.abs (est -. exact) /. exact < 0.05)
        [ 50.0; 90.0; 99.0 ])

let test_series () =
  let s = Stats.Series.create ~name:"cpu" in
  Stats.Series.add s ~time:0.0 1.0;
  Stats.Series.add s ~time:1.0 2.0;
  Stats.Series.add s ~time:2.0 3.0;
  check_int "len" 3 (Stats.Series.length s);
  Alcotest.(check string) "name" "cpu" (Stats.Series.name s);
  (match Stats.Series.last s with
  | Some (t, v) ->
    check_float "last t" 2.0 t;
    check_float "last v" 3.0 v
  | None -> Alcotest.fail "expected last");
  let pts = Stats.Series.points s in
  check_int "points" 3 (Array.length pts)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag _ = log := tag :: !log in
  ignore (Sim.schedule sim ~delay:3.0 (note "c") : Sim.handle);
  ignore (Sim.schedule sim ~delay:1.0 (note "a") : Sim.handle);
  ignore (Sim.schedule sim ~delay:2.0 (note "b") : Sim.handle);
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "final time" 3.0 (Sim.now sim)

let test_sim_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~delay:1.0 (fun _ -> log := i :: !log) : Sim.handle)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:1.0 (fun _ -> fired := true) in
  Sim.cancel sim h;
  check_bool "cancelled flag" true (Sim.cancelled h);
  Sim.run sim;
  check_bool "did not fire" false !fired

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick s =
    incr count;
    ignore (Sim.schedule s ~delay:1.0 tick : Sim.handle)
  in
  ignore (Sim.schedule sim ~delay:1.0 tick : Sim.handle);
  Sim.run ~until:10.5 sim;
  check_int "ticks up to 10.5" 10 !count;
  check_float "clock parked at until" 10.5 (Sim.now sim)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun s ->
         log := "outer" :: !log;
         ignore
           (Sim.schedule s ~delay:0.0 (fun _ -> log := "inner" :: !log)
             : Sim.handle))
      : Sim.handle);
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_sim_every_stops () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.every sim ~period:1.0 (fun _ ->
      incr count;
      !count < 5);
  Sim.run sim;
  check_int "stopped after 5" 5 !count

let test_sim_max_events () =
  let sim = Sim.create () in
  let rec tick s = ignore (Sim.schedule s ~delay:1.0 tick : Sim.handle) in
  ignore (Sim.schedule sim ~delay:0.0 tick : Sim.handle);
  Sim.run ~max_events:100 sim;
  check_int "bounded" 100 (Sim.events_executed sim)

let test_sim_negative_delay_clamped () =
  let sim = Sim.create () in
  let t = ref (-1.0) in
  ignore
    (Sim.schedule sim ~delay:5.0 (fun s ->
         ignore (Sim.schedule s ~delay:(-3.0) (fun s' -> t := Sim.now s') : Sim.handle))
      : Sim.handle);
  Sim.run sim;
  check_float "fires now, not in the past" 5.0 !t

(* ------------------------------------------------------------------ *)
(* Timer wheel *)

let test_wheel_fires_in_window () =
  let w = Timer_wheel.create ~tick:0.1 ~slots:64 in
  let fired = ref [] in
  ignore (Timer_wheel.add w ~now:0.0 ~deadline:1.0 "a" : string Timer_wheel.timer);
  ignore (Timer_wheel.add w ~now:0.0 ~deadline:2.0 "b" : string Timer_wheel.timer);
  check_int "pending" 2 (Timer_wheel.pending w);
  let n = Timer_wheel.advance w ~now:1.5 (fun v -> fired := v :: !fired) in
  check_int "one fired" 1 n;
  Alcotest.(check (list string)) "a fired" [ "a" ] !fired;
  let n2 = Timer_wheel.advance w ~now:2.5 (fun v -> fired := v :: !fired) in
  check_int "second fired" 1 n2;
  check_int "none pending" 0 (Timer_wheel.pending w)

let test_wheel_cancel () =
  let w = Timer_wheel.create ~tick:0.1 ~slots:16 in
  let t = Timer_wheel.add w ~now:0.0 ~deadline:0.5 42 in
  Timer_wheel.cancel t;
  check_bool "cancelled" true (Timer_wheel.cancelled t);
  check_int "pending drops immediately" 0 (Timer_wheel.pending w);
  let n = Timer_wheel.advance w ~now:1.0 (fun _ -> Alcotest.fail "must not fire") in
  check_int "no fires" 0 n

let test_wheel_multi_revolution () =
  (* Deadline far beyond one revolution must survive sweeps until due. *)
  let w = Timer_wheel.create ~tick:0.1 ~slots:4 in
  let fired = ref 0 in
  ignore (Timer_wheel.add w ~now:0.0 ~deadline:3.0 () : unit Timer_wheel.timer);
  ignore (Timer_wheel.advance w ~now:1.0 (fun () -> incr fired) : int);
  check_int "not yet" 0 !fired;
  ignore (Timer_wheel.advance w ~now:2.9 (fun () -> incr fired) : int);
  check_int "still not" 0 !fired;
  ignore (Timer_wheel.advance w ~now:3.2 (fun () -> incr fired) : int);
  check_int "fired on time" 1 !fired

let test_wheel_min_one_tick () =
  let w = Timer_wheel.create ~tick:1.0 ~slots:8 in
  let fired = ref 0 in
  (* Deadline in the past is clamped one tick ahead, never dropped. *)
  ignore (Timer_wheel.add w ~now:5.0 ~deadline:1.0 () : unit Timer_wheel.timer);
  ignore (Timer_wheel.advance w ~now:7.0 (fun () -> incr fired) : int);
  check_int "fired after clamp" 1 !fired

let prop_wheel_fires_everything =
  QCheck.Test.make ~name:"timer wheel fires every non-cancelled timer" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 200) (float_range 0.01 50.0)))
    (fun deadlines ->
      let w = Timer_wheel.create ~tick:0.25 ~slots:32 in
      List.iter
        (fun d -> ignore (Timer_wheel.add w ~now:0.0 ~deadline:d () : unit Timer_wheel.timer))
        deadlines;
      let fired = ref 0 in
      ignore (Timer_wheel.advance w ~now:100.0 (fun () -> incr fired) : int);
      !fired = List.length deadlines && Timer_wheel.pending w = 0)


let test_sim_pool_reuse () =
  (* A chain of events scheduled one-at-a-time recycles a single pooled
     record: the first firing's record is free again by the time the
     handler schedules the next. *)
  let sim = Sim.create () in
  let rec tick n s = if n < 100 then ignore (Sim.schedule s ~delay:1.0 (tick (n + 1)) : Sim.handle) in
  ignore (Sim.schedule sim ~delay:1.0 (tick 1) : Sim.handle);
  Sim.run sim;
  let reused, fresh = Sim.pool_stats sim in
  check_int "one fresh record" 1 fresh;
  check_int "rest reused" 99 reused

let test_sim_every_pool () =
  (* [every] must not grow the pool: all re-arms go through the one
     recycled record. *)
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.every sim ~period:1.0 (fun _ ->
      incr count;
      !count < 50);
  Sim.run sim;
  let _, fresh = Sim.pool_stats sim in
  check_int "fired every period" 50 !count;
  check_bool "at most one fresh record" true (fresh <= 1)

let test_sim_timeout_fires_coarse () =
  let sim = Sim.create ~timer_tick:0.1 () in
  let fired_at = ref nan in
  ignore (Sim.timeout sim ~delay:0.42 (fun s -> fired_at := Sim.now s) : Sim.timer);
  Sim.run sim;
  check_bool "at or after the deadline" true (!fired_at >= 0.42);
  check_bool "within one tick of it" true (!fired_at <= 0.42 +. 0.1)

let test_sim_timeout_cancel () =
  let sim = Sim.create () in
  let t = Sim.timeout sim ~delay:1.0 (fun _ -> Alcotest.fail "cancelled timer fired") in
  Sim.cancel_timer t;
  check_bool "cancelled" true (Sim.timer_cancelled t);
  Sim.run sim;
  check_int "nothing pending" 0 (Sim.pending sim)

let prop_timeout_matches_schedule =
  (* Wheel-vs-heap equivalence: the same set of delays scheduled through
     [timeout] fires completely, in deadline order, each firing within
     one wheel tick at-or-after the exact time the heap would use. *)
  QCheck.Test.make ~name:"timeout fires like schedule, within one tick" ~count:100
    QCheck.(
      make
        ~print:Print.(list float)
        Gen.(list_size (int_range 1 100) (float_range 0.01 20.0)))
    (fun delays ->
      let tick = 0.05 in
      let wheel_sim = Sim.create ~timer_tick:tick () in
      let heap_sim = Sim.create () in
      let n = List.length delays in
      let wheel_t = Array.make n nan and heap_t = Array.make n nan in
      List.iteri
        (fun i d ->
          ignore (Sim.timeout wheel_sim ~delay:d (fun s -> wheel_t.(i) <- Sim.now s) : Sim.timer);
          ignore (Sim.schedule heap_sim ~delay:d (fun s -> heap_t.(i) <- Sim.now s) : Sim.handle))
        delays;
      Sim.run wheel_sim;
      Sim.run heap_sim;
      let ok = ref true in
      for i = 0 to n - 1 do
        ok :=
          !ok
          && (not (Float.is_nan wheel_t.(i)))
          && (not (Float.is_nan heap_t.(i)))
          && wheel_t.(i) >= heap_t.(i)
          && wheel_t.(i) <= heap_t.(i) +. tick
      done;
      !ok && Sim.pending wheel_sim = 0)

(* ------------------------------------------------------------------ *)
(* Sharded clusters *)

let test_sharded_send_and_determinism () =
  let run () =
    let c = Sim.Sharded.create ~shards:2 ~lookahead:0.1 () in
    let s0 = Sim.Sharded.shard c 0 in
    let log = ref [] in
    let rec ping n sim =
      log := (Sim.Sharded.shard_id sim, n, Sim.now sim) :: !log;
      if n < 20 then
        Sim.Sharded.send sim ~dst:(if sim == s0 then 1 else 0) ~delay:0.1 (ping (n + 1))
    in
    ignore (Sim.schedule s0 ~delay:0.0 (ping 0) : Sim.handle);
    Sim.Sharded.run c;
    (List.rev !log, Sim.Sharded.events_executed c, Sim.Sharded.messages_delivered c)
  in
  let (log, events, msgs) = run () in
  check_int "21 hops" 21 (List.length log);
  check_bool "alternates shards" true
    (List.for_all (fun (shard, n, _) -> shard = Some (n mod 2)) log);
  check_bool "messages crossed" true (msgs >= 20);
  check_bool "bit-for-bit rerun" true ((log, events, msgs) = run ())

let test_sharded_lookahead_enforced () =
  let c = Sim.Sharded.create ~shards:2 ~lookahead:0.1 () in
  let s0 = Sim.Sharded.shard c 0 in
  Alcotest.check_raises "below-lookahead cross-shard send"
    (Invalid_argument "Sim.Sharded.send: cross-shard delay below lookahead") (fun () ->
      Sim.Sharded.send s0 ~dst:1 ~delay:0.05 (fun _ -> ()));
  (* Same-shard sends may use any delay. *)
  let fired = ref false in
  Sim.Sharded.send s0 ~dst:0 ~delay:0.0 (fun _ -> fired := true);
  Sim.Sharded.run c;
  check_bool "same-shard send fired" true !fired

let test_cross_rejects_unrelated () =
  let a = Sim.create () and b = Sim.create () in
  Alcotest.check_raises "unrelated simulations"
    (Invalid_argument "Sim.cross: simulations are not in the same cluster") (fun () ->
      Sim.cross a b ~delay:1.0 (fun _ -> ()))

let test_sim_determinism () =
  (* Two identically-seeded simulations execute identical schedules. *)
  let run () =
    let sim = Sim.create () in
    let rng = Rng.create 99 in
    let log = ref [] in
    let rec tick n s =
      if n < 200 then begin
        log := (Sim.now s, n) :: !log;
        ignore (Sim.schedule s ~delay:(Rng.exponential rng ~mean:0.01) (tick (n + 1)) : Sim.handle)
      end
    in
    ignore (Sim.schedule sim ~delay:0.0 (tick 0) : Sim.handle);
    Sim.run sim;
    (!log, Sim.events_executed sim)
  in
  let a = run () and b = run () in
  check_bool "identical traces" true (a = b)

let test_series_pp_table () =
  let s = Stats.Series.create ~name:"latency" in
  for i = 0 to 199 do
    Stats.Series.add s ~time:(float_of_int i) (float_of_int (i * i))
  done;
  let rendered = Format.asprintf "%a" (Stats.Series.pp_table ~limit:10) s in
  check_bool "has header" true (String.length rendered > 0);
  (* Downsampled to roughly the limit. *)
  let lines = String.split_on_char '\n' rendered in
  check_bool "downsampled" true (List.length lines <= 15)

let test_token_bucket_in_engine () =
  (* Smoke: the engine-level bucket integrates with simulated time. *)
  let b = Token_bucket.create ~rate_bytes_per_s:100.0 ~burst_bytes:100.0 in
  check_bool "initial burst" true (Token_bucket.take b ~now:0.0 ~bytes:100);
  check_bool "rate accessor" true (Token_bucket.rate b = 100.0);
  check_bool "burst accessor" true (Token_bucket.burst b = 100.0)

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "engine"
    [
      ( "heap",
        [
          Alcotest.test_case "drains sorted" `Quick test_heap_order;
          Alcotest.test_case "empty ops" `Quick test_heap_empty;
          Alcotest.test_case "interleaved push/pop" `Quick test_heap_interleaved;
        ]
        @ qsuite [ prop_heap_sorts ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int ranges" `Quick test_rng_int_range;
          Alcotest.test_case "invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_rank1_dominates;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "pick and shuffle" `Quick test_rng_pick_shuffle;
        ]
        @ qsuite [ prop_chance_extremes ] );
      ( "stats",
        [
          Alcotest.test_case "percentile simple" `Quick test_percentile_simple;
          Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolates;
          Alcotest.test_case "percentiles batch" `Quick test_percentiles_batch;
          Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "histogram accuracy" `Quick test_histogram_accuracy;
          Alcotest.test_case "histogram merge" `Quick test_histogram_empty_and_merge;
          Alcotest.test_case "histogram clamps negatives" `Quick test_histogram_negative_clamped;
          Alcotest.test_case "series" `Quick test_series;
        ]
        @ qsuite [ prop_histogram_percentile_close ] );
      ( "sim",
        [
          Alcotest.test_case "time ordering" `Quick test_sim_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_sim_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
          Alcotest.test_case "every stops on false" `Quick test_sim_every_stops;
          Alcotest.test_case "max events" `Quick test_sim_max_events;
          Alcotest.test_case "negative delay clamped" `Quick test_sim_negative_delay_clamped;
          Alcotest.test_case "bit-for-bit determinism" `Quick test_sim_determinism;
          Alcotest.test_case "event pool reuse" `Quick test_sim_pool_reuse;
          Alcotest.test_case "every reuses one record" `Quick test_sim_every_pool;
          Alcotest.test_case "timeout fires coarsely" `Quick test_sim_timeout_fires_coarse;
          Alcotest.test_case "timeout cancel" `Quick test_sim_timeout_cancel;
        ]
        @ qsuite [ prop_timeout_matches_schedule ] );
      ( "sharded",
        [
          Alcotest.test_case "send + determinism" `Quick test_sharded_send_and_determinism;
          Alcotest.test_case "lookahead enforced" `Quick test_sharded_lookahead_enforced;
          Alcotest.test_case "cross rejects unrelated" `Quick test_cross_rejects_unrelated;
        ] );
      ( "misc",
        [
          Alcotest.test_case "series table rendering" `Quick test_series_pp_table;
          Alcotest.test_case "token bucket accessors" `Quick test_token_bucket_in_engine;
        ] );
      ( "timer_wheel",
        [
          Alcotest.test_case "fires in window" `Quick test_wheel_fires_in_window;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "multi revolution" `Quick test_wheel_multi_revolution;
          Alcotest.test_case "past deadline clamped" `Quick test_wheel_min_one_tick;
        ]
        @ qsuite [ prop_wheel_fires_everything ] );
    ]
