(* Table-driven unit tests for the pure SLO decision core (slo.mli):
   hysteresis band, cooldown, warmup, mass-failure suppression and the
   serving floor/ceiling — synthetic P99 series only, no simulation. *)

open Nezha_core

let decision : Slo.decision Alcotest.testable =
  Alcotest.testable Slo.pp_decision ( = )

(* Out above 6 ms, in below 4 ms; pool 2..8, 2 per step. *)
let cfg =
  {
    Slo.target_p99 = 0.005;
    band = 0.20;
    cooldown = 10.0;
    warmup = 5.0;
    min_pool = 2;
    max_pool = 8;
    max_step = 2;
    suppress_fraction = 0.30;
    suppress_hold = 30.0;
  }

let fresh () = Slo.create ~config:cfg ~now:0.0 ()

(* Each row is an independent post-warmup observation against a fresh
   state machine, so the table reads as the decision function itself. *)
let test_decision_table () =
  let rows =
    [
      ("at target", Some 0.005, 4, Slo.Hold Slo.Within_band);
      ("upper band edge holds", Some 0.006, 4, Slo.Hold Slo.Within_band);
      ("lower band edge holds", Some 0.004, 4, Slo.Hold Slo.Within_band);
      ("above the band scales out", Some 0.0061, 4, Slo.Scale_out 2);
      ("below the band scales in", Some 0.0039, 4, Slo.Scale_in 2);
      ("no sample holds", None, 4, Slo.Hold Slo.No_signal);
      ("ceiling clamps the step", Some 0.02, 7, Slo.Scale_out 1);
      ("at the ceiling holds", Some 0.02, 8, Slo.Hold Slo.At_max);
      ("floor clamps the step", Some 0.0005, 3, Slo.Scale_in 1);
      ("at the floor holds", Some 0.0005, 2, Slo.Hold Slo.At_min);
    ]
  in
  List.iter
    (fun (name, p99, pool, expected) ->
      let t = fresh () in
      Alcotest.check decision name expected
        (Slo.observe t ~now:10.0 ~p99 ~pool ~suspects:0))
    rows

let test_warmup_blocks_first_decisions () =
  let t = fresh () in
  Alcotest.check decision "cold start holds" (Slo.Hold Slo.Warming_up)
    (Slo.observe t ~now:1.0 ~p99:(Some 0.05) ~pool:4 ~suspects:0);
  Alcotest.check decision "still inside warmup" (Slo.Hold Slo.Warming_up)
    (Slo.observe t ~now:4.9 ~p99:(Some 0.05) ~pool:4 ~suspects:0);
  Alcotest.check decision "first tick past warmup acts" (Slo.Scale_out 2)
    (Slo.observe t ~now:5.0 ~p99:(Some 0.05) ~pool:4 ~suspects:0)

let test_cooldown_spaces_resizes () =
  let t = fresh () in
  Alcotest.check decision "initial scale-out" (Slo.Scale_out 2)
    (Slo.observe t ~now:10.0 ~p99:(Some 0.02) ~pool:4 ~suspects:0);
  Alcotest.check decision "held while settling" (Slo.Hold Slo.Cooling_down)
    (Slo.observe t ~now:15.0 ~p99:(Some 0.02) ~pool:6 ~suspects:0);
  Alcotest.check decision "held to the last instant" (Slo.Hold Slo.Cooling_down)
    (Slo.observe t ~now:19.99 ~p99:(Some 0.02) ~pool:6 ~suspects:0);
  Alcotest.check decision "acts once the cooldown expires" (Slo.Scale_out 2)
    (Slo.observe t ~now:20.0 ~p99:(Some 0.02) ~pool:6 ~suspects:0);
  (* A scale-in arms the same cooldown. *)
  Alcotest.check decision "scale-in after its own cooldown" (Slo.Scale_in 2)
    (Slo.observe t ~now:30.0 ~p99:(Some 0.001) ~pool:8 ~suspects:0);
  Alcotest.check decision "scale-in also cools down" (Slo.Hold Slo.Cooling_down)
    (Slo.observe t ~now:35.0 ~p99:(Some 0.001) ~pool:6 ~suspects:0);
  Alcotest.(check int) "two scale-outs counted" 2 (Slo.scale_outs t);
  Alcotest.(check int) "one scale-in counted" 1 (Slo.scale_ins t)

let test_suppression_window () =
  let t = fresh () in
  (* 4/10 suspects > 30%: open a 30 s window — the exploding P99 is the
     failure talking, not demand. *)
  Alcotest.check decision "mass failure suppresses" (Slo.Hold Slo.Suppressed)
    (Slo.observe t ~now:10.0 ~p99:(Some 0.5) ~pool:10 ~suspects:4);
  Alcotest.(check bool) "window reported open" true
    (Slo.in_suppression t ~now:11.0);
  (* Suspects recovered, but the window still holds. *)
  Alcotest.check decision "window outlives the suspects" (Slo.Hold Slo.Suppressed)
    (Slo.observe t ~now:39.9 ~p99:(Some 0.5) ~pool:10 ~suspects:0);
  Alcotest.check decision "acts once the window closes" (Slo.Hold Slo.At_max)
    (Slo.observe t ~now:40.0 ~p99:(Some 0.5) ~pool:10 ~suspects:0);
  Alcotest.(check int) "suppressed ticks counted" 2 (Slo.suppressed_ticks t)

let test_suppression_threshold_is_strict () =
  let t = fresh () in
  (* Exactly the fraction (3/10 = 30%) does not suppress. *)
  Alcotest.check decision "at the fraction still acts" (Slo.Scale_out 2)
    (Slo.observe t ~now:10.0 ~p99:(Some 0.5) ~pool:4 ~suspects:1);
  let t = fresh () in
  ignore (Slo.observe t ~now:10.0 ~p99:(Some 0.5) ~pool:10 ~suspects:4);
  (* A fresh burst of suspects extends the window from its tick. *)
  ignore (Slo.observe t ~now:25.0 ~p99:(Some 0.5) ~pool:10 ~suspects:4);
  Alcotest.(check bool) "window extended by the second burst" true
    (Slo.in_suppression t ~now:54.9)

(* A monotone low-P99 series drains the pool to the serving minimum and
   never through it, whatever the cadence. *)
let test_series_never_below_serving_minimum () =
  let c = { cfg with Slo.cooldown = 1.0 } in
  let t = Slo.create ~config:c ~now:0.0 () in
  let pool = ref 8 in
  for i = 5 to 30 do
    (match
       Slo.observe t ~now:(float_of_int i) ~p99:(Some 0.001) ~pool:!pool
         ~suspects:0
     with
    | Slo.Scale_in n -> pool := !pool - n
    | Slo.Scale_out n -> pool := !pool + n
    | Slo.Hold _ -> ());
    if !pool < c.Slo.min_pool then
      Alcotest.failf "pool %d fell below serving minimum %d at t=%d" !pool
        c.Slo.min_pool i
  done;
  Alcotest.(check int) "drained exactly to the floor" c.Slo.min_pool !pool;
  Alcotest.(check bool) "multiple scale-ins happened" true (Slo.scale_ins t >= 3)

let test_introspection_and_signal_retention () =
  let t = fresh () in
  ignore (Slo.observe t ~now:10.0 ~p99:(Some 0.0071) ~pool:4 ~suspects:0);
  Alcotest.(check (option (float 1e-9))) "last p99 recorded" (Some 0.0071)
    (Slo.last_p99 t);
  (* A None tick keeps the last real sample for telemetry. *)
  ignore (Slo.observe t ~now:11.0 ~p99:None ~pool:6 ~suspects:0);
  Alcotest.(check (option (float 1e-9))) "last p99 survives a gap" (Some 0.0071)
    (Slo.last_p99 t);
  (match Slo.last_decision t with
  | Some (Slo.Hold Slo.No_signal) -> ()
  | d ->
      Alcotest.failf "expected hold(no-signal), got %s"
        (match d with
        | None -> "none"
        | Some d -> Format.asprintf "%a" Slo.pp_decision d));
  Alcotest.(check int) "decision codes are the telemetry contract" 1
    (Slo.decision_code (Slo.Scale_out 2));
  Alcotest.(check int) "hold encodes as 0" 0
    (Slo.decision_code (Slo.Hold Slo.Within_band))

let test_create_validates_config () =
  let raises name bad =
    match Slo.create ~config:bad ~now:0.0 () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  raises "non-positive target" { cfg with Slo.target_p99 = 0.0 };
  raises "negative band" { cfg with Slo.band = -0.1 };
  raises "zero min pool" { cfg with Slo.min_pool = 0 };
  raises "inverted pool bounds" { cfg with Slo.max_pool = 1 };
  raises "zero step" { cfg with Slo.max_step = 0 }

let () =
  Alcotest.run "slo"
    [
      ( "decision-core",
        [
          Alcotest.test_case "hysteresis/floor/ceiling table" `Quick
            test_decision_table;
          Alcotest.test_case "warmup blocks first decisions" `Quick
            test_warmup_blocks_first_decisions;
          Alcotest.test_case "cooldown spaces resizes" `Quick
            test_cooldown_spaces_resizes;
          Alcotest.test_case "mass-failure suppression window" `Quick
            test_suppression_window;
          Alcotest.test_case "suppression threshold strict + extension" `Quick
            test_suppression_threshold_is_strict;
          Alcotest.test_case "series never dips below serving minimum" `Quick
            test_series_never_below_serving_minimum;
          Alcotest.test_case "introspection and signal retention" `Quick
            test_introspection_and_signal_retention;
          Alcotest.test_case "create validates config" `Quick
            test_create_validates_config;
        ] );
    ]
