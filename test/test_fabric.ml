(* Tests for topology, VM kernel model, gateway and the delivery engine. *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topo_shape () =
  let topo = Topology.create ~racks:3 ~servers_per_rack:4 in
  check_int "12 servers" 12 (Topology.server_count topo);
  check_int "rack of 0" 0 (Topology.rack_of topo 0);
  check_int "rack of 11" 2 (Topology.rack_of topo 11);
  Alcotest.(check (list int)) "rack 1 members" [ 4; 5; 6; 7 ] (Topology.servers_in_rack topo 1);
  check_bool "same rack" true (Topology.same_rack topo 4 7);
  check_bool "cross rack" false (Topology.same_rack topo 3 4)

let test_topo_addressing_roundtrip () =
  let topo = Topology.create ~racks:5 ~servers_per_rack:10 in
  List.iter
    (fun sid ->
      let addr = Topology.underlay_ip topo sid in
      check_bool "roundtrip" true (Topology.server_of_ip topo addr = Some sid))
    (Topology.servers topo);
  check_bool "gateway not a server" true
    (Topology.server_of_ip topo (Topology.gateway_ip topo) = None);
  check_bool "foreign ip" true (Topology.server_of_ip topo (ip "10.0.0.1") = None)

let test_topo_latency_ordering () =
  let topo = Topology.create ~racks:2 ~servers_per_rack:2 in
  let same = Topology.latency topo 0 0 in
  let rack = Topology.latency topo 0 1 in
  let cross = Topology.latency topo 0 2 in
  check_bool "same < rack < cross" true (same < rack && rack < cross);
  check_bool "tens of us" true (cross < 100e-6)

let test_topo_invalid () =
  Alcotest.check_raises "zero racks"
    (Invalid_argument "Topology.create: dimensions must be positive") (fun () ->
      ignore (Topology.create ~racks:0 ~servers_per_rack:1 : Topology.t))

(* ------------------------------------------------------------------ *)
(* Vm *)

let test_vm_saturating_capacity () =
  let sim = Sim.create () in
  let mk v = Vm.create ~sim ~name:"vm" ~vcpus:v () in
  let c8 = Vm.max_cps (mk 8) and c16 = Vm.max_cps (mk 16) and c64 = Vm.max_cps (mk 64) in
  check_bool "more cores help" true (c16 > c8 && c64 > c16);
  (* ... but sublinearly: doubling 8->16 must yield well under 2x. *)
  check_bool "saturating" true (c16 /. c8 < 1.8);
  check_bool "heavily saturating at 64" true (c64 /. c8 < 3.0)

let syn_packet i =
  Packet.create ~vpc:(Vpc.make 1)
    ~flow:
      (Five_tuple.make ~src:(ip "10.0.0.2") ~dst:(ip "10.0.0.1") ~src_port:(1024 + i)
         ~dst_port:80 ~proto:Five_tuple.Tcp)
    ~direction:Packet.Rx ~flags:Packet.syn ()

let test_vm_processes_and_counts () =
  let sim = Sim.create () in
  let vm = Vm.create ~sim ~name:"vm" ~vcpus:8 () in
  let seen = ref 0 in
  Vm.set_app vm (fun _ _ -> incr seen);
  for i = 0 to 9 do
    Vm.deliver vm (syn_packet i)
  done;
  Sim.run sim;
  check_int "app saw all" 10 !seen;
  check_int "accepted" 10 (Vm.connections_accepted vm);
  check_int "no drops" 0 (Vm.packets_dropped vm)

let test_vm_backlog_overflow () =
  let sim = Sim.create () in
  let kernel = { Vm.default_kernel with Vm.backlog = 5; per_core_hz = 1e6 } in
  let vm = Vm.create ~sim ~name:"vm" ~vcpus:1 ~kernel () in
  for i = 0 to 19 do
    Vm.deliver vm (syn_packet i)
  done;
  check_int "overflow drops" 15 (Vm.packets_dropped vm);
  Sim.run sim;
  check_int "admitted completed" 5 (Vm.packets_delivered vm)

let test_vm_utilization () =
  let sim = Sim.create () in
  let kernel = { Vm.default_kernel with Vm.per_core_hz = 1e6; connection_cycles = 100_000 } in
  let vm = Vm.create ~sim ~name:"vm" ~vcpus:1 ~kernel () in
  (* ~0.108 s of kernel work (8k + 100k cycles at 1 MHz). *)
  Vm.deliver vm (syn_packet 0);
  Sim.run sim ~until:1.0;
  let u = Vm.utilization_since_last_sample vm in
  check_bool "~10% busy" true (u > 0.08 && u < 0.13)

(* ------------------------------------------------------------------ *)
(* Fabric end-to-end: two servers, VM to VM *)

let test_params =
  { Params.default with Params.cpu_hz = 1e8; mem_bytes = 16 * 1024 * 1024 }

let vpc = Vpc.make 9

let mk_vnic ~id ~ip:addr = Vnic.make ~id ~vpc ~ip:(ip addr) ~mac:(Mac.of_int64 (Int64.of_int id))

let basic_ruleset ?(mapping = []) () =
  let rs = Ruleset.create ~vni:9 () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  List.iter (fun (a, server) -> Ruleset.add_mapping rs { Vnic.Addr.vpc; ip = ip a } (ip server)) mapping;
  rs

type duo = {
  sim : Sim.t;
  fabric : Fabric.t;
  vs0 : Vswitch.t;
  vs1 : Vswitch.t;
  vm0 : Vm.t;
  vm1 : Vm.t;
}

(* Server 0 hosts vNIC 1 at 10.0.0.1; server 1 hosts vNIC 2 at 10.0.0.2. *)
let make_duo ?(know_peer = true) () =
  let sim = Sim.create () in
  let topo = Topology.create ~racks:1 ~servers_per_rack:2 in
  let fabric = Fabric.create ~sim ~topology:topo in
  let vs0 = Fabric.add_server fabric 0 ~params:test_params in
  let vs1 = Fabric.add_server fabric 1 ~params:test_params in
  let v1 = mk_vnic ~id:1 ~ip:"10.0.0.1" and v2 = mk_vnic ~id:2 ~ip:"10.0.0.2" in
  let rs0 =
    basic_ruleset ~mapping:(if know_peer then [ ("10.0.0.2", "192.168.1.2") ] else []) ()
  in
  let rs1 = basic_ruleset ~mapping:[ ("10.0.0.1", "192.168.1.1") ] () in
  (match (Vswitch.add_vnic vs0 v1 rs0, Vswitch.add_vnic vs1 v2 rs1) with
  | Ok (), Ok () -> ()
  | _, _ -> Alcotest.fail "vnics must fit");
  let vm0 = Vm.create ~sim ~name:"vm0" ~vcpus:8 () in
  let vm1 = Vm.create ~sim ~name:"vm1" ~vcpus:8 () in
  Fabric.attach_vm fabric 0 v1.Vnic.id vm0;
  Fabric.attach_vm fabric 1 v2.Vnic.id vm1;
  (* Gateway knows everything. *)
  Gateway.set_route (Fabric.gateway fabric) { Vnic.Addr.vpc; ip = ip "10.0.0.1" }
    [| ip "192.168.1.1" |];
  Gateway.set_route (Fabric.gateway fabric) { Vnic.Addr.vpc; ip = ip "10.0.0.2" }
    [| ip "192.168.1.2" |];
  { sim; fabric; vs0; vs1; vm0; vm1 }

let tx_syn ?(sport = 40000) () =
  Packet.create ~vpc
    ~flow:
      (Five_tuple.make ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:sport ~dst_port:80
         ~proto:Five_tuple.Tcp)
    ~direction:Packet.Tx ~flags:Packet.syn ()

let test_fabric_vm_to_vm () =
  let d = make_duo () in
  Vswitch.from_vm d.vs0 (Vnic.id_of_int 1) (tx_syn ());
  Sim.run d.sim ~until:1.0;
  check_int "vm1 got the packet" 1 (Vm.packets_delivered d.vm1);
  check_int "nothing lost" 0 (Fabric.lost d.fabric);
  check_int "gateway untouched" 0 (Gateway.forwarded (Fabric.gateway d.fabric))

let test_fabric_unknown_peer_takes_gateway_detour () =
  let d = make_duo ~know_peer:false () in
  Vswitch.from_vm d.vs0 (Vnic.id_of_int 1) (tx_syn ());
  Sim.run d.sim ~until:1.0;
  check_int "gateway forwarded it" 1 (Gateway.forwarded (Fabric.gateway d.fabric));
  check_int "vm1 still got it" 1 (Vm.packets_delivered d.vm1)

let test_fabric_gateway_unknown_drops () =
  let d = make_duo () in
  let pkt =
    Packet.create ~vpc
      ~flow:
        (Five_tuple.make ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.77") ~src_port:40000 ~dst_port:80
           ~proto:Five_tuple.Tcp)
      ~direction:Packet.Tx ~flags:Packet.syn ()
  in
  Vswitch.from_vm d.vs0 (Vnic.id_of_int 1) pkt;
  Sim.run d.sim ~until:1.0;
  check_int "gateway dropped" 1 (Gateway.dropped (Fabric.gateway d.fabric))

let test_fabric_request_response () =
  let d = make_duo () in
  (* vm1 answers every admitted packet with a reversed syn-ack. *)
  Vm.set_app d.vm1 (fun _ pkt ->
      let resp =
        Packet.create ~vpc
          ~flow:(Five_tuple.reverse pkt.Packet.flow)
          ~direction:Packet.Tx ~flags:Packet.syn_ack ()
      in
      Vswitch.from_vm d.vs1 (Vnic.id_of_int 2) resp);
  Vswitch.from_vm d.vs0 (Vnic.id_of_int 1) (tx_syn ());
  Sim.run d.sim ~until:1.0;
  check_int "response reached vm0" 1 (Vm.packets_delivered d.vm0)

let test_fabric_latency_applied () =
  let d = make_duo () in
  let t0 = ref 0.0 in
  Vm.set_app d.vm1 (fun sim _ -> t0 := Sim.now sim);
  Vswitch.from_vm d.vs0 (Vnic.id_of_int 1) (tx_syn ());
  Sim.run d.sim ~until:1.0;
  (* Must include at least the same-rack hop (10 us). *)
  check_bool "took at least the wire latency" true (!t0 >= 10e-6)

let test_fabric_double_add_rejected () =
  let sim = Sim.create () in
  let topo = Topology.create ~racks:1 ~servers_per_rack:1 in
  let fabric = Fabric.create ~sim ~topology:topo in
  ignore (Fabric.add_server fabric 0 ~params:test_params : Vswitch.t);
  Alcotest.check_raises "double add"
    (Invalid_argument "Fabric.add_server: server already populated") (fun () ->
      ignore (Fabric.add_server fabric 0 ~params:test_params : Vswitch.t))


let test_fabric_gateway_learning () =
  (* §4.2.1 on-demand learning: the first flow to an unknown peer detours
     via the gateway; within the 200 ms learning interval the mapping is
     installed and later flows go direct. *)
  let d = make_duo ~know_peer:false () in
  Vswitch.from_vm d.vs0 (Vnic.id_of_int 1) (tx_syn ~sport:40001 ());
  Sim.run d.sim ~until:0.1;
  check_int "first flow detoured" 1 (Gateway.forwarded (Fabric.gateway d.fabric));
  (* Past the learning interval: a brand-new flow goes direct. *)
  Sim.run d.sim ~until:1.0;
  Vswitch.from_vm d.vs0 (Vnic.id_of_int 1) (tx_syn ~sport:40002 ());
  Sim.run d.sim ~until:2.0;
  check_int "second flow direct" 1 (Gateway.forwarded (Fabric.gateway d.fabric));
  check_int "both delivered" 2 (Vm.packets_delivered d.vm1)

let test_fabric_gateway_staleness () =
  (* A vNIC migrates servers mid-run.  The gateway entry is authoritative:
     after cutover a sender re-learns the new placement within the 200 ms
     learning interval, and during the dual window a sender still holding
     the stale mapping keeps being served by the old host — at no point
     may a packet vanish in the underlay (No_such_server stays zero). *)
  let sim = Sim.create () in
  let topo = Topology.create ~racks:1 ~servers_per_rack:3 in
  let fabric = Fabric.create ~sim ~topology:topo in
  let vs0 = Fabric.add_server fabric 0 ~params:test_params in
  let vs1 = Fabric.add_server fabric 1 ~params:test_params in
  let vs2 = Fabric.add_server fabric 2 ~params:test_params in
  let client = mk_vnic ~id:1 ~ip:"10.0.0.1" in
  let service = mk_vnic ~id:2 ~ip:"10.0.0.2" in
  (* The client knows no peer mapping: everything is gateway-learned. *)
  let rs0 = basic_ruleset () in
  let rs1 = basic_ruleset ~mapping:[ ("10.0.0.1", "192.168.1.1") ] () in
  let rs2 = basic_ruleset ~mapping:[ ("10.0.0.1", "192.168.1.1") ] () in
  (match (Vswitch.add_vnic vs0 client rs0, Vswitch.add_vnic vs1 service rs1) with
  | Ok (), Ok () -> ()
  | _, _ -> Alcotest.fail "vnics must fit");
  let vm_old = Vm.create ~sim ~name:"vm-old" ~vcpus:8 () in
  let vm_new = Vm.create ~sim ~name:"vm-new" ~vcpus:8 () in
  Fabric.attach_vm fabric 1 service.Vnic.id vm_old;
  let svc_addr = { Vnic.Addr.vpc; ip = ip "10.0.0.2" } in
  Gateway.set_route (Fabric.gateway fabric) { Vnic.Addr.vpc; ip = ip "10.0.0.1" }
    [| Topology.underlay_ip topo 0 |];
  Gateway.set_route (Fabric.gateway fabric) svc_addr [| Topology.underlay_ip topo 1 |];
  let send sport = Vswitch.from_vm vs0 (Vnic.id_of_int 1) (tx_syn ~sport ()) in
  let at time f = ignore (Sim.at sim ~time f : Sim.handle) in
  (* t=0: first flow detours via the gateway and triggers learning. *)
  send 41001;
  (* t=0.5: the learned mapping sends new flows direct. *)
  at 0.5 (fun _ -> send 41002);
  (* t=0.6: migrate the vNIC to server 2 (gateway updated first; the old
     host keeps serving until cutover, as a live migration would). *)
  at 0.6 (fun _ ->
      (match Vswitch.add_vnic vs2 service rs2 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "migration target must fit");
      Fabric.attach_vm fabric 2 service.Vnic.id vm_new;
      Gateway.set_route (Fabric.gateway fabric) svc_addr [| Topology.underlay_ip topo 2 |]);
  (* t=0.65: the client's mapping is now stale — the packet still lands on
     the old host (dual window), it must not blackhole. *)
  at 0.65 (fun _ -> send 41003);
  (* t=1.0: cutover — the old host stops serving and the client's stale
     entry is withdrawn, so its next flow takes the gateway detour. *)
  at 1.0 (fun _ ->
      Vswitch.remove_vnic vs1 service.Vnic.id;
      ignore (Ruleset.remove_mapping rs0 svc_addr : bool));
  at 1.05 (fun _ -> send 41004);
  (* t=1.3: within the 200 ms learning interval of the re-query the new
     placement is installed; this flow must go direct to server 2. *)
  at 1.3 (fun _ -> send 41005);
  Sim.run sim ~until:2.0;
  check_int "old host served the pre-migration flows" 3 (Vm.packets_delivered vm_old);
  check_int "new host serves post-cutover flows" 2 (Vm.packets_delivered vm_new);
  (* Two detours: the initial learn and the post-cutover re-learn; the
     t=1.3 flow must already ride the re-learned direct mapping. *)
  check_int "relearned within the learning interval" 2
    (Gateway.forwarded (Fabric.gateway fabric));
  check_int "stale mapping never blackholed a packet" 0
    (Fabric.lost_by fabric Fabric.No_such_server);
  check_int "nothing lost anywhere" 0 (Fabric.lost fabric)

let test_fabric_tap_sees_wire () =
  let d = make_duo () in
  let taps = ref 0 in
  Fabric.set_tap d.fabric (Some (fun ~time:_ pkt ->
      incr taps;
      check_bool "tap sees encapsulated packets" true (pkt.Nezha_net.Packet.vxlan <> None)));
  Vswitch.from_vm d.vs0 (Vnic.id_of_int 1) (tx_syn ());
  Sim.run d.sim ~until:1.0;
  check_int "one wire packet" 1 !taps


let test_fabric_accessors () =
  let d = make_duo () in
  check_int "server of vswitch" 0 (Fabric.server_of_vswitch d.fabric d.vs0);
  check_int "server of vswitch 1" 1 (Fabric.server_of_vswitch d.fabric d.vs1);
  check_bool "vm lookup" true
    (match Fabric.vm_of d.fabric 0 (Vnic.id_of_int 1) with
    | Some vm -> vm == d.vm0
    | None -> false);
  check_bool "missing vm" true (Fabric.vm_of d.fabric 0 (Vnic.id_of_int 99) = None);
  check_bool "vswitch_opt" true (Fabric.vswitch_opt d.fabric 0 <> None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fabric"
    [
      ( "topology",
        [
          Alcotest.test_case "shape" `Quick test_topo_shape;
          Alcotest.test_case "addressing roundtrip" `Quick test_topo_addressing_roundtrip;
          Alcotest.test_case "latency ordering" `Quick test_topo_latency_ordering;
          Alcotest.test_case "invalid dimensions" `Quick test_topo_invalid;
        ] );
      ( "vm",
        [
          Alcotest.test_case "saturating capacity" `Quick test_vm_saturating_capacity;
          Alcotest.test_case "processes and counts" `Quick test_vm_processes_and_counts;
          Alcotest.test_case "backlog overflow" `Quick test_vm_backlog_overflow;
          Alcotest.test_case "utilization" `Quick test_vm_utilization;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "vm to vm" `Quick test_fabric_vm_to_vm;
          Alcotest.test_case "gateway detour" `Quick test_fabric_unknown_peer_takes_gateway_detour;
          Alcotest.test_case "gateway unknown drops" `Quick test_fabric_gateway_unknown_drops;
          Alcotest.test_case "request response" `Quick test_fabric_request_response;
          Alcotest.test_case "latency applied" `Quick test_fabric_latency_applied;
          Alcotest.test_case "double add rejected" `Quick test_fabric_double_add_rejected;
          Alcotest.test_case "gateway on-demand learning" `Quick test_fabric_gateway_learning;
          Alcotest.test_case "gateway staleness across migration" `Quick
            test_fabric_gateway_staleness;
          Alcotest.test_case "wire tap" `Quick test_fabric_tap_sees_wire;
          Alcotest.test_case "accessors" `Quick test_fabric_accessors;
        ] );
    ]
