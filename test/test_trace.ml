(* Tests for the span-based tracing subsystem: the conservation
   invariant (local-only, offloaded, and retransmitted-under-loss
   flows), Chrome trace-event export, recorder semantics (sampling,
   ring capacity, disabled), fig12 attribution, and the shared
   Rpc_policy record. *)

open Nezha_fabric
open Nezha_core
open Nezha_harness
module Trace = Nezha_telemetry.Trace
module Json = Nezha_telemetry.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Conservation must hold to clock resolution: the timestamps are a few
   seconds of virtual time, so a nanosecond absorbs many ulps. *)
let tol = 1e-9

(* ------------------------------------------------------------------ *)
(* Conservation *)

let test_local_conservation () =
  let t = Testbed.create ~seed:7 () in
  let tr = t.Testbed.trace in
  Trace.set_enabled tr true;
  ignore (Testbed.run_crr t ~rate:200.0 ~duration:0.5 () : Nezha_workloads.Tcp_crr.t);
  let ids = Trace.completed_ids tr in
  check_bool "enough traces completed" true (List.length ids > 10);
  List.iter
    (fun id ->
      match Trace.attribute tr ~id with
      | None -> Alcotest.fail "completed trace must attribute"
      | Some a ->
        check_bool "stage+wire spans tile the end-to-end interval" true
          (Float.abs a.Trace.residual <= tol);
        check_bool "no remote time without an offload" true (a.Trace.remote_s = 0.0);
        check_bool "local time positive" true (a.Trace.local_s > 0.0))
    ids

let test_offloaded_conservation () =
  let t = Testbed.create ~seed:8 () in
  ignore (Testbed.offload t ~num_fes:4 () : Controller.offload);
  let tr = t.Testbed.trace in
  Trace.set_enabled tr true;
  ignore (Testbed.run_crr t ~rate:200.0 ~duration:0.5 () : Nezha_workloads.Tcp_crr.t);
  let ids = Trace.completed_ids tr in
  check_bool "enough traces completed" true (List.length ids > 10);
  let remote = ref 0 in
  List.iter
    (fun id ->
      match Trace.attribute tr ~id with
      | None -> Alcotest.fail "completed trace must attribute"
      | Some a ->
        check_bool "offloaded trace conserved" true (Float.abs a.Trace.residual <= tol);
        if a.Trace.remote_s > 0.0 then incr remote)
    ids;
  (* The probe flow detours through an FE in both directions, so the
     remote component must show up on most traces. *)
  check_bool "remote-hop time observed" true (!remote * 2 > List.length ids)

let test_retx_conservation_under_loss () =
  let t = Testbed.create ~seed:9 () in
  ignore (Testbed.offload t ~num_fes:4 () : Controller.offload);
  Faults.set_default t.Testbed.faults (Faults.impair ~loss:0.01 ());
  let tr = t.Testbed.trace in
  Trace.set_enabled tr true;
  ignore (Testbed.run_crr t ~rate:400.0 ~duration:2.0 () : Nezha_workloads.Tcp_crr.t);
  let ids = Trace.completed_ids tr in
  check_bool "enough traces completed" true (List.length ids > 100);
  let retx_ids =
    List.filter
      (fun id ->
        List.exists (fun s -> s.Trace.name = "be_retx") (Trace.spans_of tr ~id))
      ids
  in
  check_bool "at least one retransmitted packet completed" true (retx_ids <> []);
  (* A data-leg loss is recovered by the retransmission and the timeout
     gap is accounted as a retx_wait stage, so the trace still tiles its
     end-to-end interval.  (An ack-leg loss produces a spurious retx
     whose trace honestly does not conserve — those must not be the
     whole population.) *)
  let conserved_retx =
    List.filter
      (fun id ->
        match Trace.conservation_error tr ~id with Some e -> e <= tol | None -> false)
      retx_ids
  in
  check_bool "a retransmitted trace still conserves" true (conserved_retx <> []);
  List.iter
    (fun id ->
      check_bool "retx trace carries the wait stage" true
        (List.exists (fun s -> s.Trace.name = "retx_wait") (Trace.spans_of tr ~id)))
    conserved_retx

(* ------------------------------------------------------------------ *)
(* Chrome export *)

let obj_field j name =
  match j with Json.Obj kv -> List.assoc_opt name kv | _ -> None

let test_chrome_export_roundtrip () =
  let t = Testbed.create ~seed:10 () in
  ignore (Testbed.offload t ~num_fes:2 () : Controller.offload);
  let tr = t.Testbed.trace in
  Trace.set_enabled tr true;
  ignore (Testbed.run_crr t ~rate:100.0 ~duration:0.2 () : Nezha_workloads.Tcp_crr.t);
  let doc = Trace.to_chrome_json tr in
  (* Round-trip through the in-tree parser, unchanged. *)
  let text = Json.to_string_pretty doc in
  (match Json.of_string text with
  | Ok reread -> check_bool "round-trips unchanged" true (Json.equal reread doc)
  | Error e -> Alcotest.fail ("export does not parse: " ^ e));
  let events =
    match obj_field doc "traceEvents" with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  check_bool "has events" true (events <> []);
  let has_name n =
    List.exists
      (fun e -> match obj_field e "name" with Some (Json.String s) -> s = n | _ -> false)
      events
  in
  check_bool "synthetic e2e events present" true (has_name "e2e");
  check_bool "wire spans present" true (has_name "wire");
  check_bool "vm kernel spans present" true (has_name "vm_kernel");
  List.iter
    (fun e ->
      check_bool "every event has ph/ts/pid/tid" true
        (obj_field e "ph" <> None && obj_field e "ts" <> None && obj_field e "pid" <> None
        && obj_field e "tid" <> None))
    events

(* ------------------------------------------------------------------ *)
(* Recorder semantics *)

let test_sampling_and_ring () =
  let tr = Trace.create ~capacity:8 ~sample_every:2 ~enabled:true () in
  let ids = List.init 6 (fun _ -> Trace.next_id tr) in
  check_int "1-in-2 head sampling" 3 (List.length (List.filter (fun i -> i <> 0) ids));
  let id = List.find (fun i -> i <> 0) ids in
  Trace.begin_trace tr ~id ~now:0.0;
  for i = 0 to 11 do
    Trace.add_span tr ~id ~name:"s" ~component:"c" ~t0:(float_of_int i)
      ~t1:(float_of_int i +. 0.5) ()
  done;
  check_int "ring holds at most capacity" 8 (Trace.span_count tr);
  check_int "overflow counted" 4 (Trace.dropped_spans tr);
  check_int "spans_of sees the survivors" 8 (List.length (Trace.spans_of tr ~id));
  Trace.clear tr;
  check_int "clear empties the ring" 0 (Trace.span_count tr);
  check_bool "clear forgets traces" true (Trace.trace_ids tr = [])

let test_disabled_recorder () =
  let tr = Trace.create () in
  check_bool "created disabled" true (not (Trace.enabled tr));
  check_int "no ids when disabled" 0 (Trace.next_id tr);
  Trace.begin_trace tr ~id:5 ~now:0.0;
  Trace.add_span tr ~id:5 ~name:"s" ~component:"c" ~t0:0.0 ~t1:1.0 ();
  Trace.end_trace tr ~id:5 ~now:1.0;
  check_int "no spans recorded" 0 (Trace.span_count tr);
  check_bool "no traces recorded" true (Trace.trace_ids tr = []);
  Trace.set_enabled tr true;
  check_bool "ids once enabled" true (Trace.next_id tr <> 0)

let test_attribution_arithmetic () =
  let tr = Trace.create ~enabled:true () in
  let id = Trace.next_id tr in
  Trace.begin_trace tr ~id ~now:1.0;
  Trace.add_span tr ~id ~name:"local" ~component:"c" ~t0:1.0 ~t1:1.6 ();
  Trace.add_span tr ~id ~name:"hop" ~component:"c" ~kind:Trace.Wire ~site:Trace.Remote
    ~t0:1.6 ~t1:2.0 ();
  (* Details and marks annotate; they must not enter the sum. *)
  Trace.add_span tr ~id ~name:"detail" ~component:"c" ~kind:Trace.Detail ~t0:1.1 ~t1:1.4 ();
  Trace.mark tr ~id ~name:"m" ~component:"c" ~now:1.5 ();
  Trace.end_trace tr ~id ~now:2.0;
  (* First end wins. *)
  Trace.end_trace tr ~id ~now:9.0;
  (match Trace.attribute tr ~id with
  | None -> Alcotest.fail "must attribute"
  | Some a ->
    check_bool "e2e" true (Float.abs (a.Trace.e2e -. 1.0) <= tol);
    check_bool "local" true (Float.abs (a.Trace.local_s -. 0.6) <= tol);
    check_bool "remote" true (Float.abs (a.Trace.remote_s -. 0.4) <= tol);
    check_bool "residual ~0" true (Float.abs a.Trace.residual <= tol));
  check_bool "conservation error ~0" true
    (match Trace.conservation_error tr ~id with Some e -> e <= tol | None -> false)

(* ------------------------------------------------------------------ *)
(* fig12 --attribute: rank-based splits must sum to the percentile. *)

let test_fig12_attribute_split () =
  (* A saturating load: the controller's 70% BE-utilization threshold
     must trip during warmup so the with-Nezha probe actually takes the
     offloaded path. *)
  let rows = Experiments.fig12_attribute ~loads:[ 1.0 ] () in
  check_int "one row" 1 (List.length rows);
  let r = List.hd rows in
  let close a b = Float.abs (a -. b) <= 1e-3 (* µs *) in
  let check_sums name (s : Experiments.latency_split) =
    check_bool (name ^ ": traces behind the split") true (s.Experiments.traces > 0);
    check_bool (name ^ ": P50 local+remote = e2e") true
      (close (s.Experiments.p50_local_us +. s.Experiments.p50_remote_us) s.Experiments.p50_us);
    check_bool (name ^ ": P99 local+remote = e2e") true
      (close (s.Experiments.p99_local_us +. s.Experiments.p99_remote_us) s.Experiments.p99_us)
  in
  check_sums "without" r.Experiments.without_nezha;
  check_sums "with" r.Experiments.with_nezha;
  check_bool "no remote time without Nezha" true
    (r.Experiments.without_nezha.Experiments.p50_remote_us = 0.0
    && r.Experiments.without_nezha.Experiments.p99_remote_us = 0.0);
  check_bool "offloaded path pays a remote component" true
    (r.Experiments.with_nezha.Experiments.p50_remote_us > 0.0)

(* ------------------------------------------------------------------ *)
(* Rpc_policy *)

let test_rpc_policy () =
  let d = Rpc_policy.default in
  check_bool "defaults" true
    (d.Rpc_policy.latency = 0.18 && d.Rpc_policy.timeout = 0.5
    && d.Rpc_policy.max_retries = 4 && d.Rpc_policy.backoff = 2.0);
  let p = Rpc_policy.make ~timeout:0.1 ~backoff:3.0 () in
  check_bool "other fields defaulted" true (p.Rpc_policy.max_retries = 4);
  check_bool "attempt 0 waits one timeout" true
    (Float.abs (Rpc_policy.retry_delay p ~attempt:0 -. 0.1) <= 1e-12);
  check_bool "exponential growth" true
    (Float.abs (Rpc_policy.retry_delay p ~attempt:2 -. 0.9) <= 1e-12);
  check_bool "capped" true
    (Rpc_policy.retry_delay p ~attempt:10 = Rpc_policy.backoff_cap);
  Alcotest.check_raises "non-positive latency"
    (Invalid_argument "Rpc_policy.make: latency must be positive") (fun () ->
      ignore (Rpc_policy.make ~latency:0.0 () : Rpc_policy.t));
  Alcotest.check_raises "backoff below 1"
    (Invalid_argument "Rpc_policy.make: backoff must be >= 1") (fun () ->
      ignore (Rpc_policy.make ~backoff:0.5 () : Rpc_policy.t));
  Alcotest.check_raises "negative attempt"
    (Invalid_argument "Rpc_policy.retry_delay: attempt must be >= 0") (fun () ->
      ignore (Rpc_policy.retry_delay d ~attempt:(-1) : float))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "conservation",
        [
          Alcotest.test_case "local-only flow" `Quick test_local_conservation;
          Alcotest.test_case "offloaded flow" `Quick test_offloaded_conservation;
          Alcotest.test_case "retransmission under 1% loss" `Quick
            test_retx_conservation_under_loss;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome json round-trip" `Quick test_chrome_export_roundtrip ] );
      ( "recorder",
        [
          Alcotest.test_case "sampling and ring capacity" `Quick test_sampling_and_ring;
          Alcotest.test_case "disabled recorder" `Quick test_disabled_recorder;
          Alcotest.test_case "attribution arithmetic" `Quick test_attribution_arithmetic;
        ] );
      ( "fig12 attribution",
        [ Alcotest.test_case "rank-based split sums" `Quick test_fig12_attribute_split ] );
      ( "rpc policy", [ Alcotest.test_case "record and validation" `Quick test_rpc_policy ] );
    ]
