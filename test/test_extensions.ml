(* Tests for the §7 "experience" features: rate limiting, tenant rule
   updates, BE relocation (VM live migration), elephant-flow pinning,
   the BDF budget — plus codec robustness properties. *)

open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_workloads
open Nezha_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Token bucket *)

let test_bucket_basics () =
  let b = Token_bucket.create ~rate_bytes_per_s:1000.0 ~burst_bytes:500.0 in
  check_bool "burst available" true (Token_bucket.take b ~now:0.0 ~bytes:500);
  check_bool "empty now" false (Token_bucket.take b ~now:0.0 ~bytes:1);
  (* 0.1 s refills 100 bytes. *)
  check_bool "partial refill" true (Token_bucket.take b ~now:0.1 ~bytes:100);
  check_bool "but no more" false (Token_bucket.take b ~now:0.1 ~bytes:1)

let test_bucket_burst_cap () =
  let b = Token_bucket.create ~rate_bytes_per_s:1000.0 ~burst_bytes:200.0 in
  ignore (Token_bucket.take b ~now:0.0 ~bytes:200 : bool);
  (* A long idle period must not accumulate beyond the burst. *)
  check_bool "capped at burst" true (Token_bucket.available b ~now:100.0 <= 200.0);
  check_bool "take burst" true (Token_bucket.take b ~now:100.0 ~bytes:200);
  check_bool "not more" false (Token_bucket.take b ~now:100.0 ~bytes:10)

let test_bucket_invalid () =
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Token_bucket.create: rate and burst must be positive") (fun () ->
      ignore (Token_bucket.create ~rate_bytes_per_s:0.0 ~burst_bytes:1.0 : Token_bucket.t))

let prop_bucket_never_exceeds_rate =
  QCheck.Test.make ~name:"long-run admitted bytes never exceed rate*time + burst" ~count:100
    QCheck.(make Gen.(list_size (int_range 10 200) (pair (float_range 0.001 0.1) (int_range 1 2000))))
    (fun steps ->
      let rate = 10_000.0 and burst = 1_000.0 in
      let b = Token_bucket.create ~rate_bytes_per_s:rate ~burst_bytes:burst in
      let now = ref 0.0 and admitted = ref 0 in
      List.iter
        (fun (dt, bytes) ->
          now := !now +. dt;
          if Token_bucket.take b ~now:!now ~bytes then admitted := !admitted + bytes)
        steps;
      float_of_int !admitted <= (rate *. !now) +. burst +. 1e-6)

(* ------------------------------------------------------------------ *)
(* vNIC rate limiting end-to-end *)

let blast_udp t ~packets ~payload =
  let client = t.Testbed.clients.(0) in
  let flow =
    Five_tuple.make ~src:Testbed.heavy_ip ~dst:client.Tcp_crr.ip ~src_port:7000 ~dst_port:7001
      ~proto:Five_tuple.Udp
  in
  let rec send i sim =
    if i < packets then begin
      Vswitch.from_vm t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id
        (Packet.create ~vpc:t.Testbed.vpc ~flow ~direction:Packet.Tx ~payload_len:payload ());
      ignore (Sim.schedule sim ~delay:0.001 (send (i + 1)) : Sim.handle)
    end
  in
  ignore (Sim.schedule t.Testbed.sim ~delay:0.0 (send 0) : Sim.handle)

let test_rate_limit_local () =
  let t = Testbed.create () in
  (* ~1000 packets of ~550 wire bytes over 1 s = ~4.4 Mbit/s; allow 1/4. *)
  Vswitch.set_rate_limit t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id ~bps:1.1e6
    ~burst_bytes:4000.0;
  blast_udp t ~packets:1000 ~payload:500;
  Sim.run t.Testbed.sim ~until:2.0;
  let dropped = Vswitch.drop_count t.Testbed.server.Tcp_crr.vs Nf.Rate_limited in
  let delivered = Vm.packets_delivered t.Testbed.clients.(0).Tcp_crr.vm in
  check_bool "policer dropped" true (dropped > 500);
  check_bool "some passed" true (delivered > 100);
  check_int "conservation" 1000 (dropped + delivered)

let test_rate_limit_survives_offload () =
  (* The §2.3.3 point: after offloading to 4 FEs, the single BE bucket
     still enforces the VM-level limit exactly — no FE coordination. *)
  let t = Testbed.create () in
  ignore (Testbed.offload t () : Controller.offload);
  Vswitch.set_rate_limit t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id ~bps:1.1e6
    ~burst_bytes:4000.0;
  blast_udp t ~packets:1000 ~payload:500;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 2.0);
  let dropped = Vswitch.drop_count t.Testbed.server.Tcp_crr.vs Nf.Rate_limited in
  let delivered = Vm.packets_delivered t.Testbed.clients.(0).Tcp_crr.vm in
  check_bool "still policed after offload" true (dropped > 500);
  check_int "conservation across the FE hop" 1000 (dropped + delivered)

(* ------------------------------------------------------------------ *)
(* Tenant rule updates (§3.2.2) *)

let client_syn t ~sport =
  Packet.create ~vpc:t.Testbed.vpc
    ~flow:
      (Five_tuple.make ~src:t.Testbed.clients.(0).Tcp_crr.ip ~dst:Testbed.heavy_ip
         ~src_port:sport ~dst_port:80 ~proto:Five_tuple.Tcp)
    ~direction:Packet.Tx ~flags:Packet.syn ()

let test_update_tenant_rules_propagates () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  (* Before the change: inbound connects fine. *)
  Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
    (client_syn t ~sport:41001);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  check_int "delivered before" 1 (Vm.packets_delivered t.Testbed.server.Tcp_crr.vm);
  (* The tenant now denies inbound; the controller fans the change out. *)
  Controller.update_tenant_rules t.Testbed.ctl o (fun rs ->
      Acl.add (Ruleset.acl rs)
        (Acl.rule ~priority:1 ~dst:(Ipv4.Prefix.make Testbed.heavy_ip 32) Acl.Deny));
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 1.5);
  (* A new inbound flow is now dropped as unsolicited at the BE. *)
  Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
    (client_syn t ~sport:41002);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  check_int "no new delivery" 1 (Vm.packets_delivered t.Testbed.server.Tcp_crr.vm);
  check_bool "dropped as unsolicited" true
    (Vswitch.drop_count t.Testbed.server.Tcp_crr.vs Nf.Unsolicited >= 1);
  (* And the *existing* flow's cached pre-actions were invalidated: its
     next packet re-runs the rule lookup and also drops. *)
  Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
    (client_syn t ~sport:41001);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  check_int "stale cached flow did not leak the old permit" 1
    (Vm.packets_delivered t.Testbed.server.Tcp_crr.vm)

(* ------------------------------------------------------------------ *)
(* BE relocation (§7.2) *)

let test_migrate_be () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  (* Establish a session so there is state to carry. *)
  Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
    (client_syn t ~sport:42001);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  check_int "session at old BE" 1
    (Vswitch.session_count t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id);
  (* Move the BE to a server that hosts no FE of this offload. *)
  let target =
    List.find
      (fun s ->
        s <> t.Testbed.heavy_server
        && (not (List.mem s (Controller.offload_fe_servers o)))
        && Fabric.vswitch_opt t.Testbed.fabric s <> None)
      (Topology.servers (Fabric.topology t.Testbed.fabric))
  in
  (match Controller.migrate_be t.Testbed.ctl o ~to_server:target with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "be server updated" target (Controller.offload_be_server o);
  let new_vs = Fabric.vswitch t.Testbed.fabric target in
  check_int "states carried" 1 (Vswitch.session_count new_vs Testbed.heavy_vnic_id);
  (* The VM followed (re-attach), and traffic flows to the new location
     without touching the senders' vNIC-server entries. *)
  Fabric.attach_vm t.Testbed.fabric target Testbed.heavy_vnic_id t.Testbed.server.Tcp_crr.vm;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.1);
  Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
    (client_syn t ~sport:42002);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  check_int "traffic reaches the migrated VM" 2
    (Vm.packets_delivered t.Testbed.server.Tcp_crr.vm)

(* ------------------------------------------------------------------ *)
(* Elephant pinning (§7.5) *)

let test_pin_elephant () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  let elephant =
    Five_tuple.make ~src:Testbed.heavy_ip ~dst:t.Testbed.clients.(0).Tcp_crr.ip ~src_port:9100
      ~dst_port:9200 ~proto:Five_tuple.Udp
  in
  let dedicated =
    match Controller.pin_elephant t.Testbed.ctl o elephant with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  check_bool "dedicated FE is fresh" true
    (not (List.mem dedicated (Controller.offload_fe_servers o)));
  (* Blast the elephant: every packet must go through the dedicated FE. *)
  for _ = 1 to 50 do
    Vswitch.from_vm t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id
      (Packet.create ~vpc:t.Testbed.vpc ~flow:elephant ~direction:Packet.Tx ~payload_len:1400 ())
  done;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 1.0);
  (match Controller.fe_service t.Testbed.ctl dedicated with
  | Some fe -> check_int "all elephant packets on the dedicated FE" 50 (Stats.Counter.value (Fe.counters fe).Fe.tx_finalized)
  | None -> Alcotest.fail "dedicated FE service missing");
  (* Other flows still spread over the regular FE set. *)
  check_int "one pin installed" 1 (Be.pinned_count (Controller.offload_be o))

(* ------------------------------------------------------------------ *)
(* BDF budget (§7.4) *)

let test_bdf_legacy_exhausts () =
  let b = Bdf.create () in
  check_int "36 free by default" 36 (Bdf.capacity b);
  for _ = 1 to 36 do
    match Bdf.allocate_vnic b with Ok _ -> () | Error `No_bdf -> Alcotest.fail "too early"
  done;
  check_bool "exhausted" true (Bdf.allocate_vnic b = Error `No_bdf);
  check_int "all allocated" 36 (Bdf.allocated b)

let test_bdf_sriov_expands () =
  let b = Bdf.create ~mode:Bdf.Sriov () in
  check_int "256 more addresses" (512 - 220) (Bdf.capacity b)

let test_bdf_children_free () =
  let b = Bdf.create () in
  let parent = match Bdf.allocate_vnic b with Ok p -> p | Error `No_bdf -> Alcotest.fail "bdf" in
  for _ = 1 to 1000 do
    match Bdf.attach_child b ~parent with Ok () -> () | Error `No_parent -> Alcotest.fail "parent"
  done;
  check_int "children unbounded by BDF" 1001 (Bdf.total_vnics b);
  check_int "one address consumed" 1 (Bdf.allocated b);
  check_bool "unknown parent rejected" true (Bdf.attach_child b ~parent:999 = Error `No_parent)

(* ------------------------------------------------------------------ *)
(* Codec robustness: decoding arbitrary bytes never raises. *)

let prop_state_decode_total =
  QCheck.Test.make ~name:"State.decode never raises on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 32))
    (fun s ->
      match State.decode (Bytes.of_string s) with Ok _ | Error _ -> true)

let prop_pre_action_decode_total =
  QCheck.Test.make ~name:"Pre_action.decode never raises on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 32))
    (fun s ->
      match Pre_action.decode (Bytes.of_string s) with Ok _ | Error _ -> true)

let prop_packet_decode_total =
  QCheck.Test.make ~name:"Packet.decode never raises on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 128))
    (fun s ->
      match Packet.decode (Bytes.of_string s) with Ok _ | Error _ -> true)

(* The §3.1 equivalence, as a property: carrying state and pre-actions
   through their wire codecs changes nothing about the final verdict. *)
let prop_split_equivalence =
  let gen =
    QCheck.Gen.(
      map
        (fun ((tx_deny, rx_deny, dir), (syn, ack, fin), (first_tx, decap, stats)) ->
          let pre =
            {
              (Pre_action.default ~vni:1) with
              Pre_action.acl_tx = (if tx_deny then Acl.Deny else Acl.Permit);
              acl_rx = (if rx_deny then Acl.Deny else Acl.Permit);
              stats =
                (if stats then Some { Pre_action.count_packets = true; count_bytes = false }
                 else None);
            }
          in
          let state =
            {
              State.first_dir = (if first_tx then Packet.Tx else Packet.Rx);
              tcp = Some State.Established;
              decap_src = (if decap then Some (Ipv4.of_octets 100 64 0 1) else None);
              stats = (if stats then Some { State.packets = 3; bytes = 0 } else None);
            }
          in
          let flags = { Packet.syn; ack; fin; rst = false } in
          (pre, state, (if dir then Packet.Tx else Packet.Rx), flags))
        (triple (triple bool bool bool) (triple bool bool bool) (triple bool bool bool)))
  in
  QCheck.Test.make ~name:"wire codecs preserve the NF verdict (split equivalence)" ~count:500
    (QCheck.make gen)
    (fun (pre, state, dir, flags) ->
      let direct =
        Nf.process ~pre ~state:(Some state) ~dir ~flags ~proto:Five_tuple.Tcp ~wire_bytes:100 ()
      in
      let via_wire =
        let pre' = Result.get_ok (Pre_action.decode (Pre_action.encode pre)) in
        let state' = Result.get_ok (State.decode (State.encode state)) in
        Nf.process ~pre:pre' ~state:(Some state') ~dir ~flags ~proto:Five_tuple.Tcp
          ~wire_bytes:100 ()
      in
      fst direct = fst via_wire)

(* ------------------------------------------------------------------ *)
(* Harness sanity *)

let test_testbed_estimate_close () =
  let t = Testbed.create () in
  let est = Testbed.local_cps_capacity_estimate t in
  let measured = Testbed.measure_cps t ~duration:2.0 () in
  check_bool "estimate within 20%" true (Float.abs (measured -. est) /. est < 0.20)

let test_fig9_vnics_proportional () =
  let rows = Experiments.fig9_vnics ~fes_list:[ 4; 8; 16; 32 ] () in
  let g = List.map snd rows in
  (match g with
  | [ g4; g8; g16; g32 ] ->
    check_bool "doubling FEs doubles capacity" true
      (Float.abs ((g8 /. g4) -. 2.0) < 0.1
      && Float.abs ((g16 /. g8) -. 2.0) < 0.1
      && Float.abs ((g32 /. g16) -. 2.0) < 0.1)
  | _ -> Alcotest.fail "expected 4 rows");
  ()

let test_tableA1_monotone () =
  let rows = Experiments.tableA1 () in
  List.iter
    (fun (_, cols) ->
      let rec decreasing = function
        | (_, a) :: ((_, b) :: _ as rest) ->
          check_bool "throughput falls with rules" true (a >= b);
          decreasing rest
        | [ _ ] | [] -> ()
      in
      decreasing cols)
    rows;
  (* And falls with packet size at fixed rules. *)
  let firsts = List.map (fun (_, cols) -> snd (List.hd cols)) rows in
  let rec decreasing = function
    | a :: (b :: _ as rest) ->
      check_bool "throughput falls with size" true (a >= b);
      decreasing rest
    | [ _ ] | [] -> ()
  in
  decreasing firsts

let test_appB2_deterministic () =
  let a = Experiments.appB2 ~seed:9 () in
  let b = Experiments.appB2 ~seed:9 () in
  check_int "same scale-outs" a.Experiments.scale_out_events b.Experiments.scale_out_events;
  check_bool "plausible ratio" true
    (a.Experiments.scale_out_ratio > 0.005 && a.Experiments.scale_out_ratio < 0.08)


(* ------------------------------------------------------------------ *)
(* §7.2 version-targeted offload (flexible feature release) *)

let test_version_targeted_offload () =
  let t = Testbed.create () in
  (* Upgrade four far-away servers (rack 2); everything else is v0. *)
  let upgraded = [ 16; 17; 18; 19 ] in
  List.iter
    (fun s -> Vswitch.set_software_version (Fabric.vswitch t.Testbed.fabric s) 2)
    upgraded;
  let o =
    match
      Controller.offload_vnic t.Testbed.ctl ~server:t.Testbed.heavy_server
        ~vnic:Testbed.heavy_vnic_id ~version_filter:(fun v -> v >= 2) ()
    with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 5.0);
  let fes = Controller.offload_fe_servers o in
  check_int "four FEs" 4 (List.length fes);
  List.iter
    (fun s -> check_bool "only upgraded vSwitches selected" true (List.mem s upgraded))
    fes;
  (* Traffic still flows through the feature-release FEs. *)
  Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
    (client_syn t ~sport:43100);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  check_int "delivered via upgraded FEs" 1 (Vm.packets_delivered t.Testbed.server.Tcp_crr.vm)

(* ------------------------------------------------------------------ *)
(* Final-stage stragglers: a sender with a stale vNIC-server entry hits
   the BE directly and gets bounced through an FE (§4.2.1). *)

let test_stale_sender_bounced () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  let pkt =
    Packet.create ~vpc:t.Testbed.vpc
      ~flow:
        (Five_tuple.make ~src:t.Testbed.clients.(0).Tcp_crr.ip ~dst:Testbed.heavy_ip
           ~src_port:44001 ~dst_port:80 ~proto:Five_tuple.Tcp)
      ~direction:Packet.Rx ~flags:Packet.syn ()
  in
  Packet.encap_vxlan pkt ~vni:9
    ~outer_src:(Vswitch.underlay_ip t.Testbed.clients.(0).Tcp_crr.vs)
    ~outer_dst:(Vswitch.underlay_ip t.Testbed.server.Tcp_crr.vs);
  Vswitch.from_net t.Testbed.server.Tcp_crr.vs pkt;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  check_int "bounced once" 1 (Stats.Counter.value (Be.counters (Controller.offload_be o)).Be.bounced);
  check_int "still delivered (via the FE detour)" 1
    (Vm.packets_delivered t.Testbed.server.Tcp_crr.vm)

(* ------------------------------------------------------------------ *)
(* Scale-in: a pool vSwitch reclaims its resources; the offload
   replenishes elsewhere and traffic continues. *)

let test_scale_in_replenishes () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  let victim = List.hd (Controller.offload_fe_servers o) in
  Controller.scale_in_server t.Testbed.ctl victim;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 3.0);
  let fes = Controller.offload_fe_servers o in
  check_bool "victim evicted" true (not (List.mem victim fes));
  check_int "back at the minimum" 4 (List.length fes);
  Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
    (client_syn t ~sport:45100);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  check_int "traffic unaffected" 1 (Vm.packets_delivered t.Testbed.server.Tcp_crr.vm)


(* ------------------------------------------------------------------ *)
(* §4.2.2 automatic fallback when the load subsides *)

let test_auto_fallback () =
  let config =
    {
      Controller.default_config with
      Controller.auto_offload = true;
      auto_scale = false;
      auto_fallback = true;
      fallback_idle_ticks = 3;
      report_interval = 0.5;
    }
  in
  let t = Testbed.create ~controller_config:config () in
  Controller.start t.Testbed.ctl;
  (* Saturating load triggers offload... *)
  let rec send i sim =
    if Sim.now sim < 8.0 then begin
      Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
        (client_syn t ~sport:(10000 + (i mod 40000)));
      ignore (Sim.schedule sim ~delay:0.0003 (send (i + 1)) : Sim.handle)
    end
  in
  ignore (Sim.schedule t.Testbed.sim ~delay:0.0 (send 0) : Sim.handle);
  (* While the load is still on: offloaded, tables remote. *)
  Sim.run t.Testbed.sim ~until:7.5;
  check_bool "offloaded under load" true (Controller.offload_events t.Testbed.ctl >= 1);
  check_bool "tables remote" true
    (Vswitch.ruleset t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id = None);
  (* ...and once traffic stops, the controller falls back by itself. *)
  Sim.run t.Testbed.sim ~until:25.0;
  check_int "no active offloads" 0 (List.length (Controller.offloads t.Testbed.ctl));
  check_bool "tables back home" true
    (Vswitch.ruleset t.Testbed.server.Tcp_crr.vs Testbed.heavy_vnic_id <> None);
  (* Service still works locally. *)
  Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic
    (client_syn t ~sport:55001);
  let before = Vm.packets_delivered t.Testbed.server.Tcp_crr.vm in
  ignore before;
  Sim.run t.Testbed.sim ~until:26.0;
  check_bool "local path serves" true
    (Vm.packets_delivered t.Testbed.server.Tcp_crr.vm > 0)

(* ------------------------------------------------------------------ *)
(* Chaos: repeated FE crashes and recoveries under sustained load.
   Invariants: the FE set always recovers to the minimum, failovers are
   declared for every crash, and the service keeps completing
   connections throughout. *)

let test_chaos_repeated_failovers () =
  let t = Testbed.create ~racks:6 ~servers_per_rack:8 () in
  let o = Testbed.offload t () in
  Controller.start t.Testbed.ctl;
  Array.iter
    (fun client ->
      ignore
        (Tcp_crr.start_closed ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng)
           ~vpc:t.Testbed.vpc ~client ~server:t.Testbed.server ~concurrency:32 ~duration:30.0 ()
          : Tcp_crr.t))
    t.Testbed.clients;
  let crashes = ref 0 in
  let rec chaos sim =
    if Sim.now sim < 25.0 then begin
      (match Controller.offload_fe_servers o with
      | s :: _ ->
        let nic = Vswitch.nic (Fabric.vswitch t.Testbed.fabric s) in
        if not (Smartnic.is_crashed nic) then begin
          Smartnic.crash nic;
          incr crashes;
          (* Let it come back later, as a reusable candidate. *)
          ignore (Sim.schedule sim ~delay:6.0 (fun _ -> Smartnic.recover nic) : Sim.handle)
        end
      | [] -> ());
      ignore (Sim.schedule sim ~delay:5.0 chaos : Sim.handle)
    end
  in
  ignore (Sim.schedule t.Testbed.sim ~delay:4.0 chaos : Sim.handle);
  Sim.run t.Testbed.sim ~until:35.0;
  check_bool "several crashes injected" true (!crashes >= 4);
  check_int "every crash detected and failed over" !crashes
    (Monitor.failures_declared (Controller.monitor t.Testbed.ctl));
  check_int "FE set recovered to the minimum" 4
    (List.length (Controller.offload_fe_servers o));
  List.iter
    (fun s ->
      check_bool "no dead FE left in the set" true
        (not (Smartnic.is_crashed (Vswitch.nic (Fabric.vswitch t.Testbed.fabric s)))))
    (Controller.offload_fe_servers o);
  (* Service stayed up: tens of thousands of connections despite chaos. *)
  check_bool "service kept completing" true
    (Vm.connections_accepted t.Testbed.server.Tcp_crr.vm > 20_000)

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "extensions"
    [
      ( "token_bucket",
        [
          Alcotest.test_case "basics" `Quick test_bucket_basics;
          Alcotest.test_case "burst cap" `Quick test_bucket_burst_cap;
          Alcotest.test_case "invalid args" `Quick test_bucket_invalid;
        ]
        @ qsuite [ prop_bucket_never_exceeds_rate ] );
      ( "rate_limit",
        [
          Alcotest.test_case "local enforcement" `Quick test_rate_limit_local;
          Alcotest.test_case "survives offload (no FE coordination)" `Quick
            test_rate_limit_survives_offload;
        ] );
      ( "rule_updates",
        [ Alcotest.test_case "propagates and invalidates" `Quick test_update_tenant_rules_propagates ] );
      ("migration", [ Alcotest.test_case "BE relocation" `Quick test_migrate_be ]);
      ("elephant", [ Alcotest.test_case "pin to dedicated FE" `Quick test_pin_elephant ]);
      ( "feature_release",
        [ Alcotest.test_case "version-targeted offload" `Quick test_version_targeted_offload ] );
      ( "dual_running",
        [
          Alcotest.test_case "stale sender bounced" `Quick test_stale_sender_bounced;
          Alcotest.test_case "scale-in replenishes" `Quick test_scale_in_replenishes;
          Alcotest.test_case "auto fallback when idle" `Quick test_auto_fallback;
        ] );
      ( "chaos",
        [ Alcotest.test_case "repeated failovers under load" `Slow test_chaos_repeated_failovers ] );
      ( "bdf",
        [
          Alcotest.test_case "legacy exhausts" `Quick test_bdf_legacy_exhausts;
          Alcotest.test_case "sriov expands" `Quick test_bdf_sriov_expands;
          Alcotest.test_case "children are free" `Quick test_bdf_children_free;
        ] );
      ( "codecs",
        qsuite
          [
            prop_state_decode_total;
            prop_pre_action_decode_total;
            prop_packet_decode_total;
            prop_split_equivalence;
          ] );
      ( "harness",
        [
          Alcotest.test_case "capacity estimate close" `Quick test_testbed_estimate_close;
          Alcotest.test_case "fig9 vnics proportional" `Quick test_fig9_vnics_proportional;
          Alcotest.test_case "tableA1 monotone" `Quick test_tableA1_monotone;
          Alcotest.test_case "appB2 deterministic" `Quick test_appB2_deterministic;
        ] );
    ]
