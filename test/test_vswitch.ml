(* Tests for the vSwitch substrate: pre-action/state codecs, stateful NF
   semantics, the SmartNIC resource model, rulesets, and the traditional
   local datapath end-to-end. *)

open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)

let tuple ?(sport = 40000) ?(dport = 80) ?(proto = Five_tuple.Tcp) src dst =
  Five_tuple.make ~src:(ip src) ~dst:(ip dst) ~src_port:sport ~dst_port:dport ~proto

(* ------------------------------------------------------------------ *)
(* Pre_action codec *)

let test_pre_action_roundtrip () =
  let pre =
    {
      Pre_action.acl_tx = Acl.Permit;
      acl_rx = Acl.Deny;
      vni = 4242;
      peer_server = Some (ip "192.168.3.4");
      rate_limit_bps = Some 1_000_000;
      stats = Some { Pre_action.count_packets = true; count_bytes = false };
      stateful_decap = true;
      mirror = true;
    }
  in
  match Pre_action.decode (Pre_action.encode pre) with
  | Ok pre' -> check_bool "roundtrip" true (Pre_action.equal pre pre')
  | Error e -> Alcotest.fail e

let test_pre_action_minimal_small () =
  let pre = Pre_action.default ~vni:1 in
  let size = Pre_action.encoded_size pre in
  check_bool "compact encoding" true (size <= 4);
  match Pre_action.decode (Pre_action.encode pre) with
  | Ok pre' -> check_bool "roundtrip" true (Pre_action.equal pre pre')
  | Error e -> Alcotest.fail e

let test_pre_action_decode_garbage () =
  check_bool "empty is error" true
    (match Pre_action.decode Bytes.empty with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* State codec and size model *)

let test_state_roundtrip () =
  let st =
    {
      State.first_dir = Packet.Rx;
      tcp = Some State.Established;
      decap_src = Some (ip "10.9.9.9");
      stats = Some { State.packets = 12; bytes = 3400 };
    }
  in
  match State.decode (State.encode st) with
  | Ok st' -> check_bool "roundtrip" true (State.equal st st')
  | Error e -> Alcotest.fail e

let test_state_size_small () =
  (* Fig. 15: average state sizes are 5–8 B, far below the 64 B slot. *)
  let bare = State.init ~first_dir:Packet.Tx () in
  check_bool "bare state ≤ 2 B" true (State.size_bytes bare <= 2);
  let typical = { bare with State.tcp = Some State.Established; decap_src = Some (ip "1.2.3.4") } in
  check_bool "typical state 5–8 B" true
    (State.size_bytes typical >= 5 && State.size_bytes typical <= 8)

let test_state_establishing () =
  let st = State.init ~first_dir:Packet.Tx ~tcp:State.Establishing () in
  check_bool "establishing" true (State.is_establishing st);
  let st' = { st with State.tcp = Some State.Established } in
  check_bool "established is not establishing" false (State.is_establishing st')

(* ------------------------------------------------------------------ *)
(* Nf: stateful ACL semantics *)

let pre_tx_only =
  { (Pre_action.default ~vni:1) with Pre_action.acl_rx = Acl.Deny }

let run_nf ?state ~dir ?(flags = Packet.no_flags) pre =
  Nf.process ~pre ~state ~dir ~flags ~proto:Five_tuple.Tcp ~wire_bytes:100 ()

let test_nf_first_tx_initializes () =
  let verdict, out = run_nf ~dir:Packet.Tx ~flags:Packet.syn pre_tx_only in
  check_bool "tx permitted" true (verdict = Nf.Deliver);
  match out with
  | Nf.Init st ->
    check_bool "first dir tx" true (st.State.first_dir = Packet.Tx);
    check_bool "establishing" true (State.is_establishing st)
  | Nf.Update _ | Nf.Keep -> Alcotest.fail "expected Init"

let test_nf_return_traffic_allowed () =
  (* The canonical §5.1 case: RX pre-action is deny, but the session was
     initiated locally (first_dir = Tx), so responses must pass. *)
  let st = State.init ~first_dir:Packet.Tx ~tcp:State.Establishing () in
  let verdict, _ = run_nf ~state:st ~dir:Packet.Rx ~flags:Packet.syn_ack pre_tx_only in
  check_bool "response passes despite rx deny" true (verdict = Nf.Deliver)

let test_nf_unsolicited_dropped () =
  (* First packet arrives from outside while RX is denied: state records
     first_dir = Rx and the packet drops as unsolicited. *)
  let verdict, out = run_nf ~dir:Packet.Rx ~flags:Packet.syn pre_tx_only in
  check_bool "unsolicited dropped" true (verdict = Nf.Drop Nf.Unsolicited);
  (match out with
  | Nf.Init st -> check_bool "state still recorded" true (st.State.first_dir = Packet.Rx)
  | Nf.Update _ | Nf.Keep -> Alcotest.fail "expected Init");
  (* And follow-ups of that unsolicited flow keep dropping. *)
  let st = State.init ~first_dir:Packet.Rx () in
  let verdict, _ = run_nf ~state:st ~dir:Packet.Rx pre_tx_only in
  check_bool "still dropped" true (verdict = Nf.Drop Nf.Unsolicited)

let test_nf_tx_deny () =
  let pre = { (Pre_action.default ~vni:1) with Pre_action.acl_tx = Acl.Deny } in
  let verdict, _ = run_nf ~dir:Packet.Tx pre in
  check_bool "tx denied" true (verdict = Nf.Drop Nf.Acl_denied)

let test_nf_tcp_progression () =
  let pre = Pre_action.default ~vni:1 in
  let _, out = run_nf ~dir:Packet.Tx ~flags:Packet.syn pre in
  let st = match out with Nf.Init s -> s | _ -> Alcotest.fail "init" in
  check_bool "syn -> establishing" true (st.State.tcp = Some State.Establishing);
  let st =
    match run_nf ~state:st ~dir:Packet.Rx ~flags:Packet.syn_ack pre with
    | _, Nf.Keep -> st (* syn-ack does not advance the phase: no write-back *)
    | _, Nf.Update s -> s
    | _, Nf.Init _ -> Alcotest.fail "unexpected init"
  in
  check_bool "synack keeps establishing" true (st.State.tcp = Some State.Establishing);
  let _, out = run_nf ~state:st ~dir:Packet.Tx ~flags:Packet.ack pre in
  let st = match out with Nf.Update s -> s | _ -> Alcotest.fail "update2" in
  check_bool "ack -> established" true (st.State.tcp = Some State.Established);
  let _, out = run_nf ~state:st ~dir:Packet.Tx ~flags:Packet.fin_ack pre in
  let st = match out with Nf.Update s -> s | _ -> Alcotest.fail "update3" in
  check_bool "fin -> closing" true (st.State.tcp = Some State.Closing)

let test_nf_stats_accumulate () =
  let pre =
    {
      (Pre_action.default ~vni:1) with
      Pre_action.stats = Some { Pre_action.count_packets = true; count_bytes = true };
    }
  in
  let _, out = run_nf ~dir:Packet.Tx ~flags:Packet.syn pre in
  let st = match out with Nf.Init s -> s | _ -> Alcotest.fail "init" in
  (match st.State.stats with
  | Some s ->
    check_int "1 packet" 1 s.State.packets;
    check_int "100 bytes" 100 s.State.bytes
  | None -> Alcotest.fail "stats expected");
  let _, out = run_nf ~state:st ~dir:Packet.Rx pre in
  let st = match out with Nf.Update s -> s | _ -> Alcotest.fail "update" in
  match st.State.stats with
  | Some s ->
    check_int "2 packets" 2 s.State.packets;
    check_int "200 bytes" 200 s.State.bytes
  | None -> Alcotest.fail "stats expected"

let test_nf_keep_when_unchanged () =
  let pre = Pre_action.default ~vni:1 in
  let st = State.init ~first_dir:Packet.Tx () in
  (* UDP-ish: no flags, no stats -> nothing changes. *)
  let _, out =
    Nf.process ~pre ~state:(Some st) ~dir:Packet.Tx ~flags:Packet.no_flags
      ~proto:Five_tuple.Udp ~wire_bytes:50 ()
  in
  check_bool "keep" true (out = Nf.Keep)

let test_nf_stateful_decap_records_src () =
  let pre = { (Pre_action.default ~vni:1) with Pre_action.stateful_decap = true } in
  let _, out =
    Nf.process ~pre ~state:None ~dir:Packet.Rx ~flags:Packet.syn ~proto:Five_tuple.Tcp
      ~wire_bytes:60 ~decap_src:(ip "100.64.0.1") ()
  in
  match out with
  | Nf.Init st ->
    check_bool "decap src recorded" true
      (match st.State.decap_src with Some a -> Ipv4.equal a (ip "100.64.0.1") | None -> false)
  | Nf.Update _ | Nf.Keep -> Alcotest.fail "expected Init"

(* ------------------------------------------------------------------ *)
(* Smartnic *)

let mini_params =
  (* 1 Mcycle/s CPU so cycle counts translate to easy math. *)
  { Params.default with Params.cpu_hz = 1e6; queue_capacity = 4; mem_bytes = 1000 }

let test_nic_service_time () =
  let sim = Sim.create () in
  let nic = Smartnic.create ~sim ~params:mini_params ~name:"n" in
  let done_at = ref (-1.0) in
  ignore (Smartnic.submit nic ~cycles:500_000 (fun s -> done_at := Sim.now s) : bool);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "0.5 s for 500k cycles" 0.5 !done_at

let test_nic_fifo_backlog () =
  let sim = Sim.create () in
  let nic = Smartnic.create ~sim ~params:mini_params ~name:"n" in
  let finish = ref [] in
  for i = 1 to 3 do
    ignore
      (Smartnic.submit nic ~cycles:100_000 (fun s -> finish := (i, Sim.now s) :: !finish) : bool)
  done;
  Sim.run sim;
  let finish = List.rev !finish in
  check_bool "in order, serialized" true
    (match finish with
    | [ (1, t1); (2, t2); (3, t3) ] ->
      Float.abs (t1 -. 0.1) < 1e-9 && Float.abs (t2 -. 0.2) < 1e-9 && Float.abs (t3 -. 0.3) < 1e-9
    | _ -> false)

let test_nic_queue_overflow () =
  let sim = Sim.create () in
  let nic = Smartnic.create ~sim ~params:mini_params ~name:"n" in
  let accepted = ref 0 in
  for _ = 1 to 10 do
    if Smartnic.submit nic ~cycles:1000 (fun _ -> ()) then incr accepted
  done;
  check_int "only queue_capacity accepted" 4 !accepted;
  check_int "drops counted" 6 (Smartnic.jobs_dropped nic);
  Sim.run sim;
  check_int "accepted all completed" 4 (Smartnic.jobs_completed nic)

let test_nic_utilization_sample () =
  let sim = Sim.create () in
  let nic = Smartnic.create ~sim ~params:mini_params ~name:"n" in
  (* 0.3 s of work across a 1 s window. *)
  ignore (Smartnic.submit nic ~cycles:300_000 (fun _ -> ()) : bool);
  Sim.run sim ~until:1.0;
  let u = Smartnic.utilization_since_last_sample nic in
  check_bool "~30% busy" true (Float.abs (u -. 0.3) < 0.02);
  (* Second sample with no new work: ~0. *)
  Sim.run sim ~until:2.0;
  let u2 = Smartnic.utilization_since_last_sample nic in
  check_bool "idle after" true (u2 < 0.01)

let test_nic_memory () =
  let sim = Sim.create () in
  let nic = Smartnic.create ~sim ~params:mini_params ~name:"n" in
  check_bool "reserve ok" true (Smartnic.mem_reserve nic 600);
  check_bool "overcommit refused" false (Smartnic.mem_reserve nic 500);
  check_int "used" 600 (Smartnic.mem_used nic);
  Smartnic.mem_release nic 200;
  check_bool "fits now" true (Smartnic.mem_reserve nic 500);
  Alcotest.check_raises "over-release" (Invalid_argument "Smartnic.mem_release: more than reserved")
    (fun () -> Smartnic.mem_release nic 100_000)

let test_nic_crash_drops () =
  let sim = Sim.create () in
  let nic = Smartnic.create ~sim ~params:mini_params ~name:"n" in
  Smartnic.crash nic;
  check_bool "crashed" true (Smartnic.is_crashed nic);
  check_bool "submit refused" false (Smartnic.submit nic ~cycles:10 (fun _ -> ()));
  Smartnic.recover nic;
  check_bool "submit works again" true (Smartnic.submit nic ~cycles:10 (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Ruleset *)

let test_ruleset_lookup_and_cost () =
  let acl = Acl.create () in
  Acl.add acl (Acl.rule ~priority:1 ~dst:(pfx "10.2.0.0/16") Acl.Deny);
  let rs = Ruleset.create ~vni:7 ~acl () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping rs
    { Vnic.Addr.vpc = Vpc.make 1; ip = ip "10.1.0.2" }
    (ip "192.168.0.2");
  (match Ruleset.lookup rs ~params:Params.default ~vpc:(Vpc.make 1)
           ~flow_tx:(tuple "10.1.0.1" "10.1.0.2")
   with
  | Some { Ruleset.pre; cycles } ->
    check_bool "permit both" true
      (pre.Pre_action.acl_tx = Acl.Permit && pre.Pre_action.acl_rx = Acl.Permit);
    check_bool "peer resolved" true
      (match pre.Pre_action.peer_server with
      | Some s -> Ipv4.equal s (ip "192.168.0.2")
      | None -> false);
    check_int "vni" 7 pre.Pre_action.vni;
    check_bool "cycles charged" true (cycles > 5 * Params.default.Params.table_base_cycles)
  | None -> Alcotest.fail "expected route");
  (* A destination under the denied prefix: deny is a pre-action. *)
  match Ruleset.lookup rs ~params:Params.default ~vpc:(Vpc.make 1)
          ~flow_tx:(tuple "10.1.0.1" "10.2.0.9")
  with
  | Some { Ruleset.pre; _ } -> check_bool "tx deny cached" true (pre.Pre_action.acl_tx = Acl.Deny)
  | None -> Alcotest.fail "expected result"

let test_ruleset_unroutable () =
  let rs = Ruleset.create ~vni:7 () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  check_bool "no route -> None" true
    (Ruleset.lookup rs ~params:Params.default ~vpc:(Vpc.make 1)
       ~flow_tx:(tuple "10.0.0.1" "172.16.0.1")
    = None)

let test_ruleset_unknown_mapping_goes_gateway () =
  let rs = Ruleset.create ~vni:7 () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  match Ruleset.lookup rs ~params:Params.default ~vpc:(Vpc.make 1)
          ~flow_tx:(tuple "10.0.0.1" "10.0.0.2")
  with
  | Some { Ruleset.pre; _ } ->
    check_bool "peer unknown" true (pre.Pre_action.peer_server = None)
  | None -> Alcotest.fail "expected result"

let test_ruleset_generation_and_clone () =
  let rs = Ruleset.create ~vni:7 () in
  let g0 = Ruleset.generation rs in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  check_bool "mutation bumps generation" true (Ruleset.generation rs > g0);
  let dup = Ruleset.clone rs in
  Ruleset.add_mapping dup { Vnic.Addr.vpc = Vpc.make 1; ip = ip "10.0.0.9" } (ip "192.168.0.9");
  check_int "original unaffected" 0 (Ruleset.mapping_count rs);
  check_int "clone has entry" 1 (Ruleset.mapping_count dup)

let test_ruleset_memory_scales_with_mappings () =
  let rs = Ruleset.create ~vni:7 ~fixed_overhead_bytes:0 () in
  let m0 = Ruleset.memory_bytes rs in
  for i = 1 to 1000 do
    Ruleset.add_mapping rs
      { Vnic.Addr.vpc = Vpc.make 1; ip = Ipv4.add (ip "10.0.0.0") i }
      (ip "192.168.0.1")
  done;
  check_int "40 B per mapping entry" (m0 + 40_000) (Ruleset.memory_bytes rs)

let test_ruleset_extra_tables_cost () =
  let rs5 = Ruleset.create ~vni:1 () in
  let rs12 = Ruleset.create ~vni:1 ~extra_tables:7 () in
  check_int "5 base tables" 5 (Ruleset.table_count rs5);
  check_int "12 with advanced features" 12 (Ruleset.table_count rs12);
  Ruleset.add_route rs5 (pfx "0.0.0.0/0");
  Ruleset.add_route rs12 (pfx "0.0.0.0/0");
  let c5 =
    match Ruleset.lookup rs5 ~params:Params.default ~vpc:(Vpc.make 1)
            ~flow_tx:(tuple "1.1.1.1" "2.2.2.2")
    with
    | Some r -> r.Ruleset.cycles
    | None -> Alcotest.fail "r5"
  in
  let c12 =
    match Ruleset.lookup rs12 ~params:Params.default ~vpc:(Vpc.make 1)
            ~flow_tx:(tuple "1.1.1.1" "2.2.2.2")
    with
    | Some r -> r.Ruleset.cycles
    | None -> Alcotest.fail "r12"
  in
  check_int "7 extra tables cost" (7 * Params.default.Params.table_base_cycles) (c12 - c5)

let mega_rs () =
  let acl = Acl.create () in
  Acl.add acl (Acl.rule ~priority:1 ~dst:(pfx "10.2.0.0/16") Acl.Deny);
  let rs = Ruleset.create ~vni:7 ~acl () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping rs
    { Vnic.Addr.vpc = Vpc.make 1; ip = ip "10.1.0.2" }
    (ip "192.168.0.2");
  rs

let mega_lookup rs t5 =
  match Ruleset.lookup rs ~params:Params.default ~vpc:(Vpc.make 1) ~flow_tx:t5 with
  | Some r -> r
  | None -> Alcotest.fail "expected lookup result"

let test_ruleset_megaflow_hit () =
  let rs = mega_rs () in
  let t5 = tuple "10.1.0.1" "10.1.0.2" in
  let first = mega_lookup rs t5 in
  check_int "first lookup misses" 0 (Ruleset.megaflow_hits rs);
  check_int "one miss" 1 (Ruleset.megaflow_misses rs);
  check_int "entry installed" 1 (Ruleset.megaflow_entries rs);
  let second = mega_lookup rs t5 in
  check_int "second lookup hits" 1 (Ruleset.megaflow_hits rs);
  check_int "hit costs one probe" Params.default.Params.megaflow_hit_cycles second.Ruleset.cycles;
  check_bool "hit is cheaper than the pipeline walk" true
    (second.Ruleset.cycles < first.Ruleset.cycles);
  check_bool "same pre-action" true (second.Ruleset.pre = first.Ruleset.pre);
  (* A flow sharing the megaflow's masked key reuses the entry. *)
  ignore (mega_lookup rs (tuple "10.1.0.1" "10.1.0.2" ~sport:50000) : Ruleset.lookup_result);
  check_bool "masked reuse" true
    (Ruleset.megaflow_hits rs = 2 || Ruleset.megaflow_misses rs = 2)

let test_ruleset_megaflow_invalidated_on_bump () =
  let rs = mega_rs () in
  let t5 = tuple "10.1.0.1" "10.1.0.2" in
  ignore (mega_lookup rs t5 : Ruleset.lookup_result);
  ignore (mega_lookup rs t5 : Ruleset.lookup_result);
  check_int "cached" 1 (Ruleset.megaflow_hits rs);
  (* Mutate the ACL through its own handle, then bump: the cached
     permit verdict must not survive. *)
  Acl.add (Ruleset.acl rs) (Acl.rule ~priority:0 ~dst:(pfx "10.1.0.2/32") Acl.Deny);
  Ruleset.bump_generation rs;
  let after = mega_lookup rs t5 in
  check_bool "new rule visible after bump" true (after.Ruleset.pre.Pre_action.acl_tx = Acl.Deny);
  check_int "flush forced a miss" 2 (Ruleset.megaflow_misses rs);
  (* Route/mapping mutations bump on their own. *)
  ignore (mega_lookup rs t5 : Ruleset.lookup_result);
  let hits = Ruleset.megaflow_hits rs in
  Ruleset.add_route rs (pfx "172.16.0.0/12");
  ignore (mega_lookup rs t5 : Ruleset.lookup_result);
  check_int "route change flushed the cache" hits (Ruleset.megaflow_hits rs)

let test_ruleset_megaflow_multi_target_not_cached () =
  let rs = Ruleset.create ~vni:7 () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  Ruleset.set_mapping_multi rs
    { Vnic.Addr.vpc = Vpc.make 1; ip = ip "10.1.0.2" }
    [| ip "192.168.0.2"; ip "192.168.0.3" |];
  let t5 = tuple "10.1.0.1" "10.1.0.2" in
  ignore (mega_lookup rs t5 : Ruleset.lookup_result);
  ignore (mega_lookup rs t5 : Ruleset.lookup_result);
  (* The FE pick hashes the full tuple, so a masked megaflow entry
     would pin every colliding flow to one FE — never cache it. *)
  check_int "no entries" 0 (Ruleset.megaflow_entries rs);
  check_int "no hits" 0 (Ruleset.megaflow_hits rs)

(* ------------------------------------------------------------------ *)
(* Vswitch end-to-end (local datapath) *)

type world = {
  sim : Sim.t;
  vs : Vswitch.t;
  to_net : Packet.t list ref;
  to_vm : (Vnic.id * Packet.t) list ref;
}

let vnic_a = Vnic.make ~id:1 ~vpc:(Vpc.make 5) ~ip:(ip "10.0.0.1") ~mac:(Mac.of_int64 0x1L)

let test_params =
  {
    Params.default with
    Params.cpu_hz = 1e8;
    mem_bytes = 8 * 1024 * 1024;
    queue_capacity = 64;
  }

let make_world ?(params = test_params) ?(acl_deny_rx = false) () =
  let sim = Sim.create () in
  let vs =
    Vswitch.create ~sim ~params ~name:"vs0" ~underlay_ip:(ip "192.168.0.1")
      ~gateway:(ip "192.168.255.254") ()
  in
  let to_net = ref [] and to_vm = ref [] in
  Vswitch.set_sink vs
    {
      Vswitch.on_output =
        (function
        | Vswitch.To_net p -> to_net := p :: !to_net
        | Vswitch.To_vm (vid, p) -> to_vm := (vid, p) :: !to_vm);
      on_net_batch =
        (fun batch ->
          Pbatch.iter batch (fun p -> to_net := p :: !to_net);
          Pbatch.recycle batch);
    };
  let acl = Acl.create () in
  if acl_deny_rx then
    Acl.add acl (Acl.rule ~priority:1 ~dst:(pfx "10.0.0.1/32") Acl.Deny);
  let rs = Ruleset.create ~vni:5 ~acl () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping rs
    { Vnic.Addr.vpc = Vpc.make 5; ip = ip "10.0.0.2" }
    (ip "192.168.0.2");
  (match Vswitch.add_vnic vs vnic_a rs with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "vnic must fit");
  { sim; vs; to_net; to_vm }

let tx_packet ?(flags = Packet.syn) ?(dst = "10.0.0.2") ?(sport = 40000) () =
  Packet.create ~vpc:(Vpc.make 5)
    ~flow:(tuple "10.0.0.1" dst ~sport)
    ~direction:Packet.Tx ~flags ()

let rx_packet ?(flags = Packet.syn) ?(src = "10.0.0.2") ?(sport = 50000) () =
  let p =
    Packet.create ~vpc:(Vpc.make 5)
      ~flow:(tuple src "10.0.0.1" ~sport ~dport:80)
      ~direction:Packet.Rx ~flags ()
  in
  Packet.encap_vxlan p ~vni:5 ~outer_src:(ip "192.168.0.2") ~outer_dst:(ip "192.168.0.1");
  p

let test_vs_tx_forwarded_and_encapped () =
  let w = make_world () in
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ());
  Sim.run w.sim ~until:1.0;
  check_int "one packet out" 1 (List.length !(w.to_net));
  let p = List.hd !(w.to_net) in
  (match p.Packet.vxlan with
  | Some v ->
    check_bool "vni" true (v.Packet.vni = 5);
    check_bool "outer dst is peer server" true (Ipv4.equal v.Packet.outer_dst (ip "192.168.0.2"))
  | None -> Alcotest.fail "must be encapsulated");
  check_int "slow path ran once" 1 (Stats.Counter.value (Vswitch.counters w.vs).Vswitch.slow_path_execs);
  check_int "session created" 1 (Vswitch.session_count w.vs vnic_a.Vnic.id)

let test_vs_fast_path_on_second_packet () =
  let w = make_world () in
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ());
  Sim.run w.sim ~until:1.0;
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~flags:Packet.ack ());
  Sim.run w.sim ~until:2.0;
  let c = Vswitch.counters w.vs in
  check_int "one slow path" 1 (Stats.Counter.value c.Vswitch.slow_path_execs);
  check_int "one fast path" 1 (Stats.Counter.value c.Vswitch.fast_path_hits);
  check_int "two forwarded" 2 (List.length !(w.to_net))

let test_vs_unknown_peer_goes_gateway () =
  let w = make_world () in
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~dst:"10.0.0.77" ());
  Sim.run w.sim ~until:1.0;
  match !(w.to_net) with
  | [ p ] ->
    (match p.Packet.vxlan with
    | Some v ->
      check_bool "goes to gateway" true (Ipv4.equal v.Packet.outer_dst (ip "192.168.255.254"))
    | None -> Alcotest.fail "encap expected")
  | _ -> Alcotest.fail "expected one packet"

let test_vs_unroutable_dropped () =
  let w = make_world () in
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~dst:"172.16.0.1" ());
  Sim.run w.sim ~until:1.0;
  check_int "no output" 0 (List.length !(w.to_net));
  check_int "no-route drop" 1 (Vswitch.drop_count w.vs Nf.No_route)

let test_vs_rx_delivered_to_vm () =
  let w = make_world () in
  Vswitch.from_net w.vs (rx_packet ());
  Sim.run w.sim ~until:1.0;
  check_int "delivered" 1 (List.length !(w.to_vm));
  let vid, _ = List.hd !(w.to_vm) in
  check_bool "right vnic" true (Vnic.equal_id vid vnic_a.Vnic.id)

let test_vs_rx_unsolicited_dropped_but_response_flows () =
  let w = make_world ~acl_deny_rx:true () in
  (* Unsolicited inbound SYN: dropped. *)
  Vswitch.from_net w.vs (rx_packet ~sport:50001 ());
  Sim.run w.sim ~until:1.0;
  check_int "unsolicited dropped" 1 (Vswitch.drop_count w.vs Nf.Unsolicited);
  check_int "nothing delivered" 0 (List.length !(w.to_vm));
  (* Locally-initiated connection: responses pass the deny. *)
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~sport:40077 ());
  Sim.run w.sim ~until:2.0;
  let resp =
    let p =
      Packet.create ~vpc:(Vpc.make 5)
        ~flow:(tuple "10.0.0.2" "10.0.0.1" ~sport:80 ~dport:40077)
        ~direction:Packet.Rx ~flags:Packet.syn_ack ()
    in
    Packet.encap_vxlan p ~vni:5 ~outer_src:(ip "192.168.0.2") ~outer_dst:(ip "192.168.0.1");
    p
  in
  Vswitch.from_net w.vs resp;
  Sim.run w.sim ~until:3.0;
  check_int "response delivered" 1 (List.length !(w.to_vm))

let test_vs_no_vnic_drop () =
  let w = make_world () in
  let p =
    Packet.create ~vpc:(Vpc.make 5)
      ~flow:(tuple "10.0.0.2" "10.0.0.99")
      ~direction:Packet.Rx ~flags:Packet.syn ()
  in
  Packet.encap_vxlan p ~vni:5 ~outer_src:(ip "192.168.0.2") ~outer_dst:(ip "192.168.0.1");
  Vswitch.from_net w.vs p;
  Sim.run w.sim ~until:1.0;
  check_int "no-vnic drop" 1 (Vswitch.drop_count w.vs Nf.No_vnic)

let test_vs_net_hook_handles_foreign () =
  let w = make_world () in
  let seen = ref 0 in
  Vswitch.set_net_hook w.vs (Some (fun _ ~outer:_ -> incr seen; `Handled));
  let p =
    Packet.create ~vpc:(Vpc.make 5)
      ~flow:(tuple "10.0.0.2" "10.0.0.99")
      ~direction:Packet.Rx ~flags:Packet.syn ()
  in
  Packet.encap_vxlan p ~vni:5 ~outer_src:(ip "192.168.0.2") ~outer_dst:(ip "192.168.0.1");
  Vswitch.from_net w.vs p;
  check_int "hook saw it" 1 !seen;
  check_int "no drop" 0 (Vswitch.drop_count w.vs Nf.No_vnic)

let test_vs_intercept_tx () =
  let w = make_world () in
  let grabbed = ref 0 in
  Vswitch.set_intercept w.vs vnic_a.Vnic.id
    (Some
       {
         Vswitch.on_tx = (fun _ -> incr grabbed; `Handled);
         on_rx = (fun _ -> `Continue);
         on_tx_batch = None;
       });
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ());
  check_int "intercepted" 1 !grabbed;
  check_int "nothing forwarded" 0 (List.length !(w.to_net))

let test_vs_session_aging_frees_memory () =
  let w = make_world () in
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~flags:Packet.no_flags ());
  Sim.run w.sim ~until:0.5;
  check_int "session exists" 1 (Vswitch.session_count w.vs vnic_a.Vnic.id);
  let used_with = Smartnic.mem_used (Vswitch.nic w.vs) in
  (* Idle well past the 8 s aging. *)
  Sim.run w.sim ~until:20.0;
  check_int "session aged out" 0 (Vswitch.session_count w.vs vnic_a.Vnic.id);
  check_bool "memory freed" true (Smartnic.mem_used (Vswitch.nic w.vs) < used_with)

let test_vs_syn_session_ages_early () =
  let w = make_world () in
  (* SYN-only session (no handshake completion): short aging (2 s). *)
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~flags:Packet.syn ());
  Sim.run w.sim ~until:0.5;
  check_int "exists" 1 (Vswitch.session_count w.vs vnic_a.Vnic.id);
  Sim.run w.sim ~until:5.0;
  check_int "gone before normal aging" 0 (Vswitch.session_count w.vs vnic_a.Vnic.id)

let test_vs_table_full () =
  (* Tiny memory: rule tables fit, few sessions do. *)
  let params = { test_params with Params.mem_bytes = 2 * 1024 * 1024 + 3000 } in
  let w = make_world ~params () in
  for i = 0 to 49 do
    Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~sport:(41000 + i) ~flags:Packet.no_flags ())
  done;
  Sim.run w.sim ~until:5.0;
  check_bool "some table-full drops" true (Vswitch.drop_count w.vs Nf.Table_full > 0);
  check_bool "table did not exceed budget" true
    (Smartnic.mem_used (Vswitch.nic w.vs) <= Smartnic.mem_capacity (Vswitch.nic w.vs))

let test_vs_add_vnic_no_memory () =
  let params = { test_params with Params.mem_bytes = 1024 } in
  let sim = Sim.create () in
  let vs =
    Vswitch.create ~sim ~params ~name:"tiny" ~underlay_ip:(ip "192.168.0.9")
      ~gateway:(ip "192.168.255.254") ()
  in
  let rs = Ruleset.create ~vni:1 () in
  check_bool "vnic rejected" true (Vswitch.add_vnic vs vnic_a rs = Error `No_memory);
  check_int "none added" 0 (Vswitch.vnic_count vs)

let test_vs_drop_and_restore_ruleset () =
  let w = make_world () in
  (* Create one session so there is a cached flow + state. *)
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ());
  Sim.run w.sim ~until:0.5;
  let before = Smartnic.mem_used (Vswitch.nic w.vs) in
  Vswitch.drop_ruleset w.vs vnic_a.Vnic.id;
  check_bool "rule memory freed (≥2MB minus residual)" true
    (before - Smartnic.mem_used (Vswitch.nic w.vs) > 1024 * 1024);
  check_bool "ruleset gone" true (Vswitch.ruleset w.vs vnic_a.Vnic.id = None);
  (* The session survives as a state-only entry. *)
  (match
     Vswitch.find_session w.vs vnic_a.Vnic.id
       (Flow_key.of_packet_fields ~vpc:(Vpc.make 5) ~flow:(tuple "10.0.0.1" "10.0.0.2"))
   with
  | Some s ->
    check_bool "pre dropped" true (s.Vswitch.pre = None);
    check_bool "state kept" true (s.Vswitch.state <> None)
  | None -> Alcotest.fail "session should survive as state-only");
  (* Restore (fallback). *)
  let rs = Ruleset.create ~vni:5 () in
  Ruleset.add_route rs (pfx "10.0.0.0/8");
  check_bool "restore ok" true (Vswitch.restore_ruleset w.vs vnic_a.Vnic.id rs = Ok ());
  check_bool "ruleset back" true (Vswitch.ruleset w.vs vnic_a.Vnic.id <> None)

let test_vs_generation_invalidation () =
  let w = make_world () in
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ());
  Sim.run w.sim ~until:0.5;
  let rs = Option.get (Vswitch.ruleset w.vs vnic_a.Vnic.id) in
  (* Rule change: cached flows become stale and get invalidated. *)
  Ruleset.add_route rs (pfx "172.16.0.0/12");
  Vswitch.invalidate_cached_flows w.vs vnic_a.Vnic.id;
  check_int "stale cached flow removed" 0 (Vswitch.session_count w.vs vnic_a.Vnic.id);
  (* Next packet re-runs the slow path and repopulates. *)
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~flags:Packet.ack ());
  Sim.run w.sim ~until:1.0;
  check_int "two slow paths total" 2
    (Stats.Counter.value (Vswitch.counters w.vs).Vswitch.slow_path_execs)

let test_vs_queue_overflow_under_burst () =
  let params = { test_params with Params.cpu_hz = 1e5; queue_capacity = 8 } in
  let w = make_world ~params () in
  for i = 0 to 99 do
    Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~sport:(42000 + i) ())
  done;
  Sim.run w.sim ~until:60.0;
  check_bool "overflow drops" true (Vswitch.drop_count w.vs Nf.Queue_overflow > 0);
  check_bool "some got through" true (List.length !(w.to_net) > 0)


let test_vs_flow_logging () =
  let w = make_world () in
  (* Arm statistics for the peer prefix so sessions count traffic. *)
  let rs = Option.get (Vswitch.ruleset w.vs vnic_a.Vnic.id) in
  ignore rs;
  let stats_rs =
    Ruleset.create ~vni:5
      ~stats_rules:[ (pfx "10.0.0.0/8", { Pre_action.count_packets = true; count_bytes = true }) ]
      ()
  in
  Ruleset.add_route stats_rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping stats_rs { Vnic.Addr.vpc = Vpc.make 5; ip = ip "10.0.0.2" }
    (ip "192.168.0.2");
  Vswitch.drop_ruleset w.vs vnic_a.Vnic.id;
  (match Vswitch.restore_ruleset w.vs vnic_a.Vnic.id stats_rs with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "restore");
  let records = ref [] in
  Vswitch.set_flow_log_sink w.vs (Some (fun r -> records := r :: !records));
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~flags:Packet.no_flags ());
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~flags:Packet.no_flags ());
  Sim.run w.sim ~until:0.5;
  (* Idle past aging: the counted session exits and emits a record. *)
  Sim.run w.sim ~until:20.0;
  check_int "one record" 1 (List.length !records);
  (match !records with
  | [ r ] ->
    check_int "two packets counted" 2 r.Vswitch.packets;
    check_bool "bytes counted" true (r.Vswitch.bytes > 0);
    check_bool "direction recorded" true (r.Vswitch.first_dir = Packet.Tx)
  | _ -> Alcotest.fail "expected one record");
  check_int "counter agrees" 1 (Vswitch.flow_records_emitted w.vs)

let test_vs_mirroring () =
  let w = make_world () in
  let mirror_rs = Ruleset.create ~vni:5 ~mirror:true () in
  Ruleset.add_route mirror_rs (pfx "10.0.0.0/8");
  Ruleset.add_mapping mirror_rs { Vnic.Addr.vpc = Vpc.make 5; ip = ip "10.0.0.2" }
    (ip "192.168.0.2");
  Vswitch.drop_ruleset w.vs vnic_a.Vnic.id;
  (match Vswitch.restore_ruleset w.vs vnic_a.Vnic.id mirror_rs with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "restore");
  (* Without a collector nothing is copied. *)
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~sport:40100 ());
  Sim.run w.sim ~until:0.5;
  check_int "no collector, no copy" 1 (List.length !(w.to_net));
  (* With a collector every delivered packet is duplicated. *)
  Vswitch.set_mirror_target w.vs (Some (ip "192.168.0.99"));
  Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~sport:40101 ());
  Sim.run w.sim ~until:1.0;
  check_int "original + mirror" 3 (List.length !(w.to_net));
  check_int "mirror counter" 1 (Vswitch.packets_mirrored w.vs);
  let mirror_pkt =
    List.find
      (fun p ->
        match p.Packet.vxlan with
        | Some v -> Ipv4.equal v.Packet.outer_dst (ip "192.168.0.99")
        | None -> false)
      !(w.to_net)
  in
  check_bool "mirror goes to the collector" true (mirror_pkt.Packet.payload_len = 0)


let test_vs_iter_sessions_and_version () =
  let w = make_world () in
  check_int "default version" 0 (Vswitch.software_version w.vs);
  Vswitch.set_software_version w.vs 3;
  check_int "version set" 3 (Vswitch.software_version w.vs);
  for i = 0 to 4 do
    Vswitch.from_vm w.vs vnic_a.Vnic.id (tx_packet ~sport:(40200 + i) ~flags:Packet.no_flags ())
  done;
  Sim.run w.sim ~until:0.5;
  let seen = ref 0 in
  Vswitch.iter_sessions w.vs vnic_a.Vnic.id (fun _ session ->
      incr seen;
      check_bool "entries carry pre-actions" true (session.Vswitch.pre <> None));
  check_int "iterated all sessions" 5 !seen

let test_vs_vnic_classifier_gauges () =
  let module T = Nezha_telemetry.Telemetry in
  let w = make_world () in
  let reg = T.create () in
  Vswitch.register_telemetry w.vs reg;
  let prefix = "vswitch/vs0/vnic/1/" in
  (* The seed ruleset is small, so the Auto policy serves it from the
     tuple-space backend; the gauge reports that decision. *)
  check_bool "backend gauge reports tss" true
    (T.read_gauge reg (prefix ^ "classifier_backend")
    = Some (float_of_int (Classifier.backend_code Classifier.Tuple_space)));
  (match T.read_gauge reg (prefix ^ "classifier_memory_bytes") with
  | Some b -> check_bool "memory gauge positive" true (b >= 0.0)
  | None -> Alcotest.fail "memory gauge missing");
  check_bool "accessor agrees" true
    (Vswitch.vnic_classifier_backend w.vs vnic_a.Vnic.id = Some Classifier.Tuple_space);
  (* Removing the vNIC unregisters its whole gauge prefix. *)
  Vswitch.remove_vnic w.vs vnic_a.Vnic.id;
  check_bool "gauges gone after removal" true
    (T.read_gauge reg (prefix ^ "classifier_backend") = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vswitch"
    [
      ( "pre_action",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_pre_action_roundtrip;
          Alcotest.test_case "minimal is compact" `Quick test_pre_action_minimal_small;
          Alcotest.test_case "decode garbage" `Quick test_pre_action_decode_garbage;
        ] );
      ( "state",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_state_roundtrip;
          Alcotest.test_case "variable size small" `Quick test_state_size_small;
          Alcotest.test_case "establishing predicate" `Quick test_state_establishing;
        ] );
      ( "nf",
        [
          Alcotest.test_case "first tx initializes" `Quick test_nf_first_tx_initializes;
          Alcotest.test_case "return traffic allowed" `Quick test_nf_return_traffic_allowed;
          Alcotest.test_case "unsolicited dropped" `Quick test_nf_unsolicited_dropped;
          Alcotest.test_case "tx deny" `Quick test_nf_tx_deny;
          Alcotest.test_case "tcp progression" `Quick test_nf_tcp_progression;
          Alcotest.test_case "stats accumulate" `Quick test_nf_stats_accumulate;
          Alcotest.test_case "keep when unchanged" `Quick test_nf_keep_when_unchanged;
          Alcotest.test_case "stateful decap records src" `Quick test_nf_stateful_decap_records_src;
        ] );
      ( "smartnic",
        [
          Alcotest.test_case "service time" `Quick test_nic_service_time;
          Alcotest.test_case "fifo backlog" `Quick test_nic_fifo_backlog;
          Alcotest.test_case "queue overflow" `Quick test_nic_queue_overflow;
          Alcotest.test_case "utilization sampling" `Quick test_nic_utilization_sample;
          Alcotest.test_case "memory budget" `Quick test_nic_memory;
          Alcotest.test_case "crash semantics" `Quick test_nic_crash_drops;
        ] );
      ( "ruleset",
        [
          Alcotest.test_case "lookup and cost" `Quick test_ruleset_lookup_and_cost;
          Alcotest.test_case "unroutable" `Quick test_ruleset_unroutable;
          Alcotest.test_case "unknown mapping -> gateway" `Quick
            test_ruleset_unknown_mapping_goes_gateway;
          Alcotest.test_case "generation and clone" `Quick test_ruleset_generation_and_clone;
          Alcotest.test_case "memory scales with mappings" `Quick
            test_ruleset_memory_scales_with_mappings;
          Alcotest.test_case "extra tables cost" `Quick test_ruleset_extra_tables_cost;
          Alcotest.test_case "megaflow hit" `Quick test_ruleset_megaflow_hit;
          Alcotest.test_case "megaflow invalidated on bump" `Quick
            test_ruleset_megaflow_invalidated_on_bump;
          Alcotest.test_case "megaflow skips multi-target peers" `Quick
            test_ruleset_megaflow_multi_target_not_cached;
        ] );
      ( "vswitch",
        [
          Alcotest.test_case "tx forwarded and encapped" `Quick test_vs_tx_forwarded_and_encapped;
          Alcotest.test_case "fast path on second packet" `Quick test_vs_fast_path_on_second_packet;
          Alcotest.test_case "unknown peer via gateway" `Quick test_vs_unknown_peer_goes_gateway;
          Alcotest.test_case "unroutable dropped" `Quick test_vs_unroutable_dropped;
          Alcotest.test_case "rx delivered to vm" `Quick test_vs_rx_delivered_to_vm;
          Alcotest.test_case "stateful acl end-to-end" `Quick
            test_vs_rx_unsolicited_dropped_but_response_flows;
          Alcotest.test_case "no vnic drop" `Quick test_vs_no_vnic_drop;
          Alcotest.test_case "net hook" `Quick test_vs_net_hook_handles_foreign;
          Alcotest.test_case "tx intercept" `Quick test_vs_intercept_tx;
          Alcotest.test_case "session aging frees memory" `Quick test_vs_session_aging_frees_memory;
          Alcotest.test_case "syn session ages early" `Quick test_vs_syn_session_ages_early;
          Alcotest.test_case "table full" `Quick test_vs_table_full;
          Alcotest.test_case "vnic memory rejection" `Quick test_vs_add_vnic_no_memory;
          Alcotest.test_case "drop and restore ruleset" `Quick test_vs_drop_and_restore_ruleset;
          Alcotest.test_case "generation invalidation" `Quick test_vs_generation_invalidation;
          Alcotest.test_case "queue overflow under burst" `Quick test_vs_queue_overflow_under_burst;
          Alcotest.test_case "flow logging" `Quick test_vs_flow_logging;
          Alcotest.test_case "traffic mirroring" `Quick test_vs_mirroring;
          Alcotest.test_case "session iteration and version" `Quick test_vs_iter_sessions_and_version;
          Alcotest.test_case "per-vnic classifier gauges" `Quick test_vs_vnic_classifier_gauges;
        ] );
    ]
