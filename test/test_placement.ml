(* Differential and property tests for the placement policies.  The
   power-of-two-choices selector must never pick a suspect FE while a
   healthy one remains, must degenerate to a hash-equivalent uniform
   spread under uniform load (chi-squared bound on a fixed seed), must
   be seed-deterministic, and must keep the paper's same-rack
   preference exactly while the local load stays within the band. *)

open Nezha_engine
open Nezha_core

type server = { id : int; rack : int; load : float; bad : bool }

let pick ~seed ?(be_rack = 0) ?load_band ~count servers =
  let rng = Rng.create seed in
  Placement.select_p2c ~rng
    ~eligible:(fun _ -> true)
    ~same_rack:(fun s -> s.rack = be_rack)
    ~load:(fun s -> s.load)
    ~suspect:(fun s -> s.bad)
    ?load_band ~count servers

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let server_gen =
  QCheck.Gen.(
    let* n = int_range 1 24 in
    let* specs =
      list_size (return n)
        (triple (int_range 0 3) (float_bound_inclusive 1.0) bool)
    in
    let servers =
      List.mapi (fun id (rack, load, bad) -> { id; rack; load; bad }) specs
    in
    let* count = int_range 1 n in
    let* seed = int_range 0 0x3FFFFFFF in
    return (servers, count, seed))

let arb =
  QCheck.make server_gen ~print:(fun (servers, count, seed) ->
      Printf.sprintf "count=%d seed=%d servers=[%s]" count seed
        (String.concat "; "
           (List.map
              (fun s ->
                Printf.sprintf "#%d rack%d load %.2f%s" s.id s.rack s.load
                  (if s.bad then " SUSPECT" else ""))
              servers)))

(* A suspect in the selection implies every healthy server was selected
   first — suspects are strictly a last resort. *)
let prop_suspects_last =
  QCheck.Test.make ~name:"p2c never picks a suspect while a healthy FE remains"
    ~count:500 arb (fun (servers, count, seed) ->
      let chosen = pick ~seed ~count servers in
      let chose_suspect = List.exists (fun s -> s.bad) chosen in
      (not chose_suspect)
      || List.for_all
           (fun s -> s.bad || List.exists (fun c -> c.id = s.id) chosen)
           servers)

let prop_seed_deterministic =
  QCheck.Test.make ~name:"p2c is a pure function of the seed" ~count:200 arb
    (fun (servers, count, seed) ->
      pick ~seed ~count servers = pick ~seed ~count servers)

(* Sanity envelope shared by both policies: right size, no duplicates,
   drawn from the input. *)
let prop_selection_well_formed =
  QCheck.Test.make ~name:"p2c selection is well-formed" ~count:200 arb
    (fun (servers, count, seed) ->
      let chosen = pick ~seed ~count servers in
      let ids = List.map (fun s -> s.id) chosen in
      List.length chosen = min count (List.length servers)
      && List.sort_uniq compare ids = List.sort compare ids
      && List.for_all (fun s -> List.exists (fun x -> x.id = s.id) servers)
           chosen)

(* Differential against the paper's least-loaded ordering: asked for the
   whole pool, both policies must return the same set — they only differ
   in ranking, never in membership. *)
let prop_full_pool_agrees_with_least_loaded =
  QCheck.Test.make ~name:"p2c and least-loaded agree on the full pool"
    ~count:200 arb (fun (servers, _count, seed) ->
      let n = List.length servers in
      let p2c = pick ~seed ~count:n servers in
      let ll =
        Placement.select
          ~eligible:(fun _ -> true)
          ~same_rack:(fun s -> s.rack = 0)
          ~cpu:(fun s -> s.load)
          ~count:n servers
      in
      let ids l = List.sort compare (List.map (fun s -> s.id) l) in
      ids p2c = ids ll)

(* ------------------------------------------------------------------ *)
(* Fixed-seed regressions *)

(* Under uniform load the two-choice draw degenerates to a uniform pick,
   so the spread over many selections must pass a chi-squared bound —
   the same test a hash-based spreader would pass.  df = 7; 24.32 is the
   99.9th percentile, and the seed is fixed, so this never flakes. *)
let test_uniform_load_uniform_spread () =
  let n = 8 and trials = 4000 in
  let servers = List.init n (fun id -> { id; rack = 1; load = 0.5; bad = false }) in
  let rng = Rng.create 20260808 in
  let counts = Array.make n 0 in
  for _ = 1 to trials do
    match
      Placement.select_p2c ~rng
        ~eligible:(fun _ -> true)
        ~same_rack:(fun _ -> false)
        ~load:(fun s -> s.load)
        ~suspect:(fun s -> s.bad)
        ~count:1 servers
    with
    | [ s ] -> counts.(s.id) <- counts.(s.id) + 1
    | other -> Alcotest.failf "expected 1 pick, got %d" (List.length other)
  done;
  let expected = float_of_int trials /. float_of_int n in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 counts
  in
  if chi2 > 24.32 then
    Alcotest.failf "spread not uniform: chi2 %.2f > 24.32 (counts %s)" chi2
      (String.concat "," (Array.to_list (Array.map string_of_int counts)))

(* Rack locality (App. B.1): same-rack candidates are preferred exactly
   while their load stays within the band of the global minimum... *)
let test_same_rack_preferred_within_band () =
  let servers =
    [
      { id = 0; rack = 0; load = 0.20; bad = false };
      { id = 1; rack = 0; load = 0.22; bad = false };
      { id = 2; rack = 1; load = 0.10; bad = false };
      { id = 3; rack = 1; load = 0.12; bad = false };
    ]
  in
  (* min healthy load 0.10 + band 0.15 = 0.25: both rack-0 servers are
     near-tier, so every seed must pick them first. *)
  for seed = 0 to 49 do
    let chosen = pick ~seed ~count:2 servers in
    if not (List.for_all (fun s -> s.rack = 0) chosen) then
      Alcotest.failf "seed %d left the rack while local was in-band: [%s]" seed
        (String.concat ";" (List.map (fun s -> string_of_int s.id) chosen))
  done

(* ... and abandoned the moment the local servers are overloaded. *)
let test_cross_rack_when_local_overloaded () =
  let servers =
    [
      { id = 0; rack = 0; load = 0.60; bad = false };
      { id = 1; rack = 1; load = 0.10; bad = false };
      { id = 2; rack = 1; load = 0.12; bad = false };
    ]
  in
  (* 0.60 > 0.10 + 0.15: the same-rack server is out of the band, so a
     single pick must go cross-rack on every seed. *)
  for seed = 0 to 49 do
    match pick ~seed ~count:1 servers with
    | [ s ] when s.rack <> 0 -> ()
    | chosen ->
        Alcotest.failf "seed %d stayed on the overloaded rack: [%s]" seed
          (String.concat ";"
             (List.map (fun s -> string_of_int s.id) chosen))
  done

let test_suspect_only_as_last_resort_fixed () =
  let servers =
    [
      { id = 0; rack = 0; load = 0.01; bad = true };
      { id = 1; rack = 1; load = 0.99; bad = false };
    ]
  in
  for seed = 0 to 49 do
    match pick ~seed ~count:1 servers with
    | [ s ] when s.id = 1 -> ()
    | _ -> Alcotest.failf "seed %d chose the idle suspect over a healthy FE" seed
  done;
  (* Asked for both, the suspect is still returned — last. *)
  let both = pick ~seed:7 ~count:2 servers in
  Alcotest.(check (list int)) "suspect ranked last" [ 1; 0 ]
    (List.map (fun s -> s.id) both)

let test_ewma_smoothing () =
  let e = Placement.Ewma.create ~alpha:0.5 () in
  Alcotest.(check (float 1e-9)) "zero before any sample" 0.0
    (Placement.Ewma.value e);
  Placement.Ewma.observe e 1.0;
  Alcotest.(check (float 1e-9)) "first sample seeds" 1.0 (Placement.Ewma.value e);
  Placement.Ewma.observe e 0.0;
  Alcotest.(check (float 1e-9)) "half-life decay" 0.5 (Placement.Ewma.value e);
  (match Placement.Ewma.create ~alpha:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "alpha 0 accepted");
  match Placement.Ewma.create ~alpha:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "alpha > 1 accepted"

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_suspects_last;
      prop_seed_deterministic;
      prop_selection_well_formed;
      prop_full_pool_agrees_with_least_loaded;
    ]

let () =
  Alcotest.run "placement"
    [
      ("p2c-properties", qsuite);
      ( "p2c-regressions",
        [
          Alcotest.test_case "uniform load gives uniform spread (chi2)" `Quick
            test_uniform_load_uniform_spread;
          Alcotest.test_case "same-rack preferred within load band" `Quick
            test_same_rack_preferred_within_band;
          Alcotest.test_case "cross-rack when local overloaded" `Quick
            test_cross_rack_when_local_overloaded;
          Alcotest.test_case "suspect only as last resort" `Quick
            test_suspect_only_as_last_resort_fixed;
          Alcotest.test_case "ewma load signal" `Quick test_ewma_smoothing;
        ] );
    ]
