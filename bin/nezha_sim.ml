(* nezha-sim: command-line driver for the Nezha reproduction.

     nezha_sim list                          available experiments
     nezha_sim cps --fes 4 --middlebox lb    one CPS measurement
     nezha_sim flows --fes 4                 one #concurrent-flows measurement
     nezha_sim offload --fes 4               offload walkthrough with counters
     nezha_sim fleet --size 50000            region statistics *)

open Cmdliner
open Nezha_engine
open Nezha_core
open Nezha_workloads
open Nezha_harness
open Nezha_telemetry

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* Testbed commands accept --metrics FILE: the testbed's telemetry
   registry is sampled during the run (0.5 s virtual-time period) and the
   full snapshot + time series lands in FILE as JSON. *)
let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write a telemetry snapshot (and sampled time series) as JSON to $(docv).")

let with_metrics metrics (t : Testbed.t) =
  match metrics with
  | None -> ()
  | Some _ -> Telemetry.start_sampler t.Testbed.telemetry ~sim:t.Testbed.sim ()

let dump_metrics metrics (t : Testbed.t) =
  match metrics with
  | None -> ()
  | Some path ->
    Telemetry.stop_sampler t.Testbed.telemetry;
    (try Telemetry.write_json_file ~at:(Sim.now t.Testbed.sim) t.Testbed.telemetry ~path
     with Sys_error e ->
       Printf.eprintf "nezha_sim: cannot write metrics: %s\n" e;
       exit 1);
    say "telemetry: %d metrics (%d sampled points) -> %s"
      (Telemetry.cardinality t.Testbed.telemetry)
      (Telemetry.samples_taken t.Testbed.telemetry)
      path

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic random seed.")

let fes_arg =
  Arg.(value & opt int 4 & info [ "fes" ] ~docv:"N" ~doc:"Number of frontends to offload to.")

let middlebox_arg =
  let mb_conv =
    Arg.enum
      [ ("none", None);
        ("lb", Some Middlebox.Load_balancer);
        ("nat", Some Middlebox.Nat_gateway);
        ("tr", Some Middlebox.Transit_router) ]
  in
  Arg.(value & opt mb_conv None & info [ "middlebox" ] ~docv:"KIND"
         ~doc:"Configure the heavy vNIC as a middlebox: $(b,lb), $(b,nat), $(b,tr) or $(b,none).")

(* ------------------------------------------------------------------ *)

let cps_cmd =
  let run seed fes middlebox metrics =
    let t = Testbed.create ~seed ?middlebox () in
    let base = Testbed.measure_cps t () in
    say "local CPS capacity: %.0f" base;
    let t = Testbed.create ~seed ?middlebox () in
    ignore (Testbed.offload t ~num_fes:fes () : Controller.offload);
    with_metrics metrics t;
    let cps = Testbed.measure_cps t ~concurrency:1024 () in
    say "with %d FEs:        %.0f  (gain %.2fx)" fes cps (cps /. base);
    dump_metrics metrics t
  in
  Cmd.v
    (Cmd.info "cps" ~doc:"Measure CPS capacity with and without Nezha.")
    Term.(const run $ seed_arg $ fes_arg $ middlebox_arg $ metrics_arg)

let flows_cmd =
  let run seed fes =
    let local = Experiments.measure_flows ~seed ~fes:0 () in
    say "local #concurrent flows: %d" local;
    let flows = Experiments.measure_flows ~seed ~fes () in
    say "with %d FEs:             %d  (gain %.2fx)" fes flows
      (float_of_int flows /. float_of_int local)
  in
  Cmd.v
    (Cmd.info "flows" ~doc:"Measure sustained #concurrent flows with and without Nezha.")
    Term.(const run $ seed_arg $ fes_arg)

let offload_cmd =
  let run seed fes metrics =
    let t = Testbed.create ~seed () in
    let o = Testbed.offload t ~num_fes:fes () in
    say "offload complete: stage=%s"
      (match Controller.offload_stage o with Be.Final -> "final" | Be.Dual -> "dual-running");
    say "FEs on servers: %s"
      (String.concat ", " (List.map string_of_int (Controller.offload_fe_servers o)));
    (match Controller.offload_completed_at o with
    | Some at -> say "activation completed at t=%.3fs (trigger at t=0)" at
    | None -> ());
    with_metrics metrics t;
    ignore (Testbed.measure_cps t ~duration:2.0 () : float);
    let bc = Be.counters (Controller.offload_be o) in
    say "BE counters: tx-via-FE %d, rx-from-FE %d, notify %d, bounced %d"
      (Stats.Counter.value bc.Be.tx_via_fe)
      (Stats.Counter.value bc.Be.rx_from_fe)
      (Stats.Counter.value bc.Be.notify_received)
      (Stats.Counter.value bc.Be.bounced);
    List.iter
      (fun s ->
        match Controller.fe_service t.Testbed.ctl s with
        | Some fe ->
          let fc = Fe.counters fe in
          say "FE %d: lookups %d, cache hits %d, cached flows %d, rx->BE %d, tx finalized %d" s
            (Stats.Counter.value fc.Fe.rule_lookups)
            (Stats.Counter.value fc.Fe.fast_hits)
            (Fe.cached_flow_count fe)
            (Stats.Counter.value fc.Fe.rx_forwarded)
            (Stats.Counter.value fc.Fe.tx_finalized)
        | None -> ())
      (Controller.offload_fe_servers o);
    dump_metrics metrics t
  in
  Cmd.v
    (Cmd.info "offload" ~doc:"Offload the testbed's heavy vNIC and show the datapath counters.")
    Term.(const run $ seed_arg $ fes_arg $ metrics_arg)

let fleet_cmd =
  let size_arg =
    Arg.(value & opt int 50_000 & info [ "size" ] ~docv:"N" ~doc:"Number of vSwitches to sample.")
  in
  let run seed size =
    let rng = Rng.create seed in
    let fleet = Region.sample_fleet rng ~n:size in
    let cpus = Array.map (fun p -> p.Region.cpu) fleet in
    let mems = Array.map (fun p -> p.Region.mem) fleet in
    let line name arr =
      say "%-6s avg %5.1f%%  P90 %5.1f%%  P99 %5.1f%%  P999 %5.1f%%  P9999 %5.1f%%" name
        (100.0 *. Stats.mean arr)
        (100.0 *. Stats.percentile arr 90.0)
        (100.0 *. Stats.percentile arr 99.0)
        (100.0 *. Stats.percentile arr 99.9)
        (100.0 *. Stats.percentile arr 99.99)
    in
    line "CPU" cpus;
    line "memory" mems;
    let counts = Region.classify Region.default_capacities fleet in
    List.iter
      (fun (cause, n) -> say "hotspots from %-18s: %d" (Format.asprintf "%a" Region.pp_cause cause) n)
      counts
  in
  Cmd.v
    (Cmd.info "fleet" ~doc:"Sample a synthetic region and print its utilization statistics.")
    Term.(const run $ seed_arg $ size_arg)

let status_cmd =
  let run seed metrics =
    let t = Testbed.create ~seed () in
    ignore (Testbed.offload t () : Controller.offload);
    Controller.start t.Testbed.ctl;
    with_metrics metrics t;
    ignore (Testbed.measure_cps t ~duration:2.0 () : float);
    Format.printf "%a@." Controller.pp_status t.Testbed.ctl;
    dump_metrics metrics t
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Offload, run traffic, and print the controller's operator view.")
    Term.(const run $ seed_arg $ metrics_arg)

let pcap_cmd =
  let out_arg =
    Arg.(value & opt string "nezha.pcap" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output capture file.")
  in
  let run seed out =
    let t = Testbed.create ~seed () in
    ignore (Testbed.offload t () : Controller.offload);
    let capture = Nezha_net.Pcap.create () in
    Nezha_fabric.Fabric.set_tap t.Testbed.fabric
      (Some (fun ~time pkt ->
           Nezha_net.Pcap.add capture ~time (Nezha_net.Frame.synthesize pkt)));
    ignore
      (Nezha_workloads.Tcp_crr.start ~sim:t.Testbed.sim ~rng:(Nezha_engine.Rng.split t.Testbed.rng)
         ~vpc:t.Testbed.vpc ~client:t.Testbed.clients.(0) ~server:t.Testbed.server ~rate:50.0
         ~duration:1.0 ()
        : Nezha_workloads.Tcp_crr.t);
    Nezha_engine.Sim.run t.Testbed.sim
      ~until:(Nezha_engine.Sim.now t.Testbed.sim +. 2.0);
    Nezha_net.Pcap.write_file capture out;
    say "wrote %d frames (VXLAN-GPE + NSH on the BE<->FE hops) to %s"
      (Nezha_net.Pcap.packet_count capture) out
  in
  Cmd.v
    (Cmd.info "pcap"
       ~doc:"Capture a short offloaded TCP_CRR run as a Wireshark-readable pcap file.")
    Term.(const run $ seed_arg $ out_arg)

let trace_cmd =
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also record the journey with the flight recorder and write it as \
                 Chrome trace-event JSON (load in chrome://tracing or Perfetto) to $(docv).")
  in
  let run seed json =
    let t = Testbed.create ~seed () in
    let o = Testbed.offload t () in
    Trace.set_enabled t.Testbed.trace true;
    let topo = Nezha_fabric.Fabric.topology t.Testbed.fabric in
    let name_of addr =
      match Nezha_fabric.Topology.server_of_ip topo addr with
      | Some s when s = t.Testbed.heavy_server -> Printf.sprintf "BE(server %d)" s
      | Some s when List.mem s (Controller.offload_fe_servers o) ->
        Printf.sprintf "FE(server %d)" s
      | Some s -> Printf.sprintf "server %d" s
      | None ->
        if Nezha_net.Ipv4.equal addr (Nezha_fabric.Topology.gateway_ip topo) then "gateway"
        else Nezha_net.Ipv4.to_string addr
    in
    let flow =
      Nezha_net.Five_tuple.make ~src:t.Testbed.clients.(0).Nezha_workloads.Tcp_crr.ip
        ~dst:Testbed.heavy_ip ~src_port:47001 ~dst_port:80 ~proto:Nezha_net.Five_tuple.Tcp
    in
    let canon = Nezha_net.Five_tuple.canonical flow in
    say "Tracing one TCP_CRR connection (%s) through the offloaded datapath:"
      (Nezha_net.Five_tuple.to_string flow);
    say "";
    Nezha_fabric.Fabric.set_tap t.Testbed.fabric
      (Some (fun ~time pkt ->
           if
             Nezha_net.Five_tuple.equal
               (Nezha_net.Five_tuple.canonical pkt.Nezha_net.Packet.flow)
               canon
           then begin
             match pkt.Nezha_net.Packet.vxlan with
             | Some v ->
               let meta =
                 match pkt.Nezha_net.Packet.nsh with
                 | Some n ->
                   String.concat ""
                     [
                       (if n.Nezha_net.Packet.carried_state <> None then " +state" else "");
                       (if n.Nezha_net.Packet.carried_pre_actions <> None then " +pre-actions"
                        else "");
                       (if n.Nezha_net.Packet.notify then " NOTIFY" else "");
                     ]
                 | None -> ""
               in
               say "  t=%8.1f us  %-16s -> %-16s  %s [%s]%s"
                 (time *. 1e6)
                 (name_of v.Nezha_net.Packet.outer_src)
                 (name_of v.Nezha_net.Packet.outer_dst)
                 (Nezha_net.Five_tuple.to_string pkt.Nezha_net.Packet.flow)
                 (Format.asprintf "%a" Nezha_net.Packet.pp_flags pkt.Nezha_net.Packet.flags)
                 meta
             | None -> ()
           end));
    (* One full connect/request/response/close exchange. *)
    Nezha_fabric.Vm.set_app t.Testbed.server.Nezha_workloads.Tcp_crr.vm (fun _ pkt ->
        let reply flags payload_len =
          Nezha_vswitch.Vswitch.from_vm t.Testbed.server.Nezha_workloads.Tcp_crr.vs Testbed.heavy_vnic_id
            (Nezha_net.Packet.create ~vpc:t.Testbed.vpc
               ~flow:(Nezha_net.Five_tuple.reverse pkt.Nezha_net.Packet.flow)
               ~direction:Nezha_net.Packet.Tx ~flags ~payload_len ())
        in
        let f = pkt.Nezha_net.Packet.flags in
        if f.Nezha_net.Packet.syn then reply Nezha_net.Packet.syn_ack 0
        else if pkt.Nezha_net.Packet.payload_len > 0 then reply Nezha_net.Packet.ack 512
        else if f.Nezha_net.Packet.fin then reply Nezha_net.Packet.fin_ack 0);
    Nezha_fabric.Vm.set_app t.Testbed.clients.(0).Nezha_workloads.Tcp_crr.vm (fun _ pkt ->
        let reply flags payload_len =
          Nezha_vswitch.Vswitch.from_vm t.Testbed.clients.(0).Nezha_workloads.Tcp_crr.vs
            t.Testbed.clients.(0).Nezha_workloads.Tcp_crr.vnic
            (Nezha_net.Packet.create ~vpc:t.Testbed.vpc
               ~flow:(Nezha_net.Five_tuple.reverse pkt.Nezha_net.Packet.flow)
               ~direction:Nezha_net.Packet.Tx ~flags ~payload_len ())
        in
        let f = pkt.Nezha_net.Packet.flags in
        if f.Nezha_net.Packet.syn && f.Nezha_net.Packet.ack then
          reply Nezha_net.Packet.ack 64
        else if pkt.Nezha_net.Packet.payload_len > 0 then reply Nezha_net.Packet.fin_ack 0);
    let t0 = Nezha_engine.Sim.now t.Testbed.sim in
    ignore t0;
    Nezha_vswitch.Vswitch.from_vm t.Testbed.clients.(0).Nezha_workloads.Tcp_crr.vs
      t.Testbed.clients.(0).Nezha_workloads.Tcp_crr.vnic
      (Nezha_net.Packet.create ~vpc:t.Testbed.vpc ~flow ~direction:Nezha_net.Packet.Tx
         ~flags:Nezha_net.Packet.syn ());
    Nezha_engine.Sim.run t.Testbed.sim ~until:(Nezha_engine.Sim.now t.Testbed.sim +. 1.0);
    say "";
    say "Every hop between client and VM detours once through an FE: RX packets";
    say "pick up pre-actions there; TX packets carry the BE's state to be finalized.";
    match json with
    | None -> ()
    | Some path ->
      let tr = t.Testbed.trace in
      Trace.set_enabled tr false;
      let doc = Trace.to_chrome_json tr in
      let text = Json.to_string_pretty doc in
      (* Self-check: the exported document must round-trip through the
         in-tree parser unchanged. *)
      (match Json.of_string text with
      | Ok reread when Json.equal reread doc -> ()
      | Ok _ -> failwith "trace --json self-check: document changed across a round-trip"
      | Error e -> failwith ("trace --json self-check: written JSON does not parse: " ^ e));
      (try
         let oc = open_out path in
         output_string oc text;
         output_string oc "\n";
         close_out oc
       with Sys_error e ->
         Printf.eprintf "nezha_sim: cannot write %s: %s\n" path e;
         exit 1);
      say "";
      say "wrote %d spans over %d traces (Chrome trace-event JSON) to %s"
        (Trace.span_count tr)
        (List.length (Trace.trace_ids tr))
        path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a single connection's hop-by-hop journey across the BE/FE split \
             (optionally exporting the flight recorder as Chrome trace-event JSON).")
    Term.(const run $ seed_arg $ json_arg)

let chaos_cmd =
  let loss_arg =
    Arg.(value & opt float 0.005 & info [ "loss" ] ~docv:"P"
           ~doc:"Underlay drop probability at full ramp (default 0.5%).")
  in
  let no_partition_arg =
    Arg.(value & flag & info [ "no-partition" ]
           ~doc:"Skip the hard partition of a surviving FE's server at t=6s.")
  in
  let duration_arg =
    Arg.(value & opt float 13.0 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Load duration (the fault schedule assumes at least 13 s).")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the full result (samples included) as JSON to $(docv).")
  in
  let check_arg =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Exit non-zero unless the loss recovered after healing and the \
                 BE's offload-tracker conservation invariant holds.")
  in
  let chaos_seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic random seed.")
  in
  let run seed loss no_partition duration json check =
    let r =
      Experiments.chaos ~seed ~loss ~partition:(not no_partition) ~duration ()
    in
    say "chaos (seed %d, %.2f%% loss%s):" seed (loss *. 100.0)
      (if no_partition then "" else ", partition at t=6s");
    say "  connections: offered %d, established %d, completed %d" r.Experiments.offered
      r.Experiments.established r.Experiments.completed;
    say "  BE tracker: tracked %d = acked %d + local-fallback %d + dropped %d + outstanding %d  %s"
      r.Experiments.tracked r.Experiments.acked r.Experiments.local_fallbacks
      r.Experiments.dropped r.Experiments.outstanding_end
      (if r.Experiments.conservation_ok then "[ok]" else "[VIOLATED]");
    say "  recovery: timeouts %d, retx %d (re-steered %d), local bypass %d, untracked %d"
      r.Experiments.timeouts r.Experiments.retx r.Experiments.resteered
      r.Experiments.local_bypass r.Experiments.untracked;
    say "  fault plane: %d probabilistic drops, %d partition drops" r.Experiments.injected_drops
      r.Experiments.partition_drops;
    say "  monitor: %d FE failures declared, %d mass-failure suppressions"
      r.Experiments.fe_failures_declared r.Experiments.mass_suspected;
    say "  end-window loss %.3f%% -> %s" (r.Experiments.end_loss *. 100.0)
      (if r.Experiments.recovered then "recovered" else "NOT RECOVERED");
    (match json with
    | None -> ()
    | Some path ->
      (* The run's input parameters, then the shared result encoding: the
         nezha-chaos/1 schema is the concatenation of the two. *)
      let inputs =
        [
          ("schema", Json.String "nezha-chaos/1");
          ("seed", Json.Int seed);
          ("loss", Json.Float loss);
          ("partition", Json.Bool (not no_partition));
          ("duration", Json.Float duration);
        ]
      in
      let j =
        match Experiments.json_of_chaos_result r with
        | Json.Obj fields -> Json.Obj (inputs @ fields)
        | other -> Json.Obj (inputs @ [ ("result", other) ])
      in
      (try
         let oc = open_out path in
         output_string oc (Json.to_string_pretty j);
         output_string oc "\n";
         close_out oc;
         say "wrote %s" path
       with Sys_error e ->
         Printf.eprintf "nezha_sim: cannot write %s: %s\n" path e;
         exit 1));
    if check && not (r.Experiments.recovered && r.Experiments.conservation_ok) then begin
      Printf.eprintf "nezha_sim chaos: check FAILED (recovered=%b conservation_ok=%b)\n"
        r.Experiments.recovered r.Experiments.conservation_ok;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the scripted fault-injection scenario (loss ramp, FE crash, partition, heal) \
             and report how the BE/monitor recovered.")
    Term.(const run $ chaos_seed_arg $ loss_arg $ no_partition_arg $ duration_arg $ json_arg $ check_arg)

let list_cmd =
  let run () =
    say "experiments (run with: dune exec bench/main.exe -- NAME):";
    List.iter (fun n -> say "  %s" n)
      [ "fig2"; "fig3"; "fig4"; "table1"; "fig9"; "fig10"; "fig11"; "fig12"; "table3";
        "table4"; "fig13"; "fig14"; "fig15"; "table5"; "tableA1"; "figA1"; "appB2";
        "ablations"; "micro" ]
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.") Term.(const run $ const ())

let () =
  let doc = "Nezha (SIGCOMM'25) reproduction: SmartNIC vSwitch load sharing, simulated" in
  let info = Cmd.info "nezha_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ cps_cmd; flows_cmd; offload_cmd; fleet_cmd; pcap_cmd; trace_cmd; status_cmd; chaos_cmd; list_cmd ]))
