#!/bin/sh
# CI-style gate: build, run the test suite, then exercise the bench's
# machine-readable mode and make sure its output is real JSON with the
# sections the schema promises.
#
#   bench/check.sh [OUT.json]      (default /tmp/nezha_bench_check.json)
#   bench/check.sh --smoke         quick mode: build + the SLO elastic
#                                  control-plane gate at reduced scale
#                                  (tier-1 time budget; same assertions
#                                  as the full macro SLO gate)
set -eu

cd "$(dirname "$0")/.."

# SLO elastic-control-plane gate (ROADMAP item 4), shared by the full
# macro run and the --smoke target.  Asserts: the offered load really
# ramped x10; the pool followed it up AND back down; P99 stayed within
# the hysteresis budget for most post-warmup ticks; no decision
# oscillations; and under the injected rack partition the Sec C.2
# suppression window froze the pool (zero moves) while visibly engaged.
#   $1 = json file   $2 = experiment key holding the "slo" object
#   $3 = min clean within-budget fraction   $4 = min chaos fraction
slo_gate() {
  python3 - "$1" "$2" "$3" "$4" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
slo = doc["experiments"][sys.argv[2]]["slo"]
min_clean, min_chaos = float(sys.argv[3]), float(sys.argv[4])
clean, chaos = slo["clean"], slo["chaos"]
assert clean["offered_ratio"] >= 9.9, \
    "offered load ramped %.2fx < 9.9x" % clean["offered_ratio"]
assert clean["pool_max"] >= 5 * clean["pool_min"], \
    "pool did not follow the ramp up: max %d < 5 x min %d" \
    % (clean["pool_max"], clean["pool_min"])
assert clean["pool_at_peak"] >= 3 * clean["pool_min"], \
    "pool at load peak %d < 3 x min %d" % (clean["pool_at_peak"], clean["pool_min"])
assert clean["pool_at_end"] <= clean["pool_min"] + 1, \
    "pool did not scale back in: end %d > min %d + 1" \
    % (clean["pool_at_end"], clean["pool_min"])
assert clean["scale_outs"] > 0 and clean["scale_ins"] > 0, \
    "loop inert: %d scale-outs, %d scale-ins" \
    % (clean["scale_outs"], clean["scale_ins"])
assert clean["within_budget_fraction"] >= min_clean, \
    "P99 within budget only %.1f%% of ticks (gate >= %.0f%%)" \
    % (100 * clean["within_budget_fraction"], 100 * min_clean)
assert clean["oscillations"] == 0, \
    "%d decision oscillation(s) in the clean ramp" % clean["oscillations"]
assert chaos["pool_moves_in_partition"] == 0, \
    "pool flapped under the rack partition: %d move(s) inside the window" \
    % chaos["pool_moves_in_partition"]
assert chaos["oscillations"] == 0, \
    "%d decision oscillation(s) in the chaos run" % chaos["oscillations"]
assert chaos["suppressed_ticks"] > 0 and chaos["partition_suspects_max"] > 0, \
    "suppression never engaged: %d suppressed ticks, %d max suspects" \
    % (chaos["suppressed_ticks"], chaos["partition_suspects_max"])
assert chaos["within_budget_fraction"] >= min_chaos, \
    "chaos P99 within budget only %.1f%% of ticks (gate >= %.0f%%)" \
    % (100 * chaos["within_budget_fraction"], 100 * min_chaos)
assert slo["deterministic"] is True, \
    "same-seed SLO rerun diverged: digest %d vs rerun %d" \
    % (clean["digest"], slo["rerun_digest"])
print("ok: ramp x%.1f, pool %d..%d (peak %d, back to %d); within budget "
      "%.1f%% clean / %.1f%% chaos; oscillations 0; partition froze the pool "
      "(%d suppressed ticks, %d suspects)"
      % (clean["offered_ratio"], clean["pool_min"], clean["pool_max"],
         clean["pool_at_peak"], clean["pool_at_end"],
         100 * clean["within_budget_fraction"],
         100 * chaos["within_budget_fraction"],
         chaos["suppressed_ticks"], chaos["partition_suspects_max"]))
PY
}

if [ "${1:-}" = "--smoke" ]; then
  echo "== dune build"
  dune build
  smoke_out=/tmp/nezha_slo_smoke.json
  echo "== bench slo_smoke --json ($smoke_out)"
  dune exec --no-build bench/main.exe -- slo_smoke --json "$smoke_out"
  echo "== SLO elastic control-plane gate (reduced scale)"
  if command -v python3 >/dev/null 2>&1; then
    slo_gate "$smoke_out" slo_smoke 0.75 0.60
  else
    echo "python3 not found; relying on the bench's built-in round-trip check"
  fi
  echo "== smoke checks passed"
  exit 0
fi

out="${1:-/tmp/nezha_bench_check.json}"

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench --json ($out)"
dune exec --no-build bench/main.exe -- fig9 --json "$out"

echo "== validating $out"
# The bench already re-parses its own output with the in-tree JSON
# parser before it exits (and fails loudly if that round-trip breaks);
# cross-check with an independent parser when one is around.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "nezha-bench/1", doc.get("schema")
fig9 = doc["experiments"]["fig9"]
assert len(fig9["gains"]) >= 1, \
    "expected >= 1 gain row, got %d" % len(fig9["gains"])
for side in ("without", "with"):
    s = fig9["latency_us"][side]
    for k in ("count", "p50", "p99", "p9999"):
        assert k in s, \
            "latency_us[%s] missing %r (has %s)" % (side, k, sorted(s))
print("ok:", len(fig9["gains"]), "gain rows; latency summaries present")
PY
else
  echo "python3 not found; relying on the bench's built-in round-trip check"
fi

echo "== bench micro --json (BENCH_micro.json)"
dune exec --no-build bench/main.exe -- micro --json BENCH_micro.json

echo "== validating BENCH_micro.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_micro.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "nezha-bench/1", doc.get("schema")
micro = doc["experiments"]["micro"]
ns = micro["ns_per_op"]
for k in ("acl_linear_1k", "acl_tss_1k", "acl_cached_1k", "five_tuple_hash",
          "lpm_lookup_1k", "flow_table_insert", "flow_table_find"):
    assert k in ns and ns[k] == ns[k] and ns[k] > 0.0, \
        "%s not a positive ns/op: %r" % (k, ns.get(k))  # present, not NaN
# The whole point of the classifier backends: TSS and the megaflow
# cache must beat the linear scan at 1k rules.
assert ns["acl_tss_1k"] < ns["acl_linear_1k"], (ns["acl_tss_1k"], ns["acl_linear_1k"])
assert ns["acl_cached_1k"] < ns["acl_linear_1k"], (ns["acl_cached_1k"], ns["acl_linear_1k"])
print("ok: micro ns/op sane; tss %.1fx and cached %.1fx faster than linear"
      % (ns["acl_linear_1k"] / ns["acl_tss_1k"], ns["acl_linear_1k"] / ns["acl_cached_1k"]))
PY
else
  echo "python3 not found; relying on the bench's built-in round-trip check"
fi

echo "== learned classifier gate (learned must beat tss at >= 10k rules, memory reported)"
# The learned backend's claim (DESIGN.md §14): at 10k+ rules the
# range-model index answers in a bounded error window while TSS pays
# one hash probe per tuple shape, so learned must be strictly faster at
# 10k and 100k, and every backend x scale cell must report its index
# memory footprint.
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_micro.json <<'PY'
import json, sys
micro = json.load(open(sys.argv[1]))["experiments"]["micro"]
ns, mem = micro["ns_per_op"], micro["memory_bytes"]
scales = micro["acl_rule_scales"]
assert scales == [1000, 10000, 100000], scales
for backend in ("linear", "tss", "learned"):
    for scale in ("1k", "10k", "100k"):
        k = "acl_%s_%s" % (backend, scale)
        assert k in ns and ns[k] == ns[k] and ns[k] > 0.0, \
            "%s not a positive ns/op: %r" % (k, ns.get(k))
        assert k in mem and mem[k] > 0, \
            "%s not a positive memory_bytes: %r" % (k, mem.get(k))
for scale in ("10k", "100k"):
    t, l = ns["acl_tss_" + scale], ns["acl_learned_" + scale]
    assert l < t, "learned lost to tss at %s: %.1f >= %.1f ns" % (scale, l, t)
    print("  %-5s learned %7.1f ns vs tss %7.1f ns (%.2fx), index %.1f vs %.1f MB"
          % (scale, l, t, t / l,
             mem["acl_learned_" + scale] / 1e6, mem["acl_tss_" + scale] / 1e6))
print("ok: learned beats tss at 10k and 100k; memory_bytes present for all 9 cells")
PY
else
  echo "python3 not found; skipping learned classifier gate"
fi

echo "== batch sweep gate (flow-key grouping must win ns/packet at batch >= 32)"
# The batched dataplane's claim: grouping a burst by flow key amortizes
# the per-flow resolution, so ns/packet at batch 32 must beat batch-of-1
# (geometric mean across the grouped kernels).
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_micro.json <<'PY'
import json, math, sys
sweep = json.load(open(sys.argv[1]))["experiments"]["micro"]["batch_sweep"]
assert set(sweep) == {"cached", "tss", "flow_table"}, sorted(sweep)
ratios = []
for path, pts in sorted(sweep.items()):
    for n in ("1", "8", "32", "128"):
        assert n in pts and pts[n] == pts[n] and pts[n] > 0.0, \
            "%s batch %s not a positive ns/packet: %r" % (path, n, pts.get(n))
    r = pts["1"] / pts["32"]
    print("  %-12s batch1 %7.1f -> batch32 %7.1f ns/packet (%.2fx)" % (path, pts["1"], pts["32"], r))
    ratios.append(r)
geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
assert geomean > 1.0, "batching lost its amortization win: geomean %.3fx" % geomean
print("ok: geomean %.2fx ns/packet win at batch 32 (gate: > 1.0x)" % geomean)
PY
else
  echo "python3 not found; skipping batch sweep gate"
fi

echo "== trace overhead gate (tracing disabled must stay within 3% of baseline)"
# The tracer is off by default and claims to be zero-cost when disabled:
# hold the fresh micro numbers to within 3% (geometric mean over shared
# benchmarks) of the committed BENCH_micro.json baseline.
if command -v python3 >/dev/null 2>&1; then
  base=/tmp/nezha_micro_baseline.json
  if git show HEAD:BENCH_micro.json >"$base" 2>/dev/null; then
    python3 - "$base" BENCH_micro.json <<'PY'
import json, math, sys
base = json.load(open(sys.argv[1]))["experiments"]["micro"]["ns_per_op"]
cur = json.load(open(sys.argv[2]))["experiments"]["micro"]["ns_per_op"]
shared = sorted(set(base) & set(cur))
assert shared, "no shared benchmarks between baseline and current run"
ratios = {k: cur[k] / base[k] for k in shared if base[k] > 0.0}
geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
for k in sorted(ratios, key=ratios.get, reverse=True)[:3]:
    print("  %-20s %8.1f -> %8.1f ns/op (%.3fx)" % (k, base[k], cur[k], ratios[k]))
assert geomean <= 1.03, "tracing-disabled overhead: geomean %.3fx > 1.03x" % geomean
print("ok: geomean %.3fx over %d benchmarks (gate: <= 1.03x)" % (geomean, len(ratios)))
PY
  else
    echo "no committed BENCH_micro.json baseline (first run?); skipping"
  fi
else
  echo "python3 not found; skipping overhead gate"
fi

echo "== bench macro --json (BENCH_macro.json)"
dune exec --no-build bench/main.exe -- macro --json BENCH_macro.json

echo "== macro gate (region scale + tuned-engine speedup + RSS ceiling)"
# The region-scale engine's claims: the tuned engine (timer wheel +
# pooled events, sharded heaps) must process events at least 2x faster
# than the classic single-heap engine on the same 2,000-vSwitch region
# day; the run must be deterministic and shard-count-invariant; Nezha
# must resolve overloads in simulated time; and the whole run must fit
# in a bounded heap.
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_macro.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "nezha-bench/1", doc.get("schema")
macro = doc["experiments"]["macro"]
region = macro["region"]
before, after = region["before"], region["after"]
assert before["vswitches"] >= 2000, \
    "region too small: %d vswitches < 2000" % before["vswitches"]
assert before["events"] >= 1_000_000, \
    "region too quiet: %d events < 1e6" % before["events"]
assert after["overloads"] < before["overloads"], \
    "controller did not reduce overloads: before %d, after %d" \
    % (before["overloads"], after["overloads"])
assert after["activations"] > 0, \
    "controller never activated an offload: %d activations" % after["activations"]
assert macro["deterministic"] is True, \
    "same-seed rerun diverged: sweep digest vs region digest %d" % after["digest"]
assert macro["shard_equivalent"] is True, \
    "digest depends on shard count: %s" \
    % {(p["shards"], p["engine"]): p["digest"] for p in macro["sweep"]}
sweep = {(p["shards"], p["engine"]): p for p in macro["sweep"]}
base = sweep[(1, "heap")]
tuned = max((p for (s, e), p in sweep.items() if e == "wheel" and s > 1),
            key=lambda p: p["events_per_sec"])
speedup = tuned["events_per_sec"] / base["events_per_sec"]
assert speedup >= 2.0, "tuned engine speedup %.2fx < 2.0x" % speedup
rss = macro["peak_rss_bytes"]
assert rss <= 1 << 30, "peak RSS %d bytes > 1 GiB ceiling" % rss
print("ok: %d vswitches, %d events; overloads %d -> %d (%.1f%% resolved); "
      "speedup %.2fx (gate >= 2.0x); peak rss %.0f MB (gate <= 1024 MB)"
      % (before["vswitches"], before["events"], before["overloads"],
         after["overloads"], region["resolved_pct"], speedup, rss / 1048576))
PY
else
  echo "python3 not found; relying on the bench's built-in round-trip check"
fi

echo "== crash-storm gate (MTTR P99 bound, zero post-convergence blackholes, pool conservation)"
# DESIGN.md §13: a region-scale crash storm (plus one controller
# failover) must converge — P99 crash->intent-restored under 2 s, zero
# blackholed demand after the convergence deadline, byte-identical
# same-seed reruns — and 100 crash/restart cycles on the small testbed
# must leak nothing: controller and BE conservation invariants hold and
# every Pbatch arena batch allocated during the storm is recycled.
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_macro.json <<'PY'
import json, sys
macro = json.load(open(sys.argv[1]))["experiments"]["macro"]
storm = macro["storm"]["storm"]
assert storm["crashes"] > 20, "storm too small: %d crashes" % storm["crashes"]
assert storm["restarts"] == storm["crashes"], \
    "restart/crash mismatch: %d restarts vs %d crashes" \
    % (storm["restarts"], storm["crashes"])
assert storm["ctl_takeovers"] == 1, \
    "expected exactly 1 controller takeover, got %d" % storm["ctl_takeovers"]
assert storm["mttr_p99_s"] > 0.0 and storm["mttr_p99_s"] <= 2.0, \
    "MTTR P99 %.3f s out of (0, 2]" % storm["mttr_p99_s"]
assert storm["late_blackholed"] == 0, \
    "%d blackholed ticks after convergence" % storm["late_blackholed"]
assert macro["storm"]["deterministic"] is True, \
    "same-seed storm rerun diverged: digest %d vs rerun %d" \
    % (macro["storm"]["storm"]["digest"], macro["storm"]["rerun_digest"])
cc = macro["crash_cycles"]
assert cc["cycles"] >= 100, "expected >= 100 cycles, got %d" % cc["cycles"]
assert cc["crashes"] >= 100 and cc["restarts"] == cc["crashes"], \
    "cycle crash/restart mismatch: %d crashes vs %d restarts" \
    % (cc["crashes"], cc["restarts"])
assert cc["conservation_ok"] is True, \
    "controller conservation invariant broken (conservation_ok=%r)" % cc["conservation_ok"]
assert cc["be_conservation_ok"] is True, \
    "BE tracked-send conservation broken (be_conservation_ok=%r)" % cc["be_conservation_ok"]
assert cc["batches_leaked"] == 0, "%d Pbatch arena batches leaked" % cc["batches_leaked"]
assert cc["final_cps"] > 0.0, "no traffic after the storm"
print("ok: %d crashes, MTTR P50 %.3fs P99 %.3fs (gate <= 2s), late blackholes 0, "
      "takeovers 1; %d cycles conserve pools (leaked 0), final cps %.0f"
      % (storm["crashes"], storm["mttr_p50_s"], storm["mttr_p99_s"],
         cc["cycles"], cc["final_cps"]))
PY
else
  echo "python3 not found; relying on the bench's built-in checks"
fi

echo "== SLO elastic control-plane gate (P99 budget held across a x10 ramp, no flapping under partition)"
if command -v python3 >/dev/null 2>&1; then
  slo_gate BENCH_macro.json macro 0.90 0.80
else
  echo "python3 not found; relying on the bench's built-in round-trip check"
fi

echo "== chaos smoke (0.5% underlay loss + crash + partition)"
# --check exits non-zero unless the run recovered (end-window loss <= 1%)
# and the BE tracker conservation invariant held, so this gate works even
# without python3.
chaos_out=/tmp/nezha_chaos_check.json
dune exec --no-build bin/nezha_sim.exe -- chaos --loss 0.005 --check --json "$chaos_out"

echo "== validating $chaos_out"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$chaos_out" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "nezha-chaos/1", doc.get("schema")
assert doc["recovered"] is True, \
    "chaos run did not recover: end_loss %.4f" % doc["end_loss"]
assert doc["conservation_ok"] is True, \
    "BE conservation broken (conservation_ok=%r)" % doc["conservation_ok"]
assert doc["tracked"] == (doc["acked"] + doc["local_fallbacks"]
                          + doc["dropped"] + doc["outstanding_end"]), \
    "tracked %d != acked %d + fallbacks %d + dropped %d + outstanding %d" \
    % (doc["tracked"], doc["acked"], doc["local_fallbacks"],
       doc["dropped"], doc["outstanding_end"])
assert doc["injected_drops"] > 0 and doc["partition_drops"] > 0, \
    "chaos injected nothing: %d loss drops, %d partition drops" \
    % (doc["injected_drops"], doc["partition_drops"])
assert len(doc["samples"]) > 40, \
    "expected > 40 samples, got %d" % len(doc["samples"])
print("ok: recovered (end loss %.4f), conservation holds over %d tracked sends"
      % (doc["end_loss"], doc["tracked"]))
PY
else
  echo "python3 not found; relying on the CLI's --check gate"
fi

echo "== all checks passed"
