(* The reproduction harness: one section per table and figure of the
   paper's evaluation, each printing the paper's reported values next to
   what this implementation measures.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe fig9 table3     run selected experiments
     bench/main.exe micro           Bechamel microbenchmarks of the core
                                    data structures
     bench/main.exe macro           region-scale engine benchmark: the
                                    Fig. 13 before/after run plus an
                                    engine-mode / shard-count sweep
     bench/main.exe --list          list experiment names
     bench/main.exe --json FILE     machine-readable mode: write the
                                    JSON-capable experiments (fig9 gains
                                    plus latency summaries, table4, and
                                    the micro ns/op numbers) to FILE
                                    instead of printing tables *)

open Nezha_engine
open Nezha_workloads
open Nezha_harness
open Nezha_core
open Nezha_telemetry

let banner title = Printf.printf "\n==== %s ====\n%!" title

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Testbed experiments (§6.2) *)

let fig9 () =
  banner
    "Fig. 9 — performance gain vs #FEs (paper: CPS ~3.3x and #flows ~3.8x plateau beyond 4 FEs; #vNICs proportional to #FEs)";
  note "%4s  %10s  %12s  %12s" "#FEs" "CPS gain" "#flows gain" "#vNICs gain";
  List.iter
    (fun r ->
      note "%4d  %9.2fx  %11.2fx  %11.2fx" r.Experiments.fes r.Experiments.cps_gain
        r.Experiments.flows_gain r.Experiments.vnics_gain)
    (Experiments.fig9 ~fes_list:[ 1; 2; 3; 4; 6; 8 ] ());
  note "#vNICs on the paper's wider axis (every vNIC's tables replicate on min(4, #FEs) FEs):";
  note "  %s"
    (String.concat "  "
       (List.map
          (fun (fes, g) -> Printf.sprintf "%d FEs: %.0fx" fes g)
          (Experiments.fig9_vnics ())))

let fig10 () =
  banner
    "Fig. 10 — CPS vs #vCPUs in the VM (paper: without Nezha flat at the vSwitch cap; with Nezha grows sublinearly, ~3.25x from 8 to 64 cores)";
  note "%6s  %14s  %14s" "vCPUs" "CPS w/o Nezha" "CPS w/ Nezha";
  List.iter
    (fun r ->
      note "%6d  %14.0f  %14.0f" r.Experiments.vcpus r.Experiments.cps_without
        r.Experiments.cps_with)
    (Experiments.fig10 ())

let fig11 () =
  banner
    "Fig. 11 — CPU utilization during offloading/scaling (paper: BE climbs to 70% -> offload to 4 FEs -> BE ~10%; FE >40% -> scale-out to 8)";
  note "%6s  %8s  %7s  %7s  %5s" "t(s)" "CPS" "BE cpu" "FE cpu" "#FEs";
  List.iter
    (fun p ->
      if int_of_float (p.Experiments.t *. 2.0) mod 4 = 0 then
        note "%6.1f  %8.0f  %7.2f  %7.2f  %5d" p.Experiments.t p.Experiments.cps
          p.Experiments.be_cpu p.Experiments.fe_cpu p.Experiments.n_fes)
    (Experiments.fig11 ())

let fig12 () =
  banner
    "Fig. 12 — end-to-end latency vs load (paper: identical <70%; small extra-hop cost after offload; without Nezha explodes past capacity)";
  note "%6s  %14s  %14s  %10s  %10s" "load" "w/o Nezha (us)" "w/ Nezha (us)" "loss w/o" "loss w/";
  List.iter
    (fun r ->
      note "%6.2f  %14.1f  %14.1f  %10.3f  %10.3f" r.Experiments.load
        r.Experiments.lat_without_us r.Experiments.lat_with_us r.Experiments.lost_without
        r.Experiments.lost_with)
    (Experiments.fig12 ())

(* fig12 --attribute: the same probe, with the flight recorder on and the
   percentiles split into local vs remote-hop components (rank-based, so
   local + remote = e2e by the conservation invariant). *)
let fig12_attr () =
  banner
    "Fig. 12 --attribute — P50/P99 latency split into local vs remote-hop components (local + remote = e2e)";
  note "%6s  %-8s  %7s  %28s  %28s" "load" "variant" "traces"
    "P50 e2e = local + remote (us)" "P99 e2e = local + remote (us)";
  let line load variant (s : Experiments.latency_split) =
    note "%6.2f  %-8s  %7d  %9.1f = %7.1f + %6.1f  %9.1f = %7.1f + %6.1f" load variant
      s.Experiments.traces s.Experiments.p50_us s.Experiments.p50_local_us
      s.Experiments.p50_remote_us s.Experiments.p99_us s.Experiments.p99_local_us
      s.Experiments.p99_remote_us
  in
  List.iter
    (fun r ->
      line r.Experiments.attr_load "w/o" r.Experiments.without_nezha;
      line r.Experiments.attr_load "w/" r.Experiments.with_nezha)
    (Experiments.fig12_attribute ())

let table3 () =
  banner
    "Table 3 — middlebox gains (paper: CPS 4x/4.4x/3x; #vNICs >40x; #flows 5.04x/50.4x/15.3x)";
  note "%-16s  %9s  %12s  %12s" "middlebox" "CPS gain" "#vNICs gain" "#flows gain";
  List.iter
    (fun r ->
      note "%-16s  %8.2fx  %11.1fx  %11.2fx"
        (Middlebox.to_string r.Experiments.kind)
        r.Experiments.cps_gain r.Experiments.vnics_gain r.Experiments.flows_gain)
    (Experiments.table3 ())

let table4 () =
  banner
    "Table 4 — completion time for activating offloading (paper: avg 1077 / P90 1503 / P99 2087 / P999 2858 ms)";
  let h = Experiments.table4 ~events:250 () in
  note "measured (ms): avg %.0f / P90 %.0f / P99 %.0f / P999 %.0f over %d activations"
    (Stats.Histogram.mean h)
    (Stats.Histogram.percentile h 90.0)
    (Stats.Histogram.percentile h 99.0)
    (Stats.Histogram.percentile h 99.9)
    (Stats.Histogram.count h)

let fig14 () =
  banner
    "Fig. 14 — packet loss during FE crash (paper: a surge lasting ~2 s, bounded by the dead FE's 1/M traffic share)";
  note "%6s  %9s" "t(s)" "loss rate";
  List.iter
    (fun (t, loss) -> if t >= 3.0 && t <= 9.0 then note "%6.2f  %9.3f" t loss)
    (Experiments.fig14 ())

let tableA1 () =
  banner
    "Table A1 — rule-lookup throughput in Mpps (paper: 6.61 at 64B/0 rules, declining to 4.76 at 512B/1000 rules)";
  let rows = Experiments.tableA1 () in
  (match rows with
  | (_, cols) :: _ ->
    note "%9s %s" "pkt\\rules"
      (String.concat "" (List.map (fun (n, _) -> Printf.sprintf "%9d" n) cols))
  | [] -> ());
  List.iter
    (fun (size, cols) ->
      note "%8dB %s" size
        (String.concat "" (List.map (fun (_, mpps) -> Printf.sprintf "%8.3fM" mpps) cols)))
    rows

let appB2 () =
  banner
    "App. B.2 — 30-day scale-out accounting (paper: 2499 offloads, 10062 FEs, <=66 scale-outs = 2.6%)";
  let r = Experiments.appB2 () in
  note "measured: %d offloads, %d FEs provisioned, %d scale-outs (%.1f%%)"
    r.Experiments.offload_events r.Experiments.fes_provisioned r.Experiments.scale_out_events
    (100.0 *. r.Experiments.scale_out_ratio)

(* ------------------------------------------------------------------ *)
(* Fleet experiments (§2.2, §6.3) *)

let fig2 () =
  banner
    "Fig. 2 — CPU of high-CPS VMs vs their vSwitches (paper: vSwitch >95% everywhere; 90% of VMs <60%)";
  let rng = Rng.create 42 in
  let pts = Region.high_cps_vm_sample rng ~n:10_000 in
  let vm_cpu = Array.map fst pts and sw_cpu = Array.map snd pts in
  note "vSwitch CPU: min %.1f%%  (all >= 95%%)" (100.0 *. Array.fold_left Float.min 1.0 sw_cpu);
  let below60 = Array.fold_left (fun a v -> if v < 0.6 then a + 1 else a) 0 vm_cpu in
  note "VM CPU: P50 %.0f%%, share below 60%% = %.0f%%"
    (100.0 *. Stats.percentile vm_cpu 50.0)
    (100.0 *. float_of_int below60 /. 10_000.0)

let fig3 () =
  banner "Fig. 3 — hotspot distribution (paper: CPS ~61%, #flows ~30%, #vNICs ~9%)";
  let rng = Rng.create 42 in
  let fleet = Region.sample_fleet rng ~n:100_000 in
  let counts = Region.classify Region.default_capacities fleet in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  List.iter
    (fun (cause, n) ->
      note "%-18s %5.1f%%  (%d vSwitches)"
        (Format.asprintf "%a" Region.pp_cause cause)
        (100.0 *. float_of_int n /. float_of_int (max 1 total))
        n)
    counts

let fig4 () =
  banner
    "Fig. 4 — utilization CDF over O(10K) vSwitches (paper CPU: avg 5 / P90 15 / P99 41 / P999 68 / P9999 90%; mem: 1.5 / 15 / 34 / 93 / 96%)";
  let rng = Rng.create 42 in
  let fleet = Region.sample_fleet rng ~n:50_000 in
  let report name arr =
    note "%-6s avg %4.1f%%  P90 %4.1f%%  P99 %4.1f%%  P999 %4.1f%%  P9999 %4.1f%%" name
      (100.0 *. Stats.mean arr)
      (100.0 *. Stats.percentile arr 90.0)
      (100.0 *. Stats.percentile arr 99.0)
      (100.0 *. Stats.percentile arr 99.9)
      (100.0 *. Stats.percentile arr 99.99)
  in
  report "CPU" (Array.map (fun p -> p.Region.cpu) fleet);
  report "memory" (Array.map (fun p -> p.Region.mem) fleet)

let table1 () =
  banner "Table 1 — service usage share of the P9999 user (paper: CPS 0.53/1.41/6.41/18.38/100%)";
  note "%-8s %8s %8s %8s %8s %8s" "" "P50" "P90" "P99" "P999" "P9999";
  let row name q =
    note "%-8s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%%" name (100.0 *. q 0.5) (100.0 *. q 0.9)
      (100.0 *. q 0.99) (100.0 *. q 0.999) (100.0 *. q 0.9999)
  in
  row "CPS" Region.cps_demand_quantile;
  row "#flows" Region.flows_demand_quantile;
  row "#vNICs" Region.vnics_demand_quantile

let fig13 () =
  banner
    "Fig. 13 — daily overloads before/after Nezha (paper: >99.9% resolved for CPS and #flows; 100% for #vNICs)";
  let rng = Rng.create 42 in
  List.iter
    (fun cause ->
      let days =
        Region.daily_overloads rng ~n_vswitches:20_000 ~capacities:Region.default_capacities
          ~cause ~days:30 ()
      in
      let before = List.fold_left (fun a d -> a + d.Region.before) 0 days in
      let after = List.fold_left (fun a d -> a + d.Region.after) 0 days in
      note "%-18s before: %5d/month   after: %3d/month   resolved: %.2f%%"
        (Format.asprintf "%a" Region.pp_cause cause)
        before after
        (100.0 *. (1.0 -. (float_of_int after /. float_of_int (max 1 before)))))
    [ Region.Cps; Region.Flows; Region.Vnics ]

let fig15 () =
  banner "Fig. 15 — average state size (paper: 5-8 B vs the fixed 64 B slot)";
  let rng = Rng.create 42 in
  for region = 1 to 5 do
    let sizes = Region.state_size_samples (Rng.split rng) ~n:20_000 in
    note "region %d: avg %.1f B (max %.0f B, slot 64 B)" region (Stats.mean sizes)
      (Array.fold_left Float.max 0.0 sizes)
  done

let table5 () =
  banner
    "Table 5 — deployment costs (paper: Sailfish 100+48+20 P-M, 1-3 months to scale out; Nezha 15 P-M, 1-7 days)";
  List.iter
    (fun sol ->
      let c = Costs.cost_of sol in
      note "%-9s hw %3.0f P-M  sw %3.0f P-M  iteration %3.0f P-M  scale-out %g-%g days"
        (Format.asprintf "%a" Costs.pp_solution sol)
        c.Costs.hardware_dev_pm c.Costs.software_dev_pm c.Costs.iteration_pm
        c.Costs.scale_out_days_min c.Costs.scale_out_days_max)
    [ Costs.Sailfish; Costs.Nezha ];
  note "Nezha / Sailfish development effort: %.0f%%" (100.0 *. Costs.development_ratio ())

let figA1 () =
  banner
    "Fig. A1 — VM migration downtime vs resources (paper: grows with vCPUs and memory; vs Nezha's ~2 s offload)";
  let rng = Rng.create 42 in
  note "%6s %8s %14s %16s" "vCPUs" "mem(GB)" "downtime(s)" "completion(s)";
  List.iter
    (fun (v, m) ->
      let avg f =
        List.init 40 (fun _ -> f ()) |> List.fold_left ( +. ) 0.0 |> fun s -> s /. 40.0
      in
      note "%6d %8d %14.2f %16.1f" v m
        (avg (fun () -> Region.migration_downtime_s rng ~vcpus:v ~mem_gb:m))
        (avg (fun () -> Region.migration_completion_s rng ~vcpus:v ~mem_gb:m)))
    [ (8, 32); (16, 64); (32, 128); (64, 256); (128, 1024) ];
  note "versus remote offloading at P99 ~2 s, independent of VM size (§7.2)"

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablations () =
  banner "Ablation — Nezha vs Sirius-style replication on identical hardware (4 idle SmartNICs)";
  let s = Experiments.ablation_sirius () in
  note
    "Nezha CPS %.0f vs Sirius CPS %.0f (%.2fx): in-line replication consumed the backup cards (%d ping-pongs)"
    s.Experiments.nezha_cps s.Experiments.sirius_cps
    (s.Experiments.nezha_cps /. s.Experiments.sirius_cps)
    s.Experiments.sirius_pingpongs;
  banner "Ablation — flow-level vs packet-level load balancing (§3.2.3)";
  List.iter
    (fun r ->
      note "%-13s FE rule lookups %6d  cached flows %6d  CPS %7.0f" r.Experiments.mode
        r.Experiments.fe_rule_lookups r.Experiments.fe_cached_flows r.Experiments.cps)
    (Experiments.ablation_flow_vs_packet_lb ());
  banner "Ablation — fixed 64 B vs variable 8 B state slots (§7.1)";
  List.iter
    (fun r ->
      note "slot %2d B: %d concurrent flows" r.Experiments.slot_bytes r.Experiments.flows_supported)
    (Experiments.ablation_state_size ());
  banner "Ablation — failover with TCP retransmission (§6.3.4)";
  let f = Experiments.ablation_failover_retransmit () in
  note
    "FE crash during closed-loop CRR: %d connections failed without retransmission, %d with it (%d retransmissions, %d completed) — retries outlive the ~2 s failover"
    f.Experiments.failed_without_retx f.Experiments.failed_with_retx
    f.Experiments.retransmissions f.Experiments.completed_with_retx;
  banner "Ablation — FE placement locality (App. B.1)";
  List.iter
    (fun r -> note "%-28s P50 connection latency %8.1f us" r.Experiments.placement r.Experiments.p50_latency_us)
    (Experiments.ablation_fe_locality ());
  banner "Ablation — notify packet rate (§3.2.2)";
  note "notify packets per data packet: %.4f (TX-first sessions with a statistics policy)"
    (Experiments.ablation_notify_rate ())

(* ------------------------------------------------------------------ *)
(* Region-scale macrobenchmark: the Fig. 13 region run as an engine
   stress test.  The sweep contrasts the classic single-heap engine
   (shards=1, fresh closure per firing pushed through one big heap)
   against the tuned engine (timer-wheel re-arming + pooled events) at
   growing shard counts; the region section is the measured
   before/after-Nezha overload count.  Digest cross-checks ride along:
   all tuned entries must agree regardless of shard count, and the
   before/after pair must reproduce the sweep's same-config entry. *)

let word_bytes = Sys.word_size / 8
let peak_rss_bytes () = (Gc.stat ()).Gc.top_heap_words * word_bytes

let macro_engine_name = function
  | Region_sim.Heap_events -> "heap"
  | Region_sim.Wheel_events -> "wheel"

let macro_sweep_points =
  [
    (1, Region_sim.Heap_events);
    (1, Region_sim.Wheel_events);
    (2, Region_sim.Wheel_events);
    (4, Region_sim.Wheel_events);
    (8, Region_sim.Wheel_events);
  ]

type macro_run = {
  m_shards : int;
  m_engine : Region_sim.engine;
  m_res : Region_sim.result;
  m_cpu_s : float;
  m_rss : int;  (* top-of-heap high-water mark after this run *)
}

let macro_sweep () =
  List.map
    (fun (shards, engine) ->
      let cfg = { Region_sim.default_config with Region_sim.shards; engine } in
      Gc.compact ();
      let t0 = Sys.time () in
      let res = Region_sim.run cfg in
      let dt = Float.max 1e-9 (Sys.time () -. t0) in
      { m_shards = shards; m_engine = engine; m_res = res; m_cpu_s = dt; m_rss = peak_rss_bytes () })
    macro_sweep_points

let macro_checks region runs =
  let digest_of shards engine =
    List.find_map
      (fun r -> if r.m_shards = shards && r.m_engine = engine then Some r.m_res.Region_sim.digest else None)
      runs
  in
  let wheel_digests =
    List.filter_map
      (fun r -> if r.m_engine = Region_sim.Wheel_events then Some r.m_res.Region_sim.digest else None)
      runs
  in
  let shard_equivalent =
    match wheel_digests with [] -> false | d :: rest -> List.for_all (( = ) d) rest
  in
  (* The before/after "after" leg is the same config as the sweep's
     (default shards, wheel) entry — equal digests mean a same-seed
     rerun reproduced bit-identically. *)
  let deterministic =
    digest_of Region_sim.default_config.Region_sim.shards Region_sim.Wheel_events
    = Some region.Experiments.region_after.Region_sim.digest
  in
  (deterministic, shard_equivalent)

let macro_speedup runs =
  let eps r = float_of_int r.m_res.Region_sim.events /. r.m_cpu_s in
  let base =
    List.find_opt (fun r -> r.m_shards = 1 && r.m_engine = Region_sim.Heap_events) runs
  in
  let best =
    List.find_opt
      (fun r ->
        r.m_shards = Region_sim.default_config.Region_sim.shards
        && r.m_engine = Region_sim.Wheel_events)
      runs
  in
  match (base, best) with Some b, Some t -> eps t /. eps b | _ -> 0.0

let macro () =
  banner
    "Macro — region-scale engine (2,000 vSwitches; paper Fig. 13: >99.9% of overloads resolved)";
  let region = Experiments.region_overloads () in
  let b = region.Experiments.region_before and a = region.Experiments.region_after in
  note "region: %d servers, %d modeled vNICs, %d modeled flows, %d hotspots"
    b.Region_sim.servers b.Region_sim.vnics_modeled b.Region_sim.flows_modeled
    b.Region_sim.hotspots;
  note "overloads before: %d   after: %d   resolved: %.1f%%   (detections %d, activations %d)"
    b.Region_sim.overloads a.Region_sim.overloads region.Experiments.resolved_pct
    a.Region_sim.detections a.Region_sim.activations;
  let runs = macro_sweep () in
  note "%7s %7s %12s %10s %14s %14s %10s" "shards" "engine" "events" "cpu(s)" "events/s"
    "sim pkts/s" "rss(MB)";
  List.iter
    (fun r ->
      note "%7d %7s %12d %10.2f %14.0f %14.3e %10.1f" r.m_shards
        (macro_engine_name r.m_engine) r.m_res.Region_sim.events r.m_cpu_s
        (float_of_int r.m_res.Region_sim.events /. r.m_cpu_s)
        (r.m_res.Region_sim.packets_modeled /. r.m_cpu_s)
        (float_of_int r.m_rss /. 1048576.0))
    runs;
  let deterministic, shard_equivalent = macro_checks region runs in
  note "tuned x%d vs single-heap: %.2fx events/s   deterministic: %b   shard-equivalent: %b"
    Region_sim.default_config.Region_sim.shards (macro_speedup runs) deterministic
    shard_equivalent;
  banner "Macro — crash-storm MTTR chaos (DESIGN.md §13)";
  let mttr = Experiments.region_mttr () in
  let s = mttr.Experiments.storm in
  note
    "storm: %d crashes, %d restarts, %d ctl takeover(s); MTTR P50 %.3f s P99 %.3f s; \
     blackholed ticks %d (post-convergence %d); deterministic: %b"
    s.Region_sim.crashes s.Region_sim.restarts s.Region_sim.ctl_takeovers
    s.Region_sim.mttr_p50 s.Region_sim.mttr_p99 s.Region_sim.blackholed_ticks
    s.Region_sim.late_blackholed mttr.Experiments.storm_deterministic;
  let cc = Experiments.crash_cycles () in
  note
    "endurance: %d crash/restart cycles (%d reconciles, %d repairs); conservation %b, \
     BE conservation %b, batches leaked %d, final CPS %.0f"
    cc.Experiments.cycles cc.Experiments.cyc_reconciles cc.Experiments.cyc_repairs
    cc.Experiments.conservation_ok cc.Experiments.be_conservation_ok
    cc.Experiments.batches_leaked cc.Experiments.final_cps;
  banner "Macro — SLO elastic control plane (ROADMAP item 4)";
  let sr = Experiments.slo_ramp () in
  let c = sr.Experiments.slo_clean and x = sr.Experiments.slo_chaos in
  note
    "ramp ×%.1f: pool %d..%d (peak %d, end %d); P99 within budget %.1f%% of ticks; \
     %d out / %d in, %d oscillation(s); deterministic: %b"
    c.Region_sim.offered_ratio c.Region_sim.pool_min c.Region_sim.pool_max
    c.Region_sim.pool_at_peak c.Region_sim.pool_at_end
    (100.0 *. c.Region_sim.within_budget_fraction)
    c.Region_sim.slo_scale_outs c.Region_sim.slo_scale_ins
    c.Region_sim.oscillations sr.Experiments.slo_deterministic;
  note
    "chaos (rack partition): %d suspect(s) at peak, %d suppressed tick(s), \
     pool moves in partition %d, %d oscillation(s)"
    x.Region_sim.partition_suspects_max x.Region_sim.slo_suppressed_ticks
    x.Region_sim.pool_moves_in_partition x.Region_sim.oscillations

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core data structures.

   The slow-path numbers here bound the paper's CPS ceiling (§2.3,
   Table 3): every new connection pays one classification + pipeline
   walk, so ns/op for the ACL backends and the megaflow cache translate
   directly into connections per second per core. *)

let micro_acl_rules = 1_000
let micro_rule_scales = [ 1_000; 10_000; 100_000 ]

let micro_scale_name n =
  if n mod 1_000 = 0 then string_of_int (n / 1_000) ^ "k" else string_of_int n

(* Deny rules confined to 172/8, so the probe tuple (src 10.0.0.1)
   misses every rule: the linear backend pays the full scan, TSS one
   hash probe per mask shape, the learned index one model probe per
   iSet layer.  The generator is scale-honest — mask diversity grows
   with the rule count the way production ACLs grow shapes as tenants
   accumulate rules (6 shapes at 1k, 24 at 10k, 48 at 100k once
   port-range rules join), so TSS's probe list lengthens at 10k/100k
   while the learned index keeps its handful of iSet layers.  Per
   prefix length, rule blocks are made distinct by an odd-multiplier
   bijection over the 2^(len-8) aligned blocks of 172/8 (no accidental
   duplicate intervals at scale). *)
let micro_acl_lens n =
  if n <= 1_000 then [| 16; 24; 32 |]
  else if n <= 10_000 then Array.init 12 (fun i -> 20 + i)
  else Array.init 12 (fun i -> 21 + i)

let micro_make_rules n =
  let lens = micro_acl_lens n in
  let nlens = Array.length lens in
  let with_ports = n > 10_000 in
  Array.init n (fun i ->
      let len = lens.(i mod nlens) in
      let k = i / nlens in
      let block = k * 2654435761 land ((1 lsl (len - 8)) - 1) in
      let base = Int32.of_int ((172 lsl 24) lor (block lsl (32 - len))) in
      (* proto/port presence keys off [k], not [i]: [i mod nlens] and
         [i]'s low bits are correlated (nlens divides 4's multiples),
         which would collapse the shape product back to [nlens]. *)
      Nezha_tables.Acl.rule ~priority:(i + 1)
        ~src:(Nezha_net.Ipv4.Prefix.make (Nezha_net.Ipv4.of_int32 base) len)
        ?proto:(if k land 1 = 0 then Some Nezha_net.Five_tuple.Tcp else None)
        ?dst_ports:(if with_ports && k land 2 = 0 then Some (1024, 65535) else None)
        Nezha_tables.Acl.Deny)

let micro_make_acl_n n = Nezha_tables.Acl.of_rules (Array.to_list (micro_make_rules n))

(* Probe packets cycled by the acl benchmarks, half hits half misses.
   Hits stride evenly over the ruleset (a TCP packet inside the rule's
   source block to a port every generated rule accepts); misses sit in
   address space no rule covers.  Classification cost is what the
   backends are measured on, and both halves matter: hits exercise
   TSS's bucket walks against the model's predicted windows, misses
   force the linear scan to its full length (the paper's memory wall)
   where TSS pays one warm hash miss per mask shape. *)
let micro_probe_mask = 255

let micro_make_probes rules =
  let n = Array.length rules in
  let stride = max 1 (n / (micro_probe_mask + 1)) in
  Array.init (micro_probe_mask + 1) (fun j ->
      let src =
        if j land 1 = 0 then begin
          let r = rules.((j * stride) mod n) in
          let p = Option.get r.Nezha_tables.Acl.src in
          let len = Nezha_net.Ipv4.Prefix.length p in
          let off = if len >= 32 then 0 else j land ((1 lsl (32 - len)) - 1) in
          Nezha_net.Ipv4.of_int32
            (Int32.add
               (Nezha_net.Ipv4.to_int32 (Nezha_net.Ipv4.Prefix.base p))
               (Int32.of_int off))
        end
        else Nezha_net.Ipv4.of_octets 10 ((j * 7) land 255) ((j * 13) land 255) 1
      in
      Nezha_net.Five_tuple.make ~src ~dst:(Nezha_net.Ipv4.of_octets 203 0 113 9)
        ~src_port:4000 ~dst_port:2048 ~proto:Nezha_net.Five_tuple.Tcp)

let micro_make_acl () = micro_make_acl_n micro_acl_rules

(* Run a list of Bechamel tests and return (name, ns/op) in test order. *)
let run_micro_tests tests =
  let open Bechamel in
  let open Toolkit in
  let results =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let ns_of name =
    let est key =
      match Hashtbl.find_opt results key with
      | None -> None
      | Some r -> (
        match Bechamel.Analyze.OLS.estimates r with Some [ est ] -> Some est | Some _ | None -> None)
    in
    match est ("micro/" ^ name) with
    | Some v -> v
    | None -> ( match est name with Some v -> v | None -> Float.nan)
  in
  List.map
    (fun test -> let name = Test.name test in (name, ns_of name))
    tests
  |> List.concat_map (fun (name, v) ->
         (* Grouped test names come back as "micro/<name>". *)
         let name =
           match String.index_opt name '/' with
           | Some i -> String.sub name (i + 1) (String.length name - i - 1)
           | None -> name
         in
         [ (name, v) ])

let micro_results () =
  let open Bechamel in
  let ip = Nezha_net.Ipv4.of_octets in
  let lpm =
    let t = Nezha_tables.Lpm.create () in
    for i = 0 to 999 do
      Nezha_tables.Lpm.insert t (Nezha_net.Ipv4.Prefix.make (ip 10 (i / 256) (i mod 256) 0) 24) i
    done;
    t
  in
  let tuple =
    Nezha_net.Five_tuple.make ~src:(ip 10 0 0 1) ~dst:(ip 10 1 77 5) ~src_port:43210
      ~dst_port:443 ~proto:Nezha_net.Five_tuple.Tcp
  in
  (* dst < src, so session_hash takes its reversing branch. *)
  let tuple_rev =
    Nezha_net.Five_tuple.make ~src:(ip 10 1 77 5) ~dst:(ip 10 0 0 1) ~src_port:443
      ~dst_port:43210 ~proto:Nezha_net.Five_tuple.Tcp
  in
  (* One classifier per (scale, backend), each pinned via [Fixed] so the
     sweep measures every engine at every scale (the learned index at 1k
     is expected to lose to TSS — that asymmetry is what the [Auto]
     policy encodes).  Primed with one lookup so the bench loop never
     pays the one-time index build. *)
  let make_acl_matrix scales =
    List.map
      (fun n ->
        let rules = micro_make_rules n in
        let acl = Nezha_tables.Acl.of_rules (Array.to_list rules) in
        let probes = micro_make_probes rules in
        ( n,
          probes,
          List.map
            (fun backend ->
              let c = Nezha_tables.Classifier.of_acl ~backend (Nezha_tables.Acl.copy acl) in
              ignore (Nezha_tables.Classifier.lookup c tuple : Nezha_tables.Classifier.verdict);
              (backend, c))
            Nezha_tables.Classifier.[ Linear; Tuple_space; Learned ] ))
      scales
  in
  let acl_name backend n =
    Printf.sprintf "acl_%s_%s" (Nezha_tables.Classifier.backend_to_string backend)
      (micro_scale_name n)
  in
  let acl_tests_of matrix =
    List.concat_map
      (fun (n, probes, backends) ->
        List.map
          (fun (backend, c) ->
            let idx = ref 0 in
            Test.make ~name:(acl_name backend n)
              (Staged.stage (fun () ->
                   let i = !idx in
                   idx := (i + 1) land micro_probe_mask;
                   Nezha_tables.Classifier.lookup c (Array.unsafe_get probes i))))
          backends)
      matrix
  in
  let acl_memory_of matrix =
    List.concat_map
      (fun (n, _, backends) ->
        List.map
          (fun (backend, c) -> (acl_name backend n, Nezha_tables.Classifier.memory_bytes c))
          backends)
      matrix
  in
  let acl_matrix = make_acl_matrix [ micro_acl_rules ] in
  let acl_tests = acl_tests_of acl_matrix in
  let params = Nezha_vswitch.Params.default in
  let vpc = Nezha_net.Vpc.make 7 in
  let ruleset =
    let rs = Nezha_vswitch.Ruleset.create ~vni:9 ~acl:(micro_make_acl ()) () in
    Nezha_vswitch.Ruleset.add_route rs (Nezha_net.Ipv4.Prefix.make (ip 10 0 0 0) 8);
    Nezha_vswitch.Ruleset.add_mapping rs
      { Nezha_vswitch.Vnic.Addr.vpc; ip = ip 10 1 77 5 }
      (ip 192 168 1 2);
    rs
  in
  (* Prime the megaflow cache so the loop below measures the hit path. *)
  (match Nezha_vswitch.Ruleset.lookup ruleset ~params ~vpc ~flow_tx:tuple with
  | Some _ -> ()
  | None -> failwith "micro: ruleset probe unroutable");
  let flow_key =
    Nezha_tables.Flow_key.of_packet_fields ~vpc ~flow:tuple
  in
  let sessions () =
    Nezha_tables.Flow_table.create ~entry_overhead:40 ~value_bytes:(fun _ -> 64)
      ~default_aging:8.0 ()
  in
  let ft_upsert = sessions () in
  let ft_find = sessions () in
  ignore (Nezha_tables.Flow_table.insert ft_find ~now:0.0 flow_key 1 : Nezha_tables.Admission.t);
  let ft_cycle = sessions () in
  let upsert_now = ref 0.0 in
  let cycle_now = ref 0.0 in
  let pkt =
    Nezha_net.Packet.create ~vpc ~flow:tuple ~direction:Nezha_net.Packet.Tx
      ~flags:Nezha_net.Packet.syn ~payload_len:100 ()
  in
  let encoded = Nezha_net.Packet.encode pkt in
  let tests =
    [
      Test.make ~name:"five_tuple_hash" (Staged.stage (fun () -> Nezha_net.Five_tuple.hash tuple));
      Test.make ~name:"five_tuple_session_hash"
        (Staged.stage (fun () -> Nezha_net.Five_tuple.session_hash tuple_rev));
      Test.make ~name:"lpm_lookup_1k"
        (Staged.stage (fun () -> Nezha_tables.Lpm.lookup lpm (ip 10 1 77 5)));
    ]
    @ acl_tests
    @ [
      Test.make ~name:"acl_cached_1k"
        (Staged.stage (fun () ->
             Nezha_vswitch.Ruleset.lookup ruleset ~params ~vpc ~flow_tx:tuple));
      Test.make ~name:"flow_table_insert"
        (Staged.stage (fun () ->
             upsert_now := !upsert_now +. 0.001;
             Nezha_tables.Flow_table.insert ft_upsert ~now:!upsert_now flow_key 1));
      Test.make ~name:"flow_table_find"
        (Staged.stage (fun () -> Nezha_tables.Flow_table.find ft_find flow_key));
      Test.make ~name:"flow_table_insert_expire"
        (Staged.stage (fun () ->
             cycle_now := !cycle_now +. 10.0;
             ignore
               (Nezha_tables.Flow_table.insert ft_cycle ~now:!cycle_now flow_key 1
                 : Nezha_tables.Admission.t);
             Nezha_tables.Flow_table.expire ft_cycle ~now:(!cycle_now +. 9.0)
               ~on_expire:(fun _ _ -> ())));
      Test.make ~name:"packet_encode" (Staged.stage (fun () -> Nezha_net.Packet.encode pkt));
      Test.make ~name:"packet_decode" (Staged.stage (fun () -> Nezha_net.Packet.decode encoded));
      Test.make ~name:"state_codec_roundtrip"
        (Staged.stage (fun () ->
             let st = Nezha_vswitch.State.init ~first_dir:Nezha_net.Packet.Tx () in
             Nezha_vswitch.State.decode (Nezha_vswitch.State.encode st)));
      ]
  in
  let core = run_micro_tests tests in
  (* Rule-scale sweep: one Bechamel run per scale, with only that
     scale's matrix live.  Multi-MB live indexes tax every allocating
     op's incremental-GC slices (measured: ~40x inflation on the
     ns-scale tests when the 100k matrix is built up front), and the
     tax is additive to every backend — enough to drown the backend
     ratios the check.sh gate watches.  Compacting between runs
     releases the previous scale's index before the next is timed. *)
  let scale, scale_memory =
    List.fold_left
      (fun (rs, ms) n ->
        Gc.compact ();
        let matrix = make_acl_matrix [ n ] in
        let r = run_micro_tests (acl_tests_of matrix) in
        (rs @ r, ms @ acl_memory_of matrix))
      ([], [])
      (List.filter (fun n -> n <> micro_acl_rules) micro_rule_scales)
  in
  (core @ scale, acl_memory_of acl_matrix @ scale_memory)

let micro_speedups results =
  let ns name = try List.assoc name results with Not_found -> Float.nan in
  let ratio a b = ns a /. ns b in
  [
    ("tss_vs_linear", ratio "acl_linear_1k" "acl_tss_1k");
    ("cached_vs_linear", ratio "acl_linear_1k" "acl_cached_1k");
    ("cached_vs_tss", ratio "acl_tss_1k" "acl_cached_1k");
    (* The rule-scale story: TSS's probe list grows with mask diversity,
       the learned index does not — the [Auto] policy flips to it at
       10k+.  check.sh gates on these staying > 1. *)
    ("learned_vs_tss_10k", ratio "acl_tss_10k" "acl_learned_10k");
    ("learned_vs_tss_100k", ratio "acl_tss_100k" "acl_learned_100k");
    ("learned_vs_linear_100k", ratio "acl_linear_100k" "acl_learned_100k");
  ]

(* ------------------------------------------------------------------ *)
(* Batch-size sweep: ns per *packet* for the flow-key-grouped slow-path
   kernels as the burst grows.  This is the amortization the batched
   dataplane (Pbatch + local_batch/process_batch grouping) banks on: a
   burst cycling [micro_batch_flows] flows pays one resolution per
   unique key and follower-priced work for the rest, so ns/packet must
   fall as the batch size rises past the flow count. *)

let micro_batch_sizes = [ 1; 8; 32; 128 ]
let micro_batch_flows = 4

let micro_batch_results () =
  let open Bechamel in
  let ip = Nezha_net.Ipv4.of_octets in
  let params = Nezha_vswitch.Params.default in
  let vpc = Nezha_net.Vpc.make 7 in
  let flows =
    Array.init micro_batch_flows (fun i ->
        Nezha_net.Five_tuple.make ~src:(ip 10 0 0 1) ~dst:(ip 10 1 77 (5 + i))
          ~src_port:(43210 + i) ~dst_port:443 ~proto:Nezha_net.Five_tuple.Tcp)
  in
  let keys =
    Array.map (fun f -> Nezha_tables.Flow_key.of_packet_fields ~vpc ~flow:f) flows
  in
  let ruleset =
    let rs = Nezha_vswitch.Ruleset.create ~vni:9 ~acl:(micro_make_acl ()) () in
    Nezha_vswitch.Ruleset.add_route rs (Nezha_net.Ipv4.Prefix.make (ip 10 0 0 0) 8);
    Array.iter
      (fun (f : Nezha_net.Five_tuple.t) ->
        Nezha_vswitch.Ruleset.add_mapping rs
          { Nezha_vswitch.Vnic.Addr.vpc; ip = f.Nezha_net.Five_tuple.dst }
          (ip 192 168 1 2))
      flows;
    (* Prime the megaflow cache: the sweep measures the steady state. *)
    Array.iter
      (fun f ->
        match Nezha_vswitch.Ruleset.lookup rs ~params ~vpc ~flow_tx:f with
        | Some _ -> ()
        | None -> failwith "micro batch: sweep flow unroutable")
      flows;
    rs
  in
  let tss =
    Nezha_tables.Classifier.of_acl ~backend:Nezha_tables.Classifier.Tuple_space
      (micro_make_acl ())
  in
  Array.iter
    (fun f -> ignore (Nezha_tables.Classifier.lookup tss f : Nezha_tables.Classifier.verdict))
    flows;
  let ft =
    Nezha_tables.Flow_table.create ~entry_overhead:40 ~value_bytes:(fun _ -> 64)
      ~default_aging:8.0 ()
  in
  Array.iter
    (fun k -> ignore (Nezha_tables.Flow_table.insert ft ~now:0.0 k 1 : Nezha_tables.Admission.t))
    keys;
  let make_batch n =
    let b = Nezha_net.Pbatch.create ~capacity:n () in
    for i = 0 to n - 1 do
      Nezha_net.Pbatch.push b
        (Nezha_net.Packet.create ~vpc ~flow:flows.(i mod micro_batch_flows)
           ~direction:Nezha_net.Packet.Tx ~flags:Nezha_net.Packet.syn ())
    done;
    b
  in
  (* The grouping loop of the batched datapath in miniature: linear-scan
     dedup of flow keys (bursts hold a handful of flows), the leader
     resolves, followers pay only the mirrored-accounting price. *)
  let grouped batch ~leader ~follower =
    let seen = Array.make micro_batch_flows flows.(0) in
    fun () ->
      let m = ref 0 in
      Nezha_net.Pbatch.iter batch (fun p ->
          let f = p.Nezha_net.Packet.flow in
          let rec find i =
            if i >= !m then -1
            else if Nezha_net.Five_tuple.equal seen.(i) f then i
            else find (i + 1)
          in
          let g = find 0 in
          if g >= 0 then follower g
          else begin
            seen.(!m) <- f;
            leader !m;
            incr m
          end)
  in
  let tests =
    List.concat_map
      (fun n ->
        let batch_cached = make_batch n
        and batch_tss = make_batch n
        and batch_ft = make_batch n in
        [
          Test.make
            ~name:(Printf.sprintf "batch_cached_n%d" n)
            (Staged.stage
               (grouped batch_cached
                  ~leader:(fun g ->
                    ignore
                      (Nezha_vswitch.Ruleset.lookup ruleset ~params ~vpc ~flow_tx:flows.(g)
                        : Nezha_vswitch.Ruleset.lookup_result option))
                  ~follower:(fun _ -> Nezha_vswitch.Ruleset.note_megaflow_hit ruleset)));
          Test.make
            ~name:(Printf.sprintf "batch_tss_n%d" n)
            (Staged.stage
               (grouped batch_tss
                  ~leader:(fun g ->
                    ignore
                      (Nezha_tables.Classifier.lookup tss flows.(g)
                        : Nezha_tables.Classifier.verdict))
                  ~follower:(fun _ -> ())));
          Test.make
            ~name:(Printf.sprintf "batch_flow_table_n%d" n)
            (Staged.stage
               (grouped batch_ft
                  ~leader:(fun g -> ignore (Nezha_tables.Flow_table.find ft keys.(g) : int option))
                  ~follower:(fun _ -> ())));
        ])
      micro_batch_sizes
  in
  let ns = run_micro_tests tests in
  let per_packet path =
    List.map
      (fun n ->
        let total = List.assoc (Printf.sprintf "batch_%s_n%d" path n) ns in
        (n, total /. float_of_int n))
      micro_batch_sizes
  in
  List.map (fun path -> (path, per_packet path)) [ "cached"; "tss"; "flow_table" ]

let micro () =
  let results, memory = micro_results () in
  banner "Microbenchmarks (ns per call)";
  List.iter (fun (name, ns) -> note "%-34s %10.1f ns" name ns) results;
  note "";
  note "ACL classification, 1k-100k rules (paper §2.3: classification bounds the CPS ceiling):";
  List.iter
    (fun (name, s) -> note "  %-24s %6.1fx" name s)
    (micro_speedups results);
  note "";
  note "Classifier index memory:";
  List.iter (fun (name, b) -> note "  %-24s %10d B" name b) memory;
  note "";
  note "Batch-size sweep (ns per packet, %d flows per burst):" micro_batch_flows;
  note "  %-12s %s" "path"
    (String.concat ""
       (List.map (fun n -> Printf.sprintf "%10s" (Printf.sprintf "n=%d" n)) micro_batch_sizes));
  List.iter
    (fun (path, pts) ->
      note "  %-12s %s" path
        (String.concat "" (List.map (fun (_, ns) -> Printf.sprintf "%8.1f  " ns) pts)))
    (micro_batch_results ())

(* ------------------------------------------------------------------ *)
(* Machine-readable output: each JSON-capable experiment contributes a
   section to the --json document.  The latency summaries come from the
   telemetry histogram summarizer, so the bench and the simulator's
   --metrics dumps share one schema for percentile material. *)

let json_summary h = Telemetry.json_of_summary (Telemetry.summarize_histogram h)

(* Tcp_crr records latencies in seconds; export microseconds. *)
let json_summary_us h =
  let s = Telemetry.summarize_histogram h in
  let us v = v *. 1e6 in
  Telemetry.json_of_summary
    {
      s with
      Telemetry.mean = us s.Telemetry.mean;
      min = us s.Telemetry.min;
      max = us s.Telemetry.max;
      p50 = us s.Telemetry.p50;
      p90 = us s.Telemetry.p90;
      p99 = us s.Telemetry.p99;
      p999 = us s.Telemetry.p999;
      p9999 = us s.Telemetry.p9999;
    }

let json_fig9 () =
  let rows =
    List.map Experiments.json_of_fig9_row (Experiments.fig9 ~fes_list:[ 1; 2; 3; 4; 6; 8 ] ())
  in
  let without, with_ = Experiments.fig9_latency () in
  Json.Obj
    [
      ("gains", Json.List rows);
      ( "latency_us",
        Json.Obj [ ("without", json_summary_us without); ("with", json_summary_us with_) ] );
    ]

let json_table4 () =
  Json.Obj [ ("completion_ms", json_summary (Experiments.table4 ~events:100 ())) ]

let json_micro () =
  let results, memory = micro_results () in
  let sweep = micro_batch_results () in
  Json.Obj
    [
      ("acl_rules", Json.Int micro_acl_rules);
      ("acl_rule_scales", Json.List (List.map (fun n -> Json.Int n) micro_rule_scales));
      ("ns_per_op", Json.Obj (List.map (fun (name, ns) -> (name, Json.Float ns)) results));
      ( "memory_bytes",
        Json.Obj (List.map (fun (name, b) -> (name, Json.Int b)) memory) );
      ( "speedup",
        Json.Obj (List.map (fun (name, s) -> (name, Json.Float s)) (micro_speedups results)) );
      ( "batch_sweep",
        Json.Obj
          (List.map
             (fun (path, pts) ->
               ( path,
                 Json.Obj
                   (List.map (fun (n, ns) -> (string_of_int n, Json.Float ns)) pts) ))
             sweep) );
    ]

let json_macro () =
  let region = Experiments.region_overloads () in
  let runs = macro_sweep () in
  let deterministic, shard_equivalent = macro_checks region runs in
  Json.Obj
    [
      ("region", Experiments.json_of_region_overloads region);
      ( "sweep",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("shards", Json.Int r.m_shards);
                   ("engine", Json.String (macro_engine_name r.m_engine));
                   ("events", Json.Int r.m_res.Region_sim.events);
                   ("cpu_s", Json.Float r.m_cpu_s);
                   ( "events_per_sec",
                     Json.Float (float_of_int r.m_res.Region_sim.events /. r.m_cpu_s) );
                   ( "packets_per_sec",
                     Json.Float (r.m_res.Region_sim.packets_modeled /. r.m_cpu_s) );
                   ("peak_rss_bytes", Json.Int r.m_rss);
                   ("digest", Json.Int r.m_res.Region_sim.digest);
                 ])
             runs) );
      ("speedup", Json.Float (macro_speedup runs));
      ("deterministic", Json.Bool deterministic);
      ("shard_equivalent", Json.Bool shard_equivalent);
      ("storm", Experiments.json_of_region_mttr (Experiments.region_mttr ()));
      ("crash_cycles", Experiments.json_of_crash_cycles (Experiments.crash_cycles ()));
      ("slo", Experiments.json_of_slo_ramp (Experiments.slo_ramp ()));
      ("peak_rss_bytes", Json.Int (peak_rss_bytes ()));
    ]

(* The SLO ramp at reduced scale — same gates, tier-1 time budget
   (bench/check.sh --smoke). *)
let json_slo_smoke () =
  Json.Obj
    [
      ( "slo",
        Experiments.json_of_slo_ramp
          (Experiments.slo_ramp ~cfg:Experiments.slo_smoke_config ()) );
    ]

let json_experiments =
  [
    ("fig9", json_fig9);
    ("table4", json_table4);
    ("micro", json_micro);
    ("macro", json_macro);
    ("slo_smoke", json_slo_smoke);
  ]

let run_json ~path names =
  let names = if names = [] then List.map fst json_experiments else names in
  let sections =
    List.map
      (fun name ->
        match List.assoc_opt name json_experiments with
        | Some f ->
          note "computing %s ..." name;
          (name, f ())
        | None ->
          Printf.eprintf "no JSON output for %S (available: %s)\n" name
            (String.concat ", " (List.map fst json_experiments));
          exit 1)
      names
  in
  let doc = Json.Obj [ ("schema", Json.String "nezha-bench/1"); ("experiments", Json.Obj sections) ] in
  let text = Json.to_string_pretty doc in
  (try
     let oc = open_out path in
     output_string oc text;
     output_char oc '\n';
     close_out oc
   with Sys_error e ->
     Printf.eprintf "cannot write %s: %s\n" path e;
     exit 1);
  (* Self-check: the written document must parse back. *)
  (match Json.of_string text with
  | Ok reread when Json.equal reread doc -> ()
  | Ok _ -> failwith "--json self-check: document changed across a round-trip"
  | Error e -> failwith ("--json self-check: written JSON does not parse: " ^ e));
  note "wrote %s (%d experiment sections)" path (List.length sections)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("table1", table1);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("table3", table3);
    ("table4", table4);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("table5", table5);
    ("tableA1", tableA1);
    ("figA1", figA1);
    ("appB2", appB2);
    ("ablations", ablations);
    ("micro", micro);
    ("macro", macro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec extract_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | [ "--json" ] ->
      Printf.eprintf "--json needs a file argument\n";
      exit 1
    | a :: rest -> extract_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let rec extract_attribute acc = function
    | "--attribute" :: rest -> (true, List.rev_append acc rest)
    | a :: rest -> extract_attribute (a :: acc) rest
    | [] -> (false, List.rev acc)
  in
  let json_path, args = extract_json [] args in
  let attribute, args = extract_attribute [] args in
  (* --attribute swaps fig12 for its critical-path-split variant. *)
  let experiments =
    if attribute then
      List.map (fun (n, f) -> if n = "fig12" then (n, fig12_attr) else (n, f)) experiments
    else experiments
  in
  if attribute && not (List.mem "fig12" args) then begin
    Printf.eprintf "--attribute only applies to fig12 (run: main.exe fig12 --attribute)\n";
    exit 1
  end;
  match (json_path, args) with
  | Some path, names -> run_json ~path names
  | None, [ "--list" ] -> List.iter (fun (name, _) -> print_endline name) experiments
  | None, [] ->
    Printf.printf "Nezha reproduction bench — regenerating every table and figure\n";
    List.iter (fun (_, f) -> f ()) experiments
  | None, names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S (try --list)\n" name;
          exit 1)
      names
