examples/region_hotspots.ml: Array Float Format List Nezha_engine Nezha_workloads Printf Region Rng Stats
