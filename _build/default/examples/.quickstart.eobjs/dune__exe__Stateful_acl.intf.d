examples/stateful_acl.mli:
