examples/quickstart.mli:
