examples/region_hotspots.mli:
