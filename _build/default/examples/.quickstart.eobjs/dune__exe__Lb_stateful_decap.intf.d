examples/lb_stateful_decap.mli:
