(* Failover walkthrough (§4.4, Fig. 14): crash one of the four FEs
   serving an offloaded vNIC and watch detection, removal and
   replenishment happen while traffic keeps flowing.

     dune exec examples/failover_demo.exe *)

open Nezha_engine
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_harness
open Nezha_workloads

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  let t = Testbed.create () in
  let o = Testbed.offload t () in
  Controller.start t.Testbed.ctl;
  let fes0 = Controller.offload_fe_servers o in
  say "Offloaded to FEs on servers %s (monitor probing every %.1fs, %d misses to declare failure)"
    (String.concat ", " (List.map string_of_int fes0))
    (Controller.default_config).Controller.ping_interval
    (Controller.default_config).Controller.ping_misses_to_fail;

  (* Steady connection load through the pool. *)
  Array.iter
    (fun client ->
      ignore
        (Tcp_crr.start ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
           ~client ~server:t.Testbed.server ~rate:300.0 ~duration:12.0 ()
          : Tcp_crr.t))
    t.Testbed.clients;

  let victim = List.hd fes0 in
  ignore
    (Sim.schedule t.Testbed.sim ~delay:3.0 (fun sim ->
         say "";
         say "t=%.1fs  CRASH: SmartNIC on server %d dies" (Sim.now sim) victim;
         Smartnic.crash (Vswitch.nic (Fabric.vswitch t.Testbed.fabric victim)))
      : Sim.handle);

  (* Narrate the monitor's view every second. *)
  let last_fes = ref fes0 in
  Sim.every t.Testbed.sim ~period:1.0 (fun sim ->
      let now = Sim.now sim in
      if now <= 14.0 then begin
        let fes = Controller.offload_fe_servers o in
        if fes <> !last_fes then begin
          say "t=%.1fs  FE set changed: %s -> %s" now
            (String.concat "," (List.map string_of_int !last_fes))
            (String.concat "," (List.map string_of_int fes));
          last_fes := fes
        end;
        true
      end
      else false);

  Sim.run t.Testbed.sim ~until:16.0;
  let fes1 = Controller.offload_fe_servers o in
  let victim_vs = Fabric.vswitch t.Testbed.fabric victim in
  say "";
  say "Final FE set: %s (victim removed: %b, back at the minimum of 4: %b)"
    (String.concat ", " (List.map string_of_int fes1))
    (not (List.mem victim fes1))
    (List.length fes1 = 4);
  say "Monitor: %d probes sent, %d failure(s) declared" (Monitor.probes_sent (Controller.monitor t.Testbed.ctl))
    (Monitor.failures_declared (Controller.monitor t.Testbed.ctl));
  say "Packets blackholed at the dead FE during detection: %d (the 1/M share of ~2 s of traffic)"
    (Vswitch.drop_count victim_vs Nf.Nic_crashed);
  say "Connections accepted end-to-end: %d — the other FEs carried on, state never moved."
    (Vm.connections_accepted t.Testbed.server.Tcp_crr.vm)
