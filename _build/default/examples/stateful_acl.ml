(* The §5.1 case study: stateful ACL across the BE/FE split.

   The tenant's ACL denies all inbound traffic to the protected VM, yet
   responses to connections the VM itself initiates must pass.  The
   deny/permit verdicts are *pre-actions* cached at the FE; the
   first-packet direction is *state* kept at the BE; neither side alone
   can decide — the packets carry the missing half.

     dune exec examples/stateful_acl.exe *)

open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_harness

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  (* A testbed whose heavy vNIC denies every inbound packet. *)
  let acl = Acl.create () in
  Acl.add acl (Acl.rule ~priority:1 ~dst:(Ipv4.Prefix.make Testbed.heavy_ip 32) Acl.Deny);
  let ruleset = Ruleset.create ~vni:9 ~acl () in
  Ruleset.add_route ruleset (Option.get (Ipv4.Prefix.of_string "10.0.0.0/8"));
  let t = Testbed.create ~ruleset () in
  let o = Testbed.offload t () in
  say "Protected vNIC offloaded: %d FEs hold the deny-all-inbound ACL; the BE holds only states."
    (List.length (Controller.offload_fe_servers o));

  let heavy_vs = t.Testbed.server.Nezha_workloads.Tcp_crr.vs in
  let heavy_vm = t.Testbed.server.Nezha_workloads.Tcp_crr.vm in
  let client = t.Testbed.clients.(0) in

  (* 1. An attacker probes the VM from outside: dropped at the BE as
     unsolicited — the FE's pre-action said deny, and no local state
     excuses it. *)
  let probe =
    Packet.create ~vpc:t.Testbed.vpc
      ~flow:
        (Five_tuple.make ~src:client.Nezha_workloads.Tcp_crr.ip ~dst:Testbed.heavy_ip
           ~src_port:55555 ~dst_port:22 ~proto:Five_tuple.Tcp)
      ~direction:Packet.Tx ~flags:Packet.syn ()
  in
  Vswitch.from_vm client.Nezha_workloads.Tcp_crr.vs client.Nezha_workloads.Tcp_crr.vnic probe;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  say "";
  say "Inbound probe to port 22: delivered=%d, dropped-as-unsolicited=%d"
    (Vm.packets_delivered heavy_vm)
    (Vswitch.drop_count heavy_vs Nf.Unsolicited);

  (* 2. The protected VM opens a connection out; the client answers.
     The response crosses the same deny rule but passes, because the BE's
     state says the session was initiated from inside (first_dir = Tx). *)
  Vm.set_app client.Nezha_workloads.Tcp_crr.vm (fun _ pkt ->
      let resp =
        Packet.create ~vpc:t.Testbed.vpc
          ~flow:(Five_tuple.reverse pkt.Packet.flow)
          ~direction:Packet.Tx ~flags:Packet.syn_ack ()
      in
      Vswitch.from_vm client.Nezha_workloads.Tcp_crr.vs client.Nezha_workloads.Tcp_crr.vnic resp);
  let outbound =
    Packet.create ~vpc:t.Testbed.vpc
      ~flow:
        (Five_tuple.make ~src:Testbed.heavy_ip ~dst:client.Nezha_workloads.Tcp_crr.ip
           ~src_port:43210 ~dst_port:80 ~proto:Five_tuple.Tcp)
      ~direction:Packet.Tx ~flags:Packet.syn ()
  in
  Vswitch.from_vm heavy_vs Testbed.heavy_vnic_id outbound;
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  say "Outbound connection: the client's SYN-ACK crossed the deny rule and reached the VM: delivered=%d"
    (Vm.packets_delivered heavy_vm);

  (* Show what actually rode in the packets. *)
  let key =
    Flow_key.of_packet_fields ~vpc:t.Testbed.vpc ~flow:outbound.Packet.flow
  in
  (match Vswitch.find_session heavy_vs Testbed.heavy_vnic_id key with
  | Some { Vswitch.state = Some st; pre; _ } ->
    say "";
    say "BE session entry: %s (cached pre-actions locally: %b — state only, as designed)"
      (Format.asprintf "%a" State.pp st)
      (pre <> None)
  | Some { Vswitch.state = None; _ } | None -> say "no BE state (unexpected)");
  say "The equivalence of §3.1 holds: same verdicts as a local stateful ACL, zero state sync."
