(* The §5.2 case study: stateful decapsulation behind a load balancer.

   An LB forwards client traffic to a real server (RS) and the RS's
   vSwitch must remember the LB's address — recorded while decapsulating
   the overlay header — so responses return through the LB rather than
   leaking straight to the client.  Under Nezha the FE decapsulates, so
   it preserves the original outer source in the NSH header for the BE
   to record (§3.2.2 "rule table not involved" state).

     dune exec examples/lb_stateful_decap.exe *)

open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_harness
open Nezha_workloads

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  (* The heavy vNIC is the real server behind an LB: its ruleset enables
     stateful decap (the Load_balancer middlebox profile does). *)
  let t = Testbed.create ~middlebox:Middlebox.Load_balancer () in
  ignore (Testbed.offload t () : Controller.offload);
  say "Real-server vNIC offloaded with the LB profile (stateful decap enabled).";

  let heavy_vs = t.Testbed.server.Tcp_crr.vs in
  let client = t.Testbed.clients.(0) in
  let lb_underlay = client.Tcp_crr.vs |> Vswitch.underlay_ip in

  (* A "client" connection arrives via the LB: the inner source is the
     end client's address, but the outer source is the LB's server. *)
  let flow =
    Five_tuple.make ~src:client.Tcp_crr.ip ~dst:Testbed.heavy_ip ~src_port:41000 ~dst_port:443
      ~proto:Five_tuple.Tcp
  in
  Vswitch.from_vm client.Tcp_crr.vs client.Tcp_crr.vnic
    (Packet.create ~vpc:t.Testbed.vpc ~flow ~direction:Packet.Tx ~flags:Packet.syn ());
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);

  let key = Flow_key.of_packet_fields ~vpc:t.Testbed.vpc ~flow in
  (match Vswitch.find_session heavy_vs Testbed.heavy_vnic_id key with
  | Some { Vswitch.state = Some st; _ } ->
    say "";
    say "BE state after the first packet: %s" (Format.asprintf "%a" State.pp st);
    (match st.State.decap_src with
    | Some a when Ipv4.equal a lb_underlay ->
      say "-> recorded overlay source %s = the LB's address, preserved by the FE across re-encapsulation"
        (Ipv4.to_string a)
    | Some a -> say "-> recorded %s (unexpected)" (Ipv4.to_string a)
    | None -> say "-> no decap source recorded (unexpected)")
  | Some { Vswitch.state = None; _ } | None -> say "no state (unexpected)");

  (* Without preservation, the response would go straight to the client
     and be dropped (the client only has a connection with the LB).  With
     it, the TX packet carries the recorded address to the FE, which
     encapsulates toward the LB. *)
  say "";
  say "Response path check: the VM answers; the FE must target the LB server.";
  Vm.set_app t.Testbed.server.Tcp_crr.vm (fun _ _ -> ());
  Vswitch.from_vm heavy_vs Testbed.heavy_vnic_id
    (Packet.create ~vpc:t.Testbed.vpc ~flow:(Five_tuple.reverse flow) ~direction:Packet.Tx
       ~flags:Packet.syn_ack ());
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 0.5);
  say "Response delivered back through the LB server: %d packet(s) at the LB-side VM"
    (Vm.packets_delivered client.Tcp_crr.vm)
