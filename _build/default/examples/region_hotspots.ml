(* Fleet view: the "shortage amid waste" paradox of §2.2, and what Nezha
   does to it.

   Samples a synthetic region calibrated to the paper's published
   percentiles, classifies the hotspots, and estimates the before/after
   daily overloads.

     dune exec examples/region_hotspots.exe *)

open Nezha_engine
open Nezha_workloads

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  let rng = Rng.create 7 in
  let n = 30_000 in
  let fleet = Region.sample_fleet rng ~n in
  say "Sampled a region of %d vSwitches (quantile-matched to Fig. 4 / Table 1)." n;

  let cpus = Array.map (fun p -> p.Region.cpu) fleet in
  say "";
  say "The paradox: average CPU %.1f%%, yet P9999 %.0f%% — most SmartNICs idle while a few drown."
    (100.0 *. Stats.mean cpus)
    (100.0 *. Stats.percentile cpus 99.99);
  let idle = Array.fold_left (fun a u -> if u < 0.30 then a + 1 else a) 0 cpus in
  say "FE candidates (CPU < 30%%): %d of %d (%.1f%%) — the resource pool is already deployed."
    idle n
    (100.0 *. float_of_int idle /. float_of_int n);

  say "";
  say "Hotspot causes (Fig. 3):";
  let counts = Region.classify Region.default_capacities fleet in
  let total = List.fold_left (fun a (_, x) -> a + x) 0 counts in
  List.iter
    (fun (cause, x) ->
      say "  %-18s %5.1f%%"
        (Format.asprintf "%a" Region.pp_cause cause)
        (100.0 *. float_of_int x /. float_of_int (max 1 total)))
    counts;

  say "";
  say "A month of overloads, before and after Nezha (Fig. 13):";
  List.iter
    (fun cause ->
      let days =
        Region.daily_overloads rng ~n_vswitches:n ~capacities:Region.default_capacities ~cause
          ~days:30 ()
      in
      let before = List.fold_left (fun a d -> a + d.Region.before) 0 days in
      let after = List.fold_left (fun a d -> a + d.Region.after) 0 days in
      say "  %-18s %6d -> %3d  (%.2f%% resolved)"
        (Format.asprintf "%a" Region.pp_cause cause)
        before after
        (100.0 *. (1.0 -. (float_of_int after /. float_of_int (max 1 before)))))
    [ Region.Cps; Region.Flows; Region.Vnics ];

  say "";
  say "Why the fixed 64 B state slot wastes memory (Fig. 15 / §7.1):";
  let sizes = Region.state_size_samples rng ~n:20_000 in
  say "  measured average state size: %.1f B (max %.0f B) — %.0fx headroom in the slot"
    (Stats.mean sizes)
    (Array.fold_left Float.max 0.0 sizes)
    (64.0 /. Stats.mean sizes)
