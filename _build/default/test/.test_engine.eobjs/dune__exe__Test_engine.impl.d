test/test_engine.ml: Alcotest Array Float Format Fun Gen Heap Int List Nezha_engine QCheck QCheck_alcotest Rng Sim Stats String Timer_wheel Token_bucket
