test/test_tables.ml: Acl Alcotest Five_tuple Flow_key Flow_table Fun Gen Int32 Ipv4 List Lpm Nezha_engine Nezha_net Nezha_tables Option QCheck QCheck_alcotest String Tss Vpc
