test/test_fabric.ml: Alcotest Fabric Five_tuple Gateway Int64 Ipv4 List Mac Nezha_engine Nezha_fabric Nezha_net Nezha_vswitch Option Packet Params Ruleset Sim Topology Vm Vnic Vpc Vswitch
