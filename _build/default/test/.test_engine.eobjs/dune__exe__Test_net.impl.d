test/test_net.ml: Alcotest Array Bytes Char Five_tuple Frame Gen Int32 Int64 Ipv4 List Mac Nezha_net Packet Pcap QCheck QCheck_alcotest String Vpc Wire
