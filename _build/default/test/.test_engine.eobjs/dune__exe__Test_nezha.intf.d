test/test_nezha.mli:
