open Nezha_net

type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = {
  mutable root : 'a node;
  mutable entries : int;
  mutable nodes : int;
}

let new_node () = { value = None; zero = None; one = None }

let create () = { root = new_node (); entries = 0; nodes = 1 }

let bit_of addr i =
  (* Bit [i] counted from the most significant end. *)
  Int32.logand (Int32.shift_right_logical (Ipv4.to_int32 addr) (31 - i)) 1l = 1l

let insert t prefix v =
  let base = Ipv4.Prefix.base prefix and len = Ipv4.Prefix.length prefix in
  let rec descend node depth =
    if depth = len then begin
      if node.value = None then t.entries <- t.entries + 1;
      node.value <- Some v
    end
    else begin
      let child, set =
        if bit_of base depth then (node.one, fun c -> node.one <- Some c)
        else (node.zero, fun c -> node.zero <- Some c)
      in
      let next =
        match child with
        | Some c -> c
        | None ->
          let c = new_node () in
          t.nodes <- t.nodes + 1;
          set c;
          c
      in
      descend next (depth + 1)
    end
  in
  descend t.root 0

let remove t prefix =
  let base = Ipv4.Prefix.base prefix and len = Ipv4.Prefix.length prefix in
  (* Returns [true] when the child subtree became empty and can be pruned. *)
  let removed = ref false in
  let rec descend node depth =
    if depth = len then begin
      if node.value <> None then begin
        node.value <- None;
        t.entries <- t.entries - 1;
        removed := true
      end
    end
    else begin
      let child = if bit_of base depth then node.one else node.zero in
      match child with
      | None -> ()
      | Some c ->
        descend c (depth + 1);
        if c.value = None && c.zero = None && c.one = None then begin
          t.nodes <- t.nodes - 1;
          if bit_of base depth then node.one <- None else node.zero <- None
        end
    end
  in
  descend t.root 0;
  !removed

let lookup_with_depth t addr =
  let rec descend node depth best =
    let best =
      match node.value with
      | Some v -> Some (Ipv4.Prefix.make addr depth, v)
      | None -> best
    in
    if depth = 32 then (best, depth)
    else begin
      let child = if bit_of addr depth then node.one else node.zero in
      match child with
      | None -> (best, depth)
      | Some c -> descend c (depth + 1) best
    end
  in
  descend t.root 0 None

let lookup t addr = fst (lookup_with_depth t addr)

let find_exact t prefix =
  let base = Ipv4.Prefix.base prefix and len = Ipv4.Prefix.length prefix in
  let rec descend node depth =
    if depth = len then node.value
    else begin
      let child = if bit_of base depth then node.one else node.zero in
      match child with None -> None | Some c -> descend c (depth + 1)
    end
  in
  descend t.root 0

let length t = t.entries

(* A hardware-ish footprint: each trie node costs two child pointers plus
   flags (16 B), each bound entry a next-hop record (24 B). *)
let node_bytes = 16
let entry_bytes = 24

let memory_bytes t = (t.nodes * node_bytes) + (t.entries * entry_bytes)

let iter t f =
  (* Reconstruct the prefix on the way down. *)
  let rec walk node bits len =
    (match node.value with
    | Some v ->
      let addr =
        if len = 0 then Ipv4.of_int32 0l
        else Ipv4.of_int32 (Int32.shift_left bits (32 - len))
      in
      f (Ipv4.Prefix.make addr len) v
    | None -> ());
    (match node.zero with
    | Some c -> walk c (Int32.shift_left bits 1) (len + 1)
    | None -> ());
    match node.one with
    | Some c -> walk c (Int32.logor (Int32.shift_left bits 1) 1l) (len + 1)
    | None -> ()
  in
  walk t.root 0l 0

let copy t =
  let fresh = create () in
  iter t (fun p v -> insert fresh p v);
  fresh

let clear t =
  t.root <- new_node ();
  t.entries <- 0;
  t.nodes <- 1
