(** Longest-prefix-match routing table (binary trie).

    Route and VXLAN-routing lookups on the slow path are LPM queries; the
    number of trie levels visited is returned with each lookup so the
    vSwitch CPU model can charge cycles proportional to real work. *)

open Nezha_net

type 'a t

val create : unit -> 'a t

val insert : 'a t -> Ipv4.Prefix.t -> 'a -> unit
(** Replaces any previous value bound at exactly this prefix. *)

val remove : 'a t -> Ipv4.Prefix.t -> bool
(** [true] if a binding was removed. *)

val lookup : 'a t -> Ipv4.t -> (Ipv4.Prefix.t * 'a) option
(** Longest matching prefix for the address. *)

val lookup_with_depth : 'a t -> Ipv4.t -> (Ipv4.Prefix.t * 'a) option * int
(** Also reports trie levels visited (lookup cost). *)

val find_exact : 'a t -> Ipv4.Prefix.t -> 'a option

val length : 'a t -> int
(** Number of prefixes bound. *)

val memory_bytes : 'a t -> int
(** Modeled memory footprint: trie nodes plus entry payload slots. *)

val iter : 'a t -> (Ipv4.Prefix.t -> 'a -> unit) -> unit

val copy : 'a t -> 'a t
(** Independent duplicate (used to replicate rule tables onto FEs). *)

val clear : 'a t -> unit
