lib/tables/flow_table.ml: Flow_key Nezha_engine Option Timer_wheel
