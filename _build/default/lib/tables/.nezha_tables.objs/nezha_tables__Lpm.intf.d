lib/tables/lpm.mli: Ipv4 Nezha_net
