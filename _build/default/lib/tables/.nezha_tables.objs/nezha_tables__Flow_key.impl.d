lib/tables/flow_key.ml: Five_tuple Format Hashtbl Nezha_net Vpc
