lib/tables/flow_table.mli: Flow_key
