lib/tables/tss.mli: Acl Five_tuple Nezha_net
