lib/tables/lpm.ml: Int32 Ipv4 Nezha_net
