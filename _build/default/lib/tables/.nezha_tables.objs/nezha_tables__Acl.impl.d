lib/tables/acl.ml: Five_tuple Format Ipv4 List Nezha_net
