lib/tables/flow_key.mli: Five_tuple Format Hashtbl Nezha_net Vpc
