lib/tables/tss.ml: Acl Five_tuple Hashtbl Int32 Ipv4 List Nezha_net
