lib/tables/acl.mli: Five_tuple Format Ipv4 Nezha_net
