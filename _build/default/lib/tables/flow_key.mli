(** Session-table keys: a VPC ID plus the canonical 5-tuple.

    Tenants reuse overlapping private address space, so the VPC ID is part
    of the cached-flow key (§2.1).  Keys are direction-independent: both
    directions of a session map to the same key. *)

open Nezha_net

type t = private { vpc : Vpc.t; flow : Five_tuple.t }

val of_packet_fields : vpc:Vpc.t -> flow:Five_tuple.t -> t
(** Canonicalizes the flow. *)

val direction_of : t -> Five_tuple.t -> [ `Forward | `Reverse ]
(** Which side of the canonical key a directed tuple is.  The caller must
    pass a tuple belonging to this session. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
