open Nezha_net

type t = { vpc : Vpc.t; flow : Five_tuple.t }

let of_packet_fields ~vpc ~flow = { vpc; flow = Five_tuple.canonical flow }

let direction_of t tuple =
  if Five_tuple.equal t.flow tuple then `Forward else `Reverse

let equal a b = Vpc.equal a.vpc b.vpc && Five_tuple.equal a.flow b.flow

let compare a b =
  let c = Vpc.compare a.vpc b.vpc in
  if c <> 0 then c else Five_tuple.compare a.flow b.flow

let hash t = (Vpc.hash t.vpc * 0x9e3779b1) lxor Five_tuple.session_hash t.flow

let pp ppf t = Format.fprintf ppf "%a/%a" Vpc.pp t.vpc Five_tuple.pp t.flow

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
