type 'a timer = {
  mutable state : [ `Pending | `Cancelled | `Fired ];
  deadline : float;
  value : 'a;
  owner : 'a t;
}

and 'a t = {
  tick : float;
  slots : int;
  wheel : 'a timer list array; (* per-slot buckets, unordered *)
  mutable cursor : int; (* next slot to sweep *)
  mutable cursor_time : float; (* time corresponding to [cursor]'s start *)
  mutable live : int;
}

let create ~tick ~slots =
  if tick <= 0.0 then invalid_arg "Timer_wheel.create: tick must be positive";
  if slots <= 0 then invalid_arg "Timer_wheel.create: slots must be positive";
  { tick; slots; wheel = Array.make slots []; cursor = 0; cursor_time = 0.0; live = 0 }

let slot_of t deadline = int_of_float (deadline /. t.tick) mod t.slots

let add t ~now ~deadline value =
  let deadline = if deadline < now +. t.tick then now +. t.tick else deadline in
  let timer = { state = `Pending; deadline; value; owner = t } in
  let s = slot_of t deadline in
  t.wheel.(s) <- timer :: t.wheel.(s);
  t.live <- t.live + 1;
  timer

(* Cancellation is O(1): the timer stays in its slot and the sweep
   discards it lazily, but the live count drops immediately. *)
let cancel timer =
  if timer.state = `Pending then begin
    timer.state <- `Cancelled;
    timer.owner.live <- timer.owner.live - 1
  end

let cancelled timer = timer.state = `Cancelled

let payload timer = timer.value

let advance t ~now f =
  let fired = ref 0 in
  (* Sweep whole slots whose time window has fully passed; within each,
     fire due timers and retain the rest (they belong to later
     revolutions). *)
  let sweep_slot s =
    let keep =
      List.filter
        (fun timer ->
          match timer.state with
          | `Cancelled | `Fired -> false
          | `Pending ->
            if timer.deadline <= now then begin
              timer.state <- `Fired;
              t.live <- t.live - 1;
              incr fired;
              f timer.value;
              false
            end
            else true)
        t.wheel.(s)
    in
    t.wheel.(s) <- keep
  in
  let rec loop () =
    if t.cursor_time +. t.tick <= now then begin
      sweep_slot t.cursor;
      t.cursor <- (t.cursor + 1) mod t.slots;
      t.cursor_time <- t.cursor_time +. t.tick;
      loop ()
    end
  in
  loop ();
  !fired

let pending t = t.live
