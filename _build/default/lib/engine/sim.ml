type handle = { mutable alive : bool }

type event = { time : float; order : int; handle : handle; action : t -> unit }

and t = {
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  queue : event Heap.t;
}

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.order b.order

let create () =
  { clock = 0.0; seq = 0; executed = 0; queue = Heap.create ~cmp:cmp_event }

let now t = t.clock

let at t ~time action =
  let time = if time < t.clock then t.clock else time in
  let handle = { alive = true } in
  t.seq <- t.seq + 1;
  Heap.push t.queue { time; order = t.seq; handle; action };
  handle

let schedule t ~delay action =
  let delay = if delay < 0.0 then 0.0 else delay in
  at t ~time:(t.clock +. delay) action

let cancel _t handle = handle.alive <- false

let cancelled handle = not handle.alive

let every t ~period ?(jitter = fun () -> 0.0) f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let rec tick sim =
    if f sim then
      ignore (schedule sim ~delay:(period +. jitter ()) tick : handle)
  in
  ignore (schedule t ~delay:0.0 tick : handle)

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    if ev.handle.alive then begin
      ev.handle.alive <- false;
      t.executed <- t.executed + 1;
      ev.action t
    end;
    true

let run ?until ?max_events t =
  let fits_budget () =
    match max_events with None -> true | Some m -> t.executed < m
  in
  let rec loop () =
    if fits_budget () then begin
      match Heap.peek t.queue with
      | None -> ()
      | Some ev ->
        (match until with
         | Some stop when ev.time > stop -> t.clock <- stop
         | Some _ | None ->
           if step t then loop ())
    end
  in
  loop ();
  match until with
  | Some stop when Heap.is_empty t.queue && t.clock < stop -> t.clock <- stop
  | Some _ | None -> ()

let pending t = Heap.length t.queue

let events_executed t = t.executed
