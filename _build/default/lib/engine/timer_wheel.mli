(** Hashed timer wheel for mass expirations.

    The session table ages out millions of entries; a binary-heap timer per
    entry would dominate the event queue.  A timer wheel gives O(1)
    insert/cancel and amortised O(1) expiry at a fixed tick granularity,
    which matches how flow-aging hardware works (coarse timestamps, lazy
    sweeps). *)

type 'a t

type 'a timer
(** A scheduled expiration carrying a payload of type ['a]. *)

val create : tick:float -> slots:int -> 'a t
(** [create ~tick ~slots] covers a horizon of [tick *. slots] seconds per
    revolution; longer deadlines simply survive extra revolutions.
    @raise Invalid_argument if [tick <= 0] or [slots <= 0]. *)

val add : 'a t -> now:float -> deadline:float -> 'a -> 'a timer
(** Schedule [payload] to expire at [deadline] (clamped to at least one
    tick in the future). *)

val cancel : 'a timer -> unit
(** O(1); expired or already-cancelled timers are no-ops. *)

val cancelled : 'a timer -> bool

val payload : 'a timer -> 'a

val advance : 'a t -> now:float -> ('a -> unit) -> int
(** [advance t ~now f] fires [f] on every timer whose deadline is
    [<= now], in deadline-slot order; returns the count fired.  Must be
    called with monotonically non-decreasing [now]. *)

val pending : 'a t -> int
(** Live (non-cancelled, non-fired) timers. *)
