(** Measurement primitives: counters, percentile histograms, time series.

    The paper reports tail percentiles up to P9999 over fleets of O(10K)
    vSwitches and latency/CPS curves over time; this module provides the
    corresponding collectors.  Histograms use logarithmic bucketing
    (HdrHistogram-style) so that relative error is bounded regardless of
    the value range. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** {1 Percentile summaries over raw samples} *)

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in \[0,100\]: linear-interpolated
    percentile of the (unsorted; copied and sorted internally) samples.
    @raise Invalid_argument on an empty array or [p] outside \[0,100\]. *)

val percentiles : float array -> float list -> (float * float) list
(** Batch version sorting only once: returns [(p, value)] pairs. *)

val mean : float array -> float
val stddev : float array -> float

(** {1 Log-bucketed histogram} *)

module Histogram : sig
  type t

  val create : ?significant_digits:int -> unit -> t
  (** [significant_digits] (default 2) bounds the relative error of
      recorded values: 2 gives <1% error with modest memory. *)

  val record : t -> float -> unit
  (** Record a non-negative sample.  Negative samples are clamped to 0. *)

  val record_n : t -> float -> int -> unit
  (** Record the same value [n] times. *)

  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** Estimated percentile (within the configured relative error).
      Returns 0 when empty. *)

  val merge_into : dst:t -> src:t -> unit
  val reset : t -> unit

  val pp_summary : Format.formatter -> t -> unit
  (** One-line summary: count, mean, P50/P90/P99/P999/P9999, max. *)
end

(** {1 Time series} *)

module Series : sig
  type t

  val create : name:string -> t
  val add : t -> time:float -> float -> unit
  val name : t -> string
  val length : t -> int
  val points : t -> (float * float) array
  (** Chronological (time, value) pairs in insertion order. *)

  val last : t -> (float * float) option

  val pp_table : ?limit:int -> Format.formatter -> t -> unit
  (** Print as a two-column table, downsampled to at most [limit] rows
      (default 50) by striding. *)
end
