(** Token-bucket rate limiter.

    Used for vNIC-level QoS enforcement.  Under Nezha every TX packet
    still passes the one BE, so a single bucket enforces the VM-level
    limit exactly — no distributed rate limiting across pool nodes, which
    §2.3.3 calls out as a weakness of architectures that spread a vNIC's
    traffic over stateful cards. *)

type t

val create : rate_bytes_per_s:float -> burst_bytes:float -> t
(** @raise Invalid_argument unless both are positive. *)

val take : t -> now:float -> bytes:int -> bool
(** Refill for the elapsed time, then try to spend [bytes]; [false]
    means the packet exceeds the configured rate and should drop.
    [now] must be non-decreasing across calls. *)

val available : t -> now:float -> float
(** Current token count after refill (bytes). *)

val rate : t -> float
val burst : t -> float
