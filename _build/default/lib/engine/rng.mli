(** Deterministic pseudo-random number generation for simulations.

    Every experiment draws all of its randomness from a single seeded root
    generator, so runs are reproducible bit-for-bit.  The core generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA'14): tiny state, excellent
    statistical quality for simulation purposes, and — crucially — cheap
    deterministic splitting, which lets independent subsystems (traffic
    generators, failure injectors, topology builders) own private streams
    that do not perturb each other when one of them draws more numbers. *)

type t
(** A mutable generator. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed.  Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of [t]'s
    future output.  Advances [t] by one step. *)

val copy : t -> t
(** [copy t] duplicates the generator state; both copies then produce the
    same stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly from \[0, n).  @raise Invalid_argument if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from \[lo, hi\] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from \[0, x). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to \[0,1\]). *)

(** {1 Distributions} *)

val exponential : t -> mean:float -> float
(** Exponential inter-arrival times; [mean] must be positive. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto (heavy-tailed) variate with minimum value [scale]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal variate; models skewed per-node utilizations. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal variate (Box–Muller). *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in \[1, n\] with probability proportional
    to [1 / rank^s].  Uses rejection sampling; O(1) expected time. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    empty input. *)
