type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate_bytes_per_s ~burst_bytes =
  if rate_bytes_per_s <= 0.0 || burst_bytes <= 0.0 then
    invalid_arg "Token_bucket.create: rate and burst must be positive";
  { rate = rate_bytes_per_s; burst = burst_bytes; tokens = burst_bytes; last = 0.0 }

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end

let take t ~now ~bytes =
  refill t ~now;
  let need = float_of_int bytes in
  if t.tokens >= need then begin
    t.tokens <- t.tokens -. need;
    true
  end
  else false

let available t ~now =
  refill t ~now;
  t.tokens

let rate t = t.rate
let burst t = t.burst
