(** Discrete-event simulation core.

    A simulation owns a virtual clock and a priority queue of events.
    Events scheduled for the same instant fire in scheduling order
    (a monotone sequence number breaks ties), which keeps runs
    deterministic. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : unit -> t
(** A fresh simulation with the clock at 0. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative delays
    are clamped to 0 (fire "now", after currently queued same-time
    events). *)

val at : t -> time:float -> (t -> unit) -> handle
(** Absolute-time variant.  Times before [now] are clamped to [now]. *)

val cancel : t -> handle -> unit
(** Cancel a pending event.  Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val every : t -> period:float -> ?jitter:(unit -> float) -> (t -> bool) -> unit
(** [every t ~period f] runs [f] now and then every [period] (plus
    [jitter ()] if given) until [f] returns [false].
    @raise Invalid_argument if [period <= 0]. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue.  Stops when the queue is empty, when the next
    event would fire after [until], or after [max_events] events.  When
    stopped by [until], the clock is advanced to [until] exactly. *)

val step : t -> bool
(** Execute exactly one event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of events still queued (including cancelled placeholders). *)

val events_executed : t -> int
