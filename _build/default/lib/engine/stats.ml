module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let check_p p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]"

let percentile samples p =
  if Array.length samples = 0 then invalid_arg "Stats.percentile: empty samples";
  check_p p;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  percentile_sorted sorted p

let percentiles samples ps =
  if Array.length samples = 0 then invalid_arg "Stats.percentiles: empty samples";
  List.iter check_p ps;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.map (fun p -> (p, percentile_sorted sorted p)) ps

let mean samples =
  let n = Array.length samples in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let stddev samples =
  let n = Array.length samples in
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 samples in
    sqrt (ss /. float_of_int (n - 1))
  end

module Histogram = struct
  (* Values are mapped to buckets on a log scale: bucket index =
     floor (log_base value) shifted so that sub-1.0 values share bucket 0
     region.  With [significant_digits] = d, the base is chosen so relative
     error <= 10^-d.  Values below [tiny] all land in bucket 0. *)
  type t = {
    base_log : float; (* log of bucket growth factor *)
    tiny : float; (* values below this collapse into bucket 0 *)
    mutable counts : int array;
    mutable count : int;
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create ?(significant_digits = 2) () =
    let digits = max 1 (min 5 significant_digits) in
    let growth = 1.0 +. (10.0 ** float_of_int (-digits)) in
    {
      base_log = log growth;
      tiny = 1e-12;
      counts = Array.make 256 0;
      count = 0;
      total = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
    }

  let bucket_of t v =
    if v <= t.tiny then 0
    else 1 + int_of_float (Float.floor (log (v /. t.tiny) /. t.base_log))

  let value_of t i =
    if i = 0 then 0.0
    else t.tiny *. exp ((float_of_int (i - 1) +. 0.5) *. t.base_log)

  let ensure t i =
    let cap = Array.length t.counts in
    if i >= cap then begin
      let ncap = max (i + 1) (cap * 2) in
      let ncounts = Array.make ncap 0 in
      Array.blit t.counts 0 ncounts 0 cap;
      t.counts <- ncounts
    end

  let record_n t v n =
    let v = if v < 0.0 then 0.0 else v in
    let i = bucket_of t v in
    ensure t i;
    t.counts.(i) <- t.counts.(i) + n;
    t.count <- t.count + n;
    t.total <- t.total +. (v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let record t v = record_n t v 1

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count
  let min_value t = if t.count = 0 then 0.0 else t.min_v
  let max_value t = if t.count = 0 then 0.0 else t.max_v

  let percentile t p =
    check_p p;
    if t.count = 0 then 0.0
    else begin
      let target =
        int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count))
      in
      let target = max 1 target in
      let rec scan i acc =
        if i >= Array.length t.counts then t.max_v
        else begin
          let acc = acc + t.counts.(i) in
          if acc >= target then begin
            let v = value_of t i in
            (* Clamp the bucket midpoint estimate into the observed range. *)
            Float.min t.max_v (Float.max t.min_v v)
          end
          else scan (i + 1) acc
        end
      in
      scan 0 0
    end

  let merge_into ~dst ~src =
    Array.iteri
      (fun i n -> if n > 0 then begin
         ensure dst i;
         dst.counts.(i) <- dst.counts.(i) + n
       end)
      src.counts;
    dst.count <- dst.count + src.count;
    dst.total <- dst.total +. src.total;
    if src.count > 0 then begin
      if src.min_v < dst.min_v then dst.min_v <- src.min_v;
      if src.max_v > dst.max_v then dst.max_v <- src.max_v
    end

  let reset t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.count <- 0;
    t.total <- 0.0;
    t.min_v <- infinity;
    t.max_v <- neg_infinity

  let pp_summary ppf t =
    if t.count = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf
        "n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g p999=%.4g p9999=%.4g max=%.4g"
        t.count (mean t) (percentile t 50.0) (percentile t 90.0)
        (percentile t 99.0) (percentile t 99.9) (percentile t 99.99)
        (max_value t)
end

module Series = struct
  type t = {
    name : string;
    mutable times : float array;
    mutable values : float array;
    mutable len : int;
  }

  let create ~name = { name; times = [||]; values = [||]; len = 0 }

  let add t ~time v =
    let cap = Array.length t.times in
    if t.len = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let nt = Array.make ncap 0.0 and nv = Array.make ncap 0.0 in
      Array.blit t.times 0 nt 0 t.len;
      Array.blit t.values 0 nv 0 t.len;
      t.times <- nt;
      t.values <- nv
    end;
    t.times.(t.len) <- time;
    t.values.(t.len) <- v;
    t.len <- t.len + 1

  let name t = t.name
  let length t = t.len

  let points t = Array.init t.len (fun i -> (t.times.(i), t.values.(i)))

  let last t =
    if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

  let pp_table ?(limit = 50) ppf t =
    Format.fprintf ppf "@[<v># %s@," t.name;
    if t.len > 0 then begin
      let stride = max 1 (t.len / limit) in
      let rec rows i =
        if i < t.len then begin
          Format.fprintf ppf "%12.6f  %14.6g@," t.times.(i) t.values.(i);
          rows (i + stride)
        end
      in
      rows 0
    end;
    Format.fprintf ppf "@]"
end
