type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }

(* Positive 62-bit int from the top bits, avoiding sign issues. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection to avoid modulo bias. *)
  let mask_range = max_int / n * n in
  let rec draw () =
    let v = bits t in
    if v < mask_range then v mod n else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits into [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1p-53

let float t x = unit_float t *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else unit_float t < p

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  let u = 1.0 -. unit_float t in
  scale /. (u ** (1.0 /. shape))

let gaussian t ~mean ~stddev =
  let u1 = 1.0 -. unit_float t and u2 = unit_float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

(* Rejection-inversion sampling for the Zipf distribution
   (Hörmann & Derflinger, 1996).  Expected O(1) per draw. *)
let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if s <= 0.0 then invalid_arg "Rng.zipf: s must be positive";
  if n = 1 then 1
  else begin
    let h x = if Float.abs (s -. 1.0) < 1e-9 then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv x =
      if Float.abs (s -. 1.0) < 1e-9 then exp x
      else ((1.0 -. s) *. x) ** (1.0 /. (1.0 -. s))
    in
    let hx0 = h 0.5 -. (1.0 /. (0.5 ** s)) in
    let hn = h (float_of_int n +. 0.5) in
    let rec draw () =
      let u = hx0 +. (unit_float t *. (hn -. hx0)) in
      let x = h_inv u in
      let k = Float.round x in
      let k = if k < 1.0 then 1.0 else if k > float_of_int n then float_of_int n else k in
      if u >= h (k +. 0.5) -. (1.0 /. (k ** s)) then int_of_float k else draw ()
    in
    draw ()
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
