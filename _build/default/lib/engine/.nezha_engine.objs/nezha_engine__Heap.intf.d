lib/engine/heap.mli:
