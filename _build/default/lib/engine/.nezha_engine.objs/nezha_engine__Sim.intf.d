lib/engine/sim.mli:
