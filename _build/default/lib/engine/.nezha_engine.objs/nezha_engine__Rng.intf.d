lib/engine/rng.mli:
