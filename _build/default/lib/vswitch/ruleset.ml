open Nezha_net
open Nezha_tables

type t = {
  vni : int;
  acl : Acl.t;
  rate_limit_bps : int option;
  stats_rules : (Ipv4.Prefix.t * Pre_action.stats_spec) list;
  stateful_decap : bool;
  mirror : bool;
  extra_tables : int;
  fixed_overhead_bytes : int;
  lookup_extra_cycles : int;
  route : unit Lpm.t;
  mapping : Ipv4.t array Vnic.Addr.Table.t;
  mutable generation : int;
}

let mapping_entry_bytes = 40 (* overlay addr + VPC + underlay addr + MAC + flags *)
let stats_rule_bytes = 24

let create ~vni ?(acl = Acl.create ()) ?rate_limit_bps ?(stats_rules = []) ?(stateful_decap = false)
    ?(mirror = false) ?(extra_tables = 0) ?(fixed_overhead_bytes = 2 * 1024 * 1024)
    ?(lookup_extra_cycles = 0) () =
  {
    vni;
    acl;
    rate_limit_bps;
    stats_rules;
    stateful_decap;
    mirror;
    extra_tables = max 0 extra_tables;
    fixed_overhead_bytes;
    lookup_extra_cycles = max 0 lookup_extra_cycles;
    route = Lpm.create ();
    mapping = Vnic.Addr.Table.create 64;
    generation = 0;
  }

let vni t = t.vni
let acl t = t.acl
let stateful_decap t = t.stateful_decap

let bump t = t.generation <- t.generation + 1

let add_route t prefix =
  Lpm.insert t.route prefix ();
  bump t

let remove_route t prefix =
  let r = Lpm.remove t.route prefix in
  if r then bump t;
  r

let add_mapping t addr server =
  Vnic.Addr.Table.replace t.mapping addr [| server |];
  bump t

let set_mapping_multi t addr servers =
  if Array.length servers = 0 then invalid_arg "Ruleset.set_mapping_multi: empty target set";
  Vnic.Addr.Table.replace t.mapping addr (Array.copy servers);
  bump t

let find_mapping t addr = Vnic.Addr.Table.find_opt t.mapping addr

let remove_mapping t addr =
  if Vnic.Addr.Table.mem t.mapping addr then begin
    Vnic.Addr.Table.remove t.mapping addr;
    bump t;
    true
  end
  else false

let mapping_count t = Vnic.Addr.Table.length t.mapping

(* ACL, QoS, policy, VXLAN routing, vNIC-server mapping (§2.2.2). *)
let base_tables = 5

let table_count t = base_tables + t.extra_tables

type lookup_result = { pre : Pre_action.t; cycles : int }

let stats_for t peer_ip =
  List.find_map
    (fun (prefix, spec) -> if Ipv4.Prefix.mem peer_ip prefix then Some spec else None)
    t.stats_rules

let lookup t ~params ~vpc ~flow_tx =
  let peer_ip = flow_tx.Five_tuple.dst in
  let route_hit, lpm_depth = Lpm.lookup_with_depth t.route peer_ip in
  match route_hit with
  | None ->
    (* Unroutable: the slow path still burned the cycles of a failed
       pipeline walk, but there is nothing to cache. *)
    None
  | Some (_, ()) ->
    let tx_verdict = Acl.lookup t.acl flow_tx in
    let rx_verdict = Acl.lookup t.acl (Five_tuple.reverse flow_tx) in
    let scanned = max tx_verdict.Acl.rules_scanned rx_verdict.Acl.rules_scanned in
    let peer_server =
      match Vnic.Addr.Table.find_opt t.mapping { Vnic.Addr.vpc; ip = peer_ip } with
      | None -> None
      | Some targets ->
        (* Several targets = the peer is offloaded to several FEs; pick
           one per session by canonical 5-tuple hash (flow-level load
           balancing).  Hashing the canonical form makes both directions
           of a session choose the same FE, so its cached flow is built
           once; Nezha's design also allows splitting directions across
           FEs (§3.2.3) at the cost of duplicate rule lookups. *)
        Some targets.(Five_tuple.session_hash flow_tx mod Array.length targets)
    in
    let pre =
      {
        Pre_action.acl_tx = tx_verdict.Acl.action;
        acl_rx = rx_verdict.Acl.action;
        vni = t.vni;
        peer_server;
        rate_limit_bps = t.rate_limit_bps;
        stats = stats_for t peer_ip;
        stateful_decap = t.stateful_decap;
        mirror = t.mirror;
      }
    in
    let cycles =
      Params.rule_lookup_cycles params ~acl_rules_scanned:scanned ~lpm_depth
        ~tables:(table_count t)
      + t.lookup_extra_cycles
    in
    Some { pre; cycles }

let extra_target_bytes = 8

let memory_bytes t =
  let extra_targets =
    Vnic.Addr.Table.fold (fun _ targets acc -> acc + Array.length targets - 1) t.mapping 0
  in
  t.fixed_overhead_bytes + Acl.memory_bytes t.acl + Lpm.memory_bytes t.route
  + (mapping_count t * mapping_entry_bytes)
  + (extra_targets * extra_target_bytes)
  + (List.length t.stats_rules * stats_rule_bytes)

let generation t = t.generation

let bump_generation t = bump t

let clone t =
  let fresh =
    {
      vni = t.vni;
      acl = Acl.copy t.acl;
      rate_limit_bps = t.rate_limit_bps;
      stats_rules = t.stats_rules;
      stateful_decap = t.stateful_decap;
      mirror = t.mirror;
      extra_tables = t.extra_tables;
      fixed_overhead_bytes = t.fixed_overhead_bytes;
      lookup_extra_cycles = t.lookup_extra_cycles;
      route = Lpm.copy t.route;
      mapping = Vnic.Addr.Table.copy t.mapping;
      generation = t.generation;
    }
  in
  fresh
