lib/vswitch/vnic.ml: Format Hashtbl Int Ipv4 Mac Nezha_net Vpc
