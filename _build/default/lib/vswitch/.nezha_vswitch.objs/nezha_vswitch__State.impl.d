lib/vswitch/state.ml: Bytes Format Ipv4 Nezha_net Packet Printf Wire
