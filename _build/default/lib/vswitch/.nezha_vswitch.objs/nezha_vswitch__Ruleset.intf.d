lib/vswitch/ruleset.mli: Acl Five_tuple Ipv4 Nezha_net Nezha_tables Params Pre_action Vnic Vpc
