lib/vswitch/vswitch.ml: Five_tuple Flow_key Flow_table Ipv4 List Nezha_engine Nezha_net Nezha_tables Nf Option Packet Params Pre_action Ruleset Sim Smartnic State Stats Token_bucket Vnic
