lib/vswitch/vswitch.mli: Five_tuple Flow_key Ipv4 Nezha_engine Nezha_net Nezha_tables Nf Packet Params Pre_action Ruleset Sim Smartnic State Stats Vnic Vpc
