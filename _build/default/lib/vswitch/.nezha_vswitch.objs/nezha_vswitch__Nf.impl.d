lib/vswitch/nf.ml: Acl Five_tuple Format Nezha_net Nezha_tables Packet Pre_action State
