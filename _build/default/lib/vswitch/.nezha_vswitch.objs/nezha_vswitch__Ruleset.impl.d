lib/vswitch/ruleset.ml: Acl Array Five_tuple Ipv4 List Lpm Nezha_net Nezha_tables Params Pre_action Vnic
