lib/vswitch/smartnic.mli: Nezha_engine Params Sim
