lib/vswitch/smartnic.ml: Array Float Nezha_engine Params Sim
