lib/vswitch/pre_action.ml: Acl Bytes Format Ipv4 Nezha_net Nezha_tables Wire
