lib/vswitch/state.mli: Format Ipv4 Nezha_net Packet
