lib/vswitch/params.ml:
