lib/vswitch/vnic.mli: Format Hashtbl Ipv4 Mac Nezha_net Vpc
