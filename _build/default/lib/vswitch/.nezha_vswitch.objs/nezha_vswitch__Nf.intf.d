lib/vswitch/nf.mli: Five_tuple Format Ipv4 Nezha_net Packet Pre_action State
