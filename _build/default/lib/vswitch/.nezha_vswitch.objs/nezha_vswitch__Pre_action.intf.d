lib/vswitch/pre_action.mli: Acl Format Ipv4 Nezha_net Nezha_tables
