lib/vswitch/params.mli:
