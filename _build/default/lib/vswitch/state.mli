(** Per-session state: the one thing Nezha keeps local, in one copy.

    State is initialized by the first packet of a session and updated by
    later packets (§2.1).  Its components here are the stateful NFs the
    paper discusses: the first-packet direction (stateful ACL, §5.1), a
    TCP connection-tracking phase, the recorded overlay source for
    stateful decapsulation (§5.2), and flow-level statistics whose *shape*
    comes from the rule tables (§3.2.2).

    The paper's Fig. 15 point — most states are far smaller than their
    fixed 64 B slot — is measurable here: {!val:size_bytes} gives the
    variable encoded size, while the vSwitch charges the fixed slot. *)

open Nezha_net

type tcp_phase = Establishing | Established | Closing

val pp_tcp_phase : Format.formatter -> tcp_phase -> unit

type stats_counters = { packets : int; bytes : int }

type t = {
  first_dir : Packet.direction;
  tcp : tcp_phase option;
  decap_src : Ipv4.t option;  (** LB overlay address recorded by stateful decap *)
  stats : stats_counters option;
}

val init : first_dir:Packet.direction -> ?tcp:tcp_phase -> unit -> t
(** Fresh state recording the first packet's direction. *)

val is_establishing : t -> bool
(** True when the session has not yet completed its handshake; such
    entries get the short SYN aging time (§7.3). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val size_bytes : t -> int
(** Variable-length encoded size (Fig. 15: typically 5–8 B). *)

(** {1 Wire codec}

    TX packets carry the state from BE to FE inside the NSH header. *)

val encode : t -> bytes
val decode : bytes -> (t, string) result
