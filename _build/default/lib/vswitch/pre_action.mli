(** Preliminary actions: the cached result of a slow-path rule-table
    lookup (§2.1).

    Pre-actions are *stateless* and bidirectional — the same record serves
    both directions of a session — which is exactly why Nezha can replicate
    them freely across FEs.  For stateful NFs they are not final: the BE
    combines them with the session state to decide (§3.1). *)

open Nezha_net
open Nezha_tables

(** What flow-level statistics the policy table asked for; this is the
    canonical "rule-table-involved state" example of §3.2.2. *)
type stats_spec = { count_packets : bool; count_bytes : bool }

type t = {
  acl_tx : Acl.action;  (** ACL verdict for TX-direction packets *)
  acl_rx : Acl.action;  (** ACL verdict for RX-direction packets *)
  vni : int;  (** tenant VNI for underlay encapsulation *)
  peer_server : Ipv4.t option;
      (** underlay address of the server hosting the peer endpoint
          (vNIC-server mapping result); [None] = route via gateway *)
  rate_limit_bps : int option;  (** QoS table result *)
  stats : stats_spec option;  (** statistics-policy table result *)
  stateful_decap : bool;  (** LB real-server side: record overlay source *)
  mirror : bool;  (** traffic-mirroring policy result *)
}

val default : vni:int -> t
(** Permit both directions, no peer server, no QoS/stats/decap/mirror. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Wire codec}

    RX packets carry the pre-actions from FE to BE inside the NSH header
    (§3.2.1); this codec produces that blob. *)

val encode : t -> bytes
val decode : bytes -> (t, string) result
val encoded_size : t -> int
