open Nezha_net

type tcp_phase = Establishing | Established | Closing

let pp_tcp_phase ppf p =
  Format.pp_print_string ppf
    (match p with Establishing -> "establishing" | Established -> "established" | Closing -> "closing")

type stats_counters = { packets : int; bytes : int }

type t = {
  first_dir : Packet.direction;
  tcp : tcp_phase option;
  decap_src : Ipv4.t option;
  stats : stats_counters option;
}

let init ~first_dir ?tcp () = { first_dir; tcp; decap_src = None; stats = None }

let is_establishing t = match t.tcp with Some Establishing -> true | Some _ | None -> false

let equal a b =
  a.first_dir = b.first_dir && a.tcp = b.tcp
  && (match (a.decap_src, b.decap_src) with
     | None, None -> true
     | Some x, Some y -> Ipv4.equal x y
     | None, Some _ | Some _, None -> false)
  && a.stats = b.stats

let pp ppf t =
  Format.fprintf ppf "state{first=%a%s%s%s}" Packet.pp_direction t.first_dir
    (match t.tcp with Some p -> Format.asprintf " tcp=%a" pp_tcp_phase p | None -> "")
    (match t.decap_src with Some s -> " decap_src=" ^ Ipv4.to_string s | None -> "")
    (match t.stats with
    | Some s -> Printf.sprintf " stats=%dp/%dB" s.packets s.bytes
    | None -> "")

let tcp_tag = function Establishing -> 1 | Established -> 2 | Closing -> 3

let tcp_of_tag = function
  | 1 -> Some Establishing
  | 2 -> Some Established
  | 3 -> Some Closing
  | _ -> None

let encode t =
  let w = Wire.Writer.create ~capacity:16 () in
  let flags =
    (match t.first_dir with Packet.Tx -> 0 | Packet.Rx -> 1)
    lor (match t.tcp with Some p -> tcp_tag p lsl 1 | None -> 0)
    lor (match t.decap_src with Some _ -> 8 | None -> 0)
    lor (match t.stats with Some _ -> 16 | None -> 0)
  in
  Wire.Writer.u8 w flags;
  (match t.decap_src with Some s -> Wire.Writer.u32 w (Ipv4.to_int32 s) | None -> ());
  (match t.stats with
  | Some s ->
    Wire.Writer.varint w s.packets;
    Wire.Writer.varint w s.bytes
  | None -> ());
  Wire.Writer.contents w

let decode buf =
  let r = Wire.Reader.of_bytes buf in
  match
    let flags = Wire.Reader.u8 r in
    let first_dir = if flags land 1 = 0 then Packet.Tx else Packet.Rx in
    let tcp = tcp_of_tag ((flags lsr 1) land 3) in
    let decap_src =
      if flags land 8 <> 0 then Some (Ipv4.of_int32 (Wire.Reader.u32 r)) else None
    in
    let stats =
      if flags land 16 <> 0 then begin
        let packets = Wire.Reader.varint r in
        let bytes = Wire.Reader.varint r in
        Some { packets; bytes }
      end
      else None
    in
    Ok { first_dir; tcp; decap_src; stats }
  with
  | result -> result
  | exception Wire.Reader.Truncated -> Error "truncated state blob"

let size_bytes t = Bytes.length (encode t)
