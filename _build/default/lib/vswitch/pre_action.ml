open Nezha_net
open Nezha_tables

type stats_spec = { count_packets : bool; count_bytes : bool }

type t = {
  acl_tx : Acl.action;
  acl_rx : Acl.action;
  vni : int;
  peer_server : Ipv4.t option;
  rate_limit_bps : int option;
  stats : stats_spec option;
  stateful_decap : bool;
  mirror : bool;
}

let default ~vni =
  {
    acl_tx = Acl.Permit;
    acl_rx = Acl.Permit;
    vni;
    peer_server = None;
    rate_limit_bps = None;
    stats = None;
    stateful_decap = false;
    mirror = false;
  }

let equal a b =
  a.acl_tx = b.acl_tx && a.acl_rx = b.acl_rx && a.vni = b.vni
  && (match (a.peer_server, b.peer_server) with
     | None, None -> true
     | Some x, Some y -> Ipv4.equal x y
     | None, Some _ | Some _, None -> false)
  && a.rate_limit_bps = b.rate_limit_bps
  && a.stats = b.stats
  && a.stateful_decap = b.stateful_decap
  && a.mirror = b.mirror

let pp ppf t =
  Format.fprintf ppf "pre{tx=%a rx=%a vni=%d%s%s%s}" Acl.pp_action t.acl_tx Acl.pp_action
    t.acl_rx t.vni
    (match t.peer_server with Some s -> " peer=" ^ Ipv4.to_string s | None -> "")
    (if t.stateful_decap then " decap" else "")
    (match t.stats with Some _ -> " stats" | None -> "")

let action_bit = function Acl.Permit -> 0 | Acl.Deny -> 1

let action_of_bit = function 0 -> Acl.Permit | _ -> Acl.Deny

let encode t =
  let w = Wire.Writer.create ~capacity:24 () in
  let flags =
    action_bit t.acl_tx
    lor (action_bit t.acl_rx lsl 1)
    lor (match t.peer_server with Some _ -> 4 | None -> 0)
    lor (match t.rate_limit_bps with Some _ -> 8 | None -> 0)
    lor (match t.stats with Some _ -> 16 | None -> 0)
    lor (if t.stateful_decap then 32 else 0)
    lor if t.mirror then 64 else 0
  in
  Wire.Writer.u8 w flags;
  Wire.Writer.varint w t.vni;
  (match t.peer_server with Some s -> Wire.Writer.u32 w (Ipv4.to_int32 s) | None -> ());
  (match t.rate_limit_bps with Some r -> Wire.Writer.varint w r | None -> ());
  (match t.stats with
  | Some s ->
    Wire.Writer.u8 w ((if s.count_packets then 1 else 0) lor if s.count_bytes then 2 else 0)
  | None -> ());
  Wire.Writer.contents w

let decode buf =
  let r = Wire.Reader.of_bytes buf in
  match
    let flags = Wire.Reader.u8 r in
    let vni = Wire.Reader.varint r in
    let peer_server =
      if flags land 4 <> 0 then Some (Ipv4.of_int32 (Wire.Reader.u32 r)) else None
    in
    let rate_limit_bps = if flags land 8 <> 0 then Some (Wire.Reader.varint r) else None in
    let stats =
      if flags land 16 <> 0 then begin
        let b = Wire.Reader.u8 r in
        Some { count_packets = b land 1 <> 0; count_bytes = b land 2 <> 0 }
      end
      else None
    in
    Ok
      {
        acl_tx = action_of_bit (flags land 1);
        acl_rx = action_of_bit ((flags lsr 1) land 1);
        vni;
        peer_server;
        rate_limit_bps;
        stats;
        stateful_decap = flags land 32 <> 0;
        mirror = flags land 64 <> 0;
      }
  with
  | result -> result
  | exception Wire.Reader.Truncated -> Error "truncated pre-action blob"

let encoded_size t = Bytes.length (encode t)
