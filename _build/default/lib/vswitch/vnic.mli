(** Virtual NIC identity.

    A VM needs at least one vNIC to communicate; every vNIC has its own
    rule tables for tenant isolation (§2.1).  The pair (VPC, overlay IP)
    is the overlay address other endpoints reach it by. *)

open Nezha_net

type id = private int

val id_of_int : int -> id
val id_to_int : id -> int
val pp_id : Format.formatter -> id -> unit
val equal_id : id -> id -> bool
val compare_id : id -> id -> int

module Id_table : Hashtbl.S with type key = id

(** Overlay address: how packets address a vNIC. *)
module Addr : sig
  type t = { vpc : Vpc.t; ip : Ipv4.t }

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Table : Hashtbl.S with type key = t
end

type t = { id : id; vpc : Vpc.t; ip : Ipv4.t; mac : Mac.t }

val make : id:int -> vpc:Vpc.t -> ip:Ipv4.t -> mac:Mac.t -> t
val addr : t -> Addr.t
val pp : Format.formatter -> t -> unit
