open Nezha_net

type id = int

let id_of_int i = i
let id_to_int i = i
let pp_id ppf i = Format.fprintf ppf "vnic-%d" i
let equal_id = Int.equal
let compare_id = Int.compare

module Id_table = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

module Addr = struct
  type t = { vpc : Vpc.t; ip : Ipv4.t }

  let equal a b = Vpc.equal a.vpc b.vpc && Ipv4.equal a.ip b.ip
  let hash a = (Vpc.hash a.vpc * 0x9e3779b1) lxor Ipv4.hash a.ip
  let pp ppf a = Format.fprintf ppf "%a@%a" Ipv4.pp a.ip Vpc.pp a.vpc

  module Table = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end

type t = { id : id; vpc : Vpc.t; ip : Ipv4.t; mac : Mac.t }

let make ~id ~vpc ~ip ~mac = { id; vpc; ip; mac }

let addr t = { Addr.vpc = t.vpc; ip = t.ip }

let pp ppf t = Format.fprintf ppf "%a(%a@%a)" pp_id t.id Ipv4.pp t.ip Vpc.pp t.vpc
