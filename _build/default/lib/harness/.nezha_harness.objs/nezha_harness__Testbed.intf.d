lib/harness/testbed.mli: Controller Fabric Ipv4 Middlebox Nezha_core Nezha_engine Nezha_fabric Nezha_net Nezha_vswitch Nezha_workloads Params Rng Ruleset Sim Tcp_crr Topology Vm Vnic Vpc
