lib/harness/experiments.mli: Middlebox Nezha_engine Nezha_workloads Stats
