(** Byte-level frame synthesis.

    Renders a simulated {!Packet.t} as a real wire frame — Ethernet,
    IPv4 (with a correct header checksum), TCP/UDP/ICMP (with correct
    transport checksums over a zero payload), and, when the packet is
    encapsulated, an outer Ethernet/IPv4/UDP/VXLAN stack; NSH metadata
    rides a VXLAN-GPE next-protocol header carrying the state and
    pre-action blobs as fixed-length context.  The output is what
    {!Pcap} writes, so simulation traces open in Wireshark. *)

type addressing = {
  src_mac : Mac.t;
  dst_mac : Mac.t;
  outer_src_mac : Mac.t;
  outer_dst_mac : Mac.t;
}

val default_addressing : addressing

val synthesize : ?addressing:addressing -> Packet.t -> bytes
(** The full frame, outermost header first. *)

(** {1 Checksum primitives} *)

val ones_complement_sum : bytes -> off:int -> len:int -> int
(** 16-bit one's-complement sum (RFC 1071), without the final inversion. *)

val ipv4_header_checksum : bytes -> off:int -> int
(** Checksum of a 20-byte IPv4 header whose checksum field is zeroed. *)

val verify_ipv4_header : bytes -> off:int -> bool
(** True when the header checksums to 0xffff as received. *)

val transport_checksum :
  src:Ipv4.t -> dst:Ipv4.t -> proto:int -> bytes -> off:int -> len:int -> int
(** TCP/UDP checksum with the IPv4 pseudo-header; the segment's checksum
    field must be zeroed. *)
