(** Tenant VPC identifiers.

    Different tenants may reuse the same private 5-tuples; the VPC ID is
    recorded alongside cached flows to keep them apart (§2.1). *)

type t

val make : int -> t
(** Masks to 24 bits, the VNI width of VXLAN. *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
