type t = int

let make i = i land 0xFFFFFF
let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash t = t
let pp ppf t = Format.fprintf ppf "vpc-%d" t
