(** Big-endian binary readers and writers.

    The BE↔FE hop transports state and pre-actions inside packet headers
    (§3.2.1).  Encoding them through a real byte codec keeps the simulated
    header sizes honest and catches representational mistakes that a pure
    in-memory hand-off would hide. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u64 : t -> int64 -> unit
  val varint : t -> int -> unit
  (** LEB128 variable-length non-negative integer.
      @raise Invalid_argument on negative input. *)

  val bytes : t -> bytes -> unit
  (** Length-prefixed (varint) byte string. *)

  val raw : t -> bytes -> unit
  (** Bytes with no length prefix. *)

  val contents : t -> bytes
end

module Reader : sig
  type t

  exception Truncated
  (** Raised when a read runs past the end of the buffer. *)

  val of_bytes : bytes -> t
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val u64 : t -> int64
  val varint : t -> int
  val bytes : t -> bytes
  val raw : t -> int -> bytes
end
