type t = int32

let of_int32 x = x
let to_int32 x = x

let of_octets a b c d =
  let a = a land 0xff and b = b land 0xff and c = c land 0xff and d = d land 0xff in
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let octet x shift = Int32.to_int (Int32.logand (Int32.shift_right_logical x shift) 0xffl)

let to_string x =
  Printf.sprintf "%d.%d.%d.%d" (octet x 24) (octet x 16) (octet x 8) (octet x 0)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
    | Some a, Some b, Some c, Some d
      when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255 && d >= 0 && d <= 255 ->
      Some (of_octets a b c d)
    | _, _, _, _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let pp ppf x = Format.pp_print_string ppf (to_string x)

(* Compare as unsigned 32-bit values so 200.0.0.0 > 100.0.0.0. *)
let compare a b = Int32.unsigned_compare a b
let equal a b = Int32.equal a b
let hash x = Int32.to_int x land max_int

let succ x = Int32.add x 1l
let add x n = Int32.add x (Int32.of_int n)

module Prefix = struct
  type addr = t

  type t = { base : addr; len : int }

  let mask_of len =
    if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

  let make base len =
    if len < 0 || len > 32 then invalid_arg "Ipv4.Prefix.make: length outside [0,32]";
    { base = Int32.logand base (mask_of len); len }

  let of_string s =
    match String.index_opt s '/' with
    | None -> None
    | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (of_string addr, int_of_string_opt len) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _, _ -> None)

  let base t = t.base
  let length t = t.len

  let mem addr t = Int32.equal (Int32.logand addr (mask_of t.len)) t.base

  let subsumes outer inner = outer.len <= inner.len && mem inner.base outer

  let to_string t = Printf.sprintf "%s/%d" (to_string t.base) t.len
  let pp ppf t = Format.pp_print_string ppf (to_string t)

  let compare a b =
    let c = Int32.unsigned_compare a.base b.base in
    if c <> 0 then c else Int.compare a.len b.len

  let equal a b = compare a b = 0
end
