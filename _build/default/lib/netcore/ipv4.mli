(** IPv4 addresses and prefixes. *)

type t
(** An IPv4 address.  Total order follows numeric address order. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] builds [a.b.c.d]; each octet is masked to 8 bits. *)

val of_string : string -> t option
(** Parse dotted-quad notation. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed address. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val succ : t -> t
(** Next address, wrapping at 255.255.255.255. *)

val add : t -> int -> t
(** Offset an address; useful for carving per-host addresses out of a
    base.  Wraps modulo 2^32. *)

(** {1 Prefixes} *)

module Prefix : sig
  type addr := t

  type t
  (** A CIDR prefix such as [10.0.0.0/8]. *)

  val make : addr -> int -> t
  (** [make base len] masks [base] down to its first [len] bits.
      @raise Invalid_argument if [len] is outside \[0, 32\]. *)

  val of_string : string -> t option
  (** Parse ["a.b.c.d/len"]. *)

  val base : t -> addr
  val length : t -> int
  val mem : addr -> t -> bool
  val subsumes : t -> t -> bool
  (** [subsumes outer inner]: every address of [inner] is in [outer]. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val compare : t -> t -> int
  val equal : t -> t -> bool
end
