type addressing = {
  src_mac : Mac.t;
  dst_mac : Mac.t;
  outer_src_mac : Mac.t;
  outer_dst_mac : Mac.t;
}

let default_addressing =
  {
    src_mac = Option.get (Mac.of_string "02:00:00:00:00:01");
    dst_mac = Option.get (Mac.of_string "02:00:00:00:00:02");
    outer_src_mac = Option.get (Mac.of_string "02:00:00:00:01:01");
    outer_dst_mac = Option.get (Mac.of_string "02:00:00:00:01:02");
  }

(* ------------------------------------------------------------------ *)
(* RFC 1071 checksums *)

let ones_complement_sum buf ~off ~len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be buf !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  (* Fold carries. *)
  let s = ref !sum in
  while !s land 0xFFFF0000 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  !s

let ipv4_header_checksum buf ~off = lnot (ones_complement_sum buf ~off ~len:20) land 0xffff

let verify_ipv4_header buf ~off = ones_complement_sum buf ~off ~len:20 = 0xffff

let transport_checksum ~src ~dst ~proto buf ~off ~len =
  (* Pseudo-header: src, dst, zero, protocol, length. *)
  let pseudo = Bytes.create 12 in
  Bytes.set_int32_be pseudo 0 (Ipv4.to_int32 src);
  Bytes.set_int32_be pseudo 4 (Ipv4.to_int32 dst);
  Bytes.set_uint8 pseudo 8 0;
  Bytes.set_uint8 pseudo 9 proto;
  Bytes.set_uint16_be pseudo 10 len;
  let sum =
    ones_complement_sum pseudo ~off:0 ~len:12 + ones_complement_sum buf ~off ~len
  in
  let s = ref sum in
  while !s land 0xFFFF0000 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  let c = lnot !s land 0xffff in
  if c = 0 then 0xffff else c

(* ------------------------------------------------------------------ *)
(* Header emitters *)

let put_mac w mac =
  let v = Mac.to_int64 mac in
  for i = 5 downto 0 do
    Wire.Writer.u8 w (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let ethernet w ~src ~dst ~ethertype =
  put_mac w dst;
  put_mac w src;
  Wire.Writer.u16 w ethertype

let proto_number = function Five_tuple.Tcp -> 6 | Five_tuple.Udp -> 17 | Five_tuple.Icmp -> 1

(* Emit an IPv4 header + payload; returns the complete bytes. *)
let ipv4_packet ~src ~dst ~proto ~payload =
  let total = 20 + Bytes.length payload in
  let buf = Bytes.create total in
  Bytes.set_uint8 buf 0 0x45 (* v4, IHL 5 *);
  Bytes.set_uint8 buf 1 0;
  Bytes.set_uint16_be buf 2 total;
  Bytes.set_uint16_be buf 4 0 (* id *);
  Bytes.set_uint16_be buf 6 0x4000 (* DF *);
  Bytes.set_uint8 buf 8 64 (* ttl *);
  Bytes.set_uint8 buf 9 proto;
  Bytes.set_uint16_be buf 10 0 (* checksum placeholder *);
  Bytes.set_int32_be buf 12 (Ipv4.to_int32 src);
  Bytes.set_int32_be buf 16 (Ipv4.to_int32 dst);
  Bytes.set_uint16_be buf 10 (ipv4_header_checksum buf ~off:0);
  Bytes.blit payload 0 buf 20 (Bytes.length payload);
  buf

let tcp_segment ~src ~dst ~(flow : Five_tuple.t) ~(flags : Packet.tcp_flags) ~payload_len =
  let len = 20 + payload_len in
  let buf = Bytes.create len in
  Bytes.set_uint16_be buf 0 flow.Five_tuple.src_port;
  Bytes.set_uint16_be buf 2 flow.Five_tuple.dst_port;
  Bytes.set_int32_be buf 4 1l (* seq *);
  Bytes.set_int32_be buf 8 (if flags.Packet.ack then 1l else 0l);
  let flag_bits =
    (if flags.Packet.fin then 0x01 else 0)
    lor (if flags.Packet.syn then 0x02 else 0)
    lor (if flags.Packet.rst then 0x04 else 0)
    lor if flags.Packet.ack then 0x10 else 0
  in
  Bytes.set_uint16_be buf 12 ((5 lsl 12) lor flag_bits);
  Bytes.set_uint16_be buf 14 65535 (* window *);
  Bytes.set_uint16_be buf 16 0 (* checksum placeholder *);
  Bytes.set_uint16_be buf 18 0 (* urgent *);
  Bytes.set_uint16_be buf 16 (transport_checksum ~src ~dst ~proto:6 buf ~off:0 ~len);
  buf

let udp_datagram ~src ~dst ~src_port ~dst_port ~payload =
  let len = 8 + Bytes.length payload in
  let buf = Bytes.create len in
  Bytes.set_uint16_be buf 0 src_port;
  Bytes.set_uint16_be buf 2 dst_port;
  Bytes.set_uint16_be buf 4 len;
  Bytes.set_uint16_be buf 6 0;
  Bytes.blit payload 0 buf 8 (Bytes.length payload);
  Bytes.set_uint16_be buf 6 (transport_checksum ~src ~dst ~proto:17 buf ~off:0 ~len);
  buf

let icmp_message ~payload_len =
  let len = 8 + payload_len in
  let buf = Bytes.create len in
  Bytes.set_uint8 buf 0 8 (* echo request *);
  Bytes.set_uint8 buf 1 0;
  Bytes.set_uint16_be buf 2 0;
  let sum = ones_complement_sum buf ~off:0 ~len in
  Bytes.set_uint16_be buf 2 (lnot sum land 0xffff);
  buf

(* NSH (RFC 8300): base header + service path header + our metadata as a
   type-2 (variable-length) context carrying the state/pre-action blobs. *)
let nsh_header (n : Packet.nsh) ~inner_protocol =
  let w = Wire.Writer.create () in
  (* Build metadata first to know the total length. *)
  let mw = Wire.Writer.create () in
  let mput tag = function
    | None -> ()
    | Some b ->
      Wire.Writer.u16 mw 0x0101;
      Wire.Writer.u8 mw tag;
      Wire.Writer.u8 mw (Bytes.length b);
      Wire.Writer.raw mw b
  in
  mput 1 n.Packet.carried_state;
  mput 2 n.Packet.carried_pre_actions;
  (match n.Packet.orig_outer_src with
  | Some a ->
    Wire.Writer.u16 mw 0x0101;
    Wire.Writer.u8 mw 3;
    Wire.Writer.u8 mw 4;
    Wire.Writer.u32 mw (Ipv4.to_int32 a)
  | None -> ());
  let metadata = Wire.Writer.contents mw in
  (* Pad metadata to a 4-byte boundary as RFC 8300 requires. *)
  let pad = (4 - (Bytes.length metadata mod 4)) mod 4 in
  let total_words = 2 + ((Bytes.length metadata + pad) / 4) in
  (* Base header: ver 0, O bit for notify, length in 4-byte words,
     MD type 2, next protocol. *)
  let b0 = if n.Packet.notify then 0x20 else 0x00 in
  Wire.Writer.u8 w b0;
  Wire.Writer.u8 w (total_words land 0x3f);
  Wire.Writer.u8 w 0x02 (* MD type 2 *);
  Wire.Writer.u8 w inner_protocol;
  (* Service path header: SPI 1, SI 255. *)
  Wire.Writer.u32 w 0x000001FFl;
  Wire.Writer.raw w metadata;
  for _ = 1 to pad do
    Wire.Writer.u8 w 0
  done;
  Wire.Writer.contents w

let inner_frame ?(addressing = default_addressing) (p : Packet.t) =
  let flow = p.Packet.flow in
  let payload = Bytes.make p.Packet.payload_len '\x00' in
  let l4 =
    match flow.Five_tuple.proto with
    | Five_tuple.Tcp ->
      tcp_segment ~src:flow.Five_tuple.src ~dst:flow.Five_tuple.dst ~flow ~flags:p.Packet.flags
        ~payload_len:p.Packet.payload_len
    | Five_tuple.Udp ->
      udp_datagram ~src:flow.Five_tuple.src ~dst:flow.Five_tuple.dst
        ~src_port:flow.Five_tuple.src_port ~dst_port:flow.Five_tuple.dst_port ~payload
    | Five_tuple.Icmp -> icmp_message ~payload_len:p.Packet.payload_len
  in
  let ip =
    ipv4_packet ~src:flow.Five_tuple.src ~dst:flow.Five_tuple.dst
      ~proto:(proto_number flow.Five_tuple.proto) ~payload:l4
  in
  let w = Wire.Writer.create ~capacity:(Bytes.length ip + 14) () in
  ethernet w ~src:addressing.src_mac ~dst:addressing.dst_mac ~ethertype:0x0800;
  Wire.Writer.raw w ip;
  Wire.Writer.contents w

let vxlan_port = 4789

let synthesize ?(addressing = default_addressing) (p : Packet.t) =
  let inner = inner_frame ~addressing p in
  match p.Packet.vxlan with
  | None -> inner
  | Some v ->
    (* VXLAN (or VXLAN-GPE when NSH metadata is present). *)
    let vxlan_payload =
      let w = Wire.Writer.create () in
      (match p.Packet.nsh with
      | None ->
        (* Plain VXLAN: flags 0x08, reserved, VNI, reserved. *)
        Wire.Writer.u8 w 0x08;
        Wire.Writer.u8 w 0;
        Wire.Writer.u16 w 0;
        Wire.Writer.u32 w (Int32.shift_left (Int32.of_int (v.Packet.vni land 0xFFFFFF)) 8);
        Wire.Writer.raw w inner
      | Some n ->
        (* VXLAN-GPE: flags 0x0C (I+P), next protocol 4 = NSH. *)
        Wire.Writer.u8 w 0x0C;
        Wire.Writer.u16 w 0;
        Wire.Writer.u8 w 0x04;
        Wire.Writer.u32 w (Int32.shift_left (Int32.of_int (v.Packet.vni land 0xFFFFFF)) 8);
        (* NSH next protocol 3 = Ethernet. *)
        Wire.Writer.raw w (nsh_header n ~inner_protocol:0x03);
        Wire.Writer.raw w inner);
      Wire.Writer.contents w
    in
    let udp =
      udp_datagram ~src:v.Packet.outer_src ~dst:v.Packet.outer_dst
        ~src_port:(0xC000 lor (Five_tuple.hash p.Packet.flow land 0x3FFF))
        ~dst_port:vxlan_port ~payload:vxlan_payload
    in
    let ip = ipv4_packet ~src:v.Packet.outer_src ~dst:v.Packet.outer_dst ~proto:17 ~payload:udp in
    let w = Wire.Writer.create ~capacity:(Bytes.length ip + 14) () in
    ethernet w ~src:addressing.outer_src_mac ~dst:addressing.outer_dst_mac ~ethertype:0x0800;
    Wire.Writer.raw w ip;
    Wire.Writer.contents w
