(** 48-bit Ethernet MAC addresses. *)

type t

val of_int64 : int64 -> t
(** Masks the argument to its low 48 bits. *)

val to_int64 : t -> int64

val of_string : string -> t option
(** Parse ["aa:bb:cc:dd:ee:ff"]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val broadcast : t
val zero : t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
