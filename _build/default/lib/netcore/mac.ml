type t = int64

let mask = 0xFFFF_FFFF_FFFFL

let of_int64 x = Int64.logand x mask
let to_int64 x = x

let byte x shift = Int64.to_int (Int64.logand (Int64.shift_right_logical x shift) 0xffL)

let to_string x =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (byte x 40) (byte x 32) (byte x 24)
    (byte x 16) (byte x 8) (byte x 0)

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
    let parse o = int_of_string_opt ("0x" ^ o) in
    (match (parse a, parse b, parse c, parse d, parse e, parse f) with
     | Some a, Some b, Some c, Some d, Some e, Some f
       when List.for_all (fun v -> v >= 0 && v <= 255) [ a; b; c; d; e; f ] ->
       let join acc v = Int64.logor (Int64.shift_left acc 8) (Int64.of_int v) in
       Some (List.fold_left join 0L [ a; b; c; d; e; f ])
     | _, _, _, _, _, _ -> None)
  | _ -> None

let pp ppf x = Format.pp_print_string ppf (to_string x)

let broadcast = mask
let zero = 0L

let compare = Int64.unsigned_compare
let equal = Int64.equal
let hash x = Int64.to_int x land max_int
