(** Classic pcap (libpcap 2.4) capture files.

    Together with {!Frame.synthesize} this turns simulation traces into
    files Wireshark and tcpdump open directly — the debugging workflow a
    real dataplane team would expect. *)

type t

val create : ?snaplen:int -> unit -> t
(** An in-memory capture; [snaplen] (default 65535) truncates records. *)

val add : t -> time:float -> bytes -> unit
(** Append one frame captured at simulation time [time] (seconds). *)

val packet_count : t -> int

val contents : t -> bytes
(** The complete file: global header (magic 0xa1b2c3d4, version 2.4,
    LINKTYPE_ETHERNET) followed by the records. *)

val write_file : t -> string -> unit

(** {1 Reading} *)

val parse : bytes -> ((float * bytes) list, string) result
(** Parse a capture produced by this module (or any µs-resolution
    big-endian-magic-matching classic pcap). *)
