type proto = Tcp | Udp | Icmp

let proto_to_string = function Tcp -> "tcp" | Udp -> "udp" | Icmp -> "icmp"
let pp_proto ppf p = Format.pp_print_string ppf (proto_to_string p)
let proto_code = function Tcp -> 6 | Udp -> 17 | Icmp -> 1

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  src_port : int;
  dst_port : int;
  proto : proto;
}

let make ~src ~dst ~src_port ~dst_port ~proto =
  { src; dst; src_port = src_port land 0xffff; dst_port = dst_port land 0xffff; proto }

let reverse t = { t with src = t.dst; dst = t.src; src_port = t.dst_port; dst_port = t.src_port }

let endpoint_le (a, ap) (b, bp) =
  let c = Ipv4.compare a b in
  c < 0 || (c = 0 && ap <= bp)

let is_canonical t = endpoint_le (t.src, t.src_port) (t.dst, t.dst_port)

let canonical t = if is_canonical t then t else reverse t

let compare a b =
  let c = Ipv4.compare a.src b.src in
  if c <> 0 then c
  else begin
    let c = Ipv4.compare a.dst b.dst in
    if c <> 0 then c
    else begin
      let c = Int.compare a.src_port b.src_port in
      if c <> 0 then c
      else begin
        let c = Int.compare a.dst_port b.dst_port in
        if c <> 0 then c else Int.compare (proto_code a.proto) (proto_code b.proto)
      end
    end
  end

let equal a b = compare a b = 0

(* FNV-1a, folding each field byte-wise; cheap and well distributed for
   the bucket counts we use. *)
let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let fnv_fold_int h v n_bytes =
  let h = ref h in
  for i = 0 to n_bytes - 1 do
    let byte = (v lsr (8 * i)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

(* FNV's low-order bits avalanche poorly (a known weakness: the final
   multiply leaves the bottom bits nearly affine in the input), and FE
   selection takes [hash mod #FEs], so we finish with a strong mixer. *)
let avalanche z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_raw t =
  let h = fnv_offset in
  let h = fnv_fold_int h (Int32.to_int (Ipv4.to_int32 t.src) land 0xffffffff) 4 in
  let h = fnv_fold_int h (Int32.to_int (Ipv4.to_int32 t.dst) land 0xffffffff) 4 in
  let h = fnv_fold_int h t.src_port 2 in
  let h = fnv_fold_int h t.dst_port 2 in
  let h = fnv_fold_int h (proto_code t.proto) 1 in
  Int64.to_int (avalanche h) land max_int

let hash t = hash_raw t

let session_hash t = hash_raw (canonical t)

let to_string t =
  Printf.sprintf "%s:%d>%s:%d/%s" (Ipv4.to_string t.src) t.src_port (Ipv4.to_string t.dst)
    t.dst_port (proto_to_string t.proto)

let pp ppf t = Format.pp_print_string ppf (to_string t)
