lib/netcore/packet.mli: Five_tuple Format Ipv4 Vpc
