lib/netcore/pcap.mli:
