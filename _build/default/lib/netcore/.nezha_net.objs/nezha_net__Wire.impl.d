lib/netcore/wire.ml: Bytes Char
