lib/netcore/packet.ml: Bytes Five_tuple Format Ipv4 List Option Printf String Vpc Wire
