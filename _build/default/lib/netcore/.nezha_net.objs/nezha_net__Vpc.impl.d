lib/netcore/vpc.ml: Format Int
