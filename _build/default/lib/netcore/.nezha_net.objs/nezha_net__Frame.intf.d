lib/netcore/frame.mli: Ipv4 Mac Packet
