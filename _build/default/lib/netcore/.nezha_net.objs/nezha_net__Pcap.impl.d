lib/netcore/pcap.ml: Bytes Fun Int32 List Wire
