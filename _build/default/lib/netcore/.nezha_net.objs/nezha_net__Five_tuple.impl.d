lib/netcore/five_tuple.ml: Format Int Int32 Int64 Ipv4 Printf
