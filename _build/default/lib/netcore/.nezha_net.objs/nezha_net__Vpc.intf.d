lib/netcore/vpc.mli: Format
