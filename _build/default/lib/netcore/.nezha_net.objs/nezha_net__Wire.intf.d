lib/netcore/wire.mli:
