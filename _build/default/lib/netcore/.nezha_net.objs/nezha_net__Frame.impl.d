lib/netcore/frame.ml: Bytes Char Five_tuple Int32 Int64 Ipv4 Mac Option Packet Wire
