module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 64) () = { buf = Bytes.create (max 1 capacity); len = 0 }

  let length t = t.len

  let ensure t n =
    let cap = Bytes.length t.buf in
    if t.len + n > cap then begin
      let ncap = max (t.len + n) (cap * 2) in
      let nbuf = Bytes.create ncap in
      Bytes.blit t.buf 0 nbuf 0 t.len;
      t.buf <- nbuf
    end

  let u8 t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.chr (v land 0xff));
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_be t.buf t.len (v land 0xffff);
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_be t.buf t.len v;
    t.len <- t.len + 4

  let u64 t v =
    ensure t 8;
    Bytes.set_int64_be t.buf t.len v;
    t.len <- t.len + 8

  let varint t v =
    if v < 0 then invalid_arg "Wire.Writer.varint: negative";
    let rec emit v =
      if v < 0x80 then u8 t v
      else begin
        u8 t (0x80 lor (v land 0x7f));
        emit (v lsr 7)
      end
    in
    emit v

  let raw t b =
    let n = Bytes.length b in
    ensure t n;
    Bytes.blit b 0 t.buf t.len n;
    t.len <- t.len + n

  let bytes t b =
    varint t (Bytes.length b);
    raw t b

  let contents t = Bytes.sub t.buf 0 t.len
end

module Reader = struct
  type t = { buf : Bytes.t; mutable pos : int }

  exception Truncated

  let of_bytes buf = { buf; pos = 0 }

  let remaining t = Bytes.length t.buf - t.pos

  let need t n = if remaining t < n then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.unsafe_get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_be t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Bytes.get_int32_be t.buf t.pos in
    t.pos <- t.pos + 4;
    v

  let u64 t =
    need t 8;
    let v = Bytes.get_int64_be t.buf t.pos in
    t.pos <- t.pos + 8;
    v

  let varint t =
    let rec take shift acc =
      if shift > 62 then raise Truncated;
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else take (shift + 7) acc
    in
    take 0 0

  let raw t n =
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let bytes t =
    let n = varint t in
    raw t n
end
