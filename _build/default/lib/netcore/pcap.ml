type record = { time : float; frame : bytes }

type t = { snaplen : int; mutable records : record list (* newest first *) }

let create ?(snaplen = 65535) () = { snaplen; records = [] }

let add t ~time frame =
  let frame =
    if Bytes.length frame > t.snaplen then Bytes.sub frame 0 t.snaplen else frame
  in
  t.records <- { time; frame } :: t.records

let packet_count t = List.length t.records

let magic = 0xA1B2C3D4l
let linktype_ethernet = 1l

let contents t =
  let w = Wire.Writer.create ~capacity:4096 () in
  Wire.Writer.u32 w magic;
  Wire.Writer.u16 w 2 (* major *);
  Wire.Writer.u16 w 4 (* minor *);
  Wire.Writer.u32 w 0l (* thiszone *);
  Wire.Writer.u32 w 0l (* sigfigs *);
  Wire.Writer.u32 w (Int32.of_int t.snaplen);
  Wire.Writer.u32 w linktype_ethernet;
  List.iter
    (fun r ->
      let secs = int_of_float r.time in
      let usecs = int_of_float ((r.time -. float_of_int secs) *. 1e6) in
      Wire.Writer.u32 w (Int32.of_int secs);
      Wire.Writer.u32 w (Int32.of_int usecs);
      Wire.Writer.u32 w (Int32.of_int (Bytes.length r.frame));
      Wire.Writer.u32 w (Int32.of_int (Bytes.length r.frame));
      Wire.Writer.raw w r.frame)
    (List.rev t.records);
  Wire.Writer.contents w

let write_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (contents t))

let parse buf =
  let r = Wire.Reader.of_bytes buf in
  match
    let m = Wire.Reader.u32 r in
    if m <> magic then Error "pcap: bad magic (only big-endian microsecond captures supported)"
    else begin
      let _major = Wire.Reader.u16 r and _minor = Wire.Reader.u16 r in
      let _zone = Wire.Reader.u32 r and _sigfigs = Wire.Reader.u32 r in
      let _snaplen = Wire.Reader.u32 r and _linktype = Wire.Reader.u32 r in
      let rec records acc =
        if Wire.Reader.remaining r = 0 then Ok (List.rev acc)
        else begin
          let secs = Int32.to_int (Wire.Reader.u32 r) in
          let usecs = Int32.to_int (Wire.Reader.u32 r) in
          let caplen = Int32.to_int (Wire.Reader.u32 r) in
          let _origlen = Wire.Reader.u32 r in
          let frame = Wire.Reader.raw r caplen in
          let time = float_of_int secs +. (float_of_int usecs /. 1e6) in
          records ((time, frame) :: acc)
        end
      in
      records []
    end
  with
  | result -> result
  | exception Wire.Reader.Truncated -> Error "pcap: truncated capture"
