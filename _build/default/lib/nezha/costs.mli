(** Deployment-cost model (§6.4, Table 5).

    A simple comparative model of what it costs to field a solution that
    introduces new hardware (Sailfish-class: new devices, wiring, racks)
    versus one that reuses the deployed SmartNIC fleet (Nezha).  The
    numbers are the paper's; the model exposes them programmatically so
    the Table 5 bench can regenerate the comparison and extrapolate
    rollout times. *)

type solution = Sailfish | Nezha

val pp_solution : Format.formatter -> solution -> unit

type cost = {
  hardware_dev_pm : float;  (** person-months of hardware development *)
  software_dev_pm : float;
  iteration_pm : float;  (** ongoing per-generation iteration effort *)
  scale_out_days_min : float;  (** fastest region rollout *)
  scale_out_days_max : float;
  new_devices : bool;
}

val cost_of : solution -> cost

val total_person_months : cost -> float

val development_ratio : unit -> float
(** Nezha's development effort as a fraction of Sailfish's (the paper
    reports ≈10%). *)

val rollout_days : solution -> clusters:int -> parallel:int -> float
(** Estimated days to roll out to [clusters] clusters, [parallel] at a
    time: Nezha is a software gray-release; Sailfish needs racks and
    possibly procurement per site. *)
