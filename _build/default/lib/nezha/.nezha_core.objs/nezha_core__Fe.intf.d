lib/nezha/fe.mli: Ipv4 Nezha_net Nezha_vswitch Ruleset Vnic Vswitch
