lib/nezha/fe.ml: Five_tuple Flow_key Flow_table Ipv4 List Nezha_engine Nezha_net Nezha_tables Nezha_vswitch Nf Option Packet Params Pre_action Ruleset Sim Smartnic State Vnic Vswitch
