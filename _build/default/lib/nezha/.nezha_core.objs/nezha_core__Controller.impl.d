lib/nezha/controller.ml: Array Be Fabric Fe Float Format Gateway Hashtbl List Monitor Nezha_engine Nezha_fabric Nezha_vswitch Option Params Rng Ruleset Sim Smartnic Stats String Topology Vnic Vswitch
