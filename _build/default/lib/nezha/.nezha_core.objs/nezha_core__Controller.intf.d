lib/nezha/controller.mli: Be Fabric Fe Five_tuple Format Monitor Nezha_engine Nezha_fabric Nezha_net Nezha_vswitch Rng Ruleset Stats Topology Vnic
