lib/nezha/be.ml: Array Five_tuple Flow_key Ipv4 List Nezha_net Nezha_tables Nezha_vswitch Nf Option Packet Params Pre_action State Vnic Vswitch
