lib/nezha/be.mli: Five_tuple Ipv4 Nezha_net Nezha_vswitch Vnic Vswitch
