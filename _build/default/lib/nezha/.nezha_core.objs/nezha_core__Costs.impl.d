lib/nezha/costs.ml: Format
