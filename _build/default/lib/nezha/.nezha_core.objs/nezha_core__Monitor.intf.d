lib/nezha/monitor.mli: Nezha_engine Sim
