lib/nezha/costs.mli: Format
