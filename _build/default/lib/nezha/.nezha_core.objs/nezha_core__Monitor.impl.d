lib/nezha/monitor.ml: Hashtbl List Nezha_engine Sim
