type solution = Sailfish | Nezha

let pp_solution ppf s =
  Format.pp_print_string ppf (match s with Sailfish -> "Sailfish" | Nezha -> "Nezha")

type cost = {
  hardware_dev_pm : float;
  software_dev_pm : float;
  iteration_pm : float;
  scale_out_days_min : float;
  scale_out_days_max : float;
  new_devices : bool;
}

(* Table 5 of the paper, verbatim. *)
let cost_of = function
  | Sailfish ->
    {
      hardware_dev_pm = 100.0;
      software_dev_pm = 48.0;
      iteration_pm = 20.0;
      scale_out_days_min = 30.0;
      scale_out_days_max = 90.0;
      new_devices = true;
    }
  | Nezha ->
    {
      hardware_dev_pm = 0.0;
      software_dev_pm = 15.0;
      iteration_pm = 0.0;
      scale_out_days_min = 1.0;
      scale_out_days_max = 7.0;
      new_devices = false;
    }

let total_person_months c = c.hardware_dev_pm +. c.software_dev_pm +. c.iteration_pm

let development_ratio () =
  total_person_months (cost_of Nezha) /. total_person_months (cost_of Sailfish)

let rollout_days solution ~clusters ~parallel =
  if clusters <= 0 then 0.0
  else begin
    let parallel = max 1 parallel in
    let waves = float_of_int ((clusters + parallel - 1) / parallel) in
    let c = cost_of solution in
    (* Gray releases overlap almost entirely; hardware rollouts serialize
       on siting and procurement. *)
    let per_wave =
      match solution with
      | Nezha -> (c.scale_out_days_min +. c.scale_out_days_max) /. 2.0
      | Sailfish -> c.scale_out_days_max
    in
    waves *. per_wave
  end
