open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric

type t = { mutable sent : int }

let start ~sim ~rng ~vpc ~attacker ~victim ~rate ~duration () =
  if rate <= 0.0 || duration <= 0.0 then invalid_arg "Syn_flood.start: rate and duration positive";
  let t = { sent = 0 } in
  (* The victim never answers: half-open connections only. *)
  Vm.set_app victim.Tcp_crr.vm (fun _ _ -> ());
  let t_end = Sim.now sim +. duration in
  let rec arrival sim' =
    if Sim.now sim' < t_end then begin
      t.sent <- t.sent + 1;
      let flow =
        Five_tuple.make
          ~src:(Ipv4.add attacker.Tcp_crr.ip (t.sent / 60_000))
          ~dst:victim.Tcp_crr.ip
          ~src_port:(1024 + (t.sent mod 60_000))
          ~dst_port:80 ~proto:Five_tuple.Tcp
      in
      let pkt = Packet.create ~vpc ~flow ~direction:Packet.Tx ~flags:Packet.syn () in
      Vswitch.from_vm attacker.Tcp_crr.vs attacker.Tcp_crr.vnic pkt;
      ignore
        (Sim.schedule sim' ~delay:(Rng.exponential rng ~mean:(1.0 /. rate)) arrival : Sim.handle)
    end
  in
  ignore (Sim.schedule sim ~delay:0.0 arrival : Sim.handle);
  t

let sent t = t.sent
