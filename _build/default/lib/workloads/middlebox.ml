open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch

type kind = Load_balancer | Nat_gateway | Transit_router

let all = [ Load_balancer; Nat_gateway; Transit_router ]

let to_string = function
  | Load_balancer -> "load-balancer"
  | Nat_gateway -> "nat-gateway"
  | Transit_router -> "transit-router"

let pp ppf k = Format.pp_print_string ppf (to_string k)

let acl_rules = function Load_balancer -> 400 | Nat_gateway -> 600 | Transit_router -> 0

let extra_tables = function Load_balancer -> 3 | Nat_gateway -> 4 | Transit_router -> 1

(* Fitted so Table 3's gains come out: with a ~12.4k CPS VM cap and
   ~48k-cycle session setup, locals of VMcap/4, VMcap/4.4 and VMcap/3
   need roughly these lookup surcharges. *)
let lookup_extra_cycles = function
  | Load_balancer -> 11_500
  | Nat_gateway -> 30_000
  | Transit_router -> 500

(* §6.3.1: rule tables of LB/NAT/TR are generally O(100 MB). *)
let production_rule_bytes = function
  | Load_balancer -> 120 * 1024 * 1024
  | Nat_gateway -> 100 * 1024 * 1024
  | Transit_router -> 160 * 1024 * 1024

let rule_table_bytes kind ~mem_scale =
  max (64 * 1024) (int_of_float (float_of_int (production_rule_bytes kind) /. mem_scale))

let make_ruleset kind ~rng ~vni ~mem_scale ?reachable () =
  let acl = Acl.create () in
  let rules = acl_rules kind in
  for i = 1 to rules do
    (* Tenant-configured rules over scattered prefixes; a handful of
       deny rules among mostly permits. *)
    let base = Ipv4.of_octets 10 (Rng.int rng 256) (Rng.int rng 256) 0 in
    let action = if Rng.chance rng 0.15 then Acl.Deny else Acl.Permit in
    Acl.add acl
      (Acl.rule ~priority:i
         ~src:(Ipv4.Prefix.make base (16 + Rng.int rng 9))
         ?dst_ports:(if Rng.chance rng 0.5 then Some (1, 1024) else None)
         action)
  done;
  let stats_rules =
    match kind with
    | Load_balancer | Nat_gateway ->
      [ (Ipv4.Prefix.make (Ipv4.of_octets 10 0 0 0) 8,
         { Pre_action.count_packets = true; count_bytes = true }) ]
    | Transit_router -> []
  in
  let rs =
    Ruleset.create ~vni ~acl ~stats_rules
      ~stateful_decap:(kind = Load_balancer)
      ~extra_tables:(extra_tables kind)
      ~lookup_extra_cycles:(lookup_extra_cycles kind)
      ~fixed_overhead_bytes:(rule_table_bytes kind ~mem_scale)
      ()
  in
  let reachable =
    match reachable with Some p -> p | None -> Ipv4.Prefix.make (Ipv4.of_octets 10 0 0 0) 8
  in
  Ruleset.add_route rs reachable;
  rs
