open Nezha_engine
open Nezha_net
open Nezha_vswitch

(* Quantile functions built by log-linear interpolation through anchor
   points (u, value).  Log-space interpolation keeps the body of the
   distribution near the geometric mean of neighbouring anchors, which
   is what makes the sampled fleet's *average* land near the paper's
   reported averages while the anchors pin the tail percentiles. *)
let quantile_of_anchors anchors u =
  let u = Float.max 0.0 (Float.min 1.0 u) in
  let rec interp = function
    | (u1, v1) :: ((u2, v2) :: _ as rest) ->
      if u <= u1 then v1
      else if u <= u2 then begin
        let frac = (u -. u1) /. (u2 -. u1) in
        exp (log v1 +. (frac *. (log v2 -. log v1)))
      end
      else interp rest
    | [ (_, v) ] -> v
    | [] -> invalid_arg "quantile_of_anchors: no anchors"
  in
  interp anchors

(* Fig. 4a: CPU utilization of O(10K) vSwitches. *)
let cpu_anchors =
  [ (0.0, 0.002); (0.5, 0.012); (0.9, 0.15); (0.99, 0.41); (0.999, 0.68); (0.9999, 0.90); (1.0, 0.98) ]

(* Fig. 4b: memory utilization. *)
let mem_anchors =
  [ (0.0, 0.0005); (0.5, 0.0015); (0.9, 0.15); (0.99, 0.34); (0.999, 0.93); (0.9999, 0.96); (1.0, 0.98) ]

(* Table 1: normalized service usage (share of the P9999 user). *)
let cps_anchors =
  [ (0.0, 0.001); (0.5, 0.0053); (0.9, 0.0141); (0.99, 0.0641); (0.999, 0.1838); (0.9999, 1.0); (1.0, 1.0) ]

let flows_anchors =
  [ (0.0, 0.001); (0.5, 0.0078); (0.9, 0.0236); (0.99, 0.0639); (0.999, 0.2917); (0.9999, 1.0); (1.0, 1.0) ]

let vnics_anchors =
  [ (0.0, 0.001); (0.5, 0.0065); (0.9, 0.01); (0.99, 0.06); (0.999, 0.55); (0.9999, 1.0); (1.0, 1.0) ]

let cpu_util_quantile = quantile_of_anchors cpu_anchors
let mem_util_quantile = quantile_of_anchors mem_anchors
let cps_demand_quantile = quantile_of_anchors cps_anchors
let flows_demand_quantile = quantile_of_anchors flows_anchors
let vnics_demand_quantile = quantile_of_anchors vnics_anchors

type profile = { cpu : float; mem : float; cps : float; flows : float; vnics : float }

let sample rng =
  (* CPU load correlates with CPS demand, memory with flows/vNICs; the
     same uniform draw drives the correlated pair, a fresh draw the
     rest. *)
  let u_cpu = Rng.float rng 1.0 in
  let u_mem = Rng.float rng 1.0 in
  {
    cpu = cpu_util_quantile u_cpu;
    mem = mem_util_quantile u_mem;
    cps = cps_demand_quantile u_cpu;
    flows = flows_demand_quantile u_mem;
    vnics = vnics_demand_quantile (Rng.float rng 1.0);
  }

let sample_fleet rng ~n = Array.init n (fun _ -> sample rng)

type cause = Cps | Flows | Vnics

let pp_cause ppf c =
  Format.pp_print_string ppf
    (match c with Cps -> "cps" | Flows -> "#concurrent-flows" | Vnics -> "#vnics")

type capacities = { cps_cap : float; flows_cap : float; vnics_cap : float }

(* Thresholds placed on the demand quantile functions so the expected
   exceedance probabilities are ~0.61% (CPS), ~0.30% (flows) and ~0.09%
   (vNICs) of the fleet — Fig. 3's 61/30/9 hotspot mix. *)
let default_capacities =
  {
    cps_cap = cps_demand_quantile 0.9939;
    flows_cap = flows_demand_quantile 0.9970;
    vnics_cap = vnics_demand_quantile 0.9991;
  }

let classify caps fleet =
  let cps = ref 0 and flows = ref 0 and vnics = ref 0 in
  Array.iter
    (fun p ->
      if p.cps > caps.cps_cap then incr cps;
      if p.flows > caps.flows_cap then incr flows;
      if p.vnics > caps.vnics_cap then incr vnics)
    fleet;
  [ (Cps, !cps); (Flows, !flows); (Vnics, !vnics) ]

type day = { before : int; after : int }

let poisson rng lambda =
  (* Knuth's method; lambdas here are small. *)
  let limit = exp (-.lambda) in
  let rec draw k p =
    let p = p *. Rng.float rng 1.0 in
    if p <= limit then k else draw (k + 1) p
  in
  draw 0 1.0

let daily_overloads rng ~n_vswitches ~capacities ~cause ~days
    ?(events_per_hotspot_per_day = 3.0) ?(ramp_median_s = 45.0) ?(activation_p50_ms = 1000.0) () =
  let fleet = sample_fleet rng ~n:n_vswitches in
  let hotspot p =
    match cause with
    | Cps -> p.cps > capacities.cps_cap
    | Flows -> p.flows > capacities.flows_cap
    | Vnics -> p.vnics > capacities.vnics_cap
  in
  let hotspots = Array.to_list fleet |> List.filter hotspot |> List.length in
  List.init days (fun _ ->
      let before = ref 0 and after = ref 0 in
      for _ = 1 to hotspots do
        let events = poisson rng events_per_hotspot_per_day in
        before := !before + events;
        (match cause with
        | Vnics ->
          (* Rule tables are created directly on the FEs: the local
             memory ceiling is simply never hit (§6.3.3). *)
          ()
        | Cps | Flows ->
          for _ = 1 to events do
            (* The overload still *occurs* only if the demand spike
               outruns offload activation. *)
            let ramp = ramp_median_s *. Rng.lognormal rng ~mu:0.0 ~sigma:1.1 in
            let activation =
              activation_p50_ms /. 1000.0 *. Rng.lognormal rng ~mu:0.0 ~sigma:0.35
            in
            if ramp < activation then incr after
          done)
      done;
      { before = !before; after = !after })

(* Fig. 15: per-session state sizes from a production-like NF mix,
   measured with the real codec (the fixed slot is 64 B regardless). *)
let state_size_samples rng ~n =
  Array.init n (fun _ ->
      let base = State.init ~first_dir:(if Rng.bool rng then Packet.Tx else Packet.Rx) () in
      let st =
        let u = Rng.float rng 1.0 in
        if u < 0.10 then base (* bare UDP-ish conntrack: direction only *)
        else if u < 0.35 then { base with State.tcp = Some State.Established }
        else if u < 0.65 then
          (* stateful decap (LB real-server side) *)
          {
            base with
            State.tcp = Some State.Established;
            decap_src = Some (Ipv4.of_octets 100 64 (Rng.int rng 256) (Rng.int rng 256));
          }
        else begin
          (* flow statistics armed; counters sized by traffic so far *)
          let packets = Rng.int_in rng 1000 10_000_000 in
          {
            base with
            State.tcp = Some State.Established;
            decap_src =
              (if Rng.chance rng 0.3 then
                 Some (Ipv4.of_octets 100 64 (Rng.int rng 256) (Rng.int rng 256))
               else None);
            stats = Some { State.packets; bytes = packets * Rng.int_in rng 64 1400 };
          }
        end
      in
      float_of_int (State.size_bytes st))

(* Fig. 2: VMs whose CPS demand saturates their SmartNIC.  The vSwitch
   side is pinned above 95%; the VM side is comfortable — 90% below 60%
   CPU (they have hundreds of vCPUs; the NIC has tens of cores). *)
let high_cps_vm_sample rng ~n =
  Array.init n (fun _ ->
      let vswitch_cpu = 0.95 +. Rng.float rng 0.05 in
      let vm_cpu = Float.min 0.95 (0.30 *. Rng.lognormal rng ~mu:0.0 ~sigma:0.45) in
      (vm_cpu, vswitch_cpu))

(* Fig. A1: live-migration cost model.  Completion is dominated by
   copying memory (with dirty-page re-copy rounds); downtime by the
   stop-and-copy of the final round plus per-vCPU device state. *)
let migration_completion_s rng ~vcpus ~mem_gb =
  let copy_rate_gb_s = 4.0 in
  let rounds = 1.8 +. Rng.float rng 0.8 in
  let base = float_of_int mem_gb /. copy_rate_gb_s *. rounds in
  base *. (1.0 +. (0.002 *. float_of_int vcpus)) *. Rng.lognormal rng ~mu:0.0 ~sigma:0.15

let migration_downtime_s rng ~vcpus ~mem_gb =
  let dirty_final_gb = 0.002 *. float_of_int mem_gb in
  let stop_copy = dirty_final_gb /. 1.0 in
  let device_state = 0.004 *. float_of_int vcpus in
  Float.max 0.05 ((0.2 +. stop_copy +. device_state) *. Rng.lognormal rng ~mu:0.0 ~sigma:0.25)
