(** netperf TCP_CRR-style workload: a storm of short connections (§6.2.1).

    Each connection is the classic connect/request/response/close
    exchange: SYN → SYN-ACK → ACK+request → response → FIN → FIN-ACK
    (three packets in each direction).  Connections are offered open-loop
    at a target rate with exponential inter-arrivals; the achieved CPS is
    the completion rate, and per-connection latency is the SYN-to-response
    time.  This is the traffic pattern of the paper's high-CPS tenants
    (DNS servers, L7 load balancers). *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric

type endpoint = {
  vs : Vswitch.t;
  vnic : Vnic.id;
  vm : Vm.t;
  ip : Ipv4.t;
}

type t

val start :
  sim:Sim.t ->
  rng:Rng.t ->
  vpc:Vpc.t ->
  client:endpoint ->
  server:endpoint ->
  rate:float ->
  duration:float ->
  ?dport:int ->
  ?request_bytes:int ->
  ?response_bytes:int ->
  ?sport_base:int ->
  unit ->
  t
(** Launch the generator: connections at [rate]/s for [duration] seconds.
    [sport_base] (default 1024) starts the source-port allocation —
    concurrent or back-to-back generators sharing a client must use
    disjoint ranges or they would reuse live sessions.
    Installs the app handlers on both VMs (a VM can host only one CRR
    endpoint at a time). *)

val start_closed :
  sim:Sim.t ->
  rng:Rng.t ->
  vpc:Vpc.t ->
  client:endpoint ->
  server:endpoint ->
  concurrency:int ->
  duration:float ->
  ?dport:int ->
  ?request_bytes:int ->
  ?response_bytes:int ->
  ?conn_timeout:float ->
  ?retransmit:bool ->
  unit ->
  t
(** Closed-loop variant (what netperf TCP_CRR actually does): keep
    [concurrency] connections outstanding; each completion — or timeout
    ([conn_timeout], default 1 s) — immediately starts the next.
    Saturates the bottleneck without the open-loop queue collapse.

    With [retransmit] (default false), a timed-out connection retries its
    last unanswered packet with exponential backoff (250 ms → 8 s, 6
    tries) instead of being abandoned — TCP's behaviour, and the §6.3.4
    argument for why a ~2 s failover surge is imperceptible: retries
    outlive it. *)

val retransmissions : t -> int
val failed : t -> int
(** Closed-loop connections abandoned after exhausting retries. *)

val offered : t -> int
(** Connections initiated. *)

val established : t -> int
(** Connections whose handshake completed at the client. *)

val completed : t -> int
(** Connections that received the full response. *)

val achieved_cps : t -> float
(** [completed / duration]. *)

val latencies : t -> Stats.Histogram.t
(** SYN-to-response latency (seconds). *)

val first_packet_latencies : t -> Stats.Histogram.t
(** SYN-to-SYN-ACK (includes the slow path on the first packet). *)
