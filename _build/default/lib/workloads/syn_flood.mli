(** SYN-flood workload (§7.3).

    A burst of SYNs that never complete their handshakes.  Without the
    short SYN aging time, each would pin a session/state slot for the full
    aging period and waste BE memory; this generator lets the tests and
    benches measure how quickly the table recovers. *)

open Nezha_engine
open Nezha_net

type t

val start :
  sim:Sim.t ->
  rng:Rng.t ->
  vpc:Vpc.t ->
  attacker:Tcp_crr.endpoint ->
  victim:Tcp_crr.endpoint ->
  rate:float ->
  duration:float ->
  unit ->
  t

val sent : t -> int
