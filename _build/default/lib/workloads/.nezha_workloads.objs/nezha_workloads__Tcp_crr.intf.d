lib/workloads/tcp_crr.mli: Ipv4 Nezha_engine Nezha_fabric Nezha_net Nezha_vswitch Rng Sim Stats Vm Vnic Vpc Vswitch
