lib/workloads/syn_flood.ml: Five_tuple Ipv4 Nezha_engine Nezha_fabric Nezha_net Nezha_vswitch Packet Rng Sim Tcp_crr Vm Vswitch
