lib/workloads/region.mli: Format Nezha_engine Rng
