lib/workloads/middlebox.mli: Format Ipv4 Nezha_engine Nezha_net Nezha_vswitch Rng Ruleset
