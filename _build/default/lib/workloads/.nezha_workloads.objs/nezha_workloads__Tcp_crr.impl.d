lib/workloads/tcp_crr.ml: Five_tuple Float Hashtbl Ipv4 Nezha_engine Nezha_fabric Nezha_net Nezha_vswitch Packet Rng Sim Stats Vm Vnic Vpc Vswitch
