lib/workloads/syn_flood.mli: Nezha_engine Nezha_net Rng Sim Tcp_crr Vpc
