lib/workloads/region.ml: Array Float Format Ipv4 List Nezha_engine Nezha_net Nezha_vswitch Packet Rng State
