lib/workloads/middlebox.ml: Acl Format Ipv4 Nezha_engine Nezha_net Nezha_tables Nezha_vswitch Pre_action Rng Ruleset
