lib/workloads/persistent.mli: Nezha_engine Nezha_net Rng Sim Tcp_crr Vpc
