lib/workloads/persistent.ml: Five_tuple Ipv4 Nezha_engine Nezha_fabric Nezha_net Nezha_vswitch Nf Packet Rng Sim Tcp_crr Vm Vpc Vswitch
