(** Rule-table profiles of the three production middleboxes of §6.3.1.

    The middleboxes differ in pipeline complexity and table size, which
    is what differentiates their Table 3 gains:

    - the Transit Router (TR) bypasses ACLs — the simplest lookup, hence
      the smallest CPS gain (3×);
    - the Load Balancer (LB) and NAT gateway run ACL lookups (4× / 4.4×),
      the NAT with the most rules;
    - the LB uses stateful decapsulation and holds persistent connections
      (the 30 M-flow session tables);
    - all three carry rule tables far larger than the 2 MB minimum —
      O(100 MB) in production, scaled here by [mem_scale]. *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch

type kind = Load_balancer | Nat_gateway | Transit_router

val all : kind list
val to_string : kind -> string
val pp : Format.formatter -> kind -> unit

val acl_rules : kind -> int
(** ACL complexity: LB 400, NAT 600, TR 0 (bypassed). *)

val extra_tables : kind -> int
(** Advanced-feature lookup stages beyond the base five. *)

val lookup_extra_cycles : kind -> int
(** Cache-miss surcharge of O(100 MB) production tables on each
    slow-path execution; the origin of Table 3's CPS-gain spread (the
    costlier the lookup, the lower the pre-Nezha CPS, the larger the
    gain). *)

val rule_table_bytes : kind -> mem_scale:float -> int
(** Production O(100 MB) footprints divided by the experiment's memory
    scale. *)

val make_ruleset :
  kind ->
  rng:Rng.t ->
  vni:int ->
  mem_scale:float ->
  ?reachable:Ipv4.Prefix.t ->
  unit ->
  Ruleset.t
(** A populated ruleset for the middlebox: ACL rules spread over tenant
    prefixes, routes, QoS, and the statistics policy the middlebox class
    uses. *)
