open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric

type t = {
  sim : Sim.t;
  rng : Rng.t;
  vpc : Vpc.t;
  client : Tcp_crr.endpoint;
  server : Tcp_crr.endpoint;
  keepalive : float;
  mutable opened : int;
  mutable stopped : bool;
  live : unit -> int;
  rejected : unit -> int;
}

let flow_of t i =
  (* Spread flows over source ports and, past 60k, source addresses. *)
  Five_tuple.make
    ~src:(Ipv4.add t.client.Tcp_crr.ip (i / 60_000))
    ~dst:t.server.Tcp_crr.ip
    ~src_port:(1024 + (i mod 60_000))
    ~dst_port:80 ~proto:Five_tuple.Tcp

let keepalive_loop t flow =
  let rec tick sim =
    if not t.stopped then begin
      let pkt =
        Packet.create ~vpc:t.vpc ~flow ~direction:Packet.Tx ~flags:Packet.ack ~payload_len:16 ()
      in
      Vswitch.from_vm t.client.Tcp_crr.vs t.client.Tcp_crr.vnic pkt;
      ignore (Sim.schedule sim ~delay:t.keepalive tick : Sim.handle)
    end
  in
  (* Jittered phase so keep-alives do not arrive as one burst. *)
  ignore (Sim.schedule t.sim ~delay:(Rng.float t.rng t.keepalive) tick : Sim.handle)

let open_flow t i =
  t.opened <- t.opened + 1;
  let flow = flow_of t i in
  let pkt = Packet.create ~vpc:t.vpc ~flow ~direction:Packet.Tx ~flags:Packet.syn () in
  Vswitch.from_vm t.client.Tcp_crr.vs t.client.Tcp_crr.vnic pkt;
  (* Complete the handshake shortly after so the session leaves the
     short-aged SYN state. *)
  ignore
    (Sim.schedule t.sim ~delay:0.002 (fun _ ->
         if not t.stopped then begin
           let ack =
             Packet.create ~vpc:t.vpc ~flow ~direction:Packet.Tx ~flags:Packet.ack
               ~payload_len:8 ()
           in
           Vswitch.from_vm t.client.Tcp_crr.vs t.client.Tcp_crr.vnic ack
         end)
      : Sim.handle);
  keepalive_loop t flow

let start ~sim ~rng ~vpc ~client ~server ~target ?(ramp_rate = 2000.0) ?(keepalive = 3.0) () =
  if target <= 0 then invalid_arg "Persistent.start: target must be positive";
  let server_vs = server.Tcp_crr.vs and server_vnic = server.Tcp_crr.vnic in
  let t =
    {
      sim;
      rng;
      vpc;
      client;
      server;
      keepalive;
      opened = 0;
      stopped = false;
      live = (fun () -> Vswitch.session_count server_vs server_vnic);
      rejected = (fun () -> Vswitch.drop_count server_vs Nf.Table_full);
    }
  in
  (* The server absorbs; replies are not needed to hold sessions open. *)
  Vm.set_app server.Tcp_crr.vm (fun _ _ -> ());
  let rec ramp i sim' =
    if i < target && not t.stopped then begin
      open_flow t i;
      ignore (Sim.schedule sim' ~delay:(1.0 /. ramp_rate) (ramp (i + 1)) : Sim.handle)
    end
  in
  ignore (Sim.schedule sim ~delay:0.0 (ramp 0) : Sim.handle);
  t

let opened t = t.opened
let live_flows t = t.live
let rejected t = t.rejected ()
let stop t = t.stopped <- true
