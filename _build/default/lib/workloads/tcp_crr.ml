open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric

type endpoint = { vs : Vswitch.t; vnic : Vnic.id; vm : Vm.t; ip : Ipv4.t }

type conn = { t0 : float; mutable synack_at : float option; mutable done_ : bool }

type t = {
  sim : Sim.t;
  vpc : Vpc.t;
  client : endpoint;
  server : endpoint;
  dport : int;
  request_bytes : int;
  response_bytes : int;
  duration : float;
  conns : (int, conn) Hashtbl.t; (* keyed by client source port *)
  mutable offered : int;
  mutable established : int;
  mutable completed : int;
  latencies : Stats.Histogram.t;
  first_packet : Stats.Histogram.t;
  mutable on_conn_end : int -> unit; (* closed-loop replenishment hook *)
  mutable retransmissions : int;
  mutable failed : int;
}

let send endpoint pkt = Vswitch.from_vm endpoint.vs endpoint.vnic pkt

let reply endpoint pkt ~flags ~payload_len =
  let resp =
    Packet.create ~vpc:pkt.Packet.vpc
      ~flow:(Five_tuple.reverse pkt.Packet.flow)
      ~direction:Packet.Tx ~flags ~payload_len ()
  in
  send endpoint resp

(* The server side: accept, answer requests, acknowledge closes. *)
let server_app t _sim pkt =
  let f = pkt.Packet.flags in
  if f.Packet.syn && not f.Packet.ack then reply t.server pkt ~flags:Packet.syn_ack ~payload_len:0
  else if f.Packet.fin then reply t.server pkt ~flags:Packet.fin_ack ~payload_len:0
  else if pkt.Packet.payload_len > 0 then
    reply t.server pkt ~flags:Packet.ack ~payload_len:t.response_bytes

(* The client side: drive the handshake, request, and close. *)
let client_app t sim pkt =
  let f = pkt.Packet.flags in
  let sport = pkt.Packet.flow.Five_tuple.dst_port in
  match Hashtbl.find_opt t.conns sport with
  | None -> ()
  | Some conn ->
    if f.Packet.syn && f.Packet.ack && conn.synack_at = None then begin
      conn.synack_at <- Some (Sim.now sim);
      t.established <- t.established + 1;
      Stats.Histogram.record t.first_packet (Sim.now sim -. conn.t0);
      reply t.client pkt ~flags:Packet.ack ~payload_len:t.request_bytes
    end
    else if pkt.Packet.payload_len > 0 && not conn.done_ then begin
      conn.done_ <- true;
      t.completed <- t.completed + 1;
      Stats.Histogram.record t.latencies (Sim.now sim -. conn.t0);
      reply t.client pkt ~flags:Packet.fin_ack ~payload_len:0;
      Hashtbl.remove t.conns sport;
      t.on_conn_end sport
    end

let open_connection t sport =
  t.offered <- t.offered + 1;
  Hashtbl.replace t.conns sport { t0 = Sim.now t.sim; synack_at = None; done_ = false };
  let pkt =
    Packet.create ~vpc:t.vpc
      ~flow:
        (Five_tuple.make ~src:t.client.ip ~dst:t.server.ip ~src_port:sport ~dst_port:t.dport
           ~proto:Five_tuple.Tcp)
      ~direction:Packet.Tx ~flags:Packet.syn ()
  in
  send t.client pkt

let start ~sim ~rng ~vpc ~client ~server ~rate ~duration ?(dport = 80) ?(request_bytes = 64)
    ?(response_bytes = 512) ?(sport_base = 1024) () =
  if rate <= 0.0 || duration <= 0.0 then invalid_arg "Tcp_crr.start: rate and duration positive";
  let t =
    {
      sim;
      vpc;
      client;
      server;
      dport;
      request_bytes;
      response_bytes;
      duration;
      conns = Hashtbl.create 4096;
      offered = 0;
      established = 0;
      completed = 0;
      latencies = Stats.Histogram.create ();
      first_packet = Stats.Histogram.create ();
      on_conn_end = (fun _ -> ());
      retransmissions = 0;
      failed = 0;
    }
  in
  Vm.set_app server.vm (fun sim' pkt -> server_app t sim' pkt);
  Vm.set_app client.vm (fun sim' pkt -> client_app t sim' pkt);
  let t_end = Sim.now sim +. duration in
  let sport = ref (max 1024 (sport_base land 0xffff)) in
  let rec arrival sim' =
    if Sim.now sim' < t_end then begin
      sport := if !sport >= 65535 then 1024 else !sport + 1;
      open_connection t !sport;
      ignore (Sim.schedule sim' ~delay:(Rng.exponential rng ~mean:(1.0 /. rate)) arrival : Sim.handle)
    end
  in
  ignore (Sim.schedule sim ~delay:(Rng.exponential rng ~mean:(1.0 /. rate)) arrival : Sim.handle);
  t

let start_closed ~sim ~rng ~vpc ~client ~server ~concurrency ~duration ?(dport = 80)
    ?(request_bytes = 64) ?(response_bytes = 512) ?(conn_timeout = 1.0) ?(retransmit = false) () =
  if concurrency <= 0 || duration <= 0.0 then
    invalid_arg "Tcp_crr.start_closed: concurrency and duration positive";
  let t =
    {
      sim;
      vpc;
      client;
      server;
      dport;
      request_bytes;
      response_bytes;
      duration;
      conns = Hashtbl.create 4096;
      offered = 0;
      established = 0;
      completed = 0;
      latencies = Stats.Histogram.create ();
      first_packet = Stats.Histogram.create ();
      on_conn_end = (fun _ -> ());
      retransmissions = 0;
      failed = 0;
    }
  in
  Vm.set_app server.vm (fun sim' pkt -> server_app t sim' pkt);
  Vm.set_app client.vm (fun sim' pkt -> client_app t sim' pkt);
  let t_end = Sim.now sim +. duration in
  let sport = ref (1024 + Rng.int rng 1000) in
  let resend this (conn : conn) =
    t.retransmissions <- t.retransmissions + 1;
    let flow =
      Five_tuple.make ~src:t.client.ip ~dst:t.server.ip ~src_port:this ~dst_port:t.dport
        ~proto:Five_tuple.Tcp
    in
    match conn.synack_at with
    | None ->
      send t.client (Packet.create ~vpc:t.vpc ~flow ~direction:Packet.Tx ~flags:Packet.syn ())
    | Some _ ->
      send t.client
        (Packet.create ~vpc:t.vpc ~flow ~direction:Packet.Tx ~flags:Packet.ack
           ~payload_len:t.request_bytes ())
  in
  let rec launch sim' =
    if Sim.now sim' < t_end then begin
      sport := if !sport >= 65535 then 1024 else !sport + 1;
      let this = !sport in
      open_connection t this;
      arm_timeout sim' this 0

    end
  (* A lost packet would leak the slot forever: on timeout either
     retransmit with exponential backoff or reclaim the slot. *)
  and arm_timeout sim' this attempt =
    let delay =
      if retransmit then Float.min 8.0 (0.25 *. (2.0 ** float_of_int attempt))
      else conn_timeout
    in
    ignore
      (Sim.schedule sim' ~delay (fun sim'' ->
           match Hashtbl.find_opt t.conns this with
           | Some c when not c.done_ ->
             if retransmit && attempt < 6 then begin
               resend this c;
               arm_timeout sim'' this (attempt + 1)
             end
             else begin
               t.failed <- t.failed + 1;
               Hashtbl.remove t.conns this;
               launch sim''
             end
           | Some _ | None -> ())
        : Sim.handle)
  in
  t.on_conn_end <- (fun _ -> launch sim);
  for _ = 1 to concurrency do
    ignore (Sim.schedule sim ~delay:(Rng.float rng 0.01) launch : Sim.handle)
  done;
  t

let retransmissions t = t.retransmissions
let failed t = t.failed

let offered t = t.offered
let established t = t.established
let completed t = t.completed
let achieved_cps t = float_of_int t.completed /. t.duration
let latencies t = t.latencies
let first_packet_latencies t = t.first_packet
