(** Persistent-connection workload: session-table pressure (§2.2.2).

    L4 load balancers keep long-lived connections to every real server;
    the resulting session-table bloat is what caps #concurrent flows.
    This generator opens [target] connections and keeps each alive with
    periodic keep-alive packets (so aging never reclaims them), then
    reports how many sessions the vSwitch actually sustained. *)

open Nezha_engine
open Nezha_net

type t

val start :
  sim:Sim.t ->
  rng:Rng.t ->
  vpc:Vpc.t ->
  client:Tcp_crr.endpoint ->
  server:Tcp_crr.endpoint ->
  target:int ->
  ?ramp_rate:float ->
  ?keepalive:float ->
  unit ->
  t
(** Open [target] flows at [ramp_rate]/s (default 2000), each refreshed
    every [keepalive] seconds (default half the aging time is the
    caller's job; default 3 s). *)

val opened : t -> int
val live_flows : t -> unit -> int
(** Sessions currently held in the server-side vSwitch for the target
    vNIC. *)

val rejected : t -> int
(** Keep-alives or opens that found the session gone (table-full
    eviction). *)

val stop : t -> unit
