(** PCI bus/device/function (BDF) budget of a VM (§7.4).

    Once Nezha removes the vSwitch memory ceiling, the next #vNIC
    bottleneck is PCI addressing: without SR-IOV/SIOV each vNIC burns one
    of the 256 bus numbers, most of which essential functions (storage,
    compute, encryption) already hold.  The two §7.4 escapes are modeled:
    virtual-function expansion (device(5)+function(3) bits add 256 more
    addresses) and child vNICs multiplexed over a parent's I/O adapter
    with packet tags, consuming no BDF at all. *)

type mode =
  | Legacy  (** bus field only: 256 addresses *)
  | Sriov  (** SR-IOV/SIOV: device and function fields usable too *)

type t

val create : ?mode:mode -> ?reserved:int -> unit -> t
(** [reserved] (default 220) addresses are pre-allocated to storage,
    compute and encryption functions.
    @raise Invalid_argument if [reserved] exceeds the address space. *)

val mode : t -> mode
val capacity : t -> int
(** Addresses available to vNICs. *)

val allocated : t -> int
val children : t -> int

val allocate_vnic : t -> (int, [ `No_bdf ]) result
(** Claim a BDF for a full vNIC; the int is the address. *)

val release_vnic : t -> int -> unit

val attach_child : t -> parent:int -> (unit, [ `No_parent ]) result
(** Bind a child vNIC to an allocated parent adapter: tagged traffic
    shares the parent's I/O path, no BDF consumed.  Fails if [parent]
    is not an allocated address. *)

val total_vnics : t -> int
(** Full vNICs + children: what the VM can actually address. *)
