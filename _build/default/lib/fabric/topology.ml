open Nezha_net

type server_id = int

type t = { racks : int; servers_per_rack : int }

let create ~racks ~servers_per_rack =
  if racks <= 0 || servers_per_rack <= 0 then
    invalid_arg "Topology.create: dimensions must be positive";
  if racks > 250 || servers_per_rack > 250 then
    invalid_arg "Topology.create: at most 250 racks x 250 servers (addressing)";
  { racks; servers_per_rack }

let server_count t = t.racks * t.servers_per_rack

let servers t = List.init (server_count t) Fun.id

let rack_of t sid = sid / t.servers_per_rack

let servers_in_rack t rack =
  List.init t.servers_per_rack (fun i -> (rack * t.servers_per_rack) + i)

let same_rack t a b = rack_of t a = rack_of t b

(* Underlay plan: 192.168.<rack+1>.<slot+1>; the gateway is 192.168.0.1. *)
let underlay_ip t sid =
  let rack = rack_of t sid and slot = sid mod t.servers_per_rack in
  Ipv4.of_octets 192 168 (rack + 1) (slot + 1)

let server_of_ip t addr =
  let raw = Int32.to_int (Ipv4.to_int32 addr) in
  let a = (raw lsr 24) land 0xff
  and b = (raw lsr 16) land 0xff
  and c = (raw lsr 8) land 0xff
  and d = raw land 0xff in
  if a <> 192 || b <> 168 || c < 1 || d < 1 then None
  else begin
    let rack = c - 1 and slot = d - 1 in
    if rack < t.racks && slot < t.servers_per_rack then
      Some ((rack * t.servers_per_rack) + slot)
    else None
  end

let gateway_ip _t = Ipv4.of_octets 192 168 0 1

let same_server_latency = 2e-6
let same_rack_latency = 10e-6
let cross_rack_latency = 25e-6
let gateway_latency = 40e-6

let latency t a b =
  if a = b then same_server_latency
  else if same_rack t a b then same_rack_latency
  else cross_rack_latency

let latency_to_gateway _t _sid = gateway_latency
