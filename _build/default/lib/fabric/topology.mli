(** Data-center topology: servers under ToR switches under an
    aggregation layer.

    Nezha's FE-selection strategy prefers idle vSwitches under the same
    ToR as the BE and widens to higher layers only when necessary
    (§4.2.1, App. B.1), so the topology must expose rack locality and a
    hop-dependent latency. *)

open Nezha_net

type server_id = int

type t

val create : racks:int -> servers_per_rack:int -> t
(** @raise Invalid_argument on non-positive dimensions. *)

val server_count : t -> int
val servers : t -> server_id list
val rack_of : t -> server_id -> int
val servers_in_rack : t -> int -> server_id list
val same_rack : t -> server_id -> server_id -> bool

val underlay_ip : t -> server_id -> Ipv4.t
(** Stable per-server underlay address. *)

val server_of_ip : t -> Ipv4.t -> server_id option

val gateway_ip : t -> Ipv4.t
(** The region gateway's underlay address (not a server). *)

val latency : t -> server_id -> server_id -> float
(** One-way delivery latency in seconds: same server ~2 µs (NIC
    loopback), same rack ~10 µs (one ToR hop), cross-rack ~25 µs
    (through aggregation).  These are the "few tens of µs" of §3.2.1. *)

val latency_to_gateway : t -> server_id -> float
(** Gateways sit behind the core: ~40 µs. *)
