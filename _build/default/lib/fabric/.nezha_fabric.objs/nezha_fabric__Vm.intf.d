lib/fabric/vm.mli: Nezha_engine Nezha_net Packet Sim
