lib/fabric/fabric.ml: Array Gateway Hashtbl Ipv4 Nezha_engine Nezha_net Nezha_vswitch Packet Printf Sim Topology Vm Vnic Vswitch
