lib/fabric/vm.ml: Float Nezha_engine Nezha_net Packet Sim
