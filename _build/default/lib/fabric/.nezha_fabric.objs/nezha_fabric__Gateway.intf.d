lib/fabric/gateway.mli: Ipv4 Nezha_net Nezha_vswitch Packet Vnic
