lib/fabric/topology.mli: Ipv4 Nezha_net
