lib/fabric/topology.ml: Fun Int32 Ipv4 List Nezha_net
