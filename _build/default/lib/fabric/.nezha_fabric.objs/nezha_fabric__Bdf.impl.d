lib/fabric/bdf.ml: Hashtbl
