lib/fabric/bdf.mli:
