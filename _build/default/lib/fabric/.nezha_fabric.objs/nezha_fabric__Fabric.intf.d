lib/fabric/fabric.mli: Gateway Nezha_engine Nezha_net Nezha_vswitch Params Sim Topology Vm Vnic Vswitch
