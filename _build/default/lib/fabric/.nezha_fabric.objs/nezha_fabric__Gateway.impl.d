lib/fabric/gateway.ml: Array Five_tuple Ipv4 Nezha_net Nezha_vswitch Packet Vnic Vpc
