open Nezha_engine
open Nezha_net
open Nezha_vswitch

type t = {
  sim : Sim.t;
  topology : Topology.t;
  gateway : Gateway.t;
  switches : Vswitch.t option array;
  vms : (int * Vnic.id, Vm.t) Hashtbl.t;
  mutable delivered_to_vms : int;
  mutable lost : int;
  mutable tap : (time:float -> Packet.t -> unit) option;
}

let create ~sim ~topology =
  let t =
    {
      sim;
      topology;
      gateway = Gateway.create ();
      switches = Array.make (Topology.server_count topology) None;
      vms = Hashtbl.create 64;
      delivered_to_vms = 0;
      lost = 0;
      tap = None;
    }
  in
  Gateway.set_forward t.gateway (fun ~dst pkt ->
      match Topology.server_of_ip topology dst with
      | None -> t.lost <- t.lost + 1
      | Some target ->
        let delay = Topology.latency_to_gateway topology target in
        ignore
          (Sim.schedule t.sim ~delay (fun _ ->
               match t.switches.(target) with
               | Some vs -> Vswitch.from_net vs pkt
               | None -> t.lost <- t.lost + 1)
            : Sim.handle));
  t

let sim t = t.sim
let topology t = t.topology
let gateway t = t.gateway

let deliver_to_server t ~src pkt =
  (match t.tap with Some tap -> tap ~time:(Sim.now t.sim) pkt | None -> ());
  match pkt.Packet.vxlan with
  | None -> t.lost <- t.lost + 1
  | Some v ->
    let outer_dst = v.Packet.outer_dst in
    if Ipv4.equal outer_dst (Topology.gateway_ip t.topology) then begin
      let delay = Topology.latency_to_gateway t.topology src in
      ignore (Sim.schedule t.sim ~delay (fun _ -> Gateway.handle t.gateway pkt) : Sim.handle)
    end
    else begin
      match Topology.server_of_ip t.topology outer_dst with
      | None -> t.lost <- t.lost + 1
      | Some target ->
        let delay = Topology.latency t.topology src target in
        ignore
          (Sim.schedule t.sim ~delay (fun _ ->
               match t.switches.(target) with
               | Some vs -> Vswitch.from_net vs pkt
               | None -> t.lost <- t.lost + 1)
            : Sim.handle)
    end

let add_server t sid ~params =
  if sid < 0 || sid >= Array.length t.switches then invalid_arg "Fabric.add_server: bad id";
  (match t.switches.(sid) with
  | Some _ -> invalid_arg "Fabric.add_server: server already populated"
  | None -> ());
  let vs =
    Vswitch.create ~sim:t.sim ~params
      ~name:(Printf.sprintf "vs-%d" sid)
      ~underlay_ip:(Topology.underlay_ip t.topology sid)
      ~gateway:(Topology.gateway_ip t.topology) ()
  in
  (* On-demand vNIC-server learning from the gateway (200 ms interval). *)
  Vswitch.set_mapping_learner vs
    (Some
       (fun addr ->
         match Gateway.lookup t.gateway addr with
         | Some targets -> Some (targets, 0.2)
         | None -> None));
  Vswitch.set_transmit vs (function
    | Vswitch.To_net pkt -> deliver_to_server t ~src:sid pkt
    | Vswitch.To_vm (vid, pkt) -> (
      t.delivered_to_vms <- t.delivered_to_vms + 1;
      match Hashtbl.find_opt t.vms (sid, vid) with
      | Some vm -> Vm.deliver vm pkt
      | None -> ()));
  t.switches.(sid) <- Some vs;
  vs

let vswitch_opt t sid =
  if sid < 0 || sid >= Array.length t.switches then None else t.switches.(sid)

let vswitch t sid =
  match vswitch_opt t sid with Some vs -> vs | None -> raise Not_found

let server_of_vswitch t vs =
  let n = Array.length t.switches in
  let rec probe i =
    if i >= n then raise Not_found
    else begin
      match t.switches.(i) with Some v when v == vs -> i | Some _ | None -> probe (i + 1)
    end
  in
  probe 0

let attach_vm t sid vid vm = Hashtbl.replace t.vms (sid, vid) vm

let vm_of t sid vid = Hashtbl.find_opt t.vms (sid, vid)

let set_tap t tap = t.tap <- tap

let delivered_to_vms t = t.delivered_to_vms
let lost t = t.lost
