(** The delivery engine: wires vSwitches, VMs and the gateway together
    over the topology's latencies. *)

open Nezha_engine
open Nezha_vswitch

type t

val create : sim:Sim.t -> topology:Topology.t -> t

val sim : t -> Sim.t
val topology : t -> Topology.t
val gateway : t -> Gateway.t

val add_server : t -> Topology.server_id -> params:Params.t -> Vswitch.t
(** Create a vSwitch on the server, install its transmit path, and
    register it for delivery.  @raise Invalid_argument if the server
    already has one or the id is out of range. *)

val vswitch : t -> Topology.server_id -> Vswitch.t
(** @raise Not_found when the server has no vSwitch. *)

val vswitch_opt : t -> Topology.server_id -> Vswitch.t option

val server_of_vswitch : t -> Vswitch.t -> Topology.server_id

val attach_vm : t -> Topology.server_id -> Vnic.id -> Vm.t -> unit
(** Deliveries ([To_vm]) for this vNIC reach the VM's kernel model.
    Unattached vNICs sink their deliveries (still counted). *)

val vm_of : t -> Topology.server_id -> Vnic.id -> Vm.t option

val set_tap : t -> (time:float -> Nezha_net.Packet.t -> unit) option -> unit
(** A wire tap: invoked for every packet as it enters the underlay
    (still encapsulated).  Pair with {!Nezha_net.Frame.synthesize} and
    {!Nezha_net.Pcap} to capture simulation traffic as a pcap file. *)

val delivered_to_vms : t -> int
(** Packets handed to VM models or sunk. *)

val lost : t -> int
(** Packets whose outer destination matched no server — a wiring bug or
    a crashed/removed node. *)
