type mode = Legacy | Sriov

type t = {
  mode : mode;
  capacity : int;
  mutable next : int;
  allocated : (int, int) Hashtbl.t; (* bdf -> child count *)
}

let space = function Legacy -> 256 | Sriov -> 512

let create ?(mode = Legacy) ?(reserved = 220) () =
  if reserved < 0 || reserved > space mode then
    invalid_arg "Bdf.create: reserved outside the address space";
  { mode; capacity = space mode - reserved; next = 0; allocated = Hashtbl.create 32 }

let mode t = t.mode
let capacity t = t.capacity
let allocated t = Hashtbl.length t.allocated

let children t = Hashtbl.fold (fun _ c acc -> acc + c) t.allocated 0

let allocate_vnic t =
  if Hashtbl.length t.allocated >= t.capacity then Error `No_bdf
  else begin
    let bdf = t.next in
    t.next <- t.next + 1;
    Hashtbl.replace t.allocated bdf 0;
    Ok bdf
  end

let release_vnic t bdf = Hashtbl.remove t.allocated bdf

let attach_child t ~parent =
  match Hashtbl.find_opt t.allocated parent with
  | None -> Error `No_parent
  | Some c ->
    Hashtbl.replace t.allocated parent (c + 1);
    Ok ()

let total_vnics t = allocated t + children t
