(** A Sirius-style baseline (Bansal et al., NSDI'23; §2.3.3, §8).

    Sirius disaggregates the *whole* vSwitch processing of high-demand
    vNICs — rule tables, cached flows and session state — onto a pool of
    dedicated high-performance DPUs.  Because state lives in the pool,
    fault tolerance needs primary/backup replication, implemented in-line
    by ping-ponging state-changing packets between the two cards of a
    pair: a new connection consumes processing on both cards, so the
    achievable CPS is half the pool's aggregate capacity (§2.3.3).

    Load balancing hashes flows into a fixed number of buckets assigned
    to card pairs; moving load reassigns buckets, and sessions of
    long-lived flows must be state-transferred to the new owner.

    The model reuses the same {!Nezha_vswitch.Smartnic} substrate with a
    higher cycle budget (a Pensando-class card), so the comparison with
    Nezha isolates the *architectural* difference: remote state +
    replication versus local single-copy state. *)

open Nezha_vswitch
open Nezha_fabric

type t

val create :
  fabric:Fabric.t ->
  cards:Topology.server_id list ->
  ?dpu_speedup:float ->
  ?buckets:int ->
  unit ->
  t
(** Build a DPU pool on the given (otherwise empty) servers.  Cards are
    created as vSwitches with [dpu_speedup] × the CPU of a server
    SmartNIC (default 4) and paired consecutively: card 2k is primary for
    its buckets, card 2k+1 its backup.
    @raise Invalid_argument if fewer than 2 cards or an odd count. *)

val card_vswitches : t -> Vswitch.t list

val offload_vnic :
  t -> server:Topology.server_id -> vnic:Vnic.id -> (unit, string) result
(** Take over a vNIC: replicate its rule tables onto every card, install
    a pass-through on the host (TX packets steer to the owning card by
    bucket hash) and point the gateway/senders at the pool. *)

val rebalance : t -> unit
(** Reassign buckets round-robin to spread load; sessions whose bucket
    moved are state-transferred to the new owner (counted). *)

(** {1 Counters for the comparison benches} *)

val connections_processed : t -> int
val replication_pingpongs : t -> int
(** State-changing packets that consumed the backup card too. *)

val state_transfers : t -> int
val pool_cycles : t -> int
(** Total cycles charged across the pool (both cards of each pair). *)
