lib/baselines/sirius.mli: Fabric Nezha_fabric Nezha_vswitch Topology Vnic Vswitch
