(* Chaos walkthrough: run the offloaded testbed on a deliberately nasty
   underlay — probabilistic loss, an FE SmartNIC crash and a hard server
   partition — and watch the loss-recovery machinery hold the line: BE
   hop retransmissions re-steer around dead FEs, the monitor detects and
   replaces them, and healing drains the damage.

     dune exec examples/chaos_demo.exe *)

open Nezha_engine
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_harness
open Nezha_workloads

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  let t = Testbed.create ~seed:42 () in
  let o = Testbed.offload t () in
  Controller.start t.Testbed.ctl;
  let t0 = Sim.now t.Testbed.sim in
  let faults = t.Testbed.faults in
  let fes0 = Controller.offload_fe_servers o in
  say "Offloaded to FEs on servers %s; fault plane armed (seed 42)."
    (String.concat ", " (List.map string_of_int fes0));

  (* Steady connection load through the pool. *)
  Array.iter
    (fun client ->
      ignore
        (Tcp_crr.start ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
           ~client ~server:t.Testbed.server ~rate:300.0 ~duration:12.0 ()
          : Tcp_crr.t))
    t.Testbed.clients;

  (* The scripted schedule, relative to the post-offload clock. *)
  Faults.at faults ~time:(t0 +. 1.0) (fun f ->
      say "t=1.0s  IMPAIR: every underlay hop now drops 0.5%% of packets";
      Faults.set_default f (Faults.impair ~loss:0.005 ()));
  let victim = List.hd fes0 in
  ignore
    (Sim.at t.Testbed.sim ~time:(t0 +. 3.0) (fun sim ->
         say "t=%.1fs  CRASH: SmartNIC on FE server %d dies" (Sim.now sim -. t0) victim;
         Smartnic.crash (Vswitch.nic (Fabric.vswitch t.Testbed.fabric victim)))
      : Sim.handle);
  let cut = ref (-1) in
  Faults.at faults ~time:(t0 +. 6.0) (fun f ->
      match Controller.offload_fe_servers o with
      | s :: _ ->
        cut := s;
        say "t=6.0s  PARTITION: server %d unreachable in both directions" s;
        Faults.cut_server f s
      | [] -> ());
  Faults.at faults ~time:(t0 +. 9.0) (fun f ->
      if !cut >= 0 then begin
        say "t=9.0s  HEAL: partition repaired";
        Faults.heal_server f !cut
      end);
  Faults.at faults ~time:(t0 +. 11.0) (fun f ->
      say "t=11.0s PERFECT: impairments cleared";
      Faults.set_default f Faults.perfect);

  (* Narrate the FE set as failover reshapes it. *)
  let last_fes = ref fes0 in
  Sim.every t.Testbed.sim ~period:0.5 (fun sim ->
      let now = Sim.now sim -. t0 in
      if now <= 13.0 then begin
        let fes = Controller.offload_fe_servers o in
        if fes <> !last_fes then begin
          say "t=%.1fs  FE set changed: %s -> %s" now
            (String.concat "," (List.map string_of_int !last_fes))
            (String.concat "," (List.map string_of_int fes));
          last_fes := fes
        end;
        true
      end
      else false);

  Sim.run t.Testbed.sim ~until:(t0 +. 14.0);

  let be = Controller.offload_be o in
  let c = Be.counters be in
  let v n = Stats.Counter.value n in
  let mon = Controller.monitor t.Testbed.ctl in
  say "";
  say "BE hop tracker: %d tracked = %d acked + %d local fallback + %d dropped + %d outstanding"
    (v c.Be.offload_tracked) (v c.Be.offload_acked) (v c.Be.local_fallback)
    (v c.Be.offload_dropped) (Be.outstanding be);
  say "Recovery: %d timeouts, %d retransmissions (%d re-steered to another FE)"
    (v c.Be.offload_timeouts) (v c.Be.offload_retx) (v c.Be.offload_resteered);
  say "Fault plane: %d probabilistic drops, %d partition drops"
    (Faults.drops_injected faults) (Faults.partition_drops faults);
  say "Monitor: %d probes missed, %d failure(s) declared"
    (Monitor.probes_missed mon) (Monitor.failures_declared mon);
  say "Connections accepted end-to-end: %d — chaos absorbed, no blackhole."
    (Vm.connections_accepted t.Testbed.server.Tcp_crr.vm)
