(* Quickstart: build a two-server cloud, run traffic through the
   traditional local vSwitch path, then offload the busy vNIC to a
   remote FE pool and watch the datapath change shape.

     dune exec examples/quickstart.exe *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric
open Nezha_core

let ip = Ipv4.of_string_exn
let pfx s = Option.get (Ipv4.Prefix.of_string s)
let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  (* 1. A simulation, a topology, a fabric. ------------------------- *)
  let sim = Sim.create () in
  let rng = Rng.create 2026 in
  let topo = Topology.create ~racks:2 ~servers_per_rack:4 in
  let fabric = Fabric.create ~sim ~topology:topo in
  say "Built a fabric: %d servers in 2 racks, gateway at %s"
    (Topology.server_count topo)
    (Ipv4.to_string (Topology.gateway_ip topo));

  (* 2. vSwitches on every server (scaled SmartNIC parameters). ------ *)
  let params = Params.scaled in
  let switches = List.map (fun s -> Fabric.add_server fabric s ~params) (Topology.servers topo) in
  let vs0 = List.nth switches 0 and vs1 = List.nth switches 1 in

  (* 3. Two tenant vNICs in VPC 7: a web server and a client. -------- *)
  let vpc = Vpc.make 7 in
  let web = Vnic.make ~id:1 ~vpc ~ip:(ip "10.0.0.10") ~mac:(Mac.of_int64 0xAAL) in
  let client = Vnic.make ~id:2 ~vpc ~ip:(ip "10.0.0.20") ~mac:(Mac.of_int64 0xBBL) in
  let web_rules = Ruleset.create ~vni:7 () in
  Ruleset.add_route web_rules (pfx "10.0.0.0/8");
  Ruleset.add_mapping web_rules { Vnic.Addr.vpc; ip = ip "10.0.0.20" } (Topology.underlay_ip topo 1);
  let client_rules = Ruleset.create ~vni:7 () in
  Ruleset.add_route client_rules (pfx "10.0.0.0/8");
  Ruleset.add_mapping client_rules { Vnic.Addr.vpc; ip = ip "10.0.0.10" } (Topology.underlay_ip topo 0);
  assert (Vswitch.add_vnic vs0 web web_rules = Ok ());
  assert (Vswitch.add_vnic vs1 client client_rules = Ok ());

  (* 4. VMs behind the vNICs; the web VM answers SYNs. --------------- *)
  let web_vm = Vm.create ~sim ~name:"web" ~vcpus:16 () in
  let client_vm = Vm.create ~sim ~name:"client" ~vcpus:8 () in
  Fabric.attach_vm fabric 0 web.Vnic.id web_vm;
  Fabric.attach_vm fabric 1 client.Vnic.id client_vm;
  Vm.set_app web_vm (fun _ pkt ->
      let resp =
        Packet.create ~vpc ~flow:(Five_tuple.reverse pkt.Packet.flow) ~direction:Packet.Tx
          ~flags:Packet.syn_ack ()
      in
      Vswitch.from_vm vs0 web.Vnic.id resp);
  Gateway.set_route (Fabric.gateway fabric) (Vnic.addr web) [| Topology.underlay_ip topo 0 |];
  Gateway.set_route (Fabric.gateway fabric) (Vnic.addr client) [| Topology.underlay_ip topo 1 |];

  (* 5. Traditional path: client opens 100 connections. -------------- *)
  for i = 1 to 100 do
    let syn =
      Packet.create ~vpc
        ~flow:
          (Five_tuple.make ~src:(ip "10.0.0.20") ~dst:(ip "10.0.0.10") ~src_port:(40000 + i)
             ~dst_port:80 ~proto:Five_tuple.Tcp)
        ~direction:Packet.Tx ~flags:Packet.syn ()
    in
    Vswitch.from_vm vs1 client.Vnic.id syn
  done;
  Sim.run sim ~until:1.0;
  let c0 = Vswitch.counters vs0 in
  say "";
  say "Local path: web vSwitch ran %d slow paths, cached %d sessions, VM accepted %d connections"
    (Stats.Counter.value c0.Vswitch.slow_path_execs)
    (Vswitch.session_count vs0 web.Vnic.id)
    (Vm.connections_accepted web_vm);
  say "Client VM received %d SYN-ACKs" (Vm.packets_delivered client_vm);

  (* 6. Offload the web vNIC to 4 idle FEs. -------------------------- *)
  let ctl =
    Controller.create
      ~config:{ Controller.default_config with Controller.auto_offload = false; auto_scale = false }
      ~fabric ~rng ()
  in
  (match Controller.offload_vnic ctl ~server:0 ~vnic:web.Vnic.id () with
  | Ok _ -> ()
  | Error e -> failwith e);
  Sim.run sim ~until:(Sim.now sim +. 5.0);
  let o = Option.get (Controller.find_offload ctl ~server:0 ~vnic:web.Vnic.id) in
  say "";
  say "Offloaded the web vNIC: stage=%s, FEs on servers %s, local rule tables %s"
    (match Controller.offload_stage o with Be.Final -> "final" | Be.Dual -> "dual-running")
    (String.concat ", " (List.map string_of_int (Controller.offload_fe_servers o)))
    (match Vswitch.ruleset vs0 web.Vnic.id with None -> "dropped" | Some _ -> "still present");

  (* 7. Same traffic, new shape: client -> FE -> BE -> VM. ----------- *)
  for i = 1 to 100 do
    let syn =
      Packet.create ~vpc
        ~flow:
          (Five_tuple.make ~src:(ip "10.0.0.20") ~dst:(ip "10.0.0.10") ~src_port:(50000 + i)
             ~dst_port:80 ~proto:Five_tuple.Tcp)
        ~direction:Packet.Tx ~flags:Packet.syn ()
    in
    Vswitch.from_vm vs1 client.Vnic.id syn
  done;
  Sim.run sim ~until:(Sim.now sim +. 1.0);
  let be = Controller.offload_be o in
  let bc = Be.counters be in
  say "Nezha path: BE saw %d packets arrive with piggybacked pre-actions and sent %d via FEs"
    (Stats.Counter.value bc.Be.rx_from_fe)
    (Stats.Counter.value bc.Be.tx_via_fe);
  List.iter
    (fun s ->
      match Controller.fe_service ctl s with
      | Some fe ->
        let fc = Fe.counters fe in
        say "  FE on server %d: %d rule lookups, %d cached flows, %d packets forwarded to BE" s
          (Stats.Counter.value fc.Fe.rule_lookups)
          (Fe.cached_flow_count fe)
          (Stats.Counter.value fc.Fe.rx_forwarded)
      | None -> ())
    (Controller.offload_fe_servers o);
  say "Web VM accepted %d connections in total — service never blinked."
    (Vm.connections_accepted web_vm);

  (* 8. One telemetry snapshot replaces the hand-collected reads. ----- *)
  let open Nezha_telemetry in
  let reg = Telemetry.create () in
  List.iter (fun vs -> Vswitch.register_telemetry vs reg) switches;
  Controller.register_telemetry ctl reg;
  say "";
  say "Telemetry registry holds %d metrics; the web vSwitch's view:" (Telemetry.cardinality reg);
  List.iter
    (fun name ->
      let interesting =
        String.length name > 13 && String.sub name 0 13 = "vswitch/vs-0/"
        || String.length name > 3 && String.sub name 0 3 = "fe/"
        || String.length name > 11 && String.sub name 0 11 = "controller/"
      in
      if interesting then
        match Telemetry.read reg name with
        | Some (Telemetry.Counter n) when n > 0 -> say "  %-40s %d" name n
        | Some (Telemetry.Gauge g) when g > 0.0 -> say "  %-40s %.2f" name g
        | Some (Telemetry.Histogram s) when s.Telemetry.count > 0 ->
          say "  %-40s count=%d p99=%.1f" name s.Telemetry.count s.Telemetry.p99
        | _ -> ())
    (Telemetry.names reg)
