type kind = Stage | Wire | Detail | Mark

type site = Local | Remote

type span = {
  trace : int;
  name : string;
  component : string;
  kind : kind;
  site : site;
  t0 : float;
  dur : float;
  args : (string * string) list;
}

type record = { t_begin : float; mutable t_end : float option }

type t = {
  mutable enabled : bool;
  mutable sample_every : int;
  mutable next : int;  (** packets seen at allocation sites *)
  ring : span array;
  mutable head : int;  (** next write slot *)
  mutable len : int;
  mutable dropped : int;
  traces : (int, record) Hashtbl.t;
  mutable order : int list;  (** begin order, newest first *)
}

let dummy_span =
  { trace = 0; name = ""; component = ""; kind = Mark; site = Local; t0 = 0.0; dur = 0.0; args = [] }

let create ?(capacity = 65536) ?(sample_every = 1) ?(enabled = false) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if sample_every <= 0 then invalid_arg "Trace.create: sample_every must be positive";
  {
    enabled;
    sample_every;
    next = 0;
    ring = Array.make capacity dummy_span;
    head = 0;
    len = 0;
    dropped = 0;
    traces = Hashtbl.create 256;
    order = [];
  }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let set_sample_every t n =
  if n <= 0 then invalid_arg "Trace.set_sample_every: must be positive";
  t.sample_every <- n

let capacity t = Array.length t.ring

let next_id t =
  if not t.enabled then 0
  else begin
    let n = t.next in
    t.next <- n + 1;
    if n mod t.sample_every = 0 then n + 1 (* ids start at 1; 0 = untraced *)
    else 0
  end

let begin_trace t ~id ~now =
  if t.enabled && id <> 0 && not (Hashtbl.mem t.traces id) then begin
    Hashtbl.replace t.traces id { t_begin = now; t_end = None };
    t.order <- id :: t.order
  end

let end_trace t ~id ~now =
  if t.enabled && id <> 0 then begin
    match Hashtbl.find_opt t.traces id with
    | Some ({ t_end = None; _ } as r) -> r.t_end <- Some now
    | Some { t_end = Some _; _ } | None -> ()
  end

let push t span =
  let cap = Array.length t.ring in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.ring.(t.head) <- span;
  t.head <- (t.head + 1) mod cap

let add_span t ~id ~name ~component ?(kind = Stage) ?(site = Local) ?(args = []) ~t0 ~t1 () =
  if t.enabled && id <> 0 then
    push t { trace = id; name; component; kind; site; t0; dur = t1 -. t0; args }

let mark t ~id ~name ~component ?(args = []) ~now () =
  if t.enabled && id <> 0 then
    push t { trace = id; name; component; kind = Mark; site = Local; t0 = now; dur = 0.0; args }

let span_count t = t.len
let dropped_spans t = t.dropped

(* Oldest-to-newest walk over the live portion of the ring. *)
let iter_spans t f =
  let cap = Array.length t.ring in
  let start = (t.head - t.len + cap) mod cap in
  for i = 0 to t.len - 1 do
    f t.ring.((start + i) mod cap)
  done

let trace_ids t = List.rev t.order

let completed_ids t =
  List.rev
    (List.filter
       (fun id ->
         match Hashtbl.find_opt t.traces id with
         | Some { t_end = Some _; _ } -> true
         | Some _ | None -> false)
       t.order)

let interval t ~id =
  Option.map (fun r -> (r.t_begin, r.t_end)) (Hashtbl.find_opt t.traces id)

let spans_of t ~id =
  let acc = ref [] in
  iter_spans t (fun s -> if s.trace = id then acc := s :: !acc);
  List.stable_sort (fun a b -> compare a.t0 b.t0) (List.rev !acc)

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.next <- 0;
  t.order <- [];
  Hashtbl.reset t.traces

type attribution = {
  t_begin : float;
  t_end : float;
  e2e : float;
  local_s : float;
  remote_s : float;
  residual : float;
}

let attribute t ~id =
  match Hashtbl.find_opt t.traces id with
  | Some { t_begin; t_end = Some t_end } ->
    let local_s = ref 0.0 and remote_s = ref 0.0 in
    iter_spans t (fun s ->
        if s.trace = id then begin
          match s.kind with
          | Stage | Wire -> (
            match s.site with
            | Local -> local_s := !local_s +. s.dur
            | Remote -> remote_s := !remote_s +. s.dur)
          | Detail | Mark -> ()
        end);
    let e2e = t_end -. t_begin in
    Some
      {
        t_begin;
        t_end;
        e2e;
        local_s = !local_s;
        remote_s = !remote_s;
        residual = e2e -. !local_s -. !remote_s;
      }
  | Some { t_end = None; _ } | None -> None

let conservation_error t ~id =
  Option.map (fun a -> Float.abs a.residual) (attribute t ~id)

let kind_to_string = function
  | Stage -> "stage"
  | Wire -> "wire"
  | Detail -> "detail"
  | Mark -> "mark"

let site_to_string = function Local -> "local" | Remote -> "remote"

let us x = x *. 1e6

let event_args component args =
  Json.Obj
    (("component", Json.String component)
    :: List.map (fun (k, v) -> (k, Json.String v)) args)

let span_event s =
  match s.kind with
  | Mark ->
    Json.Obj
      [
        ("name", Json.String s.name);
        ("cat", Json.String "mark");
        ("ph", Json.String "i");
        ("s", Json.String "t");
        ("ts", Json.Float (us s.t0));
        ("pid", Json.Int 1);
        ("tid", Json.Int s.trace);
        ("args", event_args s.component s.args);
      ]
  | Stage | Wire | Detail ->
    Json.Obj
      [
        ("name", Json.String s.name);
        ("cat", Json.String (kind_to_string s.kind ^ "," ^ site_to_string s.site));
        ("ph", Json.String "X");
        ("ts", Json.Float (us s.t0));
        ("dur", Json.Float (us s.dur));
        ("pid", Json.Int 1);
        ("tid", Json.Int s.trace);
        ("args", event_args s.component s.args);
      ]

let to_chrome_json t =
  let events = ref [] in
  iter_spans t (fun s -> events := span_event s :: !events);
  (* Synthetic end-to-end event per completed trace, so viewers show the
     measured latency alongside the tiling stages. *)
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.traces id with
      | Some { t_begin; t_end = Some t_end } ->
        events :=
          Json.Obj
            [
              ("name", Json.String "e2e");
              ("cat", Json.String "e2e");
              ("ph", Json.String "X");
              ("ts", Json.Float (us t_begin));
              ("dur", Json.Float (us (t_end -. t_begin)));
              ("pid", Json.Int 1);
              ("tid", Json.Int id);
              ("args", Json.Obj []);
            ]
          :: !events
      | Some { t_end = None; _ } | None -> ())
    (trace_ids t);
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]
