(** Unified telemetry: a metrics registry, a virtual-time sampler, and
    JSON/CSV exporters.

    The paper's whole evaluation is measurement — P9999 utilization
    tails over O(10K) vSwitches (Fig. 2/4), per-FE cycle attribution
    driving scale-out and scale-in (§4.3, Fig. 8), latency/CPS curves
    over time (Figs. 11–12) — so every component registers its
    instruments here instead of exposing ad-hoc getters.

    {2 Instruments}

    Three kinds, all {e polled}: the registry stores a closure (or a
    {!Stats.Histogram.t} handle) and reads it at snapshot time, so
    registration costs nothing on the datapath.

    - {b counters}: monotone ints (packets forwarded, rule lookups);
    - {b gauges}: instantaneous floats (CPU utilization, queue depth);
    - {b histograms}: {!Stats.Histogram.t} distributions, exported as
      count/mean/min/max and P50/P90/P99/P999/P9999 summaries.

    {2 Naming scheme}

    Names are slash-separated paths:
    [<component>/<instance>/<metric>], e.g.
    [fe/vs-3/rule_lookups], [smartnic/vs-0/cpu_util],
    [controller/offload_events].  Optional [labels] carry extra
    dimensions (drop reason, vNIC id) without multiplying path names —
    but the full name must still be unique, so per-vNIC instruments put
    the vNIC in the path.  Re-registering a name replaces the previous
    instrument (components may be torn down and rebuilt). *)

open Nezha_engine

type t
(** A registry.  Typically one per simulation/testbed. *)

val create : unit -> t

(** {1 Registration} *)

val register_counter :
  t -> name:string -> ?labels:(string * string) list -> (unit -> int) -> unit

val register_gauge :
  t -> name:string -> ?labels:(string * string) list -> (unit -> float) -> unit

val register_histogram :
  t -> name:string -> ?labels:(string * string) list -> Stats.Histogram.t -> unit

val attach_counter :
  t -> name:string -> ?labels:(string * string) list -> Stats.Counter.t -> unit
(** Convenience: register an existing {!Stats.Counter.t}. *)

val unregister : t -> string -> unit
val unregister_prefix : t -> prefix:string -> unit
(** Drop every instrument whose name starts with [prefix] (component
    teardown). *)

(** {1 Lookup and reads} *)

type histogram_summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  p9999 : float;
}

val summarize_histogram : Stats.Histogram.t -> histogram_summary

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

val mem : t -> string -> bool
val names : t -> string list
(** Sorted; deterministic across runs. *)

val cardinality : t -> int

val read : t -> string -> value option
val read_counter : t -> string -> int option
(** [None] when absent {e or} not a counter; same for the others. *)

val read_gauge : t -> string -> float option
val read_histogram : t -> string -> histogram_summary option

(** {1 Snapshots} *)

type metric = {
  name : string;
  labels : (string * string) list;
  value : value;
}

type snapshot = {
  at : float;  (** virtual time of the snapshot *)
  metrics : metric list;  (** sorted by name *)
}

val snapshot : ?at:float -> t -> snapshot
(** Poll every instrument.  [at] defaults to 0 for registries not bound
    to a simulation; pass [Sim.now sim] when there is one. *)

(** {1 Time series}

    [start_sampler] drives {!Sim.every}: each period it polls every
    gauge and counter into a {!Stats.Series.t} keyed by metric name
    (histograms are excluded — their summaries only make sense at
    dump time).  Sampling is part of the event schedule, so two
    identical runs produce identical series. *)

val start_sampler : t -> sim:Sim.t -> ?period:float -> unit -> unit
(** Default period 0.5 s of virtual time.  Starting a second sampler
    stops the first. *)

val stop_sampler : t -> unit
val sampler_running : t -> bool
val samples_taken : t -> int

val series : t -> string -> Stats.Series.t option
val all_series : t -> (string * Stats.Series.t) list
(** Sorted by name. *)

(** {1 Export} *)

val json_of_summary : histogram_summary -> Json.t
val json_of_snapshot : snapshot -> Json.t
(** [{"schema": "nezha-telemetry/1", "at": t, "metrics": [...]}]. *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!json_of_snapshot} (exact round-trip, including float
    values). *)

val dump_json : ?at:float -> t -> Json.t
(** Snapshot plus every sampled series:
    [{..snapshot fields.., "series": [{"name", "points": [[t, v]..]}]}]. *)

val dump_json_string : ?at:float -> t -> string
val write_json_file : ?at:float -> t -> path:string -> unit

val dump_csv : t -> string
(** The sampled time series in long form:
    [time,metric,value] rows, header included, sorted by name then
    time. *)

val write_csv_file : t -> path:string -> unit
