(** Span-based distributed tracing over the simulation clock.

    A {e trace} follows one packet's journey through the split datapath:
    an id is allocated at the vNIC (where the VM handed the packet to the
    vSwitch), carried in {!Nezha_net.Packet.t}'s [trace_id] field across
    every hop — including the BE↔FE NSH hop — and closed when the packet
    reaches a VM's application handler.  Components along the way emit
    {e spans}: half-open time intervals on the virtual clock, tagged with
    the emitting component and a kind.

    The recorder is a bounded ring buffer (a flight recorder): old spans
    are overwritten, never allocated beyond [capacity].  Sampling is
    1-in-[sample_every]; a disabled recorder allocates no ids at all, so
    every instrumentation site reduces to one [match] on the packet's
    zero trace id.

    {b Conservation invariant.}  Component handoffs in the simulator are
    instantaneous: time only advances inside SmartNIC work queues, VM
    kernels and wire transits — exactly the intervals covered by [Stage]
    and [Wire] spans.  For a completed trace those spans therefore tile
    the end-to-end interval: their durations sum to [t_end - t_begin]
    within floating-point resolution.  {!conservation_error} measures
    the residual; {!attribute} splits the tiled time into local work and
    remote-hop (FE processing + NSH-hop wire) components. *)

(** How a span participates in accounting.  [Stage] and [Wire] spans are
    the tiling set of the conservation invariant; [Detail] spans annotate
    sub-work already covered by an enclosing stage (e.g. classification
    inside the slow path) and are excluded from the sum. *)
type kind = Stage | Wire | Detail | Mark

(** Critical-path classification: [Remote] marks time that exists only
    because of load sharing — FE processing and wire hops carrying NSH
    metadata (the BE↔FE legs).  Everything else is [Local]. *)
type site = Local | Remote

type span = {
  trace : int;
  name : string;
  component : string;  (** e.g. ["vswitch/vs-0"], ["be/vs-0/1"], ["fabric"] *)
  kind : kind;
  site : site;
  t0 : float;  (** virtual-clock start *)
  dur : float;  (** 0 for [Mark] *)
  args : (string * string) list;
}

type t

val create : ?capacity:int -> ?sample_every:int -> ?enabled:bool -> unit -> t
(** Defaults: capacity 65536 spans, sample every packet, disabled.
    @raise Invalid_argument on non-positive capacity or sampling rate. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_sample_every : t -> int -> unit
(** Deterministic 1-in-[n] head sampling, decided at id allocation. *)

val capacity : t -> int

(** {1 Recording} *)

val next_id : t -> int
(** Allocate a trace id for a packet entering at the vNIC.  Returns [0]
    (untraced) when disabled or when head sampling skips this packet. *)

val begin_trace : t -> id:int -> now:float -> unit
val end_trace : t -> id:int -> now:float -> unit
(** First [end_trace] wins; later calls (a duplicate delivery racing a
    retransmission) are ignored so [t_end] stays the measured latency. *)

val add_span :
  t ->
  id:int ->
  name:string ->
  component:string ->
  ?kind:kind ->
  ?site:site ->
  ?args:(string * string) list ->
  t0:float ->
  t1:float ->
  unit ->
  unit
(** Record [\[t0, t1)] against trace [id].  No-op when [id = 0] or the
    recorder is disabled.  Defaults: [Stage], [Local], no args. *)

val mark :
  t ->
  id:int ->
  name:string ->
  component:string ->
  ?args:(string * string) list ->
  now:float ->
  unit ->
  unit
(** An instantaneous annotation (kind [Mark]) — e.g. a fault-injected
    drop on a wire hop. *)

(** {1 Inspection} *)

val span_count : t -> int
(** Spans currently held in the ring. *)

val dropped_spans : t -> int
(** Spans overwritten because the ring wrapped. *)

val trace_ids : t -> int list
(** Ids with a recorded begin, oldest first. *)

val completed_ids : t -> int list
(** Ids with both begin and end, oldest first. *)

val interval : t -> id:int -> (float * float option) option
(** [(t_begin, t_end)] for a known trace. *)

val spans_of : t -> id:int -> span list
(** Spans still in the ring for this trace, in [t0] order. *)

val clear : t -> unit
(** Drop all spans and trace records (capacity and settings kept). *)

(** {1 Analysis} *)

type attribution = {
  t_begin : float;
  t_end : float;
  e2e : float;  (** [t_end - t_begin] *)
  local_s : float;  (** tiling spans classified [Local] *)
  remote_s : float;  (** tiling spans classified [Remote] *)
  residual : float;  (** [e2e - local_s - remote_s]; ~0 when conserved *)
}

val attribute : t -> id:int -> attribution option
(** [None] for unknown or incomplete traces. *)

val conservation_error : t -> id:int -> float option
(** [abs residual] — the conservation invariant holds when this is within
    clock resolution (a few ulps of the timestamps involved). *)

(** {1 Export} *)

val to_chrome_json : t -> Json.t
(** The Chrome trace-event format ([chrome://tracing] / Perfetto):
    an object with a [traceEvents] array of complete ([ph:"X"]) events
    for spans, instant ([ph:"i"]) events for marks, and one synthetic
    [e2e] event per completed trace.  Timestamps are microseconds of
    virtual time; [tid] is the trace id, the category encodes kind and
    site, and each event carries its component in [args]. *)
