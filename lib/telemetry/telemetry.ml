open Nezha_engine

type instrument =
  | ICounter of (unit -> int)
  | IGauge of (unit -> float)
  | IHisto of Stats.Histogram.t

type entry = { labels : (string * string) list; instrument : instrument }

type t = {
  entries : (string, entry) Hashtbl.t;
  series_tbl : (string, Stats.Series.t) Hashtbl.t;
  mutable sampler_generation : int;
      (* start_sampler bumps this; an in-flight Sim.every callback from an
         older generation sees the mismatch and stops rescheduling. *)
  mutable sampler_active : bool;
  mutable sample_count : int;
}

let create () =
  {
    entries = Hashtbl.create 64;
    series_tbl = Hashtbl.create 64;
    sampler_generation = 0;
    sampler_active = false;
    sample_count = 0;
  }

(* ------------------------------------------------------------------ *)
(* Registration *)

let register t name labels instrument =
  Hashtbl.replace t.entries name { labels; instrument }

let register_counter t ~name ?(labels = []) read =
  register t name labels (ICounter read)

let register_gauge t ~name ?(labels = []) read =
  register t name labels (IGauge read)

let register_histogram t ~name ?(labels = []) h = register t name labels (IHisto h)

let attach_counter t ~name ?labels c =
  register_counter t ~name ?labels (fun () -> Stats.Counter.value c)

let unregister t name = Hashtbl.remove t.entries name

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let unregister_prefix t ~prefix =
  let doomed =
    Hashtbl.fold
      (fun name _ acc -> if starts_with ~prefix name then name :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) doomed

(* ------------------------------------------------------------------ *)
(* Reads *)

type histogram_summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  p9999 : float;
}

let summarize_histogram h =
  let p q = Stats.Histogram.percentile h q in
  {
    count = Stats.Histogram.count h;
    mean = Stats.Histogram.mean h;
    min = Stats.Histogram.min_value h;
    max = Stats.Histogram.max_value h;
    p50 = p 50.0;
    p90 = p 90.0;
    p99 = p 99.0;
    p999 = p 99.9;
    p9999 = p 99.99;
  }

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

let poll = function
  | ICounter read -> Counter (read ())
  | IGauge read -> Gauge (read ())
  | IHisto h -> Histogram (summarize_histogram h)

let mem t name = Hashtbl.mem t.entries name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries []
  |> List.sort String.compare

let cardinality t = Hashtbl.length t.entries

let read t name =
  match Hashtbl.find_opt t.entries name with
  | None -> None
  | Some e -> Some (poll e.instrument)

let read_counter t name =
  match read t name with Some (Counter v) -> Some v | _ -> None

let read_gauge t name =
  match read t name with Some (Gauge v) -> Some v | _ -> None

let read_histogram t name =
  match read t name with Some (Histogram v) -> Some v | _ -> None

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type metric = {
  name : string;
  labels : (string * string) list;
  value : value;
}

type snapshot = { at : float; metrics : metric list }

let snapshot ?(at = 0.0) t =
  let metrics =
    names t
    |> List.map (fun name ->
         let e = Hashtbl.find t.entries name in
         { name; labels = e.labels; value = poll e.instrument })
  in
  { at; metrics }

(* ------------------------------------------------------------------ *)
(* Time series *)

let numeric_value = function
  | ICounter read -> Some (float_of_int (read ()))
  | IGauge read -> Some (read ())
  | IHisto _ -> None

let sample t ~now =
  Hashtbl.iter
    (fun name e ->
      match numeric_value e.instrument with
      | None -> ()
      | Some v ->
        let s =
          match Hashtbl.find_opt t.series_tbl name with
          | Some s -> s
          | None ->
            let s = Stats.Series.create ~name in
            Hashtbl.add t.series_tbl name s;
            s
        in
        Stats.Series.add s ~time:now v)
    t.entries;
  t.sample_count <- t.sample_count + 1

let start_sampler t ~sim ?(period = 0.5) () =
  t.sampler_generation <- t.sampler_generation + 1;
  t.sampler_active <- true;
  let generation = t.sampler_generation in
  Sim.every sim ~period (fun sim ->
      if t.sampler_active && t.sampler_generation = generation then begin
        sample t ~now:(Sim.now sim);
        true
      end
      else false)

let stop_sampler t = t.sampler_active <- false
let sampler_running t = t.sampler_active
let samples_taken t = t.sample_count

let series t name = Hashtbl.find_opt t.series_tbl name

let all_series t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.series_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Export *)

let schema = "nezha-telemetry/1"

let json_of_summary s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float s.mean);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
      ("p999", Json.Float s.p999);
      ("p9999", Json.Float s.p9999);
    ]

let json_of_metric m =
  let kind, value =
    match m.value with
    | Counter v -> ("counter", Json.Int v)
    | Gauge v -> ("gauge", Json.Float v)
    | Histogram s -> ("histogram", json_of_summary s)
  in
  let base =
    [ ("name", Json.String m.name); ("kind", Json.String kind); ("value", value) ]
  in
  let labels =
    match m.labels with
    | [] -> []
    | ls ->
      [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls)) ]
  in
  Json.Obj (base @ labels)

let json_of_snapshot snap =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("at", Json.Float snap.at);
      ("metrics", Json.List (List.map json_of_metric snap.metrics));
    ]

(* Reading back: used by tests and check tooling to validate exports. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field ?(where = "object") name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing %S in %s" name where)

let float_field ?where name j =
  let* v = field ?where name j in
  match Json.to_float_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%S is not a number" name)

let int_field ?where name j =
  let* v = field ?where name j in
  match Json.to_int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%S is not an integer" name)

let summary_of_json j =
  let* count = int_field "count" j in
  let* mean = float_field "mean" j in
  let* min = float_field "min" j in
  let* max = float_field "max" j in
  let* p50 = float_field "p50" j in
  let* p90 = float_field "p90" j in
  let* p99 = float_field "p99" j in
  let* p999 = float_field "p999" j in
  let* p9999 = float_field "p9999" j in
  Ok { count; mean; min; max; p50; p90; p99; p999; p9999 }

let metric_of_json j =
  let where = "metric" in
  let* name_j = field ~where "name" j in
  let* name =
    match Json.string_opt name_j with
    | Some s -> Ok s
    | None -> Error "\"name\" is not a string"
  in
  let* kind_j = field ~where "kind" j in
  let* kind =
    match Json.string_opt kind_j with
    | Some s -> Ok s
    | None -> Error "\"kind\" is not a string"
  in
  let* value_j = field ~where "value" j in
  let* value =
    match kind with
    | "counter" -> (
      match Json.to_int_opt value_j with
      | Some v -> Ok (Counter v)
      | None -> Error (Printf.sprintf "counter %S value is not an integer" name))
    | "gauge" -> (
      match Json.to_float_opt value_j with
      | Some v -> Ok (Gauge v)
      | None -> Error (Printf.sprintf "gauge %S value is not a number" name))
    | "histogram" ->
      let* s = summary_of_json value_j in
      Ok (Histogram s)
    | k -> Error (Printf.sprintf "unknown metric kind %S" k)
  in
  let labels =
    match Json.member "labels" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match Json.string_opt v with Some s -> Some (k, s) | None -> None)
        fields
    | _ -> []
  in
  Ok { name; labels; value }

let snapshot_of_json j =
  let where = "snapshot" in
  let* schema_j = field ~where "schema" j in
  let* () =
    match Json.string_opt schema_j with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "unsupported schema %S" s)
    | None -> Error "\"schema\" is not a string"
  in
  let* at = float_field ~where "at" j in
  let* metrics_j = field ~where "metrics" j in
  let* items =
    match Json.to_list_opt metrics_j with
    | Some l -> Ok l
    | None -> Error "\"metrics\" is not an array"
  in
  let* metrics =
    List.fold_left
      (fun acc m ->
        let* acc = acc in
        let* m = metric_of_json m in
        Ok (m :: acc))
      (Ok []) items
  in
  Ok { at; metrics = List.rev metrics }

let json_of_series (name, s) =
  Json.Obj
    [
      ("name", Json.String name);
      ( "points",
        Json.List
          (Stats.Series.points s |> Array.to_list
          |> List.map (fun (time, v) -> Json.List [ Json.Float time; Json.Float v ]))
      );
    ]

let dump_json ?at t =
  match json_of_snapshot (snapshot ?at t) with
  | Json.Obj fields ->
    Json.Obj (fields @ [ ("series", Json.List (List.map json_of_series (all_series t))) ])
  | j -> j

let dump_json_string ?at t = Json.to_string_pretty (dump_json ?at t)

let write_json_file ?at t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (dump_json_string ?at t);
      output_char oc '\n')

let csv_cell v =
  (* Metric names never need quoting today, but guard anyway. *)
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') v then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' v) ^ "\""
  else v

let dump_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,metric,value\n";
  List.iter
    (fun (name, s) ->
      Array.iter
        (fun (time, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%.6f,%s,%.17g\n" time (csv_cell name) v))
        (Stats.Series.points s))
    (all_series t);
  Buffer.contents buf

let write_csv_file t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump_csv t))
