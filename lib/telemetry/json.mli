(** A minimal, dependency-free JSON value with a printer and parser.

    The bench and telemetry exporters need machine-readable output, and
    the check tooling needs to validate it, without pulling a JSON
    library into the build.  This covers exactly RFC 8259: objects,
    arrays, strings (with escapes), numbers, booleans and null.

    Printing is canonical enough to round-trip: floats are rendered
    with the shortest decimal form that parses back to the same value,
    and non-finite floats degrade to [null] (JSON has no spelling for
    them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Printing} *)

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering (for files a human may open). *)

val pp : Format.formatter -> t -> unit

(** {1 Parsing} *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an
    error.  Numbers without [.]/[e] that fit an [int] parse as [Int],
    everything else as [Float]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member key (Obj _)]; [None] on missing key or non-object. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val to_int_opt : t -> int option
val to_list_opt : t -> t list option
val string_opt : t -> string option

val equal : t -> t -> bool
(** Structural equality; object key order is significant (the printers
    and parsers here preserve it). *)
