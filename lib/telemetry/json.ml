type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that parses back exactly; non-finite becomes null
   (the caller sees "null" where JSON has no number spelling). *)
let float_repr f =
  if not (Float.is_finite f) then None
  else if Float.is_integer f && Float.abs f < 1e15 then Some (Printf.sprintf "%.1f" f)
  else begin
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then Some s else Some (Printf.sprintf "%.17g" f)
  end

let rec write ~indent ~level buf t =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
    match float_repr f with
    | Some s -> Buffer.add_string buf s
    | None -> Buffer.add_string buf "null")
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        escape_to buf k;
        Buffer.add_char buf ':';
        if indent then Buffer.add_char buf ' ';
        write ~indent ~level:(level + 1) buf v)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let render ~indent t =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf t;
  Buffer.contents buf

let to_string t = render ~indent:false t
let to_string_pretty t = render ~indent:true t
let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a string. *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let d ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> error c "bad \\u escape"
  in
  if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
  let v =
    (d c.src.[c.pos] lsl 12)
    lor (d c.src.[c.pos + 1] lsl 8)
    lor (d c.src.[c.pos + 2] lsl 4)
    lor d c.src.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance c;
        let u = hex4 c in
        let u =
          (* Surrogate pair: a high surrogate must be followed by a low
             one; anything else degrades to U+FFFD. *)
          if u >= 0xD800 && u <= 0xDBFF then begin
            if
              c.pos + 2 <= String.length c.src
              && c.src.[c.pos] = '\\'
              && c.src.[c.pos + 1] = 'u'
            then begin
              c.pos <- c.pos + 2;
              let lo = hex4 c in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
              else 0xFFFD
            end
            else 0xFFFD
          end
          else if u >= 0xDC00 && u <= 0xDFFF then 0xFFFD
          else u
        in
        add_utf8 buf u;
        go ()
      | _ -> error c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  if s = "" then error c "expected number";
  let is_float = String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error c "malformed number"
  else begin
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      (* An integer literal too large for [int]: keep it as a float. *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c "malformed number")
  end

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((k, v) :: acc))
        | _ -> error c "expected ',' or '}'"
      in
      fields []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List (List.rev (v :: acc))
        | _ -> error c "expected ',' or ']'"
      in
      items []
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let string_opt = function String s -> Some s | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) x y
  | _, _ -> false
