open Nezha_net
open Nezha_engine
open Nezha_tables

(* Megaflow cache (OVS-style): memoize slow-path results under a key
   masked just enough to stay correct.  The mask is derived from the
   whole ruleset: source bits up to the widest prefix any ACL rule uses
   (in either orientation — the RX check reverses roles, so dst prefixes
   constrain the TX source too), ports/proto only if some rule reads
   them.  Destination stays exact: routes, mappings and stats rules are
   all keyed by the peer address. *)
type mega_mask = { mask_src_len : int; mask_ports : bool; mask_proto : bool }

type mega_key = { mvpc : int; msrc : int; mdst : int; mports : int; mproto : int }

module Mega = Hashtbl.Make (struct
  type t = mega_key

  let equal a b =
    a.mvpc = b.mvpc && a.msrc = b.msrc && a.mdst = b.mdst && a.mports = b.mports
    && a.mproto = b.mproto

  let hash k =
    ((k.mvpc * 0x9e3779b1) lxor (k.msrc * 0x85ebca6b) lxor (k.mdst * 0xc2b2ae35)
    lxor (k.mports * 0x27d4eb2f) lxor k.mproto)
    land max_int
end)

type t = {
  vni : int;
  classifier : Classifier.t;
  rate_limit_bps : int option;
  stats_rules : (Ipv4.Prefix.t * Pre_action.stats_spec) list;
  stateful_decap : bool;
  mirror : bool;
  extra_tables : int;
  fixed_overhead_bytes : int;
  lookup_extra_cycles : int;
  route : unit Lpm.t;
  mapping : Ipv4.t array Vnic.Addr.Table.t;
  mutable generation : int;
  mega : Pre_action.t Mega.t;
  mutable mega_mask : mega_mask;
  mutable mega_gen : int; (* generation the cache contents reflect *)
  mutable mega_rev : int; (* classifier revision ditto *)
  mega_hits : Stats.Counter.t;
  mega_misses : Stats.Counter.t;
}

let mapping_entry_bytes = 40 (* overlay addr + VPC + underlay addr + MAC + flags *)
let stats_rule_bytes = 24
let mega_capacity = 8192
let mega_entry_bytes = 56 (* masked key + boxed pre-action pointer + bucket slot *)

let exact_mask = { mask_src_len = 32; mask_ports = true; mask_proto = true }

let create ~vni ?acl ?policy ?backend ?rate_limit_bps ?(stats_rules = [])
    ?(stateful_decap = false) ?(mirror = false) ?(extra_tables = 0)
    ?(fixed_overhead_bytes = 2 * 1024 * 1024) ?(lookup_extra_cycles = 0) () =
  let classifier =
    match acl with
    | Some acl -> Classifier.of_acl ?policy ?backend acl
    | None -> Classifier.create ?policy ?backend ()
  in
  {
    vni;
    classifier;
    rate_limit_bps;
    stats_rules;
    stateful_decap;
    mirror;
    extra_tables = max 0 extra_tables;
    fixed_overhead_bytes;
    lookup_extra_cycles = max 0 lookup_extra_cycles;
    route = Lpm.create ();
    mapping = Vnic.Addr.Table.create 64;
    generation = 0;
    mega = Mega.create 256;
    mega_mask = exact_mask;
    mega_gen = min_int;
    mega_rev = min_int;
    mega_hits = Stats.Counter.create ();
    mega_misses = Stats.Counter.create ();
  }

let vni t = t.vni
let classifier t = t.classifier
let acl t = Classifier.acl t.classifier
let stateful_decap t = t.stateful_decap

let bump t = t.generation <- t.generation + 1

let add_route t prefix =
  Lpm.insert t.route prefix ();
  bump t

let remove_route t prefix =
  let r = Lpm.remove t.route prefix in
  if r then bump t;
  r

let add_mapping t addr server =
  Vnic.Addr.Table.replace t.mapping addr [| server |];
  bump t

let set_mapping_multi t addr servers =
  if Array.length servers = 0 then invalid_arg "Ruleset.set_mapping_multi: empty target set";
  Vnic.Addr.Table.replace t.mapping addr (Array.copy servers);
  bump t

let find_mapping t addr = Vnic.Addr.Table.find_opt t.mapping addr

let remove_mapping t addr =
  if Vnic.Addr.Table.mem t.mapping addr then begin
    Vnic.Addr.Table.remove t.mapping addr;
    bump t;
    true
  end
  else false

let mapping_count t = Vnic.Addr.Table.length t.mapping

(* ACL, QoS, policy, VXLAN routing, vNIC-server mapping (§2.2.2). *)
let base_tables = 5

let table_count t = base_tables + t.extra_tables

type lookup_result = { pre : Pre_action.t; cycles : int }

let stats_for t peer_ip =
  List.find_map
    (fun (prefix, spec) -> if Ipv4.Prefix.mem peer_ip prefix then Some spec else None)
    t.stats_rules

let compute_mega_mask t =
  let src_len = ref 0 and ports = ref false and proto = ref false in
  Acl.iter_rules (acl t) (fun r ->
      let plen = function Some p -> Ipv4.Prefix.length p | None -> 0 in
      src_len := max !src_len (max (plen r.Acl.src) (plen r.Acl.dst));
      if r.Acl.src_ports <> None || r.Acl.dst_ports <> None then ports := true;
      if r.Acl.proto <> None then proto := true);
  { mask_src_len = !src_len; mask_ports = !ports; mask_proto = !proto }

(* Flush on any table mutation — [generation] covers route/mapping/ACL
   changes announced via [bump_generation]; [Classifier.revision]
   additionally catches direct mutations through the ACL handle. *)
let refresh_megaflow t =
  let rev = Classifier.revision t.classifier in
  if t.mega_gen <> t.generation || t.mega_rev <> rev then begin
    Mega.reset t.mega;
    t.mega_mask <- compute_mega_mask t;
    t.mega_gen <- t.generation;
    t.mega_rev <- rev
  end

let[@inline] mask_bits len = if len <= 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let mega_key_of t ~vpc ~(flow_tx : Five_tuple.t) =
  let m = t.mega_mask in
  {
    mvpc = Vpc.to_int vpc;
    msrc = Int32.to_int (Ipv4.to_int32 flow_tx.Five_tuple.src) land mask_bits m.mask_src_len;
    mdst = Int32.to_int (Ipv4.to_int32 flow_tx.Five_tuple.dst) land 0xffffffff;
    mports =
      (if m.mask_ports then (flow_tx.Five_tuple.src_port lsl 16) lor flow_tx.Five_tuple.dst_port
       else 0);
    mproto = (if m.mask_proto then Five_tuple.proto_code flow_tx.Five_tuple.proto else -1);
  }

let lookup t ~params ~vpc ~flow_tx =
  refresh_megaflow t;
  let key = mega_key_of t ~vpc ~flow_tx in
  match Mega.find_opt t.mega key with
  | Some pre ->
    Stats.Counter.incr t.mega_hits;
    Some { pre; cycles = params.Params.megaflow_hit_cycles }
  | None ->
    Stats.Counter.incr t.mega_misses;
    let peer_ip = flow_tx.Five_tuple.dst in
    let route_hit, lpm_depth = Lpm.lookup_with_depth t.route peer_ip in
    (match route_hit with
    | None ->
      (* Unroutable: the slow path still burned the cycles of a failed
         pipeline walk, but there is nothing to cache. *)
      None
    | Some (_, ()) ->
      let tx_verdict = Classifier.lookup t.classifier flow_tx in
      let rx_verdict = Classifier.lookup_reverse t.classifier flow_tx in
      let scanned =
        max tx_verdict.Classifier.rules_scanned rx_verdict.Classifier.rules_scanned
      in
      let peer_server, cacheable =
        match Vnic.Addr.Table.find_opt t.mapping { Vnic.Addr.vpc; ip = peer_ip } with
        | None -> (None, true)
        | Some [| only |] -> (Some only, true)
        | Some targets ->
          (* Several targets = the peer is offloaded to several FEs; pick
             one per session by canonical 5-tuple hash (flow-level load
             balancing).  Hashing the canonical form makes both directions
             of a session choose the same FE, so its cached flow is built
             once; Nezha's design also allows splitting directions across
             FEs (§3.2.3) at the cost of duplicate rule lookups.  The
             choice depends on the full tuple, so the masked cache entry
             would pin every session to one FE — not cacheable. *)
          (Some targets.(Five_tuple.session_hash flow_tx mod Array.length targets), false)
      in
      let pre =
        {
          Pre_action.acl_tx = tx_verdict.Classifier.action;
          acl_rx = rx_verdict.Classifier.action;
          vni = t.vni;
          peer_server;
          rate_limit_bps = t.rate_limit_bps;
          stats = stats_for t peer_ip;
          stateful_decap = t.stateful_decap;
          mirror = t.mirror;
        }
      in
      if cacheable && Mega.length t.mega < mega_capacity then Mega.replace t.mega key pre;
      let cycles =
        Params.rule_lookup_cycles params ~acl_rules_scanned:scanned ~lpm_depth
          ~tables:(table_count t)
        + t.lookup_extra_cycles
      in
      Some { pre; cycles })

(* The batched datapath resolves one lookup per flow-key group and lets
   the other members of the group ride the result.  Each such member is
   exactly what a megaflow hit would have been on the single-packet
   path, so the batch path reports it here to keep the hit/miss
   telemetry comparable across both paths. *)
let note_megaflow_hit t = Stats.Counter.incr t.mega_hits

let megaflow_hits t = Stats.Counter.value t.mega_hits
let megaflow_misses t = Stats.Counter.value t.mega_misses
let megaflow_entries t = Mega.length t.mega
let classifier_tuples t = Classifier.tuple_count t.classifier
let classifier_backend t = Classifier.backend t.classifier
let classifier_memory_bytes t = Classifier.memory_bytes t.classifier

let extra_target_bytes = 8

let memory_bytes t =
  let extra_targets =
    Vnic.Addr.Table.fold (fun _ targets acc -> acc + Array.length targets - 1) t.mapping 0
  in
  t.fixed_overhead_bytes
  + Classifier.memory_bytes t.classifier
  + Lpm.memory_bytes t.route
  + (mapping_count t * mapping_entry_bytes)
  + (extra_targets * extra_target_bytes)
  + (Mega.length t.mega * mega_entry_bytes)
  + (List.length t.stats_rules * stats_rule_bytes)

let generation t = t.generation

let bump_generation t = bump t

let clone t =
  {
    vni = t.vni;
    classifier = Classifier.copy t.classifier;
    rate_limit_bps = t.rate_limit_bps;
    stats_rules = t.stats_rules;
    stateful_decap = t.stateful_decap;
    mirror = t.mirror;
    extra_tables = t.extra_tables;
    fixed_overhead_bytes = t.fixed_overhead_bytes;
    lookup_extra_cycles = t.lookup_extra_cycles;
    route = Lpm.copy t.route;
    mapping = Vnic.Addr.Table.copy t.mapping;
    generation = t.generation;
    mega = Mega.create 256;
    mega_mask = exact_mask;
    mega_gen = min_int;
    mega_rev = min_int;
    mega_hits = Stats.Counter.create ();
    mega_misses = Stats.Counter.create ();
  }
