open Nezha_engine

type t = {
  sim : Sim.t;
  params : Params.t;
  name : string;
  mutable busy_until : float;
  mutable queued : int;
  mutable busy_acc : float; (* total seconds of service completed or committed *)
  mutable last_sample_time : float;
  mutable last_sample_busy : float;
  (* Trailing-window bookkeeping for [peek_utilization]: ring of recent
     (time, busy_acc) snapshots taken on submissions. *)
  mutable snap_times : float array;
  mutable snap_busy : float array;
  mutable snap_head : int;
  mutable snap_len : int;
  mutable completed : int;
  mutable dropped : int;
  mutable mem_used : int;
  mutable crashed : bool;
}

let snap_capacity = 512

let create ~sim ~params ~name =
  {
    sim;
    params;
    name;
    busy_until = 0.0;
    queued = 0;
    busy_acc = 0.0;
    last_sample_time = 0.0;
    last_sample_busy = 0.0;
    snap_times = Array.make snap_capacity 0.0;
    snap_busy = Array.make snap_capacity 0.0;
    snap_head = 0;
    snap_len = 0;
    completed = 0;
    dropped = 0;
    mem_used = 0;
    crashed = false;
  }

let name t = t.name
let params t = t.params

let cpu_time t ~cycles = float_of_int cycles /. t.params.Params.cpu_hz

let record_snapshot t now =
  let i = (t.snap_head + t.snap_len) mod snap_capacity in
  t.snap_times.(i) <- now;
  t.snap_busy.(i) <- t.busy_acc;
  if t.snap_len < snap_capacity then t.snap_len <- t.snap_len + 1
  else t.snap_head <- (t.snap_head + 1) mod snap_capacity

let submit t ~cycles k =
  if t.crashed then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else if t.queued >= t.params.Params.queue_capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let now = Sim.now t.sim in
    let start = if t.busy_until > now then t.busy_until else now in
    let dur = cpu_time t ~cycles in
    t.busy_until <- start +. dur;
    t.busy_acc <- t.busy_acc +. dur;
    t.queued <- t.queued + 1;
    record_snapshot t now;
    ignore
      (Sim.at t.sim ~time:t.busy_until (fun sim ->
           t.queued <- t.queued - 1;
           t.completed <- t.completed + 1;
           if not t.crashed then k sim)
        : Sim.handle);
    true
  end

let queue_depth t = t.queued

(* Busy seconds actually elapsed by [now]: committed service time minus
   the part of the backlog that lies in the future. *)
let busy_elapsed t now =
  let future = if t.busy_until > now then t.busy_until -. now else 0.0 in
  t.busy_acc -. future

let utilization_since_last_sample t =
  let now = Sim.now t.sim in
  let busy = busy_elapsed t now in
  let dt = now -. t.last_sample_time in
  let util = if dt <= 0.0 then 0.0 else (busy -. t.last_sample_busy) /. dt in
  t.last_sample_time <- now;
  t.last_sample_busy <- busy;
  Float.max 0.0 (Float.min 1.0 util)

let peek_utilization t ~window =
  let now = Sim.now t.sim in
  let cutoff = now -. window in
  (* Oldest snapshot at or after the cutoff. *)
  let rec probe i best =
    if i >= t.snap_len then best
    else begin
      let idx = (t.snap_head + i) mod snap_capacity in
      if t.snap_times.(idx) >= cutoff then Some idx else probe (i + 1) best
    end
  in
  match probe 0 None with
  | None ->
    (* No recent activity recorded: busy only if backlogged. *)
    if t.busy_until > now then 1.0 else 0.0
  | Some idx ->
    let t0 = Float.max cutoff t.snap_times.(idx) in
    let b0 = t.snap_busy.(idx) in
    let dt = now -. t0 in
    if dt <= 1e-12 then if t.busy_until > now then 1.0 else 0.0
    else Float.max 0.0 (Float.min 1.0 ((busy_elapsed t now -. b0) /. dt))

let total_busy_seconds t = busy_elapsed t (Sim.now t.sim)
let jobs_completed t = t.completed
let jobs_dropped t = t.dropped

let mem_capacity t = t.params.Params.mem_bytes
let mem_used t = t.mem_used

let mem_utilization t =
  if t.params.Params.mem_bytes = 0 then 1.0
  else float_of_int t.mem_used /. float_of_int t.params.Params.mem_bytes

let mem_reserve t bytes =
  if t.mem_used + bytes <= t.params.Params.mem_bytes then begin
    t.mem_used <- t.mem_used + bytes;
    true
  end
  else false

let mem_release t bytes =
  if bytes > t.mem_used then invalid_arg "Smartnic.mem_release: more than reserved";
  t.mem_used <- t.mem_used - bytes

let crash t = t.crashed <- true
let recover t = t.crashed <- false
let is_crashed t = t.crashed

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  let prefix = "smartnic/" ^ t.name ^ "/" in
  (* cpu_util must stay non-consuming: the controller's report path owns
     the consuming [utilization_since_last_sample]. *)
  T.register_gauge reg ~name:(prefix ^ "cpu_util") (fun () ->
      peek_utilization t ~window:1.0);
  T.register_gauge reg ~name:(prefix ^ "queue_depth") (fun () ->
      float_of_int t.queued);
  T.register_gauge reg ~name:(prefix ^ "mem_util") (fun () -> mem_utilization t);
  T.register_counter reg ~name:(prefix ^ "mem_used_bytes") (fun () -> t.mem_used);
  T.register_counter reg ~name:(prefix ^ "jobs_completed") (fun () -> t.completed);
  T.register_counter reg ~name:(prefix ^ "jobs_dropped") (fun () -> t.dropped)
