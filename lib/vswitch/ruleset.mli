(** Per-vNIC rule tables and the slow-path lookup over them.

    Establishing a connection queries at least five tables — ACL, QoS,
    policy, VXLAN routing and vNIC-server mapping — and up to 12 with
    advanced features enabled (§2.2.2).  [lookup] runs the pipeline,
    returns the bidirectional {!Pre_action.t} and charges cycles per the
    cost model.  Rule tables are stateless: this whole structure is what
    Nezha replicates onto FEs.

    Two accelerations sit in front of the pipeline walk:

    - the ACL is served by a {!Classifier} whose backend is picked by a
      selection policy ([Auto] by default: tuple-space search for small
      or mask-diverse tables, the learned range index once the table is
      large and mostly indexable; the linear scan stays available as the
      reference backend);
    - results are memoized in an OVS-style megaflow cache under a
      conservatively-masked key, invalidated wholesale whenever
      {!generation} or the classifier revision moves. *)

open Nezha_net
open Nezha_tables

type t

val create :
  vni:int ->
  ?acl:Acl.t ->
  ?policy:Classifier.policy ->
  ?backend:Classifier.backend ->
  ?rate_limit_bps:int ->
  ?stats_rules:(Ipv4.Prefix.t * Pre_action.stats_spec) list ->
  ?stateful_decap:bool ->
  ?mirror:bool ->
  ?extra_tables:int ->
  ?fixed_overhead_bytes:int ->
  ?lookup_extra_cycles:int ->
  unit ->
  t
(** [policy] (default [Auto]) selects the classifier backend from the
    ruleset's shape at every resync; [backend] is the deprecated
    pre-policy spelling, equivalent to [~policy:(Fixed backend)] and
    ignored when [policy] is given.  [extra_tables] models advanced
    features (policy routing, mirroring,
    flow logging) that add lookup stages.  [fixed_overhead_bytes]
    (default 2 MB, the production minimum of §6.2.1) is the footprint of
    the table scaffolding itself.  [lookup_extra_cycles] (default 0) is a
    per-execution surcharge for O(100 MB) production tables whose lookups
    miss every cache — what differentiates the middlebox CPS gains of
    Table 3. *)

val vni : t -> int

val acl : t -> Acl.t
(** The underlying ACL handle.  Mutating it directly is allowed; the
    classifier index resyncs itself, but cached flows built from the old
    rules need {!bump_generation} to be invalidated. *)

val classifier : t -> Classifier.t
val stateful_decap : t -> bool

val add_route : t -> Ipv4.Prefix.t -> unit
(** Declare an overlay prefix reachable (VXLAN routing table). *)

val remove_route : t -> Ipv4.Prefix.t -> bool

val add_mapping : t -> Vnic.Addr.t -> Ipv4.t -> unit
(** Bind a peer overlay address to the underlay server hosting it
    (vNIC-server mapping entry). *)

val set_mapping_multi : t -> Vnic.Addr.t -> Ipv4.t array -> unit
(** ECMP-style entry: an offloaded vNIC is reachable at any of its FEs;
    the sender picks one by 5-tuple hash (§4.2.1, §3.2.3).
    @raise Invalid_argument on an empty array. *)

val find_mapping : t -> Vnic.Addr.t -> Ipv4.t array option

val remove_mapping : t -> Vnic.Addr.t -> bool
val mapping_count : t -> int

val table_count : t -> int
(** Tables queried per slow-path execution (5 + extras). *)

type lookup_result = {
  pre : Pre_action.t;
  cycles : int;  (** CPU cost of this pipeline execution *)
}

val lookup :
  t -> params:Params.t -> vpc:Vpc.t -> flow_tx:Five_tuple.t -> lookup_result option
(** Run the slow path for a session given its TX-orientation tuple (source
    is the vNIC's overlay address).  [None] when no VXLAN route covers the
    peer: the packet is unroutable and dropped.  Note an ACL [Deny] still
    returns a result — deny is a pre-action, not a drop, because state may
    overrule it (§3.1).

    A megaflow-cache hit short-circuits the walk and costs only
    [params.megaflow_hit_cycles].  Sessions whose peer maps to several
    FEs are never cached: their FE choice hashes the full tuple. *)

val note_megaflow_hit : t -> unit
(** Record a megaflow hit that happened outside {!lookup}: the batched
    datapath resolves one lookup per flow-key group and each additional
    group member is accounted as the cache hit it would have been on
    the single-packet path. *)

val megaflow_hits : t -> int
val megaflow_misses : t -> int
val megaflow_entries : t -> int

val classifier_tuples : t -> int
(** Mask shapes the classifier still searches hash-style (0 under the
    linear backend; the remainder set under the learned backend). *)

val classifier_backend : t -> Classifier.backend
(** The backend currently serving ACL lookups — under the [Auto] policy
    this is a decision, not a configuration, so telemetry surfaces it
    per vNIC. *)

val classifier_memory_bytes : t -> int
(** Memory charged to the classifier index alone (also included in
    {!memory_bytes}). *)

val memory_bytes : t -> int

val generation : t -> int
(** Bumped on every table mutation; cached flows created under an older
    generation are stale and must be invalidated (§3.2.2). *)

val bump_generation : t -> unit
(** Mark the tables changed.  Route/mapping mutations bump automatically;
    callers that mutate the ACL (or other tables) through their own
    handles must bump explicitly, or stale cached flows would keep
    serving the old verdicts. *)

val clone : t -> t
(** Deep copy — how the controller configures an FE with a vNIC's rule
    tables. *)
