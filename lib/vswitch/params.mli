(** Calibration constants for the SmartNIC/vSwitch resource model.

    The cycle costs are fitted to the paper's own measurements:

    - Table A1: rule-table lookup throughput is 6.61 Mpps at 64 B / 0 ACL
      rules on a vSwitch with 8 cores, declining ~18% at 1000 rules
      (sub-linear in #rules: production classifiers are decision trees,
      not linear scans, so ACL cycle cost grows with [log2 (1+rules)])
      and ~10% from 64 B to 512 B packets (per-byte move cost).
    - §2.2.2: a full new-connection setup lands the vSwitch at O(100K)
      CPS, i.e. tens of kcycles per connection once session creation,
      bidirectional flow caching and state initialization are counted.
    - §6.2: the extra BE↔FE hop costs a few tens of µs; a rule-table
      lookup re-execution costs "slightly more than 10 µs".

    Experiments run with [scaled] parameters: CPU is divided by
    [cpu_scale] and memory by [mem_scale] so that saturation happens at
    event rates a discrete-event simulation can sustain, while every
    ratio the paper reports (gain factors, knee positions, queueing
    behaviour) is preserved. *)

type t = {
  (* CPU *)
  cpu_hz : float;  (** cycles/s available to the vSwitch dataplane *)
  table_base_cycles : int;  (** per rule-table query: fixed part *)
  acl_log_cycles : int;  (** × log2(1+rules scanned) *)
  lpm_depth_cycles : int;  (** × trie levels visited *)
  byte_move_cycles : float;  (** × packet wire bytes *)
  fast_path_cycles : int;  (** session-table exact match + action (full) *)
  split_fast_path_cycles : int;
      (** the per-side share under Nezha: the FE does only the cached-flow
          half, the BE only the state half — each cheaper than the full
          local fast path, which is why per-packet capacity survives the
          split (Fig. 12) *)
  encap_cycles : int;  (** VXLAN/NSH encap or decap *)
  session_setup_cycles : int;
      (** first-packet overhead beyond lookups on the *traditional* local
          path: allocation, bidirectional entry creation, state init,
          conntrack.  Equals [flow_cache_cycles + state_init_cycles]. *)
  flow_cache_cycles : int;
      (** the cached-flow creation share of session setup — the work that
          moves to the FE under Nezha *)
  megaflow_hit_cycles : int;
      (** slow-path classification answered from the megaflow cache: one
          masked-key hash probe instead of the full pipeline walk *)
  state_init_cycles : int;
      (** the state-initialization share — the work the BE keeps *)
  state_update_cycles : int;  (** applying a state transition *)
  queue_capacity : int;  (** CPU work queue depth (jobs) *)
  (* Memory *)
  mem_bytes : int;  (** bytes available to the vSwitch *)
  session_entry_overhead : int;
      (** fixed bytes per cached bidirectional flow: 5-tuple ×2, VPC,
          pre-actions, timestamps (§2.2.2: O(100B)) *)
  state_slot_bytes : int;
      (** fixed state allocation; §7.1: 64 B even when mostly empty *)
  be_residual_bytes_per_vnic : int;
      (** BE-side footprint of an offloaded vNIC: FE locations and
          essential metadata (§6.2.1: 2 KB) *)
  (* Timing *)
  flow_aging : float;  (** normal session idle timeout (§2.2.2: 8 s) *)
  syn_aging : float;  (** short aging for establishing sessions (§7.3) *)
  offload_retx_timeout : float;
      (** how long the BE waits for the FE's hop-level ack before
          retrying a slow-path offload, seconds *)
  offload_retx_max : int;  (** retries before falling back to the local slow path *)
  offload_track_capacity : int;
      (** bound on outstanding tracked offloads; beyond it, sends revert
          to fire-and-forget *)
  offload_suspect_after : int;
      (** consecutive hop timeouts before an FE is steered around *)
}

val default : t
(** Full-scale parameters (production-like magnitudes). *)

val scaled : t
(** [default] with CPU ÷ 100 and memory ÷ 1000: testbed experiments
    saturate around a few thousand CPS and tens of thousands of flows,
    which a DES sweeps comfortably. *)

val with_cpu_scale : float -> t -> t
val with_mem_scale : float -> t -> t

val rule_lookup_cycles : t -> acl_rules_scanned:int -> lpm_depth:int -> tables:int -> int
(** Slow-path cycles for one rule-table pipeline execution over [tables]
    tables (≥5 normally, up to 12 with advanced features, §2.2.2).
    [acl_rules_scanned] is the classifier backend's own work measure —
    rules examined (linear), hash probes + bucket entries (tuple space),
    or model evaluations + window-search steps + remainder probes
    (learned) — so the log2(1+work) charge stays meaningful whichever
    backend the selection policy picked. *)

val packet_cycles : t -> wire_bytes:int -> int
(** Per-byte move cost for getting the packet into the vSwitch. *)
