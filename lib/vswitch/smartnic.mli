(** SmartNIC resource model: a finite CPU and a memory budget.

    The CPU is modeled as a single aggregated server (the vSwitch's core
    allotment) draining a bounded FIFO of jobs, each costing a number of
    cycles.  Under light load a job's sojourn time is just its service
    time; as offered cycles approach capacity the queue builds and latency
    grows sharply — the behaviour behind Fig. 12 — and once the queue is
    full jobs are dropped, the overload regime of Fig. 2.

    Memory is a byte budget with explicit reserve/release, shared by rule
    tables and the session table; exhaustion is what caps #vNICs and
    #concurrent flows. *)

open Nezha_engine

type t

val create : sim:Sim.t -> params:Params.t -> name:string -> t

val name : t -> string
val params : t -> Params.t

(** {1 CPU} *)

val submit : t -> cycles:int -> (Sim.t -> unit) -> bool
(** Enqueue a job; the continuation fires when the CPU finishes it.
    [false] means the queue was full and the job (packet) was dropped. *)

val queue_depth : t -> int

val cpu_time : t -> cycles:int -> float
(** Service time of [cycles] on this CPU, in seconds. *)

val utilization_since_last_sample : t -> float
(** Busy fraction since the previous call (or since creation), in
    \[0, 1\].  This is what a vSwitch periodically reports to the
    controller (§4.2.1). *)

val peek_utilization : t -> window:float -> float
(** Non-consuming estimate over the trailing [window] seconds. *)

val total_busy_seconds : t -> float
val jobs_completed : t -> int
val jobs_dropped : t -> int

(** {1 Memory} *)

val mem_capacity : t -> int
val mem_used : t -> int
val mem_utilization : t -> float

val mem_reserve : t -> int -> bool
(** [false] (and no change) if the budget would be exceeded. *)

val mem_release : t -> int -> unit
(** @raise Invalid_argument when releasing more than is reserved. *)

(** {1 Failure injection} *)

val crash : t -> unit
(** A crashed SmartNIC drops every submitted job and stops serving; used
    by the failover experiments (§4.4, Fig. 14). *)

val recover : t -> unit
val is_crashed : t -> bool

(** {1 Telemetry} *)

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** Publish CPU utilization (non-consuming trailing-window gauge), queue
    depth, memory use and job counters under [smartnic/<name>/...]. *)
