(** The shared shape of every packet-ingress point on the dataplane.

    The vSwitch's net ingress, the FE service and the BE intercept all
    accept traffic through the same pair of shapes: a single-packet
    [ingest] that can decline ([`Continue]) and a vectored
    [ingest_batch] that consumes the whole batch (taking ownership —
    the implementation recycles it; anything it cannot handle it routes
    through its own fallback).  [ctx] carries the per-component side
    channel ([unit] where none is needed, the packet direction for the
    BE intercept, ...), identically placed in both variants so callers
    can abstract over components. *)

module type S = sig
  type t
  type ctx

  val ingest : t -> ctx:ctx -> Nezha_net.Packet.t -> [ `Handled | `Continue ]
  val ingest_batch : t -> ctx:ctx -> Nezha_net.Pbatch.t -> unit
end
