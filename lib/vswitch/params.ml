type t = {
  cpu_hz : float;
  table_base_cycles : int;
  acl_log_cycles : int;
  lpm_depth_cycles : int;
  byte_move_cycles : float;
  fast_path_cycles : int;
  split_fast_path_cycles : int;
  encap_cycles : int;
  session_setup_cycles : int;
  flow_cache_cycles : int;
  megaflow_hit_cycles : int;
  state_init_cycles : int;
  state_update_cycles : int;
  queue_capacity : int;
  mem_bytes : int;
  session_entry_overhead : int;
  state_slot_bytes : int;
  be_residual_bytes_per_vnic : int;
  flow_aging : float;
  syn_aging : float;
  offload_retx_timeout : float;
  offload_retx_max : int;
  offload_track_capacity : int;
  offload_suspect_after : int;
}

(* Fit against Table A1 (see the interface): with 5 tables at 550 cycles
   base each (2750), LPM ~8 levels x 12, ~0.7 cycles/byte and the
   remainder in per-packet dispatch, a 64 B / 0-rule lookup costs ~2900
   cycles; at 20 Gcycles/s that is within 5% of the paper's 6.6 Mpps. *)
let default =
  {
    cpu_hz = 20e9 (* 8 cores ≈ 2.5 GHz effective *);
    table_base_cycles = 550;
    acl_log_cycles = 66;
    lpm_depth_cycles = 12;
    byte_move_cycles = 0.7;
    fast_path_cycles = 600;
    split_fast_path_cycles = 320;
    encap_cycles = 150;
    session_setup_cycles = 48_000;
    flow_cache_cycles = 46_000;
    megaflow_hit_cycles = 120;
    state_init_cycles = 2_000;
    state_update_cycles = 400;
    queue_capacity = 4096;
    mem_bytes = 10 * 1024 * 1024 * 1024 (* 10 GB, §6.1 *);
    session_entry_overhead = 100;
    state_slot_bytes = 64;
    be_residual_bytes_per_vnic = 2048;
    flow_aging = 8.0;
    syn_aging = 2.0;
    offload_retx_timeout = 0.02;
    offload_retx_max = 3;
    offload_track_capacity = 4096;
    offload_suspect_after = 2;
  }

let with_cpu_scale s t = { t with cpu_hz = t.cpu_hz /. s }

let with_mem_scale s t = { t with mem_bytes = int_of_float (float_of_int t.mem_bytes /. s) }

let scaled = default |> with_cpu_scale 100.0 |> with_mem_scale 1000.0

let log2 x = log x /. log 2.0

let rule_lookup_cycles t ~acl_rules_scanned ~lpm_depth ~tables =
  let acl = float_of_int t.acl_log_cycles *. log2 (1.0 +. float_of_int acl_rules_scanned) in
  (tables * t.table_base_cycles) + int_of_float acl + (lpm_depth * t.lpm_depth_cycles)

let packet_cycles t ~wire_bytes = int_of_float (t.byte_move_cycles *. float_of_int wire_bytes)
