(** The SmartNIC-based vSwitch (§2.1).

    A vSwitch owns vNICs (each with rule tables and a session table
    region), a {!Smartnic} resource model, and the traditional local
    datapath: fast path on session-table hits, slow path (rule-table
    pipeline + session setup) on misses.

    Nezha integrates through two hooks rather than a fork of the
    datapath — mirroring the paper's claim that deployment modified less
    than 5% of vSwitch code (§6.4):

    - a per-vNIC {!intercept} that sees TX packets from the local VM and
      RX packets addressed to the vNIC before the local path runs (the BE
      role and the dual-running logic live there);
    - a switch-wide {!net_hook} that sees underlay packets not addressed
      to any local vNIC (the FE role lives there). *)

open Nezha_engine
open Nezha_net
open Nezha_tables

type t

(** Where a processed packet goes next. *)
type output =
  | To_vm of Vnic.id * Packet.t  (** deliver to the local VM owning the vNIC *)
  | To_net of Packet.t  (** VXLAN-encapsulated; [outer_dst] names the next server *)

type sink = {
  on_output : output -> unit;
      (** single results: every [To_vm], plus [To_net] leaving a
          single-packet path *)
  on_net_batch : Pbatch.t -> unit;
      (** an encapsulated net burst; the sink takes ownership and
          recycles the batch *)
}
(** The transmit side of the vSwitch, batch-aware.  The fabric (or any
    harness standing in for it) installs one with {!set_sink}. *)

type counters = {
  rx_packets : Stats.Counter.t;  (** packets entering from the underlay *)
  tx_packets : Stats.Counter.t;  (** packets entering from local VMs *)
  delivered : Stats.Counter.t;  (** packets handed to local VMs *)
  forwarded : Stats.Counter.t;  (** packets sent to the underlay *)
  slow_path_execs : Stats.Counter.t;
  fast_path_hits : Stats.Counter.t;
  sessions_created : Stats.Counter.t;
  notify_packets : Stats.Counter.t;
  drops : Stats.Counter.t array;  (** indexed by {!Nf.drop_reason_index} *)
}

val create :
  sim:Sim.t ->
  params:Params.t ->
  name:string ->
  underlay_ip:Ipv4.t ->
  gateway:Ipv4.t ->
  unit ->
  t
(** [gateway] is the underlay address packets take when the vNIC-server
    mapping has no entry for the peer (the default route of §4.2.1). *)

val name : t -> string
val sim : t -> Sim.t
val params : t -> Params.t
val underlay_ip : t -> Ipv4.t
val gateway : t -> Ipv4.t
val nic : t -> Smartnic.t
val counters : t -> counters

val software_version : t -> int
(** vSwitch release version (default 0).  §7.2 uses version targeting for
    flexible feature release (offload vNICs needing a new feature to
    upgraded vSwitches) and cost-effective fault recovery (offload away
    from a buggy release). *)

val set_software_version : t -> int -> unit

val drop_count : t -> Nf.drop_reason -> int
val total_drops : t -> int

(** {1 Crash–restart (DESIGN.md §13)} *)

val wipe_volatile : t -> unit
(** Model a dataplane-process crash: drop every session table entry
    (releasing its NIC memory), invalidate megaflow caches, forget
    in-flight learning queries, uninstall BE/FE packet hooks and
    intercepts, clear mirrors and flow-log backlog, zero the counters.
    Rulesets/vNIC registrations/rate limits are durable tenant config
    (re-pushed during reboot) and survive; so does the epoch fence.
    The fabric calls this from {!Nezha_fabric.Faults.crash_server}'s
    hook — pair with {!Smartnic.crash}/{!Smartnic.recover} for the
    reboot window. *)

val epoch : t -> int
(** Highest controller epoch ever observed (the fence high-water mark,
    durably persisted — survives {!wipe_volatile}). *)

val observe_epoch : t -> epoch:int -> bool
(** Fence check on a controller command: [true] (and the high-water
    mark advances) iff [epoch] is not lower than the highest seen — a
    stale primary's commands return [false] and must not be applied. *)

val epoch_rejections : t -> int
(** Commands refused by the fence. *)

val set_sink : t -> sink -> unit
(** Install the fabric's send functions.  Must be set before traffic
    runs. *)

(** {1 vNIC management} *)

val add_vnic : t -> Vnic.t -> Ruleset.t -> Admission.t
(** Reserves the ruleset's memory footprint; [Error `No_memory] models
    the #vNICs-limited-by-memory bottleneck (§2.2.2). *)

val remove_vnic : t -> Vnic.id -> unit
val vnic_count : t -> int
val find_vnic : t -> Vnic.Addr.t -> Vnic.t option
val vnic_ids : t -> Vnic.id list
val vnic_info : t -> Vnic.id -> Vnic.t option

type flow_record = {
  key : Flow_key.t;
  packets : int;
  bytes : int;
  first_dir : Packet.direction;
}
(** What flow logging emits when a counted session ages out — the
    "flow logging" advanced feature of §2.2.2's 12-table pipeline. *)

val set_flow_log_sink : t -> (flow_record -> unit) option -> unit

val set_mirror_target : t -> Ipv4.t option -> unit
(** Traffic mirroring (another §2.2.2 advanced feature): packets whose
    pre-actions carry the mirror flag are copied to this underlay
    collector. *)

val packets_mirrored : t -> int

val maybe_mirror : t -> Pre_action.t -> Packet.t -> unit
(** Copy the packet to the collector when the pre-actions ask for it and
    a target is configured.  Exposed so the FE datapath (which finalizes
    TX packets) applies the same policy. *)

val flow_records_emitted : t -> int

val set_rate_limit : t -> Vnic.id -> bps:float -> burst_bytes:float -> unit
(** Install (or replace) a vNIC-level TX rate limit (QoS).  Under Nezha
    enforcement needs no change: every TX packet of an offloaded vNIC
    still enters here before reaching any FE, so a single token bucket
    suffices — the distributed-rate-limiting problem of §2.3.3 never
    arises. *)

val clear_rate_limit : t -> Vnic.id -> unit

val ruleset : t -> Vnic.id -> Ruleset.t option
(** The vNIC's local rule tables; [None] after {!drop_ruleset}. *)

val drop_ruleset : t -> Vnic.id -> unit
(** Release the vNIC's rule tables and cached flows (the final stage of
    offloading, §4.2.1).  States are kept; a residual
    [be_residual_bytes_per_vnic] footprint remains reserved. *)

val restore_ruleset : t -> Vnic.id -> Ruleset.t -> Admission.t
(** Re-install rule tables locally (fallback, §4.2.2). *)

val sync_rule_memory : t -> Vnic.id -> Admission.t
(** Re-reserve memory after the controller mutated the vNIC's tables.
    Call after bulk mapping/ACL changes. *)

(** {1 Session table}

    Sessions are per-vNIC.  An entry holds the cached bidirectional
    pre-actions and/or the session state; under Nezha the BE keeps only
    states and the FE only pre-actions. *)

type session = { pre : Pre_action.t option; state : State.t option; generation : int }

val find_session : t -> Vnic.id -> Flow_key.t -> session option

val store_session : t -> Vnic.id -> Flow_key.t -> session -> Admission.t
(** Inserts or replaces, charging the memory model.  Establishing
    sessions get the short SYN aging time automatically (§7.3). *)

val remove_session : t -> Vnic.id -> Flow_key.t -> bool
val touch_session : t -> Vnic.id -> Flow_key.t -> unit
val iter_sessions : t -> Vnic.id -> (Flow_key.t -> session -> unit) -> unit
val session_count : t -> Vnic.id -> int
val total_sessions : t -> int
val invalidate_cached_flows : t -> Vnic.id -> unit
(** Delete entries whose pre-actions predate the current rule-table
    generation (rule-table change semantics of §3.2.2). *)

(** {1 Datapath} *)

val from_vm : t -> Vnic.id -> Packet.t -> unit
(** A local VM emitted a TX packet. *)

val from_vnic_batch : t -> Vnic.id -> Pbatch.t -> unit
(** A local vNIC emitted a TX burst.  Takes ownership of the batch.
    Observably equivalent to [from_vm] per packet in order — same
    deliveries, drops, counters and session-table evolution — while
    charging the SmartNIC once for the whole burst. *)

val from_net : t -> Packet.t -> unit
(** The underlay delivered a packet to this server. *)

val from_net_batch : t -> Pbatch.t -> unit
(** The underlay delivered a burst.  Takes ownership; carves the burst
    into maximal in-order vectored runs (batch net hook, per-vNIC local
    RX) and falls back to the single-packet path between them. *)

module Net_ingress : Ingress.S with type t = t and type ctx = unit
(** The net-facing ingress in the shared {!Ingress.S} shape
    ([ingest] = {!from_net}, [ingest_batch] = {!from_net_batch}). *)

(** {1 Nezha integration hooks} *)

type intercept = {
  on_tx : Packet.t -> [ `Handled | `Continue ];
  on_rx : Packet.t -> [ `Handled | `Continue ];
  on_tx_batch : (Pbatch.t -> unit) option;
      (** vectored TX interception; [None] falls back to [on_tx] per
          packet.  The handler owns (and recycles) the batch. *)
}

val set_intercept : t -> Vnic.id -> intercept option -> unit

val set_mapping_learner :
  t -> (Vnic.Addr.t -> (Ipv4.t array * float) option) option -> unit
(** On-demand vNIC-server learning (§4.2.1): when a slow-path lookup has
    no mapping for the peer, the packet detours via the gateway and the
    vSwitch asks the learner for the authoritative entry; the returned
    targets are installed into the querying vNIC's tables after the
    returned delay (the learning interval).  The fabric wires this to
    the gateway. *)

val set_net_hook :
  t -> (Packet.t -> outer:Packet.vxlan option -> [ `Handled | `Continue ]) option -> unit
(** The hook receives the decapsulated packet together with its original
    outer header — an FE must preserve the outer source for stateful
    decapsulation (§5.2). *)

val set_net_hook_batch : t -> (Pbatch.t -> Pbatch.t option) option -> unit
(** Vectored companion to {!set_net_hook}: receives a run of
    still-encapsulated NSH-bearing packets (ownership included) and
    returns the still-encapsulated leftover it declined — or [None] when
    it consumed everything.  The leftover transfers back to the caller,
    which routes it through the single-packet path. *)

val vnic_slow_execs : t -> Vnic.id -> int
(** Slow-path executions attributed to this vNIC — the controller's
    per-vNIC CPU consumption signal (§4.2.1). *)

val vnic_memory_bytes : t -> Vnic.id -> int
(** Rule tables + residual + session memory attributed to this vNIC. *)

val vnic_classifier_backend : t -> Vnic.id -> Nezha_tables.Classifier.backend option
(** The classifier backend currently serving this vNIC's ACL — under the
    [Auto] policy a decision made from the ruleset's shape, also exported
    as the [vnic/<id>/classifier_backend] telemetry gauge. *)

(** {1 Primitives shared with the Nezha datapath} *)

val charge : t -> cycles:int -> (Sim.t -> unit) -> unit
(** Run a continuation after the CPU spends [cycles]; drops (and counts)
    on queue overflow. *)

val charge_batch : t -> cycles:int -> npkts:int -> (Sim.t -> unit) -> bool
(** One submission for a whole burst — the event-dispatch amortization
    that motivates vectoring.  On rejection every packet of the batch is
    counted dropped and [false] returns (the caller still owns the
    batch). *)

val emit_batch : t -> Pbatch.t -> unit
(** Send an encapsulated net burst through the installed sink, counting
    [forwarded] per packet.  Takes ownership (the sink recycles the
    batch). *)

val slow_path : t -> Ruleset.t -> vpc:Vpc.t -> flow_tx:Five_tuple.t -> Ruleset.lookup_result option
(** Rule-table pipeline execution (cycle cost is in the result; the
    caller charges it). Increments the slow-path counter. *)

val emit : t -> output -> unit
(** Send through the installed transmit function. *)

val deliver_local : t -> Vnic.id -> Packet.t -> unit
(** Count and hand a packet to the local VM. *)

val count_drop : t -> Nf.drop_reason -> unit
val count_notify : t -> unit

val utilization_report : t -> cpu:float ref -> mem:float ref -> unit
(** Sample CPU (consuming, since last call) and memory utilization — the
    periodic report each vSwitch sends the controller (§4.2.1). *)

(** {1 Tracing} *)

val set_tracer : t -> Nezha_telemetry.Trace.t option -> unit
(** Attach the flight recorder.  TX packets entering {!from_vm} get a
    trace id allocated here (subject to the recorder's sampling); the
    local fast/slow paths emit stage spans.  With no tracer — or a
    disabled one — every instrumentation site is a single match. *)

val tracer : t -> Nezha_telemetry.Trace.t option

val trace_span :
  t ->
  Nezha_net.Packet.t ->
  name:string ->
  component:string ->
  ?kind:Nezha_telemetry.Trace.kind ->
  ?site:Nezha_telemetry.Trace.site ->
  ?args:(string * string) list ->
  t0:float ->
  unit ->
  unit
(** Record a span [\[t0, now)] against the packet's trace, if any — the
    shared guard the BE/FE datapaths emit through. *)

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** Publish every datapath counter (including per-reason drops) and
    vNIC/session gauges under [vswitch/<name>/...], and the SmartNIC's
    instruments under [smartnic/<name>/...].  Each vNIC additionally
    gets [vswitch/<name>/vnic/<id>/classifier_backend] (the backend
    code serving its ACL: 0 = linear, 1 = tss, 2 = learned) and
    [.../classifier_memory_bytes]; vNICs added after registration are
    instrumented on arrival and removed vNICs drop their gauges. *)
