(** Stateful network-function semantics: [Action = func(pkt, rules, states)].

    This module is the *final action* generator of §2.1: it combines a
    packet's direction and flags, the pre-actions cached from the rule
    tables, and the per-session state.  Crucially it is pure — the same
    code runs on the local vSwitch in the traditional architecture, on the
    BE for RX packets and on the FE for TX packets under Nezha (§3.2.1),
    which is how the paper argues processing equivalence. *)

open Nezha_net

type drop_reason =
  | Acl_denied  (** pre-action deny on the session's first direction *)
  | Unsolicited  (** RX deny with no locally-initiated session to excuse it *)
  | No_route
  | No_vnic
  | Table_full
  | Queue_overflow
  | Rate_limited  (** vNIC-level QoS token bucket exhausted *)
  | Nic_crashed
  | Vm_overload
  | Offload_timeout
      (** BE gave up on the FE hop (retries exhausted) with no local
          fallback ruleset available *)

val all_drop_reasons : drop_reason list
(** Every reason, in {!drop_reason_index} order. *)

val drop_reason_count : int

val drop_reason_index : drop_reason -> int
(** Dense index in [0, drop_reason_count); counter arrays use it to
    avoid per-packet association-list walks. *)

val drop_reason_to_string : drop_reason -> string
val pp_drop_reason : Format.formatter -> drop_reason -> unit

type verdict = Deliver | Drop of drop_reason

val pp_verdict : Format.formatter -> verdict -> unit

type state_out =
  | Init of State.t  (** first packet: state must be created *)
  | Update of State.t  (** state changed and must be written back *)
  | Keep  (** no state change *)

val tcp_phase_of_flags : Packet.tcp_flags -> proto:Five_tuple.proto -> State.tcp_phase option
(** Connection-tracking phase implied by a packet (TCP only). *)

val advance_tcp :
  State.tcp_phase option ->
  flags:Packet.tcp_flags ->
  proto:Five_tuple.proto ->
  State.tcp_phase option
(** Phase transition on a subsequent packet; never regresses. *)

val initial_state :
  dir:Packet.direction ->
  flags:Packet.tcp_flags ->
  proto:Five_tuple.proto ->
  pre:Pre_action.t ->
  ?decap_src:Ipv4.t ->
  unit ->
  State.t
(** The state the first packet of a session installs: first-packet
    direction, TCP phase, stateful-decap source (from the packet's
    preserved outer header, §5.2) and statistics counters when the
    stats policy (a rule-table lookup result) asks for them. *)

val process :
  pre:Pre_action.t ->
  state:State.t option ->
  dir:Packet.direction ->
  flags:Packet.tcp_flags ->
  proto:Five_tuple.proto ->
  wire_bytes:int ->
  ?decap_src:Ipv4.t ->
  unit ->
  verdict * state_out
(** One fast-path execution.  [state = None] means this packet is the
    session's first at the state holder; [Init] is returned.  The
    stateful-ACL rule implemented: a direction whose pre-action is [Deny]
    still passes if the session was initiated from the *other* direction
    (§5.1 — responses to locally-initiated connections must flow). *)
