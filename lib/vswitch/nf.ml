open Nezha_net
open Nezha_tables

type drop_reason =
  | Acl_denied
  | Unsolicited
  | No_route
  | No_vnic
  | Table_full
  | Queue_overflow
  | Rate_limited
  | Nic_crashed
  | Vm_overload
  | Offload_timeout

let all_drop_reasons =
  [
    Acl_denied;
    Unsolicited;
    No_route;
    No_vnic;
    Table_full;
    Queue_overflow;
    Rate_limited;
    Nic_crashed;
    Vm_overload;
    Offload_timeout;
  ]

let drop_reason_count = List.length all_drop_reasons

let drop_reason_index = function
  | Acl_denied -> 0
  | Unsolicited -> 1
  | No_route -> 2
  | No_vnic -> 3
  | Table_full -> 4
  | Queue_overflow -> 5
  | Rate_limited -> 6
  | Nic_crashed -> 7
  | Vm_overload -> 8
  | Offload_timeout -> 9

let drop_reason_to_string = function
  | Acl_denied -> "acl-denied"
  | Unsolicited -> "unsolicited"
  | No_route -> "no-route"
  | No_vnic -> "no-vnic"
  | Table_full -> "table-full"
  | Queue_overflow -> "queue-overflow"
  | Rate_limited -> "rate-limited"
  | Nic_crashed -> "nic-crashed"
  | Vm_overload -> "vm-overload"
  | Offload_timeout -> "offload-timeout"

let pp_drop_reason ppf r = Format.pp_print_string ppf (drop_reason_to_string r)

type verdict = Deliver | Drop of drop_reason

let pp_verdict ppf = function
  | Deliver -> Format.pp_print_string ppf "deliver"
  | Drop r -> Format.fprintf ppf "drop(%a)" pp_drop_reason r

type state_out = Init of State.t | Update of State.t | Keep

let tcp_phase_of_flags (flags : Packet.tcp_flags) ~proto =
  match proto with
  | Five_tuple.Tcp ->
    if flags.Packet.rst || flags.Packet.fin then Some State.Closing
    else if flags.Packet.syn then Some State.Establishing
    else Some State.Established
  | Five_tuple.Udp | Five_tuple.Icmp -> None

let stats_init (spec : Pre_action.stats_spec) ~wire_bytes =
  {
    State.packets = (if spec.Pre_action.count_packets then 1 else 0);
    bytes = (if spec.Pre_action.count_bytes then wire_bytes else 0);
  }

let initial_state ~dir ~flags ~proto ~(pre : Pre_action.t) ?decap_src () =
  {
    State.first_dir = dir;
    tcp = tcp_phase_of_flags flags ~proto;
    decap_src = (if pre.Pre_action.stateful_decap then decap_src else None);
    stats =
      (match pre.Pre_action.stats with
      | Some spec -> Some (stats_init spec ~wire_bytes:0)
      | None -> None);
  }

let acl_for_dir (pre : Pre_action.t) = function
  | Packet.Tx -> pre.Pre_action.acl_tx
  | Packet.Rx -> pre.Pre_action.acl_rx

(* Stateful ACL (§5.1): a Deny pre-action is overruled for return
   traffic — packets flowing against the session's first direction. *)
let acl_verdict ~pre ~(state : State.t) ~dir =
  match acl_for_dir pre dir with
  | Acl.Permit -> Deliver
  | Acl.Deny ->
    if state.State.first_dir <> dir then Deliver
    else Drop (match dir with Packet.Rx -> Unsolicited | Packet.Tx -> Acl_denied)

let advance_tcp current ~flags ~proto =
  match tcp_phase_of_flags flags ~proto with
  | None -> current
  | Some State.Closing -> Some State.Closing
  | Some State.Establishing -> current (* retransmitted SYN does not regress *)
  | Some State.Established -> (
    match current with
    | Some State.Closing -> Some State.Closing
    | Some State.Establishing | Some State.Established | None -> Some State.Established)

let update_stats (pre : Pre_action.t) stats ~wire_bytes =
  match (pre.Pre_action.stats, stats) with
  | None, _ -> stats
  | Some spec, None -> Some (stats_init spec ~wire_bytes)
  | Some spec, Some s ->
    Some
      {
        State.packets = (s.State.packets + if spec.Pre_action.count_packets then 1 else 0);
        bytes = (s.State.bytes + if spec.Pre_action.count_bytes then wire_bytes else 0);
      }

let process ~pre ~state ~dir ~flags ~proto ~wire_bytes ?decap_src () =
  match state with
  | None ->
    let st = initial_state ~dir ~flags ~proto ~pre ?decap_src () in
    let st = { st with State.stats = update_stats pre None ~wire_bytes } in
    let verdict = acl_verdict ~pre ~state:st ~dir in
    (verdict, Init st)
  | Some st ->
    let verdict = acl_verdict ~pre ~state:st ~dir in
    let tcp' = advance_tcp st.State.tcp ~flags ~proto in
    let stats' = update_stats pre st.State.stats ~wire_bytes in
    let decap' =
      match (st.State.decap_src, decap_src, pre.Pre_action.stateful_decap) with
      | None, Some s, true -> Some s
      | kept, _, _ -> kept
    in
    let st' = { st with State.tcp = tcp'; stats = stats'; decap_src = decap' } in
    if State.equal st st' then (verdict, Keep) else (verdict, Update st')
