open Nezha_engine
open Nezha_net
open Nezha_tables
module Trace = Nezha_telemetry.Trace

type output = To_vm of Vnic.id * Packet.t | To_net of Packet.t

(* The transmit side of the vSwitch.  [on_output] carries single
   results (every [To_vm], plus [To_net] from the single-packet paths);
   [on_net_batch] carries an encapsulated net burst, ownership
   included — the sink recycles the batch. *)
type sink = { on_output : output -> unit; on_net_batch : Pbatch.t -> unit }

type counters = {
  rx_packets : Stats.Counter.t;
  tx_packets : Stats.Counter.t;
  delivered : Stats.Counter.t;
  forwarded : Stats.Counter.t;
  slow_path_execs : Stats.Counter.t;
  fast_path_hits : Stats.Counter.t;
  sessions_created : Stats.Counter.t;
  notify_packets : Stats.Counter.t;
  drops : Stats.Counter.t array; (* indexed by Nf.drop_reason_index *)
}

type session = { pre : Pre_action.t option; state : State.t option; generation : int }

type intercept = {
  on_tx : Packet.t -> [ `Handled | `Continue ];
  on_rx : Packet.t -> [ `Handled | `Continue ];
  on_tx_batch : (Pbatch.t -> unit) option;
      (* vectored TX interception; [None] falls back to [on_tx] per
         packet.  The handler owns (and recycles) the batch. *)
}

type flow_record = {
  key : Flow_key.t;
  packets : int;
  bytes : int;
  first_dir : Packet.direction;
}

type vnic_entry = {
  vnic : Vnic.t;
  mutable ruleset : Ruleset.t option;
  mutable rule_bytes : int; (* reserved on the NIC for rule tables *)
  mutable residual_bytes : int; (* BE metadata kept after offload *)
  sessions : session Flow_table.t;
  mutable intercept : intercept option;
  slow_execs : Stats.Counter.t;
  mutable rate_limit : Token_bucket.t option;
}

type t = {
  sim : Sim.t;
  params : Params.t;
  name : string;
  underlay_ip : Ipv4.t;
  gateway : Ipv4.t;
  nic : Smartnic.t;
  vnics : vnic_entry Vnic.Id_table.t;
  by_addr : Vnic.t Vnic.Addr.Table.t;
  counters : counters;
  mutable transmit : output -> unit;
  mutable transmit_batch : Pbatch.t -> unit;
  mutable version : int;
  mutable flow_log : (flow_record -> unit) option;
  mutable flow_records : int;
  mutable mirror_target : Ipv4.t option;
  mutable mirrored : int;
  mutable learner : (Vnic.Addr.t -> (Ipv4.t array * float) option) option;
  mutable learning : unit Vnic.Addr.Table.t; (* queries in flight *)
  mutable net_hook : (Packet.t -> outer:Packet.vxlan option -> [ `Handled | `Continue ]) option;
  mutable net_hook_batch : (Pbatch.t -> Pbatch.t option) option;
      (* vectored net hook: receives still-encapsulated NSH traffic,
         returns the (still-encapsulated) leftover it declined, or
         [None] when everything was consumed. *)
  mutable tracer : Trace.t option;
  (* Controller-epoch fence: the highest epoch ever observed.  Like a
     Chubby/ZooKeeper fence token it survives crashes (the one durably
     persisted item), so a revived stale controller can never win. *)
  mutable epoch : int;
  mutable epoch_rejections : int;
  (* Saved by [register_telemetry] so vNICs added later still get their
     per-vNIC instruments (and removed vNICs drop theirs). *)
  mutable telemetry : Nezha_telemetry.Telemetry.t option;
}

let make_counters () =
  {
    rx_packets = Stats.Counter.create ();
    tx_packets = Stats.Counter.create ();
    delivered = Stats.Counter.create ();
    forwarded = Stats.Counter.create ();
    slow_path_execs = Stats.Counter.create ();
    fast_path_hits = Stats.Counter.create ();
    sessions_created = Stats.Counter.create ();
    notify_packets = Stats.Counter.create ();
    drops = Array.init Nf.drop_reason_count (fun _ -> Stats.Counter.create ());
  }

(* Accounted size of a session entry: key bytes, plus the cached
   bidirectional pre-actions when present, plus the fixed state slot. *)
let key_bytes = 40

let session_bytes params s =
  key_bytes
  + (match s.pre with Some _ -> params.Params.session_entry_overhead - key_bytes | None -> 0)
  + (match s.state with Some _ -> params.Params.state_slot_bytes | None -> 0)

let create ~sim ~params ~name ~underlay_ip ~gateway () =
  let t =
    {
      sim;
      params;
      name;
      underlay_ip;
      gateway;
      nic = Smartnic.create ~sim ~params ~name;
      vnics = Vnic.Id_table.create 16;
      by_addr = Vnic.Addr.Table.create 16;
      counters = make_counters ();
      transmit = (fun _ -> failwith "Vswitch: transmit not installed");
      transmit_batch = (fun _ -> failwith "Vswitch: sink not installed");
      version = 0;
      flow_log = None;
      flow_records = 0;
      mirror_target = None;
      mirrored = 0;
      learner = None;
      learning = Vnic.Addr.Table.create 8;
      net_hook = None;
      net_hook_batch = None;
      tracer = None;
      epoch = 0;
      epoch_rejections = 0;
      telemetry = None;
    }
  in
  (* Aging pump: sweep session tables a few times per aging period. *)
  let period = params.Params.flow_aging /. 4.0 in
  Sim.every sim ~period (fun sim' ->
      let now = Sim.now sim' in
      Vnic.Id_table.iter
        (fun _ e ->
          ignore
            (Flow_table.expire e.sessions ~now ~on_expire:(fun key v ->
                 Smartnic.mem_release t.nic (session_bytes t.params v);
                 (* Flow logging: counted sessions emit a record on exit. *)
                 match (t.flow_log, v.state) with
                 | Some sink, Some { State.stats = Some s; first_dir; _ } ->
                   t.flow_records <- t.flow_records + 1;
                   sink { key; packets = s.State.packets; bytes = s.State.bytes; first_dir }
                 | _, _ -> ())
              : int))
        t.vnics;
      true);
  t

let name t = t.name
let sim t = t.sim
let params t = t.params
let underlay_ip t = t.underlay_ip
let gateway t = t.gateway
let nic t = t.nic
let counters t = t.counters

let software_version t = t.version
let set_software_version t v = t.version <- v

let drop_counter t reason = t.counters.drops.(Nf.drop_reason_index reason)

let drop_count t reason = Stats.Counter.value (drop_counter t reason)

let total_drops t =
  Array.fold_left (fun acc c -> acc + Stats.Counter.value c) 0 t.counters.drops

let count_drop t reason = Stats.Counter.incr (drop_counter t reason)
let count_notify t = Stats.Counter.incr t.counters.notify_packets

let set_sink t s =
  t.transmit <- s.on_output;
  t.transmit_batch <- s.on_net_batch

(* ------------------------------------------------------------------ *)
(* Tracing.  The vSwitch is the allocation point (a trace starts where
   the VM handed over the packet) and the guard for every emitter: with
   no tracer installed, or an untraced packet, each site is one match. *)

let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

let trace_begin t pkt =
  match t.tracer with
  | Some tr when pkt.Packet.trace_id = 0 ->
    let id = Trace.next_id tr in
    if id <> 0 then begin
      pkt.Packet.trace_id <- id;
      Trace.begin_trace tr ~id ~now:(Sim.now t.sim)
    end
  | Some _ | None -> ()

let trace_span t pkt ~name ~component ?kind ?site ?args ~t0 () =
  match t.tracer with
  | Some tr when pkt.Packet.trace_id <> 0 ->
    Trace.add_span tr ~id:pkt.Packet.trace_id ~name ~component ?kind ?site ?args ~t0
      ~t1:(Sim.now t.sim) ()
  | Some _ | None -> ()

let trace_stage t pkt ~name ?args ~t0 () =
  trace_span t pkt ~name ~component:("vswitch/" ^ t.name) ?args ~t0 ()

let trace_detail t pkt ~name ?args ~t0 () =
  trace_span t pkt ~name ~component:("vswitch/" ^ t.name) ~kind:Trace.Detail ?args ~t0 ()
let emit t out =
  (match out with
  | To_vm (_, _) -> Stats.Counter.incr t.counters.delivered
  | To_net _ -> Stats.Counter.incr t.counters.forwarded);
  t.transmit out

(* Send an encapsulated net burst.  Counting happens here (mirroring
   [emit]) so both sink arms agree on [forwarded]. *)
let emit_batch t batch =
  if Pbatch.is_empty batch then Pbatch.recycle batch
  else begin
    Stats.Counter.add t.counters.forwarded (Pbatch.length batch);
    t.transmit_batch batch
  end

(* ------------------------------------------------------------------ *)
(* vNIC management *)

let new_sessions t =
  Flow_table.create ~entry_overhead:0
    ~value_bytes:(fun s -> session_bytes t.params s)
    ~default_aging:t.params.Params.flow_aging ()

let vnic_telemetry_prefix t vid =
  "vswitch/" ^ t.name ^ "/vnic/" ^ string_of_int (Vnic.id_to_int vid) ^ "/"

(* Per-vNIC classifier instruments.  Under the [Auto] policy the backend
   is a decision the classifier makes from the ruleset's shape, not a
   configuration — so the gauge reports which engine is actually serving
   the tenant's ACL (0 = linear, 1 = tss, 2 = learned) together with the
   index's memory footprint. *)
let register_vnic_telemetry t reg vid ruleset =
  let module T = Nezha_telemetry.Telemetry in
  let prefix = vnic_telemetry_prefix t vid in
  T.register_gauge reg
    ~name:(prefix ^ "classifier_backend")
    (fun () ->
      float_of_int (Classifier.backend_code (Ruleset.classifier_backend ruleset)));
  T.register_gauge reg
    ~name:(prefix ^ "classifier_memory_bytes")
    (fun () -> float_of_int (Ruleset.classifier_memory_bytes ruleset))

let add_vnic t vnic ruleset =
  let bytes = Ruleset.memory_bytes ruleset in
  if Smartnic.mem_reserve t.nic bytes then begin
    let entry =
      {
        vnic;
        ruleset = Some ruleset;
        rule_bytes = bytes;
        residual_bytes = 0;
        sessions = new_sessions t;
        intercept = None;
        slow_execs = Stats.Counter.create ();
        rate_limit = None;
      }
    in
    Vnic.Id_table.replace t.vnics vnic.Vnic.id entry;
    Vnic.Addr.Table.replace t.by_addr (Vnic.addr vnic) vnic;
    (match t.telemetry with
    | Some reg -> register_vnic_telemetry t reg vnic.Vnic.id ruleset
    | None -> ());
    Admission.ok
  end
  else Admission.no_memory

let release_sessions t e =
  Flow_table.iter e.sessions (fun _ v -> Smartnic.mem_release t.nic (session_bytes t.params v));
  Flow_table.clear e.sessions

(* Crash semantics: everything living in the dataplane process's memory
   vanishes — session tables (and their NIC reservations), megaflow
   caches, in-flight learning queries, BE/FE packet hooks, intercepts,
   mirrors, flow-log backlog, counters.  Rulesets, vNIC registrations
   and rate-limit config are tenant intent re-pushed from the durable
   store during reboot, modelled as surviving in place; the epoch fence
   is durably persisted by design (see DESIGN.md §13). *)
let wipe_volatile t =
  Vnic.Id_table.iter
    (fun _ e ->
      release_sessions t e;
      e.intercept <- None;
      Stats.Counter.reset e.slow_execs;
      (* The megaflow cache dies with the process: a generation bump
         invalidates every cached entry without touching the rules. *)
      match e.ruleset with Some rs -> Ruleset.bump_generation rs | None -> ())
    t.vnics;
  Vnic.Addr.Table.reset t.learning;
  t.net_hook <- None;
  t.net_hook_batch <- None;
  t.mirror_target <- None;
  t.mirrored <- 0;
  t.flow_records <- 0;
  let c = t.counters in
  Stats.Counter.reset c.rx_packets;
  Stats.Counter.reset c.tx_packets;
  Stats.Counter.reset c.delivered;
  Stats.Counter.reset c.forwarded;
  Stats.Counter.reset c.slow_path_execs;
  Stats.Counter.reset c.fast_path_hits;
  Stats.Counter.reset c.sessions_created;
  Stats.Counter.reset c.notify_packets;
  Array.iter Stats.Counter.reset c.drops

let epoch t = t.epoch
let epoch_rejections t = t.epoch_rejections

let observe_epoch t ~epoch =
  if epoch >= t.epoch then begin
    t.epoch <- epoch;
    true
  end
  else begin
    t.epoch_rejections <- t.epoch_rejections + 1;
    false
  end

let remove_vnic t vid =
  match Vnic.Id_table.find_opt t.vnics vid with
  | None -> ()
  | Some e ->
    release_sessions t e;
    Smartnic.mem_release t.nic (e.rule_bytes + e.residual_bytes);
    Vnic.Addr.Table.remove t.by_addr (Vnic.addr e.vnic);
    Vnic.Id_table.remove t.vnics vid;
    (match t.telemetry with
    | Some reg ->
      Nezha_telemetry.Telemetry.unregister_prefix reg ~prefix:(vnic_telemetry_prefix t vid)
    | None -> ())

let vnic_count t = Vnic.Id_table.length t.vnics
let find_vnic t addr = Vnic.Addr.Table.find_opt t.by_addr addr
let vnic_ids t = Vnic.Id_table.fold (fun id _ acc -> id :: acc) t.vnics []

let entry t vid = Vnic.Id_table.find_opt t.vnics vid

let vnic_info t vid = Option.map (fun e -> e.vnic) (entry t vid)

let ruleset t vid = Option.bind (entry t vid) (fun e -> e.ruleset)

let drop_cached_flows t e =
  (* Remove entries that carry pre-actions; keep pure-state entries. *)
  let victims = ref [] in
  Flow_table.iter e.sessions (fun k v -> if v.pre <> None then victims := (k, v) :: !victims);
  List.iter
    (fun (k, v) ->
      Smartnic.mem_release t.nic (session_bytes t.params v);
      (match v.state with
      | Some st ->
        (* Preserve the state in a slimmed entry (BE keeps state). *)
        let slim = { pre = None; state = Some st; generation = v.generation } in
        if Smartnic.mem_reserve t.nic (session_bytes t.params slim) then
          ignore
            (Flow_table.insert e.sessions ~now:(Sim.now t.sim) k slim : Admission.t)
        else ignore (Flow_table.remove e.sessions k : bool)
      | None -> ignore (Flow_table.remove e.sessions k : bool)))
    !victims

let drop_ruleset t vid =
  match entry t vid with
  | None -> ()
  | Some e ->
    Smartnic.mem_release t.nic e.rule_bytes;
    e.rule_bytes <- 0;
    e.ruleset <- None;
    let residual = t.params.Params.be_residual_bytes_per_vnic in
    if e.residual_bytes = 0 && Smartnic.mem_reserve t.nic residual then
      e.residual_bytes <- residual;
    drop_cached_flows t e

let restore_ruleset t vid ruleset =
  match entry t vid with
  | None -> Admission.no_memory
  | Some e ->
    let bytes = Ruleset.memory_bytes ruleset in
    if Smartnic.mem_reserve t.nic bytes then begin
      Smartnic.mem_release t.nic e.residual_bytes;
      e.residual_bytes <- 0;
      e.ruleset <- Some ruleset;
      e.rule_bytes <- bytes;
      Admission.ok
    end
    else Admission.no_memory

let sync_rule_memory t vid =
  match entry t vid with
  | None -> Admission.ok
  | Some e -> (
    match e.ruleset with
    | None -> Admission.ok
    | Some rs ->
      let want = Ruleset.memory_bytes rs in
      let delta = want - e.rule_bytes in
      if delta <= 0 then begin
        Smartnic.mem_release t.nic (-delta);
        e.rule_bytes <- want;
        Admission.ok
      end
      else if Smartnic.mem_reserve t.nic delta then begin
        e.rule_bytes <- want;
        Admission.ok
      end
      else Admission.no_memory)

(* ------------------------------------------------------------------ *)
(* Session table *)

let find_session t vid key =
  match entry t vid with None -> None | Some e -> Flow_table.find e.sessions key

let aging_for t s =
  match s.state with
  | Some st when State.is_establishing st -> Some t.params.Params.syn_aging
  | Some _ | None -> Some t.params.Params.flow_aging

let store_session t vid key s =
  match entry t vid with
  | None -> Admission.table_full
  | Some e ->
    let old_bytes =
      match Flow_table.find e.sessions key with
      | Some old -> session_bytes t.params old
      | None -> 0
    in
    let new_bytes = session_bytes t.params s in
    let delta = new_bytes - old_bytes in
    let reserved = if delta > 0 then Smartnic.mem_reserve t.nic delta else true in
    if not reserved then Admission.table_full
    else begin
      if delta < 0 then Smartnic.mem_release t.nic (-delta);
      let aging = aging_for t s in
      (match Flow_table.insert e.sessions ~now:(Sim.now t.sim) ?aging key s with
      | Ok () ->
        if old_bytes = 0 then Stats.Counter.incr t.counters.sessions_created;
        Admission.ok
      | Error _ ->
        (* Unbounded table: cannot happen, but keep accounting honest. *)
        if delta > 0 then Smartnic.mem_release t.nic delta;
        Admission.table_full)
    end

let remove_session t vid key =
  match entry t vid with
  | None -> false
  | Some e -> (
    match Flow_table.find e.sessions key with
    | None -> false
    | Some v ->
      Smartnic.mem_release t.nic (session_bytes t.params v);
      Flow_table.remove e.sessions key)

let touch_session t vid key =
  match entry t vid with
  | None -> ()
  | Some e ->
    let aging =
      match Flow_table.find e.sessions key with
      | Some s -> aging_for t s
      | None -> None
    in
    ignore (Flow_table.touch e.sessions ~now:(Sim.now t.sim) ?aging key : bool)

let iter_sessions t vid f =
  match entry t vid with None -> () | Some e -> Flow_table.iter e.sessions f

let session_count t vid =
  match entry t vid with None -> 0 | Some e -> Flow_table.length e.sessions

let total_sessions t =
  Vnic.Id_table.fold (fun _ e acc -> acc + Flow_table.length e.sessions) t.vnics 0

let invalidate_cached_flows t vid =
  match entry t vid with
  | None -> ()
  | Some e -> (
    match e.ruleset with
    | None -> ()
    | Some rs ->
      let current = Ruleset.generation rs in
      let victims = ref [] in
      Flow_table.iter e.sessions (fun k v ->
          if v.pre <> None && v.generation <> current then victims := k :: !victims);
      List.iter (fun k -> ignore (remove_session t vid k : bool)) !victims)

(* ------------------------------------------------------------------ *)
(* Datapath *)

let charge t ~cycles k =
  if not (Smartnic.submit t.nic ~cycles k) then
    count_drop t
      (if Smartnic.is_crashed t.nic then Nf.Nic_crashed else Nf.Queue_overflow)

(* One submission for a whole batch: the SmartNIC schedules a single
   event for the summed cycles — the event-dispatch amortization that
   motivates vectoring.  A rejected submission loses every packet of
   the batch, so the drop counter advances by [npkts]. *)
let charge_batch t ~cycles ~npkts k =
  if Smartnic.submit t.nic ~cycles k then true
  else begin
    let reason =
      if Smartnic.is_crashed t.nic then Nf.Nic_crashed else Nf.Queue_overflow
    in
    Stats.Counter.add (drop_counter t reason) npkts;
    false
  end

let slow_path t rs ~vpc ~flow_tx =
  Stats.Counter.incr t.counters.slow_path_execs;
  Ruleset.lookup rs ~params:t.params ~vpc ~flow_tx

let deliver_local t vid pkt = emit t (To_vm (vid, pkt))

let set_intercept t vid i =
  match entry t vid with None -> () | Some e -> e.intercept <- i

let set_net_hook t h = t.net_hook <- h
let set_net_hook_batch t h = t.net_hook_batch <- h

let set_mapping_learner t l = t.learner <- l

(* A slow-path lookup found no vNIC-server entry: the packet detours via
   the gateway, and we ask for the authoritative entry once; it installs
   after the learning delay. *)
let learn_mapping t ~vid ~addr =
  match t.learner with
  | None -> ()
  | Some learner ->
    if not (Vnic.Addr.Table.mem t.learning addr) then begin
      Vnic.Addr.Table.replace t.learning addr ();
      match learner addr with
      | None -> Vnic.Addr.Table.remove t.learning addr
      | Some (targets, delay) ->
        ignore
          (Sim.schedule t.sim ~delay (fun _ ->
               Vnic.Addr.Table.remove t.learning addr;
               match entry t vid with
               | Some { ruleset = Some current; _ } ->
                 Ruleset.set_mapping_multi current addr targets;
                 ignore (sync_rule_memory t vid : Admission.t)
               | Some { ruleset = None; _ } | None -> ())
            : Sim.handle)
    end

let set_mirror_target t target = t.mirror_target <- target

let packets_mirrored t = t.mirrored

(* Mirroring: ship an independent copy of the tenant packet to the
   collector.  The copy is a fresh packet (fresh uid) so tracing tools
   can tell original and mirror apart. *)
let maybe_mirror t (pre : Pre_action.t) pkt =
  match (pre.Pre_action.mirror, t.mirror_target) with
  | true, Some collector ->
    let copy =
      Packet.create ~vpc:pkt.Packet.vpc ~flow:pkt.Packet.flow ~direction:pkt.Packet.direction
        ~flags:pkt.Packet.flags ~payload_len:pkt.Packet.payload_len ()
    in
    Packet.encap_vxlan copy ~vni:pre.Pre_action.vni ~outer_src:t.underlay_ip
      ~outer_dst:collector;
    t.mirrored <- t.mirrored + 1;
    emit t (To_net copy)
  | _, _ -> ()

(* Forward a tenant packet to the underlay server [dst] (or the gateway
   when the mapping is unknown). *)
let forward_overlay t pkt ~vni ~dst =
  let outer_dst = match dst with Some server -> server | None -> t.gateway in
  Packet.encap_vxlan pkt ~vni ~outer_src:t.underlay_ip ~outer_dst;
  emit t (To_net pkt)

let apply_state_out t vid key ~generation ~pre_opt out =
  match out with
  | Nf.Keep -> touch_session t vid key
  | Nf.Init st | Nf.Update st ->
    let existing = find_session t vid key in
    let pre = match pre_opt with Some _ as p -> p | None -> Option.bind existing (fun s -> s.pre) in
    ignore (store_session t vid key { pre; state = Some st; generation } : Admission.t)

(* Traditional local TX path (§2.1). *)
let local_tx t e pkt =
  let vid = e.vnic.Vnic.id in
  let t0 = Sim.now t.sim in
  let key = Flow_key.of_packet_fields ~vpc:pkt.Packet.vpc ~flow:pkt.Packet.flow in
  let move = Params.packet_cycles t.params ~wire_bytes:(Packet.wire_size pkt) in
  match e.ruleset with
  | None -> count_drop t Nf.No_route
  | Some rs -> (
    let generation = Ruleset.generation rs in
    let cached =
      match find_session t vid key with
      | Some ({ pre = Some _; _ } as s) when s.generation = generation -> Some s
      | Some _ | None -> None
    in
    match cached with
    | Some { pre = Some pre; state; _ } ->
      Stats.Counter.incr t.counters.fast_path_hits;
      let cycles = move + t.params.Params.fast_path_cycles + t.params.Params.encap_cycles in
      charge t ~cycles (fun _sim ->
          trace_stage t pkt ~name:"fast_path" ~args:[ ("dir", "tx") ] ~t0 ();
          let verdict, out =
            Nf.process ~pre ~state ~dir:Packet.Tx ~flags:pkt.Packet.flags
              ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt) ()
          in
          apply_state_out t vid key ~generation ~pre_opt:(Some pre) out;
          match verdict with
          | Nf.Deliver ->
            maybe_mirror t pre pkt;
            forward_overlay t pkt ~vni:pre.Pre_action.vni ~dst:pre.Pre_action.peer_server
          | Nf.Drop reason -> count_drop t reason)
    | Some _ | None -> (
      Stats.Counter.incr e.slow_execs;
      match slow_path t rs ~vpc:pkt.Packet.vpc ~flow_tx:pkt.Packet.flow with
      | None ->
        let cycles =
          move
          + Params.rule_lookup_cycles t.params ~acl_rules_scanned:0 ~lpm_depth:32
              ~tables:(Ruleset.table_count rs)
        in
        charge t ~cycles (fun _ -> count_drop t Nf.No_route)
      | Some { Ruleset.pre; cycles } ->
        if pre.Pre_action.peer_server = None then
          learn_mapping t ~vid
            ~addr:{ Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.dst };
        let lookup_cycles = cycles in
        let cycles =
          move + cycles + t.params.Params.session_setup_cycles + t.params.Params.encap_cycles
        in
        charge t ~cycles (fun _sim ->
            trace_stage t pkt ~name:"slow_path" ~args:[ ("dir", "tx") ] ~t0 ();
            trace_detail t pkt ~name:"classification"
              ~args:[ ("lookup_cycles", string_of_int lookup_cycles) ]
              ~t0 ();
            let prior_state = Option.bind (find_session t vid key) (fun s -> s.state) in
            let verdict, out =
              Nf.process ~pre ~state:prior_state ~dir:Packet.Tx ~flags:pkt.Packet.flags
                ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt) ()
            in
            let stored =
              let state =
                match out with Nf.Init st | Nf.Update st -> Some st | Nf.Keep -> prior_state
              in
              store_session t vid key { pre = Some pre; state; generation }
            in
            match (stored, verdict) with
            | Error _, _ -> count_drop t Nf.Table_full
            | Ok (), Nf.Deliver ->
              maybe_mirror t pre pkt;
              forward_overlay t pkt ~vni:pre.Pre_action.vni ~dst:pre.Pre_action.peer_server
            | Ok (), Nf.Drop reason -> count_drop t reason)))

(* Traditional local RX path: the packet has been decapped; [outer_src]
   is the underlay source preserved for stateful decapsulation. *)
let local_rx t e pkt ~outer_src =
  let vid = e.vnic.Vnic.id in
  let t0 = Sim.now t.sim in
  let key = Flow_key.of_packet_fields ~vpc:pkt.Packet.vpc ~flow:pkt.Packet.flow in
  let move = Params.packet_cycles t.params ~wire_bytes:(Packet.wire_size pkt) in
  match e.ruleset with
  | None -> count_drop t Nf.No_route
  | Some rs -> (
    let generation = Ruleset.generation rs in
    let cached =
      match find_session t vid key with
      | Some ({ pre = Some _; _ } as s) when s.generation = generation -> Some s
      | Some _ | None -> None
    in
    match cached with
    | Some { pre = Some pre; state; _ } ->
      Stats.Counter.incr t.counters.fast_path_hits;
      let cycles = move + t.params.Params.fast_path_cycles in
      charge t ~cycles (fun _sim ->
          trace_stage t pkt ~name:"fast_path" ~args:[ ("dir", "rx") ] ~t0 ();
          let verdict, out =
            Nf.process ~pre ~state ~dir:Packet.Rx ~flags:pkt.Packet.flags
              ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt)
              ?decap_src:outer_src ()
          in
          apply_state_out t vid key ~generation ~pre_opt:(Some pre) out;
          match verdict with
          | Nf.Deliver ->
            maybe_mirror t pre pkt;
            deliver_local t vid pkt
          | Nf.Drop reason -> count_drop t reason)
    | Some _ | None -> (
      (* First packet arrived from outside: run the slow path on the
         TX-orientation tuple (the reverse of what we received). *)
      Stats.Counter.incr e.slow_execs;
      match
        slow_path t rs ~vpc:pkt.Packet.vpc ~flow_tx:(Five_tuple.reverse pkt.Packet.flow)
      with
      | None ->
        let cycles =
          move
          + Params.rule_lookup_cycles t.params ~acl_rules_scanned:0 ~lpm_depth:32
              ~tables:(Ruleset.table_count rs)
        in
        charge t ~cycles (fun _ -> count_drop t Nf.No_route)
      | Some { Ruleset.pre; cycles } ->
        let lookup_cycles = cycles in
        let cycles = move + cycles + t.params.Params.session_setup_cycles in
        charge t ~cycles (fun _sim ->
            trace_stage t pkt ~name:"slow_path" ~args:[ ("dir", "rx") ] ~t0 ();
            trace_detail t pkt ~name:"classification"
              ~args:[ ("lookup_cycles", string_of_int lookup_cycles) ]
              ~t0 ();
            let prior_state = Option.bind (find_session t vid key) (fun s -> s.state) in
            let verdict, out =
              Nf.process ~pre ~state:prior_state ~dir:Packet.Rx ~flags:pkt.Packet.flags
                ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt)
                ?decap_src:outer_src ()
            in
            let stored =
              let state =
                match out with Nf.Init st | Nf.Update st -> Some st | Nf.Keep -> prior_state
              in
              store_session t vid key { pre = Some pre; state; generation }
            in
            match (stored, verdict) with
            | Error _, _ -> count_drop t Nf.Table_full
            | Ok (), Nf.Deliver ->
              maybe_mirror t pre pkt;
              deliver_local t vid pkt
            | Ok (), Nf.Drop reason -> count_drop t reason)))

(* ------------------------------------------------------------------ *)
(* Batched local datapath.

   One pass over the burst groups packets by flow key (linear scan over
   the unique keys seen so far — batches are small) and resolves each
   group once: a session-table hit or one slow-path execution, with the
   rest of the group riding the result.  The whole burst is then charged
   as a single SmartNIC submission (one event for the summed cycles) and
   the continuation replays the exact per-packet sequence the
   single-packet paths run, so state evolution, stored sessions and
   verdicts match a packet-at-a-time burst observably.

   Counter discipline: group followers advance the same counters the
   single path would have (fast-path hit, or slow-path execution whose
   lookup degenerates to a megaflow hit).  Flows whose peer maps to
   several FEs are the one divergence: the single path re-walks the
   pipeline per packet (their megaflow entry is uncacheable) while the
   batch memo rides the leader's result — same pre-actions (the FE pick
   hashes the flow, identical within a group), fewer walk cycles. *)

let dummy_key =
  Flow_key.of_packet_fields ~vpc:(Vpc.make 0)
    ~flow:
      (Five_tuple.make ~src:(Ipv4.of_octets 0 0 0 0) ~dst:(Ipv4.of_octets 0 0 0 0)
         ~src_port:0 ~dst_port:0 ~proto:Five_tuple.Tcp)

let kind_fast = 0
let kind_slow = 1
let kind_noroute = 2

(* [outers] is the per-packet preserved outer source on RX; [None] on
   TX.  Owns [batch]. *)
let local_batch t e ~dir batch ~outers =
  let vid = e.vnic.Vnic.id in
  let t0 = Sim.now t.sim in
  let n = Pbatch.length batch in
  if n = 0 then Pbatch.recycle batch
  else begin
    match e.ruleset with
    | None ->
      for _ = 1 to n do
        count_drop t Nf.No_route
      done;
      Pbatch.recycle batch
    | Some rs ->
      let generation = Ruleset.generation rs in
      let pkt_group = Array.make n 0 in
      let pkt_lookup = Array.make n 0 in
      let pkt_key = Array.make n dummy_key in
      let g_keys = Array.make n dummy_key in
      let g_kind = Array.make n kind_noroute in
      let g_pre = Array.make n None in
      let g_state = Array.make n None in
      let ngroups = ref 0 in
      let total_cycles = ref 0 in
      for i = 0 to n - 1 do
        let pkt = Pbatch.get batch i in
        let key = Flow_key.of_packet_fields ~vpc:pkt.Packet.vpc ~flow:pkt.Packet.flow in
        pkt_key.(i) <- key;
        let move = Params.packet_cycles t.params ~wire_bytes:(Packet.wire_size pkt) in
        let encap = match dir with Packet.Tx -> t.params.Params.encap_cycles | Packet.Rx -> 0 in
        let gi = ref (-1) in
        for j = 0 to !ngroups - 1 do
          if !gi < 0 && Flow_key.equal g_keys.(j) key then gi := j
        done;
        let lookup_cycles = ref 0 in
        (if !gi < 0 then begin
           (* Group leader: resolve once. *)
           let j = !ngroups in
           incr ngroups;
           g_keys.(j) <- key;
           gi := j;
           let cached =
             match find_session t vid key with
             | Some ({ pre = Some _; _ } as s) when s.generation = generation -> Some s
             | Some _ | None -> None
           in
           match cached with
           | Some { pre = Some pre; state; _ } ->
             Stats.Counter.incr t.counters.fast_path_hits;
             g_kind.(j) <- kind_fast;
             g_pre.(j) <- Some pre;
             g_state.(j) <- state
           | Some _ | None -> (
             Stats.Counter.incr e.slow_execs;
             let flow_tx =
               match dir with
               | Packet.Tx -> pkt.Packet.flow
               | Packet.Rx -> Five_tuple.reverse pkt.Packet.flow
             in
             match slow_path t rs ~vpc:pkt.Packet.vpc ~flow_tx with
             | None ->
               g_kind.(j) <- kind_noroute;
               lookup_cycles :=
                 Params.rule_lookup_cycles t.params ~acl_rules_scanned:0 ~lpm_depth:32
                   ~tables:(Ruleset.table_count rs)
             | Some { Ruleset.pre; cycles } ->
               if dir = Packet.Tx && pre.Pre_action.peer_server = None then
                 learn_mapping t ~vid
                   ~addr:
                     { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.dst };
               g_kind.(j) <- kind_slow;
               g_pre.(j) <- Some pre;
               lookup_cycles := cycles)
         end
         else begin
           (* Follower: account what the single path would have done. *)
           match g_kind.(!gi) with
           | k when k = kind_fast -> Stats.Counter.incr t.counters.fast_path_hits
           | k when k = kind_slow ->
             Stats.Counter.incr e.slow_execs;
             Stats.Counter.incr t.counters.slow_path_execs;
             Ruleset.note_megaflow_hit rs;
             lookup_cycles := t.params.Params.megaflow_hit_cycles
           | _ ->
             (* Unroutable groups are not memoized: the single path
                burns a failed walk per packet, so replay it. *)
             Stats.Counter.incr e.slow_execs;
             ignore
               (slow_path t rs ~vpc:pkt.Packet.vpc
                  ~flow_tx:
                    (match dir with
                    | Packet.Tx -> pkt.Packet.flow
                    | Packet.Rx -> Five_tuple.reverse pkt.Packet.flow)
                 : Ruleset.lookup_result option);
             lookup_cycles :=
               Params.rule_lookup_cycles t.params ~acl_rules_scanned:0 ~lpm_depth:32
                 ~tables:(Ruleset.table_count rs)
         end);
        pkt_group.(i) <- !gi;
        pkt_lookup.(i) <- !lookup_cycles;
        let c =
          match g_kind.(!gi) with
          | k when k = kind_fast -> move + t.params.Params.fast_path_cycles + encap
          | k when k = kind_slow ->
            move + !lookup_cycles + t.params.Params.session_setup_cycles + encap
          | _ -> move + !lookup_cycles
        in
        total_cycles := !total_cycles + c
      done;
      let accepted =
        charge_batch t ~cycles:!total_cycles ~npkts:n (fun _sim ->
            let out = Pbatch.alloc () in
            for i = 0 to n - 1 do
              let pkt = Pbatch.get batch i in
              let key = pkt_key.(i) in
              let gi = pkt_group.(i) in
              let decap_src = match outers with None -> None | Some a -> a.(i) in
              let dir_arg = match dir with Packet.Tx -> "tx" | Packet.Rx -> "rx" in
              match g_kind.(gi) with
              | k when k = kind_fast -> (
                let pre = Option.get g_pre.(gi) in
                trace_stage t pkt ~name:"fast_path" ~args:[ ("dir", dir_arg) ] ~t0 ();
                let verdict, st_out =
                  Nf.process ~pre ~state:g_state.(gi) ~dir ~flags:pkt.Packet.flags
                    ~proto:pkt.Packet.flow.Five_tuple.proto
                    ~wire_bytes:(Packet.wire_size pkt) ?decap_src ()
                in
                apply_state_out t vid key ~generation ~pre_opt:(Some pre) st_out;
                match verdict with
                | Nf.Deliver -> (
                  maybe_mirror t pre pkt;
                  match dir with
                  | Packet.Tx ->
                    let outer_dst =
                      match pre.Pre_action.peer_server with
                      | Some server -> server
                      | None -> t.gateway
                    in
                    Packet.encap_vxlan pkt ~vni:pre.Pre_action.vni
                      ~outer_src:t.underlay_ip ~outer_dst;
                    Pbatch.push out pkt
                  | Packet.Rx -> deliver_local t vid pkt)
                | Nf.Drop reason -> count_drop t reason)
              | k when k = kind_slow -> (
                let pre = Option.get g_pre.(gi) in
                trace_stage t pkt ~name:"slow_path" ~args:[ ("dir", dir_arg) ] ~t0 ();
                trace_detail t pkt ~name:"classification"
                  ~args:[ ("lookup_cycles", string_of_int pkt_lookup.(i)) ]
                  ~t0 ();
                let prior_state =
                  Option.bind (find_session t vid key) (fun s -> s.state)
                in
                let verdict, st_out =
                  Nf.process ~pre ~state:prior_state ~dir ~flags:pkt.Packet.flags
                    ~proto:pkt.Packet.flow.Five_tuple.proto
                    ~wire_bytes:(Packet.wire_size pkt) ?decap_src ()
                in
                let stored =
                  let state =
                    match st_out with
                    | Nf.Init st | Nf.Update st -> Some st
                    | Nf.Keep -> prior_state
                  in
                  store_session t vid key { pre = g_pre.(gi); state; generation }
                in
                match (stored, verdict) with
                | Error _, _ -> count_drop t Nf.Table_full
                | Ok (), Nf.Deliver -> (
                  maybe_mirror t pre pkt;
                  match dir with
                  | Packet.Tx ->
                    let outer_dst =
                      match pre.Pre_action.peer_server with
                      | Some server -> server
                      | None -> t.gateway
                    in
                    Packet.encap_vxlan pkt ~vni:pre.Pre_action.vni
                      ~outer_src:t.underlay_ip ~outer_dst;
                    Pbatch.push out pkt
                  | Packet.Rx -> deliver_local t vid pkt)
                | Ok (), Nf.Drop reason -> count_drop t reason)
              | _ -> count_drop t Nf.No_route
            done;
            emit_batch t out;
            Pbatch.recycle batch)
      in
      if not accepted then Pbatch.recycle batch
  end

let local_tx_batch t e batch = local_batch t e ~dir:Packet.Tx batch ~outers:None

let local_rx_batch t e batch ~outers = local_batch t e ~dir:Packet.Rx batch ~outers:(Some outers)

let from_vm t vid pkt =
  Stats.Counter.incr t.counters.tx_packets;
  match entry t vid with
  | None -> count_drop t Nf.No_vnic
  | Some e ->
    let admitted =
      match e.rate_limit with
      | None -> true
      | Some bucket ->
        Token_bucket.take bucket ~now:(Sim.now t.sim) ~bytes:(Packet.wire_size pkt)
    in
    if not admitted then count_drop t Nf.Rate_limited
    else begin
      trace_begin t pkt;
      match e.intercept with
      | Some i -> ( match i.on_tx pkt with `Handled -> () | `Continue -> local_tx t e pkt)
      | None -> local_tx t e pkt
    end

(* vNIC TX burst: the batched twin of [from_vm].  Owns [batch]. *)
let from_vnic_batch t vid batch =
  let n = Pbatch.length batch in
  Stats.Counter.add t.counters.tx_packets n;
  match entry t vid with
  | None ->
    for _ = 1 to n do
      count_drop t Nf.No_vnic
    done;
    Pbatch.recycle batch
  | Some e -> (
    (match e.rate_limit with
    | None -> ()
    | Some bucket ->
      (* In-order token draws, exactly as a packet-at-a-time burst. *)
      Pbatch.filter_in_place batch (fun pkt ->
          let ok =
            Token_bucket.take bucket ~now:(Sim.now t.sim) ~bytes:(Packet.wire_size pkt)
          in
          if not ok then count_drop t Nf.Rate_limited;
          ok));
    Pbatch.iter batch (fun pkt -> trace_begin t pkt);
    match e.intercept with
    | Some { on_tx_batch = Some h; _ } -> h batch
    | Some i ->
      (* Single-packet interceptor: unroll, then the batch shell is
         spent. *)
      Pbatch.iter batch (fun pkt ->
          match i.on_tx pkt with `Handled -> () | `Continue -> local_tx t e pkt);
      Pbatch.recycle batch
    | None -> local_tx_batch t e batch)

let from_net_one t pkt =
  let outer = Packet.decap_vxlan pkt in
  let outer_src = Option.map (fun v -> v.Packet.outer_src) outer in
  let dst_addr = { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.dst } in
  (* NSH-bearing packets are Nezha-internal workflow traffic: the net
     hook gets first refusal even when the inner destination is hosted
     locally — an FE may share a server with a session's peer, and its
     half of the split pipeline must still run. *)
  let hooked =
    match (t.net_hook, pkt.Packet.nsh) with
    | Some hook, Some _ -> ( match hook pkt ~outer with `Handled -> true | `Continue -> false)
    | Some _, None | None, _ -> false
  in
  if not hooked then
    match Vnic.Addr.Table.find_opt t.by_addr dst_addr with
    | Some vnic -> (
      match entry t vnic.Vnic.id with
      | None -> count_drop t Nf.No_vnic
      | Some e -> (
        match e.intercept with
        | Some i -> (
          match i.on_rx pkt with `Handled -> () | `Continue -> local_rx t e pkt ~outer_src)
        | None -> local_rx t e pkt ~outer_src))
    | None -> (
      match (t.net_hook, pkt.Packet.nsh) with
      | Some hook, None -> (
        match hook pkt ~outer with `Handled -> () | `Continue -> count_drop t Nf.No_vnic)
      | Some _, Some _ | None, _ -> count_drop t Nf.No_vnic)

let from_net t pkt =
  Stats.Counter.incr t.counters.rx_packets;
  from_net_one t pkt

(* Net RX burst.  The pass keeps packets in arrival order and carves the
   burst into maximal consecutive runs that can stay vectored: NSH
   workflow traffic bound for the batch net hook (handed over still
   encapsulated), and same-vNIC tenant traffic with no interceptor
   (decapped here, outer sources preserved).  A packet that fits
   neither flushes the open run and takes the single-packet path, so
   side effects interleave exactly as a packet-at-a-time burst.  Owns
   [batch]. *)
let from_net_batch t batch =
  let n = Pbatch.length batch in
  if n = 0 then Pbatch.recycle batch
  else begin
    Stats.Counter.add t.counters.rx_packets n;
    let nsh_run = ref None in
    let vnic_run = ref None in
    let flush_nsh () =
      match !nsh_run with
      | None -> ()
      | Some run -> (
        nsh_run := None;
        match t.net_hook_batch with
        | Some h -> (
          match h run with
          | None -> ()
          | Some leftover ->
            Pbatch.iter leftover (fun p -> from_net_one t p);
            Pbatch.recycle leftover)
        | None ->
          (* The run only opens when a batch hook is installed; if it
             vanished mid-burst, unroll. *)
          Pbatch.iter run (fun p -> from_net_one t p);
          Pbatch.recycle run)
    in
    let flush_vnic () =
      match !vnic_run with
      | None -> ()
      | Some (e, run, outers) ->
        vnic_run := None;
        local_rx_batch t e run ~outers
    in
    let flush_all () =
      flush_nsh ();
      flush_vnic ()
    in
    for i = 0 to n - 1 do
      let pkt = Pbatch.get batch i in
      match (t.net_hook_batch, pkt.Packet.nsh) with
      | Some _, Some _ ->
        flush_vnic ();
        let run =
          match !nsh_run with
          | Some r -> r
          | None ->
            let r = Pbatch.alloc () in
            nsh_run := Some r;
            r
        in
        Pbatch.push run pkt
      | (Some _ | None), _ -> (
        let hook_first =
          match (t.net_hook, pkt.Packet.nsh) with
          | Some _, Some _ -> true
          | (Some _ | None), _ -> false
        in
        if hook_first then begin
          flush_all ();
          from_net_one t pkt
        end
        else
          let dst_addr =
            { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.dst }
          in
          match Vnic.Addr.Table.find_opt t.by_addr dst_addr with
          | Some vnic -> (
            match entry t vnic.Vnic.id with
            | Some ({ intercept = None; _ } as e) -> (
              let push_into run outers =
                let outer = Packet.decap_vxlan pkt in
                outers.(Pbatch.length run) <-
                  Option.map (fun v -> v.Packet.outer_src) outer;
                Pbatch.push run pkt
              in
              match !vnic_run with
              | Some (e', run, outers) when e' == e -> push_into run outers
              | Some _ | None ->
                flush_all ();
                let run = Pbatch.alloc () in
                let outers = Array.make (n - i) None in
                push_into run outers;
                vnic_run := Some (e, run, outers))
            | Some { intercept = Some _; _ } | None ->
              flush_all ();
              from_net_one t pkt)
          | None ->
            flush_all ();
            from_net_one t pkt)
    done;
    flush_all ();
    Pbatch.recycle batch
  end

(* The vSwitch's net-facing ingress, in the shared shape. *)
module Net_ingress = struct
  type nonrec t = t
  type ctx = unit

  let ingest t ~ctx:() pkt =
    from_net t pkt;
    `Handled

  let ingest_batch t ~ctx:() batch = from_net_batch t batch
end

let set_flow_log_sink t sink = t.flow_log <- sink

let flow_records_emitted t = t.flow_records

let set_rate_limit t vid ~bps ~burst_bytes =
  match entry t vid with
  | None -> ()
  | Some e ->
    e.rate_limit <- Some (Token_bucket.create ~rate_bytes_per_s:(bps /. 8.0) ~burst_bytes)

let clear_rate_limit t vid =
  match entry t vid with None -> () | Some e -> e.rate_limit <- None

let vnic_slow_execs t vid =
  match entry t vid with None -> 0 | Some e -> Stats.Counter.value e.slow_execs

let vnic_classifier_backend t vid =
  Option.map Ruleset.classifier_backend (Option.bind (entry t vid) (fun e -> e.ruleset))

let vnic_memory_bytes t vid =
  match entry t vid with
  | None -> 0
  | Some e -> e.rule_bytes + e.residual_bytes + Flow_table.memory_bytes e.sessions

let utilization_report t ~cpu ~mem =
  cpu := Smartnic.utilization_since_last_sample t.nic;
  mem := Smartnic.mem_utilization t.nic

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  let prefix = "vswitch/" ^ t.name ^ "/" in
  let counter name c = T.attach_counter reg ~name:(prefix ^ name) c in
  counter "rx_packets" t.counters.rx_packets;
  counter "tx_packets" t.counters.tx_packets;
  counter "delivered" t.counters.delivered;
  counter "forwarded" t.counters.forwarded;
  counter "slow_path_execs" t.counters.slow_path_execs;
  counter "fast_path_hits" t.counters.fast_path_hits;
  counter "sessions_created" t.counters.sessions_created;
  counter "notify_packets" t.counters.notify_packets;
  List.iter
    (fun reason ->
      T.attach_counter reg
        ~name:(prefix ^ "drops/" ^ Nf.drop_reason_to_string reason)
        ~labels:[ ("reason", Nf.drop_reason_to_string reason) ]
        (drop_counter t reason))
    Nf.all_drop_reasons;
  let sum_rulesets f =
    Vnic.Id_table.fold
      (fun _ e acc -> match e.ruleset with Some rs -> acc + f rs | None -> acc)
      t.vnics 0
  in
  T.register_counter reg ~name:(prefix ^ "megaflow_hits") (fun () ->
      sum_rulesets Ruleset.megaflow_hits);
  T.register_counter reg ~name:(prefix ^ "megaflow_misses") (fun () ->
      sum_rulesets Ruleset.megaflow_misses);
  T.register_gauge reg ~name:(prefix ^ "megaflow_entries") (fun () ->
      float_of_int (sum_rulesets Ruleset.megaflow_entries));
  T.register_gauge reg ~name:(prefix ^ "classifier_tuples") (fun () ->
      float_of_int (sum_rulesets Ruleset.classifier_tuples));
  T.register_gauge reg ~name:(prefix ^ "classifier_memory_bytes") (fun () ->
      float_of_int (sum_rulesets Ruleset.classifier_memory_bytes));
  t.telemetry <- Some reg;
  Vnic.Id_table.iter
    (fun vid e ->
      match e.ruleset with
      | Some rs -> register_vnic_telemetry t reg vid rs
      | None -> ())
    t.vnics;
  T.register_counter reg ~name:(prefix ^ "flow_records") (fun () -> t.flow_records);
  T.register_counter reg ~name:(prefix ^ "packets_mirrored") (fun () -> t.mirrored);
  T.register_gauge reg ~name:(prefix ^ "vnics") (fun () ->
      float_of_int (vnic_count t));
  T.register_gauge reg ~name:(prefix ^ "sessions") (fun () ->
      float_of_int (total_sessions t));
  Smartnic.register_telemetry t.nic reg
