open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_baselines
open Nezha_workloads
module Json = Nezha_telemetry.Json
module Trace = Nezha_telemetry.Trace

(* ------------------------------------------------------------------ *)
(* Fig. 9 *)

type fig9_row = { fes : int; cps_gain : float; flows_gain : float; vnics_gain : float }

let base_cps ?(seed = 1) ?middlebox () =
  let t = Testbed.create ~seed ?middlebox () in
  Testbed.measure_cps t ()

let nezha_cps ?(seed = 1) ?middlebox ~fes () =
  let t = Testbed.create ~seed ?middlebox () in
  ignore (Testbed.offload t ~num_fes:fes () : Controller.offload);
  Testbed.measure_cps t ~concurrency:1024 ()

(* #concurrent flows: a 6 MB (scaled) rule table leaves ~4.7 MB for the
   session table locally; offloading frees it for states. *)
let flows_ruleset () =
  let rs = Ruleset.create ~vni:9 ~fixed_overhead_bytes:(6 * 1024 * 1024 / 4) () in
  Ruleset.add_route rs (Ipv4.Prefix.make (Ipv4.of_octets 10 0 0 0) 8);
  rs

(* The scaled vSwitch has 10.7 MB; use a 1.5 MB table so numbers stay in
   the tens of thousands of flows. *)
let measure_flows ?(seed = 1) ~fes () =
  let t = Testbed.create ~seed ~ruleset:(flows_ruleset ()) ~clients:4 () in
  if fes > 0 then ignore (Testbed.offload t ~num_fes:fes () : Controller.offload);
  let gen =
    Persistent.start ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
      ~client:t.Testbed.clients.(0) ~server:t.Testbed.server ~target:140_000
      ~ramp_rate:25_000.0 ()
  in
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 9.0);
  let live = Persistent.live_flows gen () in
  Persistent.stop gen;
  live

(* #vNICs: a memory-placement model at full scale — each vNIC needs its
   rule tables either locally or replicated on [min 4 m] of the pool's
   FEs, plus 2 KB of BE residual memory. *)
let vnic_table_bytes = 5_500_000 (* §2.2.2: most vNICs need 5.5-10 MB *)

let vnics_capacity ~fes:m ~table_bytes =
  let mem = Params.default.Params.mem_bytes in
  if m = 0 then mem / table_bytes
  else begin
    let residual = Params.default.Params.be_residual_bytes_per_vnic in
    let replicas = min 4 m in
    let fe_free = Array.make m mem in
    let be_free = ref mem in
    let count = ref 0 in
    let exception Done in
    (try
       while true do
         if !be_free < residual then raise Done;
         (* Place replicas on the least-loaded FEs. *)
         let order = Array.init m Fun.id in
         Array.sort (fun a b -> compare fe_free.(b) fe_free.(a)) order;
         for i = 0 to replicas - 1 do
           if fe_free.(order.(i)) < table_bytes then raise Done
         done;
         for i = 0 to replicas - 1 do
           fe_free.(order.(i)) <- fe_free.(order.(i)) - table_bytes
         done;
         be_free := !be_free - residual;
         incr count
       done
     with Done -> ());
    !count
  end

let fig9_vnics ?(fes_list = [ 1; 2; 4; 8; 16; 32; 64; 128 ]) () =
  let base = float_of_int (vnics_capacity ~fes:0 ~table_bytes:vnic_table_bytes) in
  List.map
    (fun fes ->
      (fes, float_of_int (vnics_capacity ~fes ~table_bytes:vnic_table_bytes) /. base))
    fes_list

let fig9 ?(seed = 1) ?(fes_list = [ 1; 2; 3; 4; 6; 8 ]) () =
  let cps0 = base_cps ~seed () in
  let flows0 = float_of_int (measure_flows ~seed ~fes:0 ()) in
  let vnics0 = float_of_int (vnics_capacity ~fes:0 ~table_bytes:vnic_table_bytes) in
  List.map
    (fun fes ->
      let cps = nezha_cps ~seed ~fes () in
      let flows = float_of_int (measure_flows ~seed ~fes ()) in
      let vnics = float_of_int (vnics_capacity ~fes ~table_bytes:vnic_table_bytes) in
      { fes; cps_gain = cps /. cps0; flows_gain = flows /. flows0; vnics_gain = vnics /. vnics0 })
    fes_list

(* Connection-setup latency distributions under the saturating load of
   the fig9 CPS measurement: the tail summaries (P50/P99/P9999) the
   machine-readable bench output reports alongside the gains. *)
let fig9_latency ?(seed = 1) ?(fes = 4) () =
  let without =
    let t = Testbed.create ~seed () in
    Testbed.measure_latency t ()
  in
  let with_ =
    let t = Testbed.create ~seed () in
    ignore (Testbed.offload t ~num_fes:fes () : Controller.offload);
    Testbed.measure_latency t ~concurrency:1024 ()
  in
  (without, with_)

(* ------------------------------------------------------------------ *)
(* Fig. 10 *)

type fig10_row = { vcpus : int; cps_without : float; cps_with : float }

let fig10 ?(seed = 1) ?(vcpus_list = [ 8; 16; 32; 48; 64 ]) () =
  List.map
    (fun vcpus ->
      let t0 = Testbed.create ~seed ~server_vcpus:vcpus () in
      let without = Testbed.measure_cps t0 () in
      let t1 = Testbed.create ~seed ~server_vcpus:vcpus () in
      ignore (Testbed.offload t1 ~num_fes:4 () : Controller.offload);
      let with_ = Testbed.measure_cps t1 ~concurrency:1024 () in
      { vcpus; cps_without = without; cps_with = with_ })
    vcpus_list

(* ------------------------------------------------------------------ *)
(* Fig. 11 *)

type fig11_point = { t : float; cps : float; be_cpu : float; fe_cpu : float; n_fes : int }

let fig11 ?(seed = 1) () =
  let config =
    {
      Controller.default_config with
      Controller.auto_offload = true;
      auto_scale = true;
      report_interval = 1.0;
    }
  in
  let t = Testbed.create ~seed ~controller_config:config () in
  Controller.start t.Testbed.ctl;
  let local_cap = Testbed.local_cps_capacity_estimate t in
  (* Ramp offered CPS from 0.2x to 2.5x the local capacity over 40 s. *)
  let duration = 40.0 in
  let rate_at time = local_cap *. (0.2 +. (2.3 *. time /. duration)) in
  let rec segment time =
    if time < duration then begin
      let seg = int_of_float time in
      ignore
        (Tcp_crr.start ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
           ~client:t.Testbed.clients.(seg mod Array.length t.Testbed.clients)
           ~server:t.Testbed.server ~rate:(rate_at time) ~duration:1.0
           ~sport_base:(1024 + (seg mod 6 * 10_000))
           ()
          : Tcp_crr.t);
      ignore (Sim.schedule t.Testbed.sim ~delay:1.0 (fun _ -> segment (time +. 1.0)) : Sim.handle)
    end
  in
  ignore (Sim.schedule t.Testbed.sim ~delay:0.0 (fun _ -> segment 0.0) : Sim.handle);
  let points = ref [] in
  let last_accepted = ref 0 in
  Sim.every t.Testbed.sim ~period:0.5 (fun sim ->
      let now = Sim.now sim in
      if now <= duration +. 5.0 then begin
        let accepted = Vm.connections_accepted t.Testbed.server.Tcp_crr.vm in
        let cps = float_of_int (accepted - !last_accepted) /. 0.5 in
        last_accepted := accepted;
        let be_cpu = Controller.last_cpu t.Testbed.ctl t.Testbed.heavy_server in
        let fe_servers =
          match Controller.find_offload t.Testbed.ctl ~server:t.Testbed.heavy_server
                  ~vnic:Testbed.heavy_vnic_id
          with
          | Some o -> Controller.offload_fe_servers o
          | None -> []
        in
        let fe_cpu =
          match fe_servers with
          | [] -> 0.0
          | fes ->
            List.fold_left (fun acc s -> acc +. Controller.last_cpu t.Testbed.ctl s) 0.0 fes
            /. float_of_int (List.length fes)
        in
        points := { t = now; cps; be_cpu; fe_cpu; n_fes = List.length fe_servers } :: !points;
        true
      end
      else false);
  Sim.run t.Testbed.sim ~until:(duration +. 6.0);
  List.rev !points

(* ------------------------------------------------------------------ *)
(* Fig. 12 *)

type fig12_row = {
  load : float;
  lat_without_us : float;
  lat_with_us : float;
  lost_without : float;
  lost_with : float;
}

(* A single-flow UDP latency probe.  With [attribute] the testbed's
   flight recorder is switched on for exactly the measurement window
   (1-in-8 sampling keeps the ring from wrapping at the highest probe
   rates) and the completed, conserved traces come back alongside the
   latency summary. *)
let latency_probe ?(attribute = false) t ~rate ~warmup ~measure =
  let sim = t.Testbed.sim in
  let tr = t.Testbed.trace in
  if attribute then begin
    Trace.set_sample_every tr 8;
    ignore (Sim.at sim ~time:warmup (fun _ -> Trace.set_enabled tr true) : Sim.handle);
    ignore
      (Sim.at sim ~time:(warmup +. measure) (fun _ -> Trace.set_enabled tr false)
        : Sim.handle)
  end;
  let flow =
    Five_tuple.make ~src:t.Testbed.clients.(0).Tcp_crr.ip ~dst:Testbed.heavy_ip ~src_port:9999
      ~dst_port:7777 ~proto:Five_tuple.Udp
  in
  let sent_at = Hashtbl.create 65536 in
  let lat = Stats.Histogram.create () in
  let sent = ref 0 and received = ref 0 in
  let measuring () =
    let now = Sim.now sim in
    now >= warmup && now <= warmup +. measure
  in
  Vm.set_app t.Testbed.server.Tcp_crr.vm (fun sim' pkt ->
      match Hashtbl.find_opt sent_at pkt.Packet.uid with
      | Some t0 ->
        Hashtbl.remove sent_at pkt.Packet.uid;
        incr received;
        Stats.Histogram.record lat (Sim.now sim' -. t0)
      | None -> ());
  let interval = 1.0 /. rate in
  let rec tick sim' =
    if Sim.now sim' < warmup +. measure +. 0.2 then begin
      let pkt =
        Packet.create ~vpc:t.Testbed.vpc ~flow ~direction:Packet.Tx ~payload_len:200 ()
      in
      if measuring () then begin
        Hashtbl.replace sent_at pkt.Packet.uid (Sim.now sim');
        incr sent
      end;
      Vswitch.from_vm t.Testbed.clients.(0).Tcp_crr.vs t.Testbed.clients.(0).Tcp_crr.vnic pkt;
      ignore (Sim.schedule sim' ~delay:interval tick : Sim.handle)
    end
  in
  ignore (Sim.schedule sim ~delay:0.0 tick : Sim.handle);
  Sim.run sim ~until:(warmup +. measure +. 1.0);
  let loss =
    if !sent = 0 then 0.0 else 1.0 -. (float_of_int !received /. float_of_int !sent)
  in
  let attrs =
    if not attribute then []
    else
      (* Keep only traces whose stage/wire spans still tile the measured
         end-to-end interval: a trace whose spans were overwritten by the
         ring (or that genuinely lost time, e.g. a spurious ack-loss
         retransmission) would mis-attribute. *)
      List.filter_map
        (fun id ->
          match Trace.attribute tr ~id with
          | Some a when Float.abs a.Trace.residual <= 1e-9 +. (1e-6 *. a.Trace.e2e) ->
            Some a
          | _ -> None)
        (Trace.completed_ids tr)
  in
  (Stats.Histogram.percentile lat 50.0, loss, attrs)

(* The probe flow itself drives the load; run each point on a fresh
   testbed with a 4x-slower CPU so packet rates stay simulable. *)
let fig12_params = Params.with_cpu_scale 4.0 Params.scaled

let fig12_capacity_pps =
  (* Local RX per-packet cost: move the wire bytes (292 for the probe)
     plus the full fast path; delivery to the VM adds no encap. *)
  let p = fig12_params in
  let per_pkt =
    float_of_int p.Params.fast_path_cycles +. (p.Params.byte_move_cycles *. 292.0)
  in
  p.Params.cpu_hz /. per_pkt

let fig12 ?(seed = 1) ?(loads = [ 0.1; 0.3; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0; 1.1 ]) () =
  List.map
    (fun load ->
      let rate = load *. fig12_capacity_pps in
      let without =
        let t = Testbed.create ~seed ~params:fig12_params () in
        let p50, loss, _ = latency_probe t ~rate ~warmup:3.0 ~measure:0.8 in
        (p50, loss)
      in
      let with_ =
        let config =
          {
            Controller.default_config with
            Controller.auto_offload = true;
            auto_scale = false;
            report_interval = 1.0;
          }
        in
        let t = Testbed.create ~seed ~params:fig12_params ~controller_config:config () in
        Controller.start t.Testbed.ctl;
        let p50, loss, _ = latency_probe t ~rate ~warmup:3.0 ~measure:0.8 in
        (p50, loss)
      in
      {
        load;
        lat_without_us = fst without *. 1e6;
        lat_with_us = fst with_ *. 1e6;
        lost_without = snd without;
        lost_with = snd with_;
      })
    loads

(* Fig. 12, --attribute mode: the same probe with the flight recorder on,
   splitting the P50/P99 latency into local work and remote-hop (FE
   processing + NSH-leg wire) components.  The split is rank-based: we
   report the local/remote breakdown of *the* trace sitting at the P50
   (P99) rank of the end-to-end distribution, so the two components sum
   to the reported percentile exactly (conservation invariant). *)

type latency_split = {
  traces : int;
  p50_us : float;
  p50_local_us : float;
  p50_remote_us : float;
  p99_us : float;
  p99_local_us : float;
  p99_remote_us : float;
}

type fig12_attr_row = {
  attr_load : float;
  without_nezha : latency_split;
  with_nezha : latency_split;
}

let split_of_attrs attrs =
  match attrs with
  | [] ->
    {
      traces = 0;
      p50_us = 0.0;
      p50_local_us = 0.0;
      p50_remote_us = 0.0;
      p99_us = 0.0;
      p99_local_us = 0.0;
      p99_remote_us = 0.0;
    }
  | _ ->
    let arr = Array.of_list attrs in
    Array.sort (fun a b -> compare a.Trace.e2e b.Trace.e2e) arr;
    let n = Array.length arr in
    let at pct =
      let i = int_of_float (ceil (pct /. 100.0 *. float_of_int n)) - 1 in
      arr.(max 0 (min (n - 1) i))
    in
    let p50 = at 50.0 and p99 = at 99.0 in
    {
      traces = n;
      p50_us = p50.Trace.e2e *. 1e6;
      p50_local_us = p50.Trace.local_s *. 1e6;
      p50_remote_us = p50.Trace.remote_s *. 1e6;
      p99_us = p99.Trace.e2e *. 1e6;
      p99_local_us = p99.Trace.local_s *. 1e6;
      p99_remote_us = p99.Trace.remote_s *. 1e6;
    }

let fig12_attribute ?(seed = 1) ?(loads = [ 0.3; 0.7; 1.0 ]) () =
  List.map
    (fun load ->
      let rate = load *. fig12_capacity_pps in
      let probe t = latency_probe ~attribute:true t ~rate ~warmup:3.0 ~measure:0.8 in
      let without_nezha =
        let t = Testbed.create ~seed ~params:fig12_params () in
        let _, _, attrs = probe t in
        split_of_attrs attrs
      in
      let with_nezha =
        let config =
          {
            Controller.default_config with
            Controller.auto_offload = true;
            auto_scale = false;
            report_interval = 1.0;
          }
        in
        let t = Testbed.create ~seed ~params:fig12_params ~controller_config:config () in
        Controller.start t.Testbed.ctl;
        let _, _, attrs = probe t in
        split_of_attrs attrs
      in
      { attr_load = load; without_nezha; with_nezha })
    loads

(* ------------------------------------------------------------------ *)
(* Table 3 *)

type table3_row = {
  kind : Middlebox.kind;
  cps_gain : float;
  vnics_gain : float;
  flows_gain : float;
}

(* Session-table budgets implied by Table 3's #flows gains (see
   EXPERIMENTS.md): memory = rule tables + session budget, scaled /100
   so tens of thousands of real session entries are simulable. *)
let table3_session_budget = function
  | Middlebox.Load_balancer -> 54_600_000
  | Middlebox.Nat_gateway -> 3_300_000
  | Middlebox.Transit_router -> 18_400_000

let table3_flows ?(seed = 1) kind ~offloaded () =
  let mem_scale = 100.0 in
  let session_budget = int_of_float (float_of_int (table3_session_budget kind) /. mem_scale) in
  let rng = Rng.create (seed + 7) in
  let ruleset = Middlebox.make_ruleset kind ~rng ~vni:9 ~mem_scale () in
  (* Memory = this middlebox's actual rule tables + its session budget. *)
  let params =
    { Params.scaled with
      Params.mem_bytes = Ruleset.memory_bytes ruleset + session_budget + 4096 }
  in
  let t = Testbed.create ~seed ~params ~ruleset () in
  if offloaded then ignore (Testbed.offload t ~num_fes:4 () : Controller.offload);
  let nezha_capacity = (params.Params.mem_bytes - 2048) / 104 in
  let gen =
    Persistent.start ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
      ~client:t.Testbed.clients.(0) ~server:t.Testbed.server
      ~target:(nezha_capacity * 13 / 10)
      ~ramp_rate:25_000.0 ()
  in
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 9.0);
  let live = Persistent.live_flows gen () in
  Persistent.stop gen;
  live

let table3 ?(seed = 1) () =
  List.map
    (fun kind ->
      let cps0 = base_cps ~seed ~middlebox:kind () in
      let cps1 = nezha_cps ~seed ~middlebox:kind ~fes:4 () in
      let flows0 = table3_flows ~seed kind ~offloaded:false () in
      let flows1 = table3_flows ~seed kind ~offloaded:true () in
      (* #vNICs at production scale against a 160-FE region pool. *)
      let table_bytes = Middlebox.rule_table_bytes kind ~mem_scale:1.0 in
      let v0 = vnics_capacity ~fes:0 ~table_bytes in
      let v1 = vnics_capacity ~fes:160 ~table_bytes in
      {
        kind;
        cps_gain = cps1 /. cps0;
        vnics_gain = float_of_int v1 /. float_of_int (max 1 v0);
        flows_gain = float_of_int flows1 /. float_of_int (max 1 flows0);
      })
    Middlebox.all

(* ------------------------------------------------------------------ *)
(* Table 4 *)

let table4 ?(seed = 1) ?(events = 200) () =
  let t = Testbed.create ~seed () in
  let rec cycle n =
    if n > 0 then begin
      match
        Controller.offload_vnic t.Testbed.ctl ~server:t.Testbed.heavy_server
          ~vnic:Testbed.heavy_vnic_id ()
      with
      | Error e -> failwith ("table4: " ^ e)
      | Ok o ->
        Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 5.0);
        (match Controller.fallback_vnic t.Testbed.ctl o with
        | Ok () -> ()
        | Error e -> failwith ("table4 fallback: " ^ e));
        Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 2.0);
        cycle (n - 1)
    end
  in
  cycle events;
  Controller.completion_times_ms t.Testbed.ctl

(* ------------------------------------------------------------------ *)
(* Fig. 14 *)

let fig14 ?(seed = 1) ?underlay_loss () =
  let t = Testbed.create ~seed () in
  let o = Testbed.offload t () in
  (match underlay_loss with
  | Some l -> Faults.set_default t.Testbed.faults (Faults.impair ~loss:l ())
  | None -> ());
  Controller.start t.Testbed.ctl;
  (* Steady load well under capacity. *)
  Array.iter
    (fun client ->
      ignore
        (Tcp_crr.start ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
           ~client ~server:t.Testbed.server ~rate:400.0 ~duration:14.0 ()
          : Tcp_crr.t))
    t.Testbed.clients;
  let crash_at = 4.0 +. Sim.now t.Testbed.sim in
  ignore
    (Sim.at t.Testbed.sim ~time:crash_at (fun _ ->
         match Controller.offload_fe_servers o with
         | s :: _ -> Smartnic.crash (Vswitch.nic (Fabric.vswitch t.Testbed.fabric s))
         | [] -> ())
      : Sim.handle);
  let all_drops () =
    List.fold_left
      (fun acc s ->
        match Fabric.vswitch_opt t.Testbed.fabric s with
        | Some vs -> acc + Vswitch.total_drops vs
        | None -> acc)
      (Fabric.lost t.Testbed.fabric)
      (Topology.servers (Fabric.topology t.Testbed.fabric))
  in
  let all_delivered () = Fabric.delivered_to_vms t.Testbed.fabric in
  let samples = ref [] in
  let last_drops = ref (all_drops ()) and last_del = ref (all_delivered ()) in
  let t0 = Sim.now t.Testbed.sim in
  Sim.every t.Testbed.sim ~period:0.25 (fun sim ->
      let now = Sim.now sim -. t0 in
      if now <= 14.0 then begin
        let drops = all_drops () and delivered = all_delivered () in
        let dd = drops - !last_drops and dl = delivered - !last_del in
        last_drops := drops;
        last_del := delivered;
        let loss = if dd + dl = 0 then 0.0 else float_of_int dd /. float_of_int (dd + dl) in
        samples := (now, loss) :: !samples;
        true
      end
      else false);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 15.0);
  List.rev !samples

(* ------------------------------------------------------------------ *)
(* Chaos harness *)

type chaos_sample = { at : float; loss : float; outstanding : int }

type chaos_result = {
  samples : chaos_sample list;
  offered : int;
  established : int;
  completed : int;
  tracked : int;
  acked : int;
  timeouts : int;
  retx : int;
  resteered : int;
  local_fallbacks : int;
  local_bypass : int;
  dropped : int;
  untracked : int;
  outstanding_end : int;
  injected_drops : int;
  partition_drops : int;
  mass_suspected : int;
  fe_failures_declared : int;
  end_loss : float;
  recovered : bool;
  conservation_ok : bool;
}

(* Scripted fault schedule (times relative to load start): a loss ramp,
   an FE SmartNIC crash, optionally a hard partition of a surviving FE's
   server, then healing back to a perfect underlay — one run exercising
   every recovery path: monitor failover, BE timeout/re-steer, and the
   §C.2 suppression machinery en passant. *)
let chaos ?(seed = 42) ?(loss = 0.005) ?(partition = true) ?(duration = 13.0)
    ?(rate = 400.0) () =
  let t = Testbed.create ~seed () in
  let o = Testbed.offload t () in
  Controller.start t.Testbed.ctl;
  let sim = t.Testbed.sim in
  let faults = t.Testbed.faults in
  let t0 = Sim.now sim in
  Faults.at faults ~time:(t0 +. 1.0) (fun f ->
      Faults.set_default f (Faults.impair ~loss:(loss /. 2.0) ()));
  Faults.at faults ~time:(t0 +. 2.0) (fun f ->
      Faults.set_default f (Faults.impair ~loss ()));
  ignore
    (Sim.at sim ~time:(t0 +. 4.0) (fun _ ->
         match Controller.offload_fe_servers o with
         | s :: _ -> Smartnic.crash (Vswitch.nic (Fabric.vswitch t.Testbed.fabric s))
         | [] -> ())
      : Sim.handle);
  let cut = ref None in
  if partition then begin
    (* Cut a *surviving* FE's server (whoever leads the location config
       once failover has replaced the crashed one). *)
    Faults.at faults ~time:(t0 +. 6.0) (fun f ->
        match Controller.offload_fe_servers o with
        | s :: _ ->
          cut := Some s;
          Faults.cut_server f s
        | [] -> ());
    Faults.at faults ~time:(t0 +. 9.0) (fun f ->
        match !cut with Some s -> Faults.heal_server f s | None -> ())
  end;
  Faults.at faults ~time:(t0 +. 11.0) (fun f -> Faults.set_default f Faults.perfect);
  let gens =
    Array.to_list
      (Array.map
         (fun client ->
           Tcp_crr.start ~sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc ~client
             ~server:t.Testbed.server ~rate ~duration ())
         t.Testbed.clients)
  in
  let be = Controller.offload_be o in
  let all_drops () =
    List.fold_left
      (fun acc s ->
        match Fabric.vswitch_opt t.Testbed.fabric s with
        | Some vs -> acc + Vswitch.total_drops vs
        | None -> acc)
      (Fabric.lost t.Testbed.fabric)
      (Topology.servers (Fabric.topology t.Testbed.fabric))
  in
  let samples = ref [] in
  let last_drops = ref (all_drops ()) in
  let last_del = ref (Fabric.delivered_to_vms t.Testbed.fabric) in
  Sim.every sim ~period:0.25 (fun sim' ->
      let now = Sim.now sim' -. t0 in
      if now <= duration then begin
        let drops = all_drops () and delivered = Fabric.delivered_to_vms t.Testbed.fabric in
        let dd = drops - !last_drops and dl = delivered - !last_del in
        last_drops := drops;
        last_del := delivered;
        let loss = if dd + dl = 0 then 0.0 else float_of_int dd /. float_of_int (dd + dl) in
        samples := { at = now; loss; outstanding = Be.outstanding be } :: !samples;
        true
      end
      else false);
  Sim.run sim ~until:(t0 +. duration +. 2.0);
  let samples = List.rev !samples in
  let sum f = List.fold_left (fun acc g -> acc + f g) 0 gens in
  let c = Be.counters be in
  let v field = Stats.Counter.value field in
  let tail = List.filter (fun s -> s.at >= duration -. 1.5) samples in
  let end_loss =
    match tail with
    | [] -> 1.0
    | _ ->
      List.fold_left (fun acc s -> acc +. s.loss) 0.0 tail /. float_of_int (List.length tail)
  in
  let outstanding_end = Be.outstanding be in
  let mon = Controller.monitor t.Testbed.ctl in
  {
    samples;
    offered = sum Tcp_crr.offered;
    established = sum Tcp_crr.established;
    completed = sum Tcp_crr.completed;
    tracked = v c.Be.offload_tracked;
    acked = v c.Be.offload_acked;
    timeouts = v c.Be.offload_timeouts;
    retx = v c.Be.offload_retx;
    resteered = v c.Be.offload_resteered;
    local_fallbacks = v c.Be.local_fallback;
    local_bypass = v c.Be.local_bypass;
    dropped = v c.Be.offload_dropped;
    untracked = v c.Be.offload_untracked;
    outstanding_end;
    injected_drops = Faults.drops_injected faults;
    partition_drops = Faults.partition_drops faults;
    mass_suspected = Monitor.mass_failure_suspected mon;
    fe_failures_declared = Monitor.failures_declared mon;
    end_loss;
    recovered = end_loss <= 0.01;
    conservation_ok =
      v c.Be.offload_tracked
      = v c.Be.offload_acked + v c.Be.local_fallback + v c.Be.offload_dropped
        + outstanding_end;
  }

(* ------------------------------------------------------------------ *)
(* Table A1 *)

let tableA1 () =
  let p = Params.default in
  let sizes = [ 64; 128; 256; 512 ] in
  let rules = [ 0; 1; 8; 64; 100; 1000 ] in
  List.map
    (fun size ->
      ( size,
        List.map
          (fun n ->
            let cycles =
              Params.rule_lookup_cycles p ~acl_rules_scanned:n ~lpm_depth:8 ~tables:5
              + Params.packet_cycles p ~wire_bytes:size
            in
            (n, p.Params.cpu_hz /. float_of_int cycles /. 1e6))
          rules ))
    sizes

(* ------------------------------------------------------------------ *)
(* App. B.2 *)

type appB2_result = {
  offload_events : int;
  fes_provisioned : int;
  scale_out_events : int;
  scale_out_ratio : float;
}

let appB2 ?(seed = 1) ?(events = 2499) () =
  let rng = Rng.create seed in
  let trigger_u = 0.9939 in
  let trigger_demand = Region.cps_demand_quantile trigger_u in
  (* One FE matches a local vSwitch's slow-path capability, but offload
     triggers at 70% utilization of a vSwitch shared with other vNICs,
     so 4 FEs give roughly 4 x 2.2 = 8.8x the triggering vNIC's demand
     before more are needed (calibrated to App. B.2's 2.6%). *)
  let fe_capacity = 2.2 in
  let fes = ref 0 and scale_outs = ref 0 in
  for _ = 1 to events do
    (* Demand of a vNIC that crossed the offload threshold: the tail of
       the Table 1 distribution above the trigger quantile. *)
    let u = trigger_u +. Rng.float rng (1.0 -. trigger_u) in
    let demand = Region.cps_demand_quantile u /. trigger_demand in
    let needed = int_of_float (Float.ceil (demand /. fe_capacity)) in
    let provisioned = max 4 needed in
    fes := !fes + provisioned;
    if needed > 4 then incr scale_outs
  done;
  {
    offload_events = events;
    fes_provisioned = !fes;
    scale_out_events = !scale_outs;
    scale_out_ratio = float_of_int !scale_outs /. float_of_int events;
  }

(* ------------------------------------------------------------------ *)
(* Ablations *)

type sirius_vs_nezha = {
  nezha_cps : float;
  sirius_cps : float;
  sirius_pingpongs : int;
  nezha_notify : int;
}

let ablation_sirius ?(seed = 1) () =
  let nezha =
    let t = Testbed.create ~seed () in
    ignore (Testbed.offload t ~num_fes:4 () : Controller.offload);
    let cps = Testbed.measure_cps t ~concurrency:1024 () in
    let notify =
      List.fold_left
        (fun acc s ->
          match Controller.fe_service t.Testbed.ctl s with
          | Some fe -> acc + Stats.Counter.value (Fe.counters fe).Fe.notify_sent
          | None -> acc)
        0
        (Topology.servers (Fabric.topology t.Testbed.fabric))
    in
    (cps, notify)
  in
  let sirius =
    (* Same hardware: 4 idle server SmartNICs, organised as 2 pairs. *)
    let cards = [ 8; 9; 10; 11 ] in
    let t = Testbed.create ~seed ~reserve_servers:cards () in
    let pool = Sirius.create ~fabric:t.Testbed.fabric ~cards ~dpu_speedup:1.0 () in
    (match Sirius.offload_vnic pool ~server:t.Testbed.heavy_server ~vnic:Testbed.heavy_vnic_id with
    | Ok () -> ()
    | Error e -> failwith ("ablation_sirius: " ^ e));
    let cps = Testbed.measure_cps t ~concurrency:1024 () in
    (cps, Sirius.replication_pingpongs pool)
  in
  {
    nezha_cps = fst nezha;
    sirius_cps = fst sirius;
    sirius_pingpongs = snd sirius;
    nezha_notify = snd nezha;
  }

type lb_ablation = { mode : string; fe_rule_lookups : int; fe_cached_flows : int; cps : float }

let ablation_flow_vs_packet_lb ?(seed = 1) () =
  let run mode =
    let t = Testbed.create ~seed () in
    let o = Testbed.offload t ~num_fes:4 () in
    (match mode with
    | `Flow -> ()
    | `Packet -> Be.set_lb_mode (Controller.offload_be o) Be.Packet_level);
    let cps = Testbed.measure_cps t ~concurrency:1024 ~duration:2.0 () in
    let lookups, cached =
      List.fold_left
        (fun (l, c) s ->
          match Controller.fe_service t.Testbed.ctl s with
          | Some fe ->
            ( l + Stats.Counter.value (Fe.counters fe).Fe.rule_lookups,
              c + Fe.cached_flow_count fe )
          | None -> (l, c))
        (0, 0)
        (Controller.offload_fe_servers o)
    in
    {
      mode = (match mode with `Flow -> "flow-level" | `Packet -> "packet-level");
      fe_rule_lookups = lookups;
      fe_cached_flows = cached;
      cps;
    }
  in
  [ run `Flow; run `Packet ]

type state_size_ablation = { slot_bytes : int; flows_supported : int }

let ablation_state_size ?(seed = 1) () =
  List.map
    (fun slot ->
      let params = { Params.scaled with Params.state_slot_bytes = slot } in
      let t = Testbed.create ~seed ~params ~ruleset:(flows_ruleset ()) () in
      ignore (Testbed.offload t ~num_fes:4 () : Controller.offload);
      let gen =
        Persistent.start ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
          ~client:t.Testbed.clients.(0) ~server:t.Testbed.server ~target:260_000
          ~ramp_rate:40_000.0 ()
      in
      Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 10.0);
      let live = Persistent.live_flows gen () in
      Persistent.stop gen;
      { slot_bytes = slot; flows_supported = live })
    [ 64; 8 ]

type failover_retx = {
  failed_without_retx : int;
  failed_with_retx : int;
  retransmissions : int;
  completed_with_retx : int;
}

let failover_run ?(seed = 1) ~retransmit () =
  let t = Testbed.create ~seed () in
  let o = Testbed.offload t () in
  Controller.start t.Testbed.ctl;
  let gens =
    Array.to_list
      (Array.map
         (fun client ->
           Tcp_crr.start_closed ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng)
             ~vpc:t.Testbed.vpc ~client ~server:t.Testbed.server ~concurrency:32
             ~duration:12.0 ~conn_timeout:0.5 ~retransmit ())
         t.Testbed.clients)
  in
  ignore
    (Sim.schedule t.Testbed.sim ~delay:4.0 (fun _ ->
         match Controller.offload_fe_servers o with
         | s :: _ -> Smartnic.crash (Vswitch.nic (Fabric.vswitch t.Testbed.fabric s))
         | [] -> ())
      : Sim.handle);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 20.0);
  let sum f = List.fold_left (fun acc g -> acc + f g) 0 gens in
  (sum Tcp_crr.failed, sum Tcp_crr.retransmissions, sum Tcp_crr.completed)

let ablation_failover_retransmit ?(seed = 1) () =
  let failed_without, _, _ = failover_run ~seed ~retransmit:false () in
  let failed_with, retx, completed = failover_run ~seed ~retransmit:true () in
  {
    failed_without_retx = failed_without;
    failed_with_retx = failed_with;
    retransmissions = retx;
    completed_with_retx = completed;
  }

type locality_row = { placement : string; p50_latency_us : float }

let ablation_fe_locality ?(seed = 1) () =
  let run name filter =
    let t = Testbed.create ~seed ~racks:6 ~servers_per_rack:8 () in
    (match filter with
    | None -> ()
    | Some want_version ->
      (* Mark only the most distant rack eligible. *)
      List.iter
        (fun s ->
          if Topology.rack_of (Fabric.topology t.Testbed.fabric) s = 4 then
            Vswitch.set_software_version (Fabric.vswitch t.Testbed.fabric s) want_version)
        (Topology.servers (Fabric.topology t.Testbed.fabric)));
    (match
       Controller.offload_vnic t.Testbed.ctl ~server:t.Testbed.heavy_server
         ~vnic:Testbed.heavy_vnic_id
         ?version_filter:(Option.map (fun v -> fun x -> x = v) filter)
         ()
     with
    | Ok _ -> ()
    | Error e -> failwith e);
    Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 5.0);
    let crr =
      Tcp_crr.start_closed ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
        ~client:t.Testbed.clients.(0) ~server:t.Testbed.server ~concurrency:8 ~duration:3.0 ()
    in
    Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 5.0);
    {
      placement = name;
      p50_latency_us = Stats.Histogram.percentile (Tcp_crr.latencies crr) 50.0 *. 1e6;
    }
  in
  [ run "same-rack FEs (default)" None; run "distant-rack FEs (forced)" (Some 7) ]

let ablation_notify_rate ?(seed = 1) () =
  let rng = Rng.create (seed + 3) in
  let ruleset = Middlebox.make_ruleset Middlebox.Load_balancer ~rng ~vni:9 ~mem_scale:1000.0 () in
  let t = Testbed.create ~seed ~ruleset () in
  ignore (Testbed.offload t ~num_fes:4 () : Controller.offload);
  (* Notifies fire for TX-first sessions: the BE initializes state before
     any rule table is consulted, so the FE's first lookup must report
     the statistics policy back (§3.2.2).  Drive outbound connections
     from the heavy VM. *)
  ignore
    (Tcp_crr.start_closed ~sim:t.Testbed.sim ~rng:(Rng.split t.Testbed.rng) ~vpc:t.Testbed.vpc
       ~client:t.Testbed.server ~server:t.Testbed.clients.(0) ~concurrency:256 ~duration:2.0 ()
      : Tcp_crr.t);
  Sim.run t.Testbed.sim ~until:(Sim.now t.Testbed.sim +. 4.0);
  let notify, packets =
    List.fold_left
      (fun (n, p) s ->
        match Fabric.vswitch_opt t.Testbed.fabric s with
        | Some vs ->
          let c = Vswitch.counters vs in
          ( n + Stats.Counter.value c.Vswitch.notify_packets,
            p + Stats.Counter.value c.Vswitch.rx_packets + Stats.Counter.value c.Vswitch.tx_packets )
        | None -> (n, p))
      (0, 0)
      (Topology.servers (Fabric.topology t.Testbed.fabric))
  in
  if packets = 0 then 0.0 else float_of_int notify /. float_of_int packets

(* ------------------------------------------------------------------ *)
(* Fig. 13 at region scale, measured.  [Region.daily_overloads] answers
   the same question with a closed-form race model; this runs the race
   in the event simulation — thousands of real vSwitches on a sharded
   cluster, demand spikes vs the report/detect/place/push pipeline. *)

type region_overloads = {
  region_before : Region_sim.result;
  region_after : Region_sim.result;
  resolved_pct : float;
}

let region_overloads ?(cfg = Region_sim.default_config) () =
  let ba = Region_sim.before_after cfg in
  let b = ba.Region_sim.before.Region_sim.overloads in
  let a = ba.Region_sim.after.Region_sim.overloads in
  {
    region_before = ba.Region_sim.before;
    region_after = ba.Region_sim.after;
    resolved_pct =
      100.0 *. (1.0 -. (float_of_int a /. float_of_int (max 1 b)));
  }

(* ------------------------------------------------------------------ *)
(* Region-scale MTTR chaos (DESIGN.md §13): a crash storm over the
   Fig. 13 region — Poisson server crashes (schedule frozen at setup),
   plus one primary-controller crash mid-storm with a standby takeover.
   Headline numbers: P50/P99 crash->intent-restored, blackholed demand
   during convergence, and the zero-late-blackholes gate.  The run is
   repeated with the same seed to assert byte-identical determinism
   under the sharded engine. *)

type region_mttr = {
  storm : Region_sim.result;
  storm_rerun_digest : int;
  storm_deterministic : bool;  (** rerun digest identical *)
}

let default_storm_config =
  {
    Region_sim.default_config with
    Region_sim.racks = 60;
    servers_per_rack = 4;
    shards = 6;
    duration = 20.0;
    crash_rate = 0.6;
    reboot_delay = 0.5;
    resync_delay = 0.05;
    ctl_crash_at = Some 8.0;
    ctl_failover = 0.5;
  }

let region_mttr ?(cfg = default_storm_config) () =
  let a = Region_sim.run cfg in
  let b = Region_sim.run cfg in
  {
    storm = a;
    storm_rerun_digest = b.Region_sim.digest;
    storm_deterministic = a.Region_sim.digest = b.Region_sim.digest;
  }

(* ------------------------------------------------------------------ *)
(* SLO-tracking ramp (ROADMAP item 4): the Region_sim diurnal ×10
   offered-load ramp driven by the real Slo decision core, run clean
   and with the rack-partition chaos variant, plus a same-seed rerun
   for the determinism gate.  The default partition window sits in the
   hold phase (42.5%–52.5% of the day) so the suppression logic is hit
   at peak pool. *)

type slo_ramp = {
  slo_clean : Region_sim.slo_result;
  slo_chaos : Region_sim.slo_result;
  slo_rerun_digest : int;
  slo_deterministic : bool;  (** clean rerun digest identical *)
}

let slo_smoke_config =
  let cfg = Region_sim.default_slo_config in
  {
    cfg with
    Region_sim.slo_duration = 150.0;
    slo =
      {
        cfg.Region_sim.slo with
        Region_sim.Slo.cooldown = 2.0;
        warmup = 3.0;
        suppress_hold = 8.0;
      };
    flap_window = 15.0;
  }

let slo_ramp ?(cfg = Region_sim.default_slo_config) ?partition () =
  let partition =
    match partition with
    | Some p -> p
    | None ->
      (cfg.Region_sim.slo_duration *. 0.425, cfg.Region_sim.slo_duration *. 0.10)
  in
  let clean = Region_sim.run_slo { cfg with Region_sim.slo_partition = None } in
  let chaos =
    Region_sim.run_slo { cfg with Region_sim.slo_partition = Some partition }
  in
  let rerun = Region_sim.run_slo { cfg with Region_sim.slo_partition = None } in
  {
    slo_clean = clean;
    slo_chaos = chaos;
    slo_rerun_digest = rerun.Region_sim.slo_digest;
    slo_deterministic = clean.Region_sim.slo_digest = rerun.Region_sim.slo_digest;
  }

(* ------------------------------------------------------------------ *)
(* Crash/restart endurance on the small testbed: [cycles] FE-host
   crash+reboot cycles against a live offload, traffic bursts
   interleaved, then the books are balanced — controller conservation
   invariant, BE tracked-send conservation, and zero leaked [Pbatch]
   arena batches across the whole storm. *)

type crash_cycles = {
  cycles : int;
  cyc_crashes : int;
  cyc_restarts : int;
  cyc_reconciles : int;
  cyc_repairs : int;
  conservation_ok : bool;  (** {!Controller.check_conservation} at the end *)
  be_conservation_ok : bool;
      (** tracked = acked + local_fallback + dropped + outstanding *)
  batches_leaked : int;  (** Pbatch (fresh + reuses - recycles) delta *)
  final_cps : float;  (** traffic still flows after the storm *)
}

let crash_cycles ?(cycles = 100) ?(seed = 11) () =
  let tb = Testbed.create ~seed () in
  let o = Testbed.offload tb () in
  let faults = tb.Testbed.faults in
  let ctl = tb.Testbed.ctl in
  let f0, r0, c0 = Pbatch.pool_stats () in
  let fes = Array.of_list (Controller.offload_fe_servers o) in
  if Array.length fes = 0 then failwith "crash_cycles: offload has no FEs";
  for i = 0 to cycles - 1 do
    let victim = fes.(i mod Array.length fes) in
    Faults.crash_server faults ~reboot_after:0.05 victim;
    (* A traffic burst against the vNIC while the storm rages, every
       few cycles (each burst drains in-flight batches through crashed
       and healthy FEs alike). *)
    if i mod 10 = 0 then
      ignore (Testbed.run_crr tb ~rate:200.0 ~duration:0.2 ~settle:0.4 () : Tcp_crr.t)
    else Sim.run tb.Testbed.sim ~until:(Sim.now tb.Testbed.sim +. 0.3)
  done;
  (* Let the last reboot's reconciliation settle, then measure. *)
  Sim.run tb.Testbed.sim ~until:(Sim.now tb.Testbed.sim +. 3.0);
  let final_cps = Testbed.measure_cps tb ~concurrency:64 ~duration:2.0 () in
  let f1, r1, c1 = Pbatch.pool_stats () in
  let be = Controller.offload_be o in
  let c = Be.counters be in
  let v = Stats.Counter.value in
  let be_ok =
    v c.Be.offload_tracked
    = v c.Be.offload_acked + v c.Be.local_fallback + v c.Be.offload_dropped
      + Be.outstanding be
  in
  {
    cycles;
    cyc_crashes = Faults.server_crashes faults;
    cyc_restarts = Faults.server_restarts faults;
    cyc_reconciles = Controller.reconciles ctl;
    cyc_repairs = Controller.repairs ctl;
    conservation_ok = Controller.check_conservation ctl;
    be_conservation_ok = be_ok;
    batches_leaked = f1 - f0 + (r1 - r0) - (c1 - c0);
    final_cps;
  }

(* ------------------------------------------------------------------ *)
(* JSON encoders: one [json_of_*] per result record, so every consumer
   (bench --json, the nezha_sim subcommands) shares a single schema
   instead of hand-rolling objects that can drift apart. *)

let json_of_fig9_row (r : fig9_row) =
  Json.Obj
    [
      ("fes", Json.Int r.fes);
      ("cps_gain", Json.Float r.cps_gain);
      ("flows_gain", Json.Float r.flows_gain);
      ("vnics_gain", Json.Float r.vnics_gain);
    ]

let json_of_fig10_row (r : fig10_row) =
  Json.Obj
    [
      ("vcpus", Json.Int r.vcpus);
      ("cps_without", Json.Float r.cps_without);
      ("cps_with", Json.Float r.cps_with);
    ]

let json_of_fig11_point (p : fig11_point) =
  Json.Obj
    [
      ("t", Json.Float p.t);
      ("cps", Json.Float p.cps);
      ("be_cpu", Json.Float p.be_cpu);
      ("fe_cpu", Json.Float p.fe_cpu);
      ("n_fes", Json.Int p.n_fes);
    ]

let json_of_fig12_row (r : fig12_row) =
  Json.Obj
    [
      ("load", Json.Float r.load);
      ("lat_without_us", Json.Float r.lat_without_us);
      ("lat_with_us", Json.Float r.lat_with_us);
      ("lost_without", Json.Float r.lost_without);
      ("lost_with", Json.Float r.lost_with);
    ]

let json_of_latency_split (s : latency_split) =
  Json.Obj
    [
      ("traces", Json.Int s.traces);
      ("p50_us", Json.Float s.p50_us);
      ("p50_local_us", Json.Float s.p50_local_us);
      ("p50_remote_us", Json.Float s.p50_remote_us);
      ("p99_us", Json.Float s.p99_us);
      ("p99_local_us", Json.Float s.p99_local_us);
      ("p99_remote_us", Json.Float s.p99_remote_us);
    ]

let json_of_fig12_attr_row (r : fig12_attr_row) =
  Json.Obj
    [
      ("load", Json.Float r.attr_load);
      ("without", json_of_latency_split r.without_nezha);
      ("with", json_of_latency_split r.with_nezha);
    ]

let json_of_table3_row (r : table3_row) =
  Json.Obj
    [
      ("middlebox", Json.String (Middlebox.to_string r.kind));
      ("cps_gain", Json.Float r.cps_gain);
      ("vnics_gain", Json.Float r.vnics_gain);
      ("flows_gain", Json.Float r.flows_gain);
    ]

let json_of_chaos_sample (s : chaos_sample) =
  Json.Obj
    [
      ("t", Json.Float s.at);
      ("loss", Json.Float s.loss);
      ("outstanding", Json.Int s.outstanding);
    ]

let json_of_chaos_result (r : chaos_result) =
  Json.Obj
    [
      ("offered", Json.Int r.offered);
      ("established", Json.Int r.established);
      ("completed", Json.Int r.completed);
      ("tracked", Json.Int r.tracked);
      ("acked", Json.Int r.acked);
      ("timeouts", Json.Int r.timeouts);
      ("retx", Json.Int r.retx);
      ("resteered", Json.Int r.resteered);
      ("local_fallbacks", Json.Int r.local_fallbacks);
      ("local_bypass", Json.Int r.local_bypass);
      ("dropped", Json.Int r.dropped);
      ("untracked", Json.Int r.untracked);
      ("outstanding_end", Json.Int r.outstanding_end);
      ("injected_drops", Json.Int r.injected_drops);
      ("partition_drops", Json.Int r.partition_drops);
      ("mass_suspected", Json.Int r.mass_suspected);
      ("fe_failures_declared", Json.Int r.fe_failures_declared);
      ("end_loss", Json.Float r.end_loss);
      ("recovered", Json.Bool r.recovered);
      ("conservation_ok", Json.Bool r.conservation_ok);
      ("samples", Json.List (List.map json_of_chaos_sample r.samples));
    ]

let json_of_appB2_result (r : appB2_result) =
  Json.Obj
    [
      ("offload_events", Json.Int r.offload_events);
      ("fes_provisioned", Json.Int r.fes_provisioned);
      ("scale_out_events", Json.Int r.scale_out_events);
      ("scale_out_ratio", Json.Float r.scale_out_ratio);
    ]

let json_of_sirius_vs_nezha (r : sirius_vs_nezha) =
  Json.Obj
    [
      ("nezha_cps", Json.Float r.nezha_cps);
      ("sirius_cps", Json.Float r.sirius_cps);
      ("sirius_pingpongs", Json.Int r.sirius_pingpongs);
      ("nezha_notify", Json.Int r.nezha_notify);
    ]

let json_of_lb_ablation (r : lb_ablation) =
  Json.Obj
    [
      ("mode", Json.String r.mode);
      ("fe_rule_lookups", Json.Int r.fe_rule_lookups);
      ("fe_cached_flows", Json.Int r.fe_cached_flows);
      ("cps", Json.Float r.cps);
    ]

let json_of_state_size_ablation (r : state_size_ablation) =
  Json.Obj
    [
      ("slot_bytes", Json.Int r.slot_bytes);
      ("flows_supported", Json.Int r.flows_supported);
    ]

let json_of_failover_retx (r : failover_retx) =
  Json.Obj
    [
      ("failed_without_retx", Json.Int r.failed_without_retx);
      ("failed_with_retx", Json.Int r.failed_with_retx);
      ("retransmissions", Json.Int r.retransmissions);
      ("completed_with_retx", Json.Int r.completed_with_retx);
    ]

let json_of_locality_row (r : locality_row) =
  Json.Obj
    [
      ("placement", Json.String r.placement);
      ("p50_latency_us", Json.Float r.p50_latency_us);
    ]

let json_of_region_result (r : Region_sim.result) =
  Json.Obj
    [
      ("servers", Json.Int r.Region_sim.servers);
      ("vswitches", Json.Int r.Region_sim.vswitches);
      ("vnics_modeled", Json.Int r.Region_sim.vnics_modeled);
      ("flows_modeled", Json.Int r.Region_sim.flows_modeled);
      ("hotspots", Json.Int r.Region_sim.hotspots);
      ("events", Json.Int r.Region_sim.events);
      ("messages", Json.Int r.Region_sim.messages);
      ("ticks", Json.Int r.Region_sim.ticks);
      ("flow_expiries", Json.Int r.Region_sim.flow_expiries);
      ("overloads", Json.Int r.Region_sim.overloads);
      ("overload_ticks", Json.Int r.Region_sim.overload_ticks);
      ("detections", Json.Int r.Region_sim.detections);
      ("activations", Json.Int r.Region_sim.activations);
      ("packets_modeled", Json.Float r.Region_sim.packets_modeled);
      ("pool_reused", Json.Int r.Region_sim.pool_reused);
      ("pool_fresh", Json.Int r.Region_sim.pool_fresh);
      ("crashes", Json.Int r.Region_sim.crashes);
      ("restarts", Json.Int r.Region_sim.restarts);
      ("mttr_p50_s", Json.Float r.Region_sim.mttr_p50);
      ("mttr_p99_s", Json.Float r.Region_sim.mttr_p99);
      ("blackholed_ticks", Json.Int r.Region_sim.blackholed_ticks);
      ("late_blackholed", Json.Int r.Region_sim.late_blackholed);
      ("ctl_takeovers", Json.Int r.Region_sim.ctl_takeovers);
      ("digest", Json.Int r.Region_sim.digest);
    ]

let json_of_region_mttr (r : region_mttr) =
  Json.Obj
    [
      ("storm", json_of_region_result r.storm);
      ("rerun_digest", Json.Int r.storm_rerun_digest);
      ("deterministic", Json.Bool r.storm_deterministic);
    ]

let json_of_crash_cycles (r : crash_cycles) =
  Json.Obj
    [
      ("cycles", Json.Int r.cycles);
      ("crashes", Json.Int r.cyc_crashes);
      ("restarts", Json.Int r.cyc_restarts);
      ("reconciles", Json.Int r.cyc_reconciles);
      ("repairs", Json.Int r.cyc_repairs);
      ("conservation_ok", Json.Bool r.conservation_ok);
      ("be_conservation_ok", Json.Bool r.be_conservation_ok);
      ("batches_leaked", Json.Int r.batches_leaked);
      ("final_cps", Json.Float r.final_cps);
    ]

let json_of_region_overloads (r : region_overloads) =
  Json.Obj
    [
      ("before", json_of_region_result r.region_before);
      ("after", json_of_region_result r.region_after);
      ("resolved_pct", Json.Float r.resolved_pct);
    ]

let json_of_slo_result (r : Region_sim.slo_result) =
  Json.Obj
    [
      ("ticks", Json.Int r.Region_sim.slo_ticks);
      ("offered_ratio", Json.Float r.Region_sim.offered_ratio);
      ("pool_min", Json.Int r.Region_sim.pool_min);
      ("pool_max", Json.Int r.Region_sim.pool_max);
      ("pool_at_peak", Json.Int r.Region_sim.pool_at_peak);
      ("pool_at_end", Json.Int r.Region_sim.pool_at_end);
      ("p99_peak_s", Json.Float r.Region_sim.p99_peak);
      ("within_budget_fraction", Json.Float r.Region_sim.within_budget_fraction);
      ("scale_outs", Json.Int r.Region_sim.slo_scale_outs);
      ("scale_ins", Json.Int r.Region_sim.slo_scale_ins);
      ("oscillations", Json.Int r.Region_sim.oscillations);
      ("suppressed_ticks", Json.Int r.Region_sim.slo_suppressed_ticks);
      ("partition_suspects_max", Json.Int r.Region_sim.partition_suspects_max);
      ("pool_moves_in_partition", Json.Int r.Region_sim.pool_moves_in_partition);
      ("digest", Json.Int r.Region_sim.slo_digest);
    ]

let json_of_slo_ramp (r : slo_ramp) =
  Json.Obj
    [
      ("clean", json_of_slo_result r.slo_clean);
      ("chaos", json_of_slo_result r.slo_chaos);
      ("rerun_digest", Json.Int r.slo_rerun_digest);
      ("deterministic", Json.Bool r.slo_deterministic);
    ]
