(** The small-scale testbed of §6.1, as a reusable scenario builder.

    One high-demand vNIC (optionally configured as one of the §6.3
    middleboxes) on server 0; client vNICs in the last rack so the rest
    of the fleet stays idle and eligible as FEs; a controller; the
    gateway pre-loaded with every vNIC's location.

    CPU runs at 1/100 and memory at 1/1000 of production scale (see
    {!Nezha_vswitch.Params.scaled}), and the VM kernel model is scaled
    identically, so saturation points sit at a few thousand CPS — cheap
    for the event simulator — while every ratio the paper reports is
    preserved. *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_workloads

type t = {
  sim : Sim.t;
  rng : Rng.t;
  fabric : Fabric.t;
  faults : Faults.t;
      (** the underlay fault-injection plane, attached to [fabric] and
          seeded from [seed] (independent of the workload rng) *)
  ctl : Controller.t;
  vpc : Vpc.t;
  heavy_server : Topology.server_id;
  server : Tcp_crr.endpoint;  (** the high-demand vNIC's endpoint *)
  clients : Tcp_crr.endpoint array;
  telemetry : Nezha_telemetry.Telemetry.t;
      (** every vSwitch, the controller and the monitor are registered;
          FEs and BEs self-register as the controller creates them *)
  trace : Nezha_telemetry.Trace.t;
      (** the shared flight recorder, installed on every vSwitch, the
          fabric and every VM; created disabled — flip it on with
          {!Nezha_telemetry.Trace.set_enabled} around the window of
          interest *)
}

val scaled_kernel : Vm.kernel
(** The VM kernel at the same scale as {!Params.scaled}: a 64-vCPU VM
    accepts ≈3× the connections a local vSwitch can set up, which is
    what turns the VM into the post-Nezha bottleneck (§6.2.2). *)

val create :
  ?seed:int ->
  ?racks:int ->
  ?servers_per_rack:int ->
  ?params:Params.t ->
  ?ruleset:Ruleset.t ->
  ?middlebox:Middlebox.kind ->
  ?acl_rules:int ->
  ?server_vcpus:int ->
  ?kernel:Vm.kernel ->
  ?clients:int ->
  ?fe_preload_fraction:float ->
  ?controller_config:Controller.config ->
  ?reserve_servers:Topology.server_id list ->
  unit ->
  t
(** Defaults: seed 1, 5 racks × 8 servers, {!Params.scaled}, a plain
    100-rule ruleset, a 64-vCPU server VM with {!scaled_kernel}, 4
    clients (on CPU-generous vSwitches so they never bottleneck), FE
    candidates pre-loaded to [fe_preload_fraction] (default 0) of their
    memory, manual controller (no auto policies). *)

val heavy_vnic_id : Vnic.id
val heavy_ip : Ipv4.t

val offload : t -> ?num_fes:int -> unit -> Controller.offload
(** Trigger offloading of the heavy vNIC and run the simulation until
    the final stage completes.  @raise Failure if it cannot. *)

val run_crr :
  t -> rate:float -> duration:float -> ?client:int -> ?settle:float -> unit -> Tcp_crr.t
(** Run a TCP_CRR load from one client against the heavy vNIC and drain
    the simulation ([settle] extra seconds, default 2). *)

val measure_cps : t -> ?concurrency:int -> ?duration:float -> unit -> float
(** Saturation CPS of the heavy vNIC: closed-loop TCP_CRR (spread over
    all clients) keeps [concurrency] connections outstanding and reports
    the completion rate. *)

val measure_latency :
  t -> ?concurrency:int -> ?duration:float -> unit -> Stats.Histogram.t
(** Same closed-loop load, returning the merged SYN-to-response latency
    histogram across all clients (P50…P9999 material). *)

val local_cps_capacity_estimate : t -> float
(** Closed-form estimate of the heavy vSwitch's local CPS capacity from
    the cost model (used to pick probe rates). *)
