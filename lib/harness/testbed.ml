open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch
open Nezha_fabric
open Nezha_core
open Nezha_workloads

type t = {
  sim : Sim.t;
  rng : Rng.t;
  fabric : Fabric.t;
  faults : Faults.t;
  ctl : Controller.t;
  vpc : Vpc.t;
  heavy_server : Topology.server_id;
  server : Tcp_crr.endpoint;
  clients : Tcp_crr.endpoint array;
  telemetry : Nezha_telemetry.Telemetry.t;
  trace : Nezha_telemetry.Trace.t;
}

(* The VM kernel at 1/100 CPU scale (like Params.scaled).  With 64 vCPUs
   and contention 0.04 the acceptance capacity is ~12.4k CPS — about
   3.3x a local vSwitch's ~3.7k CPS setup capacity, reproducing the
   Fig. 9 plateau and the Fig. 10 shape. *)
let scaled_kernel =
  {
    Vm.per_core_hz = 2.5e7;
    contention = 0.04;
    packet_cycles = 1_500;
    connection_cycles = 32_000;
    backlog = 8192;
  }

let vpc = Vpc.make 9
let heavy_vnic_id = Vnic.id_of_int 1
let heavy_ip = Ipv4.of_octets 10 0 0 1

let client_ip i = Ipv4.of_octets 10 0 1 (i + 1)

let ten_slash_8 = Ipv4.Prefix.make (Ipv4.of_octets 10 0 0 0) 8

let basic_ruleset ~acl_rules () =
  let acl = Acl.create () in
  (* Rules that never match the test traffic: every lookup scans them
     all, the worst-case cost the paper's Table A1 sweeps. *)
  for i = 1 to acl_rules do
    Acl.add acl
      (Acl.rule ~priority:i ~src:(Ipv4.Prefix.make (Ipv4.of_octets 172 16 0 0) 12) Acl.Deny)
  done;
  let rs = Ruleset.create ~vni:9 ~acl () in
  Ruleset.add_route rs ten_slash_8;
  rs

let create ?(seed = 1) ?(racks = 5) ?(servers_per_rack = 8) ?(params = Params.scaled) ?ruleset
    ?middlebox ?(acl_rules = 100) ?(server_vcpus = 64) ?(kernel = scaled_kernel) ?(clients = 4)
    ?(fe_preload_fraction = 0.0)
    ?(controller_config =
      { Controller.default_config with Controller.auto_offload = false; auto_scale = false })
    ?(reserve_servers = []) () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let topo = Topology.create ~racks ~servers_per_rack in
  let fabric = Fabric.create ~sim ~topology:topo in
  (* The fault plane's rng is derived from the seed directly — not from
     [Rng.split rng] — so fault draws stay identical no matter how the
     rest of the testbed evolves its split order. *)
  let faults = Faults.create ~sim ~topology:topo ~rng:(Rng.create (seed + 0x6F41)) () in
  Fabric.set_faults fabric (Some faults);
  (* One flight recorder shared by every component so stage and wire
     spans land on the same traces.  Disabled until an experiment (or a
     caller) flips it on — the datapaths then pay one [match] per site. *)
  let trace = Nezha_telemetry.Trace.create () in
  Fabric.set_tracer fabric (Some trace);
  let n = Topology.server_count topo in
  let clients = min clients servers_per_rack in
  let client_servers = List.init clients (fun i -> n - clients + i) in
  (* Clients live on CPU-generous vSwitches so the heavy vNIC is the only
     bottleneck under test. *)
  let client_params =
    { params with Params.cpu_hz = params.Params.cpu_hz *. 50.0;
      mem_bytes = params.Params.mem_bytes * 4 }
  in
  List.iter
    (fun s ->
      if not (List.mem s reserve_servers) then begin
        let p = if List.mem s client_servers then client_params else params in
        let vs = Fabric.add_server fabric s ~params:p in
        Vswitch.set_tracer vs (Some trace)
      end)
    (Topology.servers topo);
  let heavy_server = 0 in
  let heavy_vs = Fabric.vswitch fabric heavy_server in
  let heavy_rs =
    match (ruleset, middlebox) with
    | Some rs, _ -> rs
    | None, Some kind -> Middlebox.make_ruleset kind ~rng ~vni:9 ~mem_scale:1000.0 ()
    | None, None -> basic_ruleset ~acl_rules ()
  in
  List.iteri
    (fun i s ->
      Ruleset.add_mapping heavy_rs
        { Vnic.Addr.vpc; ip = client_ip i }
        (Topology.underlay_ip topo s))
    client_servers;
  let heavy_vnic = Vnic.make ~id:1 ~vpc ~ip:heavy_ip ~mac:(Mac.of_int64 1L) in
  Admission.exn ~context:"Testbed: heavy vNIC"
    (Vswitch.add_vnic heavy_vs heavy_vnic heavy_rs);
  let server_vm = Vm.create ~sim ~name:"heavy-vm" ~vcpus:server_vcpus ~kernel () in
  Fabric.attach_vm fabric heavy_server heavy_vnic.Vnic.id server_vm;
  Vm.set_tracer server_vm (Some trace);
  Gateway.set_route (Fabric.gateway fabric)
    { Vnic.Addr.vpc; ip = heavy_ip }
    [| Topology.underlay_ip topo heavy_server |];
  let client_eps =
    Array.of_list
      (List.mapi
         (fun i s ->
           let vs = Fabric.vswitch fabric s in
           let cip = client_ip i in
           let vnic = Vnic.make ~id:(100 + i) ~vpc ~ip:cip ~mac:(Mac.of_int64 (Int64.of_int (100 + i))) in
           let rs = Ruleset.create ~vni:9 ~fixed_overhead_bytes:65536 () in
           Ruleset.add_route rs ten_slash_8;
           Ruleset.add_mapping rs { Vnic.Addr.vpc; ip = heavy_ip }
             (Topology.underlay_ip topo heavy_server);
           Admission.exn ~context:"Testbed: client vNIC"
             (Vswitch.add_vnic vs vnic rs);
           let vm = Vm.create ~sim ~name:(Printf.sprintf "client-%d" i) ~vcpus:64 () in
           Fabric.attach_vm fabric s vnic.Vnic.id vm;
           Vm.set_tracer vm (Some trace);
           Gateway.set_route (Fabric.gateway fabric) { Vnic.Addr.vpc; ip = cip }
             [| Topology.underlay_ip topo s |];
           { Tcp_crr.vs; vnic = vnic.Vnic.id; vm; ip = cip })
         client_servers)
  in
  (* Pre-load the FE candidates' memory to model vSwitches that already
     serve local tenants (shapes the small-#FE region of Fig. 9). *)
  if fe_preload_fraction > 0.0 then
    List.iter
      (fun s ->
        if s <> heavy_server && not (List.mem s client_servers) then begin
          let nic = Vswitch.nic (Fabric.vswitch fabric s) in
          let want =
            int_of_float (fe_preload_fraction *. float_of_int (Smartnic.mem_capacity nic))
          in
          ignore (Smartnic.mem_reserve nic want : bool)
        end)
      (Topology.servers topo);
  let ctl = Controller.create ~config:controller_config ~fabric ~rng:(Rng.split rng) () in
  let telemetry = Nezha_telemetry.Telemetry.create () in
  List.iter
    (fun s ->
      match Fabric.vswitch_opt fabric s with
      | Some vs -> Vswitch.register_telemetry vs telemetry
      | None -> ())
    (Topology.servers topo);
  Fabric.register_telemetry fabric telemetry;
  Controller.register_telemetry ctl telemetry;
  {
    sim;
    rng;
    fabric;
    faults;
    ctl;
    vpc;
    heavy_server;
    server =
      { Tcp_crr.vs = heavy_vs; vnic = heavy_vnic.Vnic.id; vm = server_vm; ip = heavy_ip };
    clients = client_eps;
    telemetry;
    trace;
  }

let offload t ?num_fes () =
  match Controller.offload_vnic t.ctl ~server:t.heavy_server ~vnic:heavy_vnic_id ?num_fes () with
  | Error e -> failwith ("Testbed.offload: " ^ e)
  | Ok o ->
    Sim.run t.sim ~until:(Sim.now t.sim +. 5.0);
    if Controller.offload_stage o <> Be.Final then failwith "Testbed.offload: not final";
    o

let run_crr t ~rate ~duration ?(client = 0) ?(settle = 2.0) () =
  let crr =
    Tcp_crr.start ~sim:t.sim ~rng:(Rng.split t.rng) ~vpc:t.vpc ~client:t.clients.(client)
      ~server:t.server ~rate ~duration ()
  in
  Sim.run t.sim ~until:(Sim.now t.sim +. duration +. settle);
  crr

let local_cps_capacity_estimate t =
  let p = Vswitch.params t.server.Tcp_crr.vs in
  let rs = Vswitch.ruleset t.server.Tcp_crr.vs heavy_vnic_id in
  let acl_scanned =
    match rs with Some rs -> Acl.rule_count (Ruleset.acl rs) | None -> 100
  in
  let tables = match rs with Some rs -> Ruleset.table_count rs | None -> 5 in
  let lookup = Params.rule_lookup_cycles p ~acl_rules_scanned:acl_scanned ~lpm_depth:8 ~tables in
  let per_conn =
    lookup + p.Params.session_setup_cycles
    + (5 * (p.Params.fast_path_cycles + p.Params.encap_cycles + 300))
  in
  p.Params.cpu_hz /. float_of_int per_conn

let closed_loop_run t ~concurrency ~duration =
  let n = Array.length t.clients in
  let gens =
    Array.to_list
      (Array.map
         (fun client ->
           Tcp_crr.start_closed ~sim:t.sim ~rng:(Rng.split t.rng) ~vpc:t.vpc ~client
             ~server:t.server ~concurrency:(concurrency / n) ~duration ())
         t.clients)
  in
  Sim.run t.sim ~until:(Sim.now t.sim +. duration +. 3.0);
  gens

let measure_cps t ?(concurrency = 512) ?(duration = 3.0) () =
  let gens = closed_loop_run t ~concurrency ~duration in
  let completed = List.fold_left (fun acc g -> acc + Tcp_crr.completed g) 0 gens in
  float_of_int completed /. duration

let measure_latency t ?(concurrency = 512) ?(duration = 3.0) () =
  let gens = closed_loop_run t ~concurrency ~duration in
  let merged = Stats.Histogram.create () in
  List.iter
    (fun g -> Stats.Histogram.merge_into ~dst:merged ~src:(Tcp_crr.latencies g))
    gens;
  merged
