(** One function per table and figure of the paper's evaluation.

    Testbed experiments (Figs. 9–12, 14, Tables 3–4, A1 and the
    ablations) run the discrete-event simulator; fleet experiments
    (Figs. 2–4, 13, 15, Table 1, App. B.2) use the quantile-matched
    region model; Table 5 and Fig. A1 are cost models.  Every function
    takes a seed so benches are reproducible. *)

open Nezha_engine
open Nezha_workloads

(** {1 Fig. 9 — performance gain vs #FEs} *)

type fig9_row = {
  fes : int;
  cps_gain : float;
  flows_gain : float;
  vnics_gain : float;
}

val fig9 : ?seed:int -> ?fes_list:int list -> unit -> fig9_row list
(** Defaults sweep 1, 2, 3, 4, 6, 8 FEs (auto-scaling disabled, §6.2.1). *)

val fig9_latency : ?seed:int -> ?fes:int -> unit -> Stats.Histogram.t * Stats.Histogram.t
(** Connection-setup latency distributions (without, with Nezha) under
    the saturating closed-loop load of the Fig. 9 measurement — the
    source of the P50/P99/P9999 summaries in the machine-readable bench
    output. *)

val fig9_vnics : ?fes_list:int list -> unit -> (int * float) list
(** The #vNICs series on the paper's wider 1–128 FE axis: gain is
    proportional to the pool size once it exceeds the 4-way replication
    factor. *)

(** {1 Fig. 10 — CPS vs #vCPUs in the VM} *)

type fig10_row = { vcpus : int; cps_without : float; cps_with : float }

val fig10 : ?seed:int -> ?vcpus_list:int list -> unit -> fig10_row list

(** {1 Fig. 11 — CPU utilization during offloading/scaling} *)

type fig11_point = { t : float; cps : float; be_cpu : float; fe_cpu : float; n_fes : int }

val fig11 : ?seed:int -> unit -> fig11_point list
(** Ramping CPS triggers offload at 70% BE utilization, then FE
    scale-out at 40% average FE utilization. *)

(** {1 Fig. 12 — end-to-end latency vs load} *)

type fig12_row = {
  load : float;  (** offered load as a fraction of local capacity *)
  lat_without_us : float;  (** P50 one-way latency, µs *)
  lat_with_us : float;
  lost_without : float;  (** fraction of probes lost *)
  lost_with : float;
}

val fig12 : ?seed:int -> ?loads:float list -> unit -> fig12_row list

(** {1 Fig. 12, [--attribute] mode — latency split by critical path} *)

type latency_split = {
  traces : int;  (** completed, conserved traces behind the split *)
  p50_us : float;  (** end-to-end latency of the trace at the P50 rank *)
  p50_local_us : float;  (** its local component (BE work, non-NSH wire) *)
  p50_remote_us : float;  (** its remote-hop component (FE work, NSH legs) *)
  p99_us : float;
  p99_local_us : float;
  p99_remote_us : float;
}
(** A rank-based split: the breakdown reported for P50 (P99) is the
    local/remote attribution of {e the} trace sitting at that rank of
    the end-to-end distribution, so by the conservation invariant the
    two components sum to the reported percentile exactly. *)

type fig12_attr_row = {
  attr_load : float;
  without_nezha : latency_split;  (** remote ≈ 0: no FE on the path *)
  with_nezha : latency_split;
}

val fig12_attribute : ?seed:int -> ?loads:float list -> unit -> fig12_attr_row list
(** The Fig. 12 probe with the testbed's flight recorder enabled for the
    measurement window (1-in-8 sampling).  Defaults sweep 0.3, 0.7, 1.0
    of local capacity. *)

(** {1 Table 3 — middlebox gains} *)

type table3_row = {
  kind : Middlebox.kind;
  cps_gain : float;
  vnics_gain : float;
  flows_gain : float;
}

val table3 : ?seed:int -> unit -> table3_row list

(** {1 Table 4 — offload activation completion time} *)

val table4 : ?seed:int -> ?events:int -> unit -> Stats.Histogram.t
(** Milliseconds; repeated offload/fallback cycles through the full
    dual-running workflow. *)

(** {1 Fig. 14 — packet loss during FE crash and failover} *)

val fig14 : ?seed:int -> ?underlay_loss:float -> unit -> (float * float) list
(** (time, loss-rate) samples; one of four FEs crashes at t = 4 s.
    [underlay_loss] additionally impairs every underlay hop with that
    drop probability for the whole run (the paper's crash experiment on
    a lossy fabric): the loss floor sits near the configured rate and
    the crash surge still recovers on top of it. *)

(** {1 Chaos harness — scripted underlay faults} *)

type chaos_sample = {
  at : float;  (** seconds since load start *)
  loss : float;  (** fabric+vSwitch drops over the sample window *)
  outstanding : int;  (** BE offloads awaiting their FE hop ack *)
}

type chaos_result = {
  samples : chaos_sample list;
  offered : int;
  established : int;
  completed : int;
  tracked : int;  (** TX sends entered into the BE's offload tracker *)
  acked : int;
  timeouts : int;
  retx : int;
  resteered : int;
  local_fallbacks : int;
  local_bypass : int;
  dropped : int;  (** given up with no local ruleset (blackholed) *)
  untracked : int;
  outstanding_end : int;
  injected_drops : int;  (** probabilistic losses from the fault plane *)
  partition_drops : int;
  mass_suspected : int;  (** §C.2 suppression rounds at the monitor *)
  fe_failures_declared : int;
  end_loss : float;  (** mean loss over the last 1.5 s (healed network) *)
  recovered : bool;  (** [end_loss <= 1%] *)
  conservation_ok : bool;
      (** [tracked = acked + local_fallbacks + dropped + outstanding_end] *)
}

val chaos :
  ?seed:int ->
  ?loss:float ->
  ?partition:bool ->
  ?duration:float ->
  ?rate:float ->
  unit ->
  chaos_result
(** One scripted run against an offloaded vNIC under open-loop TCP_CRR
    load ([rate]/s per client).  Schedule, relative to load start:
    [loss/2] everywhere at 1 s, full [loss] at 2 s, FE SmartNIC crash at
    4 s, a hard partition of a surviving FE's server at 6 s (unless
    [partition] is false), heal at 9 s, perfect network again at 11 s.
    Defaults: seed 42, 0.5% loss, partition on, 13 s, 400 CPS/client.
    Same seed ⇒ byte-identical result, samples included. *)

(** {1 Table A1 — rule-lookup throughput (Mpps)} *)

val tableA1 : unit -> (int * (int * float) list) list
(** [(pkt_size, [(n_acl_rules, mpps); ...]); ...] from the full-scale
    cost model. *)

(** {1 App. B.2 — scale-out frequency over 30 days} *)

type appB2_result = {
  offload_events : int;
  fes_provisioned : int;
  scale_out_events : int;
  scale_out_ratio : float;
}

val appB2 : ?seed:int -> ?events:int -> unit -> appB2_result

(** {1 Ablations} *)

type sirius_vs_nezha = {
  nezha_cps : float;
  sirius_cps : float;
  sirius_pingpongs : int;
  nezha_notify : int;
}

val ablation_sirius : ?seed:int -> unit -> sirius_vs_nezha
(** Same pool hardware (4 idle SmartNICs): Nezha's stateless FEs versus
    Sirius's primary/backup pairs with in-line replication. *)

type lb_ablation = {
  mode : string;
  fe_rule_lookups : int;
  fe_cached_flows : int;
  cps : float;
}

val ablation_flow_vs_packet_lb : ?seed:int -> unit -> lb_ablation list
(** Flow-level vs packet-level balancing of TX traffic (§3.2.3 point 3):
    packet spraying duplicates rule lookups and cached flows. *)

type state_size_ablation = {
  slot_bytes : int;
  flows_supported : int;
}

val ablation_state_size : ?seed:int -> unit -> state_size_ablation list
(** §7.1: fixed 64 B state slots vs an 8 B variable-size allocation. *)

val ablation_notify_rate : ?seed:int -> unit -> float
(** Notify packets per data packet under a stats-enabled workload —
    §3.2.2 argues this stays far below 1. *)

val measure_flows : ?seed:int -> fes:int -> unit -> int
(** Sustained #concurrent flows on the heavy vNIC with a 1.5 MB (scaled)
    rule table; [fes = 0] is the local baseline (Fig. 9's right series). *)

type failover_retx = {
  failed_without_retx : int;  (** connections abandoned during the crash window *)
  failed_with_retx : int;
  retransmissions : int;
  completed_with_retx : int;
}

val ablation_failover_retransmit : ?seed:int -> unit -> failover_retx
(** §6.3.4's "customers are not perceptibly impacted": with TCP
    retransmission, connections caught by an FE crash retry past the
    ~2 s failover window instead of failing. *)

type locality_row = { placement : string; p50_latency_us : float }

val ablation_fe_locality : ?seed:int -> unit -> locality_row list
(** App. B.1: FE selection prefers the BE's ToR.  Compares connection
    latency with same-rack FEs against FEs forced into a distant rack. *)

(** {1 Fig. 13 at region scale — measured before/after}

    The closed-form {!Nezha_workloads.Region.daily_overloads} race model
    replayed as an actual event simulation: thousands of vSwitches on a
    {!Nezha_engine.Sim.Sharded} cluster
    ({!Nezha_workloads.Region_sim}), overloads counted only when a
    demand spike outruns the offload pipeline in simulated time. *)

type region_overloads = {
  region_before : Nezha_workloads.Region_sim.result;
  region_after : Nezha_workloads.Region_sim.result;
  resolved_pct : float;  (** share of "before" overloads that Nezha
                             resolved, in percent *)
}

val region_overloads :
  ?cfg:Nezha_workloads.Region_sim.config -> unit -> region_overloads
(** Two same-seed runs of [cfg] (default
    {!Nezha_workloads.Region_sim.default_config}): controller off, then
    on. *)

(** {1 Region-scale MTTR chaos (DESIGN.md §13)}

    A crash storm over the region: Poisson server crashes with frozen
    schedules, plus one primary-controller crash mid-storm with a
    standby takeover.  Reports P50/P99 crash→intent-restored (MTTR),
    overload and blackhole counts during convergence, and asserts
    same-seed byte-identical determinism under the sharded engine. *)

type region_mttr = {
  storm : Nezha_workloads.Region_sim.result;
  storm_rerun_digest : int;
  storm_deterministic : bool;
      (** a second same-seed run produced an identical digest *)
}

val default_storm_config : Nezha_workloads.Region_sim.config
(** 240 servers on 6 shards, crash_rate 0.6/server/day, one controller
    crash at t=8 s with a 0.5 s failover. *)

val region_mttr : ?cfg:Nezha_workloads.Region_sim.config -> unit -> region_mttr

(** {1 SLO-tracking ramp (ROADMAP item 4)}

    The {!Nezha_workloads.Region_sim.run_slo} diurnal ×10 offered-load
    ramp driven by the real {!Nezha_core.Slo} decision core: run clean,
    run with the rack-partition chaos variant (window in the hold phase
    so suppression is hit at peak pool), and rerun clean with the same
    seed for the determinism gate. *)

type slo_ramp = {
  slo_clean : Nezha_workloads.Region_sim.slo_result;
  slo_chaos : Nezha_workloads.Region_sim.slo_result;
  slo_rerun_digest : int;
  slo_deterministic : bool;  (** clean rerun digest identical *)
}

val slo_smoke_config : Nezha_workloads.Region_sim.slo_config
(** The default SLO config at reduced scale (150 s day, shorter
    cooldown/warmup/suppress-hold) — fast enough for tier-1 and the
    [bench/check.sh --smoke] target while exercising every gate. *)

val slo_ramp :
  ?cfg:Nezha_workloads.Region_sim.slo_config ->
  ?partition:float * float ->
  unit ->
  slo_ramp
(** Default [partition]: starts at 42.5% of the day and lasts 10% of
    it. *)

(** {1 Crash/restart endurance}

    [cycles] FE-host crash+reboot cycles against a live offload on the
    small testbed, traffic interleaved; at the end the books must
    balance: the controller conservation invariant, BE tracked-send
    conservation, and zero leaked {!Nezha_net.Pbatch} arena batches. *)

type crash_cycles = {
  cycles : int;
  cyc_crashes : int;
  cyc_restarts : int;
  cyc_reconciles : int;
  cyc_repairs : int;
  conservation_ok : bool;
  be_conservation_ok : bool;
  batches_leaked : int;
  final_cps : float;
}

val crash_cycles : ?cycles:int -> ?seed:int -> unit -> crash_cycles

(** {1 JSON encoders}

    One [json_of_*] per result record (via {!Nezha_telemetry.Json}), so
    the bench's [--json] document and the [nezha_sim] subcommands share
    a single schema instead of hand-rolling objects. *)

val json_of_fig9_row : fig9_row -> Nezha_telemetry.Json.t
val json_of_fig10_row : fig10_row -> Nezha_telemetry.Json.t
val json_of_fig11_point : fig11_point -> Nezha_telemetry.Json.t
val json_of_fig12_row : fig12_row -> Nezha_telemetry.Json.t
val json_of_latency_split : latency_split -> Nezha_telemetry.Json.t
val json_of_fig12_attr_row : fig12_attr_row -> Nezha_telemetry.Json.t
val json_of_table3_row : table3_row -> Nezha_telemetry.Json.t
val json_of_chaos_sample : chaos_sample -> Nezha_telemetry.Json.t

val json_of_chaos_result : chaos_result -> Nezha_telemetry.Json.t
(** The result fields of the [nezha-chaos/1] schema ([samples] included);
    the [chaos] subcommand prepends the run's input parameters. *)

val json_of_appB2_result : appB2_result -> Nezha_telemetry.Json.t
val json_of_sirius_vs_nezha : sirius_vs_nezha -> Nezha_telemetry.Json.t
val json_of_lb_ablation : lb_ablation -> Nezha_telemetry.Json.t
val json_of_state_size_ablation : state_size_ablation -> Nezha_telemetry.Json.t
val json_of_failover_retx : failover_retx -> Nezha_telemetry.Json.t
val json_of_locality_row : locality_row -> Nezha_telemetry.Json.t

val json_of_region_result :
  Nezha_workloads.Region_sim.result -> Nezha_telemetry.Json.t

val json_of_region_overloads : region_overloads -> Nezha_telemetry.Json.t
val json_of_region_mttr : region_mttr -> Nezha_telemetry.Json.t
val json_of_crash_cycles : crash_cycles -> Nezha_telemetry.Json.t

val json_of_slo_result :
  Nezha_workloads.Region_sim.slo_result -> Nezha_telemetry.Json.t

val json_of_slo_ramp : slo_ramp -> Nezha_telemetry.Json.t
