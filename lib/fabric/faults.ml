open Nezha_engine

type endpoint = Server of Topology.server_id | Gateway

type impairment = {
  loss : float;
  dup : float;
  dup_delay : float;
  reorder : float;
  reorder_delay : float;
}

let perfect = { loss = 0.0; dup = 0.0; dup_delay = 0.0; reorder = 0.0; reorder_delay = 0.0 }

let impair ?(loss = 0.0) ?(dup = 0.0) ?(dup_delay = 100e-6) ?(reorder = 0.0)
    ?(reorder_delay = 100e-6) () =
  { loss; dup; dup_delay; reorder; reorder_delay }

let trivial i = i.loss <= 0.0 && i.dup <= 0.0 && i.reorder <= 0.0

(* The gateway gets code -1 so a directed link keys as an int pair. *)
let code = function Gateway -> -1 | Server s -> s

type t = {
  sim : Sim.t;
  topology : Topology.t;
  rng : Rng.t;
  mutable default_imp : impairment;
  links : (int * int, impairment) Hashtbl.t;
  cut_links : (int * int, unit) Hashtbl.t;
  cut_servers : (int, unit) Hashtbl.t;
  cut_racks : (int, unit) Hashtbl.t;
  mutable consults : int;
  mutable drops : int;
  mutable dups : int;
  mutable reorders : int;
  mutable partition_drops : int;
}

let create ~sim ~topology ~rng () =
  {
    sim;
    topology;
    rng;
    default_imp = perfect;
    links = Hashtbl.create 16;
    cut_links = Hashtbl.create 16;
    cut_servers = Hashtbl.create 8;
    cut_racks = Hashtbl.create 4;
    consults = 0;
    drops = 0;
    dups = 0;
    reorders = 0;
    partition_drops = 0;
  }

let set_default t imp = t.default_imp <- imp

let set_link t ~src ~dst imp = Hashtbl.replace t.links (code src, code dst) imp

let clear_link t ~src ~dst = Hashtbl.remove t.links (code src, code dst)

let clear_all t =
  t.default_imp <- perfect;
  Hashtbl.reset t.links;
  Hashtbl.reset t.cut_links;
  Hashtbl.reset t.cut_servers;
  Hashtbl.reset t.cut_racks

let cut_link t ~src ~dst = Hashtbl.replace t.cut_links (code src, code dst) ()
let heal_link t ~src ~dst = Hashtbl.remove t.cut_links (code src, code dst)

let cut_server t s = Hashtbl.replace t.cut_servers s ()
let heal_server t s = Hashtbl.remove t.cut_servers s

let cut_rack t ~rack = Hashtbl.replace t.cut_racks rack ()
let heal_rack t ~rack = Hashtbl.remove t.cut_racks rack

let rack_cut t = function
  | Gateway -> None
  | Server s ->
    let r = Topology.rack_of t.topology s in
    if Hashtbl.mem t.cut_racks r then Some r else None

let server_cut t = function
  | Gateway -> false
  | Server s -> Hashtbl.mem t.cut_servers s

let partitioned t ~src ~dst =
  (src <> dst)
  && (Hashtbl.mem t.cut_links (code src, code dst)
     || server_cut t src || server_cut t dst
     ||
     (* An isolated rack keeps its intra-rack links; anything crossing
        its boundary — including two *different* cut racks — drops. *)
     match (rack_cut t src, rack_cut t dst) with
     | None, None -> false
     | Some a, Some b -> a <> b
     | Some _, None | None, Some _ -> true)

let effective t ~src ~dst =
  match Hashtbl.find_opt t.links (code src, code dst) with
  | Some imp -> imp
  | None -> t.default_imp

type verdict = Pass | Drop | Duplicate of float | Delay of float

let consult t ~src ~dst =
  t.consults <- t.consults + 1;
  if partitioned t ~src ~dst then begin
    t.partition_drops <- t.partition_drops + 1;
    Drop
  end
  else begin
    let imp = effective t ~src ~dst in
    (* Draw only on non-trivial links so a perfect plane never touches
       the rng (same-seed runs stay identical when chaos is off). *)
    if trivial imp then Pass
    else if imp.loss > 0.0 && Rng.chance t.rng imp.loss then begin
      t.drops <- t.drops + 1;
      Drop
    end
    else if imp.dup > 0.0 && Rng.chance t.rng imp.dup then begin
      t.dups <- t.dups + 1;
      Duplicate (Rng.float t.rng (Float.max 1e-9 imp.dup_delay))
    end
    else if imp.reorder > 0.0 && Rng.chance t.rng imp.reorder then begin
      t.reorders <- t.reorders + 1;
      Delay (Rng.float t.rng (Float.max 1e-9 imp.reorder_delay))
    end
    else Pass
  end

let at t ~time f = ignore (Sim.at t.sim ~time (fun _ -> f t) : Sim.handle)

let drops_injected t = t.drops
let dups_injected t = t.dups
let reorders_injected t = t.reorders
let partition_drops t = t.partition_drops
let consults t = t.consults

let active_cuts t =
  Hashtbl.length t.cut_links + Hashtbl.length t.cut_servers + Hashtbl.length t.cut_racks

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  T.register_counter reg ~name:"fabric/faults/consults" (fun () -> t.consults);
  T.register_counter reg ~name:"fabric/faults/drops_injected" (fun () -> t.drops);
  T.register_counter reg ~name:"fabric/faults/dups_injected" (fun () -> t.dups);
  T.register_counter reg ~name:"fabric/faults/reorders_injected" (fun () -> t.reorders);
  T.register_counter reg ~name:"fabric/faults/partition_drops" (fun () ->
      t.partition_drops);
  T.register_gauge reg ~name:"fabric/faults/active_cuts" (fun () ->
      float_of_int (active_cuts t))
