open Nezha_engine

type endpoint = Server of Topology.server_id | Gateway

type impairment = {
  loss : float;
  dup : float;
  dup_delay : float;
  reorder : float;
  reorder_delay : float;
}

let perfect = { loss = 0.0; dup = 0.0; dup_delay = 0.0; reorder = 0.0; reorder_delay = 0.0 }

let impair ?(loss = 0.0) ?(dup = 0.0) ?(dup_delay = 100e-6) ?(reorder = 0.0)
    ?(reorder_delay = 100e-6) () =
  { loss; dup; dup_delay; reorder; reorder_delay }

let trivial i = i.loss <= 0.0 && i.dup <= 0.0 && i.reorder <= 0.0

(* The gateway gets code -1 so a directed link keys as an int pair. *)
let code = function Gateway -> -1 | Server s -> s

type t = {
  sim : Sim.t;
  topology : Topology.t;
  rng : Rng.t;
  mutable default_imp : impairment;
  links : (int * int, impairment) Hashtbl.t;
  cut_links : (int * int, unit) Hashtbl.t;
  cut_servers : (int, unit) Hashtbl.t;
  cut_racks : (int, unit) Hashtbl.t;
  (* Node lifecycle: a crashed server is partitioned (in-flight packets
     to it vanish at the fabric) until restarted; a crashed vSwitch
     keeps its links but its process is down (the NIC drops work).
     Either way the node's incarnation is bumped so pre-crash RPC
     replies can be recognised and discarded on arrival. *)
  crashed : (int, unit) Hashtbl.t;
  vs_crashed : (int, unit) Hashtbl.t;
  incarnations : (int, int) Hashtbl.t;
  mutable shard_lookup : (Topology.server_id -> Sim.t) option;
  mutable on_crash : (Topology.server_id -> unit) list;
  mutable on_restart : (Topology.server_id -> unit) list;
  mutable consults : int;
  mutable drops : int;
  mutable dups : int;
  mutable reorders : int;
  mutable partition_drops : int;
  mutable server_crashes : int;
  mutable server_restarts : int;
}

let create ~sim ~topology ~rng () =
  {
    sim;
    topology;
    rng;
    default_imp = perfect;
    links = Hashtbl.create 16;
    cut_links = Hashtbl.create 16;
    cut_servers = Hashtbl.create 8;
    cut_racks = Hashtbl.create 4;
    crashed = Hashtbl.create 8;
    vs_crashed = Hashtbl.create 8;
    incarnations = Hashtbl.create 8;
    shard_lookup = None;
    on_crash = [];
    on_restart = [];
    consults = 0;
    drops = 0;
    dups = 0;
    reorders = 0;
    partition_drops = 0;
    server_crashes = 0;
    server_restarts = 0;
  }

let set_default t imp = t.default_imp <- imp

let set_link t ~src ~dst imp = Hashtbl.replace t.links (code src, code dst) imp

let clear_link t ~src ~dst = Hashtbl.remove t.links (code src, code dst)

let clear_all t =
  t.default_imp <- perfect;
  Hashtbl.reset t.links;
  Hashtbl.reset t.cut_links;
  Hashtbl.reset t.cut_servers;
  Hashtbl.reset t.cut_racks

let cut_link t ~src ~dst = Hashtbl.replace t.cut_links (code src, code dst) ()
let heal_link t ~src ~dst = Hashtbl.remove t.cut_links (code src, code dst)

let cut_server t s = Hashtbl.replace t.cut_servers s ()
let heal_server t s = Hashtbl.remove t.cut_servers s

let cut_rack t ~rack = Hashtbl.replace t.cut_racks rack ()
let heal_rack t ~rack = Hashtbl.remove t.cut_racks rack

let rack_cut t = function
  | Gateway -> None
  | Server s ->
    let r = Topology.rack_of t.topology s in
    if Hashtbl.mem t.cut_racks r then Some r else None

let server_cut t = function
  | Gateway -> false
  | Server s -> Hashtbl.mem t.cut_servers s

let node_down t = function
  | Gateway -> false
  | Server s -> Hashtbl.mem t.crashed s

let partitioned t ~src ~dst =
  (src <> dst)
  && (Hashtbl.mem t.cut_links (code src, code dst)
     || server_cut t src || server_cut t dst
     || node_down t src || node_down t dst
     ||
     (* An isolated rack keeps its intra-rack links; anything crossing
        its boundary — including two *different* cut racks — drops. *)
     match (rack_cut t src, rack_cut t dst) with
     | None, None -> false
     | Some a, Some b -> a <> b
     | Some _, None | None, Some _ -> true)

let effective t ~src ~dst =
  match Hashtbl.find_opt t.links (code src, code dst) with
  | Some imp -> imp
  | None -> t.default_imp

type verdict = Pass | Drop | Duplicate of float | Delay of float

let consult t ~src ~dst =
  t.consults <- t.consults + 1;
  if partitioned t ~src ~dst then begin
    t.partition_drops <- t.partition_drops + 1;
    Drop
  end
  else begin
    let imp = effective t ~src ~dst in
    (* Draw only on non-trivial links so a perfect plane never touches
       the rng (same-seed runs stay identical when chaos is off). *)
    if trivial imp then Pass
    else if imp.loss > 0.0 && Rng.chance t.rng imp.loss then begin
      t.drops <- t.drops + 1;
      Drop
    end
    else if imp.dup > 0.0 && Rng.chance t.rng imp.dup then begin
      t.dups <- t.dups + 1;
      Duplicate (Rng.float t.rng (Float.max 1e-9 imp.dup_delay))
    end
    else if imp.reorder > 0.0 && Rng.chance t.rng imp.reorder then begin
      t.reorders <- t.reorders + 1;
      Delay (Rng.float t.rng (Float.max 1e-9 imp.reorder_delay))
    end
    else Pass
  end

(* Under Sim.Sharded every server has an owning shard sim; a mutation
   that touches one server must be scheduled there (scheduling it on
   the root sim would race the shard barriers and break shard-count
   invariance).  The fabric installs the lookup via [set_shard_lookup]
   when it learns the per-server sims. *)
let set_shard_lookup t f = t.shard_lookup <- Some f

let sim_for t = function
  | None -> t.sim
  | Some sid -> ( match t.shard_lookup with Some f -> f sid | None -> t.sim)

let at t ?server ~time f =
  ignore (Sim.at (sim_for t server) ~time (fun _ -> f t) : Sim.handle)

(* ------------------------------------------------------------------ *)
(* Node lifecycle. *)

let is_crashed t sid = Hashtbl.mem t.crashed sid || Hashtbl.mem t.vs_crashed sid
let incarnation t sid = Option.value (Hashtbl.find_opt t.incarnations sid) ~default:0
let on_crash t f = t.on_crash <- t.on_crash @ [ f ]
let on_restart t f = t.on_restart <- t.on_restart @ [ f ]

let bump_incarnation t sid =
  Hashtbl.replace t.incarnations sid (incarnation t sid + 1)

let fire hooks sid = List.iter (fun f -> f sid) hooks

let restart_server t sid =
  if Hashtbl.mem t.crashed sid then begin
    Hashtbl.remove t.crashed sid;
    t.server_restarts <- t.server_restarts + 1;
    fire t.on_restart sid
  end

let restart_vswitch t sid =
  if Hashtbl.mem t.vs_crashed sid then begin
    Hashtbl.remove t.vs_crashed sid;
    t.server_restarts <- t.server_restarts + 1;
    fire t.on_restart sid
  end

let crash_common t sid tbl restart reboot_after =
  if not (is_crashed t sid) then begin
    Hashtbl.replace tbl sid ();
    bump_incarnation t sid;
    t.server_crashes <- t.server_crashes + 1;
    fire t.on_crash sid;
    match reboot_after with
    | None -> ()
    | Some d ->
      ignore
        (Sim.schedule (sim_for t (Some sid)) ~delay:d (fun _ -> restart t sid)
          : Sim.handle)
  end

let crash_server t ?reboot_after sid =
  crash_common t sid t.crashed restart_server reboot_after

let crash_vswitch t ?reboot_after sid =
  crash_common t sid t.vs_crashed restart_vswitch reboot_after

let server_crashes t = t.server_crashes
let server_restarts t = t.server_restarts

let drops_injected t = t.drops
let dups_injected t = t.dups
let reorders_injected t = t.reorders
let partition_drops t = t.partition_drops
let consults t = t.consults

let active_cuts t =
  Hashtbl.length t.cut_links + Hashtbl.length t.cut_servers + Hashtbl.length t.cut_racks

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  T.register_counter reg ~name:"fabric/faults/consults" (fun () -> t.consults);
  T.register_counter reg ~name:"fabric/faults/drops_injected" (fun () -> t.drops);
  T.register_counter reg ~name:"fabric/faults/dups_injected" (fun () -> t.dups);
  T.register_counter reg ~name:"fabric/faults/reorders_injected" (fun () -> t.reorders);
  T.register_counter reg ~name:"fabric/faults/partition_drops" (fun () ->
      t.partition_drops);
  T.register_gauge reg ~name:"fabric/faults/active_cuts" (fun () ->
      float_of_int (active_cuts t));
  T.register_counter reg ~name:"fabric/faults/server_crashes" (fun () ->
      t.server_crashes);
  T.register_counter reg ~name:"fabric/faults/server_restarts" (fun () ->
      t.server_restarts);
  T.register_gauge reg ~name:"fabric/faults/crashed_now" (fun () ->
      float_of_int (Hashtbl.length t.crashed + Hashtbl.length t.vs_crashed))
