open Nezha_engine
open Nezha_net
open Nezha_vswitch
module Trace = Nezha_telemetry.Trace

type drop_reason = No_vxlan | No_such_server | No_vswitch | Fault_injected

type t = {
  sim : Sim.t; (* gateway / control shard *)
  sims : Sim.t array; (* per-server simulation (shard); defaults to [sim] *)
  topology : Topology.t;
  gateway : Gateway.t;
  switches : Vswitch.t option array;
  vms : (int * Vnic.id, Vm.t) Hashtbl.t;
  mutable delivered_to_vms : int;
  mutable lost_no_vxlan : int;
  mutable lost_no_such_server : int;
  mutable lost_no_vswitch : int;
  mutable lost_fault : int;
  mutable faults : Faults.t option;
  mutable tap : (time:float -> Packet.t -> unit) option;
  mutable tracer : Trace.t option;
  mutable lifecycle : (server:int -> [ `Crashed | `Restarted ] -> unit) list;
}

let count_lost t = function
  | No_vxlan -> t.lost_no_vxlan <- t.lost_no_vxlan + 1
  | No_such_server -> t.lost_no_such_server <- t.lost_no_such_server + 1
  | No_vswitch -> t.lost_no_vswitch <- t.lost_no_vswitch + 1
  | Fault_injected -> t.lost_fault <- t.lost_fault + 1

let ep_name = function
  | Faults.Gateway -> "gw"
  | Faults.Server sid -> "s" ^ string_of_int sid

(* The simulation an endpoint's events run on.  With a sharded engine
   each server lives on its rack's shard; the gateway stays on the base
   (control) simulation. *)
let sim_of_ep t = function
  | Faults.Gateway -> t.sim
  | Faults.Server sid -> t.sims.(sid)

(* Wire transits are the only place underlay time passes, so each
   surviving hop emits one [Wire] span covering schedule-to-delivery —
   fault-injected extra delay included.  A hop still carrying NSH
   metadata exists only because of load sharing (the BE↔FE legs), so it
   is attributed [Remote]. *)
let trace_wire t ~src ~dst ~dur pkt =
  match t.tracer with
  | Some tr when pkt.Packet.trace_id <> 0 ->
    let now = Sim.now (sim_of_ep t src) in
    let site = if pkt.Packet.nsh <> None then Trace.Remote else Trace.Local in
    Trace.add_span tr ~id:pkt.Packet.trace_id ~name:"wire" ~component:"fabric"
      ~kind:Trace.Wire ~site
      ~args:[ ("src", ep_name src); ("dst", ep_name dst) ]
      ~t0:now ~t1:(now +. dur) ()
  | Some _ | None -> ()

let trace_fault_drop t ~src ~dst pkt =
  match t.tracer with
  | Some tr when pkt.Packet.trace_id <> 0 ->
    Trace.mark tr ~id:pkt.Packet.trace_id ~name:"fault_drop" ~component:"fabric"
      ~args:[ ("src", ep_name src); ("dst", ep_name dst) ]
      ~now:(Sim.now (sim_of_ep t src)) ()
  | Some _ | None -> ()

(* One traversal of the [src -> dst] hop: consult the impairment plane,
   then schedule [deliver] on the surviving packet(s).  Duplication
   delivers a fresh copy — downstream processing mutates packets in
   place, so the twin must not alias the original.  The twin also leaves
   the trace: keeping it would double-count every stage downstream of
   the duplication against the one measured end-to-end interval. *)
let transit t ~src ~dst ~delay pkt deliver =
  let ssim = sim_of_ep t src and dsim = sim_of_ep t dst in
  match t.faults with
  | None ->
    trace_wire t ~src ~dst ~dur:delay pkt;
    Sim.cross ssim dsim ~delay (fun _ -> deliver pkt)
  | Some f -> (
    match Faults.consult f ~src ~dst with
    | Faults.Drop ->
      trace_fault_drop t ~src ~dst pkt;
      count_lost t Fault_injected
    | Faults.Pass ->
      trace_wire t ~src ~dst ~dur:delay pkt;
      Sim.cross ssim dsim ~delay (fun _ -> deliver pkt)
    | Faults.Delay extra ->
      trace_wire t ~src ~dst ~dur:(delay +. extra) pkt;
      Sim.cross ssim dsim ~delay:(delay +. extra) (fun _ -> deliver pkt)
    | Faults.Duplicate extra ->
      let twin = Packet.copy pkt in
      twin.Packet.trace_id <- 0;
      trace_wire t ~src ~dst ~dur:delay pkt;
      Sim.cross ssim dsim ~delay (fun _ -> deliver pkt);
      Sim.cross ssim dsim ~delay:(delay +. extra) (fun _ -> deliver twin))

let deliver_at_server t target pkt =
  match t.switches.(target) with
  | Some vs -> Vswitch.from_net vs pkt
  | None -> count_lost t No_vswitch

let create ~sim ~topology =
  let t =
    {
      sim;
      sims = Array.make (Topology.server_count topology) sim;
      topology;
      gateway = Gateway.create ();
      switches = Array.make (Topology.server_count topology) None;
      vms = Hashtbl.create 64;
      delivered_to_vms = 0;
      lost_no_vxlan = 0;
      lost_no_such_server = 0;
      lost_no_vswitch = 0;
      lost_fault = 0;
      faults = None;
      tap = None;
      tracer = None;
      lifecycle = [];
    }
  in
  Gateway.set_forward t.gateway (fun ~dst pkt ->
      match Topology.server_of_ip topology dst with
      | None -> count_lost t No_such_server
      | Some target ->
        let delay = Topology.latency_to_gateway topology target in
        transit t ~src:Faults.Gateway ~dst:(Faults.Server target) ~delay pkt
          (deliver_at_server t target));
  t

let sim t = t.sim
let server_sim t sid = t.sims.(sid)
let topology t = t.topology
let gateway t = t.gateway

let on_lifecycle t w = t.lifecycle <- t.lifecycle @ [ w ]

(* Attaching a fault plane also wires the node-lifecycle half: crash
   hooks wipe the vSwitch's volatile state and down its NIC at the
   crash instant (the state is gone *now*, not when someone notices),
   restart hooks bring the NIC back; either way registered lifecycle
   watchers (the controller) are told so reconciliation can start. *)
let set_faults t f =
  t.faults <- f;
  match f with
  | None -> ()
  | Some f ->
    Faults.set_shard_lookup f (fun sid -> t.sims.(sid));
    Faults.on_crash f (fun sid ->
        (match t.switches.(sid) with
        | Some vs ->
          Vswitch.wipe_volatile vs;
          Smartnic.crash (Vswitch.nic vs)
        | None -> ());
        List.iter (fun w -> w ~server:sid `Crashed) t.lifecycle);
    Faults.on_restart f (fun sid ->
        (match t.switches.(sid) with
        | Some vs -> Smartnic.recover (Vswitch.nic vs)
        | None -> ());
        List.iter (fun w -> w ~server:sid `Restarted) t.lifecycle)

let faults t = t.faults

(* Installing a tracer here covers the underlay only; the caller is
   expected to install the same recorder on every vSwitch and VM so the
   stage spans tile (see Testbed). *)
let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

let deliver_to_server t ~src pkt =
  (match t.tap with Some tap -> tap ~time:(Sim.now t.sims.(src)) pkt | None -> ());
  match pkt.Packet.vxlan with
  | None -> count_lost t No_vxlan
  | Some v ->
    let outer_dst = v.Packet.outer_dst in
    if Ipv4.equal outer_dst (Topology.gateway_ip t.topology) then begin
      let delay = Topology.latency_to_gateway t.topology src in
      transit t ~src:(Faults.Server src) ~dst:Faults.Gateway ~delay pkt (fun pkt ->
          Gateway.handle t.gateway pkt)
    end
    else begin
      match Topology.server_of_ip t.topology outer_dst with
      | None -> count_lost t No_such_server
      | Some target ->
        let delay = Topology.latency t.topology src target in
        transit t ~src:(Faults.Server src) ~dst:(Faults.Server target) ~delay pkt
          (deliver_at_server t target)
    end

let deliver_batch_at_server t target batch =
  match t.switches.(target) with
  | Some vs -> Vswitch.from_net_batch vs batch
  | None ->
    Pbatch.iter batch (fun _ -> count_lost t No_vswitch);
    Pbatch.recycle batch

(* Batched egress: one pass in arrival order carves the burst into
   maximal consecutive runs bound for the same server under the same
   delay; each run crosses the wire as one scheduled delivery into
   [Vswitch.from_net_batch].  The impairment plane is consulted per
   packet, in order — fault RNG draws line up exactly with a
   packet-at-a-time burst — and any packet it deflects (drop, extra
   delay, duplicate twin) flushes or bypasses the run so arrival order
   and delivery times match the single path.  Owns [batch]. *)
let deliver_batch_to_server t ~src batch =
  let run = ref None in
  let flush () =
    match !run with
    | None -> ()
    | Some (target, delay, rb) ->
      run := None;
      Sim.cross t.sims.(src) t.sims.(target) ~delay (fun _ ->
          deliver_batch_at_server t target rb)
  in
  Pbatch.iter batch (fun pkt ->
      (match t.tap with Some tap -> tap ~time:(Sim.now t.sims.(src)) pkt | None -> ());
      match pkt.Packet.vxlan with
      | None -> count_lost t No_vxlan
      | Some v -> (
        let outer_dst = v.Packet.outer_dst in
        if Ipv4.equal outer_dst (Topology.gateway_ip t.topology) then begin
          flush ();
          let delay = Topology.latency_to_gateway t.topology src in
          transit t ~src:(Faults.Server src) ~dst:Faults.Gateway ~delay pkt (fun pkt ->
              Gateway.handle t.gateway pkt)
        end
        else
          match Topology.server_of_ip t.topology outer_dst with
          | None -> count_lost t No_such_server
          | Some target -> (
            let delay = Topology.latency t.topology src target in
            let fsrc = Faults.Server src and fdst = Faults.Server target in
            let push_run pkt =
              match !run with
              | Some (tgt, d, rb) when tgt = target && d = delay -> Pbatch.push rb pkt
              | Some _ | None ->
                flush ();
                let rb = Pbatch.alloc () in
                Pbatch.push rb pkt;
                run := Some (target, delay, rb)
            in
            let outcome =
              match t.faults with
              | None -> Faults.Pass
              | Some f -> Faults.consult f ~src:fsrc ~dst:fdst
            in
            match outcome with
            | Faults.Drop ->
              trace_fault_drop t ~src:fsrc ~dst:fdst pkt;
              count_lost t Fault_injected
            | Faults.Pass ->
              trace_wire t ~src:fsrc ~dst:fdst ~dur:delay pkt;
              push_run pkt
            | Faults.Delay extra ->
              flush ();
              trace_wire t ~src:fsrc ~dst:fdst ~dur:(delay +. extra) pkt;
              Sim.cross t.sims.(src) t.sims.(target) ~delay:(delay +. extra)
                (fun _ -> deliver_at_server t target pkt)
            | Faults.Duplicate extra ->
              let twin = Packet.copy pkt in
              twin.Packet.trace_id <- 0;
              trace_wire t ~src:fsrc ~dst:fdst ~dur:delay pkt;
              push_run pkt;
              Sim.cross t.sims.(src) t.sims.(target) ~delay:(delay +. extra)
                (fun _ -> deliver_at_server t target twin))));
  flush ();
  Pbatch.recycle batch

(* Liveness probe (§4.4), as a wire round-trip through the monitor's
   vantage point (the gateway side): request leg, vSwitch check at the
   target, reply leg.  Each leg is subject to the impairment plane, so a
   partition or lossy link produces genuinely missed probes. *)
let ping t ~dst ~reply =
  let leg ~src ~dst =
    match t.faults with
    | None -> Some 0.0
    | Some f -> (
      match Faults.consult f ~src ~dst with
      | Faults.Drop -> None
      | Faults.Pass -> Some 0.0
      | Faults.Delay extra -> Some extra
      (* A duplicated probe is still one probe; ignore the twin. *)
      | Faults.Duplicate _ -> Some 0.0)
  in
  if dst >= 0 && dst < Array.length t.switches then begin
    match leg ~src:Faults.Gateway ~dst:(Faults.Server dst) with
    | None -> ()
    | Some extra ->
      let d1 = Topology.latency_to_gateway t.topology dst +. extra in
      Sim.cross t.sim t.sims.(dst) ~delay:d1 (fun _ ->
          match t.switches.(dst) with
          | Some vs when not (Smartnic.is_crashed (Vswitch.nic vs)) -> (
            match leg ~src:(Faults.Server dst) ~dst:Faults.Gateway with
            | None -> ()
            | Some extra ->
              let d2 = Topology.latency_to_gateway t.topology dst +. extra in
              Sim.cross t.sims.(dst) t.sim ~delay:d2 (fun _ -> reply ()))
          | Some _ | None -> ())
  end

let add_server t ?sim sid ~params =
  if sid < 0 || sid >= Array.length t.switches then invalid_arg "Fabric.add_server: bad id";
  (match t.switches.(sid) with
  | Some _ -> invalid_arg "Fabric.add_server: server already populated"
  | None -> ());
  (match sim with Some s -> t.sims.(sid) <- s | None -> ());
  let vs =
    Vswitch.create ~sim:t.sims.(sid) ~params
      ~name:(Printf.sprintf "vs-%d" sid)
      ~underlay_ip:(Topology.underlay_ip t.topology sid)
      ~gateway:(Topology.gateway_ip t.topology) ()
  in
  (* On-demand vNIC-server learning from the gateway (200 ms interval). *)
  Vswitch.set_mapping_learner vs
    (Some
       (fun addr ->
         match Gateway.lookup t.gateway addr with
         | Some targets -> Some (targets, 0.2)
         | None -> None));
  Vswitch.set_sink vs
    {
      Vswitch.on_output =
        (function
        | Vswitch.To_net pkt -> deliver_to_server t ~src:sid pkt
        | Vswitch.To_vm (vid, pkt) -> (
          t.delivered_to_vms <- t.delivered_to_vms + 1;
          match Hashtbl.find_opt t.vms (sid, vid) with
          | Some vm -> Vm.deliver vm pkt
          | None -> ()));
      on_net_batch = (fun batch -> deliver_batch_to_server t ~src:sid batch);
    };
  t.switches.(sid) <- Some vs;
  vs

let vswitch_opt t sid =
  if sid < 0 || sid >= Array.length t.switches then None else t.switches.(sid)

let vswitch t sid =
  match vswitch_opt t sid with Some vs -> vs | None -> raise Not_found

let server_of_vswitch t vs =
  let n = Array.length t.switches in
  let rec probe i =
    if i >= n then raise Not_found
    else begin
      match t.switches.(i) with Some v when v == vs -> i | Some _ | None -> probe (i + 1)
    end
  in
  probe 0

let attach_vm t sid vid vm = Hashtbl.replace t.vms (sid, vid) vm

let vm_of t sid vid = Hashtbl.find_opt t.vms (sid, vid)

let set_tap t tap = t.tap <- tap

let delivered_to_vms t = t.delivered_to_vms

let lost_by t = function
  | No_vxlan -> t.lost_no_vxlan
  | No_such_server -> t.lost_no_such_server
  | No_vswitch -> t.lost_no_vswitch
  | Fault_injected -> t.lost_fault

let lost t = t.lost_no_vxlan + t.lost_no_such_server + t.lost_no_vswitch + t.lost_fault

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  T.register_counter reg ~name:"fabric/delivered_to_vms" (fun () -> t.delivered_to_vms);
  T.register_counter reg ~name:"fabric/lost/no_vxlan" (fun () -> t.lost_no_vxlan);
  T.register_counter reg ~name:"fabric/lost/no_such_server" (fun () ->
      t.lost_no_such_server);
  T.register_counter reg ~name:"fabric/lost/no_vswitch" (fun () -> t.lost_no_vswitch);
  T.register_counter reg ~name:"fabric/lost/fault_injected" (fun () -> t.lost_fault);
  T.register_counter reg ~name:"fabric/gateway/forwarded" (fun () ->
      Gateway.forwarded t.gateway);
  T.register_counter reg ~name:"fabric/gateway/dropped" (fun () ->
      Gateway.dropped t.gateway);
  (* Arena health of the shared packet-batch pool: allocation vs reuse
     tells whether the batched dataplane is recycling (reuse should
     dominate once warm). *)
  T.register_counter reg ~name:"pbatch/pool/allocs" (fun () ->
      let a, _, _ = Pbatch.pool_stats () in
      a);
  T.register_counter reg ~name:"pbatch/pool/reuses" (fun () ->
      let _, r, _ = Pbatch.pool_stats () in
      r);
  T.register_counter reg ~name:"pbatch/pool/recycles" (fun () ->
      let _, _, c = Pbatch.pool_stats () in
      c);
  match t.faults with Some f -> Faults.register_telemetry f reg | None -> ()
