(** The delivery engine: wires vSwitches, VMs and the gateway together
    over the topology's latencies, with an optional fault-injection
    plane ({!Faults}) consulted on every hop. *)

open Nezha_engine
open Nezha_vswitch

type t

(** Why a packet vanished in the underlay.  [Fault_injected] covers both
    probabilistic losses and partition drops from the {!Faults} plane;
    the other three are wiring bugs or crashed/removed nodes. *)
type drop_reason = No_vxlan | No_such_server | No_vswitch | Fault_injected

val create : sim:Sim.t -> topology:Topology.t -> t
(** [sim] is the base simulation: it runs the gateway and any server not
    explicitly placed elsewhere with [add_server ~sim].  For sharded
    runs, pass a member of a {!Sim.Sharded} cluster (conventionally
    shard 0) and place each server on its rack's shard; hops between
    endpoints on different shards then cross the cluster mailbox.
    Cross-shard hop latencies must be at least the cluster lookahead —
    rack-aligned placement satisfies this, since the cheapest
    cross-rack hop ([Topology.cross_rack_latency]) bounds it. *)

val sim : t -> Sim.t

val server_sim : t -> Topology.server_id -> Sim.t
(** The simulation the server's events run on ([sim t] unless the
    server was added with an explicit [~sim]). *)

val topology : t -> Topology.t
val gateway : t -> Gateway.t

val set_faults : t -> Faults.t option -> unit
(** Attach (or detach) the impairment plane.  Without one, every hop
    passes — the seed fabric's behaviour, at zero rng cost.

    Attaching a plane also wires its node-lifecycle half into this
    fabric: {!Faults.crash_server} / {!Faults.crash_vswitch} wipe the
    hosted vSwitch's volatile state and crash its SmartNIC at the crash
    instant, the restart calls recover the NIC, and registered
    {!on_lifecycle} watchers are notified either way.  The plane's
    chaos scheduling is given the per-server shard sims
    ({!Faults.set_shard_lookup}).  Attach at most one plane per
    fabric. *)

val faults : t -> Faults.t option

val on_lifecycle : t -> (server:Topology.server_id -> [ `Crashed | `Restarted ] -> unit) -> unit
(** Watch node crash/restart events (fired synchronously from the
    fault plane's hooks, after the dataplane wipe).  The controller
    subscribes to drive reconciliation. *)

val set_tracer : t -> Nezha_telemetry.Trace.t option -> unit
(** Attach the flight recorder: each surviving hop of a traced packet
    emits a [Wire] span (fault-injected extra delay included, NSH hops
    classified remote), fault drops leave a mark, and a duplicated
    twin is taken off the trace so downstream stages are not counted
    twice. *)

val tracer : t -> Nezha_telemetry.Trace.t option

val add_server : t -> ?sim:Sim.t -> Topology.server_id -> params:Params.t -> Vswitch.t
(** Create a vSwitch on the server, install its transmit path, and
    register it for delivery.  [sim] places the server (vSwitch,
    SmartNIC, timers and all deliveries to it) on a specific shard of a
    {!Sim.Sharded} cluster; default is the fabric's base simulation.
    @raise Invalid_argument if the server already has one or the id is
    out of range. *)

val vswitch : t -> Topology.server_id -> Vswitch.t
(** @raise Not_found when the server has no vSwitch. *)

val vswitch_opt : t -> Topology.server_id -> Vswitch.t option

val server_of_vswitch : t -> Vswitch.t -> Topology.server_id

val attach_vm : t -> Topology.server_id -> Vnic.id -> Vm.t -> unit
(** Deliveries ([To_vm]) for this vNIC reach the VM's kernel model.
    Unattached vNICs sink their deliveries (still counted). *)

val vm_of : t -> Topology.server_id -> Vnic.id -> Vm.t option

val set_tap : t -> (time:float -> Nezha_net.Packet.t -> unit) option -> unit
(** A wire tap: invoked for every packet as it enters the underlay
    (still encapsulated).  Pair with {!Nezha_net.Frame.synthesize} and
    {!Nezha_net.Pcap} to capture simulation traffic as a pcap file. *)

val deliver_to_server : t -> src:Topology.server_id -> Nezha_net.Packet.t -> unit
(** Inject an encapsulated packet into the underlay as if [src]'s
    vSwitch had transmitted it.  Normally called via the vSwitch
    transmit hook; exposed for tests and custom sources. *)

val deliver_batch_to_server :
  t -> src:Topology.server_id -> Nezha_net.Pbatch.t -> unit
(** Batched form of {!deliver_to_server} (the sink installed on every
    vSwitch): takes ownership of the burst, consults the fault plane per
    packet in arrival order, and ships maximal same-destination runs as
    single scheduled deliveries into [Vswitch.from_net_batch]. *)

val ping : t -> dst:Topology.server_id -> reply:(unit -> unit) -> unit
(** A liveness probe round-trip from the gateway side: request leg,
    vSwitch-alive check at [dst] (present and its SmartNIC not crashed),
    reply leg.  Each leg traverses the fault plane, so loss or a
    partition silently eats the probe; [reply] fires only on success,
    after both legs' latencies. *)

val delivered_to_vms : t -> int
(** Packets handed to VM models or sunk. *)

val lost : t -> int
(** Total packets that vanished in the underlay, all reasons combined. *)

val lost_by : t -> drop_reason -> int

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** [fabric/delivered_to_vms], per-reason [fabric/lost/...], gateway
    forwarded/dropped, the shared [pbatch/pool/...] arena counters
    (allocs/reuses/recycles), and — when a fault plane is attached —
    the [fabric/faults/...] counters. *)
