open Nezha_engine
open Nezha_net
module Trace = Nezha_telemetry.Trace

type kernel = {
  per_core_hz : float;
  contention : float;
  packet_cycles : int;
  connection_cycles : int;
  backlog : int;
}

let default_kernel =
  {
    per_core_hz = 2.5e9;
    contention = 0.085;
    packet_cycles = 8_000;
    connection_cycles = 120_000;
    backlog = 4096;
  }

type t = {
  sim : Sim.t;
  name : string;
  vcpus : int;
  kernel : kernel;
  effective_hz : float;
  mutable busy_until : float;
  mutable queued : int;
  mutable busy_acc : float;
  mutable last_sample_time : float;
  mutable last_sample_busy : float;
  mutable app : Sim.t -> Packet.t -> unit;
  mutable delivered : int;
  mutable dropped : int;
  mutable accepted : int;
  mutable tracer : Trace.t option;
}

let saturating_cores ~vcpus ~contention =
  float_of_int vcpus /. (1.0 +. (contention *. float_of_int (vcpus - 1)))

let create ~sim ~name ~vcpus ?(kernel = default_kernel) () =
  if vcpus <= 0 then invalid_arg "Vm.create: vcpus must be positive";
  let effective_hz =
    kernel.per_core_hz *. saturating_cores ~vcpus ~contention:kernel.contention
  in
  {
    sim;
    name;
    vcpus;
    kernel;
    effective_hz;
    busy_until = 0.0;
    queued = 0;
    busy_acc = 0.0;
    last_sample_time = 0.0;
    last_sample_busy = 0.0;
    app = (fun _ _ -> ());
    delivered = 0;
    dropped = 0;
    accepted = 0;
    tracer = None;
  }

let name t = t.name
let vcpus t = t.vcpus
let effective_hz t = t.effective_hz

let max_cps t = t.effective_hz /. float_of_int t.kernel.connection_cycles

let set_app t f = t.app <- f

let set_tracer t tr = t.tracer <- tr

let deliver t pkt =
  if t.queued >= t.kernel.backlog then begin
    t.dropped <- t.dropped + 1;
    match t.tracer with
    | Some tr when pkt.Packet.trace_id <> 0 ->
      Trace.mark tr ~id:pkt.Packet.trace_id ~name:"vm_backlog_drop"
        ~component:("vm/" ^ t.name) ~now:(Sim.now t.sim) ()
    | Some _ | None -> ()
  end
  else begin
    let is_new_conn = pkt.Packet.flags.Packet.syn in
    let cycles =
      t.kernel.packet_cycles + if is_new_conn then t.kernel.connection_cycles else 0
    in
    let now = Sim.now t.sim in
    let start = if t.busy_until > now then t.busy_until else now in
    let dur = float_of_int cycles /. t.effective_hz in
    t.busy_until <- start +. dur;
    t.busy_acc <- t.busy_acc +. dur;
    t.queued <- t.queued + 1;
    (* The kernel stage covers queue wait + processing: arrival to app
       invocation — where the trace ends (the packet reached its VM). *)
    (match t.tracer with
    | Some tr when pkt.Packet.trace_id <> 0 ->
      Trace.add_span tr ~id:pkt.Packet.trace_id ~name:"vm_kernel"
        ~component:("vm/" ^ t.name) ~t0:now ~t1:t.busy_until ()
    | Some _ | None -> ());
    ignore
      (Sim.at t.sim ~time:t.busy_until (fun sim ->
           t.queued <- t.queued - 1;
           t.delivered <- t.delivered + 1;
           if is_new_conn then t.accepted <- t.accepted + 1;
           (match t.tracer with
           | Some tr when pkt.Packet.trace_id <> 0 ->
             Trace.end_trace tr ~id:pkt.Packet.trace_id ~now:(Sim.now sim)
           | Some _ | None -> ());
           t.app sim pkt)
        : Sim.handle)
  end

let packets_delivered t = t.delivered
let packets_dropped t = t.dropped
let connections_accepted t = t.accepted

let utilization_since_last_sample t =
  let now = Sim.now t.sim in
  let future = if t.busy_until > now then t.busy_until -. now else 0.0 in
  let busy = t.busy_acc -. future in
  let dt = now -. t.last_sample_time in
  let u = if dt <= 0.0 then 0.0 else (busy -. t.last_sample_busy) /. dt in
  t.last_sample_time <- now;
  t.last_sample_busy <- busy;
  Float.max 0.0 (Float.min 1.0 u)
