(** Deterministic fault-injection plane for the underlay.

    The fabric consults this module on every hop (server↔server,
    server↔gateway) before scheduling a delivery.  Impairments are
    probabilistic — drop, duplication, reordering (extra jitter delay) —
    and configured per directed link, with a fleet-wide default; hard
    partitions (a link, a server, a whole rack) drop deterministically
    until healed.

    All randomness comes from a private {!Nezha_engine.Rng} stream, and a
    draw happens only when the consulted link has a non-zero probability,
    so an unimpaired plane consumes no randomness at all: the same seed
    produces byte-identical runs, chaos schedules included. *)

open Nezha_engine

type t

(** One end of a hop.  [Gateway] is the default-route box of §4.2.1;
    everything else is a server addressed by its topology id. *)
type endpoint = Server of Topology.server_id | Gateway

type impairment = {
  loss : float;  (** P(drop) per traversal *)
  dup : float;  (** P(duplicate); the copy arrives after an extra delay *)
  dup_delay : float;  (** max extra delay of the duplicate, seconds *)
  reorder : float;  (** P(extra jitter delay), which reorders vs later sends *)
  reorder_delay : float;  (** max extra jitter, seconds *)
}

val perfect : impairment
(** All probabilities zero — the seed fabric's behaviour. *)

val impair : ?loss:float -> ?dup:float -> ?dup_delay:float -> ?reorder:float ->
  ?reorder_delay:float -> unit -> impairment
(** Build an impairment from the fields that matter; the delays default
    to 100 µs (a few cross-rack latencies, enough to reorder). *)

val create : sim:Sim.t -> topology:Topology.t -> rng:Rng.t -> unit -> t
(** The plane starts perfect: no impairments, no partitions. *)

(** {1 Probabilistic impairments} *)

val set_default : t -> impairment -> unit
(** Baseline applied to every link without an override. *)

val set_link : t -> src:endpoint -> dst:endpoint -> impairment -> unit
(** Directional per-link override (replaces any previous one). *)

val clear_link : t -> src:endpoint -> dst:endpoint -> unit

val clear_all : t -> unit
(** Back to a perfect network: default and overrides reset, every
    partition healed.  Counters are kept. *)

(** {1 Hard partitions} *)

val cut_link : t -> src:endpoint -> dst:endpoint -> unit
(** Directional: [src]'s packets to [dst] vanish; the reverse direction
    still works unless cut separately. *)

val heal_link : t -> src:endpoint -> dst:endpoint -> unit

val cut_server : t -> Topology.server_id -> unit
(** Isolate one server in both directions (its NIC still runs — unlike
    {!Nezha_vswitch.Smartnic.crash} the node itself is healthy). *)

val heal_server : t -> Topology.server_id -> unit

val cut_rack : t -> rack:int -> unit
(** Isolate a rack: hops crossing its boundary (including to/from the
    gateway) drop; intra-rack hops keep working. *)

val heal_rack : t -> rack:int -> unit

val partitioned : t -> src:endpoint -> dst:endpoint -> bool

(** {1 Node lifecycle (crash / restart)}

    A {e crashed server} is partitioned in both directions — in-flight
    packets to it vanish at the fabric — and its volatile state is
    wiped by the registered {!on_crash} hooks.  A {e crashed vSwitch}
    keeps its links (the host is up, the dataplane process is down):
    packets still arrive but the crashed SmartNIC drops the work.
    Either way the node's {!incarnation} is bumped, so replies and
    retransmits born before the crash can be recognised as stale and
    discarded on arrival. *)

val crash_server : t -> ?reboot_after:float -> Topology.server_id -> unit
(** Crash the whole node.  [reboot_after] schedules the matching
    {!restart_server} on the owning shard sim.  No-op if already down. *)

val restart_server : t -> Topology.server_id -> unit
(** Heal the partition and fire the {!on_restart} hooks (the fabric
    re-registers the node; reconciliation is the controller's job). *)

val crash_vswitch : t -> ?reboot_after:float -> Topology.server_id -> unit
(** vSwitch-process-only crash: links stay up, the dataplane is wiped
    and down until {!restart_vswitch}. *)

val restart_vswitch : t -> Topology.server_id -> unit

val is_crashed : t -> Topology.server_id -> bool
(** True while the node (either variant) is down. *)

val incarnation : t -> Topology.server_id -> int
(** Number of crashes this node has suffered; 0 for a never-crashed
    node.  Stamped on RPCs so pre-crash replies are discarded. *)

val on_crash : t -> (Topology.server_id -> unit) -> unit
(** Register a hook fired synchronously at the crash instant, after the
    node is marked down (hooks run in registration order). *)

val on_restart : t -> (Topology.server_id -> unit) -> unit

val server_crashes : t -> int
(** Crash events injected so far (both variants). *)

val server_restarts : t -> int

(** {1 Scheduling}

    Sugar for chaos scripts: apply a mutation at an absolute simulated
    time ([Sim.at] underneath).  When [server] is given and a shard
    lookup is installed, the event lands on that server's owning shard
    sim — required for shard-count-invariant chaos under
    {!Nezha_engine.Sim.Sharded}. *)

val at : t -> ?server:Topology.server_id -> time:float -> (t -> unit) -> unit

val set_shard_lookup : t -> (Topology.server_id -> Sim.t) -> unit
(** Install the server→owning-sim map (the fabric does this when it is
    built shard-aware); without it everything schedules on the root
    sim. *)

(** {1 Consultation (fabric-facing)} *)

type verdict =
  | Pass
  | Drop
  | Duplicate of float  (** deliver, plus a copy after this extra delay *)
  | Delay of float  (** deliver after this extra delay (reordering) *)

val consult : t -> src:endpoint -> dst:endpoint -> verdict
(** One traversal of the [src → dst] hop.  Draws from the private rng
    (only if the effective impairment is non-trivial) and counts the
    outcome. *)

(** {1 Observability} *)

val drops_injected : t -> int
(** Probabilistic losses (not partition drops). *)

val dups_injected : t -> int
val reorders_injected : t -> int
val partition_drops : t -> int
val consults : t -> int

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** Counters under [fabric/faults/...] plus a gauge for the number of
    active cuts. *)
