(** Region gateway holding the authoritative vNIC-server mapping table.

    Most vSwitches keep only a learned subset of the global routing table
    and punt unknown destinations to the gateway (§4.2.1).  The gateway
    resolves the overlay address and bounces the packet to the hosting
    server — the "gray data flow" senders follow until they learn the
    latest entry. *)

open Nezha_net
open Nezha_vswitch

type t

val create : unit -> t

val set_route : t -> Vnic.Addr.t -> Ipv4.t array -> unit
(** Authoritative entry: a vNIC is served at these underlay addresses
    (several when offloaded to FEs).  @raise Invalid_argument on empty. *)

val remove_route : t -> Vnic.Addr.t -> bool

val lookup : t -> Vnic.Addr.t -> Ipv4.t array option
(** What vSwitches learn on demand. *)

val route_count : t -> int

val set_forward : t -> (dst:Ipv4.t -> Packet.t -> unit) -> unit
(** Installed by the fabric: how the gateway re-sends packets. *)

val handle : t -> Packet.t -> unit
(** A packet arrived at the gateway: resolve the inner destination, pick
    a target by 5-tuple hash, re-encapsulate and forward; count a drop
    when the overlay address is unknown. *)

val forwarded : t -> int
val dropped : t -> int

(** {1 Controller-epoch fence}

    Same contract as {!Nezha_vswitch.Vswitch.observe_epoch}: the
    gateway holds the region's authoritative routes, so a controller
    must present its epoch before mutating them; a revived stale
    primary's epoch is below the high-water mark and its route flaps
    are refused. *)

val epoch : t -> int
val observe_epoch : t -> epoch:int -> bool
val epoch_rejections : t -> int
