open Nezha_net
open Nezha_vswitch

type t = {
  routes : Ipv4.t array Vnic.Addr.Table.t;
  mutable forward : dst:Ipv4.t -> Packet.t -> unit;
  mutable forwarded : int;
  mutable dropped : int;
  mutable epoch : int;
  mutable epoch_rejections : int;
}

let create () =
  {
    routes = Vnic.Addr.Table.create 256;
    forward = (fun ~dst:_ _ -> failwith "Gateway: forward not installed");
    forwarded = 0;
    dropped = 0;
    epoch = 0;
    epoch_rejections = 0;
  }

(* Controller-epoch fence, same contract as [Vswitch.observe_epoch]:
   the gateway is the one place a stale primary could redirect whole
   vNICs, so route mutations must be fenced by the caller. *)
let epoch t = t.epoch
let epoch_rejections t = t.epoch_rejections

let observe_epoch t ~epoch =
  if epoch >= t.epoch then begin
    t.epoch <- epoch;
    true
  end
  else begin
    t.epoch_rejections <- t.epoch_rejections + 1;
    false
  end

let set_route t addr servers =
  if Array.length servers = 0 then invalid_arg "Gateway.set_route: empty target set";
  Vnic.Addr.Table.replace t.routes addr (Array.copy servers)

let remove_route t addr =
  if Vnic.Addr.Table.mem t.routes addr then begin
    Vnic.Addr.Table.remove t.routes addr;
    true
  end
  else false

let lookup t addr = Vnic.Addr.Table.find_opt t.routes addr

let route_count t = Vnic.Addr.Table.length t.routes

let set_forward t f = t.forward <- f

let handle t pkt =
  let addr = { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.dst } in
  match Vnic.Addr.Table.find_opt t.routes addr with
  | None -> t.dropped <- t.dropped + 1
  | Some targets ->
    let dst = targets.(Five_tuple.session_hash pkt.Packet.flow mod Array.length targets) in
    (* Preserve the original outer source: stateful decap needs it even
       when the path detours through the gateway. *)
    let outer_src =
      match pkt.Packet.vxlan with
      | Some v -> v.Packet.outer_src
      | None -> Ipv4.of_octets 192 168 0 1
    in
    Packet.encap_vxlan pkt ~vni:(Vpc.to_int pkt.Packet.vpc) ~outer_src ~outer_dst:dst;
    t.forwarded <- t.forwarded + 1;
    t.forward ~dst pkt

let forwarded t = t.forwarded
let dropped t = t.dropped
