(** Tenant VM model with a kernel-stack bottleneck.

    §6.2.2: once Nezha removes the vSwitch bottleneck, CPS is limited by
    the VM's kernel — locks and per-connection work that do not scale
    linearly with vCPUs.  The model is a rate server whose effective
    capacity saturates in the number of cores:

      [effective = per_core_rate × v / (1 + contention × (v − 1))]

    Each admitted packet costs kernel work (more for a connection-opening
    SYN); a bounded backlog overflows into [Vm_overload] drops. *)

open Nezha_engine
open Nezha_net

type kernel = {
  per_core_hz : float;  (** kernel cycles/s contributed by one vCPU *)
  contention : float;  (** lock-contention factor α in the saturation law *)
  packet_cycles : int;  (** kernel cost of an ordinary packet *)
  connection_cycles : int;  (** extra cost of accepting a new connection *)
  backlog : int;  (** listen/accept queue depth *)
}

val default_kernel : kernel

type t

val create : sim:Sim.t -> name:string -> vcpus:int -> ?kernel:kernel -> unit -> t
(** @raise Invalid_argument if [vcpus <= 0]. *)

val name : t -> string
val vcpus : t -> int

val effective_hz : t -> float
(** Saturating capacity in kernel cycles/s. *)

val max_cps : t -> float
(** Upper bound on connection acceptances/s implied by the kernel model
    (SYN cost only; payload packets reduce it further). *)

val set_app : t -> (Sim.t -> Packet.t -> unit) -> unit
(** The application handler, invoked after the kernel admits a packet. *)

val set_tracer : t -> Nezha_telemetry.Trace.t option -> unit
(** Attach the flight recorder: traced packets get a [vm_kernel] stage
    span (arrival to app invocation) and their trace is closed when the
    application handler runs — the VM is where a packet's journey, and
    the latency a probe measures, ends. *)

val deliver : t -> Packet.t -> unit
(** A packet arrived from the vNIC.  Charged against the kernel; dropped
    with an overload count when the backlog is full. *)

val packets_delivered : t -> int
val packets_dropped : t -> int
val connections_accepted : t -> int

val utilization_since_last_sample : t -> float
(** VM CPU busy fraction since the last call — Fig. 2's per-VM axis. *)
