open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch
open Nezha_fabric

type pair = { primary : Topology.server_id; backup : Topology.server_id }

type entry = { pre : Pre_action.t; state : State.t option }

type served = {
  vnic : Vnic.t;
  vni : int;
  host : Topology.server_id;
  (* One rule-table replica per card, one session region per pair
     (sessions live on the primary, replicated in-line to the backup). *)
  replicas : (Topology.server_id, Ruleset.t) Hashtbl.t;
  sessions : (int, entry Flow_table.t) Hashtbl.t; (* pair index -> table *)
}

type t = {
  fabric : Fabric.t;
  pairs : pair array;
  buckets : int array; (* bucket -> pair index *)
  served : served Vnic.Addr.Table.t;
  dpu_params : Params.t;
  mutable connections : int;
  mutable pingpongs : int;
  mutable transfers : int;
  mutable cycles : int;
}

let n_buckets_default = 64

let rec create ~fabric ~cards ?(dpu_speedup = 4.0) ?(buckets = n_buckets_default) () =
  let n = List.length cards in
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Sirius.create: need an even number (>= 2) of cards";
  let base = Params.scaled in
  let dpu_params = { base with Params.cpu_hz = base.Params.cpu_hz *. dpu_speedup } in
  List.iter
    (fun s -> ignore (Fabric.add_server fabric s ~params:dpu_params : Vswitch.t))
    cards;
  let arr = Array.of_list cards in
  let pairs =
    Array.init (n / 2) (fun i -> { primary = arr.(2 * i); backup = arr.((2 * i) + 1) })
  in
  let t =
    {
      fabric;
      pairs;
      buckets = Array.init buckets (fun i -> i mod (n / 2));
      served = Vnic.Addr.Table.create 8;
      dpu_params;
      connections = 0;
      pingpongs = 0;
      transfers = 0;
      cycles = 0;
    }
  in
  (* Install the pool datapath on every card. *)
  List.iter
    (fun s ->
      let vs = Fabric.vswitch fabric s in
      Vswitch.set_net_hook vs (Some (fun pkt ~outer -> card_hook t s pkt ~outer)))
    cards;
  t

and bucket_of t pkt = Five_tuple.session_hash pkt.Packet.flow mod Array.length t.buckets

and charge t vs ~cycles k =
  t.cycles <- t.cycles + cycles;
  Vswitch.charge vs ~cycles k

and sessions_for s pair_idx t =
  match Hashtbl.find_opt s.sessions pair_idx with
  | Some table -> table
  | None ->
    let table =
      Flow_table.create ~entry_overhead:0
        ~value_bytes:(fun e ->
          t.dpu_params.Params.session_entry_overhead
          + match e.state with Some _ -> t.dpu_params.Params.state_slot_bytes | None -> 0)
        ~default_aging:t.dpu_params.Params.flow_aging ()
    in
    Hashtbl.replace s.sessions pair_idx table;
    table

(* Full processing on the owning primary card: rules, flows and state are
   all here.  State-changing packets ping-pong through the backup. *)
and process_on_primary t s pair_idx pkt ~outer =
  let vs = Fabric.vswitch t.fabric t.pairs.(pair_idx).primary in
  let backup_vs = Fabric.vswitch t.fabric t.pairs.(pair_idx).backup in
  let table = sessions_for s pair_idx t in
  let key = Flow_key.of_packet_fields ~vpc:pkt.Packet.vpc ~flow:pkt.Packet.flow in
  let dir =
    if Ipv4.equal pkt.Packet.flow.Five_tuple.src s.vnic.Vnic.ip then Packet.Tx else Packet.Rx
  in
  let p = t.dpu_params in
  let finish pre verdict =
    match verdict with
    | Nf.Drop reason -> Vswitch.count_drop vs reason
    | Nf.Deliver ->
      let outer_dst =
        match dir with
        | Packet.Rx -> Topology.underlay_ip (Fabric.topology t.fabric) s.host
        | Packet.Tx -> (
          match pre.Pre_action.peer_server with
          | Some server -> server
          | None -> Vswitch.gateway vs)
      in
      Packet.encap_vxlan pkt ~vni:s.vni ~outer_src:(Vswitch.underlay_ip vs) ~outer_dst;
      Vswitch.emit vs (Vswitch.To_net pkt)
  in
  let run ~pre ~prior_state ~lookup_cycles ~fresh =
    let decap_src = Option.map (fun v -> v.Packet.outer_src) outer in
    let cycles =
      Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
      + lookup_cycles + p.Params.encap_cycles
      + if fresh then p.Params.session_setup_cycles else 0
    in
    charge t vs ~cycles (fun _ ->
        let verdict, out =
          Nf.process ~pre ~state:prior_state ~dir ~flags:pkt.Packet.flags
            ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt)
            ?decap_src ()
        in
        let store state =
          ignore
            (Flow_table.insert table ~now:(Sim.now (Vswitch.sim vs)) key { pre; state }
              : Admission.t)
        in
        match out with
        | Nf.Keep ->
          ignore (Flow_table.touch table ~now:(Sim.now (Vswitch.sim vs)) key : bool);
          finish pre verdict
        | Nf.Init st | Nf.Update st ->
          if out <> Nf.Keep && (match out with Nf.Init _ -> true | _ -> false) then
            t.connections <- t.connections + 1;
          store (Some st);
          (* In-line replication: the packet detours through the backup,
             which applies the same state write (§2.3.3).  The detour
             costs backup cycles plus two intra-pool hops before the
             packet continues. *)
          t.pingpongs <- t.pingpongs + 1;
          let hop =
            2.0
            *. Topology.latency (Fabric.topology t.fabric) t.pairs.(pair_idx).primary
                 t.pairs.(pair_idx).backup
          in
          let replicate_cycles =
            (* A brand-new session installs on the backup too — the full
               setup cost, which is why in-line replication halves the
               pool's CPS (§2.3.3). *)
            (match out with
            | Nf.Init _ -> p.Params.session_setup_cycles + p.Params.fast_path_cycles
            | Nf.Update _ | Nf.Keep -> p.Params.fast_path_cycles + p.Params.state_update_cycles)
            + Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
          in
          t.cycles <- t.cycles + replicate_cycles;
          if
            Smartnic.submit (Vswitch.nic backup_vs) ~cycles:replicate_cycles (fun sim ->
                ignore
                  (Sim.schedule sim ~delay:hop (fun _ -> finish pre verdict) : Sim.handle))
          then ()
          else Vswitch.count_drop backup_vs Nf.Queue_overflow)
  in
  match Flow_table.find table key with
  | Some { pre; state } ->
    run ~pre ~prior_state:state ~lookup_cycles:p.Params.fast_path_cycles ~fresh:false
  | None -> (
    match Hashtbl.find_opt s.replicas t.pairs.(pair_idx).primary with
    | None -> Vswitch.count_drop vs Nf.No_route
    | Some rs -> (
      let flow_tx =
        if dir = Packet.Tx then pkt.Packet.flow else Five_tuple.reverse pkt.Packet.flow
      in
      match Vswitch.slow_path vs rs ~vpc:pkt.Packet.vpc ~flow_tx with
      | None ->
        charge t vs ~cycles:p.Params.table_base_cycles (fun _ ->
            Vswitch.count_drop vs Nf.No_route)
      | Some { Ruleset.pre; cycles } -> run ~pre ~prior_state:None ~lookup_cycles:cycles ~fresh:true))

and card_hook t self pkt ~outer =
  let try_addr addr =
    match Vnic.Addr.Table.find_opt t.served addr with
    | None -> None
    | Some s -> Some s
  in
  let dst = { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.dst } in
  let src = { Vnic.Addr.vpc = pkt.Packet.vpc; ip = pkt.Packet.flow.Five_tuple.src } in
  match (try_addr dst, try_addr src) with
  | None, None -> `Continue
  | Some s, _ | None, Some s ->
    let pair_idx = t.buckets.(bucket_of t pkt) in
    let vs = Fabric.vswitch t.fabric self in
    if self = t.pairs.(pair_idx).primary then begin
      process_on_primary t s pair_idx pkt ~outer;
      `Handled
    end
    else begin
      (* Sender ECMP hashed to a card that does not own this bucket:
         forward to the owner (one intra-pool hop). *)
      let p = t.dpu_params in
      charge t vs ~cycles:(p.Params.fast_path_cycles / 2) (fun _ ->
          Packet.encap_vxlan pkt ~vni:s.vni ~outer_src:(Vswitch.underlay_ip vs)
            ~outer_dst:
              (Topology.underlay_ip (Fabric.topology t.fabric) t.pairs.(pair_idx).primary);
          Vswitch.emit vs (Vswitch.To_net pkt));
      `Handled
    end

let card_vswitches t =
  Array.to_list t.pairs
  |> List.concat_map (fun p -> [ Fabric.vswitch t.fabric p.primary; Fabric.vswitch t.fabric p.backup ])

let primary_ips t =
  Array.to_list t.pairs
  |> List.map (fun p -> Topology.underlay_ip (Fabric.topology t.fabric) p.primary)
  |> Array.of_list

let offload_vnic t ~server ~vnic =
  match Fabric.vswitch_opt t.fabric server with
  | None -> Error "no vSwitch on host"
  | Some host_vs -> (
    match (Vswitch.ruleset host_vs vnic, Vswitch.vnic_info host_vs vnic) with
    | None, _ -> Error "vNIC has no rule tables"
    | _, None -> Error "unknown vNIC"
    | Some rs, Some vnic_rec ->
      let addr = Vnic.addr vnic_rec in
      let replicas = Hashtbl.create 8 in
      Array.iter
        (fun pair ->
          List.iter
            (fun card ->
              let replica = Ruleset.clone rs in
              let card_vs = Fabric.vswitch t.fabric card in
              ignore
                (Smartnic.mem_reserve (Vswitch.nic card_vs) (Ruleset.memory_bytes replica)
                  : bool);
              Hashtbl.replace replicas card replica)
            [ pair.primary; pair.backup ])
        t.pairs;
      let s =
        { vnic = vnic_rec; vni = Ruleset.vni rs; host = server; replicas; sessions = Hashtbl.create 4 }
      in
      Vnic.Addr.Table.replace t.served addr s;
      (* The host becomes a thin pass-through: TX steers into the pool;
         RX (already fully processed by a card) goes straight to the VM. *)
      Vswitch.set_intercept host_vs vnic
        (Some
           {
             Vswitch.on_tx =
               (fun pkt ->
                 let pair_idx = t.buckets.(bucket_of t pkt) in
                 let p = Vswitch.params host_vs in
                 Vswitch.charge host_vs ~cycles:p.Params.encap_cycles (fun _ ->
                     Packet.encap_vxlan pkt ~vni:s.vni
                       ~outer_src:(Vswitch.underlay_ip host_vs)
                       ~outer_dst:
                         (Topology.underlay_ip (Fabric.topology t.fabric)
                            t.pairs.(pair_idx).primary);
                     Vswitch.emit host_vs (Vswitch.To_net pkt));
                 `Handled);
             on_rx =
               (fun pkt ->
                 let p = Vswitch.params host_vs in
                 Vswitch.charge host_vs ~cycles:(p.Params.fast_path_cycles / 4) (fun _ ->
                     Vswitch.deliver_local host_vs vnic pkt);
                 `Handled);
             on_tx_batch = None;
           });
      Vswitch.drop_ruleset host_vs vnic;
      (* Point the world at the pool. *)
      Gateway.set_route (Fabric.gateway t.fabric) addr (primary_ips t);
      List.iter
        (fun srv ->
          match Fabric.vswitch_opt t.fabric srv with
          | None -> ()
          | Some vs ->
            List.iter
              (fun vid ->
                match Vswitch.ruleset vs vid with
                | Some peer_rs when Ruleset.find_mapping peer_rs addr <> None ->
                  Ruleset.set_mapping_multi peer_rs addr (primary_ips t)
                | Some _ | None -> ())
              (Vswitch.vnic_ids vs))
        (Topology.servers (Fabric.topology t.fabric));
      Ok ())

let rebalance t =
  let n_pairs = Array.length t.pairs in
  let old = Array.copy t.buckets in
  Array.iteri (fun i _ -> t.buckets.(i) <- (old.(i) + 1) mod n_pairs) t.buckets;
  (* Long-lived sessions in moved buckets must follow their bucket:
     state transfer to the new owner. *)
  Vnic.Addr.Table.iter
    (fun _ s ->
      let moves = ref [] in
      Hashtbl.iter
        (fun pair_idx table ->
          Flow_table.iter table (fun key e ->
              let bucket = Five_tuple.session_hash key.Flow_key.flow mod Array.length t.buckets in
              let new_pair = t.buckets.(bucket) in
              if new_pair <> pair_idx then moves := (pair_idx, new_pair, key, e) :: !moves))
        s.sessions;
      List.iter
        (fun (old_pair, new_pair, key, e) ->
          let old_table = sessions_for s old_pair t in
          ignore (Flow_table.remove old_table key : bool);
          let new_table = sessions_for s new_pair t in
          ignore
            (Flow_table.insert new_table
               ~now:(Sim.now (Fabric.sim t.fabric))
               key e
              : Admission.t);
          t.transfers <- t.transfers + 1)
        !moves)
    t.served

let connections_processed t = t.connections
let replication_pingpongs t = t.pingpongs
let state_transfers t = t.transfers
let pool_cycles t = t.cycles
