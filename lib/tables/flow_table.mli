(** Exact-match session/flow table with aging and memory accounting.

    This is the fast-path table of §2.1: one bidirectional entry per
    session, found by exact match on {!Flow_key.t}.  Entries age out on a
    timer wheel; the per-entry aging time is overridable so incomplete
    (SYN-state) sessions can be expired early (§7.3).  Memory is accounted
    as a fixed per-entry overhead plus a caller-supplied variable part, and
    insertion fails when a capacity budget would be exceeded — which is
    precisely the mechanism that caps #concurrent flows on a SmartNIC. *)

type 'v t

val create :
  ?capacity_bytes:int ->
  entry_overhead:int ->
  value_bytes:('v -> int) ->
  default_aging:float ->
  unit ->
  'v t
(** [capacity_bytes] omitted means unbounded.  [default_aging] is the idle
    time after which an untouched entry expires.
    @raise Invalid_argument if [default_aging <= 0]. *)

val insert : 'v t -> now:float -> ?aging:float -> Flow_key.t -> 'v -> Admission.t
(** Insert or replace.  [Error `Table_full] when the entry does not fit
    in the remaining budget (existing binding, if any, is left
    untouched). *)

val find : 'v t -> Flow_key.t -> 'v option

val touch : 'v t -> now:float -> ?aging:float -> Flow_key.t -> bool
(** Refresh the aging deadline of an entry; [false] if absent. *)

val update : 'v t -> now:float -> Flow_key.t -> ('v -> 'v) -> bool
(** Mutate the value in place (memory accounting is refreshed) and touch
    it; [false] if absent. *)

val remove : 'v t -> Flow_key.t -> bool

val expire : 'v t -> now:float -> on_expire:(Flow_key.t -> 'v -> unit) -> int
(** Evict every entry idle past its aging time; returns the count.  Must
    be called with non-decreasing [now]. *)

val length : 'v t -> int
val memory_bytes : 'v t -> int
val capacity_bytes : 'v t -> int option
val iter : 'v t -> (Flow_key.t -> 'v -> unit) -> unit
val clear : 'v t -> unit
