(** Backend-parameterized packet classifier.

    One [verdict] API over two interchangeable engines: the {!Acl}
    linear scan (the reference oracle — simple, obviously correct) and
    {!Tss} tuple-space search (the default — cost grows with the number
    of distinct mask shapes, not rules).  The property tests require
    both backends to return identical verdicts, matched rule included.

    The underlying {!Acl.t} stays the source of truth: callers that hold
    the ACL handle (tenant rule updates go through [Ruleset.acl]) may
    mutate it directly, and the TSS index resyncs lazily via
    {!Acl.revision} before the next lookup. *)

open Nezha_net

type backend = Linear | Tuple_space

val backend_to_string : backend -> string

type t

val create : ?backend:backend -> ?default:Acl.action -> unit -> t
(** [backend] defaults to [Tuple_space], [default] to [Permit]. *)

val of_acl : ?backend:backend -> Acl.t -> t
(** Wrap an existing ACL; the index (if any) is built on first lookup. *)

val acl : t -> Acl.t
val backend : t -> backend

val add : t -> Acl.rule -> unit
val remove : t -> priority:int -> bool
val clear : t -> unit

type verdict = { action : Acl.action; rules_scanned : int; matched : Acl.rule option }
(** [rules_scanned] is the work measure fed to the CPU cost model: rules
    examined for [Linear]; hash probes + bucket entries for
    [Tuple_space]. *)

val lookup : t -> Five_tuple.t -> verdict
val lookup_reverse : t -> Five_tuple.t -> verdict
(** Verdict for the reversed tuple orientation, allocation-free. *)

val rule_count : t -> int

val tuple_count : t -> int
(** Distinct mask shapes in the TSS index; 0 for [Linear]. *)

val memory_bytes : t -> int
val revision : t -> int
val default_action : t -> Acl.action

val copy : t -> t
(** Independent duplicate; the copy rebuilds its own index lazily. *)
