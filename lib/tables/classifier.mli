(** Backend-parameterized packet classifier.

    One [verdict] API over interchangeable engines behind the {!BACKEND}
    module interface: the {!Acl} linear scan (the reference oracle —
    simple, obviously correct), {!Tss} tuple-space search (cost grows
    with the number of distinct mask shapes, not rules) and the
    {!Learned} range index (NuevoMatch-style computational cache — cost
    grows with neither, the regime that matters at 10k–100k rules).
    The property tests require all backends to return identical
    verdicts, matched rule included.

    The underlying {!Acl.t} stays the source of truth: callers that hold
    the ACL handle (tenant rule updates go through [Ruleset.acl]) may
    mutate it directly, and the derived index resyncs lazily via
    {!Acl.revision} before the next lookup.  Resync is also where the
    [Auto] {!policy} re-decides which backend fits the ruleset's shape —
    a classifier can start out tuple-space and flip to the learned index
    as the tenant's table grows. *)

open Nezha_net

type verdict = { action : Acl.action; rules_scanned : int; matched : Acl.rule option }
(** [rules_scanned] is the work measure fed to the CPU cost model —
    each backend charges what its algorithm actually does: rules
    examined for the linear scan; hash probes + bucket entries for
    tuple space; model evaluations + window-search steps + remainder
    probes for the learned index. *)

(** {1 The backend interface}

    A backend is a derived index over the ACL.  [build] reconstructs it
    from scratch in match order; [insert]/[remove] return [true] when
    the mutation was absorbed incrementally and [false] when the caller
    must schedule a rebuild (the facade leaves the index stale and
    rebuilds on the next lookup).  Implementations live in their own
    modules ({!Acl}, {!Tss}, {!Learned}); the structs here only adapt
    them to the common signature. *)
module type BACKEND = sig
  type t

  val name : string
  val create : default:Acl.action -> unit -> t

  val build : t -> Acl.t -> unit
  (** Full rebuild from the ACL in match order (priority ascending,
      insertion-stable), so every backend breaks priority ties
      identically. *)

  val insert : t -> Acl.rule -> bool
  val remove : t -> priority:int -> bool
  val clear : t -> unit
  val lookup : t -> Five_tuple.t -> verdict
  val lookup_reverse : t -> Five_tuple.t -> verdict

  val tuple_count : t -> int
  (** Distinct mask shapes the backend still searches hash-style (0 for
      the linear scan; the remainder set for the learned index). *)

  val memory_bytes : t -> int
end

module Linear_backend : BACKEND
module Tss_backend : BACKEND
module Learned_backend : BACKEND

type backend = Linear | Tuple_space | Learned
(** Thin constructor enum over the {!BACKEND} modules — the closed
    dispatch type is gone from the lookup path; this survives only as a
    name for configuration, policy pins and telemetry. *)

val backend_to_string : backend -> string
val backend_of_string : string -> backend option

val backend_code : backend -> int
(** Stable numeric id for telemetry gauges: linear = 0, tss = 1,
    learned = 2. *)

val backend_module : backend -> (module BACKEND)

(** {1 Selection policy} *)

type policy =
  | Auto
      (** Re-decided at every resync from the ruleset's shape: small
          tables and mask-diverse/wildcard-heavy tables stay on tuple
          space; large tables whose rules mostly constrain one address
          field move to the learned index. *)
  | Fixed of backend

val policy_to_string : policy -> string

val auto_rule_threshold : int
(** [Auto] considers the learned backend only at or above this many
    rules. *)

val auto_min_indexable : float
(** ... and only when {!Learned.indexable_fraction} reaches this bound
    (otherwise the remainder TSS would dominate and the model is pure
    overhead). *)

val select : Acl.t -> backend
(** The [Auto] decision function, exposed for tests and telemetry. *)

type t

val create : ?policy:policy -> ?backend:backend -> ?default:Acl.action -> unit -> t
(** [policy] defaults to [Auto]; [default] to [Permit].
    @deprecated [backend] — pre-policy spelling, equivalent to
    [~policy:(Fixed backend)]; ignored when [policy] is given. *)

val of_acl : ?policy:policy -> ?backend:backend -> Acl.t -> t
(** Wrap an existing ACL; the index is built (and under [Auto] the
    backend chosen) on first lookup. *)

val acl : t -> Acl.t
val policy : t -> policy

val backend : t -> backend
(** The backend currently serving lookups (syncs first, so a pending
    [Auto] re-selection is reflected). *)

val add : t -> Acl.rule -> unit
val remove : t -> priority:int -> bool
val clear : t -> unit

val lookup : t -> Five_tuple.t -> verdict
val lookup_reverse : t -> Five_tuple.t -> verdict
(** Verdict for the reversed tuple orientation, allocation-free. *)

val rule_count : t -> int

val tuple_count : t -> int
(** Mask shapes searched hash-style by the active backend. *)

val memory_bytes : t -> int
(** Memory charged to the active backend's index (the ACL itself for
    the linear scan). *)

val revision : t -> int
val default_action : t -> Acl.action

val copy : t -> t
(** Independent duplicate; the copy rebuilds its own index lazily. *)
