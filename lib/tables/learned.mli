(** Learned range-index classifier (NuevoMatch-style computational cache).

    *Scaling Open vSwitch with a Computational Cache* (NSDI '22) shows
    that most classification rules can be answered by a learned index
    over rule space in O(model depth), independent of rule count — the
    regime where both TSS (one probe per mask shape, and real rulesets
    grow shapes with size) and the linear scan lose.

    The construction here follows the paper's shape:

    - one {e index field} (source or destination address — whichever
      more rules constrain) turns each rule into an integer interval;
    - intervals are partitioned into {b iSets}: layers of mutually
      non-overlapping intervals (greedy activity selection), so within
      an iSet at most one interval can contain a lookup key and a single
      predicted position decides the candidate;
    - each iSet is indexed by a two-level {b RQ-RMI}: a root model maps
      the key to a trained linear leaf, the leaf predicts the interval's
      array position, and the leaf's recorded worst-case error bounds
      the search window (the {e error-window contract}: the true
      position is always within [±(err+1)] of the prediction for keys
      the leaf was trained on; boundary leakage is caught by a bracket
      check and widens the window, never returns a wrong rule);
    - rules that cannot be indexed — wildcard in the index field, or
      spilled past the iSet budget — form the {b remainder set}, a
      plain {!Tss} searched on every lookup.

    Verdicts are exactly {!Acl}'s: candidates are verified with the full
    rule match, and priority ties break on global insertion order across
    model and remainder.  The differential property tests hold this
    backend to the linear-scan oracle, matched rule included. *)

open Nezha_net

type t

val create : ?default:Acl.action -> unit -> t

val build : t -> Acl.t -> unit
(** Rebuild the whole index from the ACL in match order (priority
    ascending, insertion-stable) — the classifier calls this on every
    {!Acl.revision} change, like the TSS resync. *)

val insert : t -> Acl.rule -> unit
(** Incremental add: the rule joins the remainder set (correct
    immediately, indexed on the next rebuild) — how NuevoMatch absorbs
    rule updates without retraining per update. *)

val clear : t -> unit

type verdict = {
  action : Acl.action;
  model_evals : int;  (** root + leaf model evaluations *)
  window_scans : int;  (** binary-search steps inside error windows *)
  remainder_probes : int;  (** TSS work (probes + bucket scans) in the remainder *)
  matched : Acl.rule option;
  matched_order : int;  (** global insertion order of [matched]; -1 when none *)
}

val lookup : t -> Five_tuple.t -> verdict
val lookup_reverse : t -> Five_tuple.t -> verdict
(** Verdict for the reversed tuple orientation, allocation-free on the
    model path. *)

val rule_count : t -> int

(** {1 Index shape (telemetry, tests, selection heuristics)} *)

val iset_count : t -> int
val indexed_rules : t -> int
val remainder_rules : t -> int

val remainder_fraction : t -> float
(** [remainder_rules / rule_count]; 0 for an empty index. *)

val max_error : t -> int
(** Largest recorded leaf error across all iSets — the error-window
    contract's bound.  Lookup cost per iSet is O(2 + log2 err). *)

val remainder_tuple_count : t -> int
(** Mask shapes in the remainder TSS. *)

val memory_bytes : t -> int

val indexable_fraction : Acl.t -> float
(** Fraction of rules with a finite interval on the better index field —
    what {!Classifier}'s [Auto] policy consults before committing to a
    build (an upper bound on the indexed fraction; overlap layering can
    still spill some of these to the remainder). *)
