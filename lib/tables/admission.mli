(** The shared admission result for capacity-gated insertions.

    Every layer that accepts work against a finite budget — flow-table
    entries against SmartNIC memory, vNICs against an FE's rule memory,
    rulesets restored on fallback — answers the same question: was the
    thing admitted, and if not, which resource was exhausted?  Before
    this type each module answered with its own polymorphic variant
    ([[ `Ok | `Full ]] here, [[ `Ok | `No_memory ]] there), which made
    the results impossible to thread through common error paths.

    The type is a plain [result], so [Result.is_ok], [let*] and friends
    all apply. *)

type error =
  [ `No_memory  (** rule/ruleset memory on the NIC or FE is exhausted *)
  | `Table_full  (** the flow/session table's byte budget is exhausted *)
  ]

type t = (unit, error) result

val ok : t
(** [Ok ()]. *)

val no_memory : t
val table_full : t

val is_ok : t -> bool

val error_to_string : error -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val exn : ?context:string -> t -> unit
(** [exn r] is [()] on [Ok] and raises [Failure] otherwise — for call
    sites (tests, examples) that treat rejection as a bug. *)
