open Nezha_net

(* A tuple identifies the mask shape shared by a set of rules. *)
type tuple = {
  src_len : int; (* -1 = wildcard *)
  dst_len : int;
  has_src_ports : bool;
  has_dst_ports : bool;
  has_proto : bool;
}

type entry = { rule : Acl.rule; order : int }

(* Bucket key: the packet fields masked to the tuple's shape.  Plain
   ints (not int32) so probing boxes nothing. *)
type key = { ksrc : int; kdst : int; kproto : int }

module Key = struct
  type t = key

  let equal a b = a.ksrc = b.ksrc && a.kdst = b.kdst && a.kproto = b.kproto

  (* The multiplies alone never mix high bits downward, and prefix-aligned
     bases have all-zero low bits (a /16 base is [block lsl 16]) — under
     Hashtbl's power-of-two slot masking an aligned rule space would
     collapse into one chain that every probe then walks.  The
     splitmix64-style finisher folds the high bits back down. *)
  let hash k =
    let h = (k.ksrc * 0x9e3779b1) lxor (k.kdst * 0x85ebca6b) lxor k.kproto in
    let h = (h lxor (h lsr 29)) * 0xbf58476d1ce4e5b in
    (h lxor (h lsr 32)) land max_int
end

module Bucket_table = Hashtbl.Make (Key)

type space = { tuple : tuple; buckets : entry list ref Bucket_table.t }

type t = {
  default : Acl.action;
  mutable spaces : space list;
  mutable count : int;
  mutable next_order : int;
}

let create ?(default = Acl.Permit) () =
  { default; spaces = []; count = 0; next_order = 0 }

let[@inline] mask_bits len = if len <= 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let[@inline] mask_addr addr len =
  if len < 0 then 0 else Int32.to_int (Ipv4.to_int32 addr) land mask_bits len

let proto_code = Five_tuple.proto_code

let tuple_of_rule (r : Acl.rule) =
  {
    src_len = (match r.Acl.src with Some p -> Ipv4.Prefix.length p | None -> -1);
    dst_len = (match r.Acl.dst with Some p -> Ipv4.Prefix.length p | None -> -1);
    has_src_ports = r.Acl.src_ports <> None;
    has_dst_ports = r.Acl.dst_ports <> None;
    has_proto = r.Acl.proto <> None;
  }

let key_of_rule tuple (r : Acl.rule) =
  {
    ksrc = (match r.Acl.src with Some p -> mask_addr (Ipv4.Prefix.base p) tuple.src_len | None -> 0);
    kdst = (match r.Acl.dst with Some p -> mask_addr (Ipv4.Prefix.base p) tuple.dst_len | None -> 0);
    kproto = (match r.Acl.proto with Some p -> proto_code p | None -> -1);
  }

let key_of_packet tuple (t5 : Five_tuple.t) =
  {
    ksrc = mask_addr t5.Five_tuple.src tuple.src_len;
    kdst = mask_addr t5.Five_tuple.dst tuple.dst_len;
    kproto = (if tuple.has_proto then proto_code t5.Five_tuple.proto else -1);
  }

(* The same packet seen in the reverse orientation: src/dst swap roles. *)
let key_of_packet_rev tuple (t5 : Five_tuple.t) =
  {
    ksrc = mask_addr t5.Five_tuple.dst tuple.src_len;
    kdst = mask_addr t5.Five_tuple.src tuple.dst_len;
    kproto = (if tuple.has_proto then proto_code t5.Five_tuple.proto else -1);
  }

(* [order] overrides the insertion sequence number: the learned
   classifier keeps its remainder set here and needs remainder entries
   to share one global match order with its model-indexed entries. *)
let add ?order t rule =
  let tuple = tuple_of_rule rule in
  let space =
    match List.find_opt (fun s -> s.tuple = tuple) t.spaces with
    | Some s -> s
    | None ->
      let s = { tuple; buckets = Bucket_table.create 64 } in
      t.spaces <- s :: t.spaces;
      s
  in
  let key = key_of_rule tuple rule in
  let seq = match order with Some o -> o | None -> t.next_order in
  let entry = { rule; order = seq } in
  t.next_order <- max t.next_order (seq + 1);
  (match Bucket_table.find_opt space.buckets key with
  | Some cell -> cell := entry :: !cell
  | None -> Bucket_table.replace space.buckets key (ref [ entry ]));
  t.count <- t.count + 1

let remove t ~priority =
  let removed = ref false in
  List.iter
    (fun space ->
      Bucket_table.iter
        (fun _ cell ->
          let keep = List.filter (fun e -> e.rule.Acl.priority <> priority) !cell in
          if List.length keep <> List.length !cell then begin
            removed := true;
            t.count <- t.count - (List.length !cell - List.length keep);
            cell := keep
          end)
        space.buckets)
    t.spaces;
  !removed

let clear t =
  t.spaces <- [];
  t.count <- 0

type verdict = {
  action : Acl.action;
  tuples_probed : int;
  bucket_scans : int;
  matched : Acl.rule option;
  matched_order : int; (* insertion order of [matched]; -1 when none *)
}

(* Matching (Acl.matches) still verifies the full rule: the hash probe
   only narrows candidates; port ranges in particular are checked here. *)
let lookup_gen t t5 ~rev =
  let key_of = if rev then key_of_packet_rev else key_of_packet in
  let verify = if rev then Acl.matches_reverse else Acl.matches in
  let best = ref None in
  let probes = ref 0 and scans = ref 0 in
  List.iter
    (fun space ->
      incr probes;
      match Bucket_table.find_opt space.buckets (key_of space.tuple t5) with
      | None -> ()
      | Some cell ->
        List.iter
          (fun e ->
            incr scans;
            if verify e.rule t5 then begin
              let better =
                match !best with
                | None -> true
                | Some b ->
                  e.rule.Acl.priority < b.rule.Acl.priority
                  || (e.rule.Acl.priority = b.rule.Acl.priority && e.order < b.order)
              in
              if better then best := Some e
            end)
          !cell)
    t.spaces;
  match !best with
  | Some e ->
    { action = e.rule.Acl.action; tuples_probed = !probes; bucket_scans = !scans;
      matched = Some e.rule; matched_order = e.order }
  | None ->
    { action = t.default; tuples_probed = !probes; bucket_scans = !scans; matched = None;
      matched_order = -1 }

let lookup t t5 = lookup_gen t t5 ~rev:false
let lookup_reverse t t5 = lookup_gen t t5 ~rev:true

let rule_count t = t.count
let tuple_count t = List.length t.spaces

let rule_bytes = 48
let tuple_overhead = 64

let memory_bytes t = (t.count * rule_bytes) + (tuple_count t * tuple_overhead)
