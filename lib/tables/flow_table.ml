open Nezha_engine

type 'v entry = {
  key : Flow_key.t; (* interned at first insert; re-arms reuse it *)
  mutable value : 'v;
  mutable bytes : int; (* total accounted size, overhead included *)
  mutable timer : Flow_key.t Timer_wheel.timer;
}

type 'v t = {
  capacity : int option;
  entry_overhead : int;
  value_bytes : 'v -> int;
  default_aging : float;
  entries : 'v entry Flow_key.Table.t;
  wheel : Flow_key.t Timer_wheel.t;
  mutable used_bytes : int;
}

let create ?capacity_bytes ~entry_overhead ~value_bytes ~default_aging () =
  if default_aging <= 0.0 then invalid_arg "Flow_table.create: aging must be positive";
  {
    capacity = capacity_bytes;
    entry_overhead;
    value_bytes;
    default_aging;
    entries = Flow_key.Table.create 1024;
    (* Tick at 1/8 of the aging time: expiry error stays under ~12%. *)
    wheel = Timer_wheel.create ~tick:(default_aging /. 8.0) ~slots:256;
    used_bytes = 0;
  }

let entry_size t v = t.entry_overhead + t.value_bytes v

let fits t extra =
  match t.capacity with None -> true | Some cap -> t.used_bytes + extra <= cap

let arm t ~now ~aging key =
  Timer_wheel.add t.wheel ~now ~deadline:(now +. aging) key

let insert t ~now ?aging key v =
  let aging = Option.value aging ~default:t.default_aging in
  match Flow_key.Table.find_opt t.entries key with
  | Some e ->
    let nbytes = entry_size t v in
    if fits t (nbytes - e.bytes) then begin
      t.used_bytes <- t.used_bytes + nbytes - e.bytes;
      e.value <- v;
      e.bytes <- nbytes;
      Timer_wheel.cancel e.timer;
      e.timer <- arm t ~now ~aging e.key;
      Admission.ok
    end
    else Admission.table_full
  | None ->
    let nbytes = entry_size t v in
    if fits t nbytes then begin
      let e = { key; value = v; bytes = nbytes; timer = arm t ~now ~aging key } in
      Flow_key.Table.replace t.entries key e;
      t.used_bytes <- t.used_bytes + nbytes;
      Admission.ok
    end
    else Admission.table_full

let find t key =
  match Flow_key.Table.find_opt t.entries key with
  | Some e -> Some e.value
  | None -> None

let touch t ~now ?aging key =
  let aging = Option.value aging ~default:t.default_aging in
  match Flow_key.Table.find_opt t.entries key with
  | None -> false
  | Some e ->
    Timer_wheel.cancel e.timer;
    e.timer <- arm t ~now ~aging e.key;
    true

let update t ~now key f =
  match Flow_key.Table.find_opt t.entries key with
  | None -> false
  | Some e ->
    let v = f e.value in
    let nbytes = entry_size t v in
    t.used_bytes <- t.used_bytes + nbytes - e.bytes;
    e.value <- v;
    e.bytes <- nbytes;
    Timer_wheel.cancel e.timer;
    e.timer <- arm t ~now ~aging:t.default_aging e.key;
    true

let remove t key =
  match Flow_key.Table.find_opt t.entries key with
  | None -> false
  | Some e ->
    Timer_wheel.cancel e.timer;
    Flow_key.Table.remove t.entries key;
    t.used_bytes <- t.used_bytes - e.bytes;
    true

let expire t ~now ~on_expire =
  let fired = ref 0 in
  ignore
    (Timer_wheel.advance t.wheel ~now (fun key ->
         match Flow_key.Table.find_opt t.entries key with
         | None -> ()
         | Some e ->
           Flow_key.Table.remove t.entries key;
           t.used_bytes <- t.used_bytes - e.bytes;
           incr fired;
           on_expire key e.value)
      : int);
  !fired

let length t = Flow_key.Table.length t.entries
let memory_bytes t = t.used_bytes
let capacity_bytes t = t.capacity

let iter t f = Flow_key.Table.iter (fun k e -> f k e.value) t.entries

let clear t =
  Flow_key.Table.iter (fun _ e -> Timer_wheel.cancel e.timer) t.entries;
  Flow_key.Table.reset t.entries;
  t.used_bytes <- 0
