type error =
  [ `No_memory
  | `Table_full
  ]

type t = (unit, error) result

let ok : t = Ok ()
let no_memory : t = Error `No_memory
let table_full : t = Error `Table_full

let is_ok = function Ok () -> true | Error _ -> false

let error_to_string = function
  | `No_memory -> "no_memory"
  | `Table_full -> "table_full"

let to_string = function
  | Ok () -> "ok"
  | Error e -> error_to_string e

let pp ppf t = Format.pp_print_string ppf (to_string t)

let exn ?context t =
  match t with
  | Ok () -> ()
  | Error e ->
    let what = error_to_string e in
    failwith
      (match context with
      | Some c -> Printf.sprintf "%s: admission rejected (%s)" c what
      | None -> Printf.sprintf "admission rejected (%s)" what)
