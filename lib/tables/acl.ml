open Nezha_net

type action = Permit | Deny

let pp_action ppf a = Format.pp_print_string ppf (match a with Permit -> "permit" | Deny -> "deny")

type rule = {
  priority : int;
  src : Ipv4.Prefix.t option;
  dst : Ipv4.Prefix.t option;
  src_ports : (int * int) option;
  dst_ports : (int * int) option;
  proto : Five_tuple.proto option;
  action : action;
}

let rule ?src ?dst ?src_ports ?dst_ports ?proto ~priority action =
  { priority; src; dst; src_ports; dst_ports; proto; action }

let in_range p (lo, hi) = p >= lo && p <= hi

(* Field-level matching so the reverse-orientation check (the RX half of
   the slow path) can run without materializing a reversed tuple. *)
let[@inline] matches_fields r ~src ~dst ~src_port ~dst_port ~proto =
  (match r.src with None -> true | Some p -> Ipv4.Prefix.mem src p)
  && (match r.dst with None -> true | Some p -> Ipv4.Prefix.mem dst p)
  && (match r.src_ports with None -> true | Some range -> in_range src_port range)
  && (match r.dst_ports with None -> true | Some range -> in_range dst_port range)
  && match r.proto with None -> true | Some p -> p = proto

let matches r (t : Five_tuple.t) =
  matches_fields r ~src:t.Five_tuple.src ~dst:t.Five_tuple.dst ~src_port:t.Five_tuple.src_port
    ~dst_port:t.Five_tuple.dst_port ~proto:t.Five_tuple.proto

let matches_reverse r (t : Five_tuple.t) =
  matches_fields r ~src:t.Five_tuple.dst ~dst:t.Five_tuple.src ~src_port:t.Five_tuple.dst_port
    ~dst_port:t.Five_tuple.src_port ~proto:t.Five_tuple.proto

type t = {
  mutable rules : rule list; (* sorted by priority ascending, stable *)
  mutable count : int;
  default : action;
  mutable revision : int; (* bumped on every mutation *)
}

let create ?(default = Permit) () = { rules = []; count = 0; default; revision = 0 }

(* [add] keeps the list sorted by insertion, which is O(n) per rule —
   fine for control-plane churn, quadratic for loading a 100k-rule
   table.  Bulk construction sorts once; the stable sort preserves list
   order within equal priorities, so tie-breaks match a sequence of
   [add]s. *)
let of_rules ?(default = Permit) rules =
  let sorted = List.stable_sort (fun a b -> compare a.priority b.priority) rules in
  { rules = sorted; count = List.length sorted; default; revision = 1 }

let add t r =
  let rec place = function
    | [] -> [ r ]
    | hd :: tl -> if r.priority < hd.priority then r :: hd :: tl else hd :: place tl
  in
  t.rules <- place t.rules;
  t.count <- t.count + 1;
  t.revision <- t.revision + 1

let remove t ~priority =
  let before = t.count in
  t.rules <- List.filter (fun r -> r.priority <> priority) t.rules;
  t.count <- List.length t.rules;
  t.revision <- t.revision + 1;
  t.count <> before

let clear t =
  t.rules <- [];
  t.count <- 0;
  t.revision <- t.revision + 1

type verdict = { action : action; rules_scanned : int; matched : rule option }

let lookup t tuple =
  let rec scan rules n =
    match rules with
    | [] -> { action = t.default; rules_scanned = n; matched = None }
    | r :: rest ->
      if matches r tuple then { action = r.action; rules_scanned = n + 1; matched = Some r }
      else scan rest (n + 1)
  in
  scan t.rules 0

let lookup_reverse t tuple =
  let rec scan rules n =
    match rules with
    | [] -> { action = t.default; rules_scanned = n; matched = None }
    | r :: rest ->
      if matches_reverse r tuple then
        { action = r.action; rules_scanned = n + 1; matched = Some r }
      else scan rest (n + 1)
  in
  scan t.rules 0

let iter_rules t f = List.iter f t.rules

let revision t = t.revision

let rule_count t = t.count

(* TCAM-style accounting: each rule occupies a fixed-width match line
   (src/dst prefix + mask, two port ranges, proto, priority, action). *)
let rule_bytes = 48

let memory_bytes t = t.count * rule_bytes

let default_action t = t.default

let copy t = { rules = t.rules; count = t.count; default = t.default; revision = t.revision }
