(** Tuple-space-search packet classifier.

    The paper's Table A1 shows ACL lookup cost growing only ~18% from 0
    to 1000 rules — production classifiers are not linear scans.  This is
    the classic tuple-space search (Srinivasan & Varghese): rules are
    bucketed by their mask "tuple" (source prefix length, destination
    prefix length, port-range presence, protocol presence); a lookup
    probes one hash table per distinct tuple, so cost grows with the
    number of *tuples* (typically tens), not rules (thousands).

    Functionally equivalent to {!Acl} — the property tests enforce it —
    and exposes the probe count so cost models can charge what the
    algorithm actually does. *)

open Nezha_net

type t

val create : ?default:Acl.action -> unit -> t

val add : ?order:int -> t -> Acl.rule -> unit
(** Port-range rules are supported by treating range presence as part of
    the tuple and scanning within the (small) bucket on hash hit.
    [order] (default: next in sequence) sets the entry's tie-break rank —
    {!Learned} stores its remainder set here and needs remainder entries
    ranked against its model-indexed entries in one global match order. *)

val remove : t -> priority:int -> bool
val clear : t -> unit

type verdict = {
  action : Acl.action;
  tuples_probed : int;  (** hash tables visited *)
  bucket_scans : int;  (** rules examined inside matching buckets *)
  matched : Acl.rule option;
  matched_order : int;  (** insertion order of [matched]; -1 when none *)
}

val lookup : t -> Five_tuple.t -> verdict
(** Highest-priority (lowest number; ties broken by insertion order, as
    in {!Acl}) match across all tuples, or the default action. *)

val lookup_reverse : t -> Five_tuple.t -> verdict
(** Verdict for the reversed orientation of the tuple, without
    allocating the reversed tuple (cf. {!Acl.lookup_reverse}). *)

val rule_count : t -> int
val tuple_count : t -> int
val memory_bytes : t -> int
