type backend = Linear | Tuple_space

let backend_to_string = function Linear -> "linear" | Tuple_space -> "tss"

type t = {
  acl : Acl.t; (* source of truth and reference oracle *)
  backend : backend;
  index : Tss.t; (* derived index, used by Tuple_space only *)
  mutable synced_revision : int; (* Acl revision the index reflects; min_int = never *)
}

let of_acl ?(backend = Tuple_space) acl =
  {
    acl;
    backend;
    index = Tss.create ~default:(Acl.default_action acl) ();
    synced_revision = min_int;
  }

let create ?backend ?(default = Acl.Permit) () = of_acl ?backend (Acl.create ~default ())

let acl t = t.acl
let backend t = t.backend
let default_action t = Acl.default_action t.acl
let revision t = Acl.revision t.acl

(* The ACL may also be mutated through its own handle (tenant updates go
   through [Ruleset.acl]); the revision check catches that and rebuilds
   the index before the next lookup. *)
let sync t =
  match t.backend with
  | Linear -> ()
  | Tuple_space ->
    let rev = Acl.revision t.acl in
    if rev <> t.synced_revision then begin
      Tss.clear t.index;
      (* Match order (priority ascending, insertion-stable) becomes TSS
         insertion order, so both backends break ties identically. *)
      Acl.iter_rules t.acl (fun r -> Tss.add t.index r);
      t.synced_revision <- rev
    end

let add t r =
  let before = Acl.revision t.acl in
  Acl.add t.acl r;
  match t.backend with
  | Linear -> ()
  | Tuple_space ->
    if t.synced_revision = before then begin
      Tss.add t.index r;
      t.synced_revision <- Acl.revision t.acl
    end

let remove t ~priority =
  let before = Acl.revision t.acl in
  let removed = Acl.remove t.acl ~priority in
  (match t.backend with
  | Linear -> ()
  | Tuple_space ->
    if t.synced_revision = before then begin
      ignore (Tss.remove t.index ~priority : bool);
      t.synced_revision <- Acl.revision t.acl
    end);
  removed

let clear t =
  Acl.clear t.acl;
  match t.backend with
  | Linear -> ()
  | Tuple_space ->
    Tss.clear t.index;
    t.synced_revision <- Acl.revision t.acl

type verdict = { action : Acl.action; rules_scanned : int; matched : Acl.rule option }

(* For the TSS backend [rules_scanned] charges what the algorithm does:
   one unit per tuple-space hash probe plus one per bucket entry
   examined.  Feeding that into [Params.rule_lookup_cycles] keeps the
   log2(1+work) cost model meaningful across backends. *)
let lookup t t5 =
  match t.backend with
  | Linear ->
    let v = Acl.lookup t.acl t5 in
    { action = v.Acl.action; rules_scanned = v.Acl.rules_scanned; matched = v.Acl.matched }
  | Tuple_space ->
    sync t;
    let v = Tss.lookup t.index t5 in
    {
      action = v.Tss.action;
      rules_scanned = v.Tss.tuples_probed + v.Tss.bucket_scans;
      matched = v.Tss.matched;
    }

let lookup_reverse t t5 =
  match t.backend with
  | Linear ->
    let v = Acl.lookup_reverse t.acl t5 in
    { action = v.Acl.action; rules_scanned = v.Acl.rules_scanned; matched = v.Acl.matched }
  | Tuple_space ->
    sync t;
    let v = Tss.lookup_reverse t.index t5 in
    {
      action = v.Tss.action;
      rules_scanned = v.Tss.tuples_probed + v.Tss.bucket_scans;
      matched = v.Tss.matched;
    }

let rule_count t = Acl.rule_count t.acl

let tuple_count t =
  match t.backend with
  | Linear -> 0
  | Tuple_space ->
    sync t;
    Tss.tuple_count t.index

let memory_bytes t =
  match t.backend with
  | Linear -> Acl.memory_bytes t.acl
  | Tuple_space ->
    sync t;
    Tss.memory_bytes t.index

let copy t = of_acl ~backend:t.backend (Acl.copy t.acl)
