open Nezha_net

type verdict = { action : Acl.action; rules_scanned : int; matched : Acl.rule option }

module type BACKEND = sig
  type t

  val name : string
  val create : default:Acl.action -> unit -> t
  val build : t -> Acl.t -> unit
  val insert : t -> Acl.rule -> bool
  val remove : t -> priority:int -> bool
  val clear : t -> unit
  val lookup : t -> Five_tuple.t -> verdict
  val lookup_reverse : t -> Five_tuple.t -> verdict
  val tuple_count : t -> int
  val memory_bytes : t -> int
end

(* The linear backend has no derived state: [build] captures the live
   ACL handle and lookups read it directly, which is what makes it the
   reference oracle — it can never be stale. *)
module Linear_backend = struct
  type t = { mutable acl : Acl.t }

  let name = "linear"
  let create ~default () = { acl = Acl.create ~default () }
  let build t acl = t.acl <- acl
  let insert _ _ = true
  let remove _ ~priority:_ = true
  let clear _ = ()

  let lookup t t5 =
    let v = Acl.lookup t.acl t5 in
    { action = v.Acl.action; rules_scanned = v.Acl.rules_scanned; matched = v.Acl.matched }

  let lookup_reverse t t5 =
    let v = Acl.lookup_reverse t.acl t5 in
    { action = v.Acl.action; rules_scanned = v.Acl.rules_scanned; matched = v.Acl.matched }

  let tuple_count _ = 0
  let memory_bytes t = Acl.memory_bytes t.acl
end

module Tss_backend = struct
  type t = Tss.t

  let name = "tss"
  let create ~default () = Tss.create ~default ()

  let build t acl =
    Tss.clear t;
    (* Match order becomes TSS insertion order, so ties break as the
       oracle breaks them. *)
    Acl.iter_rules acl (fun r -> Tss.add t r)

  let insert t r =
    Tss.add t r;
    true

  let remove t ~priority =
    ignore (Tss.remove t ~priority : bool);
    true

  let clear = Tss.clear

  let verdict_of (v : Tss.verdict) =
    {
      action = v.Tss.action;
      rules_scanned = v.Tss.tuples_probed + v.Tss.bucket_scans;
      matched = v.Tss.matched;
    }

  let lookup t t5 = verdict_of (Tss.lookup t t5)
  let lookup_reverse t t5 = verdict_of (Tss.lookup_reverse t t5)
  let tuple_count = Tss.tuple_count
  let memory_bytes = Tss.memory_bytes
end

module Learned_backend = struct
  type t = Learned.t

  let name = "learned"
  let create ~default () = Learned.create ~default ()
  let build = Learned.build

  let insert t r =
    (* Joins the remainder set — correct immediately, indexed on the
       next full rebuild. *)
    Learned.insert t r;
    true

  let remove _ ~priority:_ = false (* model arrays are immutable: rebuild *)
  let clear = Learned.clear

  let verdict_of (v : Learned.verdict) =
    {
      action = v.Learned.action;
      rules_scanned = v.Learned.model_evals + v.Learned.window_scans + v.Learned.remainder_probes;
      matched = v.Learned.matched;
    }

  let lookup t t5 = verdict_of (Learned.lookup t t5)
  let lookup_reverse t t5 = verdict_of (Learned.lookup_reverse t t5)
  let tuple_count = Learned.remainder_tuple_count
  let memory_bytes = Learned.memory_bytes
end

type backend = Linear | Tuple_space | Learned

let backend_to_string = function
  | Linear -> "linear"
  | Tuple_space -> "tss"
  | Learned -> "learned"

let backend_of_string = function
  | "linear" -> Some Linear
  | "tss" | "tuple_space" -> Some Tuple_space
  | "learned" -> Some Learned
  | _ -> None

let backend_code = function Linear -> 0 | Tuple_space -> 1 | Learned -> 2

let backend_module : backend -> (module BACKEND) = function
  | Linear -> (module Linear_backend)
  | Tuple_space -> (module Tss_backend)
  | Learned -> (module Learned_backend)

type policy = Auto | Fixed of backend

let policy_to_string = function
  | Auto -> "auto"
  | Fixed b -> "fixed:" ^ backend_to_string b

(* Auto-selection thresholds.  Below [auto_rule_threshold] the TSS probe
   list is short and model training is not worth the rebuild cost; the
   learned index also needs most rules to yield a finite interval on one
   address field, or its remainder TSS dominates and the model is pure
   overhead. *)
let auto_rule_threshold = 4096
let auto_min_indexable = 0.75

let select acl =
  if Acl.rule_count acl < auto_rule_threshold then Tuple_space
  else if Learned.indexable_fraction acl < auto_min_indexable then Tuple_space
  else Learned

(* A backend instance packed with its module: the facade dispatches
   through the interface, never over the constructor enum. *)
type instance = Inst : (module BACKEND with type t = 'a) * 'a -> instance

let instantiate backend ~default =
  match backend_module backend with
  | (module B : BACKEND) -> Inst ((module B), B.create ~default ())

type t = {
  acl : Acl.t; (* source of truth and reference oracle *)
  policy : policy;
  mutable chosen : backend;
  mutable inst : instance;
  mutable synced_revision : int; (* Acl revision the index reflects; min_int = never *)
}

let of_acl ?policy ?backend acl =
  let policy =
    match (policy, backend) with
    | Some p, _ -> p
    | None, Some b -> Fixed b (* deprecated ?backend shim *)
    | None, None -> Auto
  in
  let chosen = match policy with Fixed b -> b | Auto -> select acl in
  {
    acl;
    policy;
    chosen;
    inst = instantiate chosen ~default:(Acl.default_action acl);
    synced_revision = min_int;
  }

let create ?policy ?backend ?(default = Acl.Permit) () =
  of_acl ?policy ?backend (Acl.create ~default ())

let acl t = t.acl
let policy t = t.policy
let default_action t = Acl.default_action t.acl
let revision t = Acl.revision t.acl

(* The ACL may also be mutated through its own handle (tenant updates go
   through [Ruleset.acl]); the revision check catches that and rebuilds
   the index before the next lookup.  The rebuild is also where [Auto]
   re-decides the backend, so a table that grew past the threshold since
   the last sync comes back as a learned index. *)
let sync t =
  let rev = Acl.revision t.acl in
  if rev <> t.synced_revision then begin
    let want = match t.policy with Auto -> select t.acl | Fixed b -> b in
    if want <> t.chosen then begin
      t.chosen <- want;
      t.inst <- instantiate want ~default:(Acl.default_action t.acl)
    end;
    let (Inst ((module B), b)) = t.inst in
    B.build b t.acl;
    t.synced_revision <- rev
  end

let backend t =
  sync t;
  t.chosen

(* Incremental mutation fast path: only valid while the index is in sync
   and the mutation cannot flip an [Auto] decision.  The selection
   function is O(rules), so the add path never calls it — it only checks
   the cheap size trigger (crossing the threshold exactly) and defers
   the real decision to the next sync. *)
let add t r =
  let before = Acl.revision t.acl in
  Acl.add t.acl r;
  if t.synced_revision = before then begin
    let selection_stable =
      match t.policy with
      | Fixed _ -> true
      | Auto -> not (Acl.rule_count t.acl = auto_rule_threshold && t.chosen <> Learned)
    in
    if selection_stable then begin
      let (Inst ((module B), b)) = t.inst in
      if B.insert b r then t.synced_revision <- Acl.revision t.acl
    end
  end

let remove t ~priority =
  let before = Acl.revision t.acl in
  let removed = Acl.remove t.acl ~priority in
  if t.synced_revision = before then begin
    if not removed then
      (* Revision bumped but nothing changed: the index is still exact. *)
      t.synced_revision <- Acl.revision t.acl
    else begin
      let (Inst ((module B), b)) = t.inst in
      if B.remove b ~priority then t.synced_revision <- Acl.revision t.acl
    end
  end;
  removed

let clear t =
  Acl.clear t.acl;
  let (Inst ((module B), b)) = t.inst in
  B.clear b
(* synced_revision left stale on purpose: the next lookup re-runs
   selection (under [Auto] an empty table drops back to tuple space)
   and rebuilds, which on an empty ACL is free. *)

let lookup t t5 =
  sync t;
  let (Inst ((module B), b)) = t.inst in
  B.lookup b t5

let lookup_reverse t t5 =
  sync t;
  let (Inst ((module B), b)) = t.inst in
  B.lookup_reverse b t5

let rule_count t = Acl.rule_count t.acl

let tuple_count t =
  sync t;
  let (Inst ((module B), b)) = t.inst in
  B.tuple_count b

let memory_bytes t =
  sync t;
  let (Inst ((module B), b)) = t.inst in
  B.memory_bytes b

let copy t = of_acl ~policy:t.policy (Acl.copy t.acl)
