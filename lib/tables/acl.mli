(** Access-control list with prefix, port-range and protocol matching.

    ACL lookup is the expensive part of the slow path (§2.2.2, Table A1:
    throughput falls as #rules grows).  The implementation scans rules in
    priority order and reports how many rules were examined, so the CPU
    model can charge per-rule work exactly as the paper measures it. *)

open Nezha_net

type action = Permit | Deny

val pp_action : Format.formatter -> action -> unit

type rule = {
  priority : int;  (** lower value = matched first *)
  src : Ipv4.Prefix.t option;  (** [None] = any *)
  dst : Ipv4.Prefix.t option;
  src_ports : (int * int) option;  (** inclusive range; [None] = any *)
  dst_ports : (int * int) option;
  proto : Five_tuple.proto option;
  action : action;
}

val rule :
  ?src:Ipv4.Prefix.t ->
  ?dst:Ipv4.Prefix.t ->
  ?src_ports:int * int ->
  ?dst_ports:int * int ->
  ?proto:Five_tuple.proto ->
  priority:int ->
  action ->
  rule

val matches : rule -> Five_tuple.t -> bool

val matches_reverse : rule -> Five_tuple.t -> bool
(** [matches_reverse r t] = [matches r (Five_tuple.reverse t)] without
    allocating the reversed tuple — the RX half of the slow path checks
    the return direction of every new session. *)

type t

val create : ?default:action -> unit -> t
(** [default] (applied when no rule matches) defaults to [Permit]. *)

val of_rules : ?default:action -> rule list -> t
(** Bulk construction: one stable sort instead of n sorted inserts —
    the only sane way to load the 10k/100k-rule tables of the slow-path
    memory wall (§2.3).  Equivalent to [add]ing the rules in list
    order. *)

val add : t -> rule -> unit
val remove : t -> priority:int -> bool
(** Remove all rules at the given priority; [true] if any were removed. *)

val clear : t -> unit

type verdict = { action : action; rules_scanned : int; matched : rule option }

val lookup : t -> Five_tuple.t -> verdict

val lookup_reverse : t -> Five_tuple.t -> verdict
(** Verdict for the reversed orientation of [tuple], allocation-free. *)

val iter_rules : t -> (rule -> unit) -> unit
(** Iterate rules in match order (priority ascending, insertion-stable) —
    what classifier backends rebuild their indexes from. *)

val revision : t -> int
(** Bumped on every {!add}/{!remove}/{!clear}; lets derived indexes and
    caches detect staleness without owning every mutation path. *)

val rule_count : t -> int
val memory_bytes : t -> int

val default_action : t -> action

val copy : t -> t
(** Independent duplicate (used to replicate rule tables onto FEs). *)
