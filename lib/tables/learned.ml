open Nezha_net

(* Tunables.  [leaf_target] keys per RMI leaf keeps leaf training cheap
   and windows small; [max_isets] bounds lookup cost on adversarial
   rulesets (each extra layer is one more model probe); a layering pass
   that yields fewer than [min_pass] intervals stops the partitioner —
   the tail is cheaper to leave in the remainder TSS than to probe as
   near-empty iSets. *)
let leaf_target = 64
let max_leaves = 4096
let max_isets = 16
let min_pass n = max 4 (n / 100)

type axis = Src | Dst

(* One layer of non-overlapping intervals, sorted ascending.  Struct of
   arrays throughout — [lo]/[hi]/[orders] are unboxed int arrays and the
   leaf models live in flat float arrays (a leaf *record* array would
   box every slope load behind a pointer on the hot path). *)
type iset = {
  lo : int array;
  hi : int array;
  rules : Acl.rule array;
  orders : int array;
  slopes : float array;
  intercepts : float array;
  errs : int array;
  kmin : int;
  kmax : int;
  kspan : int; (* kmax - kmin + 1 *)
}

type t = {
  default : Acl.action;
  mutable axis : axis;
  mutable isets : iset array;
  mutable remainder : Tss.t;
  mutable total : int;
  mutable next_order : int;
}

let create ?(default = Acl.Permit) () =
  {
    default;
    axis = Dst;
    isets = [||];
    remainder = Tss.create ~default ();
    total = 0;
    next_order = 0;
  }

let[@inline] mask_bits len = if len <= 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

(* The rule's match range on [axis] as a closed integer interval;
   [None] when the field is wildcarded (the rule cannot be indexed). *)
let interval_of_rule axis (r : Acl.rule) =
  let field = match axis with Src -> r.Acl.src | Dst -> r.Acl.dst in
  match field with
  | None -> None
  | Some p ->
    let m = mask_bits (Ipv4.Prefix.length p) in
    let base = Int32.to_int (Ipv4.to_int32 (Ipv4.Prefix.base p)) land m in
    Some (base, base lor (lnot m land 0xffffffff))

let clear t =
  t.isets <- [||];
  t.remainder <- Tss.create ~default:t.default ();
  t.total <- 0;
  t.next_order <- 0

(* ------------------------------------------------------------------ *)
(* Build: partition into iSets, train the RMI per iSet. *)

type centry = { c_lo : int; c_hi : int; c_rule : Acl.rule; c_order : int }

let train_leaves lo =
  let n = Array.length lo in
  let kmin = lo.(0) and kmax = lo.(n - 1) in
  let kspan = kmax - kmin + 1 in
  let nleaves = max 1 (min max_leaves (n / leaf_target)) in
  let root x =
    if x <= kmin then 0
    else if x >= kmax then nleaves - 1
    else min (nleaves - 1) ((x - kmin) * nleaves / kspan)
  in
  let slopes = Array.make nleaves 0.0
  and intercepts = Array.make nleaves 0.0
  and errs = Array.make nleaves 0 in
  let j = ref 0 in
  for l = 0 to nleaves - 1 do
    let s = !j in
    while !j < n && root lo.(!j) = l do incr j done;
    let e = !j in
    if e - s <= 1 then intercepts.(l) <- float_of_int s
    else begin
      let x0 = float_of_int lo.(s) and x1 = float_of_int lo.(e - 1) in
      let slope = if x1 = x0 then 0.0 else float_of_int (e - 1 - s) /. (x1 -. x0) in
      let intercept = float_of_int s -. (slope *. x0) in
      let err = ref 0 in
      for k = s to e - 1 do
        let pred = int_of_float ((slope *. float_of_int lo.(k)) +. intercept +. 0.5) in
        let d = abs (pred - k) in
        if d > !err then err := d
      done;
      slopes.(l) <- slope;
      intercepts.(l) <- intercept;
      errs.(l) <- !err
    end
  done;
  (slopes, intercepts, errs, kmin, kmax, kspan)

let iset_of_picked picked =
  (* [picked] is non-overlapping and sorted by right endpoint, which for
     disjoint intervals is also ascending-by-[lo] — the order binary
     search needs. *)
  let n = List.length picked in
  let first = List.hd picked in
  let lo = Array.make n 0
  and hi = Array.make n 0
  and rules = Array.make n first.c_rule
  and orders = Array.make n 0 in
  List.iteri
    (fun i e ->
      lo.(i) <- e.c_lo;
      hi.(i) <- e.c_hi;
      rules.(i) <- e.c_rule;
      orders.(i) <- e.c_order)
    picked;
  let slopes, intercepts, errs, kmin, kmax, kspan = train_leaves lo in
  { lo; hi; rules; orders; slopes; intercepts; errs; kmin; kmax; kspan }

let build t acl =
  let entries = ref [] and n = ref 0 in
  Acl.iter_rules acl (fun r ->
      entries := (r, !n) :: !entries;
      incr n);
  let entries = List.rev !entries in
  let n = !n in
  (* Pick the index field more rules constrain. *)
  let finite axis =
    List.fold_left
      (fun acc (r, _) -> if interval_of_rule axis r <> None then acc + 1 else acc)
      0 entries
  in
  let axis = if finite Src >= finite Dst then Src else Dst in
  let candidates, wild =
    List.partition_map
      (fun (r, o) ->
        match interval_of_rule axis r with
        | Some (l, h) -> Either.Left { c_lo = l; c_hi = h; c_rule = r; c_order = o }
        | None -> Either.Right (r, o))
      entries
  in
  (* Greedy activity selection, repeated: each pass peels off a maximal
     layer of mutually non-overlapping intervals (classic
     earliest-right-endpoint-first), so the layer count equals the
     ruleset's interval overlap depth.  Duplicate or deeply nested
     intervals past the iSet budget spill into the remainder. *)
  let sorted =
    List.stable_sort
      (fun a b -> if a.c_hi <> b.c_hi then compare a.c_hi b.c_hi else compare a.c_lo b.c_lo)
      candidates
  in
  let isets = ref [] and pending = ref sorted and spill = ref [] in
  let stop = ref false in
  while (not !stop) && !pending <> [] do
    let picked_rev = ref [] and leftover_rev = ref [] and last_hi = ref (-1) and npicked = ref 0 in
    List.iter
      (fun e ->
        if e.c_lo > !last_hi then begin
          picked_rev := e :: !picked_rev;
          last_hi := e.c_hi;
          incr npicked
        end
        else leftover_rev := e :: !leftover_rev)
      !pending;
    let picked = List.rev !picked_rev in
    if !npicked < min_pass n || List.length !isets >= max_isets then begin
      (* Layer too thin (or budget exhausted): everything still pending
         goes to the remainder instead. *)
      spill := !pending;
      stop := true
    end
    else begin
      isets := iset_of_picked picked :: !isets;
      pending := List.rev !leftover_rev
    end
  done;
  let remainder = Tss.create ~default:t.default () in
  List.iter (fun e -> Tss.add ~order:e.c_order remainder e.c_rule) !spill;
  List.iter (fun (r, o) -> Tss.add ~order:o remainder r) wild;
  t.axis <- axis;
  t.isets <- Array.of_list (List.rev !isets);
  t.remainder <- remainder;
  t.total <- n;
  t.next_order <- n

let insert t rule =
  let o = t.next_order in
  t.next_order <- o + 1;
  Tss.add ~order:o t.remainder rule;
  t.total <- t.total + 1

(* ------------------------------------------------------------------ *)
(* Lookup *)

type verdict = {
  action : Acl.action;
  model_evals : int;
  window_scans : int;
  remainder_probes : int;
  matched : Acl.rule option;
  matched_order : int;
}

(* Rightmost j in [l, r] with lo.(j) <= x; -1 when none.  Steps are
   accumulated into [scans] so the cost model charges what the search
   did. *)
let find_le lo x l r scans =
  let l = ref l and r = ref r and ans = ref (-1) in
  while !l <= !r do
    incr scans;
    let m = (!l + !r) / 2 in
    if lo.(m) <= x then begin
      ans := m;
      l := m + 1
    end
    else r := m - 1
  done;
  !ans

(* Candidate position for key [x] in one iSet: RMI prediction, then a
   bounded-error window search.  The bracket check below is the
   error-window contract's safety net: a key falling in a different
   leaf than the entries around its true position can exceed the
   recorded error, in which case the window widens to the bracketing
   side — never returns a wrong position, only costs extra steps.
   [xf] is [float_of_int x], hoisted by the caller.  Allocation-free. *)
let probe_iset is x xf scans =
  let n = Array.length is.lo in
  let nleaves = Array.length is.slopes in
  let li =
    if x <= is.kmin then 0
    else if x >= is.kmax then nleaves - 1
    else min (nleaves - 1) ((x - is.kmin) * nleaves / is.kspan)
  in
  let pred = int_of_float ((Array.unsafe_get is.slopes li *. xf) +. Array.unsafe_get is.intercepts li +. 0.5) in
  let pos = if pred < 0 then 0 else if pred > n - 1 then n - 1 else pred in
  let err = Array.unsafe_get is.errs li in
  let wlo = max 0 (pos - err - 1) and whi = min (n - 1) (pos + err + 1) in
  let l, r =
    if is.lo.(wlo) > x then (0, wlo - 1) (* true position left of the window *)
    else if is.lo.(whi) <= x then (whi, n - 1) (* at/right of the window *)
    else (wlo, whi)
  in
  let j = find_le is.lo x l r scans in
  if j >= 0 && is.hi.(j) >= x then j else -1

let lookup_gen t t5 ~rev =
  (* The key is the packet field the indexed rule field is checked
     against: in the reverse orientation src/dst swap roles. *)
  let x =
    match (t.axis, rev) with
    | Src, false | Dst, true -> Int32.to_int (Ipv4.to_int32 t5.Five_tuple.src) land 0xffffffff
    | Dst, false | Src, true -> Int32.to_int (Ipv4.to_int32 t5.Five_tuple.dst) land 0xffffffff
  in
  let verify = if rev then Acl.matches_reverse else Acl.matches in
  let xf = float_of_int x in
  let best_rule = ref None and best_prio = ref max_int and best_order = ref max_int in
  let evals = ref 0 and scans = ref 0 in
  for i = 0 to Array.length t.isets - 1 do
    let is = Array.unsafe_get t.isets i in
    evals := !evals + 2;
    (* root + leaf *)
    let j = probe_iset is x xf scans in
    if j >= 0 then begin
      incr scans;
      (* candidate verification *)
      let r = is.rules.(j) in
      if verify r t5 then begin
        let p = r.Acl.priority and o = is.orders.(j) in
        if p < !best_prio || (p = !best_prio && o < !best_order) then begin
          best_rule := Some r;
          best_prio := p;
          best_order := o
        end
      end
    end
  done;
  let rv = if rev then Tss.lookup_reverse t.remainder t5 else Tss.lookup t.remainder t5 in
  let rprobes = rv.Tss.tuples_probed + rv.Tss.bucket_scans in
  (match rv.Tss.matched with
  | Some r ->
    let p = r.Acl.priority and o = rv.Tss.matched_order in
    if p < !best_prio || (p = !best_prio && o < !best_order) then begin
      best_rule := Some r;
      best_prio := p;
      best_order := o
    end
  | None -> ());
  match !best_rule with
  | Some r ->
    {
      action = r.Acl.action;
      model_evals = !evals;
      window_scans = !scans;
      remainder_probes = rprobes;
      matched = Some r;
      matched_order = !best_order;
    }
  | None ->
    {
      action = t.default;
      model_evals = !evals;
      window_scans = !scans;
      remainder_probes = rprobes;
      matched = None;
      matched_order = -1;
    }

let lookup t t5 = lookup_gen t t5 ~rev:false
let lookup_reverse t t5 = lookup_gen t t5 ~rev:true

(* ------------------------------------------------------------------ *)
(* Shape and accounting *)

let rule_count t = t.total
let iset_count t = Array.length t.isets
let indexed_rules t = Array.fold_left (fun acc is -> acc + Array.length is.lo) 0 t.isets
let remainder_rules t = Tss.rule_count t.remainder

let remainder_fraction t =
  if t.total = 0 then 0.0 else float_of_int (remainder_rules t) /. float_of_int t.total

let max_error t =
  Array.fold_left
    (fun acc is -> Array.fold_left (fun m e -> max m e) acc is.errs)
    0 t.isets

let remainder_tuple_count t = Tss.tuple_count t.remainder

(* Accounting mirrors the TCAM-style constants of Acl/Tss: each indexed
   entry is two 32-bit endpoints, a rule pointer and an order word in
   flat arrays; each leaf is two floats and an error bound. *)
let entry_bytes = 32
let leaf_bytes = 24
let iset_overhead = 96

let memory_bytes t =
  let model =
    Array.fold_left
      (fun acc is ->
        acc + iset_overhead + (Array.length is.lo * entry_bytes)
        + (Array.length is.slopes * leaf_bytes))
      0 t.isets
  in
  model + Tss.memory_bytes t.remainder

let indexable_fraction acl =
  let n = Acl.rule_count acl in
  if n = 0 then 0.0
  else begin
    let src = ref 0 and dst = ref 0 in
    Acl.iter_rules acl (fun r ->
        if r.Acl.src <> None then incr src;
        if r.Acl.dst <> None then incr dst);
    float_of_int (max !src !dst) /. float_of_int n
  end
