(** Transport 5-tuples and their canonical (session) form.

    The vSwitch records *bidirectional* flows and their session state in a
    single entry (§2.1), so session lookups key on a direction-independent
    canonical form.  Load balancing across FEs keys on the directed tuple's
    hash (§3.2.3); both hashes are provided. *)

type proto = Tcp | Udp | Icmp

val proto_to_string : proto -> string
val proto_code : proto -> int
(** IANA protocol number (Tcp 6, Udp 17, Icmp 1). *)

val pp_proto : Format.formatter -> proto -> unit

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  src_port : int;
  dst_port : int;
  proto : proto;
}

val make :
  src:Ipv4.t -> dst:Ipv4.t -> src_port:int -> dst_port:int -> proto:proto -> t
(** Ports are masked to 16 bits. *)

val reverse : t -> t
(** Swap endpoints: the return-path tuple of the same session. *)

val canonical : t -> t
(** A direction-independent representative: [canonical t = canonical
    (reverse t)].  The representative orders endpoints by (address, port). *)

val is_canonical : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Multiplicative FNV-style fold over the directed tuple with an
    avalanche finish; allocation-free.  Used for FE selection: forward
    and reverse directions of a session generally hash to different FEs,
    which Nezha explicitly permits because state lives only on the BE. *)

val session_hash : t -> int
(** Hash of the canonical form: equal for both directions.  Does not
    materialize the canonical tuple (allocation-free). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
