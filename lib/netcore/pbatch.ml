(* A flat, reusable vector of packets — the unit of work on the batched
   dataplane.  The backing array always holds valid [Packet.t] values
   (cleared slots point at a shared dummy), so access is bounds-checked
   against [len] only and no option boxing happens per slot.

   Batches follow an ownership discipline: passing a batch to an API
   transfers ownership, and the final consumer calls [recycle] to return
   it to the arena for reuse.  Recycling is an optimization, not an
   obligation — an un-recycled batch is ordinary GC garbage. *)

(* The dummy never reaches any datapath: it only parks empty slots so
   [clear] drops references to real packets.  Built as a raw record
   literal (uid 0, which [Packet.create] never assigns) so constructing
   it does not disturb the uid counter and runs stay reproducible. *)
let dummy : Packet.t =
  {
    Packet.uid = 0;
    vpc = Vpc.make 0;
    flow =
      Five_tuple.make ~src:(Ipv4.of_octets 0 0 0 0) ~dst:(Ipv4.of_octets 0 0 0 0)
        ~src_port:0 ~dst_port:0 ~proto:Five_tuple.Tcp;
    direction = Packet.Tx;
    flags = Packet.no_flags;
    payload_len = 0;
    vxlan = None;
    nsh = None;
    trace_id = 0;
  }

type t = {
  mutable pkts : Packet.t array;
  mutable len : int;
  mutable pooled : bool;  (** guards against double-recycle *)
}

let default_capacity = 32

let create ?(capacity = default_capacity) () =
  { pkts = Array.make (max 1 capacity) dummy; len = 0; pooled = false }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.pkts

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Pbatch.get: index out of bounds";
  t.pkts.(i)

let push t pkt =
  let cap = Array.length t.pkts in
  if t.len = cap then begin
    let bigger = Array.make (2 * cap) dummy in
    Array.blit t.pkts 0 bigger 0 cap;
    t.pkts <- bigger
  end;
  t.pkts.(t.len) <- pkt;
  t.len <- t.len + 1

let clear t =
  for i = 0 to t.len - 1 do
    t.pkts.(i) <- dummy
  done;
  t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.pkts.(i)
  done

let iteri t f =
  for i = 0 to t.len - 1 do
    f i t.pkts.(i)
  done

let filter_in_place t keep =
  let w = ref 0 in
  for i = 0 to t.len - 1 do
    let pkt = t.pkts.(i) in
    if keep pkt then begin
      t.pkts.(!w) <- pkt;
      incr w
    end
  done;
  for i = !w to t.len - 1 do
    t.pkts.(i) <- dummy
  done;
  t.len <- !w

let of_list pkts =
  let t = create ~capacity:(max 1 (List.length pkts)) () in
  List.iter (push t) pkts;
  t

let to_list t = List.init t.len (fun i -> t.pkts.(i))

(* ------------------------------------------------------------------ *)
(* Arena.  A global freelist of cleared batches; [alloc]/[recycle] make
   steady-state batch traffic allocation-free (beyond growth).  The
   counters let tests assert that the arena actually recirculates. *)

let pool : t list ref = ref []
let pool_allocs = ref 0
let pool_reuses = ref 0
let pool_recycles = ref 0

let alloc () =
  match !pool with
  | b :: rest ->
    pool := rest;
    b.pooled <- false;
    incr pool_reuses;
    b
  | [] ->
    incr pool_allocs;
    create ()

let recycle t =
  if not t.pooled then begin
    t.pooled <- true;
    clear t;
    incr pool_recycles;
    pool := t :: !pool
  end

let pool_stats () = (!pool_allocs, !pool_reuses, !pool_recycles)

let reset_pool () =
  pool := [];
  pool_allocs := 0;
  pool_reuses := 0;
  pool_recycles := 0
