type direction = Tx | Rx

let pp_direction ppf d = Format.pp_print_string ppf (match d with Tx -> "tx" | Rx -> "rx")

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

let no_flags = { syn = false; ack = false; fin = false; rst = false }
let syn = { no_flags with syn = true }
let syn_ack = { no_flags with syn = true; ack = true }
let ack = { no_flags with ack = true }
let fin_ack = { no_flags with fin = true; ack = true }
let rst = { no_flags with rst = true }

let pp_flags ppf f =
  let tags =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [ (f.syn, "S"); (f.ack, "A"); (f.fin, "F"); (f.rst, "R") ]
  in
  Format.pp_print_string ppf (if tags = [] then "." else String.concat "" tags)

type vxlan = { vni : int; outer_src : Ipv4.t; outer_dst : Ipv4.t }

type nsh = {
  carried_state : bytes option;
  carried_pre_actions : bytes option;
  notify : bool;
  orig_outer_src : Ipv4.t option;
  hop_seq : int option;
  hop_ack : int option;
}

let empty_nsh =
  {
    carried_state = None;
    carried_pre_actions = None;
    notify = false;
    orig_outer_src = None;
    hop_seq = None;
    hop_ack = None;
  }

type t = {
  uid : int;
  vpc : Vpc.t;
  flow : Five_tuple.t;
  direction : direction;
  flags : tcp_flags;
  payload_len : int;
  mutable vxlan : vxlan option;
  mutable nsh : nsh option;
  mutable trace_id : int;
}

let uid_counter = ref 0

let reset_uid_counter () = uid_counter := 0

let create ~vpc ~flow ~direction ?(flags = no_flags) ?(payload_len = 0) () =
  incr uid_counter;
  {
    uid = !uid_counter;
    vpc;
    flow;
    direction;
    flags;
    payload_len;
    vxlan = None;
    nsh = None;
    trace_id = 0;
  }

(* A distinct packet with the same headers — fresh uid, fresh mutable
   cells, so a duplicated delivery can be processed independently. *)
let copy t =
  incr uid_counter;
  { t with uid = !uid_counter }

(* Header size constants (bytes). *)
let eth_header = 14
let ipv4_header = 20
let udp_header = 8
let tcp_header = 20
let icmp_header = 8
let vxlan_overhead = eth_header + ipv4_header + udp_header + 8 (* VXLAN shim *)
let nsh_base = 8 (* NSH base + service path headers *)

let l4_header t =
  match t.flow.Five_tuple.proto with
  | Five_tuple.Tcp -> tcp_header
  | Five_tuple.Udp -> udp_header
  | Five_tuple.Icmp -> icmp_header

let inner_size t = eth_header + ipv4_header + l4_header t + t.payload_len

let nsh_size nsh =
  let blob = function None -> 0 | Some b -> Bytes.length b in
  nsh_base + blob nsh.carried_state + blob nsh.carried_pre_actions
  + (match nsh.orig_outer_src with None -> 0 | Some _ -> 4)
  + (match nsh.hop_seq with None -> 0 | Some _ -> 4)
  + (match nsh.hop_ack with None -> 0 | Some _ -> 4)

let wire_size t =
  inner_size t
  + (match t.vxlan with None -> 0 | Some _ -> vxlan_overhead)
  + (match t.nsh with None -> 0 | Some nsh -> nsh_size nsh)

let encap_vxlan t ~vni ~outer_src ~outer_dst = t.vxlan <- Some { vni; outer_src; outer_dst }

let decap_vxlan t =
  let v = t.vxlan in
  t.vxlan <- None;
  v

let set_nsh t nsh = t.nsh <- Some nsh

let clear_nsh t =
  let n = t.nsh in
  t.nsh <- None;
  n

let pp ppf t =
  Format.fprintf ppf "#%d %a %a %a [%a] len=%d" t.uid Vpc.pp t.vpc pp_direction t.direction
    Five_tuple.pp t.flow pp_flags t.flags (wire_size t);
  (match t.vxlan with
  | Some v -> Format.fprintf ppf " vxlan(%d,%a>%a)" v.vni Ipv4.pp v.outer_src Ipv4.pp v.outer_dst
  | None -> ());
  match t.nsh with
  | Some n ->
    Format.fprintf ppf " nsh(state=%b,pre=%b,notify=%b)"
      (Option.is_some n.carried_state)
      (Option.is_some n.carried_pre_actions)
      n.notify
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let proto_tag = function Five_tuple.Tcp -> 0 | Five_tuple.Udp -> 1 | Five_tuple.Icmp -> 2

let proto_of_tag = function
  | 0 -> Ok Five_tuple.Tcp
  | 1 -> Ok Five_tuple.Udp
  | 2 -> Ok Five_tuple.Icmp
  | n -> Error (Printf.sprintf "unknown protocol tag %d" n)

let flags_byte f =
  (if f.syn then 1 else 0)
  lor (if f.ack then 2 else 0)
  lor (if f.fin then 4 else 0)
  lor if f.rst then 8 else 0

let flags_of_byte b =
  { syn = b land 1 <> 0; ack = b land 2 <> 0; fin = b land 4 <> 0; rst = b land 8 <> 0 }

let magic = 0x4E5A (* "NZ" *)

let encode t =
  let w = Wire.Writer.create () in
  Wire.Writer.u16 w magic;
  Wire.Writer.varint w t.uid;
  Wire.Writer.varint w (Vpc.to_int t.vpc);
  Wire.Writer.u32 w (Ipv4.to_int32 t.flow.Five_tuple.src);
  Wire.Writer.u32 w (Ipv4.to_int32 t.flow.Five_tuple.dst);
  Wire.Writer.u16 w t.flow.Five_tuple.src_port;
  Wire.Writer.u16 w t.flow.Five_tuple.dst_port;
  Wire.Writer.u8 w (proto_tag t.flow.Five_tuple.proto);
  Wire.Writer.u8 w (match t.direction with Tx -> 0 | Rx -> 1);
  Wire.Writer.u8 w (flags_byte t.flags);
  Wire.Writer.varint w t.payload_len;
  (match t.vxlan with
  | None -> Wire.Writer.u8 w 0
  | Some v ->
    Wire.Writer.u8 w 1;
    Wire.Writer.varint w v.vni;
    Wire.Writer.u32 w (Ipv4.to_int32 v.outer_src);
    Wire.Writer.u32 w (Ipv4.to_int32 v.outer_dst));
  (match t.nsh with
  | None -> Wire.Writer.u8 w 0
  | Some n ->
    Wire.Writer.u8 w 1;
    let opt_bytes = function
      | None -> Wire.Writer.u8 w 0
      | Some b ->
        Wire.Writer.u8 w 1;
        Wire.Writer.bytes w b
    in
    opt_bytes n.carried_state;
    opt_bytes n.carried_pre_actions;
    Wire.Writer.u8 w (if n.notify then 1 else 0);
    (match n.orig_outer_src with
    | None -> Wire.Writer.u8 w 0
    | Some a ->
      Wire.Writer.u8 w 1;
      Wire.Writer.u32 w (Ipv4.to_int32 a));
    let opt_varint = function
      | None -> Wire.Writer.u8 w 0
      | Some v ->
        Wire.Writer.u8 w 1;
        Wire.Writer.varint w v
    in
    opt_varint n.hop_seq;
    opt_varint n.hop_ack);
  Wire.Writer.varint w t.trace_id;
  Wire.Writer.contents w

let decode buf =
  let r = Wire.Reader.of_bytes buf in
  match
    let m = Wire.Reader.u16 r in
    if m <> magic then Error (Printf.sprintf "bad magic 0x%04x" m)
    else begin
      let uid = Wire.Reader.varint r in
      let vpc = Vpc.make (Wire.Reader.varint r) in
      let src = Ipv4.of_int32 (Wire.Reader.u32 r) in
      let dst = Ipv4.of_int32 (Wire.Reader.u32 r) in
      let src_port = Wire.Reader.u16 r in
      let dst_port = Wire.Reader.u16 r in
      match proto_of_tag (Wire.Reader.u8 r) with
      | Error _ as e -> e
      | Ok proto ->
        let direction = if Wire.Reader.u8 r = 0 then Tx else Rx in
        let flags = flags_of_byte (Wire.Reader.u8 r) in
        let payload_len = Wire.Reader.varint r in
        let vxlan =
          if Wire.Reader.u8 r = 0 then None
          else begin
            let vni = Wire.Reader.varint r in
            let outer_src = Ipv4.of_int32 (Wire.Reader.u32 r) in
            let outer_dst = Ipv4.of_int32 (Wire.Reader.u32 r) in
            Some { vni; outer_src; outer_dst }
          end
        in
        let nsh =
          if Wire.Reader.u8 r = 0 then None
          else begin
            let opt_bytes () =
              if Wire.Reader.u8 r = 0 then None else Some (Wire.Reader.bytes r)
            in
            let carried_state = opt_bytes () in
            let carried_pre_actions = opt_bytes () in
            let notify = Wire.Reader.u8 r = 1 in
            let orig_outer_src =
              if Wire.Reader.u8 r = 0 then None
              else Some (Ipv4.of_int32 (Wire.Reader.u32 r))
            in
            let opt_varint () =
              if Wire.Reader.u8 r = 0 then None else Some (Wire.Reader.varint r)
            in
            let hop_seq = opt_varint () in
            let hop_ack = opt_varint () in
            Some { carried_state; carried_pre_actions; notify; orig_outer_src; hop_seq; hop_ack }
          end
        in
        let trace_id = Wire.Reader.varint r in
        let flow = Five_tuple.make ~src ~dst ~src_port ~dst_port ~proto in
        Ok { uid; vpc; flow; direction; flags; payload_len; vxlan; nsh; trace_id }
    end
  with
  | result -> result
  | exception Wire.Reader.Truncated -> Error "truncated packet"
