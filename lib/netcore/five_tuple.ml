type proto = Tcp | Udp | Icmp

let proto_to_string = function Tcp -> "tcp" | Udp -> "udp" | Icmp -> "icmp"
let pp_proto ppf p = Format.pp_print_string ppf (proto_to_string p)
let proto_code = function Tcp -> 6 | Udp -> 17 | Icmp -> 1

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  src_port : int;
  dst_port : int;
  proto : proto;
}

let make ~src ~dst ~src_port ~dst_port ~proto =
  { src; dst; src_port = src_port land 0xffff; dst_port = dst_port land 0xffff; proto }

let reverse t = { t with src = t.dst; dst = t.src; src_port = t.dst_port; dst_port = t.src_port }

let endpoint_le (a, ap) (b, bp) =
  let c = Ipv4.compare a b in
  c < 0 || (c = 0 && ap <= bp)

let is_canonical t = endpoint_le (t.src, t.src_port) (t.dst, t.dst_port)

let canonical t = if is_canonical t then t else reverse t

let compare a b =
  let c = Ipv4.compare a.src b.src in
  if c <> 0 then c
  else begin
    let c = Ipv4.compare a.dst b.dst in
    if c <> 0 then c
    else begin
      let c = Int.compare a.src_port b.src_port in
      if c <> 0 then c
      else begin
        let c = Int.compare a.dst_port b.dst_port in
        if c <> 0 then c else Int.compare (proto_code a.proto) (proto_code b.proto)
      end
    end
  end

let equal a b = compare a b = 0

(* Multiplicative FNV-style fold over the native int word.  This hash
   runs on every packet, so it must not allocate: the previous Int64
   formulation boxed every intermediate.  Wrapping is mod 2^63 instead
   of 2^64, which changes nothing for bucketing.  The low-order bits of
   a raw multiplicative fold avalanche poorly and FE selection takes
   [hash mod #FEs], so a SplitMix-style finisher mixes the high bits
   back down.  All constants fit in OCaml's 63-bit immediate int. *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x3bf29ce484222325

let[@inline] fold h v = (h lxor v) * fnv_prime

let[@inline] avalanche z =
  let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 27)) * 0x27BB2EE687B0B0FD in
  z lxor (z lsr 31)

let[@inline] hash_fields ~src ~dst ~src_port ~dst_port ~proto =
  let s = Int32.to_int (Ipv4.to_int32 src) land 0xffffffff in
  let d = Int32.to_int (Ipv4.to_int32 dst) land 0xffffffff in
  let h = fold (fold (fold fnv_offset s) d) ((src_port lsl 16) lor dst_port) in
  avalanche (fold h (proto_code proto)) land max_int

let hash t =
  hash_fields ~src:t.src ~dst:t.dst ~src_port:t.src_port ~dst_port:t.dst_port ~proto:t.proto

(* Hash the canonical orientation without materializing it: when the
   tuple is not canonical, feed the fields in swapped order instead of
   allocating the reversed record. *)
let session_hash t =
  if is_canonical t then
    hash_fields ~src:t.src ~dst:t.dst ~src_port:t.src_port ~dst_port:t.dst_port ~proto:t.proto
  else
    hash_fields ~src:t.dst ~dst:t.src ~src_port:t.dst_port ~dst_port:t.src_port ~proto:t.proto

let to_string t =
  Printf.sprintf "%s:%d>%s:%d/%s" (Ipv4.to_string t.src) t.src_port (Ipv4.to_string t.dst)
    t.dst_port (proto_to_string t.proto)

let pp ppf t = Format.pp_print_string ppf (to_string t)
