(** The packet model.

    A packet is a tenant (overlay) frame, optionally wrapped in a VXLAN
    underlay header and an NSH-style metadata header.  Nezha's central trick
    rides in the NSH header: TX packets carry serialized session *state*
    from BE to FE, RX packets carry serialized *pre-actions* from FE to BE,
    and notify packets instruct the BE to (re)initialize rule-table-involved
    state (§3.2).  The metadata blobs are opaque bytes at this layer; the
    vSwitch library owns their codecs. *)

type direction = Tx | Rx
(** Relative to the tenant VM that owns the vNIC: [Tx] leaves the VM,
    [Rx] is destined to it. *)

val pp_direction : Format.formatter -> direction -> unit

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

val no_flags : tcp_flags
val syn : tcp_flags
val syn_ack : tcp_flags
val ack : tcp_flags
val fin_ack : tcp_flags
val rst : tcp_flags
val pp_flags : Format.formatter -> tcp_flags -> unit

(** VXLAN-style underlay encapsulation. *)
type vxlan = { vni : int; outer_src : Ipv4.t; outer_dst : Ipv4.t }

(** NSH-style metadata header used on the BE↔FE hop. *)
type nsh = {
  carried_state : bytes option;  (** TX: session state, BE → FE *)
  carried_pre_actions : bytes option;  (** RX: pre-actions, FE → BE *)
  notify : bool;  (** designated notify packet (§3.2.2) *)
  orig_outer_src : Ipv4.t option;
      (** outer source IP preserved for stateful decap (§5.2) *)
  hop_seq : int option;
      (** BE-assigned sequence for offload-loss tracking; the FE echoes
          it back as [hop_ack] *)
  hop_ack : int option;  (** FE → BE: acknowledges the hop_seq received *)
}

val empty_nsh : nsh

type t = {
  uid : int;  (** unique per simulation run, for tracing *)
  vpc : Vpc.t;
  flow : Five_tuple.t;
  direction : direction;
  flags : tcp_flags;
  payload_len : int;  (** tenant payload bytes *)
  mutable vxlan : vxlan option;
  mutable nsh : nsh option;
  mutable trace_id : int;
      (** distributed-tracing correlation id; [0] means untraced.  The id
          travels with the packet across the BE↔FE hop (it is part of the
          wire codec) and is preserved by {!copy}, so a retransmission
          stays on the original trace.  Allocated by the tracing layer —
          this module only carries it. *)
}

val create :
  vpc:Vpc.t ->
  flow:Five_tuple.t ->
  direction:direction ->
  ?flags:tcp_flags ->
  ?payload_len:int ->
  unit ->
  t
(** A fresh packet with a unique [uid].  Default flags none, default
    payload 0 (a bare SYN/control segment). *)

val copy : t -> t
(** A distinct packet with the same headers but a fresh [uid] and fresh
    mutable cells — what an in-network duplication or a retransmission
    puts on the wire. *)

val reset_uid_counter : unit -> unit
(** Restart uid assignment; called at the start of each experiment so runs
    are reproducible. *)

val inner_size : t -> int
(** Bytes of the tenant frame: Ethernet + IPv4 + L4 header + payload. *)

val wire_size : t -> int
(** Bytes on the underlay wire including VXLAN and NSH overheads.  The NSH
    contribution counts the actual serialized metadata, so carrying state
    costs what it costs. *)

val encap_vxlan : t -> vni:int -> outer_src:Ipv4.t -> outer_dst:Ipv4.t -> unit
val decap_vxlan : t -> vxlan option
(** Remove and return the VXLAN header. *)

val set_nsh : t -> nsh -> unit
val clear_nsh : t -> nsh option

val pp : Format.formatter -> t -> unit

(** {1 Wire codec}

    Serializes the packet *headers* (not the payload, whose bytes are
    irrelevant to the simulation) to a self-describing binary form and
    back.  [decode (encode p)] reconstructs every header field including
    metadata blobs. *)

val encode : t -> bytes
val decode : bytes -> (t, string) result
