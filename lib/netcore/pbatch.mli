(** A flat, reusable vector of packets — the unit of work on the batched
    dataplane (OVS-DPDK/VPP style).

    The buffer is a plain growable array: no per-slot boxing, no
    per-packet allocation on push beyond occasional doubling.  Batches
    follow an ownership discipline — handing one to an API transfers
    ownership, and the final consumer returns it to the arena with
    {!recycle}.  Recycling is optional: a dropped batch is ordinary GC
    garbage, and the [pooled] guard makes a double-recycle a no-op. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh, empty batch (default capacity 32). *)

val length : t -> int
val is_empty : t -> bool
val capacity : t -> int

val get : t -> int -> Packet.t
(** @raise Invalid_argument outside [0, length). *)

val push : t -> Packet.t -> unit
(** Append, doubling the backing array when full. *)

val clear : t -> unit
(** Empty the batch and drop every packet reference (slots are
    overwritten so cleared batches keep nothing alive). *)

val iter : t -> (Packet.t -> unit) -> unit
val iteri : t -> (int -> Packet.t -> unit) -> unit

val filter_in_place : t -> (Packet.t -> bool) -> unit
(** Keep only packets satisfying the predicate, preserving order. *)

val of_list : Packet.t list -> t
val to_list : t -> Packet.t list

(** {1 Arena}

    A global freelist of cleared batches.  Steady-state batch traffic
    through {!alloc}/{!recycle} allocates nothing (beyond array
    growth). *)

val alloc : unit -> t
(** A cleared batch from the freelist, or a fresh one when empty. *)

val recycle : t -> unit
(** Clear and return the batch to the freelist.  Idempotent. *)

val pool_stats : unit -> int * int * int
(** [(fresh_allocs, reuses, recycles)] since the last {!reset_pool}. *)

val reset_pool : unit -> unit
