(** Centralized FE crash monitoring (§4.4).

    A single module health-checks every vSwitch hosting FEs.  Probes are
    asynchronous: each round fires one probe per target, and a collect
    sweep [probe_timeout] later scores targets whose reply has not come
    back as a miss — so a probe routed over the fabric ({!Fabric.ping})
    genuinely misses under loss or a partition.  A target that misses
    [misses_to_fail] consecutive probes is declared failed, which bounds
    detection latency at [interval × misses_to_fail + probe_timeout].

    §C.2's lesson is built in: when a collect sweep finds more than
    [mass_failure_fraction] of all targets down simultaneously, the
    module suspects a monitoring bug rather than a real mass outage and
    suspends automatic removal for that round (counted, so operators —
    and tests — can see it).

    Re-watching a key resets its miss counter even mid-round: a probe
    already in flight for the replaced registration is discarded at
    collect time, counting neither way. *)

open Nezha_engine

type t

val create :
  sim:Sim.t ->
  ?interval:float ->
  ?probe_timeout:float ->
  ?misses_to_fail:int ->
  ?mass_failure_fraction:float ->
  unit ->
  t
(** Defaults: probe every 0.5 s, reply deadline [interval /. 2], fail
    after 3 misses, suspect mass failure above 80% of targets.
    @raise Invalid_argument unless [0 < probe_timeout <= interval]. *)

val watch_probe :
  t -> key:int -> probe:(reply:(unit -> unit) -> unit) -> on_fail:(key:int -> unit) -> unit
(** Add (or reset) a target.  [probe ~reply] launches one health check;
    the implementation calls [reply ()] when (and if) the answer arrives
    — before the collect deadline, or the round counts as missed.
    [on_fail] fires once when the target is declared failed (it is then
    unwatched). *)

val watch : t -> key:int -> alive:(unit -> bool) -> on_fail:(key:int -> unit) -> unit
(** Synchronous convenience over {!watch_probe}: [alive] is consulted at
    probe launch and replies instantly when true. *)

val unwatch : t -> key:int -> unit
val watched : t -> int

val is_suspect : t -> key:int -> bool
(** A watched target with at least one consecutive missed probe — not
    yet declared failed, but not trusted either.  Placement avoids
    suspects; the SLO loop feeds the suspect fraction into its §C.2
    suppression window. *)

val suspects : t -> int list
(** All suspect keys, sorted (deterministic iteration for callers). *)

val start : t -> unit
(** Begin probing.  Idempotent. *)

val stop : t -> unit

val probes_sent : t -> int

val probes_missed : t -> int
(** Probes whose reply did not arrive by the collect deadline. *)

val failures_declared : t -> int
val mass_failure_suspected : t -> int
(** Rounds where auto-removal was suspended (§C.2). *)

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** Publish probe/failure counters and the watched-target gauge under
    [monitor/...]. *)
