(** Centralized FE crash monitoring (§4.4).

    A single module health-checks every vSwitch hosting FEs (ping
    polling against the vSwitch's virtual function, so the check reflects
    the vSwitch and not the SmartNIC's other hypervisors).  A target that
    misses [misses_to_fail] consecutive probes is declared failed, which
    bounds detection latency at [interval × misses_to_fail].

    §C.2's lesson is built in: when a probe round finds more than
    [mass_failure_fraction] of all targets down simultaneously, the
    module suspects a monitoring bug rather than a real mass outage and
    suspends automatic removal for that round (counted, so operators —
    and tests — can see it). *)

open Nezha_engine

type t

val create :
  sim:Sim.t ->
  ?interval:float ->
  ?misses_to_fail:int ->
  ?mass_failure_fraction:float ->
  unit ->
  t
(** Defaults: probe every 0.5 s, fail after 3 misses, suspect mass
    failure above 80% of targets. *)

val watch : t -> key:int -> alive:(unit -> bool) -> on_fail:(key:int -> unit) -> unit
(** Add (or reset) a target.  [alive] is the probe; [on_fail] fires once
    when the target is declared failed (it is then unwatched). *)

val unwatch : t -> key:int -> unit
val watched : t -> int

val start : t -> unit
(** Begin probing.  Idempotent. *)

val stop : t -> unit

val probes_sent : t -> int
val failures_declared : t -> int
val mass_failure_suspected : t -> int
(** Rounds where auto-removal was suspended (§C.2). *)

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** Publish probe/failure counters and the watched-target gauge under
    [monitor/...]. *)
