open Nezha_engine
open Nezha_fabric

type t = {
  sim : Sim.t;
  fabric : Fabric.t;
  primary : Controller.t;
  standby : Controller.t;
  registry : Controller.Registry.t;
  lease_interval : float;
  lease_misses : int;
  mutable missed : int;
  mutable active : Controller.t;
  mutable takeovers : int;
  mutable started : bool;
}

let create ?(lease_interval = 0.5) ?(lease_misses = 3) ~fabric ~primary ~standby
    () =
  if primary == standby then invalid_arg "Ha.create: primary == standby";
  let registry = Controller.Registry.create () in
  Controller.set_registry primary registry;
  Controller.set_registry standby registry;
  (* The standby starts fenced below the primary: its commands are
     rejected everywhere until a takeover bumps it past the fleet's
     high-water mark. *)
  Controller.set_epoch standby (Controller.epoch primary - 1);
  {
    sim = Fabric.sim fabric;
    fabric;
    primary;
    standby;
    registry;
    lease_interval;
    lease_misses;
    missed = 0;
    active = primary;
    takeovers = 0;
    started = false;
  }

let registry t = t.registry
let active t = t.active
let primary t = t.primary
let standby t = t.standby
let takeovers t = t.takeovers
let epoch t = Controller.epoch t.active

(* Fence the whole fleet at the new primary's epoch, eagerly.  Lazy
   fencing (only components the new primary happens to touch) is not
   enough: a revived stale primary could still command a component the
   new one never addressed. *)
let broadcast_epoch t epoch =
  ignore (Gateway.observe_epoch (Fabric.gateway t.fabric) ~epoch : bool);
  List.iter
    (fun s ->
      match Fabric.vswitch_opt t.fabric s with
      | Some vs -> ignore (Nezha_vswitch.Vswitch.observe_epoch vs ~epoch : bool)
      | None -> ())
    (Topology.servers (Fabric.topology t.fabric))

let takeover t =
  let next =
    1 + max (Controller.epoch t.primary) (Controller.epoch t.standby)
  in
  Controller.set_epoch t.standby next;
  broadcast_epoch t next;
  ignore (Controller.adopt_from_registry t.standby : int);
  t.active <- t.standby;
  t.takeovers <- t.takeovers + 1;
  Controller.start t.standby

let start t =
  if not t.started then begin
    t.started <- true;
    Controller.start t.primary;
    Sim.every t.sim ~period:t.lease_interval (fun _ ->
        if t.active == t.primary then begin
          if Controller.alive t.primary then t.missed <- 0
          else begin
            t.missed <- t.missed + 1;
            if t.missed >= t.lease_misses then takeover t
          end
        end;
        true)
  end

let crash_primary t = Controller.halt t.primary
let revive_primary t = Controller.revive t.primary
