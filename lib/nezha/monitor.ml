open Nezha_engine

type target = {
  probe : reply:(unit -> unit) -> unit;
  on_fail : key:int -> unit;
  mutable misses : int;
}

(* One in-flight probe of a round: the reply closure flips [replied]
   before the collect deadline, or the probe counts as missed. *)
type slot = { key : int; tgt : target; mutable replied : bool }

type t = {
  sim : Sim.t;
  interval : float;
  probe_timeout : float;
  misses_to_fail : int;
  mass_failure_fraction : float;
  targets : (int, target) Hashtbl.t;
  mutable running : bool;
  mutable probes : int;
  mutable missed : int;
  mutable failures : int;
  mutable mass_suspected : int;
}

let create ~sim ?(interval = 0.5) ?probe_timeout ?(misses_to_fail = 3)
    ?(mass_failure_fraction = 0.8) () =
  if interval <= 0.0 then invalid_arg "Monitor.create: interval must be positive";
  let probe_timeout = Option.value probe_timeout ~default:(interval *. 0.5) in
  if probe_timeout <= 0.0 || probe_timeout > interval then
    invalid_arg "Monitor.create: probe_timeout must be in (0, interval]";
  {
    sim;
    interval;
    probe_timeout;
    misses_to_fail;
    mass_failure_fraction;
    targets = Hashtbl.create 16;
    running = false;
    probes = 0;
    missed = 0;
    failures = 0;
    mass_suspected = 0;
  }

let watch_probe t ~key ~probe ~on_fail =
  Hashtbl.replace t.targets key { probe; on_fail; misses = 0 }

let watch t ~key ~alive ~on_fail =
  watch_probe t ~key ~probe:(fun ~reply -> if alive () then reply ()) ~on_fail

let unwatch t ~key = Hashtbl.remove t.targets key

let watched t = Hashtbl.length t.targets

let is_suspect t ~key =
  match Hashtbl.find_opt t.targets key with
  | Some tgt -> tgt.misses >= 1
  | None -> false

let suspects t =
  Hashtbl.fold
    (fun key tgt acc -> if tgt.misses >= 1 then key :: acc else acc)
    t.targets []
  |> List.sort compare

(* The deadline sweep for one round's probes.  A slot only counts if its
   target record is *physically* still the table binding: a re-watch
   between probe and collect replaced the record (misses reset to 0), and
   the stale in-flight probe must not score against — or for — it. *)
let collect t slots =
  let live =
    List.filter
      (fun s ->
        match Hashtbl.find_opt t.targets s.key with
        | Some tgt -> tgt == s.tgt
        | None -> false)
      slots
  in
  let n = List.length live in
  if n > 0 then begin
    let newly_failed = ref [] in
    List.iter
      (fun s ->
        if s.replied then s.tgt.misses <- 0
        else begin
          t.missed <- t.missed + 1;
          s.tgt.misses <- s.tgt.misses + 1;
          if s.tgt.misses >= t.misses_to_fail then
            newly_failed := (s.key, s.tgt) :: !newly_failed
        end)
      live;
    let newly_failed = List.rev !newly_failed in
    let failed_count = List.length newly_failed in
    if
      failed_count > 0
      && float_of_int failed_count >= t.mass_failure_fraction *. float_of_int n
      && n > 1
    then begin
      (* §C.2: a majority of FEs "failing" at once smells like a monitor
         bug; hold off automatic removal and retry next round. *)
      t.mass_suspected <- t.mass_suspected + 1;
      List.iter (fun (_, tgt) -> tgt.misses <- t.misses_to_fail - 1) newly_failed
    end
    else
      List.iter
        (fun (key, tgt) ->
          Hashtbl.remove t.targets key;
          t.failures <- t.failures + 1;
          tgt.on_fail ~key)
        newly_failed
  end

let probe_round t =
  if Hashtbl.length t.targets > 0 then begin
    (* Snapshot in sorted key order so probe side effects (rng draws in
       the fault plane) happen in a deterministic order. *)
    let keys =
      List.sort compare (Hashtbl.fold (fun key _ acc -> key :: acc) t.targets [])
    in
    let slots =
      List.filter_map
        (fun key ->
          match Hashtbl.find_opt t.targets key with
          | None -> None
          | Some tgt ->
            t.probes <- t.probes + 1;
            let s = { key; tgt; replied = false } in
            tgt.probe ~reply:(fun () -> s.replied <- true);
            Some s)
        keys
    in
    ignore
      (Sim.schedule t.sim ~delay:t.probe_timeout (fun _ ->
           if t.running then collect t slots)
        : Sim.handle)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Sim.every t.sim ~period:t.interval (fun _ ->
        if t.running then probe_round t;
        t.running)
  end

let stop t = t.running <- false

let probes_sent t = t.probes
let probes_missed t = t.missed
let failures_declared t = t.failures
let mass_failure_suspected t = t.mass_suspected

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  T.register_counter reg ~name:"monitor/probes_sent" (fun () -> t.probes);
  T.register_counter reg ~name:"monitor/probes_missed" (fun () -> t.missed);
  T.register_counter reg ~name:"monitor/failures_declared" (fun () -> t.failures);
  T.register_counter reg ~name:"monitor/mass_failure_suspected" (fun () ->
      t.mass_suspected);
  T.register_gauge reg ~name:"monitor/watched" (fun () ->
      float_of_int (watched t))
