open Nezha_engine

type target = {
  alive : unit -> bool;
  on_fail : key:int -> unit;
  mutable misses : int;
}

type t = {
  sim : Sim.t;
  interval : float;
  misses_to_fail : int;
  mass_failure_fraction : float;
  targets : (int, target) Hashtbl.t;
  mutable running : bool;
  mutable probes : int;
  mutable failures : int;
  mutable mass_suspected : int;
}

let create ~sim ?(interval = 0.5) ?(misses_to_fail = 3) ?(mass_failure_fraction = 0.8) () =
  if interval <= 0.0 then invalid_arg "Monitor.create: interval must be positive";
  {
    sim;
    interval;
    misses_to_fail;
    mass_failure_fraction;
    targets = Hashtbl.create 16;
    running = false;
    probes = 0;
    failures = 0;
    mass_suspected = 0;
  }

let watch t ~key ~alive ~on_fail = Hashtbl.replace t.targets key { alive; on_fail; misses = 0 }

let unwatch t ~key = Hashtbl.remove t.targets key

let watched t = Hashtbl.length t.targets

let probe_round t =
  let n = Hashtbl.length t.targets in
  if n > 0 then begin
    let newly_failed = ref [] in
    Hashtbl.iter
      (fun key target ->
        t.probes <- t.probes + 1;
        if target.alive () then target.misses <- 0
        else begin
          target.misses <- target.misses + 1;
          if target.misses >= t.misses_to_fail then newly_failed := (key, target) :: !newly_failed
        end)
      t.targets;
    let failed_count = List.length !newly_failed in
    if
      failed_count > 0
      && float_of_int failed_count >= t.mass_failure_fraction *. float_of_int n
      && n > 1
    then begin
      (* §C.2: a majority of FEs "failing" at once smells like a monitor
         bug; hold off automatic removal and retry next round. *)
      t.mass_suspected <- t.mass_suspected + 1;
      List.iter (fun (_, target) -> target.misses <- t.misses_to_fail - 1) !newly_failed
    end
    else
      List.iter
        (fun (key, target) ->
          Hashtbl.remove t.targets key;
          t.failures <- t.failures + 1;
          target.on_fail ~key)
        !newly_failed
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Sim.every t.sim ~period:t.interval (fun _ ->
        if t.running then probe_round t;
        t.running)
  end

let stop t = t.running <- false

let probes_sent t = t.probes
let failures_declared t = t.failures
let mass_failure_suspected t = t.mass_suspected

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  T.register_counter reg ~name:"monitor/probes_sent" (fun () -> t.probes);
  T.register_counter reg ~name:"monitor/failures_declared" (fun () -> t.failures);
  T.register_counter reg ~name:"monitor/mass_failure_suspected" (fun () ->
      t.mass_suspected);
  T.register_gauge reg ~name:"monitor/watched" (fun () ->
      float_of_int (watched t))
