(** FE candidate selection (§4.2.1, App. B.1) as a pure ordering,
    shared by the online {!Controller} and the region-scale bridge
    ([Nezha_workloads.Region_sim]).

    The policy: filter to eligible servers (capacity ceilings, health,
    cool-down — the caller's predicate), prefer servers in the BE's own
    rack, and within each tier pick the least-loaded by reported CPU. *)

val select :
  eligible:('a -> bool) ->
  same_rack:('a -> bool) ->
  cpu:('a -> float) ->
  count:int ->
  'a list ->
  'a list
(** [select ~eligible ~same_rack ~cpu ~count servers] returns up to
    [count] servers: eligible ones in the BE's rack ordered by [cpu]
    ascending, then eligible others likewise. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if fewer). *)
