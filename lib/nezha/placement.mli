(** FE candidate selection (§4.2.1, App. B.1) as pure orderings, shared
    by the online {!Controller} and the region-scale bridge
    ([Nezha_workloads.Region_sim]).

    Two policies coexist (selectable per controller):

    - {!select} — the paper's ordering: filter to eligible servers
      (capacity ceilings, health, cool-down — the caller's predicate),
      prefer servers in the BE's own rack, within each tier pick the
      least-loaded by reported CPU.
    - {!select_p2c} — power-of-two-choices over a live load signal
      (EWMA of reported utilization plus outstanding offloads): draw
      two distinct candidates, keep the less loaded, repeat.  Same-rack
      candidates are preferred while their load stays within
      [load_band] of the global minimum; suspect servers are only ever
      drawn when no healthy candidate remains. *)

open Nezha_engine

type policy = Least_loaded | Power_of_two

val policy_name : policy -> string
(** ["least_loaded"] / ["p2c"]. *)

(** Exponentially-weighted moving average — the live load signal fed to
    {!select_p2c}.  [observe] folds a new sample in with weight
    [alpha]; the first sample seeds the average directly. *)
module Ewma : sig
  type t

  val create : ?alpha:float -> unit -> t
  (** Default [alpha] 0.3.  @raise Invalid_argument unless
      [0 < alpha <= 1]. *)

  val observe : t -> float -> unit
  val value : t -> float
  (** 0.0 before the first observation. *)
end

val select :
  eligible:('a -> bool) ->
  same_rack:('a -> bool) ->
  cpu:('a -> float) ->
  count:int ->
  'a list ->
  'a list
(** [select ~eligible ~same_rack ~cpu ~count servers] returns up to
    [count] servers: eligible ones in the BE's rack ordered by [cpu]
    ascending, then eligible others likewise. *)

val select_p2c :
  rng:Rng.t ->
  eligible:('a -> bool) ->
  same_rack:('a -> bool) ->
  load:('a -> float) ->
  ?suspect:('a -> bool) ->
  ?load_band:float ->
  count:int ->
  'a list ->
  'a list
(** [select_p2c ~rng ~eligible ~same_rack ~load ~count servers] picks up
    to [count] distinct servers by power-of-two-choices over [load].
    The draw pool is tiered: same-rack healthy candidates whose load is
    within [load_band] (default 0.15) of the lowest load among healthy
    candidates come first, then all remaining healthy candidates, and
    suspect servers ([suspect], default none) only when both tiers are
    exhausted — a suspect is never chosen while a healthy candidate
    exists.  Each pick draws two distinct candidates from the current
    tier and keeps the less loaded (ties: the first drawn), then removes
    it from the pool.  Deterministic for a given [rng] state. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if fewer). *)
