(** The Nezha controller (§4): offload/fallback orchestration, remote-pool
    scale-out/-in, and failover.

    Every vSwitch periodically reports CPU/memory utilization.  Above the
    offload threshold the controller offloads the heaviest vNICs to a set
    of idle FEs through the dual-running two-stage workflow (§4.2.1);
    FE-hosting vSwitches crossing the (lower) scale threshold either gain
    FEs elsewhere (remote pressure) or evict their FEs (local pressure),
    per Fig. 8.  A centralized {!Monitor} detects FE crashes and failover
    completes by dropping the dead FE from every BE's location config
    while keeping at least [min_fes] (§4.4). *)

open Nezha_engine
open Nezha_net
open Nezha_fabric
open Nezha_vswitch

type config = {
  report_interval : float;  (** utilization report period *)
  offload_threshold : float;  (** §4.2.1 / Fig. 8: 0.70 *)
  scale_threshold : float;  (** Fig. 8: 0.40 *)
  safe_level : float;  (** target utilization after mitigation *)
  overload_level : float;  (** what counts as an overload occurrence (Fig. 13) *)
  initial_fes : int;  (** 4, App. B.2 *)
  min_fes : int;  (** failover floor, §4.4 *)
  learning_interval : float;  (** vNIC-server learning, 200 ms (§4.2.1) *)
  rtt : float;  (** in-flight retention slack *)
  rpc : Rpc_policy.t;  (** control-plane RPC latency/timeout/retry policy *)
  push_bytes_per_s : float;  (** rule-table push bandwidth to an FE *)
  ping_interval : float;
  ping_misses_to_fail : int;
  fe_cpu_max : float;  (** idle-candidate ceiling (CPU) *)
  fe_mem_max : float;  (** idle-candidate ceiling (memory) *)
  auto_offload : bool;
  auto_scale : bool;
  auto_fallback : bool;
  fallback_idle_ticks : int;
      (** consecutive reports with the FEs near-idle and the BE far below
          the safe level before falling back (§4.2.2: fallback only when
          the local vSwitch can clearly absorb the load again) *)
  placement : Placement.policy;
      (** FE candidate selection: the paper's least-loaded ordering, or
          power-of-two-choices over the live load signal (ROADMAP
          item 4) *)
  ewma_alpha : float;  (** smoothing of the per-server CPU load signal *)
  fe_pressure_weight : float;
      (** load-signal weight per vNIC already steered at a server, so
          placements don't herd onto one momentarily-idle server *)
  slo : Slo.config option;
      (** when set, an {!Slo} loop rides the report tick: observed P99
          remote-hop latency (drained from every BE tracker) drives
          pool scale-out/scale-in with hysteresis, cooldown and §C.2
          suppression *)
}

val default_config : config

type t

type offload
(** A live offload: one vNIC whose tables moved to a set of FEs. *)

(** The collected BE re-advertisements plus the node-side FE service
    handles (DESIGN.md §13).  Conceptually this state is owned by the
    *nodes* — each BE re-advertises its offload on boot, each FE
    service lives on its server — so it survives a controller crash;
    the registry is the rendezvous an HA pair shares, which a standby
    rebuilds its world from on takeover. *)
module Registry : sig
  type t

  val create : unit -> t
  val entries : t -> int
end

val create : ?config:config -> fabric:Fabric.t -> rng:Rng.t -> unit -> t
(** Also subscribes to the fabric's node-lifecycle events: a server
    crash closes the offload handles that died with it (and marks the
    affected offloads repairing); a restart triggers {e reconciliation}
    — the node's BE re-advertisements and FE provisioning requests are
    replayed behind one config RPC, restoring intent under the current
    epoch. *)

val config : t -> config
val fabric : t -> Fabric.t
val monitor : t -> Monitor.t

val start : t -> unit
(** Begin report sampling, automatic policies and crash monitoring. *)

(** {1 Orchestration} *)

val offload_vnic :
  t ->
  server:Topology.server_id ->
  vnic:Vnic.id ->
  ?num_fes:int ->
  ?version_filter:(int -> bool) ->
  unit ->
  (offload, string) result
(** Trigger remote offloading for a vNIC (also called by the automatic
    policy).  Runs the dual-running stage and schedules the final stage;
    returns immediately with the offload handle.

    [version_filter] restricts FE candidates by vSwitch software version —
    §7.2's new capabilities: offload to *upgraded* vSwitches to release a
    feature without fleet-wide rollout, or to *older, bug-free* ones for
    cost-effective fault recovery. *)

val fallback_vnic : t -> offload -> (unit, string) result
(** Reverse an offload (§4.2.2).  Fails if the BE cannot re-host the rule
    tables. *)

val scale_out : t -> ?avoid:Topology.server_id list -> offload -> add:int -> int
(** Add up to [add] FEs; returns how many were actually added (candidate
    supply permitting).  [avoid] blacklists servers beyond the current
    FE set (failover passes the just-declared-dead host). *)

val scale_in_server : t -> Topology.server_id -> unit
(** Evict every FE on this server (local pressure or failover),
    replenishing any offload that falls below [min_fes]. *)

val scale_in_offload : t -> offload -> remove:int -> int
(** SLO-driven targeted scale-in: drop up to [remove] FEs from this
    offload (never below [min_fes]), cross-rack and most-loaded victims
    first; routing updates immediately, tables release after the
    learning window.  Returns how many were removed. *)

val update_tenant_rules : t -> offload -> (Ruleset.t -> unit) -> unit
(** Apply a tenant configuration change to an offloaded vNIC: the
    mutation runs on the master copy and on every FE replica (and on the
    BE's local tables during dual-running); stale cached flows are
    invalidated everywhere, exactly as §3.2.2 prescribes — regeneration
    happens lazily on the next lookups. *)

val migrate_be : t -> offload -> to_server:Topology.server_id -> (unit, string) result
(** §7.2 "efficient VM live migration": move the BE (the VM moved to a
    new server) by updating the BE location config on every FE — a
    sub-millisecond config change instead of re-pushing rule tables.
    Session states are carried with the VM (the hypervisor migrates
    them); the offloaded tables never move. *)

val pin_elephant : t -> offload -> Five_tuple.t -> (Topology.server_id, string) result
(** §7.5: give an elephant flow a dedicated FE.  A fresh candidate is
    configured with the vNIC's tables and installed as a per-flow
    override on the BE, so the elephant's TX traffic monopolizes that
    SmartNIC and stops contending with other tenants.  (Sender-side ECMP
    for the RX direction is hash-driven and left unchanged.)  Returns
    the dedicated FE's server. *)

(** {1 Crash–restart, fencing, HA (DESIGN.md §13)} *)

val halt : t -> unit
(** The controller process crashed: it applies nothing further, its
    in-flight RPC continuations die on arrival, and its monitor stops
    probing.  (State is NOT wiped — a revived stale primary is exactly
    the split-brain hazard the epoch fence exists for.) *)

val revive : t -> unit
(** Restart a halted controller process with its stale in-memory state
    (the split-brain scenario).  Its epoch is unchanged, so every
    fenced component rejects its commands until it re-syncs. *)

val alive : t -> bool

val epoch : t -> int
(** The fencing token presented with every mutating command.  vSwitches
    and the gateway track the highest epoch observed and reject lower
    ones, which is what makes a revived stale primary provably unable
    to flap placements. *)

val set_epoch : t -> int -> unit

val set_registry : t -> Registry.t -> unit
(** Attach the shared node-state registry (both members of an HA pair
    attach the same one).  The FE-service table is aliased from it. *)

val adopt_from_registry : t -> int
(** Standby takeover: rebuild offload intent from the registry's BE
    re-advertisements.  Already-known entries are kept; each adopted
    offload is marked repairing so the next anti-entropy sweep verifies
    and restores its dataplane state under the new epoch.  Returns the
    number of offloads adopted. *)

val check_conservation : t -> bool
(** The §13 conservation invariant: every intended (active, completed)
    offload is fully installed, marked repairing, or explicitly
    fallback-local — never silently absent from the dataplane. *)

val fenced_rejected : t -> int
(** Commands this controller abandoned because a component held a
    higher epoch (the split-brain counter). *)

val stale_discards : t -> int
(** RPC replies discarded because the target node's incarnation changed
    (or the node is down) while the exchange was in flight. *)

val reconciles : t -> int
(** Node-restart reconciliation rounds run. *)

val repairs : t -> int
(** Individual divergences repaired (reconciliation + anti-entropy). *)

(** {1 Introspection} *)

val find_offload : t -> server:Topology.server_id -> vnic:Vnic.id -> offload option
val offloads : t -> offload list
val offload_vnic_id : offload -> Vnic.id
val offload_be_server : offload -> Topology.server_id
val offload_fe_servers : offload -> Topology.server_id list
val offload_be : offload -> Be.t
val offload_stage : offload -> Be.stage
val offload_completed_at : offload -> float option

val fe_service : t -> Topology.server_id -> Fe.t option
(** The FE service installed on a server (if it ever hosted FEs). *)

val last_cpu : t -> Topology.server_id -> float
val last_mem : t -> Topology.server_id -> float

val load_signal : t -> Topology.server_id -> float
(** The p2c placement load signal: EWMA-smoothed reported CPU plus
    [fe_pressure_weight] per vNIC already steered at the server. *)

val slo : t -> Slo.t option
(** The SLO decision state when [config.slo] is set. *)

val slo_pool_size : t -> int
(** Distinct FE servers across active offloads — the pool the SLO loop
    sizes. *)

(** {1 Experiment instrumentation} *)

val completion_times_ms : t -> Stats.Histogram.t
(** Offload-activation completion times (Table 4). *)

val offload_events : t -> int
val scale_out_events : t -> int
val fes_provisioned : t -> int
(** Cumulative FEs ever configured (App. B.2 accounting). *)

val rpc_attempts : t -> int
val rpc_retries : t -> int
(** Control-plane RPC attempts lost to the fault plane and retried. *)

val rpc_failures : t -> int
(** RPCs abandoned after [rpc_max_retries] retries. *)

val overload_occurrences : t -> Topology.server_id -> int
(** Report ticks with utilization above [overload_level] (Fig. 13). *)

val total_overload_occurrences : t -> int

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** Publish controller metrics ([controller/...], including the
    completion-time histogram) and the monitor's ([monitor/...]), and
    remember the registry: FE services and BEs the controller creates
    from now on self-register under [fe/...] and [be/...], as do any
    already alive. *)

val pp_status : Format.formatter -> t -> unit
(** Operator view: every active offload with its stage, BE/FE placement
    and dataplane counters, plus the monitor's health. *)
