type t = {
  latency : float;
  timeout : float;
  max_retries : int;
  backoff : float;
}

let backoff_cap = 5.0

let default = { latency = 0.18; timeout = 0.5; max_retries = 4; backoff = 2.0 }

let make ?(latency = default.latency) ?(timeout = default.timeout)
    ?(max_retries = default.max_retries) ?(backoff = default.backoff) () =
  if not (latency > 0.0) then invalid_arg "Rpc_policy.make: latency must be positive";
  if not (timeout > 0.0) then invalid_arg "Rpc_policy.make: timeout must be positive";
  if max_retries < 0 then invalid_arg "Rpc_policy.make: max_retries must be >= 0";
  if not (backoff >= 1.0) then invalid_arg "Rpc_policy.make: backoff must be >= 1";
  { latency; timeout; max_retries; backoff }

let retry_delay t ~attempt =
  if attempt < 0 then invalid_arg "Rpc_policy.retry_delay: attempt must be >= 0";
  Float.min (t.timeout *. (t.backoff ** float_of_int attempt)) backoff_cap
