(** The vNIC frontend (FE): an idle vSwitch serving a remote vNIC's
    stateless rule tables and cached flows (§3.2.1).

    One FE service is installed per vSwitch (as its net hook); it can
    serve many vNICs, each with a replica of the vNIC's rule tables, its
    own cached-flow region, and the BE location config.

    RX workflow: resolve pre-actions (cached flows, rule lookup on miss),
    piggyback them — and the preserved original outer source — in the NSH
    header, and forward to the BE.

    TX workflow: the packet arrives from the BE carrying the session
    state; combine it with the pre-actions to produce the final action and
    forward toward the peer.  When a rule-table lookup reveals that the
    BE's rule-table-involved state is stale (the statistics policy
    changed), send a notify packet (§3.2.2).

    FEs are completely stateless with respect to sessions: any FE can
    process any packet of the vNIC, which is what makes plain 5-tuple
    hashing sufficient for load balancing and active-active failover
    free of synchronization (§3.2.3). *)

open Nezha_engine
open Nezha_net
open Nezha_tables
open Nezha_vswitch

type t

val install : Vswitch.t -> t
(** Registers the vSwitch's net hook (single and batched forms).  One
    service per vSwitch. *)

val vswitch : t -> Vswitch.t

val process :
  t -> Packet.t -> outer:Packet.vxlan option -> [ `Handled | `Continue ]
(** The net-hook entry: classify a decapsulated underlay packet
    ([outer] is its original outer header) and run the matching
    workflow.  [`Continue] means the packet concerns no served vNIC. *)

val process_batch : t -> Pbatch.t -> Pbatch.t option
(** Vectored net-hook entry (also wired as the vSwitch's batch net
    hook).  Takes ownership of the still-encapsulated burst, handles
    every packet of a served vNIC under one SmartNIC charge, and
    returns the still-encapsulated leftover it declined — ownership of
    which transfers back to the caller — or [None] when everything was
    consumed. *)

module Ingress_impl : Nezha_vswitch.Ingress.S with type t = t and type ctx = unit
(** The FE service in the shared ingress shape: [ingest] decapsulates
    and classifies one packet; [ingest_batch] runs {!process_batch} and
    re-enters the vSwitch's net ingress with any leftover. *)

val serve : t -> vnic:Vnic.t -> ruleset:Ruleset.t -> be:Ipv4.t -> Admission.t
(** Configure this FE for a vNIC: reserves memory for the rule-table
    replica ([Error `No_memory] when it does not fit).  Replaces any
    previous config for the same vNIC. *)

val unserve : t -> Vnic.Addr.t -> unit
(** Stop serving: releases the rule replica and cached flows. *)

val reset : t -> unit
(** Crash semantics: every served blob vanished with the process, so
    release all its NIC reservations and forget the table.  Pair with
    {!reattach} + controller re-provisioning on reboot. *)

val reattach : t -> unit
(** Re-install this FE's packet hooks on its vSwitch (they are volatile
    and cleared by {!Vswitch.wipe_volatile}); part of reboot
    reconciliation. *)

val serves : t -> Vnic.Addr.t -> bool
val served_count : t -> int
val served_vnics : t -> Vnic.Addr.t list

val set_be : t -> Vnic.Addr.t -> Ipv4.t -> unit
(** Update the BE location (VM live migration, §7.2: takes effect in
    under a millisecond because only this config changes). *)

val ruleset_of : t -> Vnic.Addr.t -> Ruleset.t option
(** The served rule-table replica (the controller mutates it on tenant
    config changes). *)

val invalidate_cached_flows : t -> Vnic.Addr.t -> unit
(** Drop cached flows made stale by a rule-table change. *)

(** {1 Attribution and counters} *)

type counters = {
  remote_cycles : Stats.Counter.t;
      (** CPU cycles this vSwitch spent on FE (remote) work — the signal
          that distinguishes scale-out from scale-in pressure (§4.3,
          Fig. 8). *)
  rule_lookups : Stats.Counter.t;
  fast_hits : Stats.Counter.t;
  notify_sent : Stats.Counter.t;
  rx_forwarded : Stats.Counter.t;
  tx_finalized : Stats.Counter.t;
  hop_acks_sent : Stats.Counter.t;
      (** hop-level acks echoed back for BE loss tracking *)
}

val counters : t -> counters

val cached_flow_count : t -> int

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** Publish every counter (plus cached-flow and served-vNIC gauges)
    under [fe/<vswitch-name>/...]. *)
