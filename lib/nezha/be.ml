open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_tables

type stage = Dual | Final

type lb_mode = Flow_level | Packet_level

type counters = {
  tx_via_fe : Stats.Counter.t;
  rx_from_fe : Stats.Counter.t;
  notify_received : Stats.Counter.t;
  bounced : Stats.Counter.t;
}

type t = {
  vs : Vswitch.t;
  vnic : Vnic.t;
  vni : int;
  mutable fes : Ipv4.t array;
  mutable stage : stage;
  mutable lb_mode : lb_mode;
  mutable rr : int;
  pins : Ipv4.t Flow_key.Table.t;
  counters : counters;
}

let pin_key t flow =
  Flow_key.of_packet_fields ~vpc:t.vnic.Vnic.vpc ~flow

let fe_for t flow =
  match Flow_key.Table.find_opt t.pins (pin_key t flow) with
  | Some fe -> fe
  | None -> (
    match t.lb_mode with
    | Flow_level -> t.fes.(Five_tuple.session_hash flow mod Array.length t.fes)
    | Packet_level ->
      t.rr <- t.rr + 1;
      t.fes.(t.rr mod Array.length t.fes))

let key_of pkt = Flow_key.of_packet_fields ~vpc:pkt.Packet.vpc ~flow:pkt.Packet.flow

let params t = Vswitch.params t.vs

(* State maintenance on TX packets happens at the BE (the FE cannot write
   state back).  Connection-tracking advances; statistics counters, when
   the notify machinery has armed them, accumulate. *)
let step_state_tx st ~flags ~proto ~wire_bytes =
  let tcp' = Nf.advance_tcp st.State.tcp ~flags ~proto in
  let stats' =
    match st.State.stats with
    | None -> None
    | Some s -> Some { State.packets = s.State.packets + 1; bytes = s.State.bytes + wire_bytes }
  in
  { st with State.tcp = tcp'; stats = stats' }

let store_state t key st =
  ignore
    (Vswitch.store_session t.vs t.vnic.Vnic.id key
       { Vswitch.pre = None; state = Some st; generation = 0 }
      : Admission.t)

let send_to_fe t pkt ~nsh =
  Packet.set_nsh pkt nsh;
  let fe = fe_for t pkt.Packet.flow in
  Packet.encap_vxlan pkt ~vni:t.vni ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst:fe;
  Vswitch.emit t.vs (Vswitch.To_net pkt)

let handle_tx t pkt =
  let key = key_of pkt in
  let p = params t in
  let fresh = Vswitch.find_session t.vs t.vnic.Vnic.id key = None in
  let cycles =
    Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
    + p.Params.split_fast_path_cycles + p.Params.encap_cycles
    + (if fresh then p.Params.state_init_cycles else 0)
  in
  Vswitch.charge t.vs ~cycles (fun _sim ->
      let flags = pkt.Packet.flags and proto = pkt.Packet.flow.Five_tuple.proto in
      let st =
        match Vswitch.find_session t.vs t.vnic.Vnic.id key with
        | Some { Vswitch.state = Some st; _ } ->
          step_state_tx st ~flags ~proto ~wire_bytes:(Packet.wire_size pkt)
        | Some { Vswitch.state = None; _ } | None ->
          State.init ~first_dir:Packet.Tx ?tcp:(Nf.tcp_phase_of_flags flags ~proto) ()
      in
      store_state t key st;
      Stats.Counter.incr t.counters.tx_via_fe;
      send_to_fe t pkt ~nsh:{ Packet.empty_nsh with Packet.carried_state = Some (State.encode st) })

let handle_notify t pkt nsh =
  Stats.Counter.incr t.counters.notify_received;
  let p = params t in
  Vswitch.charge t.vs ~cycles:p.Params.state_update_cycles (fun _ ->
      match Option.map Pre_action.decode nsh.Packet.carried_pre_actions with
      | Some (Ok pre) -> (
        let key = key_of pkt in
        match Vswitch.find_session t.vs t.vnic.Vnic.id key with
        | Some { Vswitch.state = Some st; _ } ->
          (* Arm or disarm the statistics counters per the rule-table
             lookup the FE just performed (§3.2.2). *)
          let stats' =
            match (pre.Pre_action.stats, st.State.stats) with
            | Some _, Some s -> Some s
            | Some _, None -> Some { State.packets = 0; bytes = 0 }
            | None, _ -> None
          in
          store_state t key { st with State.stats = stats' }
        | Some { Vswitch.state = None; _ } | None -> ())
      | Some (Error _) | None -> ())

let handle_rx_with_pre t pkt nsh pre_blob =
  match Pre_action.decode pre_blob with
  | Error _ -> Vswitch.count_drop t.vs Nf.No_route
  | Ok pre ->
    let p = params t in
    let key = key_of pkt in
    let fresh = Vswitch.find_session t.vs t.vnic.Vnic.id key = None in
    let cycles =
      Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
      + p.Params.split_fast_path_cycles
      + if fresh then p.Params.state_init_cycles else 0
    in
    Vswitch.charge t.vs ~cycles (fun _sim ->
        let prior = Option.bind (Vswitch.find_session t.vs t.vnic.Vnic.id key) (fun s -> s.Vswitch.state) in
        let verdict, out =
          Nf.process ~pre ~state:prior ~dir:Packet.Rx ~flags:pkt.Packet.flags
            ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt)
            ?decap_src:nsh.Packet.orig_outer_src ()
        in
        (match out with
        | Nf.Init st | Nf.Update st -> store_state t key st
        | Nf.Keep -> Vswitch.touch_session t.vs t.vnic.Vnic.id key);
        Stats.Counter.incr t.counters.rx_from_fe;
        match verdict with
        | Nf.Deliver ->
          ignore (Packet.clear_nsh pkt : Packet.nsh option);
          Vswitch.deliver_local t.vs t.vnic.Vnic.id pkt
        | Nf.Drop reason -> Vswitch.count_drop t.vs reason)

let handle_rx_bare t pkt =
  match t.stage with
  | Dual -> `Continue
  | Final ->
    (* A sender with a stale vNIC-server entry reached us directly after
       the retention window: bounce the packet through an FE. *)
    Stats.Counter.incr t.counters.bounced;
    let p = params t in
    Vswitch.charge t.vs ~cycles:p.Params.encap_cycles (fun _ ->
        let fe = fe_for t pkt.Packet.flow in
        Packet.encap_vxlan pkt ~vni:t.vni ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst:fe;
        Vswitch.emit t.vs (Vswitch.To_net pkt));
    `Handled

let install ~vs ~vnic ~vni ~fes =
  if Array.length fes = 0 then invalid_arg "Be.install: empty FE set";
  let t =
    {
      vs;
      vnic;
      vni;
      fes = Array.copy fes;
      stage = Dual;
      lb_mode = Flow_level;
      rr = 0;
      pins = Flow_key.Table.create 4;
      counters =
        {
          tx_via_fe = Stats.Counter.create ();
          rx_from_fe = Stats.Counter.create ();
          notify_received = Stats.Counter.create ();
          bounced = Stats.Counter.create ();
        };
    }
  in
  Vswitch.set_intercept vs vnic.Vnic.id
    (Some
       {
         Vswitch.on_tx =
           (fun pkt ->
             handle_tx t pkt;
             `Handled);
         on_rx =
           (fun pkt ->
             match Packet.clear_nsh pkt with
             | Some nsh when nsh.Packet.notify ->
               handle_notify t pkt nsh;
               `Handled
             | Some nsh -> (
               match nsh.Packet.carried_pre_actions with
               | Some blob ->
                 handle_rx_with_pre t pkt nsh blob;
                 `Handled
               | None ->
                 (* Metadata without pre-actions: treat as bare. *)
                 handle_rx_bare t pkt)
             | None -> handle_rx_bare t pkt);
       });
  t

let uninstall t = Vswitch.set_intercept t.vs t.vnic.Vnic.id None

let vnic t = t.vnic
let stage t = t.stage
let set_stage t s = t.stage <- s

let fes t = Array.copy t.fes

let set_fes t fes =
  if Array.length fes = 0 then invalid_arg "Be.set_fes: empty FE set";
  t.fes <- Array.copy fes

let remove_fe t fe =
  let src = t.fes in
  let keep = ref 0 in
  Array.iter (fun f -> if not (Ipv4.equal f fe) then incr keep) src;
  (* Never leave the BE without an FE (mirrors set_fes); also skip the
     copy when nothing matched. *)
  if !keep > 0 && !keep < Array.length src then begin
    let dst = Array.make !keep src.(0) in
    let i = ref 0 in
    Array.iter
      (fun f ->
        if not (Ipv4.equal f fe) then begin
          dst.(!i) <- f;
          incr i
        end)
      src;
    t.fes <- dst
  end

let set_lb_mode t m = t.lb_mode <- m

let pin_flow t flow fe = Flow_key.Table.replace t.pins (pin_key t flow) fe
let unpin_flow t flow = Flow_key.Table.remove t.pins (pin_key t flow)
let pinned_count t = Flow_key.Table.length t.pins

let counters t = t.counters

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  let prefix =
    Printf.sprintf "be/%s/%d/" (Vswitch.name t.vs) (t.vnic.Vnic.id :> int)
  in
  let counter name c = T.attach_counter reg ~name:(prefix ^ name) c in
  counter "tx_via_fe" t.counters.tx_via_fe;
  counter "rx_from_fe" t.counters.rx_from_fe;
  counter "notify_received" t.counters.notify_received;
  counter "bounced" t.counters.bounced;
  T.register_gauge reg ~name:(prefix ^ "pinned_flows") (fun () ->
      float_of_int (pinned_count t))

let tx_via_fe t = Stats.Counter.value t.counters.tx_via_fe
let rx_from_fe t = Stats.Counter.value t.counters.rx_from_fe
let notify_received t = Stats.Counter.value t.counters.notify_received
let bounced t = Stats.Counter.value t.counters.bounced
