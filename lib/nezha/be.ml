open Nezha_engine
open Nezha_net
open Nezha_vswitch
open Nezha_tables

type stage = Dual | Final

type lb_mode = Flow_level | Packet_level

type counters = {
  tx_via_fe : Stats.Counter.t;
  rx_from_fe : Stats.Counter.t;
  notify_received : Stats.Counter.t;
  bounced : Stats.Counter.t;
  offload_tracked : Stats.Counter.t;
  offload_acked : Stats.Counter.t;
  offload_timeouts : Stats.Counter.t;
  offload_retx : Stats.Counter.t;
  offload_resteered : Stats.Counter.t;
  local_fallback : Stats.Counter.t;
  local_bypass : Stats.Counter.t;
  offload_dropped : Stats.Counter.t;
  offload_untracked : Stats.Counter.t;
}

(* One slow-path packet in flight to an FE, awaiting its hop-level ack.
   [clean] is a pristine (un-encapped, nsh-less) copy for retransmission;
   [nsh] the metadata to re-attach, hop_seq included. *)
type pending = {
  seq : int;
  clean : Packet.t;
  nsh : Packet.nsh;
  mutable last_fe : Ipv4.t;
  mutable retries : int;
  mutable tried : Ipv4.t list;
  mutable timer : int Timer_wheel.timer option;
  mutable sent_at : float;  (** when the last (re)transmission left, for tracing *)
}

type t = {
  vs : Vswitch.t;
  vnic : Vnic.t;
  vni : int;
  mutable fes : Ipv4.t array;
  mutable stage : stage;
  mutable lb_mode : lb_mode;
  mutable rr : int;
  pins : Ipv4.t Flow_key.Table.t;
  mutable fallback_ruleset : Ruleset.t option;
  mutable next_seq : int;
  outstanding : (int, pending) Hashtbl.t;
  wheel : int Timer_wheel.t;
  (* Consecutive hop timeouts per FE; reset on any ack from it. *)
  suspects : (Ipv4.t, int ref) Hashtbl.t;
  (* Remote-hop latency (send → hop ack) — cumulative histogram for
     telemetry plus a bounded window drained by the controller's SLO
     tick.  [sent_at] is the last (re)transmission, so a retransmitted
     offload reports the latency of the attempt that succeeded. *)
  hop_hist : Stats.Histogram.t;
  mutable hop_window : float list;
  mutable hop_window_n : int;
  mutable closed : bool;
  counters : counters;
}

let hop_window_cap = 8192

let pin_key t flow =
  Flow_key.of_packet_fields ~vpc:t.vnic.Vnic.vpc ~flow

let fe_for t flow =
  match Flow_key.Table.find_opt t.pins (pin_key t flow) with
  | Some fe -> fe
  | None -> (
    match t.lb_mode with
    | Flow_level -> t.fes.(Five_tuple.session_hash flow mod Array.length t.fes)
    | Packet_level ->
      t.rr <- t.rr + 1;
      t.fes.(t.rr mod Array.length t.fes))

let key_of pkt = Flow_key.of_packet_fields ~vpc:pkt.Packet.vpc ~flow:pkt.Packet.flow

let params t = Vswitch.params t.vs

let trace_stage t pkt ~name ?args ~t0 () =
  Vswitch.trace_span t.vs pkt ~name ~component:("be/" ^ Vswitch.name t.vs) ?args ~t0 ()

(* The gap between the last (re)transmission and this timer (or teardown)
   firing is latency the flow really experienced; account it as a stage so
   a retransmitted trace still tiles its end-to-end interval. *)
let note_wait t pd =
  if Sim.now (Vswitch.sim t.vs) > pd.sent_at then
    trace_stage t pd.clean ~name:"retx_wait" ~t0:pd.sent_at ()

let is_suspect t fe =
  match Hashtbl.find_opt t.suspects fe with
  | Some n -> !n >= (params t).Params.offload_suspect_after
  | None -> false

let all_suspect t = Array.for_all (fun fe -> is_suspect t fe) t.fes

let bump_suspect t fe =
  match Hashtbl.find_opt t.suspects fe with
  | Some n -> incr n
  | None -> Hashtbl.replace t.suspects fe (ref 1)

(* The hash choice, steered around FEs currently suspected of being
   unreachable.  With no suspects this is exactly [fe_for] — the clean
   path is untouched. *)
let pick_fe t flow =
  let fe = fe_for t flow in
  if Hashtbl.length t.suspects = 0 || not (is_suspect t fe) then fe
  else begin
    let n = Array.length t.fes in
    let h = Five_tuple.session_hash flow mod n in
    let rec probe i =
      if i >= n then fe
      else begin
        let cand = t.fes.((h + i) mod n) in
        if is_suspect t cand then probe (i + 1) else cand
      end
    in
    probe 0
  end

(* State maintenance on TX packets happens at the BE (the FE cannot write
   state back).  Connection-tracking advances; statistics counters, when
   the notify machinery has armed them, accumulate. *)
let step_state_tx st ~flags ~proto ~wire_bytes =
  let tcp' = Nf.advance_tcp st.State.tcp ~flags ~proto in
  let stats' =
    match st.State.stats with
    | None -> None
    | Some s -> Some { State.packets = s.State.packets + 1; bytes = s.State.bytes + wire_bytes }
  in
  { st with State.tcp = tcp'; stats = stats' }

let store_state t key st =
  ignore
    (Vswitch.store_session t.vs t.vnic.Vnic.id key
       { Vswitch.pre = None; state = Some st; generation = 0 }
      : Admission.t)

let send_to_fe t pkt ~fe ~nsh =
  Packet.set_nsh pkt nsh;
  Packet.encap_vxlan pkt ~vni:t.vni ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst:fe;
  Vswitch.emit t.vs (Vswitch.To_net pkt)

(* The pre-Nezha degraded mode: run the rule tables here.  During the
   dual stage the vSwitch still holds them; in the final stage we use the
   ruleset the controller saved aside at offload time. *)
let local_ruleset t =
  match Vswitch.ruleset t.vs t.vnic.Vnic.id with
  | Some _ as rs -> rs
  | None -> t.fallback_ruleset

(* Finalize one TX packet through the local slow path.  Returns [false]
   when no ruleset is available at all (true blackhole risk — the caller
   records the drop). *)
let local_slow_path t pkt =
  let t0 = Sim.now (Vswitch.sim t.vs) in
  match local_ruleset t with
  | None -> false
  | Some rs -> (
    let p = params t in
    match Vswitch.slow_path t.vs rs ~vpc:t.vnic.Vnic.vpc ~flow_tx:pkt.Packet.flow with
    | None ->
      Vswitch.charge t.vs ~cycles:p.Params.table_base_cycles (fun _ ->
          Vswitch.count_drop t.vs Nf.No_route);
      true
    | Some { Ruleset.pre; cycles } ->
      let cycles =
        cycles
        + Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
        + p.Params.encap_cycles
      in
      Vswitch.charge t.vs ~cycles (fun _ ->
          trace_stage t pkt ~name:"local_slow_path" ~t0 ();
          let verdict, _state_out =
            Nf.process ~pre ~state:None ~dir:Packet.Tx ~flags:pkt.Packet.flags
              ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt) ()
          in
          match verdict with
          | Nf.Deliver ->
            Vswitch.maybe_mirror t.vs pre pkt;
            let outer_dst =
              match pre.Pre_action.peer_server with
              | Some server -> server
              | None -> Vswitch.gateway t.vs
            in
            Packet.encap_vxlan pkt ~vni:pre.Pre_action.vni
              ~outer_src:(Vswitch.underlay_ip t.vs) ~outer_dst;
            Vswitch.emit t.vs (Vswitch.To_net pkt)
          | Nf.Drop reason -> Vswitch.count_drop t.vs reason);
      true)

(* The RX twin of [local_slow_path]: resolve pre-actions from the local
   (or fallback) tables, combine with the session state, deliver to the
   VM — what an FE would have done for a bounced packet. *)
let local_rx_slow_path t pkt =
  let t0 = Sim.now (Vswitch.sim t.vs) in
  match local_ruleset t with
  | None -> false
  | Some rs -> (
    let p = params t in
    match
      Vswitch.slow_path t.vs rs ~vpc:t.vnic.Vnic.vpc
        ~flow_tx:(Five_tuple.reverse pkt.Packet.flow)
    with
    | None ->
      Vswitch.charge t.vs ~cycles:p.Params.table_base_cycles (fun _ ->
          Vswitch.count_drop t.vs Nf.No_route);
      true
    | Some { Ruleset.pre; cycles } ->
      let key = key_of pkt in
      let cycles = cycles + Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt) in
      Vswitch.charge t.vs ~cycles (fun _ ->
          trace_stage t pkt ~name:"local_rx_slow_path" ~t0 ();
          let prior =
            Option.bind (Vswitch.find_session t.vs t.vnic.Vnic.id key) (fun s ->
                s.Vswitch.state)
          in
          let verdict, out =
            Nf.process ~pre ~state:prior ~dir:Packet.Rx ~flags:pkt.Packet.flags
              ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt) ()
          in
          (match out with
          | Nf.Init st | Nf.Update st -> store_state t key st
          | Nf.Keep -> Vswitch.touch_session t.vs t.vnic.Vnic.id key);
          match verdict with
          | Nf.Deliver ->
            ignore (Packet.clear_nsh pkt : Packet.nsh option);
            Vswitch.deliver_local t.vs t.vnic.Vnic.id pkt
          | Nf.Drop reason -> Vswitch.count_drop t.vs reason);
      true)

(* Retries exhausted (or nowhere left to steer): degrade gracefully. *)
let give_up t pd =
  if local_slow_path t (Packet.copy pd.clean) then
    Stats.Counter.incr t.counters.local_fallback
  else begin
    Stats.Counter.incr t.counters.offload_dropped;
    Vswitch.count_drop t.vs Nf.Offload_timeout
  end

let resend t pd fe =
  let t0 = Sim.now (Vswitch.sim t.vs) in
  let pkt = Packet.copy pd.clean in
  let p = params t in
  Vswitch.charge t.vs ~cycles:p.Params.encap_cycles (fun sim ->
      trace_stage t pkt ~name:"be_retx"
        ~args:[ ("retries", string_of_int pd.retries) ]
        ~t0 ();
      pd.sent_at <- Sim.now sim;
      send_to_fe t pkt ~fe ~nsh:pd.nsh)

let arm_timer t pd =
  let now = Sim.now (Vswitch.sim t.vs) in
  pd.timer <-
    Some
      (Timer_wheel.add t.wheel ~now
         ~deadline:(now +. (params t).Params.offload_retx_timeout)
         pd.seq)

let on_timeout t seq =
  match Hashtbl.find_opt t.outstanding seq with
  | None -> () (* acked since the wheel slot was written *)
  | Some pd ->
    Stats.Counter.incr t.counters.offload_timeouts;
    note_wait t pd;
    bump_suspect t pd.last_fe;
    let p = params t in
    let tried = pd.last_fe :: pd.tried in
    let untried =
      Array.to_list t.fes
      |> List.filter (fun fe -> not (List.exists (Ipv4.equal fe) tried))
    in
    (* Re-steer preference: an untried FE we still trust, then any
       untried one, then — when the set is exhausted but the last FE is
       not yet a suspect *and still administratively present* — the
       same FE again (a lossy link, not a dead box).  The membership
       check matters: scale_in/fallback may have removed [last_fe] from
       [t.fes] while this packet was in flight, and a retransmission
       against a decommissioned FE is a guaranteed blackhole. *)
    let candidate =
      match List.filter (fun fe -> not (is_suspect t fe)) untried with
      | fe :: _ -> Some fe
      | [] -> (
        match untried with
        | fe :: _ -> Some fe
        | [] ->
          if is_suspect t pd.last_fe || not (Array.exists (Ipv4.equal pd.last_fe) t.fes)
          then None
          else Some pd.last_fe)
    in
    match candidate with
    | Some fe when pd.retries < p.Params.offload_retx_max ->
      pd.retries <- pd.retries + 1;
      pd.tried <- tried;
      if not (Ipv4.equal fe pd.last_fe) then
        Stats.Counter.incr t.counters.offload_resteered;
      pd.last_fe <- fe;
      Stats.Counter.incr t.counters.offload_retx;
      arm_timer t pd;
      resend t pd fe
    | Some _ | None ->
      Hashtbl.remove t.outstanding seq;
      give_up t pd

let handle_ack t nsh =
  match nsh.Packet.hop_ack with
  | None -> ()
  | Some seq -> (
    match Hashtbl.find_opt t.outstanding seq with
    | None -> () (* duplicate or post-give-up ack *)
    | Some pd ->
      Hashtbl.remove t.outstanding seq;
      (match pd.timer with Some tm -> Timer_wheel.cancel tm | None -> ());
      Hashtbl.remove t.suspects pd.last_fe;
      let lat = Sim.now (Vswitch.sim t.vs) -. pd.sent_at in
      Stats.Histogram.record t.hop_hist lat;
      if t.hop_window_n < hop_window_cap then begin
        t.hop_window <- lat :: t.hop_window;
        t.hop_window_n <- t.hop_window_n + 1
      end;
      Stats.Counter.incr t.counters.offload_acked)

let handle_tx t pkt =
  let t0 = Sim.now (Vswitch.sim t.vs) in
  let key = key_of pkt in
  let p = params t in
  let fresh = Vswitch.find_session t.vs t.vnic.Vnic.id key = None in
  let cycles =
    Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
    + p.Params.split_fast_path_cycles + p.Params.encap_cycles
    + (if fresh then p.Params.state_init_cycles else 0)
  in
  Vswitch.charge t.vs ~cycles (fun sim ->
      trace_stage t pkt ~name:"be_tx" ~t0 ();
      let flags = pkt.Packet.flags and proto = pkt.Packet.flow.Five_tuple.proto in
      let st =
        match Vswitch.find_session t.vs t.vnic.Vnic.id key with
        | Some { Vswitch.state = Some st; _ } ->
          step_state_tx st ~flags ~proto ~wire_bytes:(Packet.wire_size pkt)
        | Some { Vswitch.state = None; _ } | None ->
          State.init ~first_dir:Packet.Tx ?tcp:(Nf.tcp_phase_of_flags flags ~proto) ()
      in
      store_state t key st;
      if all_suspect t && local_ruleset t <> None then begin
        (* Every FE looks unreachable: skip the hop entirely rather than
           queue a retransmission dance per packet. *)
        Stats.Counter.incr t.counters.local_bypass;
        ignore (local_slow_path t pkt : bool)
      end
      else begin
        Stats.Counter.incr t.counters.tx_via_fe;
        let base_nsh =
          { Packet.empty_nsh with Packet.carried_state = Some (State.encode st) }
        in
        let fe = pick_fe t pkt.Packet.flow in
        if Hashtbl.length t.outstanding < p.Params.offload_track_capacity then begin
          let seq = t.next_seq in
          t.next_seq <- t.next_seq + 1;
          let nsh = { base_nsh with Packet.hop_seq = Some seq } in
          let pd =
            {
              seq;
              clean = Packet.copy pkt;
              nsh;
              last_fe = fe;
              retries = 0;
              tried = [];
              timer = None;
              sent_at = Sim.now sim;
            }
          in
          Hashtbl.replace t.outstanding seq pd;
          arm_timer t pd;
          Stats.Counter.incr t.counters.offload_tracked;
          send_to_fe t pkt ~fe ~nsh
        end
        else begin
          Stats.Counter.incr t.counters.offload_untracked;
          send_to_fe t pkt ~fe ~nsh:base_nsh
        end
      end)

(* Vectored twin of [handle_tx]: one SmartNIC submission covers the
   whole burst (freshness — hence the state-init surcharge — is sampled
   per packet at submit time, as the back-to-back single calls would),
   and the continuation replays the per-packet sequence in order,
   collecting the FE-bound packets into one outgoing burst.  Owns
   [batch]. *)
let handle_tx_batch t batch =
  let n = Pbatch.length batch in
  if n = 0 then Pbatch.recycle batch
  else begin
    let t0 = Sim.now (Vswitch.sim t.vs) in
    let p = params t in
    let cycles = ref 0 in
    Pbatch.iter batch (fun pkt ->
        let fresh = Vswitch.find_session t.vs t.vnic.Vnic.id (key_of pkt) = None in
        cycles :=
          !cycles
          + Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
          + p.Params.split_fast_path_cycles + p.Params.encap_cycles
          + if fresh then p.Params.state_init_cycles else 0);
    let accepted =
      Vswitch.charge_batch t.vs ~cycles:!cycles ~npkts:n (fun sim ->
          let out = Pbatch.alloc () in
          Pbatch.iter batch (fun pkt ->
              trace_stage t pkt ~name:"be_tx" ~t0 ();
              let key = key_of pkt in
              let flags = pkt.Packet.flags and proto = pkt.Packet.flow.Five_tuple.proto in
              let st =
                match Vswitch.find_session t.vs t.vnic.Vnic.id key with
                | Some { Vswitch.state = Some st; _ } ->
                  step_state_tx st ~flags ~proto ~wire_bytes:(Packet.wire_size pkt)
                | Some { Vswitch.state = None; _ } | None ->
                  State.init ~first_dir:Packet.Tx ?tcp:(Nf.tcp_phase_of_flags flags ~proto) ()
              in
              store_state t key st;
              if all_suspect t && local_ruleset t <> None then begin
                Stats.Counter.incr t.counters.local_bypass;
                ignore (local_slow_path t pkt : bool)
              end
              else begin
                Stats.Counter.incr t.counters.tx_via_fe;
                let base_nsh =
                  { Packet.empty_nsh with Packet.carried_state = Some (State.encode st) }
                in
                let fe = pick_fe t pkt.Packet.flow in
                let nsh =
                  if Hashtbl.length t.outstanding < p.Params.offload_track_capacity
                  then begin
                    let seq = t.next_seq in
                    t.next_seq <- t.next_seq + 1;
                    let nsh = { base_nsh with Packet.hop_seq = Some seq } in
                    let pd =
                      {
                        seq;
                        clean = Packet.copy pkt;
                        nsh;
                        last_fe = fe;
                        retries = 0;
                        tried = [];
                        timer = None;
                        sent_at = Sim.now sim;
                      }
                    in
                    Hashtbl.replace t.outstanding seq pd;
                    arm_timer t pd;
                    Stats.Counter.incr t.counters.offload_tracked;
                    nsh
                  end
                  else begin
                    Stats.Counter.incr t.counters.offload_untracked;
                    base_nsh
                  end
                in
                Packet.set_nsh pkt nsh;
                Packet.encap_vxlan pkt ~vni:t.vni ~outer_src:(Vswitch.underlay_ip t.vs)
                  ~outer_dst:fe;
                Pbatch.push out pkt
              end);
          Vswitch.emit_batch t.vs out;
          Pbatch.recycle batch)
    in
    if not accepted then Pbatch.recycle batch
  end

let handle_notify t pkt nsh =
  Stats.Counter.incr t.counters.notify_received;
  let p = params t in
  Vswitch.charge t.vs ~cycles:p.Params.state_update_cycles (fun _ ->
      match Option.map Pre_action.decode nsh.Packet.carried_pre_actions with
      | Some (Ok pre) -> (
        let key = key_of pkt in
        match Vswitch.find_session t.vs t.vnic.Vnic.id key with
        | Some { Vswitch.state = Some st; _ } ->
          (* Arm or disarm the statistics counters per the rule-table
             lookup the FE just performed (§3.2.2). *)
          let stats' =
            match (pre.Pre_action.stats, st.State.stats) with
            | Some _, Some s -> Some s
            | Some _, None -> Some { State.packets = 0; bytes = 0 }
            | None, _ -> None
          in
          store_state t key { st with State.stats = stats' }
        | Some { Vswitch.state = None; _ } | None -> ())
      | Some (Error _) | None -> ())

let handle_rx_with_pre t pkt nsh pre_blob =
  let t0 = Sim.now (Vswitch.sim t.vs) in
  match Pre_action.decode pre_blob with
  | Error _ -> Vswitch.count_drop t.vs Nf.No_route
  | Ok pre ->
    let p = params t in
    let key = key_of pkt in
    let fresh = Vswitch.find_session t.vs t.vnic.Vnic.id key = None in
    let cycles =
      Params.packet_cycles p ~wire_bytes:(Packet.wire_size pkt)
      + p.Params.split_fast_path_cycles
      + if fresh then p.Params.state_init_cycles else 0
    in
    Vswitch.charge t.vs ~cycles (fun _sim ->
        trace_stage t pkt ~name:"be_rx_finalize" ~t0 ();
        let prior = Option.bind (Vswitch.find_session t.vs t.vnic.Vnic.id key) (fun s -> s.Vswitch.state) in
        let verdict, out =
          Nf.process ~pre ~state:prior ~dir:Packet.Rx ~flags:pkt.Packet.flags
            ~proto:pkt.Packet.flow.Five_tuple.proto ~wire_bytes:(Packet.wire_size pkt)
            ?decap_src:nsh.Packet.orig_outer_src ()
        in
        (match out with
        | Nf.Init st | Nf.Update st -> store_state t key st
        | Nf.Keep -> Vswitch.touch_session t.vs t.vnic.Vnic.id key);
        Stats.Counter.incr t.counters.rx_from_fe;
        match verdict with
        | Nf.Deliver ->
          ignore (Packet.clear_nsh pkt : Packet.nsh option);
          Vswitch.deliver_local t.vs t.vnic.Vnic.id pkt
        | Nf.Drop reason -> Vswitch.count_drop t.vs reason)

let handle_rx_bare t pkt =
  match t.stage with
  | Dual -> `Continue
  | Final ->
    if all_suspect t && local_rx_slow_path t pkt then begin
      (* Every FE looks unreachable: a bounce would blackhole.  The
         local tables just served it instead. *)
      Stats.Counter.incr t.counters.local_bypass;
      `Handled
    end
    else begin
      (* A sender with a stale vNIC-server entry reached us directly after
         the retention window: bounce the packet through an FE. *)
      Stats.Counter.incr t.counters.bounced;
      let t0 = Sim.now (Vswitch.sim t.vs) in
      let p = params t in
      Vswitch.charge t.vs ~cycles:p.Params.encap_cycles (fun _ ->
          trace_stage t pkt ~name:"be_bounce" ~t0 ();
          let fe = pick_fe t pkt.Packet.flow in
          Packet.encap_vxlan pkt ~vni:t.vni ~outer_src:(Vswitch.underlay_ip t.vs)
            ~outer_dst:fe;
          Vswitch.emit t.vs (Vswitch.To_net pkt));
      `Handled
    end

(* Classify one RX packet addressed to the offloaded vNIC: hop-level
   ack, stats notify, FE-finalized traffic carrying pre-actions, or bare
   (stale-sender) traffic.  [`Continue] means the caller should run the
   traditional local RX path (dual stage only). *)
let rx_dispatch t pkt =
  match Packet.clear_nsh pkt with
  | Some nsh when nsh.Packet.hop_ack <> None ->
    handle_ack t nsh;
    `Handled
  | Some nsh when nsh.Packet.notify ->
    handle_notify t pkt nsh;
    `Handled
  | Some nsh -> (
    match nsh.Packet.carried_pre_actions with
    | Some blob ->
      handle_rx_with_pre t pkt nsh blob;
      `Handled
    | None ->
      (* Metadata without pre-actions: treat as bare. *)
      handle_rx_bare t pkt)
  | None -> handle_rx_bare t pkt

let install ~vs ~vnic ~vni ~fes ?fallback_ruleset () =
  if Array.length fes = 0 then invalid_arg "Be.install: empty FE set";
  let p = Vswitch.params vs in
  let t =
    {
      vs;
      vnic;
      vni;
      fes = Array.copy fes;
      stage = Dual;
      lb_mode = Flow_level;
      rr = 0;
      pins = Flow_key.Table.create 4;
      fallback_ruleset;
      next_seq = 0;
      outstanding = Hashtbl.create 64;
      wheel =
        Timer_wheel.create ~tick:(p.Params.offload_retx_timeout /. 4.0) ~slots:64;
      suspects = Hashtbl.create 4;
      hop_hist = Stats.Histogram.create ();
      hop_window = [];
      hop_window_n = 0;
      closed = false;
      counters =
        {
          tx_via_fe = Stats.Counter.create ();
          rx_from_fe = Stats.Counter.create ();
          notify_received = Stats.Counter.create ();
          bounced = Stats.Counter.create ();
          offload_tracked = Stats.Counter.create ();
          offload_acked = Stats.Counter.create ();
          offload_timeouts = Stats.Counter.create ();
          offload_retx = Stats.Counter.create ();
          offload_resteered = Stats.Counter.create ();
          local_fallback = Stats.Counter.create ();
          local_bypass = Stats.Counter.create ();
          offload_dropped = Stats.Counter.create ();
          offload_untracked = Stats.Counter.create ();
        };
    }
  in
  (* Retransmission-timer pump; dies with the intercept. *)
  Sim.every (Vswitch.sim vs) ~period:(p.Params.offload_retx_timeout /. 4.0) (fun sim ->
      ignore (Timer_wheel.advance t.wheel ~now:(Sim.now sim) (on_timeout t) : int);
      not t.closed);
  Vswitch.set_intercept vs vnic.Vnic.id
    (Some
       {
         Vswitch.on_tx =
           (fun pkt ->
             handle_tx t pkt;
             `Handled);
         on_rx = (fun pkt -> rx_dispatch t pkt);
         on_tx_batch = Some (fun batch -> handle_tx_batch t batch);
       });
  t

(* The BE intercept in the shared ingress shape; [ctx] is the packet
   direction.  RX batches dispatch per packet — acks, notifies and
   finalizations are control-plane-sized traffic — and a declined bare
   packet (dual stage) re-enters the vSwitch's net ingress, which runs
   the traditional RX path for it. *)
module Ingress_impl = struct
  type nonrec t = t
  type ctx = Packet.direction

  let ingest t ~ctx pkt =
    match ctx with
    | Packet.Tx ->
      handle_tx t pkt;
      `Handled
    | Packet.Rx -> rx_dispatch t pkt

  let ingest_batch t ~ctx batch =
    match ctx with
    | Packet.Tx -> handle_tx_batch t batch
    | Packet.Rx ->
      Pbatch.iter batch (fun pkt ->
          match rx_dispatch t pkt with
          | `Handled -> ()
          | `Continue -> Vswitch.from_net t.vs pkt);
      Pbatch.recycle batch
end

let uninstall t =
  t.closed <- true;
  Vswitch.set_intercept t.vs t.vnic.Vnic.id None;
  (* Resolve anything still in flight through the local path so an
     offload torn down mid-chaos never strands packets. *)
  let pds = Hashtbl.fold (fun _ pd acc -> pd :: acc) t.outstanding [] in
  Hashtbl.reset t.outstanding;
  List.iter
    (fun pd ->
      (match pd.timer with Some tm -> Timer_wheel.cancel tm | None -> ());
      note_wait t pd;
      give_up t pd)
    (List.sort (fun a b -> compare a.seq b.seq) pds)

(* The hosting process died.  Unlike [uninstall] nothing is resolved
   through the local path — the in-flight packets were already lost
   with the NIC, so they move straight from outstanding to dropped
   (keeping the conservation invariant tracked = acked + fallback +
   dropped + outstanding intact across the crash).  This instance is
   dead for good; reconciliation installs a fresh [install]. *)
let crash t =
  t.closed <- true;
  let n = Hashtbl.length t.outstanding in
  Hashtbl.iter
    (fun _ pd -> match pd.timer with Some tm -> Timer_wheel.cancel tm | None -> ())
    t.outstanding;
  Hashtbl.reset t.outstanding;
  Hashtbl.reset t.suspects;
  Flow_key.Table.reset t.pins;
  Stats.Counter.add t.counters.offload_dropped n

let closed t = t.closed
let vnic t = t.vnic
let vni t = t.vni
let fallback_ruleset t = t.fallback_ruleset
let stage t = t.stage
let set_stage t s = t.stage <- s

let fes t = Array.copy t.fes

let set_fes t fes =
  if Array.length fes = 0 then invalid_arg "Be.set_fes: empty FE set";
  t.fes <- Array.copy fes

let remove_fe t fe =
  let src = t.fes in
  let keep = ref 0 in
  Array.iter (fun f -> if not (Ipv4.equal f fe) then incr keep) src;
  (* Never leave the BE without an FE (mirrors set_fes); also skip the
     copy when nothing matched. *)
  if !keep > 0 && !keep < Array.length src then begin
    let dst = Array.make !keep src.(0) in
    let i = ref 0 in
    Array.iter
      (fun f ->
        if not (Ipv4.equal f fe) then begin
          dst.(!i) <- f;
          incr i
        end)
      src;
    t.fes <- dst
  end

let set_lb_mode t m = t.lb_mode <- m

let set_fallback_ruleset t rs = t.fallback_ruleset <- rs

let pin_flow t flow fe = Flow_key.Table.replace t.pins (pin_key t flow) fe
let unpin_flow t flow = Flow_key.Table.remove t.pins (pin_key t flow)
let pinned_count t = Flow_key.Table.length t.pins

let outstanding t = Hashtbl.length t.outstanding

let hop_latency_hist t = t.hop_hist

let drain_hop_latencies t =
  let samples = t.hop_window in
  t.hop_window <- [];
  t.hop_window_n <- 0;
  samples

let counters t = t.counters

let register_telemetry t reg =
  let module T = Nezha_telemetry.Telemetry in
  let prefix =
    Printf.sprintf "be/%s/%d/" (Vswitch.name t.vs) (t.vnic.Vnic.id :> int)
  in
  let counter name c = T.attach_counter reg ~name:(prefix ^ name) c in
  counter "tx_via_fe" t.counters.tx_via_fe;
  counter "rx_from_fe" t.counters.rx_from_fe;
  counter "notify_received" t.counters.notify_received;
  counter "bounced" t.counters.bounced;
  counter "offload_tracked" t.counters.offload_tracked;
  counter "offload_acked" t.counters.offload_acked;
  counter "offload_timeouts" t.counters.offload_timeouts;
  counter "offload_retx" t.counters.offload_retx;
  counter "offload_resteered" t.counters.offload_resteered;
  counter "local_fallback" t.counters.local_fallback;
  counter "local_bypass" t.counters.local_bypass;
  counter "offload_dropped" t.counters.offload_dropped;
  counter "offload_untracked" t.counters.offload_untracked;
  T.register_gauge reg ~name:(prefix ^ "pinned_flows") (fun () ->
      float_of_int (pinned_count t));
  T.register_gauge reg ~name:(prefix ^ "outstanding_offloads") (fun () ->
      float_of_int (outstanding t));
  T.register_histogram reg ~name:(prefix ^ "hop_latency_s") t.hop_hist
