(** The vNIC backend (BE): the node that keeps the session states, in one
    copy, locally (§3.2.1).

    Installed as a per-vNIC intercept on the offloaded vNIC's vSwitch.

    TX workflow: look up / initialize the state, encode it into the NSH
    header, and steer the packet to an FE chosen by 5-tuple hash.  The BE
    never runs the rule-table pipeline for offloaded vNICs — that is the
    entire CPS win.

    RX workflow: packets arrive from an FE with pre-actions piggybacked;
    the BE combines them with the local state ([process_pkt]) and delivers
    to the VM.  Notify packets update rule-table-involved state without
    delivery (§3.2.2).

    During the dual-running stage, packets from senders that have not yet
    learned the new vNIC-server entry arrive without NSH metadata and are
    handed back to the still-present local tables; in the final stage they
    are bounced to an FE instead (§4.2.1). *)

open Nezha_engine
open Nezha_net
open Nezha_vswitch

type stage = Dual | Final

type t

val install :
  vs:Vswitch.t ->
  vnic:Vnic.t ->
  vni:int ->
  fes:Ipv4.t array ->
  ?fallback_ruleset:Ruleset.t ->
  unit ->
  t
(** Sets the vNIC's intercept.  [fallback_ruleset] is the rule tables to
    run locally when the FE hop is given up on (the controller passes the
    set it saved aside at offload time; during the dual stage the
    vSwitch's own copy is used instead).  @raise Invalid_argument on an
    empty FE set. *)

val uninstall : t -> unit
(** Remove the intercept (fallback completed).  Outstanding tracked
    offloads are resolved through the local slow path. *)

val crash : t -> unit
(** The hosting dataplane process died: the outstanding-offload tracker,
    retransmission timers, suspect table and pins vanish.  Unlike
    {!uninstall} nothing is resolved locally — the tracked in-flight
    packets were lost with the NIC and move to [offload_dropped] (the
    conservation invariant holds across the crash).  The instance is
    permanently closed; reconciliation installs a fresh one. *)

val closed : t -> bool

val handle_tx_batch : t -> Pbatch.t -> unit
(** Vectored TX workflow (also wired as the intercept's [on_tx_batch]):
    one SmartNIC submission for the burst, per-packet state stepping in
    order, FE-bound packets leaving as one batch.  Takes ownership. *)

module Ingress_impl : Nezha_vswitch.Ingress.S with type t = t and type ctx = Packet.direction
(** The BE intercept in the shared ingress shape; [ctx] is the packet
    direction.  TX maps to the offload workflow; RX classifies acks,
    notifies, FE-finalized and bare traffic.  A batched RX dispatches
    per packet (control-plane-sized traffic) and re-injects declined
    dual-stage bare packets through the vSwitch's net ingress. *)

val set_fallback_ruleset : t -> Ruleset.t option -> unit

val vnic : t -> Vnic.t

val vni : t -> int
(** The offload's overlay network id — part of what a restarted BE
    re-advertises to the controller. *)

val fallback_ruleset : t -> Nezha_vswitch.Ruleset.t option

val stage : t -> stage
val set_stage : t -> stage -> unit

val fes : t -> Ipv4.t array
val set_fes : t -> Ipv4.t array -> unit
(** Update the FE location config (scale-out/-in, failover).
    @raise Invalid_argument on an empty set. *)

val remove_fe : t -> Ipv4.t -> unit
(** Drop one FE from the set; keeps at least one (the caller is
    responsible for replacing failed FEs per the ≥4 rule). *)

val fe_for : t -> Five_tuple.t -> Ipv4.t
(** The hash-selected FE for a flow (under packet-level balancing the
    result varies per call). *)

val pin_flow : t -> Five_tuple.t -> Ipv4.t -> unit
(** §7.5: override the hash choice for one session (both directions
    normalize to the canonical tuple) — the elephant-flow escape hatch. *)

val unpin_flow : t -> Five_tuple.t -> unit
val pinned_count : t -> int

type lb_mode = Flow_level | Packet_level

val set_lb_mode : t -> lb_mode -> unit
(** Default [Flow_level] (canonical 5-tuple hash).  [Packet_level]
    sprays packets round-robin — the §3.2.3 ablation showing why Nezha
    rejects it: duplicated rule lookups and cached flows on every FE. *)

(** {1 Dataplane counters} *)

type counters = {
  tx_via_fe : Stats.Counter.t;
  rx_from_fe : Stats.Counter.t;
  notify_received : Stats.Counter.t;
  bounced : Stats.Counter.t;
      (** final-stage packets without metadata re-steered to an FE *)
  offload_tracked : Stats.Counter.t;  (** TX sends entered into the tracker *)
  offload_acked : Stats.Counter.t;  (** hop-level acks received from FEs *)
  offload_timeouts : Stats.Counter.t;  (** retransmission-timer expiries *)
  offload_retx : Stats.Counter.t;  (** retransmissions sent *)
  offload_resteered : Stats.Counter.t;
      (** retransmissions that switched to a different FE *)
  local_fallback : Stats.Counter.t;
      (** tracked sends resolved through the local slow path after the
          hop was given up on *)
  local_bypass : Stats.Counter.t;
      (** TX packets that skipped the FE hop because every FE was
          suspect *)
  offload_dropped : Stats.Counter.t;
      (** given-up sends with no local ruleset either — counted as
          [Offload_timeout] drops *)
  offload_untracked : Stats.Counter.t;
      (** sends made fire-and-forget because the tracker was full *)
}

val counters : t -> counters

val outstanding : t -> int
(** Tracked offloads currently awaiting their FE ack.  Conservation
    invariant: [tracked = acked + local_fallback + offload_dropped +
    outstanding]. *)

val hop_latency_hist : t -> Nezha_engine.Stats.Histogram.t
(** Cumulative remote-hop latency (send → hop ack), seconds.  A
    retransmitted offload records the latency of the attempt that was
    finally acked. *)

val drain_hop_latencies : t -> float list
(** Remote-hop latency samples since the previous drain (bounded
    window; newest first).  The controller's SLO tick drains every BE
    it manages to build the per-window P99. *)

val register_telemetry : t -> Nezha_telemetry.Telemetry.t -> unit
(** Publish the counters (plus a pinned-flows gauge) under
    [be/<vswitch-name>/<vnic-id>/...]. *)
